#include "scada/centrifuge.hpp"

#include <gtest/gtest.h>

#include "scada/profibus.hpp"

namespace cyd::scada {
namespace {

TEST(CentrifugeTest, NominalSpeedIsHarmless) {
  Centrifuge rotor("ir1-001");
  for (int i = 0; i < 24 * 30; ++i) rotor.step(Centrifuge::kNominalHz, sim::kHour);
  EXPECT_FALSE(rotor.destroyed());
  EXPECT_DOUBLE_EQ(rotor.stress(), 0.0);
}

TEST(CentrifugeTest, ParkedRotorIsSafe) {
  Centrifuge rotor("r");
  rotor.step(0.0, 365 * sim::kDay);
  EXPECT_FALSE(rotor.destroyed());
}

TEST(CentrifugeTest, OverSpeedDestroysWithinHours) {
  Centrifuge rotor("r");
  sim::Duration elapsed = 0;
  while (!rotor.destroyed() && elapsed < 24 * sim::kHour) {
    rotor.step(1410.0, sim::kMinute);
    elapsed += sim::kMinute;
  }
  EXPECT_TRUE(rotor.destroyed());
  EXPECT_LT(elapsed, 12 * sim::kHour);
  EXPECT_GT(elapsed, sim::kHour);  // not instantaneous either
}

TEST(CentrifugeTest, CrawlSpeedDamagesThroughResonance) {
  Centrifuge rotor("r");
  rotor.step(2.0, 30 * sim::kMinute);
  EXPECT_GT(rotor.stress(), 0.0);
  EXPECT_FALSE(rotor.destroyed());
}

TEST(CentrifugeTest, StuxnetSequenceDestroys) {
  // The paper's attack: 1410 Hz, then 2 Hz, then back to 1064 Hz, repeated.
  Centrifuge rotor("r");
  int cycles = 0;
  while (!rotor.destroyed() && cycles < 20) {
    rotor.step(1410.0, 15 * sim::kMinute);
    rotor.step(2.0, 50 * sim::kMinute);
    rotor.step(1064.0, 27 * sim::kDay);  // weeks of normal cover operation
    ++cycles;
  }
  EXPECT_TRUE(rotor.destroyed());
  EXPECT_GE(cycles, 2);  // the sabotage is gradual, not a single blow
}

TEST(CentrifugeTest, DamageRateCurveShape) {
  EXPECT_DOUBLE_EQ(Centrifuge::damage_rate_per_hour(1064.0), 0.0);
  EXPECT_DOUBLE_EQ(Centrifuge::damage_rate_per_hour(1210.0), 0.0);
  EXPECT_GT(Centrifuge::damage_rate_per_hour(1410.0), 0.0);
  EXPECT_GT(Centrifuge::damage_rate_per_hour(2.0), 0.0);
  EXPECT_GT(Centrifuge::damage_rate_per_hour(1500.0),
            Centrifuge::damage_rate_per_hour(1410.0));
  EXPECT_GT(Centrifuge::damage_rate_per_hour(2.0),
            Centrifuge::damage_rate_per_hour(200.0));
  EXPECT_DOUBLE_EQ(Centrifuge::damage_rate_per_hour(0.0), 0.0);
}

TEST(CentrifugeTest, DestroyedRotorStaysDestroyed) {
  Centrifuge rotor("r");
  while (!rotor.destroyed()) rotor.step(1500.0, sim::kHour);
  const double stress = rotor.stress();
  rotor.step(1064.0, sim::kDay);
  EXPECT_TRUE(rotor.destroyed());
  EXPECT_DOUBLE_EQ(rotor.stress(), stress);
  EXPECT_DOUBLE_EQ(rotor.frequency(), 0.0);
}

TEST(ProfibusTest, DrivesCommandCentrifuges) {
  Profibus bus;
  auto& drive = bus.add_drive("vfd-1", DriveVendor::kVacon);
  drive.add_centrifuge("r1");
  drive.add_centrifuge("r2");
  drive.set_frequency(1064.0);
  bus.step(sim::kHour);
  EXPECT_DOUBLE_EQ(drive.centrifuges()[0].frequency(), 1064.0);
  EXPECT_DOUBLE_EQ(bus.mean_frequency(), 1064.0);
  EXPECT_EQ(bus.total_centrifuges(), 2u);
  EXPECT_EQ(bus.destroyed_centrifuges(), 0u);
}

TEST(ProfibusTest, VendorFingerprint) {
  Profibus bus;
  bus.add_drive("a", DriveVendor::kFararoPaya);
  EXPECT_TRUE(bus.has_vendor(DriveVendor::kFararoPaya));
  EXPECT_FALSE(bus.has_vendor(DriveVendor::kVacon));
  bus.add_drive("b", DriveVendor::kVacon);
  EXPECT_TRUE(bus.has_vendor(DriveVendor::kVacon));
}

TEST(ProfibusTest, DestroyedCountAggregates) {
  Profibus bus;
  auto& d1 = bus.add_drive("a", DriveVendor::kVacon);
  auto& d2 = bus.add_drive("b", DriveVendor::kFararoPaya);
  d1.add_centrifuge("r1");
  d2.add_centrifuge("r2");
  d1.set_frequency(1500.0);  // destroy d1's rotor only
  d2.set_frequency(1064.0);
  for (int i = 0; i < 48; ++i) bus.step(sim::kHour);
  EXPECT_EQ(bus.destroyed_centrifuges(), 1u);
  EXPECT_EQ(d1.destroyed_count(), 1u);
  EXPECT_EQ(d2.destroyed_count(), 0u);
}

TEST(ProfibusTest, MeanFrequencyAveragesDrives) {
  Profibus bus;
  bus.add_drive("a", DriveVendor::kVacon).set_frequency(1000.0);
  bus.add_drive("b", DriveVendor::kVacon).set_frequency(1100.0);
  EXPECT_DOUBLE_EQ(bus.mean_frequency(), 1050.0);
  Profibus empty;
  EXPECT_DOUBLE_EQ(empty.mean_frequency(), 0.0);
}

TEST(ProfibusTest, DefaultCpModelMatchesTarget) {
  Profibus bus;
  EXPECT_EQ(bus.cp_model(), Profibus::kTargetCpModel);
  Profibus other("CP-343-1");
  EXPECT_EQ(other.cp_model(), "CP-343-1");
}

class DamageRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DamageRateSweep, SafeBandHasZeroDamage) {
  // Property: the entire operating band used at Natanz (807-1210 Hz per the
  // paper's trigger condition) must be damage-free, or normal operation
  // would wear rotors out and the model would be wrong.
  EXPECT_DOUBLE_EQ(Centrifuge::damage_rate_per_hour(GetParam()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(OperatingBand, DamageRateSweep,
                         ::testing::Values(807.0, 900.0, 1000.0, 1064.0,
                                           1100.0, 1210.0, 1300.0));

}  // namespace
}  // namespace cyd::scada
