#include "scada/step7.hpp"

#include <gtest/gtest.h>

namespace cyd::scada {
namespace {

class Step7Test : public ::testing::Test {
 protected:
  Step7Test()
      : host_(simulation_, programs_, "eng-laptop", winsys::OsVersion::kWinXp),
        plc_(simulation_, "plc-01"),
        app_(Step7App::install(host_, registry_)) {
    plc_.bus().add_drive("vfd", DriveVendor::kVacon).add_centrifuge("r");
  }

  sim::Simulation simulation_;
  winsys::ProgramRegistry programs_;
  winsys::Host host_;
  S7ProxyRegistry registry_;
  Plc plc_;
  Step7App& app_;
};

TEST_F(Step7Test, InstallShipsGenuineDll) {
  ASSERT_TRUE(host_.fs().is_file(Step7App::dll_path()));
  auto comm = app_.resolve_comm();
  ASSERT_NE(comm, nullptr);
  EXPECT_EQ(comm->name(), "s7otbxdx-original");
  EXPECT_EQ(Step7App::find(host_), &app_);
}

TEST_F(Step7Test, BlockOpsPassThrough) {
  app_.connect(&plc_);
  EXPECT_TRUE(app_.write_block("FC100", "user logic"));
  EXPECT_EQ(app_.read_block("FC100"), "user logic");
  const auto blocks = app_.list_blocks();
  EXPECT_NE(std::find(blocks.begin(), blocks.end(), "FC100"), blocks.end());
}

TEST_F(Step7Test, NoCableNoOps) {
  EXPECT_FALSE(app_.write_block("FC1", "x"));
  EXPECT_FALSE(app_.read_block("OB1").has_value());
  EXPECT_TRUE(app_.list_blocks().empty());
  EXPECT_FALSE(app_.read_frequency().has_value());
}

TEST_F(Step7Test, MissingDllBreaksComms) {
  app_.connect(&plc_);
  host_.fs().delete_file(Step7App::dll_path(), 0);
  EXPECT_EQ(app_.resolve_comm(), nullptr);
  EXPECT_FALSE(app_.write_block("FC1", "x"));
}

TEST_F(Step7Test, CorruptDllBreaksComms) {
  host_.fs().write_file(Step7App::dll_path(), "not a pe image", 0);
  EXPECT_EQ(app_.resolve_comm(), nullptr);
}

TEST_F(Step7Test, DllFileSwapSwapsBehaviour) {
  // A stand-in for Stuxnet's trick: replace the DLL file, get new behaviour
  // on the very next call — no process restart needed.
  class NullProxy : public S7CommProxy {
   public:
    std::vector<std::string> list_blocks(Plc&) override { return {}; }
    std::optional<common::Bytes> read_block(Plc&,
                                            const std::string&) override {
      return std::nullopt;
    }
    bool write_block(Plc&, const std::string&, common::Bytes) override {
      return false;
    }
    std::string name() const override { return "null-proxy"; }
  };
  registry_.register_proxy("evil.s7otbxdx",
                           [] { return std::make_unique<NullProxy>(); });
  app_.connect(&plc_);
  EXPECT_TRUE(app_.write_block("FC1", "works"));

  const auto evil_dll =
      pe::Builder{}.program("evil.s7otbxdx").filename("s7otbxdx.dll").build();
  host_.fs().write_file(Step7App::dll_path(), evil_dll.serialize(), 0);
  EXPECT_EQ(app_.resolve_comm()->name(), "null-proxy");
  EXPECT_FALSE(app_.write_block("FC2", "blocked"));
  EXPECT_FALSE(plc_.has_block("FC2"));
}

TEST_F(Step7Test, CreateAndOpenProject) {
  const auto dir = app_.create_project("cascade-a26");
  EXPECT_TRUE(host_.fs().is_dir(dir));
  EXPECT_TRUE(host_.fs().is_file(dir.join("cascade-a26.s7p")));
  EXPECT_TRUE(app_.open_project(dir));
  EXPECT_EQ(app_.opened_projects().size(), 1u);
  EXPECT_FALSE(app_.open_project("c:\\projects\\missing"));
}

TEST_F(Step7Test, OpeningInfectedProjectExecutesDroppedDll) {
  int executions = 0;
  class TriggerProgram : public winsys::Program {
   public:
    explicit TriggerProgram(int* count) : count_(count) {}
    bool run(winsys::Host&, const winsys::ExecContext& ctx) override {
      EXPECT_EQ(ctx.launched_by, "step7-plugin-load");
      ++*count_;
      return false;
    }
    std::string process_name() const override { return "payload"; }

   private:
    int* count_;
  };
  programs_.register_program("malware.step7-hook", [&executions] {
    return std::make_unique<TriggerProgram>(&executions);
  });

  const auto dir = app_.create_project("infected");
  const auto evil =
      pe::Builder{}.program("malware.step7-hook").filename("s7hkimdb.dll").build();
  host_.fs().write_file(dir.join("s7hkimdb.dll"), evil.serialize(), 0);

  app_.open_project(dir);
  EXPECT_EQ(executions, 1);
  // Clean projects do not trigger anything.
  const auto clean = app_.create_project("clean");
  app_.open_project(clean);
  EXPECT_EQ(executions, 1);
}

TEST_F(Step7Test, ReadFrequencyThroughDll) {
  app_.connect(&plc_);
  plc_.set_operator_setpoint(1064.0);
  plc_.scan_once(sim::kMinute);
  EXPECT_EQ(app_.read_frequency(), 1064.0);
}

TEST_F(Step7Test, ProxyRegistryUnknownIdReturnsNull) {
  EXPECT_EQ(registry_.create("nonsense"), nullptr);
  EXPECT_FALSE(registry_.known("nonsense"));
  EXPECT_TRUE(registry_.known(S7ProxyRegistry::kOriginalDllProgram));
}

}  // namespace
}  // namespace cyd::scada
