#include "scada/plc.hpp"

#include <gtest/gtest.h>

#include "scada/safety.hpp"
#include "scada/step7.hpp"

namespace cyd::scada {
namespace {

class PlcTest : public ::testing::Test {
 protected:
  PlcTest() : plc_(simulation_, "plc-01") {
    auto& drive = plc_.bus().add_drive("vfd-1", DriveVendor::kVacon);
    drive.add_centrifuge("r1");
  }

  sim::Simulation simulation_;
  Plc plc_;
};

TEST_F(PlcTest, FactoryBlocksPresent) {
  EXPECT_TRUE(plc_.has_block("OB1"));
  EXPECT_TRUE(plc_.has_block("OB35"));
  EXPECT_GE(plc_.block_names().size(), 3u);
}

TEST_F(PlcTest, BlockReadWriteDelete) {
  plc_.write_block("FC1869", "injected stuxnet block");
  EXPECT_EQ(plc_.read_block("FC1869"), "injected stuxnet block");
  EXPECT_TRUE(plc_.delete_block("FC1869"));
  EXPECT_FALSE(plc_.delete_block("FC1869"));
  EXPECT_FALSE(plc_.read_block("FC1869").has_value());
}

TEST_F(PlcTest, NormalLogicTracksSetpointAndReportsTruth) {
  plc_.set_operator_setpoint(1064.0);
  plc_.scan_once(sim::kMinute);
  EXPECT_DOUBLE_EQ(plc_.actual_frequency(), 1064.0);
  EXPECT_DOUBLE_EQ(plc_.reported_frequency(), 1064.0);
}

TEST_F(PlcTest, PeriodicScanRunsOnClock) {
  plc_.set_operator_setpoint(1064.0);
  plc_.start(sim::kMinute);
  simulation_.run_for(sim::minutes(10));
  EXPECT_DOUBLE_EQ(plc_.actual_frequency(), 1064.0);
  plc_.stop();
  plc_.set_operator_setpoint(500.0);
  simulation_.run_for(sim::minutes(10));
  // Stopped PLC no longer scans: frequency unchanged.
  EXPECT_DOUBLE_EQ(plc_.actual_frequency(), 1064.0);
}

TEST_F(PlcTest, ScanObserversRunEachCycle) {
  int observed = 0;
  plc_.add_scan_observer([&](Plc&, sim::Duration) { ++observed; });
  plc_.scan_once(sim::kMinute);
  plc_.scan_once(sim::kMinute);
  EXPECT_EQ(observed, 2);
}

TEST_F(PlcTest, SafetyTripsOnHonestOverspeed) {
  DigitalSafetySystem safety(800.0, 1250.0);
  safety.attach(plc_);
  plc_.set_operator_setpoint(1410.0);  // no rootkit: reported == actual
  for (int i = 0; i < 5; ++i) plc_.scan_once(sim::kMinute);
  EXPECT_TRUE(safety.tripped());
  // Drives forced to zero by the safety system.
  EXPECT_DOUBLE_EQ(plc_.bus().drives()[0]->frequency(), 0.0);
  EXPECT_FALSE(plc_.bus().drives()[0]->centrifuges()[0].destroyed());
}

TEST_F(PlcTest, SafetyIgnoresParkedCascade) {
  DigitalSafetySystem safety(800.0, 1250.0);
  safety.attach(plc_);
  plc_.set_operator_setpoint(0.0);
  for (int i = 0; i < 10; ++i) plc_.scan_once(sim::kMinute);
  EXPECT_FALSE(safety.tripped());
}

TEST_F(PlcTest, SafetyNeedsConsecutiveViolations) {
  DigitalSafetySystem safety(800.0, 1250.0, /*trip_after_scans=*/3);
  safety.attach(plc_);
  plc_.set_operator_setpoint(1410.0);
  plc_.scan_once(sim::kMinute);
  plc_.scan_once(sim::kMinute);
  EXPECT_FALSE(safety.tripped());
  plc_.set_operator_setpoint(1064.0);  // back to normal resets the counter
  plc_.scan_once(sim::kMinute);
  plc_.set_operator_setpoint(1410.0);
  plc_.scan_once(sim::kMinute);
  plc_.scan_once(sim::kMinute);
  EXPECT_FALSE(safety.tripped());
  plc_.scan_once(sim::kMinute);
  EXPECT_TRUE(safety.tripped());
}

TEST_F(PlcTest, SafetyBlindToSpoofedReports) {
  // A logic that abuses the drives while reporting nominal values — the
  // essence of Stuxnet's deception. The safety system never fires.
  class SpoofingLogic : public PlcLogic {
   public:
    void scan(Plc& plc, sim::Duration) override {
      for (auto& d : plc.bus().drives()) d->set_frequency(1410.0);
      plc.report_frequency(1064.0);
    }
    std::string name() const override { return "spoof"; }
  };
  DigitalSafetySystem safety(800.0, 1250.0);
  safety.attach(plc_);
  plc_.set_logic(std::make_unique<SpoofingLogic>());
  for (int i = 0; i < 100; ++i) plc_.scan_once(sim::kMinute);
  EXPECT_FALSE(safety.tripped());
  EXPECT_DOUBLE_EQ(plc_.actual_frequency(), 1410.0);
  EXPECT_DOUBLE_EQ(plc_.reported_frequency(), 1064.0);
}

TEST_F(PlcTest, HmiRecordsDeceptionGap) {
  class SpoofingLogic : public PlcLogic {
   public:
    void scan(Plc& plc, sim::Duration) override {
      for (auto& d : plc.bus().drives()) d->set_frequency(1410.0);
      plc.report_frequency(1064.0);
    }
    std::string name() const override { return "spoof"; }
  };
  OperatorHmi hmi;
  hmi.attach(plc_);
  plc_.set_logic(std::make_unique<SpoofingLogic>());
  plc_.scan_once(sim::kMinute);
  plc_.scan_once(sim::kMinute);
  ASSERT_EQ(hmi.history().size(), 2u);
  EXPECT_NEAR(hmi.max_deception(), 346.0, 1.0);  // |1064 - 1410|
  EXPECT_FALSE(hmi.operator_saw_anomaly(800.0, 1250.0));
}

TEST_F(PlcTest, HmiSeesHonestAnomaly) {
  OperatorHmi hmi;
  hmi.attach(plc_);
  plc_.set_operator_setpoint(1410.0);
  plc_.scan_once(sim::kMinute);
  EXPECT_TRUE(hmi.operator_saw_anomaly(800.0, 1250.0));
  EXPECT_DOUBLE_EQ(hmi.max_deception(), 0.0);
}

TEST_F(PlcTest, SafetyResetAfterInspection) {
  DigitalSafetySystem safety(800.0, 1250.0);
  safety.attach(plc_);
  plc_.set_operator_setpoint(1410.0);
  for (int i = 0; i < 5; ++i) plc_.scan_once(sim::kMinute);
  ASSERT_TRUE(safety.tripped());
  EXPECT_GT(safety.violations_seen(), 0);
  // Maintenance resets the trip; with the setpoint corrected, it stays up.
  plc_.set_operator_setpoint(1064.0);
  safety.reset();
  for (int i = 0; i < 10; ++i) plc_.scan_once(sim::kMinute);
  EXPECT_FALSE(safety.tripped());
  EXPECT_DOUBLE_EQ(plc_.actual_frequency(), 1064.0);
}

TEST_F(PlcTest, SetLogicIgnoresNull) {
  plc_.set_logic(nullptr);
  EXPECT_EQ(plc_.logic().name(), "normal-control");
}

}  // namespace
}  // namespace cyd::scada
