#include "winsys/registry.hpp"

#include <gtest/gtest.h>

namespace cyd::winsys {
namespace {

TEST(RegistryTest, SetAndGetString) {
  Registry reg;
  reg.set("HKLM\\System\\Services\\TrkSvr", "ImagePath",
          std::string("c:\\windows\\system32\\trksvr.exe"));
  EXPECT_EQ(reg.get_string("hklm\\system\\services\\trksvr", "imagepath"),
            "c:\\windows\\system32\\trksvr.exe");
}

TEST(RegistryTest, SetAndGetDword) {
  Registry reg;
  reg.set("HKLM\\Policies", "AutorunDisabled", std::uint32_t{1});
  EXPECT_EQ(reg.get_dword("hklm\\policies", "autorundisabled"), 1u);
}

TEST(RegistryTest, TypeMismatchReturnsNullopt) {
  Registry reg;
  reg.set("k", "v", std::uint32_t{5});
  EXPECT_FALSE(reg.get_string("k", "v").has_value());
  reg.set("k", "s", std::string("text"));
  EXPECT_FALSE(reg.get_dword("k", "s").has_value());
}

TEST(RegistryTest, MissingKeyOrValue) {
  Registry reg;
  EXPECT_FALSE(reg.get("nokey", "novalue").has_value());
  reg.set("key", "a", std::string("x"));
  EXPECT_FALSE(reg.get("key", "b").has_value());
}

TEST(RegistryTest, KeysAreCaseInsensitive) {
  Registry reg;
  reg.set("HKLM\\Software\\Foo", "Bar", std::string("1"));
  EXPECT_TRUE(reg.key_exists("hklm\\software\\foo"));
  EXPECT_TRUE(reg.key_exists("HKLM/SOFTWARE/FOO"));
}

TEST(RegistryTest, RemoveValue) {
  Registry reg;
  reg.set("k", "a", std::string("1"));
  reg.set("k", "b", std::string("2"));
  EXPECT_TRUE(reg.remove_value("k", "a"));
  EXPECT_FALSE(reg.remove_value("k", "a"));
  EXPECT_FALSE(reg.get("k", "a").has_value());
  EXPECT_TRUE(reg.get("k", "b").has_value());
}

TEST(RegistryTest, RemoveKeyIsRecursive) {
  Registry reg;
  reg.set("hklm\\services\\evil", "ImagePath", std::string("x"));
  reg.set("hklm\\services\\evil\\params", "Config", std::string("y"));
  reg.set("hklm\\services\\evilother", "ImagePath", std::string("z"));
  EXPECT_EQ(reg.remove_key("hklm\\services\\evil"), 2u);
  EXPECT_FALSE(reg.key_exists("hklm\\services\\evil"));
  EXPECT_FALSE(reg.key_exists("hklm\\services\\evil\\params"));
  EXPECT_TRUE(reg.key_exists("hklm\\services\\evilother"));
}

TEST(RegistryTest, ValuesEnumeration) {
  Registry reg;
  reg.set("k", "b", std::string("2"));
  reg.set("k", "a", std::string("1"));
  EXPECT_EQ(reg.values("k"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(reg.values("nokey").empty());
}

TEST(RegistryTest, AllEntriesSweep) {
  Registry reg;
  reg.set("k1", "v1", std::string("a"));
  reg.set("k2", "v2", std::string("b"));
  EXPECT_EQ(reg.all_entries().size(), 2u);
}

TEST(RegistryTest, OverwriteValue) {
  Registry reg;
  reg.set("k", "v", std::string("old"));
  reg.set("k", "v", std::string("new"));
  EXPECT_EQ(reg.get_string("k", "v"), "new");
}

}  // namespace
}  // namespace cyd::winsys
