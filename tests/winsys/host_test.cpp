#include "winsys/host.hpp"

#include <gtest/gtest.h>

#include "pki/signing.hpp"
#include "winsys/usb.hpp"

namespace cyd::winsys {
namespace {

/// Test behaviour: bumps a counter; optionally stays resident.
class CounterProgram : public Program {
 public:
  CounterProgram(int* counter, bool resident, std::string name = "counter.exe")
      : counter_(counter), resident_(resident), name_(std::move(name)) {}
  bool run(Host&, const ExecContext&) override {
    ++*counter_;
    return resident_;
  }
  std::string process_name() const override { return name_; }

 private:
  int* counter_;
  bool resident_;
  std::string name_;
};

common::Bytes make_exe(const std::string& program_id) {
  return pe::Builder{}
      .program(program_id)
      .filename(program_id + ".exe")
      .section(".text", "code for " + program_id, true)
      .build()
      .serialize();
}

class HostTest : public ::testing::Test {
 protected:
  HostTest() : host_(simulation_, programs_, "ws-01", OsVersion::kWin7) {
    programs_.register_program("test.oneshot", [this] {
      return std::make_unique<CounterProgram>(&oneshot_runs_, false);
    });
    programs_.register_program("test.resident", [this] {
      return std::make_unique<CounterProgram>(&resident_runs_, true,
                                              "resident.exe");
    });
  }

  sim::Simulation simulation_;
  ProgramRegistry programs_;
  Host host_;
  int oneshot_runs_ = 0;
  int resident_runs_ = 0;
};

TEST_F(HostTest, FreshHostHasSystemDirs) {
  EXPECT_TRUE(host_.fs().is_dir(Host::system_dir()));
  EXPECT_EQ(host_.state(), HostState::kRunning);
}

TEST_F(HostTest, ExecuteRunsRegisteredProgram) {
  host_.fs().write_file("c:\\tool.exe", make_exe("test.oneshot"), 0);
  const auto result = host_.execute_file("c:\\tool.exe", {});
  EXPECT_TRUE(result.started());
  EXPECT_EQ(oneshot_runs_, 1);
  // One-shot processes do not linger.
  EXPECT_TRUE(host_.list_processes().empty());
}

TEST_F(HostTest, ResidentProgramStaysInProcessList) {
  host_.fs().write_file("c:\\svc.exe", make_exe("test.resident"), 0);
  const auto result = host_.execute_file("c:\\svc.exe", {});
  EXPECT_TRUE(result.started());
  ASSERT_EQ(host_.list_processes().size(), 1u);
  EXPECT_EQ(host_.list_processes()[0]->name, "resident.exe");
  EXPECT_NE(host_.find_process_by_name("RESIDENT.EXE"), nullptr);
}

TEST_F(HostTest, ExecuteMissingFile) {
  EXPECT_EQ(host_.execute_file("c:\\ghost.exe", {}).status,
            ExecResult::Status::kNoSuchFile);
}

TEST_F(HostTest, ExecuteGarbageIsNotExecutable) {
  host_.fs().write_file("c:\\readme.txt", "just text", 0);
  EXPECT_EQ(host_.execute_file("c:\\readme.txt", {}).status,
            ExecResult::Status::kNotExecutable);
}

TEST_F(HostTest, ExecuteUnknownProgramIsInert) {
  host_.fs().write_file("c:\\alien.exe", make_exe("no.such.program"), 0);
  EXPECT_EQ(host_.execute_file("c:\\alien.exe", {}).status,
            ExecResult::Status::kUnknownProgram);
}

TEST_F(HostTest, ExecInterceptorBlocks) {
  host_.fs().write_file("c:\\mal.exe", make_exe("test.oneshot"), 0);
  host_.add_exec_interceptor(
      [](const Path& p, const pe::Image&, const ExecContext&) {
        return p.filename() != "mal.exe";
      });
  EXPECT_EQ(host_.execute_file("c:\\mal.exe", {}).status,
            ExecResult::Status::kBlockedByPolicy);
  EXPECT_EQ(oneshot_runs_, 0);
}

TEST_F(HostTest, KillProcessRemoves) {
  host_.fs().write_file("c:\\svc.exe", make_exe("test.resident"), 0);
  const auto result = host_.execute_file("c:\\svc.exe", {});
  EXPECT_TRUE(host_.kill_process(result.pid));
  EXPECT_FALSE(host_.kill_process(result.pid));
  EXPECT_TRUE(host_.list_processes().empty());
}

TEST_F(HostTest, ServiceLifecycle) {
  host_.fs().write_file("c:\\windows\\system32\\svc.exe",
                        make_exe("test.resident"), 0);
  Service svc;
  svc.name = "TestSvc";
  svc.binary_path = Path("c:\\windows\\system32\\svc.exe");
  ASSERT_TRUE(host_.install_service(svc));
  EXPECT_FALSE(host_.install_service(svc));  // duplicate
  EXPECT_TRUE(host_.registry().key_exists(
      "hklm\\system\\currentcontrolset\\services\\TestSvc"));

  ASSERT_TRUE(host_.start_service("TestSvc"));
  EXPECT_EQ(resident_runs_, 1);
  EXPECT_TRUE(host_.find_service("TestSvc")->running);
  EXPECT_FALSE(host_.start_service("TestSvc"));  // already running

  EXPECT_TRUE(host_.stop_service("TestSvc"));
  EXPECT_FALSE(host_.find_service("TestSvc")->running);
  EXPECT_TRUE(host_.list_processes().empty());

  EXPECT_TRUE(host_.delete_service("TestSvc"));
  EXPECT_EQ(host_.find_service("TestSvc"), nullptr);
  EXPECT_FALSE(host_.registry().key_exists(
      "hklm\\system\\currentcontrolset\\services\\TestSvc"));
}

TEST_F(HostTest, AutostartServiceStartsOnBoot) {
  host_.fs().write_file("c:\\svc.exe", make_exe("test.resident"), 0);
  Service svc;
  svc.name = "AutoSvc";
  svc.binary_path = Path("c:\\svc.exe");
  svc.autostart = true;
  host_.install_service(svc);
  host_.boot();
  EXPECT_EQ(resident_runs_, 1);
  EXPECT_TRUE(host_.find_service("AutoSvc")->running);
}

TEST_F(HostTest, ScheduledTaskFiresAtTime) {
  host_.fs().write_file("c:\\task.exe", make_exe("test.oneshot"), 0);
  host_.schedule_task("wiper-task", Path("c:\\task.exe"),
                      sim::minutes(90));
  simulation_.run_until(sim::minutes(89));
  EXPECT_EQ(oneshot_runs_, 0);
  simulation_.run_until(sim::minutes(91));
  EXPECT_EQ(oneshot_runs_, 1);
}

TEST_F(HostTest, PeriodicTaskRepeats) {
  host_.fs().write_file("c:\\task.exe", make_exe("test.oneshot"), 0);
  host_.schedule_task("beacon", Path("c:\\task.exe"), sim::minutes(10),
                      sim::minutes(10));
  simulation_.run_until(sim::minutes(35));
  EXPECT_EQ(oneshot_runs_, 3);
}

TEST_F(HostTest, CancelledTaskDoesNotFire) {
  host_.fs().write_file("c:\\task.exe", make_exe("test.oneshot"), 0);
  host_.schedule_task("t", Path("c:\\task.exe"), sim::minutes(10));
  EXPECT_TRUE(host_.cancel_task("t"));
  simulation_.run_until(sim::hours(1));
  EXPECT_EQ(oneshot_runs_, 0);
}

TEST_F(HostTest, RawDiskWriteDeniedWithoutDriver) {
  EXPECT_FALSE(host_.raw_overwrite_mbr("junk", "wiper"));
  EXPECT_TRUE(host_.disk().mbr_intact());
}

TEST_F(HostTest, UnsignedDriverPolicyGate) {
  auto driver = pe::Builder{}
                    .program("eldos.rawdisk")
                    .filename("drdisk.sys")
                    .section(".text", "raw disk driver", true)
                    .build();
  host_.fs().write_file("c:\\windows\\system32\\drivers\\drdisk.sys",
                        driver.serialize(), 0);

  host_.set_driver_policy(DriverPolicy::kRequireValidSignature);
  EXPECT_EQ(host_.load_driver("c:\\windows\\system32\\drivers\\drdisk.sys",
                              "drdisk", kCapRawDiskAccess),
            DriverLoadResult::kRejectedUnsigned);

  host_.set_driver_policy(DriverPolicy::kAllowUnsigned);
  EXPECT_EQ(host_.load_driver("c:\\windows\\system32\\drivers\\drdisk.sys",
                              "drdisk", kCapRawDiskAccess),
            DriverLoadResult::kLoaded);
  EXPECT_TRUE(host_.has_capability(kCapRawDiskAccess));
}

TEST_F(HostTest, SignedDriverLoadsUnderStrictPolicy) {
  auto ca = pki::CertificateAuthority::create_root(
      "Root", pki::HashAlgorithm::kStrong64, 0, sim::days(10000), 1);
  auto key = pki::KeyPair::generate(2);
  auto cert = ca.issue("EldoS Corporation", pki::kUsageCodeSigning,
                       pki::HashAlgorithm::kStrong64, 0, sim::days(10000),
                       key);
  host_.cert_store().add(ca.certificate());
  host_.trust_store().trust_root(ca.certificate().serial);

  auto driver = pe::Builder{}
                    .program("eldos.rawdisk")
                    .section(".text", "raw disk driver", true)
                    .build();
  pki::sign_image(driver, cert, key);
  host_.fs().write_file("c:\\drivers\\drdisk.sys", driver.serialize(), 0);

  host_.set_driver_policy(DriverPolicy::kRequireValidSignature);
  EXPECT_EQ(host_.load_driver("c:\\drivers\\drdisk.sys", "drdisk",
                              kCapRawDiskAccess),
            DriverLoadResult::kLoaded);
  EXPECT_EQ(host_.loaded_drivers()[0].signer_subject, "EldoS Corporation");
}

TEST_F(HostTest, MbrWipeMakesHostUnbootable) {
  auto driver = pe::Builder{}.program("eldos.rawdisk").build();
  host_.fs().write_file("c:\\drdisk.sys", driver.serialize(), 0);
  host_.load_driver("c:\\drdisk.sys", "drdisk", kCapRawDiskAccess);
  EXPECT_TRUE(host_.raw_overwrite_mbr("GARBAGE", "wiper"));
  EXPECT_FALSE(host_.disk().mbr_intact());
  host_.reboot();
  EXPECT_EQ(host_.state(), HostState::kUnbootable);
  // A dead host cannot execute anything.
  host_.fs().write_file("c:\\x.exe", make_exe("test.oneshot"), 0);
  EXPECT_EQ(host_.execute_file("c:\\x.exe", {}).status,
            ExecResult::Status::kHostDown);
}

TEST_F(HostTest, UnloadDriverRemovesCapability) {
  auto driver = pe::Builder{}.program("d").build();
  host_.fs().write_file("c:\\d.sys", driver.serialize(), 0);
  host_.load_driver("c:\\d.sys", "d", kCapRawDiskAccess);
  EXPECT_TRUE(host_.unload_driver("d"));
  EXPECT_FALSE(host_.has_capability(kCapRawDiskAccess));
  EXPECT_FALSE(host_.unload_driver("d"));
}

TEST_F(HostTest, FileHidingNeedsRootkitDriver) {
  host_.fs().write_file("c:\\usb\\~wtr4132.tmp", "stuxnet dll", 0);
  host_.fs().write_file("c:\\usb\\readme.txt", "benign", 0);
  host_.add_file_hiding_filter([](const Path& p) {
    return p.filename().starts_with("~wtr");
  });
  // Without a driver the filter is inert.
  EXPECT_EQ(host_.visible_dir_entries("c:\\usb").size(), 2u);
  // With the rootkit driver loaded the file vanishes from listings.
  auto driver = pe::Builder{}.program("rk").build();
  host_.fs().write_file("c:\\rk.sys", driver.serialize(), 0);
  host_.load_driver("c:\\rk.sys", "rk", kCapFileHiding);
  const auto visible = host_.visible_dir_entries("c:\\usb");
  ASSERT_EQ(visible.size(), 1u);
  EXPECT_EQ(visible[0], "readme.txt");
  // The raw filesystem still has both (rootkits lie to users, not to disk).
  EXPECT_EQ(host_.fs().list_dir("c:\\usb").size(), 2u);
}

TEST_F(HostTest, ProcessHidingFiltersListing) {
  host_.fs().write_file("c:\\svc.exe", make_exe("test.resident"), 0);
  const auto result = host_.execute_file("c:\\svc.exe", {});
  host_.find_process(result.pid)->hidden = true;
  auto rk = pe::Builder{}.program("rk").build();
  host_.fs().write_file("c:\\rk.sys", rk.serialize(), 0);
  host_.load_driver("c:\\rk.sys", "rk", kCapProcessHiding);
  EXPECT_TRUE(host_.list_processes().empty());
  EXPECT_EQ(host_.list_processes(/*include_hidden=*/true).size(), 1u);
}

TEST_F(HostTest, UsbPlugMountsAndTracksHistory) {
  UsbDrive stick("stick-1");
  EXPECT_TRUE(host_.plug_usb(stick));
  EXPECT_EQ(stick.plugged_into(), &host_);
  EXPECT_EQ(stick.mount_letter(), 'd');
  EXPECT_FALSE(host_.plug_usb(stick));  // already plugged
  EXPECT_TRUE(stick.visited_hosts().contains("ws-01"));
  EXPECT_FALSE(stick.has_seen_internet_host());

  EXPECT_TRUE(host_.unplug_usb(stick));
  EXPECT_EQ(stick.plugged_into(), nullptr);
  EXPECT_FALSE(host_.unplug_usb(stick));
}

TEST_F(HostTest, UsbSeesInternetHost) {
  host_.set_internet_access(true);
  UsbDrive stick("stick-2");
  host_.plug_usb(stick);
  EXPECT_TRUE(stick.has_seen_internet_host());
}

TEST_F(HostTest, UsbDataTravelsBetweenHosts) {
  Host other(simulation_, programs_, "ws-02", OsVersion::kWinXp);
  UsbDrive stick("stick-3");
  host_.plug_usb(stick);
  host_.fs().write_file("d:\\docs\\leak.docx", "stolen", 0);
  host_.unplug_usb(stick);
  other.plug_usb(stick);
  EXPECT_EQ(other.fs().read_file("d:\\docs\\leak.docx"), "stolen");
}

TEST_F(HostTest, LnkExploitFiresOnVulnerableHost) {
  host_.make_vulnerable(exploits::VulnId::kMs10_046_Lnk);
  UsbDrive stick("stuxnet-stick");
  // Craft the stick before plugging: shortcut + payload.
  {
    FileSystem staging;
    staging.mount('u', stick.volume());
    staging.write_file("u:\\payload.exe", make_exe("test.oneshot"), 0);
    staging.write_file(
        "u:\\shortcut.lnk",
        std::string(Host::kLnkExploitMagic) + "d:\\payload.exe", 0);
  }
  host_.plug_usb(stick);  // autoplay renders the folder
  EXPECT_EQ(oneshot_runs_, 1);
}

TEST_F(HostTest, LnkExploitInertOnPatchedHost) {
  // Not vulnerable: rendering the shortcut does nothing.
  UsbDrive stick("stuxnet-stick");
  {
    FileSystem staging;
    staging.mount('u', stick.volume());
    staging.write_file("u:\\payload.exe", make_exe("test.oneshot"), 0);
    staging.write_file(
        "u:\\shortcut.lnk",
        std::string(Host::kLnkExploitMagic) + "d:\\payload.exe", 0);
  }
  host_.plug_usb(stick);
  EXPECT_EQ(oneshot_runs_, 0);
}

TEST_F(HostTest, AutorunFiresOnlyWhenEnabled) {
  UsbDrive stick("autorun-stick");
  {
    FileSystem staging;
    staging.mount('u', stick.volume());
    staging.write_file("u:\\evil.exe", make_exe("test.oneshot"), 0);
    staging.write_file("u:\\autorun.inf", "[autorun]\nopen=evil.exe\n", 0);
  }
  host_.plug_usb(stick);
  EXPECT_EQ(oneshot_runs_, 0);  // autorun hardening in effect

  host_.unplug_usb(stick);
  host_.make_vulnerable(exploits::VulnId::kAutorunEnabled);
  host_.plug_usb(stick);
  EXPECT_EQ(oneshot_runs_, 1);
}

TEST_F(HostTest, UsbObserverNotified) {
  int notifications = 0;
  host_.add_usb_observer([&](UsbDrive&) { ++notifications; });
  UsbDrive stick("s");
  host_.plug_usb(stick);
  EXPECT_EQ(notifications, 1);
}

TEST_F(HostTest, EventLogAccumulates) {
  host_.log_event("av", "detection: trojan.gen");
  host_.log_event("kernel", "driver rejected");
  ASSERT_EQ(host_.event_log().size(), 2u);
  EXPECT_EQ(host_.event_log()[0].source, "av");
  host_.clear_event_log();
  EXPECT_TRUE(host_.event_log().empty());
}

TEST_F(HostTest, EventLogCapDropsOlderHalfAndCountsDrops) {
  host_.set_event_log_cap(8);
  for (int i = 0; i < 9; ++i) {
    host_.log_event("gen", "entry " + std::to_string(i));
  }
  // Hitting the cap discards the older half; the newest entries survive.
  EXPECT_EQ(host_.event_log_dropped(), 5u);
  ASSERT_FALSE(host_.event_log().empty());
  EXPECT_EQ(host_.event_log().front().message, "entry 5");
  EXPECT_EQ(host_.event_log().back().message, "entry 8");
}

TEST_F(HostTest, ClearEventLogResetsDropCounter) {
  host_.set_event_log_cap(8);
  for (int i = 0; i < 9; ++i) {
    host_.log_event("gen", "entry " + std::to_string(i));
  }
  ASSERT_GT(host_.event_log_dropped(), 0u);
  host_.clear_event_log();
  // A clear opens a fresh forensic window: no entries, no phantom drops
  // from before the wipe.
  EXPECT_TRUE(host_.event_log().empty());
  EXPECT_EQ(host_.event_log_dropped(), 0u);
  host_.log_event("av", "post-clear entry");
  EXPECT_EQ(host_.event_log().size(), 1u);
  EXPECT_EQ(host_.event_log_dropped(), 0u);
}

TEST_F(HostTest, ComponentAttachAndRetrieve) {
  struct Marker : HostComponent {
    int value = 7;
  };
  host_.attach_component("marker", std::make_shared<Marker>());
  auto* marker = host_.component<Marker>("marker");
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->value, 7);
  EXPECT_EQ(host_.component<Marker>("missing"), nullptr);
  host_.detach_component("marker");
  EXPECT_FALSE(host_.has_component("marker"));
}

TEST_F(HostTest, VulnerabilityPatching) {
  host_.make_vulnerable(exploits::VulnId::kMs10_061_Spooler);
  EXPECT_TRUE(host_.vulnerable_to(exploits::VulnId::kMs10_061_Spooler));
  host_.patch(exploits::VulnId::kMs10_061_Spooler);
  EXPECT_FALSE(host_.vulnerable_to(exploits::VulnId::kMs10_061_Spooler));
}

TEST_F(HostTest, X64DefaultsToStrictDriverPolicy) {
  Host x64(simulation_, programs_, "ws-64", OsVersion::kWin7x64);
  EXPECT_EQ(x64.driver_policy(), DriverPolicy::kRequireValidSignature);
  EXPECT_EQ(host_.driver_policy(), DriverPolicy::kAllowUnsigned);
}

}  // namespace
}  // namespace cyd::winsys
