#include "winsys/filesystem.hpp"

#include <gtest/gtest.h>

namespace cyd::winsys {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest() { fs_.add_volume('c'); }
  FileSystem fs_;
};

TEST_F(FileSystemTest, WriteCreatesParentsAndReadsBack) {
  EXPECT_TRUE(fs_.write_file("c:\\users\\eng\\report.docx", "secret", 100));
  EXPECT_TRUE(fs_.is_dir("c:\\users\\eng"));
  EXPECT_TRUE(fs_.is_file("c:\\users\\eng\\report.docx"));
  EXPECT_EQ(fs_.read_file("c:\\users\\eng\\report.docx"), "secret");
}

TEST_F(FileSystemTest, ReadMissingReturnsNullopt) {
  EXPECT_FALSE(fs_.read_file("c:\\nope.txt").has_value());
}

TEST_F(FileSystemTest, WriteToUnknownVolumeFails) {
  EXPECT_FALSE(fs_.write_file("z:\\x.txt", "data", 0));
}

TEST_F(FileSystemTest, OverwriteBumpsCountAndTimestamps) {
  fs_.write_file("c:\\a.txt", "v1", 10);
  fs_.write_file("c:\\a.txt", "v2", 20);
  const FileNode* node = fs_.stat("c:\\a.txt");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->data, "v2");
  EXPECT_EQ(node->created, 10);
  EXPECT_EQ(node->modified, 20);
  EXPECT_EQ(node->overwrite_count, 1);
}

TEST_F(FileSystemTest, ReadonlyFileResistsOverwrite) {
  FileAttr attr;
  attr.readonly = true;
  fs_.write_file("c:\\locked.sys", "original", 0, attr);
  EXPECT_FALSE(fs_.write_file("c:\\locked.sys", "evil", 5));
  EXPECT_EQ(fs_.read_file("c:\\locked.sys"), "original");
}

TEST_F(FileSystemTest, CannotWriteOverDirectory) {
  fs_.mkdirs("c:\\windows");
  EXPECT_FALSE(fs_.write_file("c:\\windows", "data", 0));
}

TEST_F(FileSystemTest, CannotMkdirOverFile) {
  fs_.write_file("c:\\file", "x", 0);
  EXPECT_FALSE(fs_.mkdirs("c:\\file\\sub"));
}

TEST_F(FileSystemTest, FailedMkdirsLeavesDirectoryTreeUntouched) {
  // A file dropped straight onto the volume (the USB/infection modules write
  // through Volume::files() directly) blocks a mid-chain component. The
  // pre-fix loop had already inserted the fresh ancestor "a" by the time it
  // saw the blocking file, mutating the tree on a failed call.
  Volume* vol = fs_.volume('c');
  vol->files()["a\\blocker"] = FileNode{};
  const auto before = vol->dirs();
  EXPECT_FALSE(fs_.mkdirs("c:\\a\\blocker\\deep\\er"));
  EXPECT_EQ(vol->dirs(), before);
  EXPECT_FALSE(fs_.is_dir("c:\\a"));
}

TEST_F(FileSystemTest, FailedWriteLeavesNoPhantomDirs) {
  Volume* vol = fs_.volume('c');
  vol->files()["a\\blocker"] = FileNode{};
  const auto before = vol->dirs();
  EXPECT_FALSE(fs_.write_file("c:\\a\\blocker\\sub\\f.txt", "data", 7));
  EXPECT_EQ(vol->dirs(), before);
  EXPECT_FALSE(fs_.is_file("c:\\a\\blocker\\sub\\f.txt"));
}

TEST_F(FileSystemTest, FailedRenameLeavesNoPhantomDirs) {
  fs_.write_file("c:\\src.txt", "content", 0);
  Volume* vol = fs_.volume('c');
  vol->files()["a\\blocker"] = FileNode{};
  const auto before = vol->dirs();
  EXPECT_FALSE(
      fs_.rename("c:\\src.txt", "c:\\a\\blocker\\sub\\dst.txt", 1));
  EXPECT_EQ(vol->dirs(), before);
  EXPECT_EQ(fs_.read_file("c:\\src.txt"), "content");
}

TEST_F(FileSystemTest, DeleteLeavesRecoverableTombstone) {
  fs_.write_file("c:\\docs\\plan.docx", "the plan", 100);
  EXPECT_TRUE(fs_.delete_file("c:\\docs\\plan.docx", 200));
  EXPECT_FALSE(fs_.is_file("c:\\docs\\plan.docx"));
  const auto& stones = fs_.volume('c')->tombstones();
  ASSERT_EQ(stones.size(), 1u);
  EXPECT_EQ(stones[0].rel_path, "docs\\plan.docx");
  EXPECT_EQ(stones[0].data, "the plan");
  EXPECT_FALSE(stones[0].shredded);
  EXPECT_EQ(stones[0].deleted_at, 200);
}

TEST_F(FileSystemTest, ShredLeavesNothing) {
  fs_.write_file("c:\\evidence.log", "who did it", 100);
  EXPECT_TRUE(fs_.delete_file("c:\\evidence.log", 200, /*shred=*/true));
  const auto& stones = fs_.volume('c')->tombstones();
  ASSERT_EQ(stones.size(), 1u);
  EXPECT_TRUE(stones[0].shredded);
  EXPECT_TRUE(stones[0].data.empty());
}

TEST_F(FileSystemTest, DeleteMissingFails) {
  EXPECT_FALSE(fs_.delete_file("c:\\ghost", 0));
}

TEST_F(FileSystemTest, DeleteTreeRemovesFilesAndDirs) {
  fs_.write_file("c:\\proj\\a.txt", "1", 0);
  fs_.write_file("c:\\proj\\sub\\b.txt", "2", 0);
  fs_.write_file("c:\\other.txt", "3", 0);
  EXPECT_EQ(fs_.delete_tree("c:\\proj", 10), 2u);
  EXPECT_FALSE(fs_.exists("c:\\proj"));
  EXPECT_FALSE(fs_.exists("c:\\proj\\sub"));
  EXPECT_TRUE(fs_.is_file("c:\\other.txt"));
}

TEST_F(FileSystemTest, RenameMovesContent) {
  fs_.write_file("c:\\windows\\s7otbxdx.dll", "original step7 lib", 5);
  EXPECT_TRUE(
      fs_.rename("c:\\windows\\s7otbxdx.dll", "c:\\windows\\s7otbxsx.dll", 9));
  EXPECT_FALSE(fs_.is_file("c:\\windows\\s7otbxdx.dll"));
  EXPECT_EQ(fs_.read_file("c:\\windows\\s7otbxsx.dll"), "original step7 lib");
}

TEST_F(FileSystemTest, RenameRefusesToClobber) {
  fs_.write_file("c:\\a", "1", 0);
  fs_.write_file("c:\\b", "2", 0);
  EXPECT_FALSE(fs_.rename("c:\\a", "c:\\b", 1));
  EXPECT_EQ(fs_.read_file("c:\\b"), "2");
}

TEST_F(FileSystemTest, ListDirShowsImmediateChildrenOnly) {
  fs_.write_file("c:\\dir\\file1", "x", 0);
  fs_.write_file("c:\\dir\\sub\\file2", "y", 0);
  fs_.mkdirs("c:\\dir\\emptydir");
  const auto entries = fs_.list_dir("c:\\dir");
  EXPECT_EQ(entries,
            (std::vector<std::string>{"emptydir", "file1", "sub"}));
}

TEST_F(FileSystemTest, ListRootDir) {
  fs_.write_file("c:\\top.txt", "x", 0);
  fs_.mkdirs("c:\\windows");
  const auto entries = fs_.list_dir("c:");
  EXPECT_EQ(entries, (std::vector<std::string>{"top.txt", "windows"}));
}

TEST_F(FileSystemTest, ListMissingDirIsEmpty) {
  EXPECT_TRUE(fs_.list_dir("c:\\nothere").empty());
}

TEST_F(FileSystemTest, FindFilesRecursive) {
  fs_.write_file("c:\\d\\1", "", 0);
  fs_.write_file("c:\\d\\s\\2", "", 0);
  fs_.write_file("c:\\e\\3", "", 0);
  EXPECT_EQ(fs_.find_files("c:\\d").size(), 2u);
  EXPECT_EQ(fs_.find_files("c:").size(), 3u);
}

TEST_F(FileSystemTest, MountSharedVolumeSeesSameData) {
  auto usb_vol = std::make_shared<Volume>();
  FileSystem host_a, host_b;
  host_a.add_volume('c');
  host_b.add_volume('c');

  ASSERT_TRUE(host_a.mount('e', usb_vol));
  host_a.write_file("e:\\payload.exe", "malware", 10);
  ASSERT_TRUE(host_a.unmount('e'));

  // Same stick, different letter on the second host.
  ASSERT_TRUE(host_b.mount('f', usb_vol));
  EXPECT_EQ(host_b.read_file("f:\\payload.exe"), "malware");
}

TEST_F(FileSystemTest, MountRejectsTakenLetter) {
  auto vol = std::make_shared<Volume>();
  EXPECT_FALSE(fs_.mount('c', vol));
}

TEST_F(FileSystemTest, UnmountOnlyRemovable) {
  EXPECT_FALSE(fs_.unmount('c'));
  auto vol = std::make_shared<Volume>();
  fs_.mount('e', vol);
  EXPECT_TRUE(fs_.unmount('e'));
  EXPECT_FALSE(fs_.unmount('e'));
}

TEST_F(FileSystemTest, FreeLetterSkipsTaken) {
  EXPECT_EQ(fs_.free_letter(), 'd');
  fs_.mount('d', std::make_shared<Volume>());
  EXPECT_EQ(fs_.free_letter(), 'e');
}

TEST_F(FileSystemTest, ObserverSeesWrites) {
  std::vector<std::string> seen;
  fs_.add_observer([&](const FsEvent& e) {
    if (e.kind == FsEvent::Kind::kWrite) seen.push_back(e.path.str());
  });
  fs_.write_file("c:\\x", "1", 0);
  fs_.write_file("c:\\y", "2", 0);
  EXPECT_EQ(seen, (std::vector<std::string>{"c:\\x", "c:\\y"}));
}

TEST_F(FileSystemTest, ObserverSeesDeletes) {
  int deletes = 0;
  fs_.add_observer([&](const FsEvent& e) {
    if (e.kind == FsEvent::Kind::kDelete) ++deletes;
  });
  fs_.write_file("c:\\x", "1", 0);
  fs_.delete_file("c:\\x", 1);
  EXPECT_EQ(deletes, 1);
}

TEST_F(FileSystemTest, UsedBytesSumsFileSizes) {
  fs_.write_file("c:\\a", "12345", 0);
  fs_.write_file("c:\\b", "123", 0);
  EXPECT_EQ(fs_.volume('c')->used_bytes(), 8u);
}

TEST_F(FileSystemTest, HiddenAttributePersists) {
  FileAttr attr;
  attr.hidden = true;
  attr.system = true;
  fs_.write_file("c:\\secret.db", "flame hidden database", 0, attr);
  const FileNode* node = fs_.stat("c:\\secret.db");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->attr.hidden);
  EXPECT_TRUE(node->attr.system);
}

}  // namespace
}  // namespace cyd::winsys
