// Template images + copy-on-write hosts: an image-backed host must behave
// exactly like a materialized host with the same content, while its own
// delta layer holds only what the simulation actually touched. These are
// the unit-level guarantees the epidemic bench's byte-identity pass and
// 10⁵-host worlds stand on.

#include "winsys/host_image.hpp"

#include <gtest/gtest.h>

#include "analysis/forensics.hpp"
#include "core/world.hpp"
#include "winsys/usb.hpp"

namespace cyd::winsys {
namespace {

class HostImageTest : public ::testing::Test {
 protected:
  HostImageTest()
      : image_(make_archetype_image(HostArchetype::kOfficePc)),
        host_(simulation_, programs_, "cow-01", image_) {}

  sim::Simulation simulation_;
  ProgramRegistry programs_;
  std::shared_ptr<const HostImage> image_;
  Host host_;
};

TEST_F(HostImageTest, ReadsImageContentThroughEmptyDelta) {
  // The image tree is visible without a single delta entry.
  ASSERT_TRUE(host_.fs().volume('c')->files().empty());
  const auto bytes =
      host_.fs().read_file(Path("c:\\windows\\system32\\ntdll.dll"));
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, "MZ stock image bytes: c:\\windows\\system32\\ntdll.dll");
  EXPECT_EQ(host_.os(), OsVersion::kWin7);
  EXPECT_EQ(host_.image(), image_.get());
}

TEST_F(HostImageTest, WritesMaterializeOnlyTouchedPaths) {
  host_.fs().write_file(Path("c:\\users\\staff\\notes.txt"), "draft",
                        sim::kHour);
  host_.fs().write_file(Path("c:\\windows\\win.ini"), "; edited",
                        2 * sim::kHour);

  // Exactly the two touched paths live in the delta; the rest stays shared.
  EXPECT_EQ(host_.fs().volume('c')->files().size(), 2u);
  EXPECT_EQ(*host_.fs().read_file(Path("c:\\users\\staff\\notes.txt")),
            "draft");
  // The delta copy shadows the image's win.ini...
  EXPECT_EQ(*host_.fs().read_file(Path("c:\\windows\\win.ini")), "; edited");
  // ...without disturbing the image itself or its other files.
  EXPECT_EQ(image_->system_volume()->find_file("windows\\win.ini")->data,
            "; for 16-bit app support");
  EXPECT_TRUE(
      host_.fs().exists(Path("c:\\windows\\system32\\kernel32.dll")));
}

TEST_F(HostImageTest, DeletingImageFileTombstonesWithoutTouchingImage) {
  const Path victim("c:\\windows\\system32\\ntdll.dll");
  ASSERT_TRUE(host_.fs().delete_file(victim, sim::kHour));

  EXPECT_FALSE(host_.fs().read_file(victim).has_value());
  EXPECT_FALSE(host_.fs().exists(victim));
  // The tombstone carries the image content for later carving.
  const auto& stones = host_.fs().volume('c')->tombstones();
  ASSERT_EQ(stones.size(), 1u);
  EXPECT_EQ(stones[0].rel_path, "windows\\system32\\ntdll.dll");
  EXPECT_EQ(stones[0].data,
            "MZ stock image bytes: c:\\windows\\system32\\ntdll.dll");
  // Other hosts stamped from the same image still see the file.
  Host sibling(simulation_, programs_, "cow-02", image_);
  EXPECT_TRUE(sibling.fs().read_file(victim).has_value());
}

TEST_F(HostImageTest, UsbVolumeIsSharedAcrossImageBackedHosts) {
  Host courier(simulation_, programs_, "cow-03", image_);
  UsbDrive stick("stick-1");

  ASSERT_TRUE(host_.plug_usb(stick));
  const char letter = stick.mount_letter();
  ASSERT_NE(letter, '\0');
  host_.fs().write_file(Path(std::string(1, letter) + ":\\ferry.dat"),
                        "payload", sim::kHour);
  ASSERT_TRUE(host_.unplug_usb(stick));

  // The stick's volume is one shared object, not a per-host delta: the
  // second image-backed host sees the bytes the first one wrote.
  ASSERT_TRUE(courier.plug_usb(stick));
  const auto bytes = courier.fs().read_file(
      Path(std::string(1, stick.mount_letter()) + ":\\ferry.dat"));
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, "payload");
}

TEST_F(HostImageTest, ForensicsRecoversDeltaAndImageTombstones) {
  // A dropped-then-deleted implant file (delta lifecycle)...
  host_.fs().write_file(Path("c:\\windows\\temp\\~wtr4132.tmp"), "dropper",
                        sim::kHour);
  ASSERT_TRUE(host_.fs().delete_file(Path("c:\\windows\\temp\\~wtr4132.tmp"),
                                     2 * sim::kHour));
  // ...and a deleted image-backed file both leave carvable tombstones.
  ASSERT_TRUE(host_.fs().delete_file(
      Path("c:\\windows\\system32\\ntdll.dll"), 3 * sim::kHour));

  const auto report = analysis::examine_host(host_, {"~wtr4132", "ntdll"});
  EXPECT_TRUE(report.live_artifacts.empty());
  ASSERT_EQ(report.recovered_files.size(), 2u);
  EXPECT_EQ(report.shredded_remnants, 0u);
  EXPECT_GT(report.recoverability(), 0.99);
}

TEST(HostImageFleetTest, EightArchetypeFleetCostsOneDeltaPerHost) {
  core::World world(0xf1ee);
  for (int a = 0; a < kHostArchetypeCount; ++a) {
    const auto archetype = static_cast<HostArchetype>(a);
    const auto fleet = world.add_fleet(archetype, 16, "mixed-site");
    const auto& image = world.archetype_image(archetype);
    EXPECT_GT(image->file_count(), 100u) << to_string(archetype);
    for (std::size_t i = 0; i < fleet.count; ++i) {
      Host& host = *world.hosts()[fleet.first + i];
      // Every host shares the one template object and starts with an empty
      // delta — the O(delta) property that makes 10⁵-host fleets affordable.
      EXPECT_EQ(host.image(), image.get());
      EXPECT_TRUE(host.fs().volume('c')->files().empty());
      EXPECT_TRUE(host.fs().volume('c')->tombstones().empty());
      EXPECT_EQ(host.os(), default_os(archetype));
    }
  }
  EXPECT_EQ(world.host_count(), 16u * kHostArchetypeCount);
}

}  // namespace
}  // namespace cyd::winsys
