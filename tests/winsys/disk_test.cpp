#include "winsys/disk.hpp"

#include <gtest/gtest.h>

namespace cyd::winsys {
namespace {

TEST(DiskTest, FactoryStateIsBootable) {
  Disk disk;
  EXPECT_TRUE(disk.mbr_intact());
  EXPECT_TRUE(disk.active_partition_intact());
  ASSERT_EQ(disk.partitions().size(), 2u);
  EXPECT_TRUE(disk.partitions()[0].active);
  EXPECT_FALSE(disk.partitions()[1].active);
}

TEST(DiskTest, MbrOverwriteDetected) {
  Disk disk;
  disk.overwrite_mbr(common::Bytes(512, '\0'));
  EXPECT_FALSE(disk.mbr_intact());
  // Restoring the exact boot code repairs it (re-imaging).
  disk.overwrite_mbr(Disk::valid_boot_code());
  EXPECT_TRUE(disk.mbr_intact());
}

TEST(DiskTest, ActivePartitionLookup) {
  Disk disk;
  Partition* active = disk.active_partition();
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->name, "system");
  active->boot_sector = "garbage";
  EXPECT_FALSE(disk.active_partition_intact());
}

TEST(DiskTest, RawSectorsAreSparse) {
  Disk disk;
  EXPECT_EQ(disk.read_sector(100), nullptr);
  disk.write_sector(100, "sector payload");
  disk.write_sector(7, "early sector");
  ASSERT_NE(disk.read_sector(100), nullptr);
  EXPECT_EQ(*disk.read_sector(100), "sector payload");
  EXPECT_EQ(disk.raw_write_count(), 2u);
}

TEST(DiskTest, NoActivePartitionMeansNotIntact) {
  Disk disk;
  for (auto& p : disk.partitions()) p.active = false;
  EXPECT_EQ(disk.active_partition(), nullptr);
  EXPECT_FALSE(disk.active_partition_intact());
}

}  // namespace
}  // namespace cyd::winsys
