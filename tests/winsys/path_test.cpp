#include "winsys/path.hpp"

#include <gtest/gtest.h>

namespace cyd::winsys {
namespace {

TEST(PathTest, CanonicalizesCaseAndSlashes) {
  EXPECT_EQ(Path("C:/Windows/System32").str(), "c:\\windows\\system32");
  EXPECT_EQ(Path("C:\\WINDOWS\\\\system32\\").str(), "c:\\windows\\system32");
}

TEST(PathTest, EqualityIsCaseInsensitive) {
  EXPECT_EQ(Path("C:\\Windows\\S7OTBXDX.DLL"),
            Path("c:/windows/s7otbxdx.dll"));
}

TEST(PathTest, DriveLetterExtraction) {
  EXPECT_EQ(Path("C:\\x").drive(), 'c');
  EXPECT_EQ(Path("e:").drive(), 'e');
  EXPECT_EQ(Path("relative\\path").drive(), '\0');
}

TEST(PathTest, RootDetection) {
  EXPECT_TRUE(Path("C:").is_root());
  EXPECT_TRUE(Path("C:\\").is_root());
  EXPECT_FALSE(Path("C:\\x").is_root());
  EXPECT_FALSE(Path("").is_root());
}

TEST(PathTest, ParentWalksUp) {
  EXPECT_EQ(Path("c:\\a\\b\\c").parent(), Path("c:\\a\\b"));
  EXPECT_EQ(Path("c:\\a").parent(), Path("c:"));
  EXPECT_EQ(Path("c:").parent(), Path("c:"));
}

TEST(PathTest, FilenameAndExtension) {
  const Path p("C:\\Windows\\system32\\TrkSvr.exe");
  EXPECT_EQ(p.filename(), "trksvr.exe");
  EXPECT_EQ(p.extension(), "exe");
  EXPECT_EQ(Path("c:\\noext").extension(), "");
  EXPECT_EQ(Path("c:").filename(), "");
  EXPECT_EQ(Path("c:\\dir.d\\file").extension(), "");
}

TEST(PathTest, JoinComposes) {
  EXPECT_EQ(Path("c:").join("Windows").join("system32"),
            Path("c:\\windows\\system32"));
  EXPECT_EQ(Path("c:\\a").join("b\\c"), Path("c:\\a\\b\\c"));
  EXPECT_EQ(Path("c:\\a").join(""), Path("c:\\a"));
}

TEST(PathTest, ComponentsBelowRoot) {
  const auto comps = Path("c:\\users\\eng\\docs\\plan.docx").components();
  ASSERT_EQ(comps.size(), 4u);
  EXPECT_EQ(comps[0], "users");
  EXPECT_EQ(comps[3], "plan.docx");
  EXPECT_TRUE(Path("c:").components().empty());
}

TEST(PathTest, IsWithin) {
  EXPECT_TRUE(Path("c:\\a\\b\\c").is_within(Path("c:\\a")));
  EXPECT_TRUE(Path("c:\\a").is_within(Path("c:\\a")));
  EXPECT_FALSE(Path("c:\\ab").is_within(Path("c:\\a")));
  EXPECT_FALSE(Path("d:\\a\\b").is_within(Path("c:\\a")));
  EXPECT_TRUE(Path("c:\\a\\b").is_within(Path("c:")));
}

TEST(PathTest, OrderingIsDefined) {
  EXPECT_LT(Path("c:\\a"), Path("c:\\b"));
}

}  // namespace
}  // namespace cyd::winsys
