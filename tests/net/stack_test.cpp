#include "net/stack.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "pki/forgery.hpp"
#include "pki/licensing.hpp"
#include "pki/signing.hpp"
#include "winsys/host.hpp"

namespace cyd::net {
namespace {

using winsys::ExecContext;
using winsys::Host;
using winsys::OsVersion;
using winsys::Path;
using winsys::Program;

class NoteProgram : public Program {
 public:
  explicit NoteProgram(std::vector<std::string>* log, std::string tag)
      : log_(log), tag_(std::move(tag)) {}
  bool run(Host& host, const ExecContext& ctx) override {
    log_->push_back(tag_ + "@" + host.name() + " by=" + ctx.launched_by);
    return false;
  }
  std::string process_name() const override { return tag_ + ".exe"; }

 private:
  std::vector<std::string>* log_;
  std::string tag_;
};

class NetTest : public ::testing::Test {
 protected:
  NetTest()
      : network_(simulation_),
        alpha_(simulation_, programs_, "alpha", OsVersion::kWin7),
        bravo_(simulation_, programs_, "bravo", OsVersion::kWinXp),
        charlie_(simulation_, programs_, "charlie", OsVersion::kWin7) {
    network_.attach(alpha_, "office", "10.0.0.1");
    network_.attach(bravo_, "office", "10.0.0.2");
    network_.attach(charlie_, "scada-cell", "192.168.1.1");
    programs_.register_program("note.payload", [this] {
      return std::make_unique<NoteProgram>(&exec_log_, "payload");
    });
  }

  common::Bytes payload_exe() {
    return pe::Builder{}.program("note.payload").build().serialize();
  }

  sim::Simulation simulation_;
  winsys::ProgramRegistry programs_;
  Network network_;
  Host alpha_, bravo_, charlie_;
  std::vector<std::string> exec_log_;
};

TEST_F(NetTest, AttachWiresHostStack) {
  EXPECT_EQ(alpha_.stack(), network_.find_stack("alpha"));
  EXPECT_EQ(network_.find_stack("nobody"), nullptr);
  EXPECT_EQ(network_.subnet_members("office").size(), 2u);
  EXPECT_EQ(network_.subnet_members("scada-cell").size(), 1u);
}

TEST_F(NetTest, AttachTwiceThrows) {
  EXPECT_THROW(network_.attach(alpha_, "office", "10.0.0.9"),
               std::invalid_argument);
}

TEST_F(NetTest, ScanSubnetSeesPeersOnly) {
  EXPECT_EQ(alpha_.stack()->scan_subnet(),
            (std::vector<std::string>{"bravo"}));
  EXPECT_TRUE(charlie_.stack()->scan_subnet().empty());
}

TEST_F(NetTest, InternetRequiresAccess) {
  network_.register_internet_service(
      "www.msn.com", [](const HttpRequest&) { return HttpResponse{200, "ok"}; });
  EXPECT_FALSE(alpha_.stack()->http_get("www.msn.com", "/").has_value());
  alpha_.set_internet_access(true);
  auto response = alpha_.stack()->http_get("www.msn.com", "/");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "ok");
  EXPECT_EQ(network_.domain_hits().at("www.msn.com"), 1u);
}

TEST_F(NetTest, UnknownDomainDoesNotResolve) {
  alpha_.set_internet_access(true);
  EXPECT_FALSE(alpha_.stack()->http_get("nxdomain.example", "/").has_value());
}

TEST_F(NetTest, LanHttpEndpoint) {
  bravo_.stack()->serve("/api", [](const HttpRequest& r) {
    return HttpResponse{200, "hello " + r.client};
  });
  auto response = alpha_.stack()->http_get("bravo", "/api");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "hello alpha");
  // Unknown path on a live peer: 404, not nullopt.
  auto missing = alpha_.stack()->http_get("bravo", "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(NetTest, SinkholeReplacesService) {
  alpha_.set_internet_access(true);
  network_.register_internet_service(
      "cc.example", [](const HttpRequest&) { return HttpResponse{200, "evil"}; });
  network_.register_internet_service(
      "cc.example",
      [](const HttpRequest&) { return HttpResponse{200, "sinkhole"}; });
  EXPECT_EQ(alpha_.stack()->http_get("cc.example", "/")->body, "sinkhole");
}

TEST_F(NetTest, WpadDiscoveryNeedsVulnerableClient) {
  bravo_.stack()->set_wpad_responder(true);
  EXPECT_FALSE(alpha_.stack()->wpad_discover().has_value());
  alpha_.make_vulnerable(exploits::VulnId::kWpadNetbios);
  EXPECT_EQ(alpha_.stack()->wpad_discover(), "bravo");
  EXPECT_EQ(alpha_.stack()->proxy(), "bravo");
}

TEST_F(NetTest, WpadNoResponderNoProxy) {
  alpha_.make_vulnerable(exploits::VulnId::kWpadNetbios);
  EXPECT_FALSE(alpha_.stack()->wpad_discover().has_value());
  EXPECT_FALSE(alpha_.stack()->proxy().has_value());
}

TEST_F(NetTest, WpadIgnoresOtherSubnets) {
  charlie_.stack()->set_wpad_responder(true);
  alpha_.make_vulnerable(exploits::VulnId::kWpadNetbios);
  EXPECT_FALSE(alpha_.stack()->wpad_discover().has_value());
}

TEST_F(NetTest, ProxyInterceptorSubstitutesResponse) {
  // bravo proxies alpha's traffic and rewrites a specific URL.
  bravo_.set_internet_access(true);
  network_.register_internet_service("site.example", [](const HttpRequest&) {
    return HttpResponse{200, "genuine"};
  });
  bravo_.stack()->set_proxy_interceptor(
      [](const HttpRequest& r) -> std::optional<HttpResponse> {
        if (r.host == "site.example") return HttpResponse{200, "tampered"};
        return std::nullopt;
      });
  alpha_.stack()->set_proxy("bravo");
  EXPECT_EQ(alpha_.stack()->http_get("site.example", "/")->body, "tampered");
}

TEST_F(NetTest, ProxyForwardsUsingProxyInternetAccess) {
  // The victim itself has no internet; the proxy host does. Traffic flows —
  // which is exactly how Flame bridges semi-isolated machines.
  network_.register_internet_service("site.example", [](const HttpRequest&) {
    return HttpResponse{200, "genuine"};
  });
  bravo_.set_internet_access(true);
  alpha_.stack()->set_proxy("bravo");
  EXPECT_EQ(alpha_.stack()->http_get("site.example", "/")->body, "genuine");
}

TEST_F(NetTest, DeadProxyFallsBackToDirect) {
  network_.register_internet_service("site.example", [](const HttpRequest&) {
    return HttpResponse{200, "direct"};
  });
  alpha_.set_internet_access(true);
  alpha_.stack()->set_proxy("bravo");
  // Kill bravo: MBR wipe + reboot.
  auto driver = pe::Builder{}.program("raw").build();
  bravo_.fs().write_file("c:\\d.sys", driver.serialize(), 0);
  bravo_.load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
  bravo_.raw_overwrite_mbr("X", "test");
  bravo_.reboot();
  EXPECT_EQ(alpha_.stack()->http_get("site.example", "/")->body, "direct");
}

TEST_F(NetTest, SmbCopyNeedsShareAndWeakAcls) {
  bravo_.stack()->add_share("c$", Path("c:"));
  // Hardened target refuses.
  EXPECT_FALSE(alpha_.stack()->smb_copy("bravo", "c$", "windows\\evil.exe",
                                        payload_exe()));
  bravo_.make_vulnerable(exploits::VulnId::kOpenNetworkShares);
  EXPECT_TRUE(alpha_.stack()->smb_copy("bravo", "c$", "windows\\evil.exe",
                                       payload_exe()));
  EXPECT_TRUE(bravo_.fs().is_file("c:\\windows\\evil.exe"));
}

TEST_F(NetTest, SmbCopyUnknownShareFails) {
  bravo_.make_vulnerable(exploits::VulnId::kOpenNetworkShares);
  EXPECT_FALSE(alpha_.stack()->smb_copy("bravo", "nope", "x", "data"));
  EXPECT_FALSE(alpha_.stack()->smb_copy("ghost-host", "c$", "x", "data"));
}

TEST_F(NetTest, SmbCrossSubnetBlocked) {
  charlie_.stack()->add_share("c$", Path("c:"));
  charlie_.make_vulnerable(exploits::VulnId::kOpenNetworkShares);
  EXPECT_FALSE(alpha_.stack()->smb_copy("charlie", "c$", "x", "data"));
}

TEST_F(NetTest, SmbReadSharedFile) {
  bravo_.stack()->add_share("docs", Path("c:\\shared"));
  bravo_.fs().write_file("c:\\shared\\readme.txt", "content", 0);
  EXPECT_EQ(alpha_.stack()->smb_read("bravo", "docs", "readme.txt"),
            "content");
  EXPECT_FALSE(
      alpha_.stack()->smb_read("bravo", "docs", "missing.txt").has_value());
}

TEST_F(NetTest, RemoteExecutePsexecStyle) {
  bravo_.stack()->add_share("c$", Path("c:"));
  bravo_.make_vulnerable(exploits::VulnId::kOpenNetworkShares);
  alpha_.stack()->smb_copy("bravo", "c$", "windows\\payload.exe",
                           payload_exe());
  EXPECT_TRUE(
      alpha_.stack()->remote_execute("bravo", Path("c:\\windows\\payload.exe")));
  ASSERT_EQ(exec_log_.size(), 1u);
  EXPECT_EQ(exec_log_[0], "payload@bravo by=psexec:alpha");
}

TEST_F(NetTest, RemoteExecuteHardenedTargetFails) {
  bravo_.fs().write_file("c:\\payload.exe", payload_exe(), 0);
  EXPECT_FALSE(alpha_.stack()->remote_execute("bravo", Path("c:\\payload.exe")));
  EXPECT_TRUE(exec_log_.empty());
}

TEST_F(NetTest, SpoolerExploitDropsAndRuns) {
  bravo_.make_vulnerable(exploits::VulnId::kMs10_061_Spooler);
  EXPECT_TRUE(alpha_.stack()->spooler_exploit_print(
      "bravo", "mof registration", "winsta.exe", payload_exe()));
  EXPECT_TRUE(bravo_.fs().is_file(
      "c:\\windows\\system32\\wbem\\mof\\sysnullevnt.mof"));
  EXPECT_TRUE(bravo_.fs().is_file("c:\\windows\\system32\\winsta.exe"));
  ASSERT_EQ(exec_log_.size(), 1u);
  EXPECT_EQ(exec_log_[0], "payload@bravo by=mof-event-consumer");
}

TEST_F(NetTest, SpoolerExploitNeedsVulnerability) {
  EXPECT_FALSE(alpha_.stack()->spooler_exploit_print(
      "bravo", "mof", "winsta.exe", payload_exe()));
  EXPECT_TRUE(exec_log_.empty());
}

TEST_F(NetTest, SpoolerExploitNeedsPrintSharing) {
  bravo_.make_vulnerable(exploits::VulnId::kMs10_061_Spooler);
  bravo_.stack()->set_print_sharing(false);
  EXPECT_FALSE(alpha_.stack()->spooler_exploit_print(
      "bravo", "mof", "winsta.exe", payload_exe()));
}

TEST_F(NetTest, WpadFirstResponderInAttachOrderWins) {
  // Two rogue responders: the earliest-attached stack answers first, and
  // the race is deterministic.
  alpha_.make_vulnerable(exploits::VulnId::kWpadNetbios);
  Host delta(simulation_, programs_, "delta", OsVersion::kWin7);
  network_.attach(delta, "office", "10.0.0.9");
  bravo_.stack()->set_wpad_responder(true);
  delta.stack()->set_wpad_responder(true);
  EXPECT_EQ(alpha_.stack()->wpad_discover(), "bravo");
}

TEST_F(NetTest, ProxySelfReferenceFallsThroughToDirect) {
  alpha_.set_internet_access(true);
  network_.register_internet_service("site.example", [](const HttpRequest&) {
    return HttpResponse{200, "direct"};
  });
  alpha_.stack()->set_proxy("alpha");  // degenerate config
  EXPECT_EQ(alpha_.stack()->http_get("site.example", "/")->body, "direct");
}

TEST_F(NetTest, DeadHostSendsNothing) {
  alpha_.set_internet_access(true);
  network_.register_internet_service("site.example", [](const HttpRequest&) {
    return HttpResponse{200, "x"};
  });
  auto driver = pe::Builder{}.program("raw").build();
  alpha_.fs().write_file("c:\\d.sys", driver.serialize(), 0);
  alpha_.load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
  alpha_.raw_overwrite_mbr("X", "t");
  alpha_.reboot();
  EXPECT_FALSE(alpha_.stack()->http_get("site.example", "/").has_value());
  EXPECT_FALSE(alpha_.stack()->smb_copy("bravo", "c$", "x", "d"));
}

TEST_F(NetTest, SpoolerCrossSubnetBlocked) {
  charlie_.make_vulnerable(exploits::VulnId::kMs10_061_Spooler);
  EXPECT_FALSE(alpha_.stack()->spooler_exploit_print(
      "charlie", "mof", "winsta.exe", payload_exe()));
}

TEST_F(NetTest, LanPostBodyArrivesIntact) {
  common::Bytes received;
  bravo_.stack()->serve("/upload", [&](const HttpRequest& r) {
    received = r.body;
    return HttpResponse{200, {}};
  });
  HttpRequest request;
  request.method = "POST";
  request.host = "bravo";
  request.path = "/upload";
  request.body = common::Bytes("\x00\x01binary\xff payload", 17);
  ASSERT_TRUE(alpha_.stack()->http(std::move(request)).has_value());
  EXPECT_EQ(received.size(), 17u);
  EXPECT_EQ(received[0], '\x00');
}

class WindowsUpdateTest : public NetTest {
 protected:
  WindowsUpdateTest() : ms_(sim::make_date(2010, 1, 1), 99) {
    ms_.install_into(alpha_.cert_store());
    ms_.anchor_root(alpha_.trust_store());
    alpha_.set_internet_access(true);

    genuine_update_ = pe::Builder{}
                          .program("note.payload")
                          .filename("kb998877.exe")
                          .section(".text", "fix", true)
                          .build();
    pki::sign_image(genuine_update_, ms_.update_signing_cert(),
                    ms_.update_signing_key());
    network_.register_internet_service(
        "update.microsoft.com", [this](const HttpRequest&) {
          return HttpResponse{200, served_body_};
        });
    served_body_ = genuine_update_.serialize();
  }

  pki::MicrosoftPki ms_;
  pe::Image genuine_update_;
  common::Bytes served_body_;
};

TEST_F(WindowsUpdateTest, GenuineUpdateInstalls) {
  const auto result = alpha_.stack()->check_windows_update();
  EXPECT_EQ(result.status, UpdateCheckResult::Status::kInstalled);
  EXPECT_EQ(result.signer, "Microsoft Windows Update Publisher");
  ASSERT_EQ(exec_log_.size(), 1u);
  EXPECT_EQ(exec_log_[0], "payload@alpha by=windows-update");
}

TEST_F(WindowsUpdateTest, EmptyFeedMeansNoUpdate) {
  served_body_.clear();
  EXPECT_EQ(alpha_.stack()->check_windows_update().status,
            UpdateCheckResult::Status::kNoUpdate);
}

TEST_F(WindowsUpdateTest, UnsignedUpdateRejected) {
  auto fake = pe::Builder{}.program("note.payload").build();
  served_body_ = fake.serialize();
  EXPECT_EQ(alpha_.stack()->check_windows_update().status,
            UpdateCheckResult::Status::kSignatureRejected);
  EXPECT_TRUE(exec_log_.empty());
}

TEST_F(WindowsUpdateTest, ForgedCertUpdateInstallsViaMitmProxy) {
  // Full Fig. 2 + Fig. 3 chain: victim proxies through the infected peer;
  // the interceptor substitutes a fake update signed with the forged cert.
  auto activation = ms_.activate_license_server("Victim Org");
  auto forged = pki::forge_code_signing_cert(activation.license_cert,
                                             "MS", 0xf1a3);
  ASSERT_TRUE(forged.has_value());
  auto fake = pe::Builder{}
                  .program("note.payload")
                  .filename("WuSetupV.exe")
                  .section(".text", "flame", true)
                  .build();
  pki::sign_image(fake, forged->certificate, forged->private_key);
  const auto fake_bytes = fake.serialize();

  bravo_.set_internet_access(true);
  bravo_.stack()->set_proxy_interceptor(
      [fake_bytes](const HttpRequest& r) -> std::optional<HttpResponse> {
        if (r.host == "update.microsoft.com") {
          return HttpResponse{200, fake_bytes};
        }
        return std::nullopt;
      });
  bravo_.stack()->set_wpad_responder(true);
  alpha_.make_vulnerable(exploits::VulnId::kWpadNetbios);
  ASSERT_TRUE(alpha_.stack()->wpad_discover().has_value());

  const auto result = alpha_.stack()->check_windows_update();
  EXPECT_EQ(result.status, UpdateCheckResult::Status::kInstalled);
  EXPECT_EQ(result.signer, "MS");
  ASSERT_EQ(exec_log_.size(), 1u);
  EXPECT_EQ(exec_log_[0], "payload@alpha by=windows-update");
}

TEST_F(WindowsUpdateTest, AdvisoryBlocksForgedUpdate) {
  auto activation = ms_.activate_license_server("Victim Org");
  auto forged =
      pki::forge_code_signing_cert(activation.license_cert, "MS", 0xf1a3);
  ASSERT_TRUE(forged.has_value());
  auto fake = pe::Builder{}.program("note.payload").build();
  pki::sign_image(fake, forged->certificate, forged->private_key);
  served_body_ = fake.serialize();

  ms_.apply_advisory_2718704(alpha_.trust_store());
  EXPECT_EQ(alpha_.stack()->check_windows_update().status,
            UpdateCheckResult::Status::kSignatureRejected);
}

}  // namespace
}  // namespace cyd::net
