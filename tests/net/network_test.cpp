// Network site topology and the route_between memo. The memo is only
// correct if every topology mutation invalidates it: the regression tests
// here mutate the WAN graph *after* routes have been computed and cached,
// which is exactly how epidemic scenarios grow worlds (sites come online as
// the campaign script runs, not all before the first routing query).

#include "net/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>

#include "sim/simulation.hpp"

namespace cyd::net {
namespace {

class NetworkTopologyTest : public ::testing::Test {
 protected:
  sim::Simulation simulation_;
  Network network_{simulation_};
};

TEST_F(NetworkTopologyTest, RouteBasics) {
  network_.link_sites("hq", "branch", sim::minutes(5));
  const Route direct = network_.route_between("hq", "branch");
  EXPECT_TRUE(direct.reachable);
  EXPECT_EQ(direct.latency, sim::minutes(5));
  EXPECT_EQ(direct.wan_hops, 1);

  const Route self = network_.route_between("hq", "hq");
  EXPECT_TRUE(self.reachable);
  EXPECT_EQ(self.latency, 0);
  EXPECT_EQ(self.wan_hops, 0);

  EXPECT_FALSE(network_.route_between("hq", "nowhere").reachable);
  EXPECT_FALSE(network_.route_between("nowhere", "hq").reachable);
}

TEST_F(NetworkTopologyTest, LinkAddedAfterRoutingInvalidatesMemo) {
  network_.link_sites("a", "b", sim::minutes(10));
  ASSERT_EQ(network_.route_between("a", "b").latency, sim::minutes(10));

  // Both endpoints already exist, so this mutation takes the non-insert
  // path through ensure_site — the route memo must still be dropped.
  network_.link_sites("a", "c", sim::minutes(2));
  network_.link_sites("c", "b", sim::minutes(3));
  const Route rerouted = network_.route_between("a", "b");
  EXPECT_EQ(rerouted.latency, sim::minutes(5));  // a -> c -> b shortcut
  EXPECT_EQ(rerouted.wan_hops, 2);
}

TEST_F(NetworkTopologyTest, SiteAddedAfterRoutingBecomesReachable) {
  network_.link_sites("a", "b", sim::minutes(1));
  ASSERT_FALSE(network_.route_between("a", "late").reachable);  // memo filled

  network_.link_sites("b", "late", sim::minutes(4));
  const Route late = network_.route_between("a", "late");
  EXPECT_TRUE(late.reachable);
  EXPECT_EQ(late.latency, sim::minutes(5));
  EXPECT_EQ(late.wan_hops, 2);
}

TEST_F(NetworkTopologyTest, LanRegisteredAfterRoutingKeepsRoutesFresh) {
  network_.link_sites("a", "b", sim::minutes(1));
  ASSERT_FALSE(network_.route_between("a", "plant").reachable);

  network_.add_lan("plant", "plant-lan0");  // creates the site
  network_.link_sites("b", "plant", sim::minutes(2));
  EXPECT_TRUE(network_.route_between("a", "plant").reachable);
  ASSERT_NE(network_.site_of_subnet("plant-lan0"), nullptr);
  EXPECT_EQ(network_.site_of_subnet("plant-lan0")->name, "plant");
}

TEST_F(NetworkTopologyTest, AddSiteReturnsConstView) {
  // Compile-time half of the fix: callers can no longer grow site.links
  // behind the memo's back.
  static_assert(std::is_same_v<decltype(network_.add_site("x")), const Site&>);
  const Site& site = network_.add_site("x");
  EXPECT_EQ(site.name, "x");
  EXPECT_TRUE(site.links.empty());
}

TEST_F(NetworkTopologyTest, EqualLatencyTiesBreakBySiteName) {
  // Two equal-cost two-hop paths a->m1->z and a->m2->z: the reported route
  // must be identical run to run (frontier is ordered by (latency, name)).
  network_.link_sites("a", "m2", sim::minutes(1));
  network_.link_sites("m2", "z", sim::minutes(1));
  network_.link_sites("a", "m1", sim::minutes(1));
  network_.link_sites("m1", "z", sim::minutes(1));
  const Route first = network_.route_between("a", "z");
  EXPECT_EQ(first.latency, sim::minutes(2));
  EXPECT_EQ(first.wan_hops, 2);
}

TEST_F(NetworkTopologyTest, SiteEdgesListsBothDirectionsInNameOrder) {
  network_.link_sites("beta", "alpha", sim::minutes(3));
  network_.link_sites("alpha", "gamma", sim::minutes(7));
  const auto edges = network_.site_edges();
  ASSERT_EQ(edges.size(), 4u);
  // Sites iterate in name order; per-site links in registration order.
  EXPECT_EQ(edges[0].from, "alpha");
  EXPECT_EQ(edges[0].to, "beta");
  EXPECT_EQ(edges[0].latency, sim::minutes(3));
  EXPECT_EQ(edges[1].from, "alpha");
  EXPECT_EQ(edges[1].to, "gamma");
  EXPECT_EQ(edges[2].from, "beta");
  EXPECT_EQ(edges[2].to, "alpha");
  EXPECT_EQ(edges[3].from, "gamma");
  EXPECT_EQ(edges[3].to, "alpha");
}

}  // namespace
}  // namespace cyd::net
