// MinHash sketching and LSH candidate generation: determinism, edge cases,
// worker-count independence, and agreement with the exact clustering path.

#include "analysis/minhash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/similarity.hpp"
#include "sim/rng.hpp"
#include "sim/sweep.hpp"

namespace cyd::analysis {
namespace {

SpecimenFeatures make_features(std::vector<FeatureId> strings,
                               std::vector<FeatureId> imports = {},
                               std::vector<FeatureId> sections = {}) {
  SpecimenFeatures f;
  f.strings = std::move(strings);
  f.imports = std::move(imports);
  f.section_names = std::move(sections);
  std::sort(f.strings.begin(), f.strings.end());
  std::sort(f.imports.begin(), f.imports.end());
  std::sort(f.section_names.begin(), f.section_names.end());
  return f;
}

TEST(MinHashSketch, DeterministicAcrossCalls) {
  const auto f = make_features({1, 5, 9, 200}, {7, 8}, {3});
  const auto a = minhash_sketch(f);
  const auto b = minhash_sketch(f);
  EXPECT_EQ(a.sig, b.sig);
  ASSERT_EQ(a.sig.size(), MinHashParams{}.hashes());
}

TEST(MinHashSketch, FeaturelessSpecimenIsAllSentinel) {
  const auto sketch = minhash_sketch(SpecimenFeatures{});
  for (const auto slot : sketch.sig) {
    EXPECT_EQ(slot, kEmptySketchSlot);
  }
}

TEST(MinHashSketch, SingleClassSpecimenSketches) {
  // A specimen with only section names still produces a full, non-sentinel
  // signature — no class may be mandatory.
  const auto sketch = minhash_sketch(make_features({}, {}, {11, 12}));
  for (const auto slot : sketch.sig) {
    EXPECT_NE(slot, kEmptySketchSlot);
  }
}

TEST(MinHashSketch, ClassTagKeepsClassesDisjoint) {
  // The same interned id as a string vs as a section name must hash
  // differently — the exact kernel scores the classes separately, so the
  // sketch must not alias them.
  const auto as_string = minhash_sketch(make_features({42}));
  const auto as_section = minhash_sketch(make_features({}, {}, {42}));
  EXPECT_NE(as_string.sig, as_section.sig);
}

TEST(MinHashSketch, SeedChangesSignature) {
  const auto f = make_features({1, 2, 3});
  MinHashParams other;
  other.seed ^= 0xdead'beef;
  EXPECT_NE(minhash_sketch(f).sig, minhash_sketch(f, other).sig);
}

TEST(MinHashSketch, StableAcrossSweepWorkerCounts) {
  std::vector<SpecimenFeatures> pile;
  sim::Rng rng(0x77);
  for (std::size_t s = 0; s < 40; ++s) {
    std::vector<FeatureId> ids;
    for (std::size_t k = 0; k < 24; ++k) {
      ids.push_back(static_cast<FeatureId>(rng.uniform_int(0, 4000)));
    }
    pile.push_back(make_features(std::move(ids)));
  }
  const auto sketch_pile = [&](sim::SweepRunner& runner) {
    return runner.map(pile.size(), 0, [&](const sim::SweepRun& run) {
      return minhash_sketch(pile[run.index]);
    });
  };
  sim::SweepRunner serial({.workers = 1});
  sim::SweepRunner pooled({.workers = 3});
  const auto a = sketch_pile(serial);
  const auto b = sketch_pile(pooled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].sig, b[s].sig) << "specimen " << s;
  }
}

TEST(LshCandidatePairs, TrivialPilesHaveNoPairs) {
  EXPECT_TRUE(lsh_candidate_pairs({}).empty());
  EXPECT_TRUE(lsh_candidate_pairs({minhash_sketch(make_features({1}))})
                  .empty());
}

TEST(LshCandidatePairs, IdenticalSpecimensAlwaysCollide) {
  const auto f = make_features({10, 20, 30}, {40}, {50});
  const std::vector<MinHashSketch> sketches = {
      minhash_sketch(f), minhash_sketch(make_features({999})),
      minhash_sketch(f)};
  const auto pairs = lsh_candidate_pairs(sketches);
  const CandidatePair expected{0, 2};
  EXPECT_TRUE(std::find(pairs.begin(), pairs.end(), expected) != pairs.end());
}

TEST(LshCandidatePairs, OutputSortedUniqueUpperTriangle) {
  // Identical sketches collide in every band; the output must still list
  // each pair once, sorted, with i < j.
  const auto f = make_features({1, 2, 3});
  const std::vector<MinHashSketch> sketches = {
      minhash_sketch(f), minhash_sketch(f), minhash_sketch(f)};
  const auto pairs = lsh_candidate_pairs(sketches);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_TRUE(std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end());
  for (const auto& p : pairs) {
    EXPECT_LT(p.i, p.j);
  }
}

TEST(LshCandidatePairs, FeaturelessSpecimensBandTogether) {
  const std::vector<MinHashSketch> sketches = {
      minhash_sketch(SpecimenFeatures{}), minhash_sketch(make_features({7})),
      minhash_sketch(SpecimenFeatures{})};
  const auto pairs = lsh_candidate_pairs(sketches);
  const CandidatePair expected{0, 2};
  EXPECT_TRUE(std::find(pairs.begin(), pairs.end(), expected) != pairs.end());
}

TEST(ClusterFeaturesLsh, MatchesExactPathOnDuplicateFamilies) {
  // Three exact-duplicate families plus a loner: both paths must emit the
  // identical canonical grouping.
  std::vector<SpecimenFeatures> pile;
  for (std::size_t fam = 0; fam < 3; ++fam) {
    const FeatureId base = static_cast<FeatureId>(fam * 100);
    for (std::size_t m = 0; m < 3; ++m) {
      pile.push_back(make_features({base + 1, base + 2, base + 3},
                                   {base + 4}, {base + 5}));
    }
  }
  pile.push_back(make_features({9001, 9002, 9003}));
  LshStats stats;
  const auto lsh = cluster_features_lsh(pile, 0.5, {}, &stats);
  const auto exact = cluster_feature_indices(pile, 0.5);
  EXPECT_EQ(lsh, exact);
  ASSERT_EQ(lsh.size(), 4u);
  EXPECT_EQ(stats.total_pairs, 45u);
  EXPECT_GE(stats.confirmed_edges, 9u);  // 3 per duplicate family
  EXPECT_LE(stats.candidate_pairs, stats.total_pairs);
}

TEST(ClusterFeaturesLsh, FeaturelessSpecimensClusterAsIdentical) {
  // Exact path scores two featureless specimens 1.0 (vacuously identical);
  // the LSH path must reach the same verdict through the sentinel sketches.
  std::vector<SpecimenFeatures> pile(2);
  pile.push_back(make_features({1, 2, 3, 4}));
  const auto lsh = cluster_features_lsh(pile, 0.5);
  const auto exact = cluster_feature_indices(pile, 0.5);
  EXPECT_EQ(lsh, exact);
  ASSERT_EQ(lsh.size(), 2u);
  EXPECT_EQ(lsh[0], (std::vector<std::size_t>{0, 1}));
}

TEST(ClusterFeaturesLsh, EmptyPile) {
  EXPECT_TRUE(cluster_features_lsh({}, 0.5).empty());
  const std::vector<SpecimenFeatures> one(1);
  EXPECT_EQ(cluster_features_lsh(one, 0.5).size(), 1u);
}

TEST(ClusterFeaturesLsh, StatsReductionOnDisjointPile) {
  // Mutually dissimilar specimens should almost never become candidates,
  // so reduction approaches total_pairs / ~0.
  std::vector<SpecimenFeatures> pile;
  for (std::size_t s = 0; s < 64; ++s) {
    const FeatureId base = static_cast<FeatureId>(s * 1000);
    pile.push_back(make_features(
        {base, base + 1, base + 2, base + 3, base + 4, base + 5}));
  }
  LshStats stats;
  const auto clusters = cluster_features_lsh(pile, 0.5, {}, &stats);
  EXPECT_EQ(clusters.size(), 64u);
  EXPECT_EQ(stats.confirmed_edges, 0u);
  EXPECT_LT(stats.candidate_pairs, stats.total_pairs / 10);
}

TEST(LshRecall, MeetsFloorOnRandomKitPile) {
  // Property test mirroring the bench gate: kit->variant pile, recall of
  // the candidate stage against the exact above-threshold edge set must
  // meet the 0.98 floor the bench and CI enforce.
  constexpr std::size_t kSpecimens = 256;
  constexpr std::size_t kPerKit = 16;
  constexpr double kThreshold = 0.5;
  std::vector<SpecimenFeatures> pile;
  for (std::size_t s = 0; s < kSpecimens; ++s) {
    const std::size_t kit = s / kPerKit;
    sim::Rng rng(sim::derive_seed(0xa771b, s));
    std::vector<FeatureId> strings;
    for (std::size_t i = 0; i < 40; ++i) {
      if (rng.bernoulli(0.9)) {
        strings.push_back(static_cast<FeatureId>(kit * 1000 + i));
      }
    }
    for (std::size_t t = 0; t < 3; ++t) {
      strings.push_back(static_cast<FeatureId>(1'000'000 + s * 8 + t));
    }
    pile.push_back(make_features(std::move(strings)));
  }
  const auto triangle = similarity_triangle(pile);
  const auto sketches = sim::Sweep::map_items(
      pile, [](const SpecimenFeatures& f) { return minhash_sketch(f); });
  const auto candidates = lsh_candidate_pairs(sketches);
  std::uint64_t edges = 0, surfaced = 0;
  std::size_t c = 0;
  std::uint64_t k = 0;
  for (std::size_t i = 0; i + 1 < pile.size(); ++i) {
    for (std::size_t j = i + 1; j < pile.size(); ++j, ++k) {
      if (triangle[k] < kThreshold) continue;
      ++edges;
      while (c < candidates.size() &&
             (candidates[c].i < i ||
              (candidates[c].i == i && candidates[c].j < j))) {
        ++c;
      }
      if (c < candidates.size() && candidates[c].i == i &&
          candidates[c].j == j) {
        ++surfaced;
      }
    }
  }
  ASSERT_GT(edges, 0u);
  const double recall =
      static_cast<double>(surfaced) / static_cast<double>(edges);
  EXPECT_GE(recall, 0.98) << surfaced << "/" << edges << " exact edges";
  // And the clusterings agree end to end on this pile.
  EXPECT_EQ(cluster_features_lsh(pile, kThreshold),
            cluster_feature_indices(pile, kThreshold));
}

}  // namespace
}  // namespace cyd::analysis
