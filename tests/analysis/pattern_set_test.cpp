#include "analysis/pattern_set.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace cyd::analysis {
namespace {

std::vector<std::uint8_t> presence(const PatternSet& set,
                                   std::string_view data) {
  std::vector<std::uint8_t> hits;
  set.match_presence(data, hits);
  return hits;
}

TEST(PatternSetTest, EmptySetMatchesNothing) {
  PatternSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(presence(set, "anything at all").empty());
  EXPECT_EQ(set.first_match("anything"), PatternSet::npos);
}

TEST(PatternSetTest, EmptyPatternIsRejected) {
  PatternSet set;
  EXPECT_THROW(set.add(""), std::invalid_argument);
}

TEST(PatternSetTest, OverlappingPatternsAllFire) {
  // Suffix/prefix/substring overlaps are exactly where naive automata drop
  // matches: "bc" ends inside "abcd", "abc" is a prefix of it, "c" a
  // single byte inside both.
  PatternSet set;
  set.add("abcd");
  set.add("bc");
  set.add("abc");
  set.add("c");
  set.add("cdx");
  const auto hits = presence(set, "xx abcd yy");
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_EQ(hits[0], 1);  // abcd
  EXPECT_EQ(hits[1], 1);  // bc
  EXPECT_EQ(hits[2], 1);  // abc
  EXPECT_EQ(hits[3], 1);  // c
  EXPECT_EQ(hits[4], 0);  // cdx absent
}

TEST(PatternSetTest, PatternAtBufferBoundaries) {
  PatternSet set;
  set.add("head");
  set.add("tail");
  set.add("exact");
  const auto hits = presence(set, "head...tail");
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
  EXPECT_EQ(hits[2], 0);
  // Pattern equals the whole buffer.
  EXPECT_EQ(presence(set, "exact")[2], 1);
  // Pattern longer than the buffer can never match.
  EXPECT_EQ(presence(set, "exac")[2], 0);
  // Empty buffer matches nothing.
  const auto empty_hits = presence(set, "");
  EXPECT_EQ(empty_hits, (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(PatternSetTest, DuplicatePatternsGetIndependentIndices) {
  PatternSet set;
  const auto a = set.add("mrxcls");
  const auto b = set.add("mrxcls");
  EXPECT_NE(a, b);
  const auto hits = presence(set, "driver mrxcls.sys");
  EXPECT_EQ(hits[a], 1);
  EXPECT_EQ(hits[b], 1);
}

TEST(PatternSetTest, BinaryPatternsIncludingNulAndHighBytes) {
  PatternSet set;
  set.add(std::string("\x00\xff\x00", 3));
  set.add(std::string("\xff\xd8\xff\xe0", 4));
  const std::string data =
      std::string("junk") + std::string("\x00\xff\x00", 3) + "more" +
      std::string("\xff\xd8\xff\xe0", 4);
  const auto hits = presence(set, data);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(PatternSetTest, FirstMatchReturnsLowestIndex) {
  PatternSet set;
  set.add("zebra");
  set.add("apple");
  set.add("zeb");
  // Both "zebra" (0) and "zeb" (2) occur; lowest index wins.
  EXPECT_EQ(set.first_match("one zebra"), 0u);
  EXPECT_EQ(set.first_match("zeb only"), 2u);
  EXPECT_EQ(set.first_match("nothing here"), PatternSet::npos);
}

TEST(PatternSetTest, AddAfterCompileRebuilds) {
  PatternSet set;
  set.add("alpha");
  set.compile();
  EXPECT_EQ(presence(set, "alpha beta").size(), 1u);
  set.add("beta");
  const auto hits = presence(set, "alpha beta");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
}

TEST(PatternSetTest, AgreesWithNaiveFindOnRandomInputs) {
  // Property check over a tiny alphabet (maximizing overlap collisions):
  // automaton presence == data.find presence for every pattern.
  sim::Rng rng(0xac);
  for (int trial = 0; trial < 50; ++trial) {
    PatternSet set;
    std::vector<std::string> patterns;
    const int pattern_count = static_cast<int>(rng.uniform_int(1, 12));
    for (int p = 0; p < pattern_count; ++p) {
      std::string pattern;
      const int len = static_cast<int>(rng.uniform_int(1, 6));
      for (int k = 0; k < len; ++k) {
        pattern.push_back(static_cast<char>('a' + rng.uniform_int(0, 2)));
      }
      set.add(pattern);
      patterns.push_back(std::move(pattern));
    }
    std::string data;
    const int data_len = static_cast<int>(rng.uniform_int(0, 64));
    for (int k = 0; k < data_len; ++k) {
      data.push_back(static_cast<char>('a' + rng.uniform_int(0, 2)));
    }
    const auto hits = presence(set, data);
    ASSERT_EQ(hits.size(), patterns.size());
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      const bool naive = data.find(patterns[p]) != std::string::npos;
      EXPECT_EQ(hits[p] != 0, naive)
          << "trial " << trial << " pattern '" << patterns[p] << "' in '"
          << data << "'";
    }
  }
}

}  // namespace
}  // namespace cyd::analysis
