#include "analysis/sandbox.hpp"

#include <gtest/gtest.h>

#include "analysis/ioc.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "malware/tracker.hpp"
#include "scada/step7.hpp"

namespace cyd::analysis {
namespace {

/// Environment hook installing a fresh Stuxnet family into the sandbox.
Sandbox::EnvironmentSetup stuxnet_env(
    std::vector<std::unique_ptr<void, void (*)(void*)>>& keepalive) {
  return [&keepalive](sim::Simulation& simulation, net::Network& network,
                      winsys::ProgramRegistry& programs, winsys::Host&) {
    auto* registry = new scada::S7ProxyRegistry();
    auto* tracker = new malware::InfectionTracker();
    auto* family = new malware::stuxnet::Stuxnet(simulation, network,
                                                 programs, *registry,
                                                 *tracker);
    keepalive.emplace_back(registry, [](void* p) {
      delete static_cast<scada::S7ProxyRegistry*>(p);
    });
    keepalive.emplace_back(tracker, [](void* p) {
      delete static_cast<malware::InfectionTracker*>(p);
    });
    keepalive.emplace_back(family, [](void* p) {
      delete static_cast<malware::stuxnet::Stuxnet*>(p);
    });
  };
}

TEST(SandboxTest, BenignSampleScoresLow) {
  Sandbox sandbox;
  sandbox.programs().register_program("benign.tool", [] {
    class Noop : public winsys::Program {
      bool run(winsys::Host&, const winsys::ExecContext&) override {
        return false;
      }
      std::string process_name() const override { return "tool.exe"; }
    };
    return std::make_unique<Noop>();
  });
  const auto sample =
      pe::Builder{}.program("benign.tool").filename("tool.exe").build();
  const auto report = sandbox.detonate(sample.serialize());
  EXPECT_TRUE(report.executed);
  EXPECT_LT(report.suspicion_score(), 10.0);
  EXPECT_TRUE(report.files_written.empty());
  EXPECT_FALSE(report.armed_bait_usb);
}

TEST(SandboxTest, InertBytesDoNotExecute) {
  Sandbox sandbox;
  const auto report = sandbox.detonate("not even a PE");
  EXPECT_FALSE(report.executed);
  EXPECT_EQ(report.exec_status, winsys::ExecResult::Status::kNotExecutable);
  EXPECT_DOUBLE_EQ(report.suspicion_score(), 0.0);
}

TEST(SandboxTest, UnknownProgramIdIsInert) {
  Sandbox sandbox;
  const auto sample = pe::Builder{}.program("never.registered").build();
  const auto report = sandbox.detonate(sample.serialize());
  EXPECT_FALSE(report.executed);
  EXPECT_EQ(report.exec_status, winsys::ExecResult::Status::kUnknownProgram);
}

TEST(SandboxTest, StuxnetDropperShowsItsBehaviour) {
  std::vector<std::unique_ptr<void, void (*)(void*)>> keepalive;
  Sandbox sandbox({}, stuxnet_env(keepalive));
  // Recover the specimen the environment's family would produce.
  const auto dropper_bytes = [&] {
    sim::Simulation throwaway;
    net::Network net(throwaway);
    winsys::ProgramRegistry programs;
    scada::S7ProxyRegistry proxies;
    malware::InfectionTracker tracker;
    malware::stuxnet::Stuxnet family(throwaway, net, programs, proxies,
                                     tracker);
    return family.build_dropper().serialize();
  }();

  const auto report = sandbox.detonate(dropper_bytes, 72 * sim::kHour);
  ASSERT_TRUE(report.executed);
  // Signature behaviours: hidden copy, drivers, persistence, C2 domains,
  // and the bait stick comes back armed with LNK files.
  EXPECT_FALSE(report.services_installed.empty());
  EXPECT_GE(report.drivers_loaded.size(), 2u);
  EXPECT_TRUE(report.armed_bait_usb);
  bool lnk_on_stick = false;
  for (const auto& name : report.usb_payloads) {
    if (name.find(".lnk") != std::string::npos) lnk_on_stick = true;
  }
  EXPECT_TRUE(lnk_on_stick);
  EXPECT_TRUE(report.domains_contacted.contains("www.mypremierfutbol.com"));
  EXPECT_GT(report.suspicion_score(), 40.0);
}

TEST(SandboxTest, ShamoonWiperShowsMbrDestruction) {
  malware::InfectionTracker tracker;
  malware::shamoon::Shamoon* family = nullptr;
  Sandbox sandbox(
      {}, [&](sim::Simulation& simulation, net::Network& network,
              winsys::ProgramRegistry& programs, winsys::Host& host) {
        malware::shamoon::ShamoonConfig config;
        config.kill_date = sim::kHour * 3;  // detonates inside the window
        static std::unique_ptr<malware::shamoon::Shamoon> holder;
        holder = std::make_unique<malware::shamoon::Shamoon>(
            simulation, network, programs, tracker, config);
        family = holder.get();
        // Unsigned-driver world: sandbox VM allows unsigned loads anyway.
        family->set_disk_driver(
            pe::Builder{}
                .program(malware::shamoon::Shamoon::kDriverProgram)
                .filename("drdisk.sys")
                .build());
        host.set_driver_policy(winsys::DriverPolicy::kAllowUnsigned);
      });

  const auto report =
      sandbox.detonate(family->build_trksvr().serialize(), 6 * sim::kHour);
  ASSERT_TRUE(report.executed);
  EXPECT_TRUE(report.touched_mbr);
  EXPECT_GT(report.suspicion_score(), 60.0);
  EXPECT_EQ(sandbox.host().state(), winsys::HostState::kUnbootable);
  // Bait documents were overwritten with the flag JPEG.
  const auto body = sandbox.host().fs().read_file(
      "c:\\users\\analyst\\documents\\budget.docx");
  ASSERT_TRUE(body.has_value());
  EXPECT_NE(*body, "bait document alpha");
}

TEST(SandboxTest, EmptyIocSetCompilesToNoRules) {
  BehaviorReport empty;
  const auto iocs = extract_iocs(empty, "Nothing");
  EXPECT_EQ(iocs.size(), 0u);
  EXPECT_EQ(compile_rules(iocs).size(), 0u);
}

TEST(SandboxTest, ShortFilenamesAreTooGenericForRules) {
  BehaviorReport report;
  report.files_written = {"c:\\ab.x", "c:\\windows\\mrxcls.sys"};
  const auto rules = compile_rules(extract_iocs(report, "X"));
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_FALSE(rules.scan("dropped mrxcls.sys today").empty());
  EXPECT_TRUE(rules.scan("mentions ab.x only").empty());
}

TEST(SandboxTest, IocExtractionFromStuxnetRun) {
  std::vector<std::unique_ptr<void, void (*)(void*)>> keepalive;
  Sandbox sandbox({}, stuxnet_env(keepalive));
  const auto dropper_bytes = [&] {
    sim::Simulation throwaway;
    net::Network net(throwaway);
    winsys::ProgramRegistry programs;
    scada::S7ProxyRegistry proxies;
    malware::InfectionTracker tracker;
    malware::stuxnet::Stuxnet family(throwaway, net, programs, proxies,
                                     tracker);
    return family.build_dropper().serialize();
  }();
  const auto report = sandbox.detonate(dropper_bytes, 72 * sim::kHour);
  const auto iocs = extract_iocs(report, "W32.Stuxnet");
  EXPECT_TRUE(iocs.file_names.contains("mrxcls.sys"));
  EXPECT_TRUE(iocs.file_names.contains("oem7a.pnf"));
  EXPECT_TRUE(iocs.domains.contains("www.mypremierfutbol.com"));
  EXPECT_FALSE(iocs.domains.contains("www.msn.com"));  // noise filtered

  // Compiled rules catch the dropper bytes (they reference the artifacts).
  const auto rules = compile_rules(iocs);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_FALSE(rules.scan(dropper_bytes).empty());
  EXPECT_TRUE(rules.scan("unrelated bytes").empty());
}

}  // namespace
}  // namespace cyd::analysis
