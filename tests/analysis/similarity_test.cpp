#include "analysis/similarity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "malware/duqu/duqu.hpp"
#include "malware/flame/flame.hpp"
#include "malware/gauss/gauss.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "net/network.hpp"
#include "sim/rng.hpp"

namespace cyd::analysis {
namespace {

/// One throwaway world to mint all five specimens.
struct SpecimenLab {
  sim::Simulation simulation;
  net::Network network{simulation};
  winsys::ProgramRegistry programs;
  scada::S7ProxyRegistry proxies;
  malware::InfectionTracker tracker;
  malware::stuxnet::Stuxnet stuxnet{simulation, network, programs, proxies,
                                    tracker};
  malware::duqu::Duqu duqu{simulation, network, programs, tracker};
  malware::flame::Flame flame{simulation, network, programs, tracker,
                              malware::flame::FlameConfig{}};
  malware::gauss::Gauss gauss{simulation, network, programs, tracker};
  malware::shamoon::Shamoon shamoon{simulation, network, programs, tracker};

  std::vector<LabelledSpecimen> all() {
    return {
        {"stuxnet", stuxnet.build_dropper().serialize()},
        {"duqu", duqu.build_installer("victim-x").serialize()},
        {"flame", flame.build_installer().serialize()},
        {"gauss", gauss.build_installer().serialize()},
        {"shamoon", shamoon.build_trksvr().serialize()},
    };
  }
};

/// Interns a feature-string bundle into a SpecimenFeatures — the test-side
/// stand-in for extraction.
SpecimenFeatures make_features(FeatureDict& dict,
                               const std::set<std::string>& strings,
                               const std::set<std::string>& imports,
                               const std::set<std::string>& sections) {
  SpecimenFeatures f;
  for (const auto& s : strings) f.strings.push_back(dict.intern(s));
  for (const auto& s : imports) f.imports.push_back(dict.intern(s));
  for (const auto& s : sections) f.section_names.push_back(dict.intern(s));
  std::sort(f.strings.begin(), f.strings.end());
  std::sort(f.imports.begin(), f.imports.end());
  std::sort(f.section_names.begin(), f.section_names.end());
  return f;
}

TEST(SimilarityTest, IdenticalSpecimensScoreOne) {
  SpecimenLab lab;
  const auto bytes = lab.stuxnet.build_dropper().serialize();
  EXPECT_NEAR(specimen_similarity(bytes, bytes), 1.0, 1e-9);
}

TEST(SimilarityTest, FeatureExtractionDescendsIntoResources) {
  SpecimenLab lab;
  FeatureDict dict;
  const auto features =
      extract_features(lab.shamoon.build_trksvr().serialize(), dict);
  // Strings from the XOR-encrypted wiper surface after key recovery.
  bool found_wiper_string = false;
  for (const FeatureId id : features.strings) {
    if (dict.view(id).find("mbr logic") != std::string_view::npos) {
      found_wiper_string = true;
    }
  }
  EXPECT_TRUE(found_wiper_string);
}

TEST(SimilarityTest, ExtractedFeatureVectorsAreSortedAndUnique) {
  SpecimenLab lab;
  FeatureDict dict;
  const auto features =
      extract_features(lab.shamoon.build_trksvr().serialize(), dict);
  for (const auto* ids :
       {&features.strings, &features.imports, &features.section_names}) {
    EXPECT_TRUE(std::is_sorted(ids->begin(), ids->end()));
    EXPECT_EQ(std::adjacent_find(ids->begin(), ids->end()), ids->end());
  }
  EXPECT_GT(features.size(), 0u);
}

TEST(SimilarityTest, TildedPlatformLinksStuxnetAndDuqu) {
  SpecimenLab lab;
  const auto stuxnet = lab.stuxnet.build_dropper().serialize();
  const auto duqu = lab.duqu.build_installer("victim-1").serialize();
  const auto shamoon = lab.shamoon.build_trksvr().serialize();
  const double kin = specimen_similarity(stuxnet, duqu);
  EXPECT_GT(kin, specimen_similarity(stuxnet, shamoon));
  EXPECT_GT(kin, specimen_similarity(duqu, shamoon));
  EXPECT_GT(kin, 0.2);
}

TEST(SimilarityTest, FlamePlatformLinksFlameAndGauss) {
  SpecimenLab lab;
  const auto flame = lab.flame.build_installer().serialize();
  const auto gauss = lab.gauss.build_installer().serialize();
  const auto stuxnet = lab.stuxnet.build_dropper().serialize();
  const double kin = specimen_similarity(flame, gauss);
  EXPECT_GT(kin, specimen_similarity(flame, stuxnet));
  EXPECT_GT(kin, specimen_similarity(gauss, stuxnet));
}

TEST(SimilarityTest, PerVictimDuquBuildsStillClusterTogether) {
  // Unique builds defeat hash signatures but not similarity analysis —
  // which is exactly how analysts tied the per-victim Duqu samples to one
  // family.
  SpecimenLab lab;
  const auto a = lab.duqu.build_installer("victim-a").serialize();
  const auto b = lab.duqu.build_installer("victim-b").serialize();
  EXPECT_NE(common::fnv1a64(a), common::fnv1a64(b));
  EXPECT_GT(specimen_similarity(a, b), 0.6);
}

TEST(SimilarityTest, ClusteringRecoversTheTwoFactories) {
  SpecimenLab lab;
  const auto clusters = cluster_specimens(lab.all(), /*threshold=*/0.18);
  // Expect: {stuxnet, duqu}, {flame, gauss}, {shamoon}.
  ASSERT_EQ(clusters.size(), 3u);
  auto find_cluster_of = [&](const std::string& label) -> std::set<std::string> {
    for (const auto& cluster : clusters) {
      for (const auto& member : cluster) {
        if (member == label) {
          return {cluster.begin(), cluster.end()};
        }
      }
    }
    return {};
  };
  EXPECT_EQ(find_cluster_of("stuxnet"),
            (std::set<std::string>{"stuxnet", "duqu"}));
  EXPECT_EQ(find_cluster_of("flame"),
            (std::set<std::string>{"flame", "gauss"}));
  EXPECT_EQ(find_cluster_of("shamoon"), (std::set<std::string>{"shamoon"}));
}

TEST(SimilarityTest, ClustersComeOutOrderedByEarliestMember) {
  SpecimenLab lab;
  const auto clusters = cluster_specimens(lab.all(), /*threshold=*/0.18);
  // Canonical order: cluster of specimen 0 first, members in input order.
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0], (std::vector<std::string>{"stuxnet", "duqu"}));
  EXPECT_EQ(clusters[1], (std::vector<std::string>{"flame", "gauss"}));
  EXPECT_EQ(clusters[2], (std::vector<std::string>{"shamoon"}));
}

TEST(SimilarityTest, ClusterMembershipInvariantUnderPermutation) {
  // Regression for the order-sensitive union-find merges: whatever order
  // the specimens arrive in, the same families must come out. Canonicalize
  // each clustering to a set of label-sets and compare.
  SpecimenLab lab;
  const auto base = lab.all();
  auto canonical = [](const std::vector<std::vector<std::string>>& clusters) {
    std::set<std::set<std::string>> out;
    for (const auto& cluster : clusters) {
      out.insert(std::set<std::string>(cluster.begin(), cluster.end()));
    }
    return out;
  };
  const auto expected = canonical(cluster_specimens(base, 0.18));
  std::vector<std::size_t> order(base.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  sim::Rng rng(0x5eed);
  for (int trial = 0; trial < 8; ++trial) {
    rng.shuffle(order);
    std::vector<LabelledSpecimen> permuted;
    for (const std::size_t idx : order) permuted.push_back(base[idx]);
    EXPECT_EQ(canonical(cluster_specimens(permuted, 0.18)), expected)
        << "trial " << trial;
  }
}

TEST(SimilarityTest, MatrixIsSymmetricWithUnitDiagonal) {
  SpecimenLab lab;
  const auto specimens = lab.all();
  const auto matrix = similarity_matrix(specimens);
  const std::size_t n = specimens.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i * n + i], 1.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i * n + j], matrix[j * n + i]);
    }
  }
}

TEST(SimilarityTest, MatrixHandlesDegeneratePiles) {
  EXPECT_TRUE(similarity_matrix({}).empty());
  const auto one = similarity_matrix({{"solo", "not a pe, just text data"}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 1.0);
}

TEST(SimilarityTest, SelfSimilarityIsOneWithoutStrings) {
  // A specimen with no extracted strings must still score 1.0 against
  // itself: the empty-on-both-sides class is excluded from the weighting
  // instead of contributing a silent zero (pre-fix this scored 0.6).
  FeatureDict dict;
  const auto f = make_features(
      dict, {},
      {"kernel32.dll!CreateFileW", "advapi32.dll!RegSetValueExW"},
      {".text", ".rdata"});
  EXPECT_DOUBLE_EQ(similarity(f, f), 1.0);
}

TEST(SimilarityTest, SelfSimilarityIsOneForFeaturelessSpecimen) {
  // No strings, no imports, no sections: vacuously identical feature sets.
  SpecimenFeatures empty;
  EXPECT_DOUBLE_EQ(similarity(empty, empty), 1.0);
  // Short binary junk extracts nothing; self-comparison still holds.
  const std::string blob("\x01\x02\x03\x04", 4);
  EXPECT_DOUBLE_EQ(specimen_similarity(blob, blob), 1.0);
}

TEST(SimilarityTest, MissingClassDoesNotDeflateCrossScores) {
  // Two string-less specimens sharing all imports and sections are as
  // similar as the evidence can show — not capped at 0.6.
  FeatureDict dict;
  const auto a = make_features(dict, {}, {"ws2_32.dll!send"},
                               {".text", ".pe1"});
  const auto b = make_features(dict, {}, {"ws2_32.dll!send"},
                               {".text", ".pe2"});
  // imports jaccard 1.0 (w 0.35), sections jaccard 1/3 (w 0.25), strings
  // excluded: (0.35 + 0.25/3) / 0.6.
  EXPECT_NEAR(similarity(a, b), (0.35 + 0.25 / 3.0) / 0.6, 1e-12);
}

TEST(SimilarityTest, FeaturelessAgainstFeaturedIsZero) {
  FeatureDict dict;
  const SpecimenFeatures empty;
  const auto featured = make_features(dict, {"platform loader"},
                                      {"user32.dll!wsprintfW"}, {});
  EXPECT_DOUBLE_EQ(similarity(empty, featured), 0.0);
  EXPECT_DOUBLE_EQ(similarity(featured, empty), 0.0);
}

TEST(SimilarityTest, GarbageBytesCompareViaStringsOnly) {
  // Non-PE blobs fall back to string features; shared runs still register.
  const std::string a = std::string("\x01", 1) + "platform loader v3" +
                        std::string("\x02", 1) + "unique-alpha";
  const std::string b = std::string("\x01", 1) + "platform loader v3" +
                        std::string("\x02", 1) + "unique-bravo";
  const double score = specimen_similarity(a, b);
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 0.5);
  // Nothing shared: zero.
  EXPECT_DOUBLE_EQ(specimen_similarity("alpha-only-content-1",
                                       "totally-different-text-2"),
                   0.0);
}

// ---------------------------------------------------------------------------
// Property tests: the interned kernel against the retained seed semantics.

/// The seed set-based kernel, verbatim in arithmetic: per-element
/// set::contains jaccard plus the renormalized weighted sum. The interned
/// kernel must agree bit-for-bit on every input.
double seed_jaccard(const std::set<std::string>& a,
                    const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t intersection = 0;
  for (const auto& item : a) {
    if (b.contains(item)) ++intersection;
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double seed_similarity(const std::set<std::string>& strings_a,
                       const std::set<std::string>& imports_a,
                       const std::set<std::string>& sections_a,
                       const std::set<std::string>& strings_b,
                       const std::set<std::string>& imports_b,
                       const std::set<std::string>& sections_b) {
  struct Class {
    double weight;
    const std::set<std::string>& lhs;
    const std::set<std::string>& rhs;
  };
  const Class classes[] = {
      {0.4, strings_a, strings_b},
      {0.35, imports_a, imports_b},
      {0.25, sections_a, sections_b},
  };
  double score = 0.0;
  double active_weight = 0.0;
  for (const auto& c : classes) {
    if (c.lhs.empty() && c.rhs.empty()) continue;
    score += c.weight * seed_jaccard(c.lhs, c.rhs);
    active_weight += c.weight;
  }
  if (active_weight == 0.0) return 1.0;
  return score / active_weight;
}

std::set<std::string> random_bundle(sim::Rng& rng, int vocab, int max_count,
                                    const char* prefix) {
  std::set<std::string> out;
  const int count = rng.uniform_int(0, max_count);
  for (int k = 0; k < count; ++k) {
    out.insert(prefix + std::to_string(rng.uniform_int(0, vocab - 1)));
  }
  return out;
}

TEST(SimilarityPropertyTest, InternedKernelMatchesSeedKernelBitExactly) {
  sim::Rng rng(0xfeed);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sa = random_bundle(rng, 24, 20, "str-feature-");
    const auto ia = random_bundle(rng, 12, 10, "dll-import-");
    const auto na = random_bundle(rng, 8, 6, ".sec");
    const auto sb = random_bundle(rng, 24, 20, "str-feature-");
    const auto ib = random_bundle(rng, 12, 10, "dll-import-");
    const auto nb = random_bundle(rng, 8, 6, ".sec");
    FeatureDict dict;
    const auto fa = make_features(dict, sa, ia, na);
    const auto fb = make_features(dict, sb, ib, nb);
    const double interned = similarity(fa, fb);
    const double seed = seed_similarity(sa, ia, na, sb, ib, nb);
    EXPECT_DOUBLE_EQ(interned, seed) << "trial " << trial;
  }
}

TEST(SimilarityPropertyTest, SimilarityIsSymmetric) {
  sim::Rng rng(0xcafe);
  for (int trial = 0; trial < 100; ++trial) {
    FeatureDict dict;
    const auto a =
        make_features(dict, random_bundle(rng, 16, 12, "s-"),
                      random_bundle(rng, 8, 8, "i-"),
                      random_bundle(rng, 6, 4, "n-"));
    const auto b =
        make_features(dict, random_bundle(rng, 16, 12, "s-"),
                      random_bundle(rng, 8, 8, "i-"),
                      random_bundle(rng, 6, 4, "n-"));
    EXPECT_DOUBLE_EQ(similarity(a, b), similarity(b, a)) << "trial " << trial;
  }
}

TEST(SimilarityPropertyTest, SelfSimilarityIsAlwaysOne) {
  sim::Rng rng(0xd00d);
  for (int trial = 0; trial < 100; ++trial) {
    FeatureDict dict;
    const auto f =
        make_features(dict, random_bundle(rng, 16, 12, "s-"),
                      random_bundle(rng, 8, 8, "i-"),
                      random_bundle(rng, 6, 4, "n-"));
    EXPECT_DOUBLE_EQ(similarity(f, f), 1.0) << "trial " << trial;
  }
}

TEST(SimilarityTest, TrianglePairMatchesEnumerationOrder) {
  // The arithmetic decode must agree with the double loop that defines the
  // lexicographic pair order, for every k of several pile sizes.
  for (const std::size_t n : {2u, 3u, 5u, 17u, 64u}) {
    std::uint64_t k = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j, ++k) {
        const auto pair = triangle_pair(k, n);
        EXPECT_EQ(pair.i, i) << "n=" << n << " k=" << k;
        EXPECT_EQ(pair.j, j) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SimilarityTest, TrianglePairEndpointsAtLargeN) {
  // Spot checks where the double-loop cross-check is unaffordable: the
  // first pair, the last pair, and the row boundaries around a middle row.
  const std::size_t n = 100'000;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  EXPECT_EQ(triangle_pair(0, n).i, 0u);
  EXPECT_EQ(triangle_pair(0, n).j, 1u);
  EXPECT_EQ(triangle_pair(total - 1, n).i, n - 2);
  EXPECT_EQ(triangle_pair(total - 1, n).j, n - 1);
  // Row r starts at r*n - r(r+1)/2; decode must land exactly on (r, r+1).
  const std::size_t r = 31'337;
  const std::uint64_t row_start =
      static_cast<std::uint64_t>(r) * n -
      static_cast<std::uint64_t>(r) * (r + 1) / 2;
  EXPECT_EQ(triangle_pair(row_start, n).i, r);
  EXPECT_EQ(triangle_pair(row_start, n).j, r + 1);
  EXPECT_EQ(triangle_pair(row_start - 1, n).i, r - 1);
  EXPECT_EQ(triangle_pair(row_start - 1, n).j, n - 1);
}

TEST(SimilarityTest, TriangleScoresMatchMatrixUpperTriangle) {
  SpecimenLab lab;
  const auto specimens = lab.all();
  FeatureDict dict;
  const auto features = extract_pile(specimens, dict);
  const auto triangle = similarity_triangle(features);
  const auto matrix = similarity_matrix(specimens);
  const std::size_t n = specimens.size();
  ASSERT_EQ(triangle.size(), n * (n - 1) / 2);
  std::uint64_t k = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j, ++k) {
      EXPECT_DOUBLE_EQ(triangle[k], matrix[i * n + j]);
    }
  }
}

TEST(SimilarityTest, ClustersMatchMatrixDerivedReference) {
  // Regression for the streaming refactor (satellite of the LSH work):
  // cluster_specimens must produce exactly the clusters a reference
  // union-find over the full matrix's above-threshold edges produces.
  SpecimenLab lab;
  const auto specimens = lab.all();
  const double threshold = 0.18;
  const auto matrix = similarity_matrix(specimens);
  const std::size_t n = specimens.size();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (matrix[i * n + j] < threshold) continue;
      const auto ri = find(i), rj = find(j);
      parent[std::max(ri, rj)] = std::min(ri, rj);
    }
  }
  std::vector<std::vector<std::string>> reference;
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < n; ++i) {
    const auto root = find(i);
    const auto at = std::find(roots.begin(), roots.end(), root);
    if (at == roots.end()) {
      roots.push_back(root);
      reference.push_back({specimens[i].label});
    } else {
      reference[static_cast<std::size_t>(at - roots.begin())].push_back(
          specimens[i].label);
    }
  }
  EXPECT_EQ(cluster_specimens(specimens, threshold), reference);
}

TEST(SimilarityPropertyTest, FeatureDictReserveDoesNotPerturbIds) {
  FeatureDict plain;
  FeatureDict reserved;
  reserved.reserve(1024);
  for (const auto* s : {"alpha", "bravo", "charlie", "alpha"}) {
    EXPECT_EQ(reserved.intern(s), plain.intern(s));
  }
  EXPECT_EQ(reserved.size(), plain.size());
}

TEST(SimilarityPropertyTest, FeatureDictInternsAreStableAndViewable) {
  FeatureDict dict;
  const auto a = dict.intern("mssecmgr.ocx");
  const auto b = dict.intern_import("kernel32.dll", "CreateFileW");
  EXPECT_EQ(dict.intern("mssecmgr.ocx"), a);
  EXPECT_EQ(dict.intern("kernel32.dll!CreateFileW"), b);
  EXPECT_EQ(dict.view(a), "mssecmgr.ocx");
  EXPECT_EQ(dict.view(b), "kernel32.dll!CreateFileW");
  EXPECT_EQ(dict.size(), 2u);
}

}  // namespace
}  // namespace cyd::analysis
