#include "analysis/similarity.hpp"

#include <gtest/gtest.h>

#include "malware/duqu/duqu.hpp"
#include "malware/flame/flame.hpp"
#include "malware/gauss/gauss.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "net/network.hpp"

namespace cyd::analysis {
namespace {

/// One throwaway world to mint all five specimens.
struct SpecimenLab {
  sim::Simulation simulation;
  net::Network network{simulation};
  winsys::ProgramRegistry programs;
  scada::S7ProxyRegistry proxies;
  malware::InfectionTracker tracker;
  malware::stuxnet::Stuxnet stuxnet{simulation, network, programs, proxies,
                                    tracker};
  malware::duqu::Duqu duqu{simulation, network, programs, tracker};
  malware::flame::Flame flame{simulation, network, programs, tracker,
                              malware::flame::FlameConfig{}};
  malware::gauss::Gauss gauss{simulation, network, programs, tracker};
  malware::shamoon::Shamoon shamoon{simulation, network, programs, tracker};

  std::vector<LabelledSpecimen> all() {
    return {
        {"stuxnet", stuxnet.build_dropper().serialize()},
        {"duqu", duqu.build_installer("victim-x").serialize()},
        {"flame", flame.build_installer().serialize()},
        {"gauss", gauss.build_installer().serialize()},
        {"shamoon", shamoon.build_trksvr().serialize()},
    };
  }
};

TEST(SimilarityTest, IdenticalSpecimensScoreOne) {
  SpecimenLab lab;
  const auto bytes = lab.stuxnet.build_dropper().serialize();
  EXPECT_NEAR(specimen_similarity(bytes, bytes), 1.0, 1e-9);
}

TEST(SimilarityTest, FeatureExtractionDescendsIntoResources) {
  SpecimenLab lab;
  const auto features =
      extract_features(lab.shamoon.build_trksvr().serialize());
  // Strings from the XOR-encrypted wiper surface after key recovery.
  bool found_wiper_string = false;
  for (const auto& s : features.strings) {
    if (s.find("mbr logic") != std::string::npos) found_wiper_string = true;
  }
  EXPECT_TRUE(found_wiper_string);
}

TEST(SimilarityTest, TildedPlatformLinksStuxnetAndDuqu) {
  SpecimenLab lab;
  const auto stuxnet = lab.stuxnet.build_dropper().serialize();
  const auto duqu = lab.duqu.build_installer("victim-1").serialize();
  const auto shamoon = lab.shamoon.build_trksvr().serialize();
  const double kin = specimen_similarity(stuxnet, duqu);
  EXPECT_GT(kin, specimen_similarity(stuxnet, shamoon));
  EXPECT_GT(kin, specimen_similarity(duqu, shamoon));
  EXPECT_GT(kin, 0.2);
}

TEST(SimilarityTest, FlamePlatformLinksFlameAndGauss) {
  SpecimenLab lab;
  const auto flame = lab.flame.build_installer().serialize();
  const auto gauss = lab.gauss.build_installer().serialize();
  const auto stuxnet = lab.stuxnet.build_dropper().serialize();
  const double kin = specimen_similarity(flame, gauss);
  EXPECT_GT(kin, specimen_similarity(flame, stuxnet));
  EXPECT_GT(kin, specimen_similarity(gauss, stuxnet));
}

TEST(SimilarityTest, PerVictimDuquBuildsStillClusterTogether) {
  // Unique builds defeat hash signatures but not similarity analysis —
  // which is exactly how analysts tied the per-victim Duqu samples to one
  // family.
  SpecimenLab lab;
  const auto a = lab.duqu.build_installer("victim-a").serialize();
  const auto b = lab.duqu.build_installer("victim-b").serialize();
  EXPECT_NE(common::fnv1a64(a), common::fnv1a64(b));
  EXPECT_GT(specimen_similarity(a, b), 0.6);
}

TEST(SimilarityTest, ClusteringRecoversTheTwoFactories) {
  SpecimenLab lab;
  const auto clusters = cluster_specimens(lab.all(), /*threshold=*/0.18);
  // Expect: {stuxnet, duqu}, {flame, gauss}, {shamoon}.
  ASSERT_EQ(clusters.size(), 3u);
  auto find_cluster_of = [&](const std::string& label) -> std::set<std::string> {
    for (const auto& cluster : clusters) {
      for (const auto& member : cluster) {
        if (member == label) {
          return {cluster.begin(), cluster.end()};
        }
      }
    }
    return {};
  };
  EXPECT_EQ(find_cluster_of("stuxnet"),
            (std::set<std::string>{"stuxnet", "duqu"}));
  EXPECT_EQ(find_cluster_of("flame"),
            (std::set<std::string>{"flame", "gauss"}));
  EXPECT_EQ(find_cluster_of("shamoon"), (std::set<std::string>{"shamoon"}));
}

TEST(SimilarityTest, MatrixIsSymmetricWithUnitDiagonal) {
  SpecimenLab lab;
  const auto specimens = lab.all();
  const auto matrix = similarity_matrix(specimens);
  const std::size_t n = specimens.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i * n + i], 1.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i * n + j], matrix[j * n + i]);
    }
  }
}

TEST(SimilarityTest, SelfSimilarityIsOneWithoutStrings) {
  // A specimen with no extracted strings must still score 1.0 against
  // itself: the empty-on-both-sides class is excluded from the weighting
  // instead of contributing a silent zero (pre-fix this scored 0.6).
  SpecimenFeatures f;
  f.imports = {"kernel32.dll!CreateFileW", "advapi32.dll!RegSetValueExW"};
  f.section_names = {".text", ".rdata"};
  EXPECT_DOUBLE_EQ(similarity(f, f), 1.0);
}

TEST(SimilarityTest, SelfSimilarityIsOneForFeaturelessSpecimen) {
  // No strings, no imports, no sections: vacuously identical feature sets.
  SpecimenFeatures empty;
  EXPECT_DOUBLE_EQ(similarity(empty, empty), 1.0);
  // Short binary junk extracts nothing; self-comparison still holds.
  const std::string blob("\x01\x02\x03\x04", 4);
  EXPECT_DOUBLE_EQ(specimen_similarity(blob, blob), 1.0);
}

TEST(SimilarityTest, MissingClassDoesNotDeflateCrossScores) {
  // Two string-less specimens sharing all imports and sections are as
  // similar as the evidence can show — not capped at 0.6.
  SpecimenFeatures a, b;
  a.imports = b.imports = {"ws2_32.dll!send"};
  a.section_names = {".text", ".pe1"};
  b.section_names = {".text", ".pe2"};
  // imports jaccard 1.0 (w 0.35), sections jaccard 1/3 (w 0.25), strings
  // excluded: (0.35 + 0.25/3) / 0.6.
  EXPECT_NEAR(similarity(a, b), (0.35 + 0.25 / 3.0) / 0.6, 1e-12);
}

TEST(SimilarityTest, FeaturelessAgainstFeaturedIsZero) {
  SpecimenFeatures empty, featured;
  featured.strings = {"platform loader"};
  featured.imports = {"user32.dll!wsprintfW"};
  EXPECT_DOUBLE_EQ(similarity(empty, featured), 0.0);
  EXPECT_DOUBLE_EQ(similarity(featured, empty), 0.0);
}

TEST(SimilarityTest, GarbageBytesCompareViaStringsOnly) {
  // Non-PE blobs fall back to string features; shared runs still register.
  const std::string a = std::string("\x01", 1) + "platform loader v3" +
                        std::string("\x02", 1) + "unique-alpha";
  const std::string b = std::string("\x01", 1) + "platform loader v3" +
                        std::string("\x02", 1) + "unique-bravo";
  const double score = specimen_similarity(a, b);
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 0.5);
  // Nothing shared: zero.
  EXPECT_DOUBLE_EQ(specimen_similarity("alpha-only-content-1",
                                       "totally-different-text-2"),
                   0.0);
}

}  // namespace
}  // namespace cyd::analysis
