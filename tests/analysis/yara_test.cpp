#include "analysis/yara.hpp"

#include <gtest/gtest.h>

namespace cyd::analysis {
namespace {

constexpr const char* kSampleRules = R"(
// detection content for the campaign
rule Stuxnet_Dropper {
  meta: family = stuxnet
  strings:
    $a = "~wtr4132"
    $b = "mrxcls"
  condition: any of them
}
rule Shamoon_Wiper {
  meta:
    family = shamoon
    severity = critical
  strings:
    $jpeg = { ff d8 ff e0 }
    $inf = "f1.inf"
  condition: all of them
}
rule Flame_Platform {
  meta: family = flame
  strings:
    $a = "mssecmgr"
    $b = "BEETLEJUICE"
    $c = "FLASK"
  condition: 2 of them
}
)";

TEST(YaraTest, ParsesRuleCount) {
  const auto set = RuleSet::parse(kSampleRules);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.rules()[1].meta.at("severity"), "critical");
}

TEST(YaraTest, AnyOfThemMatchesSingleString) {
  const auto set = RuleSet::parse(kSampleRules);
  const auto matches = set.scan("dropped file ~wtr4132.tmp to usb");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].rule, "Stuxnet_Dropper");
  EXPECT_EQ(matches[0].family, "stuxnet");
}

TEST(YaraTest, AllOfThemNeedsEveryString) {
  const auto set = RuleSet::parse(kSampleRules);
  EXPECT_TRUE(set.scan("contains f1.inf only").empty());
  const std::string both = std::string("\xFF\xD8\xFF\xE0", 4) + " f1.inf";
  const auto matches = set.scan(both);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].rule, "Shamoon_Wiper");
}

TEST(YaraTest, AtLeastNCounts) {
  const auto set = RuleSet::parse(kSampleRules);
  EXPECT_TRUE(set.scan("mssecmgr alone").empty());
  EXPECT_EQ(set.scan("mssecmgr with FLASK").size(), 1u);
  EXPECT_EQ(set.scan("mssecmgr FLASK BEETLEJUICE").size(), 1u);
}

TEST(YaraTest, HexPatternsMatchBinary) {
  const auto set = RuleSet::parse(
      "rule Boot {\n strings:\n $m = { 55 aa }\n condition: any of them\n}");
  EXPECT_EQ(set.scan(std::string("\x00\x55\xAA\x00", 4)).size(), 1u);
  EXPECT_TRUE(set.scan("plain text").empty());
}

TEST(YaraTest, EmptyInputNeverMatches) {
  const auto set = RuleSet::parse(kSampleRules);
  EXPECT_TRUE(set.scan("").empty());
}

TEST(YaraTest, ParseErrorsAreDiagnosed) {
  EXPECT_THROW(RuleSet::parse("rule {"), std::invalid_argument);
  EXPECT_THROW(RuleSet::parse("garbage line"), std::invalid_argument);
  EXPECT_THROW(RuleSet::parse("rule R {\n strings:\n $a = nope\n}"),
               std::invalid_argument);
  EXPECT_THROW(RuleSet::parse("rule R {\n strings:\n $a = \"x\"\n"),
               std::invalid_argument);  // unterminated
  EXPECT_THROW(RuleSet::parse("rule R {\n strings:\n $a = { zz }\n}"),
               std::invalid_argument);
  EXPECT_THROW(
      RuleSet::parse("rule R {\n strings:\n $a = \"x\"\n condition: maybe\n}"),
      std::invalid_argument);
  EXPECT_THROW(RuleSet::parse("rule R {\n}"), std::invalid_argument);
}

TEST(YaraTest, ScanHostFindsInfectedFiles) {
  sim::Simulation simulation;
  winsys::ProgramRegistry programs;
  winsys::Host host(simulation, programs, "ws", winsys::OsVersion::kWin7);
  host.fs().write_file("c:\\windows\\system32\\mrxcls.sys",
                       "driver body mrxcls", 0);
  host.fs().write_file("c:\\users\\benign.txt", "nothing here", 0);
  const auto set = RuleSet::parse(kSampleRules);
  const auto hits = set.scan_host(host);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].path.str(), "c:\\windows\\system32\\mrxcls.sys");
  EXPECT_EQ(hits[0].family, "stuxnet");
}

TEST(YaraTest, MultipleRulesCanFireOnOneBuffer) {
  const auto set = RuleSet::parse(kSampleRules);
  const auto matches = set.scan("~wtr4132 and mssecmgr and FLASK together");
  EXPECT_EQ(matches.size(), 2u);
}

TEST(YaraTest, SharedAutomatonAgreesWithPerRuleMatches) {
  // RuleSet::scan answers every rule from one Aho–Corasick pass;
  // YaraRule::matches is the per-pattern one-off path. They must agree on
  // every input, including overlapping patterns across rules.
  const auto set = RuleSet::parse(kSampleRules);
  const std::vector<std::string> inputs = {
      "",
      "mrxcls",
      "~wtr4132 mrxcls",                         // two strings of one rule
      "mssecmgr FLASK BEETLEJUICE f1.inf",       // crosses rules
      std::string("\xFF\xD8\xFF\xE0", 4) + " f1.inf ~wtr4132",
      "no indicator content at all",
  };
  for (const auto& data : inputs) {
    std::vector<std::string> via_matches;
    for (const auto& rule : set.rules()) {
      if (rule.matches(data)) via_matches.push_back(rule.name);
    }
    std::vector<std::string> via_scan;
    for (const auto& match : set.scan(data)) via_scan.push_back(match.rule);
    EXPECT_EQ(via_scan, via_matches) << "input: " << data;
  }
}

TEST(YaraTest, OverlappingPatternsAcrossRulesAllRegister) {
  // One rule's string is a substring of another rule's string; both rules
  // must see their own hit from the shared pass.
  const auto set = RuleSet::parse(R"(
rule Long {
  strings:
    $a = "mssecmgr.ocx"
  condition: any of them
}
rule Short {
  strings:
    $a = "secmgr"
  condition: any of them
}
)");
  const auto matches = set.scan("dropped mssecmgr.ocx to system32");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].rule, "Long");
  EXPECT_EQ(matches[1].rule, "Short");
}

}  // namespace
}  // namespace cyd::analysis
