#include "analysis/static_analysis.hpp"

#include <gtest/gtest.h>

#include "malware/shamoon/shamoon.hpp"
#include "malware/tracker.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace cyd::analysis {
namespace {

struct AnalystBench {
  pki::CertStore store;
  pki::TrustStore trust;
  sim::TimePoint now = sim::make_date(2012, 9, 1);
};

TEST(StaticAnalysisTest, ExtractStringsFindsPrintableRuns) {
  const std::string data =
      std::string("\x01\x02", 2) + "mssecmgr.ocx" + std::string("\x00", 1) +
      "short" + std::string("\xff", 1) + "GET_NEWS command";
  const auto strings = extract_strings(data, 6);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "mssecmgr.ocx");
  EXPECT_EQ(strings[1], "GET_NEWS command");
}

TEST(StaticAnalysisTest, ForEachStringVisitsRunsInPlace) {
  const std::string data =
      std::string("\x01\x02", 2) + "mssecmgr.ocx" + std::string("\x00", 1) +
      "short" + std::string("\xff", 1) + "GET_NEWS command";
  std::vector<std::string_view> seen;
  for_each_string(data, 6, [&](std::string_view s) { seen.push_back(s); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "mssecmgr.ocx");
  EXPECT_EQ(seen[1], "GET_NEWS command");
  // The views alias the scanned buffer — no copies were made.
  for (const auto& s : seen) {
    EXPECT_GE(s.data(), data.data());
    EXPECT_LE(s.data() + s.size(), data.data() + data.size());
  }
  // A run terminated only by end-of-data still flushes.
  std::vector<std::string_view> tail;
  for_each_string("trailing-run", 6, [&](std::string_view s) {
    tail.push_back(s);
  });
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], "trailing-run");
  // Shim equivalence: extract_strings returns the same runs, copied.
  EXPECT_EQ(extract_strings(data, 6),
            (std::vector<std::string>{"mssecmgr.ocx", "GET_NEWS command"}));
}

TEST(StaticAnalysisTest, BruteXorRecoversKey) {
  const common::Bytes plain = "SPE1 some executable payload";
  for (std::uint8_t key : {0x01, 0x5A, 0xAB, 0xFF}) {
    const auto cipher = common::xor_cipher(plain, key);
    EXPECT_EQ(brute_xor_key(cipher), key);
  }
  // Unencrypted data reports key 0 (identity).
  EXPECT_EQ(brute_xor_key(plain), 0);
  // Garbage without the marker fails.
  EXPECT_FALSE(brute_xor_key("no marker here at all").has_value());
}

TEST(StaticAnalysisTest, GarbageIsUnparseable) {
  AnalystBench bench;
  const auto report = dissect("MZ not an spe", bench.store, bench.trust,
                              bench.now);
  EXPECT_FALSE(report.parse_ok);
  EXPECT_FALSE(report.parse_error.empty());
  EXPECT_NE(report.summary().find("unparseable"), std::string::npos);
}

TEST(StaticAnalysisTest, DissectsShamoonTrkSvrFully) {
  // The Fig. 6 workflow: one pass over TrkSvr.exe should surface the whole
  // component tree — dropper, encrypted wiper + reporter, nested driver,
  // and the x64 variant.
  sim::Simulation simulation;
  net::Network network(simulation);
  winsys::ProgramRegistry programs;
  malware::InfectionTracker tracker;
  malware::shamoon::Shamoon shamoon(simulation, network, programs, tracker);
  // Give the wiper its signed driver so the nested chain is 3 deep.
  auto ca = pki::CertificateAuthority::create_root(
      "Root", pki::HashAlgorithm::kStrong64, 0, sim::days(9999), 1);
  auto key = pki::KeyPair::generate(2);
  auto cert = ca.issue("EldoS Corporation", pki::kUsageCodeSigning,
                       pki::HashAlgorithm::kStrong64, 0, sim::days(9999), key);
  auto driver = pe::Builder{}
                    .program(malware::shamoon::Shamoon::kDriverProgram)
                    .filename("drdisk.sys")
                    .build();
  pki::sign_image(driver, cert, key);
  shamoon.set_disk_driver(driver);

  AnalystBench bench;
  bench.store.add(ca.certificate());
  bench.trust.trust_root(ca.certificate().serial);

  const auto specimen = shamoon.build_trksvr().serialize();
  const auto report =
      dissect(specimen, bench.store, bench.trust, bench.now);

  ASSERT_TRUE(report.parse_ok);
  EXPECT_EQ(report.original_filename, "TrkSvr.exe");
  EXPECT_EQ(report.signature.status, pki::SignatureStatus::kUnsigned);
  ASSERT_EQ(report.resources.size(), 3u);  // PKCS7, PKCS12, X509

  // Every resource is XOR-encrypted and the key is recoverable.
  for (const auto& res : report.resources) {
    EXPECT_TRUE(res.xor_encrypted);
    ASSERT_TRUE(res.recovered_xor_key.has_value());
    EXPECT_EQ(*res.recovered_xor_key, 0xAB);
    ASSERT_NE(res.embedded, nullptr);
    EXPECT_TRUE(res.embedded->parse_ok);
  }
  // dropper -> {reporter, wiper(-> driver), x64(-> reporter, wiper(->driver))}
  EXPECT_EQ(report.embedded_pe_count(), 7u);

  // The nested Eldos driver is found and its signature validates.
  const StaticReport* wiper = nullptr;
  for (const auto& res : report.resources) {
    if (res.id == malware::shamoon::Shamoon::kResWiper) {
      wiper = res.embedded.get();
    }
  }
  ASSERT_NE(wiper, nullptr);
  ASSERT_EQ(wiper->resources.size(), 2u);  // JPEG + driver
  const StaticReport* nested_driver = nullptr;
  for (const auto& res : wiper->resources) {
    if (res.embedded) nested_driver = res.embedded.get();
  }
  ASSERT_NE(nested_driver, nullptr);
  EXPECT_TRUE(nested_driver->signature.valid());
  EXPECT_EQ(nested_driver->signature.signer_subject, "EldoS Corporation");
}

TEST(StaticAnalysisTest, DepthLimitStopsRecursion) {
  sim::Simulation simulation;
  net::Network network(simulation);
  winsys::ProgramRegistry programs;
  malware::InfectionTracker tracker;
  malware::shamoon::Shamoon shamoon(simulation, network, programs, tracker);
  AnalystBench bench;
  const auto report = dissect(shamoon.build_trksvr().serialize(), bench.store,
                              bench.trust, bench.now, /*max_depth=*/1);
  // Depth 1: resources dissected but their own resources are not.
  EXPECT_GT(report.embedded_pe_count(), 0u);
  for (const auto& res : report.resources) {
    if (res.embedded) {
      EXPECT_EQ(res.embedded->embedded_pe_count(), 0u);
    }
  }
}

TEST(StaticAnalysisTest, PackedHeuristicFlagsHighEntropySections) {
  sim::Rng rng(1);
  auto packed = pe::Builder{}
                    .program("p")
                    .section(".packed", common::random_bytes(rng, 4096), true)
                    .build();
  AnalystBench bench;
  EXPECT_TRUE(
      dissect(packed.serialize(), bench.store, bench.trust, bench.now)
          .looks_packed);
  auto plain = pe::Builder{}
                   .program("p")
                   .section(".text", std::string(4096, 'A'), true)
                   .build();
  EXPECT_FALSE(
      dissect(plain.serialize(), bench.store, bench.trust, bench.now)
          .looks_packed);
}

TEST(StaticAnalysisTest, ImportsAreFlattened) {
  auto image = pe::Builder{}
                   .program("p")
                   .import("kernel32.dll", {"CreateFileW", "WriteFile"})
                   .section(".text", "x", true)
                   .build();
  AnalystBench bench;
  const auto report =
      dissect(image.serialize(), bench.store, bench.trust, bench.now);
  ASSERT_EQ(report.imports.size(), 2u);
  EXPECT_EQ(report.imports[0], "kernel32.dll!CreateFileW");
}

}  // namespace
}  // namespace cyd::analysis
