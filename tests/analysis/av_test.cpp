#include "analysis/av.hpp"

#include <gtest/gtest.h>

#include "analysis/forensics.hpp"
#include "cnc/attack_center.hpp"

namespace cyd::analysis {
namespace {

class AvTest : public ::testing::Test {
 protected:
  AvTest() : host_(simulation_, programs_, "corp-ws", winsys::OsVersion::kWin7) {}

  sim::Simulation simulation_;
  winsys::ProgramRegistry programs_;
  winsys::Host host_;
  SignatureFeed feed_;
};

TEST_F(AvTest, FeedAvailabilityHonoursPublishTime) {
  feed_.publish("Sig.A", 111, sim::days(10));
  feed_.publish("Sig.B", 222, sim::days(20));
  EXPECT_EQ(feed_.available_at(sim::days(5)).size(), 0u);
  EXPECT_EQ(feed_.available_at(sim::days(15)).size(), 1u);
  EXPECT_EQ(feed_.available_at(sim::days(25)).size(), 2u);
}

TEST_F(AvTest, OnAccessQuarantinesKnownSample) {
  const common::Bytes malware_bytes = "evil dropper bytes";
  feed_.publish_sample("W32.Test", malware_bytes, 0);
  auto& av = AvProduct::install(host_, feed_);
  EXPECT_EQ(av.signature_count(), 1u);

  host_.fs().write_file("c:\\users\\payload.exe", malware_bytes, 0);
  EXPECT_FALSE(host_.fs().is_file("c:\\users\\payload.exe"));
  ASSERT_EQ(av.detections().size(), 1u);
  EXPECT_EQ(av.detections()[0].signature, "W32.Test");
  EXPECT_EQ(av.detections()[0].response, "quarantined");
  // The event log records it (what adventcfg watches for).
  ASSERT_FALSE(host_.event_log().empty());
  EXPECT_NE(host_.event_log()[0].message.find("W32.Test"),
            std::string::npos);
}

TEST_F(AvTest, UnknownBytesPassFreely) {
  feed_.publish_sample("W32.Test", "evil dropper bytes", 0);
  AvProduct::install(host_, feed_);
  host_.fs().write_file("c:\\users\\benign.exe", "harmless bytes", 0);
  EXPECT_TRUE(host_.fs().is_file("c:\\users\\benign.exe"));
}

TEST_F(AvTest, SingleByteVariantEvadesHashSignature) {
  // The modular-update trick in miniature (§V-D).
  const common::Bytes v1 = "malware build v1";
  const common::Bytes v2 = "malware build v2";
  feed_.publish_sample("W32.Test!v1", v1, 0);
  auto& av = AvProduct::install(host_, feed_);
  host_.fs().write_file("c:\\a.exe", v1, 0);
  host_.fs().write_file("c:\\b.exe", v2, 0);
  EXPECT_FALSE(host_.fs().is_file("c:\\a.exe"));
  EXPECT_TRUE(host_.fs().is_file("c:\\b.exe"));
  EXPECT_EQ(av.detections().size(), 1u);
}

TEST_F(AvTest, PatternSignatureCatchesPerVictimVariants) {
  // What the hash can't do: one generic byte-pattern signature covers every
  // rebuild that keeps the shared platform string.
  feed_.publish_pattern("W32.Test.gen", "platform loader v3", 0);
  auto& av = AvProduct::install(host_, feed_);
  EXPECT_EQ(av.signature_count(), 1u);
  host_.fs().write_file("c:\\a.exe", "victim-a build: platform loader v3!",
                        0);
  host_.fs().write_file("c:\\b.exe", "victim-b build: platform loader v3?",
                        0);
  host_.fs().write_file("c:\\c.exe", "unrelated contents", 0);
  EXPECT_FALSE(host_.fs().is_file("c:\\a.exe"));
  EXPECT_FALSE(host_.fs().is_file("c:\\b.exe"));
  EXPECT_TRUE(host_.fs().is_file("c:\\c.exe"));
  ASSERT_EQ(av.detections().size(), 2u);
  EXPECT_EQ(av.detections()[0].signature, "W32.Test.gen");
  EXPECT_EQ(av.detections()[0].response, "quarantined");
}

TEST_F(AvTest, PatternSignatureHonoursPublishTime) {
  AvOptions options;
  options.update_interval = sim::kDay;
  options.full_scan_interval = 7 * sim::kDay;
  auto& av = AvProduct::install(host_, feed_, options);
  host_.fs().write_file("c:\\implant.exe", "implant: platform loader v3", 0);
  feed_.publish_pattern("W32.Late.gen", "platform loader v3", sim::days(3));
  simulation_.run_until(sim::days(2));
  EXPECT_TRUE(host_.fs().is_file("c:\\implant.exe"));  // not yet visible
  simulation_.run_until(sim::days(8));  // weekly scan after the update
  EXPECT_FALSE(host_.fs().is_file("c:\\implant.exe"));
  ASSERT_FALSE(av.detections().empty());
  EXPECT_EQ(av.detections()[0].signature, "W32.Late.gen");
  EXPECT_EQ(av.detections()[0].response, "scan-hit");
}

TEST_F(AvTest, HashSignatureWinsOverPatternOnExactMatch) {
  // The exact-hash name is the more specific verdict; the per-signature
  // loop the PatternSet pass replaced checked hashes first, too.
  const common::Bytes sample = "exact build: platform loader v3";
  feed_.publish_sample("W32.Exact", sample, 0);
  feed_.publish_pattern("W32.Generic", "platform loader v3", 0);
  auto& av = AvProduct::install(host_, feed_);
  host_.fs().write_file("c:\\x.exe", sample, 0);
  ASSERT_EQ(av.detections().size(), 1u);
  EXPECT_EQ(av.detections()[0].signature, "W32.Exact");
}

TEST_F(AvTest, SignatureUpdateLagWindow) {
  // Malware lands at day 0; the signature ships at day 3; the product pulls
  // daily and full-scans weekly: the file dies at the next full scan.
  AvOptions options;
  options.update_interval = sim::kDay;
  options.full_scan_interval = 7 * sim::kDay;
  auto& av = AvProduct::install(host_, feed_, options);

  const common::Bytes sample = "stealthy implant";
  host_.fs().write_file("c:\\implant.exe", sample, 0);
  feed_.publish_sample("W32.Late", sample, sim::days(3));

  simulation_.run_until(sim::days(2));
  EXPECT_TRUE(host_.fs().is_file("c:\\implant.exe"));  // still unknown
  simulation_.run_until(sim::days(8));  // weekly scan after the update
  EXPECT_FALSE(host_.fs().is_file("c:\\implant.exe"));
  ASSERT_FALSE(av.detections().empty());
  EXPECT_EQ(av.detections()[0].response, "scan-hit");
}

TEST_F(AvTest, ExecGateBlocksKnownBinary) {
  // Log-only mode: the file stays but execution is vetoed.
  AvOptions options;
  options.quarantine = false;
  const common::Bytes sample =
      pe::Builder{}.program("some.prog").build().serialize();
  feed_.publish_sample("W32.Blocked", sample, 0);
  auto& av = AvProduct::install(host_, feed_, options);

  host_.fs().write_file("c:\\known.exe", sample, 0);
  EXPECT_TRUE(host_.fs().is_file("c:\\known.exe"));  // no quarantine
  const auto result = host_.execute_file("c:\\known.exe", {});
  EXPECT_EQ(result.status, winsys::ExecResult::Status::kBlockedByPolicy);
  bool blocked = false;
  for (const auto& d : av.detections()) {
    if (d.response == "blocked-exec") blocked = true;
  }
  EXPECT_TRUE(blocked);
}

TEST_F(AvTest, HeuristicGateBlocksSuspiciousTraitsWithoutSignatures) {
  AvOptions options;
  options.heuristics = true;
  options.quarantine = false;
  auto& av = AvProduct::install(host_, feed_, options);

  // A dropper-shaped binary: unsigned, encrypted resource, service imports,
  // tilde temp name. Scores >= threshold without any signature existing.
  auto dropper = pe::Builder{}
                     .program("whatever.dropper")
                     .filename("~wtr9999.tmp")
                     .encrypted_resource(1, "payload", "module body", 0x5A)
                     .import("advapi32.dll", {"CreateServiceW"})
                     .section(".text", "loader", true)
                     .build();
  EXPECT_GE(AvProduct::heuristic_score(dropper), 3);
  host_.fs().write_file("c:\\dropper.exe", dropper.serialize(), 0);
  EXPECT_EQ(host_.execute_file("c:\\dropper.exe", {}).status,
            winsys::ExecResult::Status::kBlockedByPolicy);
  ASSERT_FALSE(av.detections().empty());
  EXPECT_EQ(av.detections()[0].response, "blocked-heuristic");
}

TEST_F(AvTest, HeuristicGatePassesOrdinarySoftware) {
  AvOptions options;
  options.heuristics = true;
  AvProduct::install(host_, feed_, options);
  auto benign = pe::Builder{}
                    .program("notepad")
                    .filename("notepad.exe")
                    .section(".text", std::string(512, 'A'), true)
                    .import("user32.dll", {"CreateWindowW"})
                    .build();
  EXPECT_LT(AvProduct::heuristic_score(benign), 3);
  host_.fs().write_file("c:\\notepad.exe", benign.serialize(), 0);
  // Unknown program id: inert, but crucially not *blocked*.
  EXPECT_EQ(host_.execute_file("c:\\notepad.exe", {}).status,
            winsys::ExecResult::Status::kUnknownProgram);
}

TEST_F(AvTest, HeuristicsOffByDefault) {
  AvProduct::install(host_, feed_);
  auto dropper = pe::Builder{}
                     .program("x")
                     .filename("~tmp.tmp")
                     .encrypted_resource(1, "p", "m", 0x11)
                     .import("advapi32.dll", {"CreateServiceW"})
                     .build();
  host_.fs().write_file("c:\\x.exe", dropper.serialize(), 0);
  EXPECT_EQ(host_.execute_file("c:\\x.exe", {}).status,
            winsys::ExecResult::Status::kUnknownProgram);
}

TEST_F(AvTest, OnDetectCallbackFires) {
  feed_.publish_sample("W32.Cb", "sample", 0);
  auto& av = AvProduct::install(host_, feed_);
  std::vector<std::string> seen;
  av.set_on_detect([&](const Detection& d) { seen.push_back(d.signature); });
  host_.fs().write_file("c:\\x", "sample", 0);
  EXPECT_EQ(seen, (std::vector<std::string>{"W32.Cb"}));
}

TEST(ForensicsTest, HostExamRecoversDeletedButNotShredded) {
  sim::Simulation simulation;
  winsys::ProgramRegistry programs;
  winsys::Host host(simulation, programs, "victim", winsys::OsVersion::kWin7);
  host.fs().write_file("c:\\windows\\mssecmgr.ocx", "flame main", 0);
  host.fs().write_file("c:\\windows\\advnetcfg.ocx", "qa module", 0);
  host.fs().write_file("c:\\windows\\msglu32.ocx", "jimmy", 0);
  host.log_event("av", "detection: mssecmgr.ocx suspicious");

  host.fs().delete_file("c:\\windows\\advnetcfg.ocx", 10);          // lazy
  host.fs().delete_file("c:\\windows\\msglu32.ocx", 10, /*shred=*/true);

  const auto report =
      examine_host(host, {"mssecmgr", "advnetcfg", "msglu32"});
  EXPECT_EQ(report.live_artifacts.size(), 1u);
  EXPECT_EQ(report.recovered_files.size(), 1u);
  EXPECT_EQ(report.shredded_remnants, 1u);
  EXPECT_EQ(report.event_log_mentions, 1u);
  EXPECT_NEAR(report.recoverability(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(report.total_evidence(), 3u);
}

TEST(ForensicsTest, CleanHostYieldsNothing) {
  sim::Simulation simulation;
  winsys::ProgramRegistry programs;
  winsys::Host host(simulation, programs, "clean", winsys::OsVersion::kWin7);
  const auto report = examine_host(host, {"mssecmgr", "~wtr"});
  EXPECT_EQ(report.total_evidence(), 0u);
  EXPECT_DOUBLE_EQ(report.recoverability(), 0.0);
}

TEST(ForensicsTest, ServerExamBeforeAndAfterLogWiper) {
  sim::Simulation simulation;
  cnc::AttackCenter center(simulation, 0x11);
  cnc::CncServer server(simulation, "cc-7", {"domain.example"},
                        center.upload_key());
  center.manage(server);
  net::HttpRequest req;
  req.path = "/newsforyou";
  req.params = {{"cmd", "GET_NEWS"}, {"client", "victim-a"}, {"type", "FL"}};
  server.handle(req);

  auto before = examine_server(server);
  EXPECT_FALSE(before.logs_wiped);
  EXPECT_GT(before.access_log_lines, 0u);
  EXPECT_GT(before.database_rows, 0u);
  EXPECT_EQ(before.client_identities, 1u);

  server.run_log_wiper();
  auto after = examine_server(server);
  EXPECT_TRUE(after.logs_wiped);
  EXPECT_EQ(after.access_log_lines, 0u);
  // The database survives LogWiper (it wipes logs, not tables) — which is
  // how Kaspersky could still enumerate clients on seized boxes.
  EXPECT_GT(after.database_rows, 0u);
}

}  // namespace
}  // namespace cyd::analysis
