#include "cnc/crypto.hpp"

#include <gtest/gtest.h>

namespace cyd::cnc {
namespace {

TEST(CncCryptoTest, EncryptDecryptRoundTrip) {
  const auto key = CncKeyPair::generate(42);
  const auto blob = encrypt_for(public_half(key), "stolen cad drawings");
  const auto plain = decrypt(key, blob);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, "stolen cad drawings");
}

TEST(CncCryptoTest, CiphertextDiffersFromPlaintext) {
  const auto key = CncKeyPair::generate(42);
  const auto blob = encrypt_for(public_half(key), "secret document body");
  EXPECT_NE(blob.ciphertext, "secret document body");
}

TEST(CncCryptoTest, WrongKeyFailsToDecrypt) {
  const auto right = CncKeyPair::generate(1);
  const auto wrong = CncKeyPair::generate(2);
  const auto blob = encrypt_for(public_half(right), "for coordinator only");
  EXPECT_FALSE(decrypt(wrong, blob).has_value());
}

TEST(CncCryptoTest, KeyGenerationDeterministic) {
  EXPECT_EQ(CncKeyPair::generate(7).public_id,
            CncKeyPair::generate(7).public_id);
  EXPECT_NE(CncKeyPair::generate(7).public_id,
            CncKeyPair::generate(8).public_id);
}

TEST(CncCryptoTest, BlobSerializationRoundTrip) {
  const auto key = CncKeyPair::generate(3);
  const auto blob = encrypt_for(public_half(key), "payload");
  const auto parsed = EncryptedBlob::parse(blob.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key_id, blob.key_id);
  EXPECT_EQ(parsed->ciphertext, blob.ciphertext);
  EXPECT_EQ(decrypt(key, *parsed), "payload");
}

TEST(CncCryptoTest, BlobParseRejectsGarbage) {
  EXPECT_FALSE(EncryptedBlob::parse("").has_value());
  EXPECT_FALSE(EncryptedBlob::parse("XXXX12345678").has_value());
  EXPECT_FALSE(EncryptedBlob::parse("ENC1shrt").has_value());
}

TEST(CncCryptoTest, EmptyPlaintextAllowed) {
  const auto key = CncKeyPair::generate(4);
  const auto blob = encrypt_for(public_half(key), "");
  EXPECT_EQ(decrypt(key, blob), "");
}

TEST(CncCryptoTest, LargePayloadRoundTrip) {
  const auto key = CncKeyPair::generate(5);
  common::Bytes big(1 << 20, 'x');  // 1 MiB of redundancy
  const auto blob = encrypt_for(public_half(key), big);
  // A keyed stream must not leave megabytes of constant bytes visible.
  EXPECT_GT(common::shannon_entropy(blob.ciphertext), 7.5);
  EXPECT_EQ(decrypt(key, blob), big);
}

}  // namespace
}  // namespace cyd::cnc
