// Wire-format tests for the zero-copy decode layer (cnc/wire.hpp).
//
// Two properties anchor the layer: (1) serialize/parse round-trips arbitrary
// payload lists, and (2) the view parsers accept and reject exactly the same
// inputs as the seed's owned parser — verified against a verbatim copy of
// that parser over the malformed-input corpus from the hardening pass plus
// randomized corruptions.

#include "cnc/wire.hpp"

#include <gtest/gtest.h>

#include "cnc/crypto.hpp"
#include "sim/rng.hpp"

namespace cyd::cnc {
namespace {

// The seed's parse_payloads, kept verbatim as the reference implementation
// the zero-copy parser must agree with input-for-input.
std::vector<Payload> seed_parse_payloads(std::string_view bytes) {
  std::vector<Payload> out;
  if (bytes.size() < 8 || bytes.substr(0, 4) != "PLS1") return out;
  try {
    std::size_t off = 4;
    const std::uint32_t count = common::get_u32(bytes, off);
    off += 4;
    for (std::uint32_t i = 0; i < count; ++i) {
      Payload p;
      const std::uint32_t name_len = common::get_u32(bytes, off);
      off += 4;
      if (off + name_len > bytes.size()) return {};
      p.name = std::string(bytes.substr(off, name_len));
      off += name_len;
      const std::uint32_t data_len = common::get_u32(bytes, off);
      off += 4;
      if (off + data_len > bytes.size()) return {};
      p.data = common::Bytes(bytes.substr(off, data_len));
      off += data_len;
      out.push_back(std::move(p));
    }
  } catch (const std::out_of_range&) {
    return {};
  }
  return out;
}

std::vector<Payload> random_payloads(sim::Rng& rng, std::size_t count) {
  std::vector<Payload> out;
  for (std::size_t i = 0; i < count; ++i) {
    Payload p;
    // Sizes deliberately cover the degenerate cases: empty and 1-byte names
    // and bodies are as likely as anything else.
    const auto name_len = static_cast<std::size_t>(rng.uniform_int(0, 24));
    const auto data_len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    for (std::size_t k = 0; k < name_len; ++k) {
      p.name.push_back(static_cast<char>(rng.uniform_int('a', 'z')));
    }
    p.data = common::random_bytes(rng, data_len);
    out.push_back(std::move(p));
  }
  return out;
}

void expect_parsers_agree(std::string_view bytes, const std::string& label) {
  const auto seed = seed_parse_payloads(bytes);
  const auto owned = parse_payloads(bytes);
  std::vector<PayloadView> views;
  const bool view_ok = parse_payload_views(bytes, views);

  ASSERT_EQ(owned.size(), seed.size()) << label;
  for (std::size_t i = 0; i < seed.size(); ++i) {
    EXPECT_EQ(owned[i].name, seed[i].name) << label;
    EXPECT_EQ(owned[i].data, seed[i].data) << label;
  }
  // The view parser's accept/reject decision must match too. The only
  // asymmetry by design: a *valid* empty list is "true, no views" for the
  // view parser but indistinguishable from a reject in the owned API.
  if (seed.empty()) {
    EXPECT_TRUE(views.empty()) << label;
  } else {
    ASSERT_TRUE(view_ok) << label;
    ASSERT_EQ(views.size(), seed.size()) << label;
    for (std::size_t i = 0; i < seed.size(); ++i) {
      EXPECT_EQ(views[i].name, seed[i].name) << label;
      EXPECT_EQ(views[i].data, seed[i].data) << label;
    }
  }
}

TEST(WireTest, PayloadRoundTripRandomized) {
  sim::Rng rng(0x9a7e57);
  for (int iter = 0; iter < 200; ++iter) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(0, 8));
    const auto payloads = random_payloads(rng, count);
    const common::Bytes wire = serialize_payloads(payloads);

    const auto parsed = parse_payloads(wire);
    ASSERT_EQ(parsed.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(parsed[i].name, payloads[i].name);
      EXPECT_EQ(parsed[i].data, payloads[i].data);
    }

    std::vector<PayloadView> views;
    ASSERT_TRUE(parse_payload_views(wire, views));
    ASSERT_EQ(views.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(views[i].name, payloads[i].name);
      EXPECT_EQ(views[i].data, payloads[i].data);
      const Payload owned = views[i].materialize();
      EXPECT_EQ(owned.name, payloads[i].name);
      EXPECT_EQ(owned.data, payloads[i].data);
    }
  }
}

TEST(WireTest, PayloadRoundTripDegenerateSizes) {
  // Explicit corners on top of the randomized sweep: empty list, empty
  // name/data, and 1-byte name/data.
  for (const std::vector<Payload>& payloads :
       {std::vector<Payload>{},
        std::vector<Payload>{{"", ""}},
        std::vector<Payload>{{"a", ""}},
        std::vector<Payload>{{"", "x"}},
        std::vector<Payload>{{"a", "x"}, {"", ""}, {"b", "y"}}}) {
    const common::Bytes wire = serialize_payloads(payloads);
    const auto parsed = parse_payloads(wire);
    ASSERT_EQ(parsed.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(parsed[i].name, payloads[i].name);
      EXPECT_EQ(parsed[i].data, payloads[i].data);
    }
    std::vector<PayloadView> views;
    EXPECT_TRUE(parse_payload_views(wire, views));
    EXPECT_EQ(views.size(), payloads.size());
  }
}

TEST(WireTest, ViewParserMatchesSeedParserOnMalformedCorpus) {
  // The corpus from the malformed-input hardening pass: truncations at every
  // prefix, a lying count, and a name length far past the buffer.
  const common::Bytes good =
      serialize_payloads({{"module-a", "0123456789"}, {"b", "x"}});
  for (std::size_t cut = 0; cut <= good.size(); ++cut) {
    expect_parsers_agree(std::string_view(good).substr(0, cut),
                         "cut@" + std::to_string(cut));
  }
  common::Bytes lying = good;
  lying[4] = 3;
  expect_parsers_agree(lying, "lying-count");
  common::Bytes huge("PLS1");
  common::put_u32(huge, 1);
  common::put_u32(huge, 0xffffffffu);
  huge.append("abc");
  expect_parsers_agree(huge, "huge-name-len");
  expect_parsers_agree("garbage", "garbage");
  expect_parsers_agree("", "empty");
  expect_parsers_agree("PLS1", "magic-only");
}

TEST(WireTest, ViewParserMatchesSeedParserUnderRandomCorruption) {
  sim::Rng rng(0xc0de);
  for (int iter = 0; iter < 300; ++iter) {
    const auto payloads =
        random_payloads(rng, static_cast<std::size_t>(rng.uniform_int(1, 4)));
    common::Bytes wire = serialize_payloads(payloads);
    // Corrupt 1-4 random bytes (often length fields) and/or truncate.
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int f = 0; f < flips && !wire.empty(); ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      wire[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.3)) {
      wire.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()))));
    }
    expect_parsers_agree(wire, "iter " + std::to_string(iter));
  }
}

TEST(WireTest, BlobViewMatchesOwnedParse) {
  const auto pair = CncKeyPair::generate(0xfee1);
  const EncryptedBlob blob = encrypt_for(public_half(pair), "stolen docs");
  const common::Bytes wire = blob.serialize();
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    const std::string_view slice = std::string_view(wire).substr(0, cut);
    const auto owned = EncryptedBlob::parse(slice);
    const auto view = parse_blob_view(slice);
    ASSERT_EQ(owned.has_value(), view.has_value()) << cut;
    if (owned) {
      EXPECT_EQ(view->key_id, owned->key_id);
      EXPECT_EQ(view->ciphertext, owned->ciphertext);
      const EncryptedBlob copy = view->materialize();
      EXPECT_EQ(copy.key_id, owned->key_id);
      EXPECT_EQ(copy.ciphertext, owned->ciphertext);
    }
  }
}

TEST(WireTest, EntryUploadViewAliasesBody) {
  const auto pair = CncKeyPair::generate(0xfee2);
  const EncryptedBlob blob = encrypt_for(public_half(pair), "contents");
  const common::Bytes body = serialize_entry_upload("doc.7z", blob);
  const auto view = parse_entry_upload_view(body);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->data_name, "doc.7z");
  EXPECT_EQ(view->blob.key_id, blob.key_id);
  EXPECT_EQ(view->blob.ciphertext, blob.ciphertext);
  // Zero-copy: the views point into the body buffer itself.
  EXPECT_GE(view->data_name.data(), body.data());
  EXPECT_LT(view->data_name.data(), body.data() + body.size());
  EXPECT_GE(view->blob.ciphertext.data(), body.data());

  // Truncations inside the framed prefix are rejected.
  const std::size_t framed = 8 + std::string("doc.7z").size() + 12;
  for (std::size_t cut = 0; cut < framed; ++cut) {
    EXPECT_FALSE(
        parse_entry_upload_view(std::string_view(body).substr(0, cut))
            .has_value())
        << cut;
  }
}

TEST(WireTest, DecodeRequestValidatesBeforeDispatch) {
  net::HttpRequest r;
  r.path = "/other";
  EXPECT_EQ(decode_request(r).verb, RequestVerb::kInvalid);
  EXPECT_EQ(decode_request(r).error_status, 404);

  r.path = "/newsforyou";
  EXPECT_EQ(decode_request(r).error_status, 400);  // no cmd
  r.params = {{"cmd", "DANCE"}};
  EXPECT_EQ(decode_request(r).error_status, 400);  // unknown cmd
  r.params = {{"cmd", "GET_NEWS"}};
  EXPECT_EQ(decode_request(r).error_status, 400);  // no client

  r.params = {{"cmd", "GET_NEWS"}, {"client", "v-1"}};
  DecodedRequest d = decode_request(r);
  EXPECT_EQ(d.verb, RequestVerb::kGetNews);
  EXPECT_EQ(d.client, "v-1");
  EXPECT_EQ(d.type, kClientTypeFl);  // type defaults to FL

  r.params = {{"cmd", "GET_NEWS"}, {"client", "v-1"}, {"type", "SPE"}};
  EXPECT_EQ(decode_request(r).type, "SPE");

  // ADD_ENTRY validates the body before reporting a verb at all — exactly
  // the seed's ordering (a malformed upload never registers the client).
  r.params = {{"cmd", "ADD_ENTRY"}, {"client", "v-1"}};
  r.body = "not an upload";
  d = decode_request(r);
  EXPECT_EQ(d.verb, RequestVerb::kInvalid);
  EXPECT_EQ(d.error_status, 400);

  const auto pair = CncKeyPair::generate(0xfee3);
  r.body = serialize_entry_upload("x.bin",
                                  encrypt_for(public_half(pair), "data"));
  d = decode_request(r);
  EXPECT_EQ(d.verb, RequestVerb::kAddEntry);
  EXPECT_EQ(d.upload.data_name, "x.bin");
}

}  // namespace
}  // namespace cyd::cnc
