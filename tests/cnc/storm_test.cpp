// Beacon-storm determinism for the sharded C&C request pipeline.
//
// One RequestEngine per shard, driven by ShardedScheduler events, with the
// per-shard results folded by merge_storm() in shard index order. The
// contract under test: a single-queue reference run and sharded runs at 1,
// 2 and 4 workers produce bit-identical merged response/state checksums and
// counter totals. This file lives in the sweep_tests binary on purpose —
// the ThreadSanitizer CI job runs exactly that binary, so the storm's
// engine-per-shard execution is raced-checked alongside the scheduler's
// round barrier.

#include <gtest/gtest.h>

#include <vector>

#include "cnc/crypto.hpp"
#include "cnc/pipeline.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_scheduler.hpp"
#include "sim/sweep.hpp"

namespace cyd::cnc {
namespace {

constexpr std::size_t kShards = 4;
constexpr sim::TimePoint kHorizon = 7 * sim::kDay;

struct TimedRequest {
  sim::TimePoint at = 0;
  net::HttpRequest request;
};

// Deterministic per-shard beacon streams: mostly GET_NEWS from a small
// client population, a quarter uploads, a trickle of rejects. Built once
// and shared by every run so the workloads are identical by construction.
std::vector<std::vector<TimedRequest>> build_streams(
    const CncPublicKey& upload_key) {
  std::vector<std::vector<TimedRequest>> streams(kShards);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    sim::Rng rng(sim::derive_seed(0x570a11, shard));
    for (int i = 0; i < 160; ++i) {
      TimedRequest tr;
      tr.at = rng.uniform_int(0, kHorizon - 1);
      net::HttpRequest& r = tr.request;
      r.path = "/newsforyou";
      const std::string client = "c" + std::to_string(shard) + "-" +
                                 std::to_string(rng.uniform_int(0, 7));
      if (rng.bernoulli(0.25)) {
        r.method = "POST";
        r.params = {{"cmd", "ADD_ENTRY"}, {"client", client}, {"type", "FL"}};
        r.body = serialize_entry_upload(
            "f" + std::to_string(i),
            encrypt_for(upload_key, "loot-" + std::to_string(i)));
      } else if (rng.bernoulli(0.06)) {
        r.path = "/wrong";  // rejected with 404, still part of the stream
        r.params = {{"cmd", "GET_NEWS"}, {"client", client}};
      } else {
        r.params = {{"cmd", "GET_NEWS"}, {"client", client}, {"type", "SP"}};
      }
      streams[shard].push_back(std::move(tr));
    }
  }
  return streams;
}

StormMerge run_storm(const std::vector<std::vector<TimedRequest>>& streams,
                     sim::ShardedScheduler::Mode mode, unsigned workers,
                     std::uint64_t* trace_out) {
  std::vector<RequestEngine> engines(kShards);
  for (std::size_t k = 0; k < kShards; ++k) {
    engines[k].push_news(Payload{"mod-1", "broadcast bytes"});
    engines[k].push_ad("c" + std::to_string(k) + "-0",
                       Payload{"targeted", "command bytes"});
  }

  sim::ShardPlan plan;
  for (std::size_t k = 0; k < kShards; ++k) {
    plan.labels.push_back("site-" + std::to_string(k));
  }
  // A ring of 6-hour WAN links: generous lookahead, so the storm executes
  // in a handful of rounds. No cross-shard sends — a beacon terminates at
  // its site's server, which is the whole point of sharding by site.
  for (std::size_t k = 0; k < kShards; ++k) {
    const auto next = static_cast<std::uint32_t>((k + 1) % kShards);
    plan.channels.push_back({static_cast<std::uint32_t>(k), next,
                             6 * sim::kHour});
    plan.channels.push_back({next, static_cast<std::uint32_t>(k),
                             6 * sim::kHour});
  }
  sim::ShardedScheduler scheduler(plan, {mode, workers});

  for (std::size_t shard = 0; shard < kShards; ++shard) {
    RequestEngine* engine = &engines[shard];
    for (const TimedRequest& tr : streams[shard]) {
      const net::HttpRequest* request = &tr.request;
      const sim::TimePoint at = tr.at;
      scheduler.schedule(shard, at,
                         [engine, request, at] { engine->handle(*request, at); });
    }
    // The attack-center cadence: pick up and purge every 12 hours.
    for (sim::TimePoint t = 12 * sim::kHour; t <= kHorizon;
         t += 12 * sim::kHour) {
      scheduler.schedule(shard, t, [engine, t] {
        engine->take_new_entries();
        engine->purge_retrieved(t - 30 * sim::kMinute);
      });
    }
  }

  scheduler.run_until(kHorizon + 1);
  if (trace_out != nullptr) *trace_out = scheduler.trace_checksum();
  return merge_storm(engines);
}

TEST(CncStormTest, ShardedStormMatchesSingleQueueAtAnyWorkerCount) {
  const auto key_pair = CncKeyPair::generate(0xbeefcafe);
  const auto streams = build_streams(public_half(key_pair));

  std::uint64_t reference_trace = 0;
  const StormMerge reference =
      run_storm(streams, sim::ShardedScheduler::Mode::kSingleQueue, 1,
                &reference_trace);
  // The workload actually exercises every path.
  EXPECT_GT(reference.totals.get_news, 0u);
  EXPECT_GT(reference.totals.uploads, 0u);
  EXPECT_GT(reference.totals.rejected, 0u);
  EXPECT_GT(reference.clients, 0u);

  for (const unsigned workers : {1u, 2u, 4u}) {
    std::uint64_t trace = 0;
    const StormMerge merged =
        run_storm(streams, sim::ShardedScheduler::Mode::kSharded, workers,
                  &trace);
    EXPECT_EQ(merged.response_checksum, reference.response_checksum)
        << workers << " workers";
    EXPECT_EQ(merged.state_checksum, reference.state_checksum)
        << workers << " workers";
    EXPECT_EQ(merged.totals.get_news, reference.totals.get_news);
    EXPECT_EQ(merged.totals.uploads, reference.totals.uploads);
    EXPECT_EQ(merged.totals.upload_bytes, reference.totals.upload_bytes);
    EXPECT_EQ(merged.totals.rejected, reference.totals.rejected);
    EXPECT_EQ(merged.totals.pending_ads, reference.totals.pending_ads);
    EXPECT_EQ(merged.clients, reference.clients);
    EXPECT_EQ(merged.entries, reference.entries);
    EXPECT_EQ(trace, reference_trace) << workers << " workers";
  }
}

TEST(CncStormTest, MergeFoldsInShardIndexOrder) {
  // Two engines with different histories: swapping them must change the
  // merged checksums (the fold is ordered, not a commutative sum), while
  // the counter totals stay the same.
  std::vector<RequestEngine> ab(2);
  std::vector<RequestEngine> ba(2);
  net::HttpRequest r;
  r.path = "/newsforyou";
  r.params = {{"cmd", "GET_NEWS"}, {"client", "v-1"}};
  ab[0].handle(r, 0);
  ba[1].handle(r, 0);
  const StormMerge m_ab = merge_storm(ab);
  const StormMerge m_ba = merge_storm(ba);
  EXPECT_EQ(m_ab.totals.get_news, m_ba.totals.get_news);
  EXPECT_NE(m_ab.response_checksum, m_ba.response_checksum);
  EXPECT_NE(m_ab.state_checksum, m_ba.state_checksum);
}

}  // namespace
}  // namespace cyd::cnc
