#include "cnc/server.hpp"

#include <gtest/gtest.h>

#include "cnc/attack_center.hpp"
#include "cnc/database.hpp"
#include "cnc/domains.hpp"

namespace cyd::cnc {
namespace {

class CncServerTest : public ::testing::Test {
 protected:
  CncServerTest()
      : center_(simulation_, 0xabc),
        server_(simulation_, "cc-0", {"trafficspot.com", "quickmask.net"},
                center_.upload_key()) {
    center_.manage(server_);
  }

  net::HttpRequest get_news(const std::string& client) {
    net::HttpRequest r;
    r.host = "trafficspot.com";
    r.path = "/newsforyou";
    r.params = {{"cmd", "GET_NEWS"}, {"client", client}, {"type", "FL"}};
    return r;
  }

  net::HttpRequest add_entry(const std::string& client,
                             const std::string& name,
                             const std::string& content) {
    net::HttpRequest r;
    r.host = "trafficspot.com";
    r.path = "/newsforyou";
    r.method = "POST";
    r.params = {{"cmd", "ADD_ENTRY"}, {"client", client}, {"type", "FL"}};
    r.body = serialize_entry_upload(
        name, encrypt_for(server_.upload_key(), content));
    return r;
  }

  sim::Simulation simulation_;
  AttackCenter center_;
  CncServer server_;
};

TEST_F(CncServerTest, PayloadSerializationRoundTrip) {
  std::vector<Payload> payloads{{"module-a", "bytes-a"}, {"module-b", "b"}};
  const auto parsed = parse_payloads(serialize_payloads(payloads));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, "module-a");
  EXPECT_EQ(parsed[1].data, "b");
  EXPECT_TRUE(parse_payloads("garbage").empty());
  EXPECT_TRUE(parse_payloads(serialize_payloads({})).empty());
}

TEST_F(CncServerTest, GetNewsEmptyForUnknownClient) {
  const auto response = server_.handle(get_news("victim-1"));
  EXPECT_TRUE(response.ok());
  EXPECT_TRUE(parse_payloads(response.body).empty());
  // ...but the client is now registered in the database.
  EXPECT_EQ(server_.known_clients(), (std::vector<std::string>{"victim-1"}));
}

TEST_F(CncServerTest, AdsDeliveredOnceToTargetClient) {
  server_.push_ad("victim-1", {"flask-update-v2", "module bytes"});
  // Wrong client sees nothing.
  EXPECT_TRUE(parse_payloads(server_.handle(get_news("other")).body).empty());
  // Target gets it exactly once.
  auto first = parse_payloads(server_.handle(get_news("victim-1")).body);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].name, "flask-update-v2");
  EXPECT_TRUE(
      parse_payloads(server_.handle(get_news("victim-1")).body).empty());
}

TEST_F(CncServerTest, NewsBroadcastReachesEveryClientOnce) {
  server_.push_news({"beetlejuice-v3", "bt module"});
  for (const std::string client : {"a", "b", "c"}) {
    auto payloads = parse_payloads(server_.handle(get_news(client)).body);
    ASSERT_EQ(payloads.size(), 1u) << client;
    EXPECT_EQ(payloads[0].name, "beetlejuice-v3");
    EXPECT_TRUE(parse_payloads(server_.handle(get_news(client)).body).empty());
  }
}

TEST_F(CncServerTest, NewsPublishedLaterStillDelivered) {
  server_.handle(get_news("a"));
  server_.push_news({"late-module", "x"});
  auto payloads = parse_payloads(server_.handle(get_news("a")).body);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0].name, "late-module");
}

TEST_F(CncServerTest, EntryUploadStoredEncrypted) {
  const auto response =
      server_.handle(add_entry("victim-1", "docs.7z", "design documents"));
  EXPECT_TRUE(response.ok());
  ASSERT_EQ(server_.entries().size(), 1u);
  const Entry& entry = server_.entries()[0];
  EXPECT_EQ(entry.client_id, "victim-1");
  EXPECT_EQ(entry.data_name, "docs.7z");
  EXPECT_FALSE(entry.retrieved);
  // Server-side bytes are ciphertext; the loot is opaque to the box itself.
  EXPECT_EQ(entry.blob.ciphertext.find("design documents"),
            common::Bytes::npos);
  EXPECT_GT(server_.total_upload_bytes(), 0u);
  EXPECT_EQ(server_.upload_count(), 1u);
}

TEST_F(CncServerTest, MalformedRequestsRejected) {
  net::HttpRequest r;
  r.path = "/newsforyou";
  EXPECT_EQ(server_.handle(r).status, 400);  // no cmd
  r.params = {{"cmd", "DANCE"}};
  EXPECT_EQ(server_.handle(r).status, 400);  // unknown cmd
  r.params = {{"cmd", "GET_NEWS"}};
  EXPECT_EQ(server_.handle(r).status, 400);  // no client
  r.path = "/other";
  EXPECT_EQ(server_.handle(r).status, 404);
  auto bad_upload = add_entry("v", "x", "y");
  bad_upload.body = "not an upload";
  EXPECT_EQ(server_.handle(bad_upload).status, 400);
}

TEST_F(CncServerTest, ParsePayloadsRejectsTruncatedLengthFields) {
  std::vector<Payload> payloads{{"module-a", "0123456789"}};
  const common::Bytes good = serialize_payloads(payloads);
  // Chop the buffer at every prefix length: a reader must never crash or
  // fabricate payloads out of half a length field.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_TRUE(parse_payloads(good.substr(0, cut)).empty()) << cut;
  }
  EXPECT_EQ(parse_payloads(good).size(), 1u);
}

TEST_F(CncServerTest, ParsePayloadsRejectsLyingCount) {
  // Header advertises 3 payloads, body carries only 1.
  std::vector<Payload> payloads{{"module-a", "bytes"}};
  common::Bytes lying = serialize_payloads(payloads);
  lying[4] = 3;  // count is little-endian at offset 4
  EXPECT_TRUE(parse_payloads(lying).empty());
  // Huge declared name length cannot read out of bounds either.
  common::Bytes huge("PLS1");
  common::put_u32(huge, 1);
  common::put_u32(huge, 0xffffffffu);  // name_len far past the buffer
  huge.append("abc");
  EXPECT_TRUE(parse_payloads(huge).empty());
}

TEST_F(CncServerTest, AddEntryRejectsTruncatedUploads) {
  auto upload = add_entry("victim", "doc.7z", "contents");
  const common::Bytes good = upload.body;
  // Every cut inside the length-framed prefix (UPL1 + name_len + name +
  // ENC1 blob header) must be rejected; past that the wire format carries
  // no more framing (the ciphertext is the rest of the body by design).
  const std::size_t framed = 8 + std::string("doc.7z").size() + 12;
  for (std::size_t cut = 0; cut < framed; ++cut) {
    auto r = upload;
    r.body = good.substr(0, cut);
    EXPECT_EQ(server_.handle(r).status, 400) << cut;
  }
  EXPECT_TRUE(server_.entries().empty());
  EXPECT_EQ(server_.upload_count(), 0u);
  // The untruncated original is still accepted afterwards.
  EXPECT_TRUE(server_.handle(upload).ok());
  EXPECT_EQ(server_.entries().size(), 1u);
}

TEST_F(CncServerTest, AddEntryRejectsLyingNameLength) {
  auto r = add_entry("victim", "doc", "contents");
  common::Bytes body("UPL1");
  common::put_u32(body, 0xfffffff0u);  // name_len far past the buffer
  body.append("doc");
  r.body = body;
  EXPECT_EQ(server_.handle(r).status, 400);
  EXPECT_TRUE(server_.entries().empty());
}

TEST_F(CncServerTest, AttackCenterCollectsAndDecrypts) {
  server_.handle(add_entry("victim-1", "cad.dwg", "centrifuge drawing"));
  server_.handle(add_entry("victim-2", "mail.pst", "inbox archive"));
  EXPECT_EQ(center_.collect(), 2u);
  ASSERT_EQ(center_.archive().size(), 2u);
  EXPECT_EQ(center_.archive()[0].plaintext, "centrifuge drawing");
  EXPECT_EQ(center_.archive()[1].client_id, "victim-2");
  EXPECT_EQ(center_.decrypt_failures(), 0u);
  // Entries are marked retrieved but not yet deleted.
  EXPECT_EQ(server_.entries().size(), 2u);
  EXPECT_TRUE(server_.entries()[0].retrieved);
  // Second collection finds nothing new.
  EXPECT_EQ(center_.collect(), 0u);
}

TEST_F(CncServerTest, WrongKeyUploadCountsAsDecryptFailure) {
  const auto stranger = CncKeyPair::generate(0xdead);
  net::HttpRequest r = add_entry("v", "x", "y");
  r.body = serialize_entry_upload(
      "x", encrypt_for(public_half(stranger), "unreadable"));
  server_.handle(r);
  EXPECT_EQ(center_.collect(), 0u);
  EXPECT_EQ(center_.decrypt_failures(), 1u);
}

TEST_F(CncServerTest, PurgeDeletesOnlyRetrievedEntries) {
  server_.handle(add_entry("a", "1", "data1"));
  center_.collect();
  server_.handle(add_entry("a", "2", "data2"));  // not yet retrieved
  EXPECT_EQ(server_.purge_retrieved(0), 1u);
  ASSERT_EQ(server_.entries().size(), 1u);
  EXPECT_EQ(server_.entries()[0].data_name, "2");
}

TEST_F(CncServerTest, PurgeTaskRunsEvery30Minutes) {
  server_.start_purge_task();
  server_.handle(add_entry("a", "1", "data1"));
  center_.collect();
  EXPECT_EQ(server_.entries().size(), 1u);
  simulation_.run_for(31 * sim::kMinute);
  EXPECT_TRUE(server_.entries().empty());
}

TEST_F(CncServerTest, PurgeTaskHonorsConfiguredRetention) {
  // Ticks at 10/20/30 minutes; the entry is retrieved immediately but must
  // survive until it is 30 (configured) minutes old — the pre-fix task
  // passed max_age 0 and deleted it on the very first tick.
  server_.start_purge_task(10 * sim::kMinute);
  server_.handle(add_entry("a", "loot.7z", "data"));
  center_.collect();
  simulation_.run_for(15 * sim::kMinute);
  EXPECT_EQ(server_.entries().size(), 1u);
  simulation_.run_for(20 * sim::kMinute);  // tick at 30 min: now past retention
  EXPECT_TRUE(server_.entries().empty());
}

TEST_F(CncServerTest, RestartingPurgeTaskKeepsASingleSeries) {
  server_.start_purge_task(30 * sim::kMinute);
  const auto pending_before = simulation_.queue().pending();
  // Restage: the second start must cancel the 30-minute series before
  // arming the 10-minute one, not stack a second concurrent cycle.
  server_.start_purge_task(10 * sim::kMinute);
  EXPECT_EQ(simulation_.queue().pending(), pending_before);
  const auto executed_before = simulation_.queue().stats().executed;
  simulation_.run_for(60 * sim::kMinute);
  // Exactly the 10-minute ticks (6 in an hour); a leaked 30-minute series
  // would add two more.
  EXPECT_EQ(simulation_.queue().stats().executed - executed_before, 6u);
}

TEST_F(CncServerTest, StopPurgeTaskSafeWhenNeverStarted) {
  server_.stop_purge_task();  // never started: harmless no-op
  server_.start_purge_task(10 * sim::kMinute);
  server_.handle(add_entry("a", "1", "data1"));
  center_.collect();
  server_.stop_purge_task();
  server_.stop_purge_task();  // double-stop: also harmless
  simulation_.run_for(2 * sim::kHour);
  // The series is dead: the long-retrieved entry survives untouched.
  ASSERT_EQ(server_.entries().size(), 1u);
  EXPECT_EQ(simulation_.queue().pending(), 0u);
}

TEST_F(CncServerTest, PurgeMinutesSettingRoundTrips) {
  EXPECT_EQ(server_.purge_retention(), 30 * sim::kMinute);
  auto& settings = server_.db().table("settings");
  Row* row = settings.find(settings.all().front().first);
  ASSERT_NE(row, nullptr);
  (*row)["purge_minutes"] = "5";
  EXPECT_EQ(server_.purge_retention(), 5 * sim::kMinute);

  server_.start_purge_task(2 * sim::kMinute);
  server_.handle(add_entry("a", "doc", "x"));
  center_.collect();
  simulation_.run_for(4 * sim::kMinute);  // 4 < 5: retention still covers it
  EXPECT_EQ(server_.entries().size(), 1u);
  simulation_.run_for(2 * sim::kMinute);  // tick at 6 min: older than 5
  EXPECT_TRUE(server_.entries().empty());
}

TEST_F(CncServerTest, UnparseablePurgeMinutesFallsBackToDefault) {
  auto& settings = server_.db().table("settings");
  Row* row = settings.find(settings.all().front().first);
  ASSERT_NE(row, nullptr);
  (*row)["purge_minutes"] = "soon(tm)";
  EXPECT_EQ(server_.purge_retention(), 30 * sim::kMinute);
}

TEST_F(CncServerTest, DatabaseTracksClientContacts) {
  server_.handle(get_news("victim-1"));
  server_.handle(get_news("victim-1"));
  server_.handle(add_entry("victim-1", "x", "y"));
  const auto rows =
      server_.db().table("clients").select_where("client_id", "victim-1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].second->at("contacts"), "3");
  EXPECT_EQ(rows[0].second->at("type"), "FL");
}

TEST_F(CncServerTest, LogWiperDestroysAccessLog) {
  server_.handle(get_news("victim-1"));
  EXPECT_FALSE(server_.access_log().empty());
  server_.run_log_wiper();
  EXPECT_TRUE(server_.access_log().empty());
  EXPECT_TRUE(server_.logs_wiped());
  // Logging stays off afterwards.
  server_.handle(get_news("victim-2"));
  EXPECT_TRUE(server_.access_log().empty());
}

TEST_F(CncServerTest, SuicideOrderBroadcastsAndWipes) {
  server_.handle(get_news("victim-1"));
  center_.order_suicide();
  EXPECT_TRUE(server_.logs_wiped());
  auto payloads = parse_payloads(server_.handle(get_news("victim-1")).body);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0].name, AttackCenter::kSuicidePayload);
}

TEST_F(CncServerTest, PushCommandToReachesEveryManagedServer) {
  CncServer second(simulation_, "cc-1", {"webzone.org"}, center_.upload_key());
  center_.manage(second);
  center_.push_command_to("victim-9", "jimmy-config", "docx pdf dwg");
  EXPECT_EQ(server_.pending_ads(), 1u);
  EXPECT_EQ(second.pending_ads(), 1u);
}

TEST_F(CncServerTest, CollectionTaskRunsPeriodically) {
  center_.start_collection_task(sim::kHour);
  server_.handle(add_entry("a", "doc", "contents"));
  simulation_.run_for(sim::kHour + sim::kMinute);
  EXPECT_EQ(center_.archive().size(), 1u);
  EXPECT_EQ(center_.archived_bytes(), 8u);  // "contents"
}

TEST_F(CncServerTest, PlatformServesAllFourClientTypes) {
  // CLIENT_TYPE_FL was only one of four supported clients (§III-B).
  for (const char* type : {kClientTypeFl, kClientTypeSp, kClientTypeSpe,
                           kClientTypeIp}) {
    net::HttpRequest r;
    r.path = "/newsforyou";
    r.params = {{"cmd", "GET_NEWS"},
                {"client", std::string("c-") + type},
                {"type", type}};
    EXPECT_TRUE(server_.handle(r).ok());
  }
  std::set<std::string> types;
  for (const auto& [id, row] : server_.db().table("clients").all()) {
    types.insert(row->at("type"));
  }
  EXPECT_EQ(types, (std::set<std::string>{"FL", "IP", "SP", "SPE"}));
}

TEST_F(CncServerTest, AdsForOneClientInvisibleToOthersForever) {
  server_.push_ad("target", {"payload", "secret module"});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(parse_payloads(
                    server_.handle(get_news("bystander-" +
                                            std::to_string(i)))
                        .body)
                    .empty());
  }
  EXPECT_EQ(server_.pending_ads(), 1u);
  EXPECT_EQ(parse_payloads(server_.handle(get_news("target")).body).size(),
            1u);
  EXPECT_EQ(server_.pending_ads(), 0u);
}

TEST_F(CncServerTest, EntryPickupCostTracksPendingNotHistory) {
  // Regression guard for the retrieved-watermark cursor: with a long history
  // of already-collected entries, picking up one new upload must examine one
  // entry, not re-scan the archive. The pre-cursor implementation walked all
  // of entries_ on every take_new_entries().
  for (int i = 0; i < 500; ++i) {
    server_.handle(add_entry("a", "f" + std::to_string(i), "x"));
    EXPECT_EQ(server_.take_new_entries().size(), 1u);
    EXPECT_EQ(server_.engine().scan_stats().last_pickup_scanned, 1u) << i;
  }
  // An empty pickup over a 500-entry history examines nothing.
  EXPECT_TRUE(server_.take_new_entries().empty());
  EXPECT_EQ(server_.engine().scan_stats().last_pickup_scanned, 0u);
  EXPECT_EQ(server_.entries().size(), 500u);
}

TEST_F(CncServerTest, PurgeCostTracksPurgedNotHistory) {
  for (int i = 0; i < 200; ++i) {
    server_.handle(add_entry("a", "f" + std::to_string(i), "x"));
  }
  server_.take_new_entries();
  // Nothing old enough: the prefix scan stops at the first young entry.
  EXPECT_EQ(server_.purge_retrieved(sim::kHour), 0u);
  EXPECT_EQ(server_.engine().scan_stats().last_purge_scanned, 1u);
  // Everything old enough: scanned == purged, and pending entries (after the
  // watermark) are never visited.
  server_.handle(add_entry("a", "pending", "x"));  // not retrieved
  EXPECT_EQ(server_.purge_retrieved(0), 200u);
  EXPECT_EQ(server_.engine().scan_stats().last_purge_scanned, 200u);
  ASSERT_EQ(server_.entries().size(), 1u);
  EXPECT_EQ(server_.entries()[0].data_name, "pending");
}

TEST_F(CncServerTest, AccessLogBoundedByHalvingRetention) {
  server_.set_access_log_cap(8);
  for (int i = 0; i < 9; ++i) {
    server_.handle(get_news("c-" + std::to_string(i)));
  }
  // The 9th line found the log full: the oldest half (+1) was shed, the
  // newest lines survive, and the loss is counted.
  EXPECT_EQ(server_.access_log().size(), 4u);
  EXPECT_EQ(server_.access_log_dropped(), 5u);
  EXPECT_NE(server_.access_log().back().find("client=c-8"), std::string::npos);

  // The wiper still destroys everything and resets the counter — the wipe
  // starts a fresh forensic window.
  server_.run_log_wiper();
  EXPECT_TRUE(server_.access_log().empty());
  EXPECT_EQ(server_.access_log_dropped(), 0u);
  EXPECT_TRUE(server_.logs_wiped());
}

TEST_F(CncServerTest, HandleBatchMatchesPerRequestLoop) {
  std::vector<net::HttpRequest> requests;
  server_.push_news({"mod-1", "bytes"});
  for (int i = 0; i < 20; ++i) {
    requests.push_back(get_news("c-" + std::to_string(i % 7)));
    if (i % 3 == 0) {
      requests.push_back(
          add_entry("c-" + std::to_string(i % 7), "f" + std::to_string(i),
                    "loot"));
    }
    if (i % 5 == 0) requests.push_back(net::HttpRequest{});  // 404s
  }

  // A twin server handles the same stream one request at a time.
  sim::Simulation twin_sim;
  AttackCenter twin_center(twin_sim, 0xabc);
  CncServer twin(twin_sim, "cc-0", {"trafficspot.com"},
                 twin_center.upload_key());
  twin.push_news({"mod-1", "bytes"});

  const auto batched = server_.handle_batch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto single = twin.handle(requests[i]);
    EXPECT_EQ(batched[i].status, single.status) << i;
    EXPECT_EQ(batched[i].body, single.body) << i;
  }
  EXPECT_EQ(server_.engine().response_chain(),
            twin.engine().response_chain());
  EXPECT_EQ(server_.engine().state_checksum(),
            twin.engine().state_checksum());
}

TEST_F(CncServerTest, WriteBehindRowsKeepFirstContactOrder) {
  // An ad queued for a client that has not phoned home yet must not create a
  // row (or claim an early row id): rows appear in first-contact order, like
  // the seed's eager per-beacon updates.
  server_.push_ad("late-target", {"mod", "bytes"});
  EXPECT_TRUE(server_.known_clients().empty());
  server_.handle(get_news("a"));
  server_.handle(get_news("late-target"));
  server_.handle(get_news("b"));
  EXPECT_EQ(server_.known_clients(),
            (std::vector<std::string>{"a", "late-target", "b"}));
  // The flushed row reflects the delivered ad's bookkeeping.
  const Row* row = server_.db().table("clients").find_first_where(
      "client_id", "late-target");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->at("contacts"), "1");
  EXPECT_EQ(server_.pending_ads(), 0u);
}

TEST(DatabaseTest, FindFirstWhereStopsAtFirstMatch) {
  Database db;
  auto& t = db.table("clients");
  t.insert({{"client_id", "a"}, {"type", "FL"}});
  t.insert({{"client_id", "b"}, {"type", "SP"}});
  t.insert({{"client_id", "c"}, {"type", "SP"}});
  const Row* hit = t.find_first_where("type", "SP");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->at("client_id"), "b");  // lowest row id wins
  EXPECT_EQ(t.find_first_where("type", "IP"), nullptr);
  EXPECT_EQ(t.find_first_where("nope", "x"), nullptr);
  // The non-const overload allows in-place updates.
  Row* mut = t.find_first_where("client_id", "c");
  ASSERT_NE(mut, nullptr);
  (*mut)["type"] = "SPE";
  EXPECT_EQ(t.select_where("type", "SP").size(), 1u);
}

TEST(DatabaseTest, InsertSelectErase) {
  Database db;
  auto& t = db.table("clients");
  const auto id1 = t.insert({{"client_id", "a"}, {"type", "FL"}});
  t.insert({{"client_id", "b"}, {"type", "SP"}});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.select_where("type", "FL").size(), 1u);
  ASSERT_NE(t.find(id1), nullptr);
  EXPECT_EQ(t.find(id1)->at("client_id"), "a");
  EXPECT_TRUE(t.erase(id1));
  EXPECT_FALSE(t.erase(id1));
  EXPECT_EQ(t.erase_where("type", "SP"), 1u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(DatabaseTest, WipeDropsEverything) {
  Database db;
  db.table("a").insert({{"k", "v"}});
  db.table("b").insert({{"k", "v"}});
  EXPECT_EQ(db.total_rows(), 2u);
  db.wipe();
  EXPECT_EQ(db.total_rows(), 0u);
  EXPECT_TRUE(db.wiped());
  EXPECT_TRUE(db.table_names().empty());
}

TEST(DomainFleetTest, GeneratesRequestedShape) {
  sim::Rng rng(1234);
  const auto fleet = DomainFleet::generate(80, 22, rng);
  EXPECT_EQ(fleet.size(), 80u);
  std::set<std::string> servers, domains;
  for (const auto& r : fleet) {
    servers.insert(r.server_id);
    domains.insert(r.domain);
  }
  EXPECT_EQ(servers.size(), 22u);
  EXPECT_EQ(domains.size(), 80u);  // all unique
  EXPECT_GE(DomainFleet::registrar_count(fleet), 3u);
  EXPECT_GE(DomainFleet::country_count(fleet), 2u);
}

TEST(DomainFleetTest, DeterministicForSeed) {
  sim::Rng a(7), b(7);
  const auto f1 = DomainFleet::generate(10, 3, a);
  const auto f2 = DomainFleet::generate(10, 3, b);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(f1[i].domain, f2[i].domain);
    EXPECT_EQ(f1[i].registrant, f2[i].registrant);
  }
}

TEST(DomainFleetTest, DomainsOfFiltersByServer) {
  sim::Rng rng(9);
  const auto fleet = DomainFleet::generate(10, 2, rng);
  const auto d0 = DomainFleet::domains_of(fleet, "cc-0");
  const auto d1 = DomainFleet::domains_of(fleet, "cc-1");
  EXPECT_EQ(d0.size() + d1.size(), 10u);
  EXPECT_EQ(d0.size(), 5u);
}

}  // namespace
}  // namespace cyd::cnc
