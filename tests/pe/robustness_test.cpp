// Robustness properties: parsers in the dissection pipeline consume
// attacker-controlled bytes and must never crash, loop, or accept garbage —
// they either parse exactly what the serializer produced or reject cleanly.

#include <gtest/gtest.h>

#include "analysis/static_analysis.hpp"
#include "analysis/yara.hpp"
#include "cnc/crypto.hpp"
#include "cnc/server.hpp"
#include "pe/image.hpp"
#include "pki/signing.hpp"
#include "sim/rng.hpp"

namespace cyd {
namespace {

/// Deterministic random image for a seed: varying section/resource/import
/// counts and payload sizes.
pe::Image random_image(std::uint64_t seed) {
  sim::Rng rng(seed);
  pe::Builder builder;
  builder.machine(rng.bernoulli(0.5) ? pe::Machine::kX86 : pe::Machine::kX64)
      .timestamp(rng.uniform_int(0, 1'000'000'000))
      .program("prog-" + std::to_string(seed))
      .filename("file" + std::to_string(seed % 7) + ".exe")
      .version("v" + std::to_string(seed));
  const int sections = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < sections; ++i) {
    builder.section(".s" + std::to_string(i),
                    common::random_bytes(rng, static_cast<std::size_t>(
                                                  rng.uniform_int(0, 2048))),
                    rng.bernoulli(0.5), rng.bernoulli(0.3));
  }
  const int resources = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < resources; ++i) {
    const auto payload = common::random_bytes(
        rng, static_cast<std::size_t>(rng.uniform_int(0, 512)));
    if (rng.bernoulli(0.5)) {
      builder.encrypted_resource(static_cast<std::uint32_t>(100 + i), "r",
                                 payload,
                                 static_cast<std::uint8_t>(rng.uniform_int(
                                     0, 255)));
    } else {
      builder.resource(static_cast<std::uint32_t>(100 + i), "r", payload);
    }
  }
  const int imports = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < imports; ++i) {
    builder.import("dll" + std::to_string(i) + ".dll",
                   {"FnA", "FnB" + std::to_string(i)});
  }
  return builder.build();
}

class PeRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeRoundTripSweep, SerializeParseIsIdentity) {
  const auto image = random_image(GetParam());
  const auto bytes = image.serialize();
  const auto parsed = pe::Image::parse(bytes);
  EXPECT_EQ(parsed.serialize(), bytes);
  EXPECT_EQ(parsed.program_id, image.program_id);
  EXPECT_EQ(parsed.sections.size(), image.sections.size());
  EXPECT_EQ(parsed.resources.size(), image.resources.size());
}

TEST_P(PeRoundTripSweep, EveryTruncationRejectsCleanly) {
  const auto bytes = random_image(GetParam()).serialize();
  // Probe a spread of prefixes, not just off-by-ones.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += std::max<std::size_t>(1, bytes.size() / 37)) {
    EXPECT_THROW(pe::Image::parse(bytes.substr(0, cut)), pe::ParseError)
        << "prefix " << cut << " of " << bytes.size();
  }
}

TEST_P(PeRoundTripSweep, BitFlipsNeverCrashParserOrDissector) {
  auto bytes = random_image(GetParam()).serialize();
  sim::Rng rng(GetParam() ^ 0xf11b);
  pki::CertStore store;
  pki::TrustStore trust;
  for (int flips = 0; flips < 32; ++flips) {
    auto mutated = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     static_cast<char>(rng.uniform_int(1, 255)));
    // Either parses (mutation hit a payload byte) or throws ParseError;
    // the static dissector must absorb both outcomes.
    try {
      pe::Image::parse(mutated);
    } catch (const pe::ParseError&) {
    }
    const auto report = analysis::dissect(mutated, store, trust, 0);
    (void)report;  // must simply not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeRoundTripSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(ParserFuzzTest, RandomBytesNeverCrashAnyParser) {
  sim::Rng rng(0xfa22);
  for (int round = 0; round < 200; ++round) {
    const auto junk = common::random_bytes(
        rng, static_cast<std::size_t>(rng.uniform_int(0, 600)));
    EXPECT_THROW(pe::Image::parse(junk), pe::ParseError);
    EXPECT_FALSE(pki::CodeSignature::parse(junk).has_value());
    EXPECT_FALSE(pki::Certificate::parse(junk).has_value());
    // Payload/blob parsers return empty/nullopt on garbage.
    (void)cnc::parse_payloads(junk);
    (void)cnc::EncryptedBlob::parse(junk);
  }
}

TEST(ParserFuzzTest, MagicPrefixedGarbageStillRejected) {
  sim::Rng rng(0xfa23);
  for (const char* magic : {"SPE1", "SIG1", "CRT1", "PLS1", "ENC1", "UPL1"}) {
    for (int round = 0; round < 50; ++round) {
      const auto junk =
          std::string(magic) +
          common::random_bytes(
              rng, static_cast<std::size_t>(rng.uniform_int(0, 200)));
      try {
        pe::Image::parse(junk);
      } catch (const pe::ParseError&) {
      }
      (void)pki::CodeSignature::parse(junk);
      (void)pki::Certificate::parse(junk);
      (void)cnc::parse_payloads(junk);
      (void)cnc::EncryptedBlob::parse(junk);
    }
  }
  SUCCEED();  // surviving without UB/crash is the property
}

class SignedImageSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SignedImageSweep, SignVerifyHoldsAndTamperBreaks) {
  auto ca = pki::CertificateAuthority::create_root(
      "Root", pki::HashAlgorithm::kStrong64, 0, sim::days(30000), GetParam());
  auto key = pki::KeyPair::generate(GetParam() ^ 0x5);
  auto cert = ca.issue("Vendor", pki::kUsageCodeSigning,
                       pki::HashAlgorithm::kStrong64, 0, sim::days(30000),
                       key);
  pki::CertStore store;
  pki::TrustStore trust;
  store.add(ca.certificate());
  trust.trust_root(ca.certificate().serial);

  auto image = random_image(GetParam() ^ 0xabc);
  pki::sign_image(image, cert, key);
  EXPECT_TRUE(pki::verify_image(image, store, trust, 1).valid());

  auto tampered = image;
  tampered.program_id += "!";
  EXPECT_EQ(pki::verify_image(tampered, store, trust, 1).status,
            pki::SignatureStatus::kDigestMismatch);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignedImageSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace cyd
