#include "pe/image.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace cyd::pe {
namespace {

Image make_sample_image() {
  return Builder{}
      .machine(Machine::kX86)
      .timestamp(1234567)
      .program("shamoon.trksvr")
      .filename("TrkSvr.exe")
      .version("CompanyName: Distributed Link Tracking Server")
      .section(".text", "executable code bytes", /*executable=*/true)
      .section(".data", "mutable data", /*executable=*/false, /*writable=*/true)
      .resource(112, "PKCS12", "reporter module plaintext")
      .encrypted_resource(113, "PKCS7", "wiper module plaintext", 0xAB)
      .import("kernel32.dll", {"CreateFileW", "WriteFile"})
      .import("srvcli.dll", {"NetShareEnum"})
      .build();
}

TEST(PeImageTest, SerializeParseRoundTrip) {
  const Image original = make_sample_image();
  const auto bytes = original.serialize();
  const Image parsed = Image::parse(bytes);

  EXPECT_EQ(parsed.machine, Machine::kX86);
  EXPECT_EQ(parsed.build_timestamp, 1234567);
  EXPECT_EQ(parsed.program_id, "shamoon.trksvr");
  EXPECT_EQ(parsed.original_filename, "TrkSvr.exe");
  ASSERT_EQ(parsed.sections.size(), 2u);
  EXPECT_EQ(parsed.sections[0].name, ".text");
  EXPECT_TRUE(parsed.sections[0].executable);
  EXPECT_FALSE(parsed.sections[0].writable);
  EXPECT_TRUE(parsed.sections[1].writable);
  ASSERT_EQ(parsed.resources.size(), 2u);
  ASSERT_EQ(parsed.imports.size(), 2u);
  EXPECT_EQ(parsed.imports[0].functions.size(), 2u);
  // Round-trip is byte-stable.
  EXPECT_EQ(parsed.serialize(), bytes);
}

TEST(PeImageTest, EncryptedResourceStoresCiphertext) {
  const Image img = make_sample_image();
  const Resource* res = img.find_resource(113);
  ASSERT_NE(res, nullptr);
  EXPECT_TRUE(res->xor_encrypted);
  EXPECT_NE(res->data, "wiper module plaintext");
  EXPECT_EQ(res->plaintext(), "wiper module plaintext");
}

TEST(PeImageTest, PlainResourceIsIdentity) {
  const Image img = make_sample_image();
  const Resource* res = img.find_resource(112);
  ASSERT_NE(res, nullptr);
  EXPECT_FALSE(res->xor_encrypted);
  EXPECT_EQ(res->plaintext(), "reporter module plaintext");
}

TEST(PeImageTest, FindResourceByName) {
  const Image img = make_sample_image();
  EXPECT_NE(img.find_resource("PKCS7"), nullptr);
  EXPECT_EQ(img.find_resource("MISSING"), nullptr);
}

TEST(PeImageTest, FindSectionByName) {
  const Image img = make_sample_image();
  EXPECT_NE(img.find_section(".text"), nullptr);
  EXPECT_EQ(img.find_section(".rsrc"), nullptr);
}

TEST(PeImageTest, ImportsFunctionIsCaseInsensitiveOnDll) {
  const Image img = make_sample_image();
  EXPECT_TRUE(img.imports_function("KERNEL32.DLL", "CreateFileW"));
  EXPECT_FALSE(img.imports_function("kernel32.dll", "OpenProcess"));
  EXPECT_FALSE(img.imports_function("user32.dll", "CreateFileW"));
}

TEST(PeImageTest, LooksLikePeChecksMagic) {
  const Image img = make_sample_image();
  EXPECT_TRUE(Image::looks_like_pe(img.serialize()));
  EXPECT_FALSE(Image::looks_like_pe("MZ this is not an SPE"));
  EXPECT_FALSE(Image::looks_like_pe(""));
}

TEST(PeImageTest, ParseRejectsBadMagic) {
  EXPECT_THROW(Image::parse("XXXXgarbage"), ParseError);
}

TEST(PeImageTest, ParseRejectsTruncation) {
  const auto bytes = make_sample_image().serialize();
  // Every strict prefix must be rejected, never crash.
  for (std::size_t len : {std::size_t{4}, std::size_t{10}, bytes.size() / 2,
                          bytes.size() - 1}) {
    EXPECT_THROW(Image::parse(bytes.substr(0, len)), ParseError)
        << "prefix length " << len;
  }
}

TEST(PeImageTest, ParseRejectsTrailingBytes) {
  auto bytes = make_sample_image().serialize();
  bytes += "extra";
  EXPECT_THROW(Image::parse(bytes), ParseError);
}

TEST(PeImageTest, SignedRegionExcludesSignature) {
  Image img = make_sample_image();
  const auto region_before = img.signed_region();
  img.signature = "SIGNATURE BLOB";
  EXPECT_EQ(img.signed_region(), region_before);
  EXPECT_NE(img.serialize(), region_before);
}

TEST(PeImageTest, SignatureSurvivesRoundTrip) {
  Image img = make_sample_image();
  img.signature = "opaque signature bytes";
  const Image parsed = Image::parse(img.serialize());
  EXPECT_EQ(parsed.signature, "opaque signature bytes");
}

TEST(PeImageTest, PayloadSizeSumsSectionsAndResources) {
  Image img;
  img.sections.push_back(Section{".a", "12345", false, false});
  img.resources.push_back(Resource{1, "r", "123", false, 0});
  EXPECT_EQ(img.payload_size(), 8u);
}

TEST(PeImageTest, MachineTypeRoundTrip) {
  Image img = Builder{}.machine(Machine::kX64).program("p").build();
  EXPECT_EQ(Image::parse(img.serialize()).machine, Machine::kX64);
  EXPECT_STREQ(to_string(Machine::kX64), "x64");
  EXPECT_STREQ(to_string(Machine::kX86), "x86");
}

TEST(PeImageTest, EmptyImageRoundTrips) {
  const Image img;
  const Image parsed = Image::parse(img.serialize());
  EXPECT_TRUE(parsed.sections.empty());
  EXPECT_TRUE(parsed.resources.empty());
  EXPECT_TRUE(parsed.imports.empty());
}

TEST(PeImageTest, EncryptedResourceEntropyRises) {
  // XOR with a single key does not change entropy, but packing a low-entropy
  // payload under a multi-byte key through common::xor_cipher does not
  // either; what matters for triage is that ciphertext != plaintext and the
  // dissector can recover plaintext via the recorded key.
  const Image img = make_sample_image();
  const Resource* res = img.find_resource(113);
  ASSERT_NE(res, nullptr);
  EXPECT_EQ(common::xor_cipher(res->data, res->xor_key), res->plaintext());
}

TEST(PeImageTest, BinaryPayloadWithNulBytesRoundTrips) {
  common::Bytes payload;
  for (int i = 0; i < 512; ++i) payload.push_back(static_cast<char>(i % 256));
  const Image img =
      Builder{}.program("p").section(".bin", payload, false).build();
  const Image parsed = Image::parse(img.serialize());
  ASSERT_EQ(parsed.sections.size(), 1u);
  EXPECT_EQ(parsed.sections[0].data, payload);
}

}  // namespace
}  // namespace cyd::pe
