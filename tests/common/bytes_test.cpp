#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace cyd::common {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data("\x00\x01\xfe\xff\x42", 5);
  EXPECT_EQ(to_hex(data), "0001feff42");
  EXPECT_EQ(from_hex("0001feff42"), data);
}

TEST(BytesTest, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("DEADBEEF"), from_hex("deadbeef"));
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, XorSingleByteIsInvolution) {
  const Bytes plain = "TrkSvr dropper payload";
  const Bytes cipher = xor_cipher(plain, 0xAB);
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(xor_cipher(cipher, 0xAB), plain);
}

TEST(BytesTest, XorZeroKeyIsIdentity) {
  const Bytes plain = "unchanged";
  EXPECT_EQ(xor_cipher(plain, 0x00), plain);
}

TEST(BytesTest, XorMultiByteRoundTrip) {
  const Bytes plain = "flame module payload bytes";
  const Bytes cipher = xor_cipher(plain, "k3y!");
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(xor_cipher(cipher, "k3y!"), plain);
}

TEST(BytesTest, XorEmptyKeyIsIdentity) {
  const Bytes plain = "abc";
  EXPECT_EQ(xor_cipher(plain, std::string_view{}), plain);
}

TEST(BytesTest, Fnv1a64KnownVector) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(BytesTest, Fnv1a64Sensitivity) {
  EXPECT_NE(fnv1a64("stuxnet"), fnv1a64("stuxnet "));
  EXPECT_NE(fnv1a64("flame"), fnv1a64("Flame"));
}

TEST(BytesTest, EntropyOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy(""), 0.0);
}

TEST(BytesTest, EntropyOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy(Bytes(1024, 'A')), 0.0);
}

TEST(BytesTest, EntropyOfAllBytesIsEight) {
  Bytes all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<char>(i));
  EXPECT_NEAR(shannon_entropy(all), 8.0, 1e-9);
}

TEST(BytesTest, RandomBytesScoreHighEntropy) {
  sim::Rng rng(99);
  const Bytes data = random_bytes(rng, 64 * 1024);
  EXPECT_GT(shannon_entropy(data), 7.9);
}

TEST(BytesTest, EnglishTextScoresMidEntropy) {
  const Bytes text =
      "The quick brown fox jumps over the lazy dog. The Middle East is "
      "currently the target of an unprecedented campaign of cyber attacks.";
  const double e = shannon_entropy(text);
  EXPECT_GT(e, 3.0);
  EXPECT_LT(e, 5.5);
}

TEST(BytesTest, RandomBytesExactLength) {
  sim::Rng rng(1);
  EXPECT_EQ(random_bytes(rng, 0).size(), 0u);
  EXPECT_EQ(random_bytes(rng, 7).size(), 7u);
  EXPECT_EQ(random_bytes(rng, 8).size(), 8u);
  EXPECT_EQ(random_bytes(rng, 9).size(), 9u);
}

TEST(BytesTest, ContainsFindsSubstring) {
  EXPECT_TRUE(contains("mssecmgr.ocx", "secmgr"));
  EXPECT_FALSE(contains("mssecmgr.ocx", "stuxnet"));
}

TEST(BytesTest, IequalsIsCaseInsensitive) {
  EXPECT_TRUE(iequals("S7OTBXDX.DLL", "s7otbxdx.dll"));
  EXPECT_FALSE(iequals("s7otbxdx.dll", "s7otbxsx.dll"));
  EXPECT_FALSE(iequals("abc", "abcd"));
}

TEST(BytesTest, ToLowerAscii) {
  EXPECT_EQ(to_lower("TrkSvr.EXE"), "trksvr.exe");
}

TEST(BytesTest, U32RoundTrip) {
  Bytes buf;
  put_u32(buf, 0xdeadbeef);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(get_u32(buf, 0), 0xdeadbeefu);
}

TEST(BytesTest, U64RoundTrip) {
  Bytes buf;
  put_u64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(get_u64(buf, 0), 0x0123456789abcdefULL);
}

TEST(BytesTest, GetU32ThrowsOnTruncation) {
  Bytes buf = "abc";
  EXPECT_THROW(get_u32(buf, 0), std::out_of_range);
  EXPECT_THROW(get_u32(buf, 1), std::out_of_range);
}

TEST(BytesTest, GetU64ThrowsOnTruncation) {
  Bytes buf = "abcdefg";
  EXPECT_THROW(get_u64(buf, 0), std::out_of_range);
}

TEST(BytesTest, WeakDigestIsNarrow) {
  // The weak digest must fit in 32 bits by contract.
  EXPECT_LE(weak_digest32("anything at all"), 0xffffffffu);
}

class XorKeySweep : public ::testing::TestWithParam<int> {};

TEST_P(XorKeySweep, InvolutionHoldsForAllKeys) {
  const Bytes plain("Shamoon resource payload \x00\x01\xff test", 33);
  const auto key = static_cast<std::uint8_t>(GetParam());
  EXPECT_EQ(xor_cipher(xor_cipher(plain, key), key), plain);
}

INSTANTIATE_TEST_SUITE_P(AllByteKeys, XorKeySweep,
                         ::testing::Values(0, 1, 2, 31, 64, 127, 128, 171, 200,
                                           254, 255));

}  // namespace
}  // namespace cyd::common
