// Failure injection: the framework must stay well-defined when parts of the
// world die mid-campaign — bricked hosts with pending timers, seized C&C
// servers, sinkholed domains, quarantined module files, couriers holding
// sticks into dead machines.

#include <gtest/gtest.h>

#include "analysis/av.hpp"
#include "cnc/attack_center.hpp"
#include "core/scenario.hpp"
#include "core/user_behavior.hpp"
#include "malware/flame/flame.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "net/stack.hpp"

namespace cyd::core {
namespace {

TEST(FailureInjectionTest, BrickedHostStopsBeaconingAndSpreading) {
  World world(0xfa11);
  world.add_internet_landmarks();
  FleetSpec spec;
  spec.count = 4;
  spec.vulns = {};  // nothing to spread through: isolate the one infection
  auto fleet = make_office_fleet(world, spec);

  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker());
  stuxnet.infect(*fleet[0], "manual");
  world.sim().run_for(sim::days(2));
  const auto checkins_before = stuxnet.c2().checkins().size();

  // Brick the infected host by hand.
  auto drv = pe::Builder{}.program("raw").build();
  fleet[0]->fs().write_file("c:\\d.sys", drv.serialize(), 0);
  fleet[0]->load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
  fleet[0]->raw_overwrite_mbr("X", "test");
  fleet[0]->reboot();
  ASSERT_EQ(fleet[0]->state(), winsys::HostState::kUnbootable);

  // All scheduled behaviours keep firing on the clock but must be inert.
  world.sim().run_for(sim::days(7));
  EXPECT_EQ(stuxnet.c2().checkins().size(), checkins_before);
}

TEST(FailureInjectionTest, CourierSurvivesDeadHostsOnRoute) {
  World world(0xfa12);
  auto& a = world.add_host("a", winsys::OsVersion::kWin7, "lan");
  auto& b = world.add_host("b", winsys::OsVersion::kWin7, "lan");
  auto& stick = world.add_usb("s");
  schedule_usb_courier(world, stick, {&a, &b}, sim::hours(2));

  // Kill b before the stick first reaches it.
  auto drv = pe::Builder{}.program("raw").build();
  b.fs().write_file("c:\\d.sys", drv.serialize(), 0);
  b.load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
  b.raw_overwrite_mbr("X", "t");
  b.reboot();

  // The courier keeps cycling: skips the dead machine, returns to a.
  world.sim().run_for(sim::days(2));
  EXPECT_EQ(stick.plugged_into() == &a || stick.plugged_into() == nullptr,
            true);
  EXPECT_FALSE(stick.visited_hosts().contains("b"));
}

TEST(FailureInjectionTest, CncTakedownLeavesClientsRetryingQuietly) {
  World world(0xfa13);
  world.add_internet_landmarks();
  cnc::AttackCenter center(world.sim(), 1);
  cnc::CncServer server(world.sim(), "cc", {"evil.example"},
                        center.upload_key());
  server.deploy(world.network());
  center.manage(server);

  malware::flame::FlameConfig config;
  config.default_domains = {"evil.example"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());

  FleetSpec spec;
  spec.count = 2;
  auto fleet = make_office_fleet(world, spec);
  flame.infect(*fleet[0], "drop");
  world.sim().run_for(sim::days(1));
  auto* inf = malware::flame::Flame::find(*fleet[0]);
  EXPECT_GT(inf->uploads, 0);

  // Hosting provider pulls the plug.
  server.undeploy(world.network());
  const int uploads_at_takedown = inf->uploads;
  world.sim().run_for(sim::days(3));
  EXPECT_EQ(inf->uploads, uploads_at_takedown);
  EXPECT_TRUE(inf->active());  // implant survives, loot piles up locally
  EXPECT_GT(inf->staged.size(), 0u);
}

TEST(FailureInjectionTest, SinkholedDomainReceivesOnlyCiphertext) {
  World world(0xfa14);
  world.add_internet_landmarks();
  cnc::AttackCenter center(world.sim(), 1);
  cnc::CncServer server(world.sim(), "cc", {"evil.example"},
                        center.upload_key());
  server.deploy(world.network());
  center.manage(server);

  malware::flame::FlameConfig config;
  config.default_domains = {"evil.example"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());
  FleetSpec spec;
  spec.count = 1;
  auto fleet = make_office_fleet(world, spec);
  flame.infect(*fleet[0], "drop");

  // Researchers take over the domain with their own collector.
  std::vector<common::Bytes> sinkholed;
  world.network().register_internet_service(
      "evil.example", [&](const net::HttpRequest& request) {
        if (!request.body.empty()) sinkholed.push_back(request.body);
        return net::HttpResponse{200,
                                 cnc::serialize_payloads({})};  // play along
      });
  world.sim().run_for(sim::days(2));

  ASSERT_FALSE(sinkholed.empty());
  // The loot reaches the sinkhole but stays opaque: coordinator-key crypto.
  for (const auto& body : sinkholed) {
    EXPECT_EQ(body.find("confidential memo"), std::string::npos);
  }
  // And the real server saw nothing after the takeover.
  EXPECT_EQ(server.upload_count(), 0u);
}

TEST(FailureInjectionTest, QuarantinedModuleFileDoesNotCrashFlame) {
  World world(0xfa15);
  world.add_internet_landmarks();
  cnc::AttackCenter center(world.sim(), 1);
  cnc::CncServer server(world.sim(), "cc", {"evil.example"},
                        center.upload_key());
  server.deploy(world.network());
  center.manage(server);
  malware::flame::FlameConfig config;
  config.default_domains = {"evil.example"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());
  FleetSpec spec;
  spec.count = 1;
  auto fleet = make_office_fleet(world, spec);
  flame.infect(*fleet[0], "drop");

  // AV rips one module file out from under the implant.
  fleet[0]->fs().delete_file("c:\\windows\\system32\\msglu32.ocx", 0);
  world.sim().run_for(sim::days(2));  // collections/beacons keep running
  EXPECT_TRUE(malware::flame::Flame::find(*fleet[0])->active());
  EXPECT_GT(malware::flame::Flame::find(*fleet[0])->collections_run, 0);
}

TEST(FailureInjectionTest, PlcStoppedMidAttackFreezesPhysics) {
  World world(0xfa16);
  NatanzSpec spec;
  spec.cascade_count = 1;
  spec.centrifuges_per_cascade = 8;
  auto site = build_natanz_site(world, spec);
  malware::stuxnet::StuxnetConfig config;
  config.plc_timing.observe_window = sim::hours(2);
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);
  stuxnet.infect(*site.eng_laptop, "manual");
  site.step7->connect(site.cascades[0]);
  world.sim().run_for(sim::days(1));
  ASSERT_TRUE(malware::stuxnet::Stuxnet::find(*site.eng_laptop)
                  ->plc_payload_injected);

  // The operator pulls the breaker (maintenance stop) mid-campaign.
  site.cascades[0]->stop();
  const double stress_at_stop =
      site.cascades[0]->bus().drives()[0]->centrifuges()[0].stress();
  world.sim().run_for(sim::days(30));
  EXPECT_DOUBLE_EQ(
      site.cascades[0]->bus().drives()[0]->centrifuges()[0].stress(),
      stress_at_stop);
}

TEST(FailureInjectionTest, ShamoonOnAlreadyDeadHostIsNoop) {
  World world(0xfa17);
  world.add_internet_landmarks();
  FleetSpec spec;
  spec.count = 1;
  auto fleet = make_office_fleet(world, spec);
  auto drv = pe::Builder{}.program("raw").build();
  fleet[0]->fs().write_file("c:\\d.sys", drv.serialize(), 0);
  fleet[0]->load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
  fleet[0]->raw_overwrite_mbr("X", "t");
  fleet[0]->reboot();

  malware::shamoon::Shamoon shamoon(world.sim(), world.network(),
                                    world.programs(), world.tracker());
  EXPECT_FALSE(shamoon.infect(*fleet[0], "manual"));
  EXPECT_EQ(world.tracker().infected_count("shamoon"), 0u);
}

TEST(FailureInjectionTest, ExecDuringRebootWindowIsRejected) {
  World world(0xfa18);
  auto& host = world.add_host("h", winsys::OsVersion::kWin7, "lan");
  // Unbootable host refuses USB plugs too.
  auto drv = pe::Builder{}.program("raw").build();
  host.fs().write_file("c:\\d.sys", drv.serialize(), 0);
  host.load_driver("c:\\d.sys", "d", winsys::kCapRawDiskAccess);
  host.raw_overwrite_mbr("X", "t");
  host.reboot();
  auto& stick = world.add_usb("s");
  EXPECT_FALSE(host.plug_usb(stick));
  host.explorer_open(winsys::Path("c:"));  // must be a harmless no-op
  EXPECT_TRUE(host.list_processes(/*include_hidden=*/true).empty());
}

}  // namespace
}  // namespace cyd::core
