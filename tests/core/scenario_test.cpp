#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "cnc/attack_center.hpp"
#include "core/user_behavior.hpp"
#include "malware/flame/flame.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "pki/forgery.hpp"

namespace cyd::core {
namespace {

TEST(WorldTest, AddHostAssignsAddresses) {
  World world;
  auto& a = world.add_host("a", winsys::OsVersion::kWin7, "office");
  auto& b = world.add_host("b", winsys::OsVersion::kWin7, "office");
  auto& c = world.add_host("c", winsys::OsVersion::kWin7, "cell");
  EXPECT_EQ(a.stack()->ip(), "10.1.0.1");
  EXPECT_EQ(b.stack()->ip(), "10.1.0.2");
  EXPECT_EQ(c.stack()->ip(), "10.2.0.1");
  EXPECT_EQ(world.find_host("b"), &b);
  EXPECT_EQ(world.find_host("zz"), nullptr);
  EXPECT_EQ(world.host_count(), 3u);
}

TEST(WorldTest, InternetLandmarksRespond) {
  World world;
  world.add_internet_landmarks();
  auto& host = world.add_host("h", winsys::OsVersion::kWin7, "lan");
  host.set_internet_access(true);
  EXPECT_TRUE(host.stack()->http_get("www.msn.com", "/").has_value());
  // Genuine WU has nothing new by default.
  EXPECT_EQ(host.stack()->check_windows_update().status,
            net::UpdateCheckResult::Status::kNoUpdate);
}

TEST(WorldTest, StandardPkiValidatesMicrosoftUpdates) {
  World world;
  auto& host = world.add_host("h", winsys::OsVersion::kWin7, "lan");
  world.provision_standard_pki(host);
  auto update = pe::Builder{}.program("x").build();
  pki::sign_image(update, world.microsoft().update_signing_cert(),
                  world.microsoft().update_signing_key());
  EXPECT_TRUE(pki::verify_image(update, host.cert_store(),
                                host.trust_store(), world.sim().now())
                  .valid());
}

TEST(ScenarioTest, OfficeFleetRespectsSpec) {
  World world;
  FleetSpec spec;
  spec.count = 10;
  spec.internet_pct = 50;
  const auto fleet = make_office_fleet(world, spec);
  ASSERT_EQ(fleet.size(), 10u);
  int online = 0;
  for (auto* host : fleet) {
    if (host->internet_access()) ++online;
    EXPECT_TRUE(host->vulnerable_to(exploits::VulnId::kMs10_046_Lnk));
    EXPECT_FALSE(host->fs()
                     .find_files(winsys::Path("c:\\users\\staff\\documents"))
                     .empty());
  }
  EXPECT_EQ(online, 5);
}

TEST(ScenarioTest, NatanzSiteShape) {
  World world;
  NatanzSpec spec;
  spec.cascade_count = 2;
  spec.centrifuges_per_cascade = 164;
  const auto site = build_natanz_site(world, spec);
  EXPECT_EQ(site.office.size(), 8u);
  ASSERT_NE(site.eng_laptop, nullptr);
  ASSERT_NE(site.step7, nullptr);
  ASSERT_EQ(site.cascades.size(), 2u);
  EXPECT_EQ(site.total_centrifuges(), 328u);
  EXPECT_EQ(site.destroyed_centrifuges(), 0u);
  // Both vendor fingerprints present on every cascade.
  for (auto* plc : site.cascades) {
    EXPECT_TRUE(plc->bus().has_vendor(scada::DriveVendor::kFararoPaya));
    EXPECT_TRUE(plc->bus().has_vendor(scada::DriveVendor::kVacon));
    EXPECT_TRUE(plc->running());
  }
  // Cascades spin at setpoint, safely.
  world.sim().run_for(sim::days(2));
  EXPECT_NEAR(site.cascades[0]->actual_frequency(), 1064.0, 1.0);
  EXPECT_FALSE(site.any_safety_tripped());
  EXPECT_EQ(site.destroyed_centrifuges(), 0u);
}

TEST(ScenarioTest, UsbCourierMovesStickAlongRoute) {
  World world;
  auto& a = world.add_host("a", winsys::OsVersion::kWin7, "office");
  auto& b = world.add_host("b", winsys::OsVersion::kWin7, "office");
  auto& stick = world.add_usb("courier");
  schedule_usb_courier(world, stick, {&a, &b}, sim::kHour);
  world.sim().run_for(sim::kMinute);
  EXPECT_EQ(stick.plugged_into(), &a);
  world.sim().run_for(sim::kHour);
  EXPECT_EQ(stick.plugged_into(), &b);
  world.sim().run_for(sim::kHour);
  EXPECT_EQ(stick.plugged_into(), &a);
  EXPECT_TRUE(stick.visited_hosts().contains("a"));
  EXPECT_TRUE(stick.visited_hosts().contains("b"));
}

TEST(ScenarioTest, DocumentWorkGrowsCorpus) {
  World world;
  auto& host = world.add_host("h", winsys::OsVersion::kWin7, "lan");
  schedule_document_work(world, host, sim::kDay);
  const auto before =
      host.fs().find_files(winsys::Path("c:\\users")).size();
  world.sim().run_for(sim::days(5));
  EXPECT_EQ(host.fs().find_files(winsys::Path("c:\\users")).size(),
            before + 5);
}

// --- The flagship integration: the full Stuxnet campaign on Natanz. ---
TEST(CampaignIntegrationTest, StuxnetDestroysNatanzCentrifugesCovertly) {
  World world;
  world.add_internet_landmarks();
  NatanzSpec spec;
  spec.cascade_count = 2;              // keep the test quick
  spec.centrifuges_per_cascade = 32;
  auto site = build_natanz_site(world, spec);

  malware::stuxnet::StuxnetConfig config;
  config.plc_timing.observe_window = sim::days(3);
  config.plc_timing.cover_duration = sim::days(5);
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);

  // The lured engineer's stick: seeded by the attacker, then couriered
  // between an office machine and the air-gapped laptop.
  auto& stick = world.add_usb("integrator-stick");
  stuxnet.arm_usb(stick);
  schedule_usb_courier(world, stick, {site.office[0], site.eng_laptop},
                       sim::hours(8));
  // Engineering routine on cascade 0.
  const auto project = site.step7->create_project("a26");
  schedule_engineering_work(world, *site.step7, project, site.cascades[0],
                            sim::days(1));

  world.sim().run_for(sim::days(60));

  // The laptop got infected across the air gap and struck the PLC.
  auto* infection = malware::stuxnet::Stuxnet::find(*site.eng_laptop);
  ASSERT_NE(infection, nullptr);
  EXPECT_TRUE(infection->plc_payload_injected);
  EXPECT_GT(site.destroyed_centrifuges(), 0u);
  // Only the cabled cascade was hit; and nobody noticed.
  EXPECT_EQ(site.cascades[1]->logic().name(), "normal-control");
  EXPECT_FALSE(site.any_safety_tripped());
  EXPECT_FALSE(site.hmis[0]->operator_saw_anomaly(800.0, 1250.0));
}

TEST(CampaignIntegrationTest, ShamoonWipesAFleet) {
  World world(0x5eed2);
  world.add_internet_landmarks();
  FleetSpec spec;
  spec.count = 30;
  spec.vulns.push_back(exploits::VulnId::kOpenNetworkShares);
  auto fleet = make_office_fleet(world, spec);

  malware::shamoon::ShamoonConfig config;
  config.kill_date = sim::days(10);
  config.spread_period = sim::hours(2);
  malware::shamoon::Shamoon shamoon(world.sim(), world.network(),
                                    world.programs(), world.tracker(),
                                    config);
  shamoon.set_disk_driver(pe::Builder{}
                              .program(malware::shamoon::Shamoon::kDriverProgram)
                              .filename("drdisk.sys")
                              .build());
  shamoon.deploy_reporter_sink(world.network());
  shamoon.infect(*fleet[0], "spear-phish");

  world.sim().run_for(sim::days(11));

  // Near-total destruction, reported home before each machine died.
  EXPECT_GT(world.count_unbootable(), 25u);
  EXPECT_EQ(shamoon.reports().size(), world.tracker().infected_count("shamoon"));
  EXPECT_GT(shamoon.hosts_wiped(), 25u);
}

TEST(CampaignIntegrationTest, FlameEspionageAcrossFleet) {
  World world(0xf1a4e);
  world.add_internet_landmarks();
  FleetSpec spec;
  spec.count = 10;
  auto fleet = make_office_fleet(world, spec);

  cnc::AttackCenter center(world.sim(), 0xce11);
  malware::flame::FlameConfig config;
  config.default_domains = {"traffic-spot.biz", "quick-mask.net"};
  config.extended_domains = config.default_domains;
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());
  cnc::CncServer server(world.sim(), "cc-0", config.default_domains,
                        center.upload_key());
  server.deploy(world.network());
  server.start_purge_task();
  center.manage(server);
  center.start_collection_task(sim::hours(6));

  for (int i = 0; i < 3; ++i) flame.infect(*fleet[i], "targeted-drop");
  world.sim().run_for(sim::days(14));

  EXPECT_EQ(world.tracker().infected_count("flame"), 3u);
  EXPECT_GT(center.archive().size(), 0u);
  EXPECT_GT(center.archived_bytes(), 0u);
  // Purge keeps the server's entry folder lean.
  EXPECT_LT(server.entries().size(), 10u);
}

}  // namespace
}  // namespace cyd::core
