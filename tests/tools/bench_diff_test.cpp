#include "bench_diff.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace cyd::benchdiff {
namespace {

// A realistic google-benchmark dump, trimmed to the fields bench_diff reads
// plus the surrounding noise it must ignore.
std::string dump(double fig_ms, double forge_ns) {
  return R"({
  "context": {
    "date": "2026-08-06T12:00:00+00:00",
    "host_name": "ci",
    "executable": "./bench/fig_x",
    "num_cpus": 8,
    "caches": [{"type": "Unified", "level": 1, "size": 32768}]
  },
  "benchmarks": [
    {
      "name": "BM_Campaign/8",
      "run_name": "BM_Campaign/8",
      "run_type": "iteration",
      "repetitions": 1,
      "iterations": 10,
      "real_time": )" + std::to_string(fig_ms) + R"(,
      "cpu_time": )" + std::to_string(fig_ms * 0.9) + R"(,
      "time_unit": "ms"
    },
    {
      "name": "BM_ForgeCertificate",
      "run_name": "BM_ForgeCertificate",
      "run_type": "iteration",
      "repetitions": 1,
      "iterations": 5000,
      "real_time": )" + std::to_string(forge_ns) + R"(,
      "cpu_time": )" + std::to_string(forge_ns) + R"(,
      "time_unit": "ns"
    }
  ]
})";
}

TEST(BenchDiffTest, IdenticalRunsPass) {
  const auto baseline = dump(120.0, 4200.0);
  const auto result = compare(baseline, baseline, Options{});
  EXPECT_TRUE(result.ok(false));
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.regression_count(), 0u);
  for (const auto& row : result.rows) EXPECT_DOUBLE_EQ(row.ratio, 1.0);
}

TEST(BenchDiffTest, TwofoldSlowdownFails) {
  const auto result =
      compare(dump(120.0, 4200.0), dump(240.0, 4200.0), Options{});
  EXPECT_FALSE(result.ok(false));
  ASSERT_EQ(result.regression_count(), 1u);
  const auto& slow = result.rows.front();
  EXPECT_EQ(slow.name, "BM_Campaign/8");
  EXPECT_TRUE(slow.regression);
  EXPECT_NEAR(slow.ratio, 2.0, 1e-9);
}

TEST(BenchDiffTest, SlowdownWithinTolerancePasses) {
  // +8% against the default 10% tolerance.
  const auto result =
      compare(dump(100.0, 4200.0), dump(108.0, 4200.0), Options{});
  EXPECT_TRUE(result.ok(false));
  EXPECT_EQ(result.regression_count(), 0u);
}

TEST(BenchDiffTest, SpeedupIsNeverARegression) {
  const auto result =
      compare(dump(120.0, 4200.0), dump(30.0, 1000.0), Options{});
  EXPECT_TRUE(result.ok(false));
}

TEST(BenchDiffTest, PerBenchmarkOverrideWidensTheLimit) {
  Options options;
  options.overrides["BM_Campaign/8"] = 1.5;  // up to 2.5x allowed
  const auto result =
      compare(dump(120.0, 4200.0), dump(240.0, 4200.0), options);
  EXPECT_TRUE(result.ok(false));

  // ...and a tight override flags what the default would have let through.
  Options strict;
  strict.overrides["BM_ForgeCertificate"] = 0.01;
  const auto flagged =
      compare(dump(120.0, 4200.0), dump(120.0, 4500.0), strict);
  EXPECT_EQ(flagged.regression_count(), 1u);
  EXPECT_EQ(flagged.rows[1].name, "BM_ForgeCertificate");
  EXPECT_TRUE(flagged.rows[1].regression);
}

TEST(BenchDiffTest, TimeUnitsAreNormalized) {
  // 1 ms baseline vs 1,000,000 ns current: equal after normalization.
  const std::string baseline = R"({"benchmarks": [
    {"name": "BM_X", "run_type": "iteration", "real_time": 1.0,
     "cpu_time": 1.0, "time_unit": "ms"}]})";
  const std::string current = R"({"benchmarks": [
    {"name": "BM_X", "run_type": "iteration", "real_time": 1000000.0,
     "cpu_time": 1000000.0, "time_unit": "ns"}]})";
  const auto result = compare(baseline, current, Options{});
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0].ratio, 1.0);
  EXPECT_FALSE(result.rows[0].regression);
}

TEST(BenchDiffTest, MissingBenchmarkFailsUnlessAllowed) {
  const std::string current = R"({"benchmarks": [
    {"name": "BM_Campaign/8", "run_type": "iteration", "real_time": 120.0,
     "cpu_time": 110.0, "time_unit": "ms"}]})";
  const auto result = compare(dump(120.0, 4200.0), current, Options{});
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "BM_ForgeCertificate");
  EXPECT_FALSE(result.ok(/*allow_missing=*/false));
  EXPECT_TRUE(result.ok(/*allow_missing=*/true));
}

TEST(BenchDiffTest, AddedBenchmarkIsReportedNotFailed) {
  const auto result =
      compare(R"({"benchmarks": []})", dump(120.0, 4200.0), Options{});
  EXPECT_TRUE(result.ok(false));
  EXPECT_EQ(result.added.size(), 2u);
}

TEST(BenchDiffTest, AggregateRowsAreSkipped) {
  // --benchmark_repetitions emits mean/median/stddev aggregates; only the
  // per-iteration rows should be matched.
  const std::string with_aggregates = R"({"benchmarks": [
    {"name": "BM_X", "run_type": "iteration", "real_time": 10.0,
     "cpu_time": 10.0, "time_unit": "ms"},
    {"name": "BM_X_mean", "run_type": "aggregate", "real_time": 999.0,
     "cpu_time": 999.0, "time_unit": "ms"}]})";
  const auto times = extract_times(with_aggregates, "real_time");
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times.at("BM_X"), 10.0 * 1e6);
}

TEST(BenchDiffTest, CpuTimeMetricIsSelectable) {
  Options options;
  options.metric = "cpu_time";
  // real_time doubles but cpu_time is flat: cpu_time comparison passes.
  const std::string baseline = R"({"benchmarks": [
    {"name": "BM_X", "run_type": "iteration", "real_time": 10.0,
     "cpu_time": 8.0, "time_unit": "ms"}]})";
  const std::string current = R"({"benchmarks": [
    {"name": "BM_X", "run_type": "iteration", "real_time": 20.0,
     "cpu_time": 8.0, "time_unit": "ms"}]})";
  EXPECT_TRUE(compare(baseline, current, options).ok(false));
  EXPECT_FALSE(compare(baseline, current, Options{}).ok(false));
}

// A dump with one plain benchmark and one that exports a recall counter
// (google-benchmark writes user counters as top-level numeric members).
std::string counter_dump(double recall, bool with_counter = true) {
  return R"({"benchmarks": [
    {"name": "BM_Plain", "run_type": "iteration", "real_time": 10.0,
     "cpu_time": 10.0, "time_unit": "ms"},
    {"name": "BM_LshClusterPile", "run_type": "iteration", "real_time": 90.0,
     "cpu_time": 90.0, "time_unit": "ms")" +
         (with_counter ? ", \"recall\": " + std::to_string(recall) +
                             ", \"candidate_reduction\": 32.5"
                       : std::string()) +
         R"(}]})";
}

TEST(BenchDiffTest, ExtractCountersReadsOnlyExportingBenchmarks) {
  const auto counters = extract_counters(counter_dump(0.9991), "recall");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_NEAR(counters.at("BM_LshClusterPile"), 0.9991, 1e-6);
  EXPECT_TRUE(extract_counters(counter_dump(0.9991), "no_such").empty());
}

TEST(BenchDiffTest, FloorAtOrAboveThresholdPasses) {
  Options options;
  options.floors["recall"] = 0.98;
  // Exactly at the floor and above it both pass.
  for (const double recall : {0.98, 0.9994}) {
    const auto result =
        compare(counter_dump(0.999), counter_dump(recall), options);
    EXPECT_TRUE(result.ok(false)) << "recall " << recall;
    ASSERT_EQ(result.floor_rows.size(), 1u);
    EXPECT_FALSE(result.floor_rows[0].violation);
    EXPECT_EQ(result.floor_rows[0].name, "BM_LshClusterPile");
    EXPECT_EQ(result.floor_rows[0].counter, "recall");
  }
}

TEST(BenchDiffTest, FloorBelowThresholdFails) {
  Options options;
  options.floors["recall"] = 0.98;
  const auto result =
      compare(counter_dump(0.999), counter_dump(0.93), options);
  EXPECT_FALSE(result.ok(false));
  EXPECT_EQ(result.floor_violation_count(), 1u);
  ASSERT_EQ(result.floor_rows.size(), 1u);
  EXPECT_TRUE(result.floor_rows[0].violation);
  EXPECT_NEAR(result.floor_rows[0].current, 0.93, 1e-6);
  EXPECT_TRUE(result.floor_rows[0].has_baseline);
}

TEST(BenchDiffTest, FloorIsAbsoluteNotATolearanceBand) {
  // Baseline recall 0.999, current 0.985: a huge *relative* drop, but
  // still above the absolute floor — must pass. The floor is a minimum,
  // not a band around the baseline.
  Options options;
  options.floors["recall"] = 0.98;
  const auto result =
      compare(counter_dump(0.999), counter_dump(0.985), options);
  EXPECT_TRUE(result.ok(false));
  EXPECT_EQ(result.floor_violation_count(), 0u);
}

TEST(BenchDiffTest, FloorIgnoresBenchmarksWithoutTheCounter) {
  // BM_Plain exports no recall counter; the floor must not apply to it.
  Options options;
  options.floors["recall"] = 0.98;
  const auto result =
      compare(counter_dump(0.999), counter_dump(0.999), options);
  ASSERT_EQ(result.floor_rows.size(), 1u);
  EXPECT_EQ(result.floor_rows[0].name, "BM_LshClusterPile");
}

TEST(BenchDiffTest, DroppedCounterIsAFloorViolation) {
  // The benchmark still runs but stopped exporting recall: the gate must
  // fail loudly instead of silently passing an unchecked run.
  Options options;
  options.floors["recall"] = 0.98;
  const auto result = compare(counter_dump(0.999),
                              counter_dump(0.0, /*with_counter=*/false),
                              options);
  EXPECT_FALSE(result.ok(false));
  ASSERT_EQ(result.floor_rows.size(), 1u);
  EXPECT_TRUE(result.floor_rows[0].violation);
  EXPECT_FALSE(result.floor_rows[0].has_current);
  EXPECT_TRUE(result.floor_rows[0].has_baseline);
}

TEST(BenchDiffTest, CeilingAtOrBelowThresholdPasses) {
  Options options;
  options.ceilings["recall"] = 1.0;
  // Exactly at the ceiling and below it both pass.
  for (const double value : {1.0, 0.2}) {
    const auto result =
        compare(counter_dump(0.999), counter_dump(value), options);
    EXPECT_TRUE(result.ok(false)) << "value " << value;
    ASSERT_EQ(result.floor_rows.size(), 1u);
    EXPECT_FALSE(result.floor_rows[0].violation);
    EXPECT_TRUE(result.floor_rows[0].is_ceiling);
  }
}

TEST(BenchDiffTest, CeilingAboveThresholdFails) {
  // A memory-per-host style counter blowing past its maximum must fail even
  // though no timing regressed.
  Options options;
  options.ceilings["recall"] = 1.0;
  const auto result =
      compare(counter_dump(0.999), counter_dump(1.5), options);
  EXPECT_FALSE(result.ok(false));
  EXPECT_EQ(result.floor_violation_count(), 1u);
  ASSERT_EQ(result.floor_rows.size(), 1u);
  EXPECT_TRUE(result.floor_rows[0].violation);
  EXPECT_TRUE(result.floor_rows[0].is_ceiling);
  EXPECT_NEAR(result.floor_rows[0].current, 1.5, 1e-6);
}

TEST(BenchDiffTest, DroppedCounterIsACeilingViolation) {
  Options options;
  options.ceilings["recall"] = 1.0;
  const auto result = compare(counter_dump(0.999),
                              counter_dump(0.0, /*with_counter=*/false),
                              options);
  EXPECT_FALSE(result.ok(false));
  ASSERT_EQ(result.floor_rows.size(), 1u);
  EXPECT_TRUE(result.floor_rows[0].violation);
  EXPECT_FALSE(result.floor_rows[0].has_current);
  EXPECT_TRUE(result.floor_rows[0].is_ceiling);
}

TEST(BenchDiffTest, FloorAndCeilingComposeOnOneCounter) {
  // A band expressed as floor + ceiling: inside passes, outside fails on
  // exactly one of the two rows.
  Options options;
  options.floors["recall"] = 0.9;
  options.ceilings["recall"] = 1.0;
  const auto inside = compare(counter_dump(0.999), counter_dump(0.95), options);
  EXPECT_TRUE(inside.ok(false));
  ASSERT_EQ(inside.floor_rows.size(), 2u);

  const auto low = compare(counter_dump(0.999), counter_dump(0.5), options);
  EXPECT_EQ(low.floor_violation_count(), 1u);
  const auto high = compare(counter_dump(0.999), counter_dump(1.5), options);
  EXPECT_EQ(high.floor_violation_count(), 1u);
}

TEST(BenchDiffTest, NoFloorsMeansNoFloorRows) {
  const auto result =
      compare(counter_dump(0.999), counter_dump(0.999), Options{});
  EXPECT_TRUE(result.floor_rows.empty());
  EXPECT_TRUE(result.ok(false));
}

TEST(BenchDiffTest, MalformedJsonThrows) {
  EXPECT_THROW(extract_times("{\"benchmarks\": [", "real_time"),
               std::runtime_error);
  EXPECT_THROW(extract_times("not json at all", "real_time"),
               std::runtime_error);
  EXPECT_THROW(extract_times("{\"context\": {}}", "real_time"),
               std::runtime_error);  // no benchmarks array
  EXPECT_THROW(extract_times(dump(1.0, 1.0), "wall_time"),
               std::runtime_error);  // unknown metric
}

TEST(BenchDiffTest, JsonParserHandlesEscapesAndNesting) {
  const auto doc = detail::parse_json(
      R"({"a": [1, -2.5e3, true, false, null], "s": "q\"\\\n\t", "o": {}})");
  const auto* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 5u);
  EXPECT_DOUBLE_EQ(a->items[1].number, -2500.0);
  const auto* s = doc.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->str, "q\"\\\n\t");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

}  // namespace
}  // namespace cyd::benchdiff
