#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cyd::sim {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(RngTest, UniformIntRejectsInvertedBounds) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(RngTest, UniformIntCoversFullRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyNearP) {
  Rng rng(15);
  int hits = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double freq = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(freq, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanIsApproximatelyRight) {
  Rng rng(16);
  double sum = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.2);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, NormalMomentsApproximatelyRight) {
  Rng rng(18);
  double sum = 0, sq = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kTrials;
  const double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, PickThrowsOnEmpty) {
  Rng rng(19);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(RngTest, PickReturnsMemberOfInput) {
  Rng rng(20);
  const std::vector<int> items{3, 1, 4, 1, 5};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(std::find(items.begin(), items.end(), v) != items.end());
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(21);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(22);
  Rng child = parent.fork();
  // Child's stream differs from where the parent continues.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.next_u64() != child.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(23), b(23);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

}  // namespace
}  // namespace cyd::sim
