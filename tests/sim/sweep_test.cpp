// SweepRunner: the parallel Monte-Carlo harness must be a drop-in
// replacement for a serial for-loop — every run executed exactly once,
// results collected by run index, bit-identical aggregation — and the
// underlying pool must survive adversarial shapes (tiny sweeps, huge
// sweeps, exceptions, single-worker pools). The TSan CI job runs this
// binary to guard the pool against data races.

#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace cyd::sim {
namespace {

/// A miniature seeded scenario: periodic events consuming RNG draws and
/// appending to the trace, one cancellation mid-flight. Returns the trace
/// fingerprint — any divergence in event order, timing, RNG stream, or
/// string content changes it.
std::uint64_t scenario_fingerprint(std::uint64_t seed) {
  Simulation simulation(seed);
  auto noisy = simulation.every(minutes(7), [&] {
    simulation.log(TraceCategory::kSim, "generator", "tick",
                   std::to_string(simulation.rng().next_u64() & 0xffff));
  });
  simulation.every(minutes(11), [&] {
    if (simulation.rng().bernoulli(0.2)) {
      simulation.log(TraceCategory::kMalware, "implant", "beacon");
    }
  });
  simulation.after(hours(2), [&] { noisy.cancel(); });
  simulation.run_until(hours(4));
  return simulation.trace().fingerprint();
}

TEST(SweepTest, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  EXPECT_NE(derive_seed(42, 7), derive_seed(42, 8));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
  // Consecutive indices must not produce near-identical seeds.
  const auto a = derive_seed(0, 0);
  const auto b = derive_seed(0, 1);
  EXPECT_GT(std::popcount(a ^ b), 10);
}

TEST(SweepTest, MapCoversEveryIndexExactlyOnce) {
  SweepRunner runner;
  std::vector<std::atomic<int>> hits(997);
  const auto results = runner.map(997, 0, [&](const SweepRun& run) {
    ++hits[run.index];
    return run.index * 2 + 1;
  });
  ASSERT_EQ(results.size(), 997u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 2 + 1);
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(SweepTest, SameSeedGivesByteIdenticalSerialTraces) {
  // Two serial executions of the same seeded scenario: the logs must be
  // deep-equal, not just fingerprint-equal.
  Simulation a(0x5eed);
  Simulation b(0x5eed);
  for (Simulation* s : {&a, &b}) {
    s->every(minutes(3), [s] {
      s->log(TraceCategory::kSim, "w", "tick",
             std::to_string(s->rng().next_u64() % 100));
    });
    s->run_until(hours(1));
  }
  EXPECT_TRUE(a.trace() == b.trace());
  EXPECT_EQ(a.trace().fingerprint(), b.trace().fingerprint());
}

TEST(SweepTest, ParallelSweepMatchesSerialBaseline) {
  constexpr std::size_t kRuns = 24;
  constexpr std::uint64_t kBaseSeed = 0xcafe;

  std::vector<std::uint64_t> serial(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    serial[i] = scenario_fingerprint(derive_seed(kBaseSeed, i));
  }

  SweepRunner runner;
  const auto parallel = runner.map(kRuns, kBaseSeed, [](const SweepRun& run) {
    return scenario_fingerprint(run.seed);
  });

  EXPECT_EQ(serial, parallel);

  // And a second parallel sweep reproduces the first exactly.
  const auto again = runner.map(kRuns, kBaseSeed, [](const SweepRun& run) {
    return scenario_fingerprint(run.seed);
  });
  EXPECT_EQ(parallel, again);
}

TEST(SweepTest, ReduceFoldsInIndexOrder) {
  SweepRunner runner;
  const auto joined = runner.reduce(
      16, 0, [](const SweepRun& run) { return std::to_string(run.index); },
      std::string{},
      [](std::string acc, std::string part) {
        if (!acc.empty()) acc += ',';
        return acc + part;
      });
  EXPECT_EQ(joined, "0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15");
}

TEST(SweepTest, SingleWorkerPoolStillCompletes) {
  SweepRunner runner(SweepOptions{.workers = 1});
  EXPECT_EQ(runner.workers(), 1u);
  const auto results =
      runner.map(50, 7, [](const SweepRun& run) { return run.seed; });
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], derive_seed(7, i));
  }
}

TEST(SweepTest, EmptySweepIsANoOp) {
  SweepRunner runner;
  const auto results =
      runner.map(0, 0, [](const SweepRun&) { return 1; });
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(runner.last_stats().runs.size(), 0u);
}

TEST(SweepTest, TaskExceptionPropagatesAfterSweepSettles) {
  SweepRunner runner;
  std::atomic<int> completed{0};
  EXPECT_THROW(
      runner.run_indexed(64,
                         [&](std::size_t i) {
                           if (i == 13) throw std::runtime_error("boom");
                           ++completed;
                         }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 63);
  // The pool must be reusable after an exception.
  const auto results =
      runner.map(8, 0, [](const SweepRun& run) { return run.index; });
  EXPECT_EQ(results.size(), 8u);
}

TEST(SweepTest, StatsCoverEveryRun) {
  SweepRunner runner;
  runner.map(32, 9, [](const SweepRun& run) {
    return scenario_fingerprint(run.seed);
  });
  const auto& stats = runner.last_stats();
  ASSERT_EQ(stats.runs.size(), 32u);
  EXPECT_EQ(stats.workers, runner.workers());
  EXPECT_GT(stats.wall_ms, 0.0);
  for (std::size_t i = 0; i < stats.runs.size(); ++i) {
    EXPECT_EQ(stats.runs[i].seed, derive_seed(9, i));
    EXPECT_GE(stats.runs[i].wall_ms, 0.0);
  }
  EXPECT_GE(stats.total_run_ms(), stats.max_run_ms());
}

TEST(SweepTest, ManyWorkersOnTinySweep) {
  // More workers than runs: most shards start empty and go straight to
  // stealing; nothing may deadlock or double-run.
  SweepRunner runner(SweepOptions{.workers = 8});
  std::vector<std::atomic<int>> hits(3);
  runner.run_indexed(3, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepTest, SweepHelpersUseDefaultRunner) {
  const std::vector<int> params{3, 1, 4, 1, 5};
  const auto doubled =
      Sweep::map_items(params, [](int p) { return p * 2; });
  EXPECT_EQ(doubled, (std::vector<int>{6, 2, 8, 2, 10}));

  const auto total = Sweep::reduce(
      10, 0, [](const SweepRun& run) { return run.index; }, std::size_t{0},
      [](std::size_t acc, std::size_t v) { return acc + v; });
  EXPECT_EQ(total, 45u);
  EXPECT_EQ(Sweep::last_stats().runs.size(), 10u);
}

}  // namespace
}  // namespace cyd::sim
