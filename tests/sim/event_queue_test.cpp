#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"

namespace cyd::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ClockAdvancesToEventTime) {
  EventQueue q;
  TimePoint seen = -1;
  q.schedule_at(500, [&] { seen = q.now(); });
  q.run_all();
  EXPECT_EQ(seen, 500);
  EXPECT_EQ(q.now(), 500);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run_all();
  TimePoint seen = -1;
  q.schedule_at(50, [&] { seen = q.now(); });  // in the past
  q.run_all();
  EXPECT_EQ(seen, 100);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  q.run_until(1000);
  EXPECT_EQ(q.now(), 1000);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<TimePoint> times;
  q.schedule_at(10, [&] {
    times.push_back(q.now());
    q.schedule_at(q.now() + 5, [&] { times.push_back(q.now()); });
  });
  q.run_all();
  EXPECT_EQ(times, (std::vector<TimePoint>{10, 15}));
}

TEST(EventQueueTest, CancelledEventDoesNotRun) {
  EventQueue q;
  bool ran = false;
  auto handle = q.schedule_at(10, [&] { ran = true; });
  handle.cancel();
  q.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelOneOfMany) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  auto handle = q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(10, [&] { ++fired; });
  handle.cancel();
  q.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, RunAllReportsCleanDrain) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  const auto result = q.run_all();
  EXPECT_EQ(result.executed, 2u);
  EXPECT_FALSE(result.truncated);
}

TEST(EventQueueTest, RunAllReportsTruncation) {
  EventQueue q;
  // A self-perpetuating chain: draining it fully is impossible.
  std::function<void()> chain = [&] { q.schedule_at(q.now() + 1, chain); };
  q.schedule_at(0, chain);
  const auto result = q.run_all(/*max_events=*/10);
  EXPECT_EQ(result.executed, 10u);
  EXPECT_TRUE(result.truncated);
  EXPECT_GE(q.pending(), 1u);
}

TEST(EventQueueTest, TruncationIgnoresCancelledStragglers) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(10 * i, [] {});
  auto dead = q.schedule_at(100, [] {});
  dead.cancel();
  // Exactly the 5 live events fit the budget; the cancelled one left in the
  // queue must not read as "work still pending".
  const auto result = q.run_all(/*max_events=*/5);
  EXPECT_EQ(result.executed, 5u);
  EXPECT_FALSE(result.truncated);
}

TEST(EventQueueTest, RunUntilAdvancesClockPastEarlyDrain) {
  // Regression for the old doc/impl mismatch: the contract is that the
  // clock always advances to the deadline, even when the queue drains
  // before reaching it.
  EventQueue q;
  TimePoint seen = -1;
  q.schedule_at(10, [&] { seen = q.now(); });
  EXPECT_EQ(q.run_until(1000), 1u);
  EXPECT_EQ(seen, 10);
  EXPECT_EQ(q.now(), 1000);
  // A second call over an empty queue keeps tiling the timeline.
  EXPECT_EQ(q.run_until(2000), 0u);
  EXPECT_EQ(q.now(), 2000);
}

TEST(EventQueueTest, CancelFromInsideOwnCallbackIsInert) {
  EventQueue q;
  EventHandle handle;
  int fired = 0;
  handle = q.schedule_at(10, [&] {
    ++fired;
    handle.cancel();  // already running: must not blow up or double-count
    EXPECT_FALSE(handle.cancelled());
  });
  q.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.stats().cancelled, 0u);
}

TEST(EventQueueTest, CancelPeriodicBetweenFirings) {
  EventQueue q;
  int fired = 0;
  auto handle = q.schedule_every(10, [&] { ++fired; }, 10);
  q.run_until(25);  // fires at 10 and 20; next firing armed for 30
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_TRUE(handle.cancelled());
  EXPECT_FALSE(handle.pending());
  EXPECT_EQ(q.pending(), 0u);
  const auto result = q.run_all();
  EXPECT_EQ(result.executed, 0u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelNowReclaimsEagerly) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 8; ++i) q.schedule_at(10 * (i + 1), [&] { ++fired; });
  auto doomed = q.schedule_at(5, [&] { ++fired; });
  auto series = q.schedule_every(7, [&] { ++fired; }, 7);
  EXPECT_EQ(q.pending(), 10u);
  q.cancel_now(doomed);
  q.cancel_now(series);
  EXPECT_EQ(q.pending(), 8u);
  EXPECT_FALSE(doomed.pending());
  // Eagerly removed entries are gone from the heap, not lazily skipped.
  EXPECT_EQ(q.run_all().executed, 8u);
  EXPECT_EQ(fired, 8);
  EXPECT_EQ(q.stats().cancelled, 2u);
}

TEST(EventQueueTest, HandleGenerationSurvivesSlabRecycling) {
  EventQueue q;
  bool first_ran = false;
  auto stale = q.schedule_at(10, [&] { first_ran = true; });
  q.run_all();
  EXPECT_TRUE(first_ran);
  EXPECT_FALSE(stale.pending());

  // The freed slot is recycled for a new event; the stale handle must not
  // alias it.
  bool second_ran = false;
  auto fresh = q.schedule_at(20, [&] { second_ran = true; });
  stale.cancel();
  EXPECT_FALSE(stale.cancelled());
  EXPECT_TRUE(fresh.pending());
  q.run_all();
  EXPECT_TRUE(second_ran);

  // And a recycled periodic slot: cancel through the old series handle must
  // not touch the replacement series occupying the same slot.
  auto old_series = q.schedule_every(5, [] {}, q.now() + 5);
  q.cancel_now(old_series);
  int ticks = 0;
  auto new_series = q.schedule_every(5, [&] { ++ticks; }, q.now() + 5);
  old_series.cancel();
  q.run_until(q.now() + 20);
  EXPECT_EQ(ticks, 4);
  new_series.cancel();
}

TEST(EventQueueTest, RunAllTruncationIgnoresCancelledPeriodicTail) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(10 * i, [] {});
  auto series = q.schedule_every(100, [] {}, 100);
  series.cancel();
  // The 5 live one-shots exactly fill the budget; the cancelled series left
  // in the heap must not read as "work still pending".
  const auto result = q.run_all(/*max_events=*/5);
  EXPECT_EQ(result.executed, 5u);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, OversizedClosureFallsBackToHeapCorrectly) {
  // Captures past EventFn's inline budget take the heap path; behaviour
  // (ordering, cancellation) must be identical.
  EventQueue q;
  std::array<std::uint64_t, 16> big{};
  big[0] = 7;
  big[15] = 42;
  std::uint64_t sum = 0;
  q.schedule_at(10, [big, &sum] { sum = big[0] + big[15]; });
  auto dead = q.schedule_at(5, [big, &sum] { sum += 1000; });
  dead.cancel();
  q.run_all();
  EXPECT_EQ(sum, 49u);
}

TEST(EventQueueTest, StatsCountSchedulerActivity) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  auto dead = q.schedule_at(30, [] {});
  auto series = q.schedule_every(15, [] {}, 15);
  EXPECT_EQ(q.stats().peak_pending, 4u);
  dead.cancel();
  q.run_until(50);  // one-shots at 10+20, series at 15/30/45 (re-arms count)
  series.cancel();
  const auto& stats = q.stats();
  EXPECT_EQ(stats.executed, 5u);
  EXPECT_EQ(stats.cancelled, 2u);
  EXPECT_EQ(stats.scheduled, 4u + 3u);  // 4 schedule calls + 3 re-arms
}

TEST(SimulationTest, AfterSchedulesRelativeToNow) {
  Simulation simulation;
  TimePoint seen = -1;
  simulation.after(100, [&] {
    simulation.after(50, [&] { seen = simulation.now(); });
  });
  simulation.run_all();
  EXPECT_EQ(seen, 150);
}

TEST(SimulationTest, PeriodicEventFiresRepeatedly) {
  Simulation simulation;
  std::vector<TimePoint> fires;
  simulation.every(minutes(30), [&] { fires.push_back(simulation.now()); });
  simulation.run_until(hours(2));
  EXPECT_EQ(fires, (std::vector<TimePoint>{minutes(30), minutes(60),
                                           minutes(90), minutes(120)}));
}

TEST(SimulationTest, PeriodicEventHonoursInitialDelay) {
  Simulation simulation;
  std::vector<TimePoint> fires;
  simulation.every(minutes(10), [&] { fires.push_back(simulation.now()); },
                   minutes(5));
  simulation.run_until(minutes(26));
  EXPECT_EQ(fires,
            (std::vector<TimePoint>{minutes(5), minutes(15), minutes(25)}));
}

TEST(SimulationTest, CancellingPeriodicStopsSeries) {
  Simulation simulation;
  int fires = 0;
  auto handle = simulation.every(minutes(10), [&] { ++fires; });
  simulation.run_until(minutes(25));
  EXPECT_EQ(fires, 2);
  handle.cancel();
  simulation.run_until(hours(10));
  EXPECT_EQ(fires, 2);
}

TEST(SimulationTest, PeriodicCanCancelItselfFromInside) {
  Simulation simulation;
  int fires = 0;
  EventHandle handle;
  handle = simulation.every(minutes(1), [&] {
    if (++fires == 3) handle.cancel();
  });
  simulation.run_until(hours(1));
  EXPECT_EQ(fires, 3);
}

TEST(SimulationTest, CancelledPeriodicStopsReschedulingEntirely) {
  Simulation simulation;
  int fires = 0;
  auto handle = simulation.every(minutes(10), [&] { ++fires; });
  simulation.run_until(minutes(25));
  EXPECT_EQ(fires, 2);
  handle.cancel();
  // If the cancelled series kept re-arming, run_all would spin forever and
  // hit the event budget; a truly stopped series drains to an empty queue.
  simulation.run_all(/*max_events=*/1000);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(simulation.queue().pending(), 0u);
  EXPECT_EQ(simulation.trace().count_action("queue.truncated"), 0u);
}

TEST(SimulationTest, RunAllLogsTruncationWarning) {
  Simulation simulation;
  simulation.every(minutes(1), [] {});  // never-ending periodic series
  const auto executed = simulation.run_all(/*max_events=*/25);
  EXPECT_EQ(executed, 25u);
  ASSERT_EQ(simulation.trace().count_action("queue.truncated"), 1u);
  simulation.trace().for_each_action(
      "queue.truncated", [](const TraceEventRef& warning) {
        EXPECT_EQ(warning.category(), TraceCategory::kSim);
        EXPECT_NE(warning.detail().find("25"), std::string_view::npos);
      });
}

// --- Keyed scheduling + execute observer (the ShardedScheduler substrate) ---

TEST(EventQueueKeyedTest, SameTimeEventsFireInKeyOrderNotInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_keyed(100, /*key=*/5, 0, [&] { order.push_back(5); });
  q.schedule_keyed(100, /*key=*/1, 0, [&] { order.push_back(1); });
  q.schedule_keyed(100, /*key=*/3, 0, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueueKeyedTest, TimeStillDominatesKey) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_keyed(200, /*key=*/0, 0, [&] { order.push_back(2); });
  q.schedule_keyed(100, /*key=*/999, 0, [&] { order.push_back(1); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueKeyedTest, ObserverSeesTimeKeyAndTag) {
  EventQueue q;
  struct Seen {
    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> tags;
    std::vector<TimePoint> times;
  } seen;
  q.set_execute_observer(
      [](void* ctx, TimePoint t, std::uint64_t key, std::uint32_t tag) {
        auto* s = static_cast<Seen*>(ctx);
        s->times.push_back(t);
        s->keys.push_back(key);
        s->tags.push_back(tag);
      },
      &seen);
  q.schedule_keyed(50, /*key=*/7, /*tag=*/2, [] {});
  q.schedule_keyed(50, /*key=*/4, /*tag=*/9, [] {});
  q.run_all();
  EXPECT_EQ(seen.times, (std::vector<TimePoint>{50, 50}));
  EXPECT_EQ(seen.keys, (std::vector<std::uint64_t>{4, 7}));
  EXPECT_EQ(seen.tags, (std::vector<std::uint32_t>{9, 2}));
}

TEST(EventQueueKeyedTest, ObserverSeesInternalSequenceForPlainEvents) {
  EventQueue q;
  std::vector<std::uint64_t> keys;
  q.set_execute_observer(
      [](void* ctx, TimePoint, std::uint64_t key, std::uint32_t) {
        static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(key);
      },
      &keys);
  q.schedule_at(10, [] {});
  q.schedule_at(10, [] {});
  q.run_all();
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{0, 1}));
}

TEST(EventQueueKeyedTest, KeyedEventsCancelLikeAnyOther) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule_keyed(100, /*key=*/1, 0, [&] { ++fired; });
  q.schedule_keyed(100, /*key=*/2, 0, [&] { ++fired; });
  h.cancel();
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueKeyedTest, KeyCeilingEnforced) {
  EventQueue q;
  EXPECT_THROW(q.schedule_keyed(0, std::uint64_t{1} << 40, 0, [] {}),
               std::length_error);
}

TEST(EventQueueKeyedTest, NextTimeReportsFrontAndPrunesTombstones) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), EventQueue::kNoEventTime);
  auto early = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  EXPECT_EQ(q.next_time(), 10);
  early.cancel();
  // The cancelled front must not drag a shard's horizon backwards.
  EXPECT_EQ(q.next_time(), 20);
  q.run_all();
  EXPECT_EQ(q.next_time(), EventQueue::kNoEventTime);
}

// --- Backend parity: the calendar wheel must be indistinguishable from the
// --- heap except in cost. Small wheel (64 buckets x 16 ms = 1.024 s window)
// --- so second-scale workloads exercise wrap-around and the overflow heap.

constexpr CalendarConfig kTinyWheel{/*bucket_bits=*/6, /*width_shift=*/4};

class EventQueueBackendTest
    : public ::testing::TestWithParam<EventQueue::Backend> {
 protected:
  EventQueueBackendTest() : q(GetParam(), kTinyWheel) {}
  EventQueue q;
};

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueBackendTest,
                         ::testing::Values(EventQueue::Backend::kHeap,
                                           EventQueue::Backend::kCalendar),
                         [](const auto& info) {
                           return info.param == EventQueue::Backend::kHeap
                                      ? "Heap"
                                      : "Calendar";
                         });

TEST_P(EventQueueBackendTest, RunsEventsInTimeOrderAcrossTheWindow) {
  std::vector<int> order;
  q.schedule_at(5000, [&] { order.push_back(4); });  // beyond the tiny window
  q.schedule_at(30, [&] { order.push_back(1); });
  q.schedule_at(2000, [&] { order.push_back(3); });
  q.schedule_at(900, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.now(), 5000);
}

TEST_P(EventQueueBackendTest, SameTimeKeyedEventsFireInKeyOrder) {
  std::vector<int> order;
  q.schedule_keyed(100, /*key=*/5, 0, [&] { order.push_back(5); });
  q.schedule_keyed(100, /*key=*/1, 0, [&] { order.push_back(1); });
  q.schedule_keyed(100, /*key=*/3, 0, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST_P(EventQueueBackendTest, PeriodicSeriesSpansManyWindows) {
  // Period far beyond the wheel window: every firing re-arms into the
  // overflow heap and must still pop at the exact cadence.
  std::vector<TimePoint> fires;
  auto series = q.schedule_every(3000, [&] { fires.push_back(q.now()); }, 3000);
  q.run_until(10'000);
  EXPECT_EQ(fires, (std::vector<TimePoint>{3000, 6000, 9000}));
  series.cancel();
  EXPECT_EQ(q.run_all().executed, 0u);
}

TEST_P(EventQueueBackendTest, CancelNowReclaimsWheelAndOverflowEntries) {
  int fired = 0;
  auto near = q.schedule_at(100, [&] { ++fired; });    // on the wheel
  auto far = q.schedule_at(50'000, [&] { ++fired; });  // parked in overflow
  q.schedule_at(200, [&] { ++fired; });
  EXPECT_EQ(q.pending(), 3u);
  q.cancel_now(near);
  q.cancel_now(far);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_all().executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.stats().pruned, 0u);  // eager removal leaves no tombstones
}

TEST_P(EventQueueBackendTest, NextTimePrunesTombstonesAndCountsThem) {
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 100; ++i) {
    doomed.push_back(q.schedule_at(40 * i, [] {}));
  }
  auto survivor = q.schedule_at(4500, [] {});
  for (auto& h : doomed) h.cancel();
  // The horizon must skip every tombstone, and each one is counted scan
  // work — a lazy-cancel pileup shows up in stats().pruned, loudly.
  EXPECT_EQ(q.next_time(), 4500);
  EXPECT_EQ(q.stats().pruned, 100u);
  q.cancel_now(survivor);
  EXPECT_EQ(q.next_time(), EventQueue::kNoEventTime);
  EXPECT_EQ(q.stats().pruned, 100u);  // cancel_now added no tombstone
}

TEST_P(EventQueueBackendTest, CursorStaysMonotoneAfterTombstonePrune) {
  // Regression: pruning a lazy-cancel tombstone via next_time() advances the
  // calendar cursor past now() (here to day 31 of the 64x16ms wheel) while
  // the clock stays at 0. An event then scheduled near now() sits *before*
  // the cursor — it must park in the overflow heap and pop WITHOUT rewinding
  // the cursor. The rewind left wheel keys beyond the window, wrapping their
  // ring offsets so the scan fired day 94 (offset 24 from the rewound
  // cursor) before day 68 (offset 62): a later event first, time backwards.
  auto doomed = q.schedule_at(500, [] {});
  doomed.cancel();
  EXPECT_EQ(q.next_time(), EventQueue::kNoEventTime);  // prunes the tombstone
  std::vector<TimePoint> fires;
  q.schedule_at(1088, [&] { fires.push_back(q.now()); });  // day 68: wheel
  q.schedule_at(1504, [&] { fires.push_back(q.now()); });  // day 94: wheel
  q.schedule_at(100, [&] { fires.push_back(q.now()); });   // pre-cursor
  EXPECT_EQ(q.next_time(), 100);
  EXPECT_EQ(q.run_all().executed, 3u);
  EXPECT_EQ(fires, (std::vector<TimePoint>{100, 1088, 1504}));
  EXPECT_EQ(q.now(), 1504);
}

TEST_P(EventQueueBackendTest, KeysSurviveAtThe40BitCeiling) {
  const std::uint64_t top = (std::uint64_t{1} << 40) - 1;
  std::vector<std::uint64_t> keys;
  q.set_execute_observer(
      [](void* ctx, TimePoint, std::uint64_t key, std::uint32_t) {
        static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(key);
      },
      &keys);
  // The packed (key << 24 | slot) word tops out the uint64 range; the
  // observer must still see the caller's full 40-bit key, and same-time
  // ordering must hold right at the edge.
  q.schedule_keyed(100, top, 0, [] {});
  q.schedule_keyed(100, top - 1, 0, [] {});
  q.schedule_keyed(100, 0, 0, [] {});
  EXPECT_THROW(q.schedule_keyed(100, std::uint64_t{1} << 40, 0, [] {}),
               std::length_error);
  q.run_all();
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{0, top - 1, top}));
}

TEST_P(EventQueueBackendTest, ReserveDoesNotDisturbOrdering) {
  q.reserve(1000);
  std::vector<int> order;
  q.schedule_at(300, [&] { order.push_back(2); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(7000, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// The determinism contract behind ShardedScheduler's backend knob: the same
// scripted workload — mixed horizons, keyed ties, periodic re-arms, lazy and
// eager cancels, in-callback scheduling — must produce the exact same
// (time, key, tag) execution stream under both backends.
TEST(EventQueueBackendIdentityTest, CalendarMatchesHeapOnMixedWorkload) {
  struct Record {
    TimePoint t;
    std::uint64_t key;
    std::uint32_t tag;
    bool operator==(const Record&) const = default;
  };
  auto run = [](EventQueue::Backend backend) {
    EventQueue q(backend, kTinyWheel);
    std::vector<Record> seen;
    q.set_execute_observer(
        [](void* ctx, TimePoint t, std::uint64_t key, std::uint32_t tag) {
          static_cast<std::vector<Record>*>(ctx)->push_back(
              Record{t, key, tag});
        },
        &seen);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    std::vector<EventHandle> handles;
    for (std::uint32_t i = 0; i < 512; ++i) {
      const auto t = static_cast<TimePoint>(next() % 6000);
      switch (i % 5) {
        case 0:
          handles.push_back(q.schedule_keyed(t, i, i & 7, [] {}));
          break;
        case 1:
          handles.push_back(q.schedule_every(
              static_cast<Duration>(1 + next() % 700), [] {}, t));
          break;
        default:
          handles.push_back(q.schedule_at(t, [&q, &next] {
            // In-callback scheduling lands relative to the moving clock.
            q.schedule_at(q.now() + static_cast<TimePoint>(next() % 2000),
                          [] {});
          }));
          break;
      }
    }
    q.run_until(2500);
    for (std::size_t i = 0; i < handles.size(); i += 3) handles[i].cancel();
    for (std::size_t i = 1; i < handles.size(); i += 9) {
      q.cancel_now(handles[i]);
    }
    q.run_until(6000);
    for (auto& h : handles) h.cancel();
    q.run_all(/*max_events=*/50'000);
    return seen;
  };
  const auto heap_stream = run(EventQueue::Backend::kHeap);
  const auto cal_stream = run(EventQueue::Backend::kCalendar);
  ASSERT_GT(heap_stream.size(), 1000u);
  EXPECT_EQ(heap_stream, cal_stream);
}

TEST(EventQueueBackendSwitchTest, SwitchRequiresAnEmptyQueue) {
  EventQueue q;
  auto h = q.schedule_at(10, [] {});
  EXPECT_THROW(q.set_backend(EventQueue::Backend::kCalendar),
               std::logic_error);
  h.cancel();
  // A lazy-cancel tombstone still occupies the pending set.
  EXPECT_THROW(q.set_backend(EventQueue::Backend::kCalendar),
               std::logic_error);
  EXPECT_EQ(q.next_time(), EventQueue::kNoEventTime);  // prunes it
  q.set_backend(EventQueue::Backend::kCalendar, kTinyWheel);
  EXPECT_EQ(q.backend(), EventQueue::Backend::kCalendar);
  int fired = 0;
  q.schedule_at(q.now() + 100, [&] { ++fired; });
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueBackendSwitchTest, RejectsDegenerateWheelShapes) {
  EventQueue q;
  EXPECT_THROW(q.set_backend(EventQueue::Backend::kCalendar,
                             CalendarConfig{/*bucket_bits=*/5, 4}),
               std::invalid_argument);
  EXPECT_THROW(q.set_backend(EventQueue::Backend::kCalendar,
                             CalendarConfig{/*bucket_bits=*/23, 4}),
               std::invalid_argument);
  EXPECT_THROW(q.set_backend(EventQueue::Backend::kCalendar,
                             CalendarConfig{12, /*width_shift=*/41}),
               std::invalid_argument);
  EXPECT_EQ(q.backend(), EventQueue::Backend::kHeap);  // unchanged on throw
}

TEST(EventQueueCalendarTest, FrontScanWorkStaysLinearAtLowOccupancy) {
  // 64 staggered series, period = one full wheel revolution: every bucket
  // holds exactly one event, so each front scan examines one key. The pin is
  // deliberately loose (2x) but fails loudly if occupancy degenerates —
  // e.g. a wheel-shape or cursor bug piling every event into one bucket.
  EventQueue q(EventQueue::Backend::kCalendar, kTinyWheel);
  std::vector<EventHandle> series;
  for (int i = 0; i < 64; ++i) {
    series.push_back(q.schedule_every(1024, [] {}, 16 * i));
  }
  q.run_until(60'000);
  const auto& stats = q.stats();
  EXPECT_GT(stats.executed, 3000u);
  EXPECT_GT(stats.front_scan_keys, 0u);
  EXPECT_LE(stats.front_scan_keys, 2 * stats.executed);
  for (auto& h : series) h.cancel();
}

TEST(EventQueueCalendarTest, HeapBackendReportsNoScanWork) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.schedule_every(5, [] {}, 5);
  q.run_until(100);
  EXPECT_EQ(q.stats().front_scan_keys, 0u);
}

TEST(SimulationTest, LogStampsCurrentTime) {
  Simulation simulation;
  simulation.after(seconds(42), [&] {
    simulation.log(TraceCategory::kSim, "test", "tick");
  });
  simulation.run_all();
  ASSERT_EQ(simulation.trace().size(), 1u);
  EXPECT_EQ(simulation.trace().events()[0].time, seconds(42));
}

}  // namespace
}  // namespace cyd::sim
