#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/string_pool.hpp"

namespace cyd::sim {
namespace {

TraceLog make_sample_log() {
  TraceLog log;
  log.record(10, TraceCategory::kFile, "hostA", "file.write", "C:\\a.txt");
  log.record(20, TraceCategory::kFile, "hostB", "file.delete", "C:\\b.txt");
  log.record(30, TraceCategory::kNetwork, "hostA", "dns.lookup", "evil.com");
  log.record(40, TraceCategory::kDriver, "hostA", "driver.load", "mrxcls.sys");
  log.record(50, TraceCategory::kFile, "hostA", "file.write", "C:\\c.txt");
  return log;
}

TEST(StringPoolTest, InternDeduplicates) {
  StringPool pool;
  const auto a = pool.intern("file.write");
  const auto b = pool.intern("file.delete");
  const auto c = pool.intern("file.write");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.view(a), "file.write");
  EXPECT_EQ(pool.view(b), "file.delete");
}

TEST(StringPoolTest, FindDoesNotIntern) {
  StringPool pool;
  EXPECT_EQ(pool.find("ghost"), kNoString);
  EXPECT_EQ(pool.size(), 0u);
  const auto id = pool.intern("ghost");
  EXPECT_EQ(pool.find("ghost"), id);
}

TEST(StringPoolTest, IdsAreAssignedInFirstSeenOrder) {
  StringPool a;
  StringPool b;
  for (const char* s : {"x", "y", "x", "z"}) {
    EXPECT_EQ(a.intern(s), b.intern(s));
  }
  EXPECT_TRUE(a == b);
}

TEST(StringPoolTest, ViewsStayValidAcrossGrowth) {
  StringPool pool;
  const auto first = pool.view(pool.intern("the-first-string-interned"));
  for (int i = 0; i < 1000; ++i) pool.intern("filler" + std::to_string(i));
  EXPECT_EQ(first, "the-first-string-interned");
}

TEST(TraceTest, RecordsInOrder) {
  const auto log = make_sample_log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.ref(0).action(), "file.write");
  EXPECT_EQ(log.ref(4).detail(), "C:\\c.txt");
  EXPECT_EQ(log.ref(0).time(), 10);
}

TEST(TraceTest, EventsShareInternedIds) {
  const auto log = make_sample_log();
  const auto& events = log.events();
  // "hostA" and "file.write" each appear several times but intern once.
  EXPECT_EQ(events[0].actor, events[2].actor);
  EXPECT_EQ(events[0].action, events[4].action);
  EXPECT_NE(events[0].actor, events[1].actor);
}

TEST(TraceTest, CountsAreIndexBacked) {
  const auto log = make_sample_log();
  EXPECT_EQ(log.count_category(TraceCategory::kFile), 3u);
  EXPECT_EQ(log.count_category(TraceCategory::kNetwork), 1u);
  EXPECT_EQ(log.count_category(TraceCategory::kCnc), 0u);
  EXPECT_EQ(log.count_action("file.write"), 2u);
  EXPECT_EQ(log.count_action("nonexistent"), 0u);
  EXPECT_EQ(log.count_actor("hostA"), 4u);
  EXPECT_EQ(log.count_actor("hostB"), 1u);
  EXPECT_EQ(log.count_actor("hostC"), 0u);
}

TEST(TraceTest, PostingListsPointAtEvents) {
  const auto log = make_sample_log();
  const auto* writes = log.action_index("file.write");
  ASSERT_NE(writes, nullptr);
  EXPECT_EQ(*writes, (std::vector<std::uint32_t>{0, 4}));
  EXPECT_EQ(log.action_index("nonexistent"), nullptr);
  const auto& files = log.category_index(TraceCategory::kFile);
  EXPECT_EQ(files, (std::vector<std::uint32_t>{0, 1, 4}));
  // An actor name never used as an action has no action postings.
  EXPECT_EQ(log.action_index("hostA"), nullptr);
  EXPECT_EQ(log.actor_index("file.write"), nullptr);
}

TEST(TraceTest, ForEachVisitorsAreOrderedAndComplete) {
  const auto log = make_sample_log();
  std::vector<TimePoint> times;
  log.for_each_actor("hostA", [&](const TraceEventRef& e) {
    times.push_back(e.time());
  });
  EXPECT_EQ(times, (std::vector<TimePoint>{10, 30, 40, 50}));

  std::size_t visited = 0;
  log.for_each([&](const TraceEventRef&) { ++visited; });
  EXPECT_EQ(visited, 5u);

  std::vector<std::string> details;
  log.for_each_action("file.write", [&](const TraceEventRef& e) {
    details.emplace_back(e.detail());
  });
  EXPECT_EQ(details, (std::vector<std::string>{"C:\\a.txt", "C:\\c.txt"}));

  visited = 0;
  log.for_each_category(TraceCategory::kDriver,
                        [&](const TraceEventRef&) { ++visited; });
  EXPECT_EQ(visited, 1u);
}

// The copying shims are [[deprecated]]; these are their dedicated
// compatibility tests, so the warning is suppressed for exactly this block.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(TraceTest, DeprecatedCopyingQueriesStillMaterialise) {
  const auto log = make_sample_log();
  const auto by_cat = log.by_category(TraceCategory::kFile);
  ASSERT_EQ(by_cat.size(), 3u);
  EXPECT_EQ(by_cat[0].actor, "hostA");
  EXPECT_EQ(by_cat[0].detail, "C:\\a.txt");
  EXPECT_EQ(log.by_action("file.write").size(), 2u);
  EXPECT_EQ(log.by_actor("hostB").size(), 1u);
  EXPECT_EQ(log.by_actor("hostB")[0].action, "file.delete");
}

TEST(TraceTest, QueryWithCompoundPredicate) {
  const auto log = make_sample_log();
  const auto results = log.query([](const TraceEventRef& e) {
    return e.actor() == "hostA" && e.category() == TraceCategory::kFile;
  });
  EXPECT_EQ(results.size(), 2u);
}

#pragma GCC diagnostic pop

TEST(TraceTest, ClearEmptiesLogAndIndexes) {
  auto log = make_sample_log();
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.count_action("file.write"), 0u);
  EXPECT_EQ(log.count_category(TraceCategory::kFile), 0u);
  EXPECT_TRUE(log.pool().empty());
  // The log is fully reusable after clear().
  log.record(5, TraceCategory::kSim, "x", "restart");
  EXPECT_EQ(log.count_action("restart"), 1u);
}

TEST(TraceTest, ReserveDoesNotDisturbContents) {
  TraceLog log;
  log.reserve(1000, 64 * 1024);
  log.record(1, TraceCategory::kSim, "a", "b", "c");
  log.reserve(10, 16);  // shrinking reserve is a no-op
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.ref(0).detail(), "c");
}

TEST(TraceTest, FingerprintIsOrderAndContentSensitive) {
  const auto log = make_sample_log();
  EXPECT_EQ(log.fingerprint(), make_sample_log().fingerprint());

  TraceLog other;
  other.record(10, TraceCategory::kFile, "hostA", "file.write", "C:\\a.txt");
  EXPECT_NE(log.fingerprint(), other.fingerprint());

  TraceLog reordered;
  reordered.record(20, TraceCategory::kFile, "hostB", "file.delete",
                   "C:\\b.txt");
  reordered.record(10, TraceCategory::kFile, "hostA", "file.write",
                   "C:\\a.txt");
  reordered.record(30, TraceCategory::kNetwork, "hostA", "dns.lookup",
                   "evil.com");
  reordered.record(40, TraceCategory::kDriver, "hostA", "driver.load",
                   "mrxcls.sys");
  reordered.record(50, TraceCategory::kFile, "hostA", "file.write",
                   "C:\\c.txt");
  EXPECT_NE(log.fingerprint(), reordered.fingerprint());
}

TEST(TraceTest, EqualityComparesResolvedContent) {
  EXPECT_TRUE(make_sample_log() == make_sample_log());

  // Same events recorded with a different interleaving of *other* strings
  // still compare equal: equality is semantic, not id-based.
  TraceLog a;
  a.record(1, TraceCategory::kSim, "z-actor", "noise");
  a.clear();
  a.record(10, TraceCategory::kFile, "hostA", "file.write", "C:\\a.txt");
  TraceLog b;
  b.record(10, TraceCategory::kFile, "hostA", "file.write", "C:\\a.txt");
  EXPECT_TRUE(a == b);

  b.record(11, TraceCategory::kFile, "hostA", "file.write");
  EXPECT_FALSE(a == b);
}

TEST(TraceTest, RenderTailLimitsLines) {
  const auto log = make_sample_log();
  const auto tail = log.render_tail(2);
  EXPECT_EQ(tail.find("a.txt"), std::string::npos);
  EXPECT_NE(tail.find("c.txt"), std::string::npos);
  EXPECT_NE(tail.find("mrxcls.sys"), std::string::npos);
}

TEST(TraceTest, CategoryNamesRoundTrip) {
  EXPECT_STREQ(to_string(TraceCategory::kScada), "scada");
  EXPECT_STREQ(to_string(TraceCategory::kMalware), "malware");
  EXPECT_STREQ(to_string(TraceCategory::kSecurity), "security");
}

}  // namespace
}  // namespace cyd::sim
