#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace cyd::sim {
namespace {

TraceLog make_sample_log() {
  TraceLog log;
  log.record(10, TraceCategory::kFile, "hostA", "file.write", "C:\\a.txt");
  log.record(20, TraceCategory::kFile, "hostB", "file.delete", "C:\\b.txt");
  log.record(30, TraceCategory::kNetwork, "hostA", "dns.lookup", "evil.com");
  log.record(40, TraceCategory::kDriver, "hostA", "driver.load", "mrxcls.sys");
  log.record(50, TraceCategory::kFile, "hostA", "file.write", "C:\\c.txt");
  return log;
}

TEST(TraceTest, RecordsInOrder) {
  const auto log = make_sample_log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.events().front().action, "file.write");
  EXPECT_EQ(log.events().back().detail, "C:\\c.txt");
}

TEST(TraceTest, ByCategoryFilters) {
  const auto log = make_sample_log();
  EXPECT_EQ(log.by_category(TraceCategory::kFile).size(), 3u);
  EXPECT_EQ(log.by_category(TraceCategory::kNetwork).size(), 1u);
  EXPECT_EQ(log.by_category(TraceCategory::kCnc).size(), 0u);
}

TEST(TraceTest, ByActionFilters) {
  const auto log = make_sample_log();
  EXPECT_EQ(log.by_action("file.write").size(), 2u);
  EXPECT_EQ(log.count_action("file.write"), 2u);
  EXPECT_EQ(log.count_action("nonexistent"), 0u);
}

TEST(TraceTest, ByActorFilters) {
  const auto log = make_sample_log();
  EXPECT_EQ(log.by_actor("hostA").size(), 4u);
  EXPECT_EQ(log.by_actor("hostB").size(), 1u);
}

TEST(TraceTest, QueryWithCompoundPredicate) {
  const auto log = make_sample_log();
  const auto results = log.query([](const TraceEvent& e) {
    return e.actor == "hostA" && e.category == TraceCategory::kFile;
  });
  EXPECT_EQ(results.size(), 2u);
}

TEST(TraceTest, ClearEmptiesLog) {
  auto log = make_sample_log();
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceTest, RenderTailLimitsLines) {
  const auto log = make_sample_log();
  const auto tail = log.render_tail(2);
  EXPECT_EQ(tail.find("a.txt"), std::string::npos);
  EXPECT_NE(tail.find("c.txt"), std::string::npos);
  EXPECT_NE(tail.find("mrxcls.sys"), std::string::npos);
}

TEST(TraceTest, CategoryNamesRoundTrip) {
  EXPECT_STREQ(to_string(TraceCategory::kScada), "scada");
  EXPECT_STREQ(to_string(TraceCategory::kMalware), "malware");
  EXPECT_STREQ(to_string(TraceCategory::kSecurity), "security");
}

}  // namespace
}  // namespace cyd::sim
