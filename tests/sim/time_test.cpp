#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace cyd::sim {
namespace {

TEST(TimeTest, EpochIsJanuaryFirst2010) {
  EXPECT_EQ(make_date(2010, 1, 1), 0);
}

TEST(TimeTest, DateArithmeticAcrossMonths) {
  EXPECT_EQ(make_date(2010, 2, 1), 31 * kDay);
  EXPECT_EQ(make_date(2010, 3, 1), (31 + 28) * kDay);
}

TEST(TimeTest, LeapYear2012HasFebruary29) {
  const TimePoint feb29 = make_date(2012, 2, 29);
  const TimePoint mar1 = make_date(2012, 3, 1);
  EXPECT_EQ(mar1 - feb29, kDay);
}

TEST(TimeTest, ShamoonKillDateFormatsCorrectly) {
  // The Saudi Aramco wiper trigger: 2012-08-15 08:08 UTC.
  const TimePoint kill = make_date(2012, 8, 15, 8, 8);
  EXPECT_EQ(format_time(kill), "2012-08-15 08:08:00.000");
}

TEST(TimeTest, HourAndMinuteComponents) {
  const TimePoint t = make_date(2010, 1, 2, 13, 45);
  EXPECT_EQ(t, kDay + 13 * kHour + 45 * kMinute);
}

TEST(TimeTest, FormatIncludesMilliseconds) {
  EXPECT_EQ(format_time(1234), "2010-01-01 00:00:01.234");
}

TEST(TimeTest, FormatDurationDays) {
  EXPECT_EQ(format_duration(2 * kDay + 3 * kHour + 15 * kMinute),
            "2d 03:15:00");
}

TEST(TimeTest, FormatDurationSubDay) {
  EXPECT_EQ(format_duration(90 * kMinute), "01:30:00");
}

TEST(TimeTest, FormatDurationNegative) {
  EXPECT_EQ(format_duration(-kHour), "-01:00:00");
}

TEST(TimeTest, DurationHelpersCompose) {
  EXPECT_EQ(days(1), hours(24));
  EXPECT_EQ(hours(1), minutes(60));
  EXPECT_EQ(minutes(1), seconds(60));
  EXPECT_EQ(seconds(1), milliseconds(1000));
}

TEST(TimeTest, DatesAreMonotonic) {
  EXPECT_LT(make_date(2010, 6, 1), make_date(2011, 6, 1));
  EXPECT_LT(make_date(2012, 8, 15), make_date(2012, 8, 16));
  EXPECT_LT(make_date(2012, 8, 15, 8, 7), make_date(2012, 8, 15, 8, 8));
}

}  // namespace
}  // namespace cyd::sim
