// ShardedScheduler: the conservative parallel scheduler's whole contract is
// that Mode::kSharded is indistinguishable from Mode::kSingleQueue — same
// (time, key) trace checksum, same world state — at every worker count. The
// scenario below exercises both cross-shard shapes named by the paper's
// headline campaigns: a USB-courier hop across an air gap (days of
// latency, Stuxnet's Natanz crossing) and WAN-routed C&C beacons between
// connected sites (minutes of latency, Flame's check-in traffic). This file
// is part of the sweep_tests binary so the TSan CI job sweeps the round
// barrier and outbox flush for races.

#include "sim/sharded_scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

namespace cyd::sim {
namespace {

constexpr std::size_t kHq = 0;      // connected site, runs the C&C relay
constexpr std::size_t kBranch = 1;  // connected site, beacons to HQ
constexpr std::size_t kGapped = 2;  // air-gapped site, courier-only

ShardPlan courier_and_wan_plan() {
  ShardPlan plan;
  plan.labels = {"hq", "branch", "natanz"};
  plan.channels = {
      {kHq, kBranch, minutes(5)},      // WAN link, both directions
      {kBranch, kHq, minutes(5)},
      {kHq, kGapped, 3 * kDay},        // USB courier across the air gap
      {kGapped, kHq, 3 * kDay},
  };
  return plan;
}

/// Per-site world state. Each slot is only ever touched by events executing
/// on that site's shard — the shard-safety contract under test.
struct ScenarioState {
  std::array<std::uint64_t, 3> infections{};
  std::array<std::uint64_t, 3> beacons{};
  std::uint64_t couriers_returned = 0;  // hq-only
};

/// Self-rescheduling per-site activity chain. Every third branch tick emits
/// a WAN beacon to HQ; HQ forwards every second beacon it receives across
/// the air gap by courier; the gapped site acknowledges by courier. All
/// decisions are pure functions of the per-site counters, so the workload
/// is identical whichever mode executes it.
void arm_activity(ShardedScheduler& sched, ScenarioState& state,
                  std::size_t site, TimePoint at, int remaining) {
  if (remaining <= 0) return;
  sched.schedule(site, at, [&sched, &state, site, at, remaining] {
    state.infections[site] += site + 1;
    if (site == kBranch && state.infections[site] % 3 == 0) {
      sched.send(kBranch, kHq, /*extra=*/0, [&sched, &state] {
        ++state.beacons[kHq];
        if (state.beacons[kHq] % 2 == 0) {
          // Courier departs with a staging delay on top of the leg time.
          sched.send(kHq, kGapped, hours(6), [&sched, &state] {
            ++state.beacons[kGapped];
            state.infections[kGapped] += 10;
            sched.send(kGapped, kHq, /*extra=*/0,
                       [&state] { ++state.couriers_returned; });
          });
        }
      });
    }
    arm_activity(sched, state, site, at + minutes(45) + minutes(site),
                 remaining - 1);
  });
}

void seed_scenario(ShardedScheduler& sched, ScenarioState& state) {
  for (std::size_t site = 0; site < 3; ++site) {
    arm_activity(sched, state, site, minutes(10 * (site + 1)), 400);
  }
}

struct RunResult {
  std::uint64_t checksum = 0;
  std::size_t executed = 0;
  std::size_t cross = 0;
  ScenarioState state;
};

RunResult run_scenario(
    ShardedScheduler::Mode mode, unsigned workers,
    TimePoint deadline = 21 * kDay,
    EventQueue::Backend backend = EventQueue::Backend::kHeap) {
  ShardedScheduler sched(courier_and_wan_plan(),
                         ShardedScheduler::Options{mode, workers, backend});
  RunResult result;
  seed_scenario(sched, result.state);
  const auto report = sched.run_until(deadline);
  result.checksum = report.trace_checksum;
  result.executed = report.executed;
  result.cross = report.cross_shard_messages;
  return result;
}

void expect_same(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.cross, b.cross);
  EXPECT_EQ(a.state.infections, b.state.infections);
  EXPECT_EQ(a.state.beacons, b.state.beacons);
  EXPECT_EQ(a.state.couriers_returned, b.state.couriers_returned);
}

TEST(ShardedSchedulerTest, CourierAndWanTraceMatchesSingleQueueAt1And2AndN) {
  const auto reference =
      run_scenario(ShardedScheduler::Mode::kSingleQueue, 1);
  // The scenario actually crossed shards both ways, or the test is vacuous.
  EXPECT_GT(reference.cross, 0u);
  EXPECT_GT(reference.state.beacons[kGapped], 0u);
  EXPECT_GT(reference.state.couriers_returned, 0u);

  for (const unsigned workers : {1u, 2u, 0u}) {  // 0 = hardware concurrency
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto sharded =
        run_scenario(ShardedScheduler::Mode::kSharded, workers);
    expect_same(reference, sharded);
  }
}

TEST(ShardedSchedulerTest, CalendarBackendTraceMatchesHeapAtEveryWorkerCount) {
  // The backend knob must be invisible to the determinism contract: a
  // calendar-backed run — wheel inserts for the 45-minute activity ticks,
  // overflow parks for the 3-day courier legs — produces the same trace
  // checksum and world state as the heap reference, in both modes, at
  // worker counts {1, 2, hardware}.
  const auto reference = run_scenario(ShardedScheduler::Mode::kSingleQueue, 1);
  const auto serial_cal =
      run_scenario(ShardedScheduler::Mode::kSingleQueue, 1, 21 * kDay,
                   EventQueue::Backend::kCalendar);
  expect_same(reference, serial_cal);
  for (const unsigned workers : {1u, 2u, 0u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto sharded_cal =
        run_scenario(ShardedScheduler::Mode::kSharded, workers, 21 * kDay,
                     EventQueue::Backend::kCalendar);
    expect_same(reference, sharded_cal);
  }
}

TEST(ShardedSchedulerTest, PerShardBackendMixKeepsTheTrace) {
  // Heterogeneous worlds: only the dense sites take the wheel; the trace
  // must not care which shard runs which backend.
  const auto reference = run_scenario(ShardedScheduler::Mode::kSingleQueue, 1);
  ShardedScheduler sched(courier_and_wan_plan(),
                         ShardedScheduler::Options{
                             ShardedScheduler::Mode::kSharded, 2});
  sched.set_shard_backend(kHq, EventQueue::Backend::kCalendar);
  sched.set_shard_backend(kGapped, EventQueue::Backend::kCalendar,
                          CalendarConfig{/*bucket_bits=*/8,
                                         /*width_shift=*/16});
  sched.reserve(kBranch, 1024);
  RunResult mixed;
  seed_scenario(sched, mixed.state);
  const auto report = sched.run_until(21 * kDay);
  mixed.checksum = report.trace_checksum;
  mixed.executed = report.executed;
  mixed.cross = report.cross_shard_messages;
  expect_same(reference, mixed);
}

TEST(ShardedSchedulerTest, ShardedRunsAreReproducible) {
  const auto first = run_scenario(ShardedScheduler::Mode::kSharded, 2);
  const auto second = run_scenario(ShardedScheduler::Mode::kSharded, 2);
  expect_same(first, second);
}

TEST(ShardedSchedulerTest, TiledRunUntilMatchesOneShot) {
  for (const auto mode : {ShardedScheduler::Mode::kSingleQueue,
                          ShardedScheduler::Mode::kSharded}) {
    SCOPED_TRACE(mode == ShardedScheduler::Mode::kSharded ? "sharded"
                                                          : "single-queue");
    ShardedScheduler tiled(courier_and_wan_plan(),
                           ShardedScheduler::Options{mode, 2});
    ScenarioState state;
    seed_scenario(tiled, state);
    tiled.run_until(5 * kDay);
    tiled.run_until(13 * kDay);
    const auto report = tiled.run_until(21 * kDay);

    const auto oneshot = run_scenario(mode, 2);
    EXPECT_EQ(report.trace_checksum, oneshot.checksum);
    EXPECT_EQ(report.executed, oneshot.executed);
    for (std::size_t site = 0; site < 3; ++site) {
      EXPECT_EQ(tiled.now(site), 21 * kDay);
    }
  }
}

TEST(ShardedSchedulerTest, CrossShardScheduleFromEventThrows) {
  for (const auto mode : {ShardedScheduler::Mode::kSingleQueue,
                          ShardedScheduler::Mode::kSharded}) {
    ShardedScheduler sched(courier_and_wan_plan(),
                           ShardedScheduler::Options{mode, 1});
    sched.schedule(kHq, minutes(1), [&sched] {
      sched.schedule(kBranch, minutes(2), [] {});  // not via send(): illegal
    });
    EXPECT_THROW(sched.run_until(kDay), std::logic_error);
  }
}

TEST(ShardedSchedulerTest, SetupCodeMaySeedAnyShard) {
  ShardedScheduler sched(courier_and_wan_plan());
  int fired = 0;
  for (std::size_t site = 0; site < 3; ++site) {
    sched.schedule(site, minutes(1), [&fired] { ++fired; });
  }
  sched.send(kHq, kGapped, 0, [&fired] { ++fired; });  // setup send is legal
  sched.run_until(7 * kDay);
  EXPECT_EQ(fired, 4);
}

TEST(ShardedSchedulerTest, SendWithoutChannelThrows) {
  ShardedScheduler sched(courier_and_wan_plan());
  EXPECT_FALSE(sched.has_channel(kBranch, kGapped));
  EXPECT_THROW(sched.send(kBranch, kGapped, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(sched.channel_latency(kBranch, kGapped), std::invalid_argument);
  EXPECT_EQ(sched.channel_latency(kHq, kGapped), 3 * kDay);
}

TEST(ShardedSchedulerTest, LookaheadIsMinimumChannelLatency) {
  ShardedScheduler sched(courier_and_wan_plan());
  EXPECT_EQ(sched.lookahead(), minutes(5));
  ShardPlan isolated;
  isolated.labels = {"only"};
  EXPECT_EQ(isolated.lookahead(), ShardPlan::kUnbounded);
}

TEST(ShardedSchedulerTest, RejectsMalformedPlans) {
  EXPECT_THROW(ShardedScheduler(ShardPlan{}), std::invalid_argument);

  ShardPlan self_loop;
  self_loop.labels = {"a", "b"};
  self_loop.channels = {{0, 0, minutes(1)}};
  EXPECT_THROW(ShardedScheduler(std::move(self_loop)), std::invalid_argument);

  ShardPlan dangling;
  dangling.labels = {"a"};
  dangling.channels = {{0, 3, minutes(1)}};
  EXPECT_THROW(ShardedScheduler(std::move(dangling)), std::invalid_argument);
}

TEST(ShardedSchedulerTest, IsolatedShardsFinishInOneRound) {
  ShardPlan plan;
  plan.labels = {"a", "b"};
  ShardedScheduler sched(std::move(plan),
                         ShardedScheduler::Options{
                             ShardedScheduler::Mode::kSharded, 2});
  int fired = 0;
  sched.schedule(0, minutes(1), [&fired] { ++fired; });
  sched.schedule(1, minutes(2), [&fired] { ++fired; });
  const auto report = sched.run_until(kDay);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(report.rounds, 1u);  // unbounded lookahead: one window
  EXPECT_EQ(report.cross_shard_messages, 0u);
}

}  // namespace
}  // namespace cyd::sim
