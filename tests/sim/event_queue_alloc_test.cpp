// Steady-state allocation proof for the slab-backed event queue: once the
// slab, free list and heap have reached their working size, scheduling and
// firing events — including every firing of a periodic series with an
// inline-sized closure — must perform ZERO heap allocations. This binary
// replaces the global operator new with a counting hook, so it gets its own
// test target (alloc_tests) instead of riding in sim_tests.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

// Sanitizer builds interpose their own allocator machinery around
// operator new; the counts stop meaning "allocations the queue made", so the
// zero-allocation assertions are skipped there (the behaviour half of each
// test still runs).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CYD_ALLOC_COUNTS_RELIABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define CYD_ALLOC_COUNTS_RELIABLE 0
#endif
#endif
#ifndef CYD_ALLOC_COUNTS_RELIABLE
#define CYD_ALLOC_COUNTS_RELIABLE 1
#endif

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cyd::sim {
namespace {

std::size_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(EventQueueAllocTest, PeriodicSteadyStateAllocatesNothing) {
  EventQueue q;
  std::uint64_t ticks = 0;
  std::uint64_t* counter = &ticks;
  auto tick = [counter] { ++*counter; };
  // The whole point of the SBO callable: a typical capture list must live in
  // the inline buffer, or the zero-allocation claim is meaningless.
  static_assert(EventFn::stored_inline<decltype(tick)>);
  q.schedule_every(10, tick, 10);

  // Warm-up: first firings grow the slab and heap vectors to working size.
  q.run_until(100);
  ASSERT_EQ(ticks, 10u);

  [[maybe_unused]] const std::size_t before = allocation_count();
  q.run_until(100 + 10 * 1000);
  [[maybe_unused]] const std::size_t after = allocation_count();
  EXPECT_EQ(ticks, 1010u);
#if CYD_ALLOC_COUNTS_RELIABLE
  EXPECT_EQ(after - before, 0u)
      << "a steady-state periodic firing must not touch the heap";
#else
  GTEST_SKIP() << "allocation counts are not reliable under sanitizers";
#endif
}

TEST(EventQueueAllocTest, OneShotSteadyStateReusesSlabAndHeap) {
  EventQueue q;
  std::uint64_t fired = 0;
  std::uint64_t* counter = &fired;

  // Warm-up: size the slab/free list/heap for a batch of 64 in-flight
  // events, then drain.
  for (int i = 0; i < 64; ++i) {
    q.schedule_at(q.now() + 1 + i, [counter] { ++*counter; });
  }
  q.run_all();
  ASSERT_EQ(fired, 64u);

  // Steady state: the same batch shape must ride entirely on recycled slots.
  [[maybe_unused]] const std::size_t before = allocation_count();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) {
      q.schedule_at(q.now() + 1 + i, [counter] { ++*counter; });
    }
    q.run_all();
  }
  [[maybe_unused]] const std::size_t after = allocation_count();
  EXPECT_EQ(fired, 64u + 100u * 64u);
#if CYD_ALLOC_COUNTS_RELIABLE
  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule+drain must not touch the heap";
#else
  GTEST_SKIP() << "allocation counts are not reliable under sanitizers";
#endif
}

TEST(EventQueueAllocTest, CancellationSteadyStateAllocatesNothing) {
  EventQueue q;
  // Warm-up including the cancel paths (lazy and eager).
  for (int i = 0; i < 32; ++i) {
    auto lazy = q.schedule_at(q.now() + 5, [] {});
    auto eager = q.schedule_at(q.now() + 6, [] {});
    lazy.cancel();
    q.cancel_now(eager);
  }
  q.run_all();

  [[maybe_unused]] const std::size_t before = allocation_count();
  for (int round = 0; round < 100; ++round) {
    auto lazy = q.schedule_at(q.now() + 5, [] {});
    auto eager = q.schedule_at(q.now() + 6, [] {});
    lazy.cancel();
    q.cancel_now(eager);
    q.run_all();
  }
  [[maybe_unused]] const std::size_t after = allocation_count();
  EXPECT_EQ(q.pending(), 0u);
#if CYD_ALLOC_COUNTS_RELIABLE
  EXPECT_EQ(after - before, 0u)
      << "steady-state cancellation must not touch the heap";
#else
  GTEST_SKIP() << "allocation counts are not reliable under sanitizers";
#endif
}

TEST(EventQueueAllocTest, ReservePreSizesColdStormSetup) {
  // reserve() exists so storm setup — thousands of schedule calls into a
  // cold queue — performs zero allocations, not just the steady state.
  EventQueue q;
  q.reserve(4096);
  std::uint64_t fired = 0;
  std::uint64_t* counter = &fired;
  [[maybe_unused]] const std::size_t before = allocation_count();
  for (int i = 0; i < 4096; ++i) {
    q.schedule_at(q.now() + 1 + i, [counter] { ++*counter; });
  }
  [[maybe_unused]] const std::size_t mid = allocation_count();
  q.run_all();
  [[maybe_unused]] const std::size_t after = allocation_count();
  EXPECT_EQ(fired, 4096u);
#if CYD_ALLOC_COUNTS_RELIABLE
  EXPECT_EQ(mid - before, 0u)
      << "a reserved queue must absorb the whole storm without allocating";
  EXPECT_EQ(after - mid, 0u) << "draining allocates nothing either";
#else
  GTEST_SKIP() << "allocation counts are not reliable under sanitizers";
#endif
}

TEST(EventQueueAllocTest, ReservePreSizesCalendarBuckets) {
  // Calendar variant: the storm spreads across the wheel (one event per
  // bucket per lap) and parks the far tail in the overflow heap; both paths
  // must ride on reserved capacity.
  EventQueue q(EventQueue::Backend::kCalendar,
               CalendarConfig{/*bucket_bits=*/6, /*width_shift=*/4});
  q.reserve(4096);
  std::uint64_t fired = 0;
  std::uint64_t* counter = &fired;
  [[maybe_unused]] const std::size_t before = allocation_count();
  for (int i = 0; i < 4096; ++i) {
    q.schedule_at(q.now() + 1 + 16 * i, [counter] { ++*counter; });
  }
  [[maybe_unused]] const std::size_t mid = allocation_count();
  q.run_all();
  [[maybe_unused]] const std::size_t after = allocation_count();
  EXPECT_EQ(fired, 4096u);
#if CYD_ALLOC_COUNTS_RELIABLE
  EXPECT_EQ(mid - before, 0u)
      << "wheel buckets and overflow heap must be pre-sized by reserve()";
  EXPECT_EQ(after - mid, 0u) << "popping across windows allocates nothing";
#else
  GTEST_SKIP() << "allocation counts are not reliable under sanitizers";
#endif
}

}  // namespace
}  // namespace cyd::sim
