#include "pki/forgery.hpp"

#include <gtest/gtest.h>

#include "pe/image.hpp"
#include "pki/licensing.hpp"
#include "pki/signing.hpp"
#include "pki/trust.hpp"

namespace cyd::pki {
namespace {

struct FlameFixture {
  sim::TimePoint now = sim::make_date(2012, 3, 1);
  MicrosoftPki ms{sim::make_date(2010, 1, 1), 4242};
  MicrosoftPki::TslsActivation activation =
      ms.activate_license_server("Contoso Energy");
  CertStore host_store;
  TrustStore host_trust;

  FlameFixture() {
    ms.install_into(host_store);
    ms.anchor_root(host_trust);
  }
};

TEST(ForgeryTest, CollisionSuffixHitsTarget) {
  const std::string prefix = "arbitrary TBS prefix bytes";
  for (std::uint64_t target : {0ULL, 1ULL, 0x1234ULL, 0xffffULL}) {
    const auto suffix =
        collision_suffix(HashAlgorithm::kWeakSum, prefix, target);
    ASSERT_TRUE(suffix.has_value());
    EXPECT_EQ(digest(HashAlgorithm::kWeakSum, prefix + *suffix), target);
  }
}

TEST(ForgeryTest, CollisionSuffixUnavailableForStrongHash) {
  EXPECT_FALSE(
      collision_suffix(HashAlgorithm::kStrong64, "prefix", 42).has_value());
}

TEST(ForgeryTest, LicenseCertUsesWeakHash) {
  FlameFixture f;
  EXPECT_EQ(f.activation.license_cert.issuer_sig.alg,
            HashAlgorithm::kWeakSum);
  EXPECT_TRUE(
      f.activation.license_cert.has_usage(kUsageLicenseVerification));
  EXPECT_FALSE(f.activation.license_cert.has_usage(kUsageCodeSigning));
}

TEST(ForgeryTest, LicenseCertAloneCannotSignCode) {
  FlameFixture f;
  auto payload = pe::Builder{}
                     .program("flame.update")
                     .section(".text", "fake update", true)
                     .build();
  sign_image(payload, f.activation.license_cert, f.activation.license_key);
  EXPECT_EQ(verify_image(payload, f.host_store, f.host_trust, f.now).status,
            SignatureStatus::kWrongUsage);
}

TEST(ForgeryTest, ForgedCertChainsToMicrosoftRoot) {
  FlameFixture f;
  const auto forged = forge_code_signing_cert(
      f.activation.license_cert, "MS", 31337);
  ASSERT_TRUE(forged.has_value());
  const auto result =
      verify_chain(forged->certificate, f.host_store, f.host_trust, f.now);
  EXPECT_TRUE(result.ok()) << to_string(result.status);
}

TEST(ForgeryTest, ForgedCertHasCodeSigningUsage) {
  FlameFixture f;
  const auto forged =
      forge_code_signing_cert(f.activation.license_cert, "MS", 31337);
  ASSERT_TRUE(forged.has_value());
  EXPECT_TRUE(forged->certificate.has_usage(kUsageCodeSigning));
  EXPECT_EQ(forged->certificate.issuer_serial,
            f.activation.license_cert.issuer_serial);
}

TEST(ForgeryTest, ForgedSignatureAcceptedPreAdvisory) {
  // The complete Fig. 3 attack: forged cert signs a fake Windows update that
  // a stock host accepts as genuine Microsoft code.
  FlameFixture f;
  const auto forged =
      forge_code_signing_cert(f.activation.license_cert, "MS", 31337);
  ASSERT_TRUE(forged.has_value());
  auto fake_update = pe::Builder{}
                         .program("flame.mssecmgr")
                         .filename("WuSetupV.exe")
                         .section(".text", "flame installer", true)
                         .build();
  sign_image(fake_update, forged->certificate, forged->private_key);
  const auto verdict =
      verify_image(fake_update, f.host_store, f.host_trust, f.now);
  EXPECT_TRUE(verdict.valid()) << verdict.describe();
  EXPECT_EQ(verdict.signer_subject, "MS");
}

TEST(ForgeryTest, Advisory2718704KillsForgedSignature) {
  FlameFixture f;
  const auto forged =
      forge_code_signing_cert(f.activation.license_cert, "MS", 31337);
  ASSERT_TRUE(forged.has_value());
  auto fake_update = pe::Builder{}
                         .program("flame.mssecmgr")
                         .section(".text", "flame installer", true)
                         .build();
  sign_image(fake_update, forged->certificate, forged->private_key);

  f.ms.apply_advisory_2718704(f.host_trust);
  const auto verdict =
      verify_image(fake_update, f.host_store, f.host_trust, f.now);
  EXPECT_EQ(verdict.status, SignatureStatus::kChainInvalid);
  EXPECT_EQ(verdict.chain.status, ChainStatus::kRevoked);
}

TEST(ForgeryTest, AdvisoryDoesNotAffectGenuineUpdates) {
  FlameFixture f;
  f.ms.apply_advisory_2718704(f.host_trust);
  auto update = pe::Builder{}
                    .program("windows.update")
                    .section(".text", "genuine update", true)
                    .build();
  sign_image(update, f.ms.update_signing_cert(), f.ms.update_signing_key());
  EXPECT_TRUE(verify_image(update, f.host_store, f.host_trust, f.now).valid());
}

TEST(ForgeryTest, WeakHashPolicyBlocksForgeryEvenWithoutAdvisory) {
  FlameFixture f;
  const auto forged =
      forge_code_signing_cert(f.activation.license_cert, "MS", 31337);
  ASSERT_TRUE(forged.has_value());
  f.host_trust.set_reject_weak_hash(true);
  const auto result =
      verify_chain(forged->certificate, f.host_store, f.host_trust, f.now);
  EXPECT_EQ(result.status, ChainStatus::kWeakHashRejected);
}

TEST(ForgeryTest, StrongHashVictimCannotBeForged) {
  FlameFixture f;
  // A license cert issued under the strong hash resists the attack.
  auto root = CertificateAuthority::create_root(
      "Modern Root", HashAlgorithm::kStrong64, 0, f.now + 3650 * sim::kDay,
      91);
  const auto key = KeyPair::generate(92);
  const auto strong_license =
      root.issue("Org TSLS", kUsageLicenseVerification,
                 HashAlgorithm::kStrong64, 0, f.now + sim::kDay, key);
  EXPECT_FALSE(
      forge_code_signing_cert(strong_license, "MS", 31337).has_value());
}

TEST(ForgeryTest, EachActivationYieldsDistinctCert) {
  FlameFixture f;
  const auto second = f.ms.activate_license_server("Fabrikam Oil");
  EXPECT_NE(second.license_cert.serial, f.activation.license_cert.serial);
  EXPECT_NE(second.license_key.key_id, f.activation.license_key.key_id);
}

}  // namespace
}  // namespace cyd::pki
