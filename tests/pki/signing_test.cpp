#include "pki/signing.hpp"

#include <gtest/gtest.h>

#include "pe/image.hpp"
#include "pki/licensing.hpp"

namespace cyd::pki {
namespace {

using sim::kDay;

struct SigningFixture {
  sim::TimePoint now = sim::make_date(2010, 7, 1);
  CertificateAuthority root = CertificateAuthority::create_root(
      "VeriTrust Root", HashAlgorithm::kStrong64, 0, now + 3650 * kDay, 100);
  KeyPair vendor_key = KeyPair::generate(200);
  Certificate vendor_cert =
      root.issue("Realtek Semiconductor Corp", kUsageCodeSigning,
                 HashAlgorithm::kStrong64, 0, now + 365 * kDay, vendor_key);
  CertStore host_store;
  TrustStore host_trust;

  SigningFixture() {
    host_store.add(root.certificate());
    host_trust.trust_root(root.certificate().serial);
  }

  pe::Image make_driver() const {
    return pe::Builder{}
        .program("stuxnet.mrxcls")
        .filename("mrxcls.sys")
        .section(".text", "rootkit driver body", true)
        .build();
  }
};

TEST(SigningTest, SignedImageVerifies) {
  SigningFixture f;
  auto driver = f.make_driver();
  sign_image(driver, f.vendor_cert, f.vendor_key);
  const auto verdict =
      verify_image(driver, f.host_store, f.host_trust, f.now);
  EXPECT_TRUE(verdict.valid()) << verdict.describe();
  EXPECT_EQ(verdict.signer_subject, "Realtek Semiconductor Corp");
}

TEST(SigningTest, UnsignedImageReportsUnsigned) {
  SigningFixture f;
  const auto driver = f.make_driver();
  EXPECT_EQ(verify_image(driver, f.host_store, f.host_trust, f.now).status,
            SignatureStatus::kUnsigned);
}

TEST(SigningTest, SigningRequiresMatchingPrivateKey) {
  SigningFixture f;
  auto driver = f.make_driver();
  const auto wrong_key = KeyPair::generate(201);
  EXPECT_THROW(sign_image(driver, f.vendor_cert, wrong_key),
               std::invalid_argument);
}

TEST(SigningTest, TamperingAfterSigningBreaksDigest) {
  SigningFixture f;
  auto driver = f.make_driver();
  sign_image(driver, f.vendor_cert, f.vendor_key);
  driver.sections[0].data += " tampered";
  EXPECT_EQ(verify_image(driver, f.host_store, f.host_trust, f.now).status,
            SignatureStatus::kDigestMismatch);
}

TEST(SigningTest, GarbageSignatureIsMalformed) {
  SigningFixture f;
  auto driver = f.make_driver();
  driver.signature = "not a signature";
  EXPECT_EQ(verify_image(driver, f.host_store, f.host_trust, f.now).status,
            SignatureStatus::kMalformed);
}

TEST(SigningTest, NonCodeSigningCertRejected) {
  SigningFixture f;
  const auto server_key = KeyPair::generate(202);
  const auto server_cert =
      f.root.issue("Web Server", kUsageServerAuth, HashAlgorithm::kStrong64,
                   0, f.now + 365 * kDay, server_key);
  auto driver = f.make_driver();
  sign_image(driver, server_cert, server_key);
  EXPECT_EQ(verify_image(driver, f.host_store, f.host_trust, f.now).status,
            SignatureStatus::kWrongUsage);
}

TEST(SigningTest, RevokedSignerFailsChain) {
  // The fate of the JMicron/Realtek certificates once abuse was discovered.
  SigningFixture f;
  auto driver = f.make_driver();
  sign_image(driver, f.vendor_cert, f.vendor_key);
  f.host_trust.mark_untrusted(f.vendor_cert.serial);
  const auto verdict =
      verify_image(driver, f.host_store, f.host_trust, f.now);
  EXPECT_EQ(verdict.status, SignatureStatus::kChainInvalid);
  EXPECT_EQ(verdict.chain.status, ChainStatus::kRevoked);
}

TEST(SigningTest, EmbeddedChainLetsUnknownSignerVerify) {
  // The host has only the root; the signer cert travels inside the image.
  SigningFixture f;
  auto driver = f.make_driver();
  sign_image(driver, f.vendor_cert, f.vendor_key);
  CertStore bare_store;
  bare_store.add(f.root.certificate());
  EXPECT_TRUE(verify_image(driver, bare_store, f.host_trust, f.now).valid());
}

TEST(SigningTest, EmbeddedChainCannotIntroduceTrust) {
  // Attacker ships their own root in the chain; verification still fails
  // because the root is not anchored in the host trust store.
  SigningFixture f;
  auto evil_root = CertificateAuthority::create_root(
      "Evil Root", HashAlgorithm::kStrong64, 0, f.now + 3650 * kDay, 999);
  const auto evil_key = KeyPair::generate(203);
  const auto evil_cert =
      evil_root.issue("Evil Signer", kUsageCodeSigning,
                      HashAlgorithm::kStrong64, 0, f.now + kDay, evil_key);
  auto driver = f.make_driver();
  sign_image(driver, evil_cert, evil_key, {evil_root.certificate()});
  const auto verdict =
      verify_image(driver, f.host_store, f.host_trust, f.now);
  EXPECT_EQ(verdict.status, SignatureStatus::kChainInvalid);
  EXPECT_EQ(verdict.chain.status, ChainStatus::kUntrustedRoot);
}

TEST(SigningTest, CodeSignatureSerializationRoundTrip) {
  SigningFixture f;
  CodeSignature sig;
  sig.image_digest = 0x1122334455667788ULL;
  sig.alg = HashAlgorithm::kStrong64;
  sig.signer_serial = 42;
  sig.signer_key_id = 43;
  sig.chain.push_back(f.vendor_cert);
  const auto parsed = CodeSignature::parse(sig.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->image_digest, sig.image_digest);
  EXPECT_EQ(parsed->signer_serial, 42u);
  ASSERT_EQ(parsed->chain.size(), 1u);
  EXPECT_EQ(parsed->chain[0].subject, f.vendor_cert.subject);
}

TEST(SigningTest, CodeSignatureParseRejectsGarbage) {
  EXPECT_FALSE(CodeSignature::parse("").has_value());
  EXPECT_FALSE(CodeSignature::parse("SIG1short").has_value());
  SigningFixture f;
  auto driver = f.make_driver();
  sign_image(driver, f.vendor_cert, f.vendor_key);
  auto blob = driver.signature;
  EXPECT_FALSE(CodeSignature::parse(blob.substr(0, blob.size() - 3)));
}

TEST(SigningTest, StolenKeySignsSuccessfully) {
  // Stuxnet's trick: possession of the exfiltrated vendor KeyPair is all the
  // framework (correctly) requires — the PKI cannot tell theft from use.
  SigningFixture f;
  const KeyPair stolen = f.vendor_key;  // attacker copied the key material
  auto driver = f.make_driver();
  sign_image(driver, f.vendor_cert, stolen);
  EXPECT_TRUE(verify_image(driver, f.host_store, f.host_trust, f.now).valid());
}

TEST(SigningTest, MicrosoftPkiGenuineUpdateVerifies) {
  MicrosoftPki ms(sim::make_date(2010, 1, 15), 555);
  CertStore store;
  TrustStore trust;
  ms.install_into(store);
  ms.anchor_root(trust);
  auto update = pe::Builder{}
                    .program("windows.update")
                    .filename("kb12345.exe")
                    .section(".text", "security update", true)
                    .build();
  sign_image(update, ms.update_signing_cert(), ms.update_signing_key());
  EXPECT_TRUE(
      verify_image(update, store, trust, sim::make_date(2012, 5, 1)).valid());
}

}  // namespace
}  // namespace cyd::pki
