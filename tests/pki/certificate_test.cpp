#include "pki/certificate.hpp"

#include <gtest/gtest.h>

#include "pki/trust.hpp"
#include "sim/time.hpp"

namespace cyd::pki {
namespace {

using sim::kDay;

struct Fixture {
  sim::TimePoint now = sim::make_date(2010, 6, 1);
  CertificateAuthority root = CertificateAuthority::create_root(
      "Test Root CA", HashAlgorithm::kStrong64, 0, now + 3650 * kDay, 777);
};

TEST(CertificateTest, RootIsSelfSigned) {
  Fixture f;
  const auto& cert = f.root.certificate();
  EXPECT_TRUE(cert.self_signed());
  EXPECT_EQ(cert.subject, cert.issuer_subject);
  EXPECT_TRUE(cert.has_usage(kUsageCertSign));
}

TEST(CertificateTest, IssuedCertChainsToIssuer) {
  Fixture f;
  const auto key = KeyPair::generate(1);
  const auto cert = f.root.issue("Leaf Corp", kUsageCodeSigning,
                                 HashAlgorithm::kStrong64, 0,
                                 f.now + 365 * kDay, key);
  EXPECT_EQ(cert.issuer_serial, f.root.certificate().serial);
  EXPECT_EQ(cert.issuer_subject, "Test Root CA");
  EXPECT_EQ(cert.public_key_id, key.key_id);
  EXPECT_FALSE(cert.self_signed());
}

TEST(CertificateTest, SerialsAreUniqueAcrossIssuance) {
  Fixture f;
  const auto k = KeyPair::generate(2);
  const auto a = f.root.issue("A", kUsageCodeSigning,
                              HashAlgorithm::kStrong64, 0, f.now, k);
  const auto b = f.root.issue("A", kUsageCodeSigning,
                              HashAlgorithm::kStrong64, 0, f.now, k);
  EXPECT_NE(a.serial, b.serial);
}

TEST(CertificateTest, ValidityWindowEnforced) {
  Fixture f;
  const auto key = KeyPair::generate(3);
  const auto cert = f.root.issue("Leaf", kUsageCodeSigning,
                                 HashAlgorithm::kStrong64, 100 * kDay,
                                 200 * kDay, key);
  EXPECT_FALSE(cert.valid_at(99 * kDay));
  EXPECT_TRUE(cert.valid_at(100 * kDay));
  EXPECT_TRUE(cert.valid_at(200 * kDay));
  EXPECT_FALSE(cert.valid_at(200 * kDay + 1));
}

TEST(CertificateTest, KeyGenerationIsDeterministic) {
  EXPECT_EQ(KeyPair::generate(42).key_id, KeyPair::generate(42).key_id);
  EXPECT_NE(KeyPair::generate(42).key_id, KeyPair::generate(43).key_id);
}

TEST(CertificateTest, TbsBytesChangeWithFields) {
  Fixture f;
  const auto key = KeyPair::generate(4);
  auto cert = f.root.issue("Leaf", kUsageCodeSigning,
                           HashAlgorithm::kStrong64, 0, f.now, key);
  const auto tbs1 = cert.tbs_bytes();
  cert.usage = kUsageLicenseVerification;
  EXPECT_NE(cert.tbs_bytes(), tbs1);
}

TEST(CertificateTest, SerializeParseRoundTrip) {
  Fixture f;
  const auto key = KeyPair::generate(5);
  auto cert = f.root.issue("Round Trip Corp",
                           kUsageCodeSigning | kUsageServerAuth,
                           HashAlgorithm::kStrong64, 10, 20, key);
  cert.collision_padding = "padpadpad";
  const auto parsed = Certificate::parse(cert.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serial, cert.serial);
  EXPECT_EQ(parsed->subject, cert.subject);
  EXPECT_EQ(parsed->usage, cert.usage);
  EXPECT_EQ(parsed->collision_padding, cert.collision_padding);
  EXPECT_EQ(parsed->issuer_sig.tbs_digest, cert.issuer_sig.tbs_digest);
  EXPECT_EQ(parsed->tbs_bytes(), cert.tbs_bytes());
}

TEST(CertificateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Certificate::parse("not a cert").has_value());
  EXPECT_FALSE(Certificate::parse("").has_value());
  Fixture f;
  const auto key = KeyPair::generate(6);
  const auto cert = f.root.issue("X", kUsageCodeSigning,
                                 HashAlgorithm::kStrong64, 0, f.now, key);
  auto bytes = cert.serialize();
  EXPECT_FALSE(Certificate::parse(bytes.substr(0, bytes.size() / 2)));
  bytes += "x";
  EXPECT_FALSE(Certificate::parse(bytes));
}

TEST(CertificateTest, DigestAlgorithmsDiffer) {
  const std::string data = "some tbs bytes";
  EXPECT_NE(digest(HashAlgorithm::kWeakSum, data),
            digest(HashAlgorithm::kStrong64, data));
}

TEST(CertificateTest, WeakDigestIsOrderInsensitive) {
  // The weakness that makes collisions easy: an additive checksum ignores
  // byte order entirely.
  EXPECT_EQ(digest(HashAlgorithm::kWeakSum, "ab"),
            digest(HashAlgorithm::kWeakSum, "ba"));
  EXPECT_NE(digest(HashAlgorithm::kStrong64, "ab"),
            digest(HashAlgorithm::kStrong64, "ba"));
}

TEST(CertificateTest, UsageToStringRendersBits) {
  EXPECT_EQ(usage_to_string(kUsageCodeSigning), "code-signing");
  EXPECT_EQ(usage_to_string(kUsageCodeSigning | kUsageCertSign),
            "code-signing|cert-sign");
  EXPECT_EQ(usage_to_string(0), "none");
}

TEST(CertStoreTest, AddAndFind) {
  Fixture f;
  CertStore store;
  store.add(f.root.certificate());
  EXPECT_NE(store.find(f.root.certificate().serial), nullptr);
  EXPECT_EQ(store.find(0xdeadbeef), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(CertStoreTest, AddOverwritesSameSerial) {
  Fixture f;
  CertStore store;
  auto cert = f.root.certificate();
  store.add(cert);
  cert.subject = "Renamed";
  store.add(cert);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(cert.serial)->subject, "Renamed");
}

TEST(ChainTest, RootValidatesWhenAnchored) {
  Fixture f;
  CertStore store;
  TrustStore trust;
  store.add(f.root.certificate());
  trust.trust_root(f.root.certificate().serial);
  EXPECT_TRUE(verify_chain(f.root.certificate(), store, trust, f.now).ok());
}

TEST(ChainTest, RootFailsWhenNotAnchored) {
  Fixture f;
  CertStore store;
  TrustStore trust;
  const auto result = verify_chain(f.root.certificate(), store, trust, f.now);
  EXPECT_EQ(result.status, ChainStatus::kUntrustedRoot);
}

TEST(ChainTest, LeafThroughSubCaValidates) {
  Fixture f;
  auto sub = f.root.issue_sub_ca("Sub CA", HashAlgorithm::kStrong64, 0,
                                 f.now + 3650 * kDay, 778);
  const auto key = KeyPair::generate(7);
  const auto leaf = sub.issue("Leaf", kUsageCodeSigning,
                              HashAlgorithm::kStrong64, 0,
                              f.now + 365 * kDay, key);
  CertStore store;
  store.add(f.root.certificate());
  store.add(sub.certificate());
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  const auto result = verify_chain(leaf, store, trust, f.now);
  EXPECT_TRUE(result.ok()) << to_string(result.status);
  EXPECT_EQ(result.chain_length, 3);
}

TEST(ChainTest, MissingIntermediateFails) {
  Fixture f;
  auto sub = f.root.issue_sub_ca("Sub CA", HashAlgorithm::kStrong64, 0,
                                 f.now + 3650 * kDay, 779);
  const auto key = KeyPair::generate(8);
  const auto leaf = sub.issue("Leaf", kUsageCodeSigning,
                              HashAlgorithm::kStrong64, 0, f.now, key);
  CertStore store;
  store.add(f.root.certificate());  // sub CA missing
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  EXPECT_EQ(verify_chain(leaf, store, trust, f.now).status,
            ChainStatus::kIncompleteChain);
}

TEST(ChainTest, TamperedCertFailsSignature) {
  Fixture f;
  const auto key = KeyPair::generate(9);
  auto leaf = f.root.issue("Leaf", kUsageCodeSigning,
                           HashAlgorithm::kStrong64, 0, f.now, key);
  leaf.subject = "Tampered Corp";  // mutate after signing
  CertStore store;
  store.add(f.root.certificate());
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  EXPECT_EQ(verify_chain(leaf, store, trust, f.now).status,
            ChainStatus::kBadSignature);
}

TEST(ChainTest, ExpiredLeafFails) {
  Fixture f;
  const auto key = KeyPair::generate(10);
  const auto leaf = f.root.issue("Leaf", kUsageCodeSigning,
                                 HashAlgorithm::kStrong64, 0, 10 * kDay, key);
  CertStore store;
  store.add(f.root.certificate());
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  EXPECT_EQ(verify_chain(leaf, store, trust, 20 * kDay).status,
            ChainStatus::kExpired);
}

TEST(ChainTest, RevokedLeafFails) {
  Fixture f;
  const auto key = KeyPair::generate(11);
  const auto leaf = f.root.issue("Leaf", kUsageCodeSigning,
                                 HashAlgorithm::kStrong64, 0, f.now, key);
  CertStore store;
  store.add(f.root.certificate());
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  trust.mark_untrusted(leaf.serial);
  EXPECT_EQ(verify_chain(leaf, store, trust, f.now).status,
            ChainStatus::kRevoked);
}

TEST(ChainTest, RevokedIntermediateFailsLeaf) {
  Fixture f;
  auto sub = f.root.issue_sub_ca("Sub CA", HashAlgorithm::kStrong64, 0,
                                 f.now + 3650 * kDay, 780);
  const auto key = KeyPair::generate(12);
  const auto leaf = sub.issue("Leaf", kUsageCodeSigning,
                              HashAlgorithm::kStrong64, 0, f.now, key);
  CertStore store;
  store.add(f.root.certificate());
  store.add(sub.certificate());
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  trust.mark_untrusted(sub.certificate().serial);
  EXPECT_EQ(verify_chain(leaf, store, trust, f.now).status,
            ChainStatus::kRevoked);
}

TEST(ChainTest, NonCaIssuerRejected) {
  Fixture f;
  const auto leaf_key = KeyPair::generate(13);
  const auto fake_issuer_key = KeyPair::generate(14);
  const auto fake_issuer =
      f.root.issue("Not A CA", kUsageCodeSigning, HashAlgorithm::kStrong64, 0,
                   f.now, fake_issuer_key);
  // Hand-craft a leaf claiming the non-CA cert as its issuer.
  Certificate leaf;
  leaf.serial = 999;
  leaf.subject = "Evil Leaf";
  leaf.issuer_subject = fake_issuer.subject;
  leaf.issuer_serial = fake_issuer.serial;
  leaf.public_key_id = leaf_key.key_id;
  leaf.usage = kUsageCodeSigning;
  leaf.not_after = f.now + kDay;
  leaf.issuer_sig = IssuerSignature{
      digest(HashAlgorithm::kStrong64, leaf.tbs_bytes()),
      HashAlgorithm::kStrong64, fake_issuer_key.key_id};
  CertStore store;
  store.add(f.root.certificate());
  store.add(fake_issuer);
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  EXPECT_EQ(verify_chain(leaf, store, trust, f.now).status,
            ChainStatus::kInvalidIssuer);
}

TEST(ChainTest, WeakHashPolicyRejectsWeakChains) {
  Fixture f;
  auto weak_sub = f.root.issue_sub_ca("Weak Sub", HashAlgorithm::kWeakSum, 0,
                                      f.now + 3650 * kDay, 781);
  const auto key = KeyPair::generate(15);
  const auto leaf = weak_sub.issue("Leaf", kUsageCodeSigning,
                                   HashAlgorithm::kWeakSum, 0, f.now, key);
  CertStore store;
  store.add(f.root.certificate());
  store.add(weak_sub.certificate());
  TrustStore trust;
  trust.trust_root(f.root.certificate().serial);
  EXPECT_TRUE(verify_chain(leaf, store, trust, f.now).ok());
  trust.set_reject_weak_hash(true);
  EXPECT_EQ(verify_chain(leaf, store, trust, f.now).status,
            ChainStatus::kWeakHashRejected);
}

}  // namespace
}  // namespace cyd::pki
