# Empty dependencies file for fig1_stuxnet_operation.
# This may be replaced when dependencies are built.
