file(REMOVE_RECURSE
  "CMakeFiles/fig1_stuxnet_operation.dir/fig1_stuxnet_operation.cpp.o"
  "CMakeFiles/fig1_stuxnet_operation.dir/fig1_stuxnet_operation.cpp.o.d"
  "fig1_stuxnet_operation"
  "fig1_stuxnet_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_stuxnet_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
