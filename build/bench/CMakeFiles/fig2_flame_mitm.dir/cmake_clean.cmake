file(REMOVE_RECURSE
  "CMakeFiles/fig2_flame_mitm.dir/fig2_flame_mitm.cpp.o"
  "CMakeFiles/fig2_flame_mitm.dir/fig2_flame_mitm.cpp.o.d"
  "fig2_flame_mitm"
  "fig2_flame_mitm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_flame_mitm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
