# Empty compiler generated dependencies file for fig2_flame_mitm.
# This may be replaced when dependencies are built.
