# Empty compiler generated dependencies file for fig3_cert_forgery.
# This may be replaced when dependencies are built.
