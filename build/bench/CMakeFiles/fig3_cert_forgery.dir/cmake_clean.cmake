file(REMOVE_RECURSE
  "CMakeFiles/fig3_cert_forgery.dir/fig3_cert_forgery.cpp.o"
  "CMakeFiles/fig3_cert_forgery.dir/fig3_cert_forgery.cpp.o.d"
  "fig3_cert_forgery"
  "fig3_cert_forgery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cert_forgery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
