file(REMOVE_RECURSE
  "CMakeFiles/trend_d_modularity.dir/trend_d_modularity.cpp.o"
  "CMakeFiles/trend_d_modularity.dir/trend_d_modularity.cpp.o.d"
  "trend_d_modularity"
  "trend_d_modularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_d_modularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
