# Empty dependencies file for trend_d_modularity.
# This may be replaced when dependencies are built.
