file(REMOVE_RECURSE
  "CMakeFiles/fig4_cnc_platform.dir/fig4_cnc_platform.cpp.o"
  "CMakeFiles/fig4_cnc_platform.dir/fig4_cnc_platform.cpp.o.d"
  "fig4_cnc_platform"
  "fig4_cnc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cnc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
