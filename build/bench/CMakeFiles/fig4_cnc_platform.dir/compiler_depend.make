# Empty compiler generated dependencies file for fig4_cnc_platform.
# This may be replaced when dependencies are built.
