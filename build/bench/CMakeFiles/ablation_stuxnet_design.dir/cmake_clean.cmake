file(REMOVE_RECURSE
  "CMakeFiles/ablation_stuxnet_design.dir/ablation_stuxnet_design.cpp.o"
  "CMakeFiles/ablation_stuxnet_design.dir/ablation_stuxnet_design.cpp.o.d"
  "ablation_stuxnet_design"
  "ablation_stuxnet_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stuxnet_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
