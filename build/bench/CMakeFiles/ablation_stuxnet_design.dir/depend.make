# Empty dependencies file for ablation_stuxnet_design.
# This may be replaced when dependencies are built.
