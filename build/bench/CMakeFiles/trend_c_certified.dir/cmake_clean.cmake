file(REMOVE_RECURSE
  "CMakeFiles/trend_c_certified.dir/trend_c_certified.cpp.o"
  "CMakeFiles/trend_c_certified.dir/trend_c_certified.cpp.o.d"
  "trend_c_certified"
  "trend_c_certified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_c_certified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
