# Empty dependencies file for trend_c_certified.
# This may be replaced when dependencies are built.
