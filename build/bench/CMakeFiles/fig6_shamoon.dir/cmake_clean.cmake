file(REMOVE_RECURSE
  "CMakeFiles/fig6_shamoon.dir/fig6_shamoon.cpp.o"
  "CMakeFiles/fig6_shamoon.dir/fig6_shamoon.cpp.o.d"
  "fig6_shamoon"
  "fig6_shamoon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_shamoon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
