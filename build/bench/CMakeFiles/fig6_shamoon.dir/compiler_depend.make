# Empty compiler generated dependencies file for fig6_shamoon.
# This may be replaced when dependencies are built.
