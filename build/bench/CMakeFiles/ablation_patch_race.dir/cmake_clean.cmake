file(REMOVE_RECURSE
  "CMakeFiles/ablation_patch_race.dir/ablation_patch_race.cpp.o"
  "CMakeFiles/ablation_patch_race.dir/ablation_patch_race.cpp.o.d"
  "ablation_patch_race"
  "ablation_patch_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_patch_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
