# Empty compiler generated dependencies file for ablation_patch_race.
# This may be replaced when dependencies are built.
