file(REMOVE_RECURSE
  "CMakeFiles/trend_b_targeting.dir/trend_b_targeting.cpp.o"
  "CMakeFiles/trend_b_targeting.dir/trend_b_targeting.cpp.o.d"
  "trend_b_targeting"
  "trend_b_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_b_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
