# Empty dependencies file for trend_b_targeting.
# This may be replaced when dependencies are built.
