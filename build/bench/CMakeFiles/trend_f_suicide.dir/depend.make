# Empty dependencies file for trend_f_suicide.
# This may be replaced when dependencies are built.
