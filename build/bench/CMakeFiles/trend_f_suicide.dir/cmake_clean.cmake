file(REMOVE_RECURSE
  "CMakeFiles/trend_f_suicide.dir/trend_f_suicide.cpp.o"
  "CMakeFiles/trend_f_suicide.dir/trend_f_suicide.cpp.o.d"
  "trend_f_suicide"
  "trend_f_suicide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_f_suicide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
