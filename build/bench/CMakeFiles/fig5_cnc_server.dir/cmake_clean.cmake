file(REMOVE_RECURSE
  "CMakeFiles/fig5_cnc_server.dir/fig5_cnc_server.cpp.o"
  "CMakeFiles/fig5_cnc_server.dir/fig5_cnc_server.cpp.o.d"
  "fig5_cnc_server"
  "fig5_cnc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cnc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
