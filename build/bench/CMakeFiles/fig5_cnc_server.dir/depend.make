# Empty dependencies file for fig5_cnc_server.
# This may be replaced when dependencies are built.
