file(REMOVE_RECURSE
  "CMakeFiles/trend_e_usb.dir/trend_e_usb.cpp.o"
  "CMakeFiles/trend_e_usb.dir/trend_e_usb.cpp.o.d"
  "trend_e_usb"
  "trend_e_usb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_e_usb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
