# Empty dependencies file for trend_e_usb.
# This may be replaced when dependencies are built.
