file(REMOVE_RECURSE
  "CMakeFiles/trend_a_sophistication.dir/trend_a_sophistication.cpp.o"
  "CMakeFiles/trend_a_sophistication.dir/trend_a_sophistication.cpp.o.d"
  "trend_a_sophistication"
  "trend_a_sophistication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_a_sophistication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
