
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/trend_a_sophistication.cpp" "bench/CMakeFiles/trend_a_sophistication.dir/trend_a_sophistication.cpp.o" "gcc" "bench/CMakeFiles/trend_a_sophistication.dir/trend_a_sophistication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cyberdissect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
