# Empty dependencies file for trend_a_sophistication.
# This may be replaced when dependencies are built.
