# Empty dependencies file for attribution_matrix.
# This may be replaced when dependencies are built.
