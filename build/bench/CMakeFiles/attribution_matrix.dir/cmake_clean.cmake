file(REMOVE_RECURSE
  "CMakeFiles/attribution_matrix.dir/attribution_matrix.cpp.o"
  "CMakeFiles/attribution_matrix.dir/attribution_matrix.cpp.o.d"
  "attribution_matrix"
  "attribution_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribution_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
