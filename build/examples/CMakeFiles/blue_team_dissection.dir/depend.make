# Empty dependencies file for blue_team_dissection.
# This may be replaced when dependencies are built.
