file(REMOVE_RECURSE
  "CMakeFiles/blue_team_dissection.dir/blue_team_dissection.cpp.o"
  "CMakeFiles/blue_team_dissection.dir/blue_team_dissection.cpp.o.d"
  "blue_team_dissection"
  "blue_team_dissection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blue_team_dissection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
