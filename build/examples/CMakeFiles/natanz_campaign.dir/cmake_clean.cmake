file(REMOVE_RECURSE
  "CMakeFiles/natanz_campaign.dir/natanz_campaign.cpp.o"
  "CMakeFiles/natanz_campaign.dir/natanz_campaign.cpp.o.d"
  "natanz_campaign"
  "natanz_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/natanz_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
