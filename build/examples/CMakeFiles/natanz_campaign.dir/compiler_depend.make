# Empty compiler generated dependencies file for natanz_campaign.
# This may be replaced when dependencies are built.
