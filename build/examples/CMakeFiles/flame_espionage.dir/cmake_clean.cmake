file(REMOVE_RECURSE
  "CMakeFiles/flame_espionage.dir/flame_espionage.cpp.o"
  "CMakeFiles/flame_espionage.dir/flame_espionage.cpp.o.d"
  "flame_espionage"
  "flame_espionage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flame_espionage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
