# Empty dependencies file for flame_espionage.
# This may be replaced when dependencies are built.
