# Empty compiler generated dependencies file for campaign_timeline.
# This may be replaced when dependencies are built.
