file(REMOVE_RECURSE
  "CMakeFiles/campaign_timeline.dir/campaign_timeline.cpp.o"
  "CMakeFiles/campaign_timeline.dir/campaign_timeline.cpp.o.d"
  "campaign_timeline"
  "campaign_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
