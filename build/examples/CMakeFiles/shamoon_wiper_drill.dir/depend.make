# Empty dependencies file for shamoon_wiper_drill.
# This may be replaced when dependencies are built.
