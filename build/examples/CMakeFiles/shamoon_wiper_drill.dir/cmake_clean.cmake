file(REMOVE_RECURSE
  "CMakeFiles/shamoon_wiper_drill.dir/shamoon_wiper_drill.cpp.o"
  "CMakeFiles/shamoon_wiper_drill.dir/shamoon_wiper_drill.cpp.o.d"
  "shamoon_wiper_drill"
  "shamoon_wiper_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shamoon_wiper_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
