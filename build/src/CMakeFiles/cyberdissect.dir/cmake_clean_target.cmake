file(REMOVE_RECURSE
  "libcyberdissect.a"
)
