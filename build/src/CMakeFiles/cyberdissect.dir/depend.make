# Empty dependencies file for cyberdissect.
# This may be replaced when dependencies are built.
