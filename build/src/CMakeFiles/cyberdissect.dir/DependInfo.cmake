
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/av.cpp" "src/CMakeFiles/cyberdissect.dir/analysis/av.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/analysis/av.cpp.o.d"
  "/root/repo/src/analysis/forensics.cpp" "src/CMakeFiles/cyberdissect.dir/analysis/forensics.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/analysis/forensics.cpp.o.d"
  "/root/repo/src/analysis/ioc.cpp" "src/CMakeFiles/cyberdissect.dir/analysis/ioc.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/analysis/ioc.cpp.o.d"
  "/root/repo/src/analysis/sandbox.cpp" "src/CMakeFiles/cyberdissect.dir/analysis/sandbox.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/analysis/sandbox.cpp.o.d"
  "/root/repo/src/analysis/similarity.cpp" "src/CMakeFiles/cyberdissect.dir/analysis/similarity.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/analysis/similarity.cpp.o.d"
  "/root/repo/src/analysis/static_analysis.cpp" "src/CMakeFiles/cyberdissect.dir/analysis/static_analysis.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/analysis/static_analysis.cpp.o.d"
  "/root/repo/src/analysis/yara.cpp" "src/CMakeFiles/cyberdissect.dir/analysis/yara.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/analysis/yara.cpp.o.d"
  "/root/repo/src/cnc/attack_center.cpp" "src/CMakeFiles/cyberdissect.dir/cnc/attack_center.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/cnc/attack_center.cpp.o.d"
  "/root/repo/src/cnc/crypto.cpp" "src/CMakeFiles/cyberdissect.dir/cnc/crypto.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/cnc/crypto.cpp.o.d"
  "/root/repo/src/cnc/database.cpp" "src/CMakeFiles/cyberdissect.dir/cnc/database.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/cnc/database.cpp.o.d"
  "/root/repo/src/cnc/domains.cpp" "src/CMakeFiles/cyberdissect.dir/cnc/domains.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/cnc/domains.cpp.o.d"
  "/root/repo/src/cnc/server.cpp" "src/CMakeFiles/cyberdissect.dir/cnc/server.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/cnc/server.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/cyberdissect.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/common/bytes.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/cyberdissect.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/user_behavior.cpp" "src/CMakeFiles/cyberdissect.dir/core/user_behavior.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/core/user_behavior.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/CMakeFiles/cyberdissect.dir/core/world.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/core/world.cpp.o.d"
  "/root/repo/src/exploits/patching.cpp" "src/CMakeFiles/cyberdissect.dir/exploits/patching.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/exploits/patching.cpp.o.d"
  "/root/repo/src/exploits/vuln.cpp" "src/CMakeFiles/cyberdissect.dir/exploits/vuln.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/exploits/vuln.cpp.o.d"
  "/root/repo/src/malware/duqu/duqu.cpp" "src/CMakeFiles/cyberdissect.dir/malware/duqu/duqu.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/duqu/duqu.cpp.o.d"
  "/root/repo/src/malware/flame/flame.cpp" "src/CMakeFiles/cyberdissect.dir/malware/flame/flame.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/flame/flame.cpp.o.d"
  "/root/repo/src/malware/flame/lualite.cpp" "src/CMakeFiles/cyberdissect.dir/malware/flame/lualite.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/flame/lualite.cpp.o.d"
  "/root/repo/src/malware/gauss/gauss.cpp" "src/CMakeFiles/cyberdissect.dir/malware/gauss/gauss.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/gauss/gauss.cpp.o.d"
  "/root/repo/src/malware/shamoon/shamoon.cpp" "src/CMakeFiles/cyberdissect.dir/malware/shamoon/shamoon.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/shamoon/shamoon.cpp.o.d"
  "/root/repo/src/malware/stuxnet/c2.cpp" "src/CMakeFiles/cyberdissect.dir/malware/stuxnet/c2.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/stuxnet/c2.cpp.o.d"
  "/root/repo/src/malware/stuxnet/plc_payload.cpp" "src/CMakeFiles/cyberdissect.dir/malware/stuxnet/plc_payload.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/stuxnet/plc_payload.cpp.o.d"
  "/root/repo/src/malware/stuxnet/stuxnet.cpp" "src/CMakeFiles/cyberdissect.dir/malware/stuxnet/stuxnet.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/stuxnet/stuxnet.cpp.o.d"
  "/root/repo/src/malware/tracker.cpp" "src/CMakeFiles/cyberdissect.dir/malware/tracker.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/malware/tracker.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/cyberdissect.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/net/network.cpp.o.d"
  "/root/repo/src/net/stack.cpp" "src/CMakeFiles/cyberdissect.dir/net/stack.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/net/stack.cpp.o.d"
  "/root/repo/src/pe/image.cpp" "src/CMakeFiles/cyberdissect.dir/pe/image.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/pe/image.cpp.o.d"
  "/root/repo/src/pki/certificate.cpp" "src/CMakeFiles/cyberdissect.dir/pki/certificate.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/pki/certificate.cpp.o.d"
  "/root/repo/src/pki/forgery.cpp" "src/CMakeFiles/cyberdissect.dir/pki/forgery.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/pki/forgery.cpp.o.d"
  "/root/repo/src/pki/licensing.cpp" "src/CMakeFiles/cyberdissect.dir/pki/licensing.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/pki/licensing.cpp.o.d"
  "/root/repo/src/pki/signing.cpp" "src/CMakeFiles/cyberdissect.dir/pki/signing.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/pki/signing.cpp.o.d"
  "/root/repo/src/pki/trust.cpp" "src/CMakeFiles/cyberdissect.dir/pki/trust.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/pki/trust.cpp.o.d"
  "/root/repo/src/scada/centrifuge.cpp" "src/CMakeFiles/cyberdissect.dir/scada/centrifuge.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/scada/centrifuge.cpp.o.d"
  "/root/repo/src/scada/plc.cpp" "src/CMakeFiles/cyberdissect.dir/scada/plc.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/scada/plc.cpp.o.d"
  "/root/repo/src/scada/profibus.cpp" "src/CMakeFiles/cyberdissect.dir/scada/profibus.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/scada/profibus.cpp.o.d"
  "/root/repo/src/scada/safety.cpp" "src/CMakeFiles/cyberdissect.dir/scada/safety.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/scada/safety.cpp.o.d"
  "/root/repo/src/scada/step7.cpp" "src/CMakeFiles/cyberdissect.dir/scada/step7.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/scada/step7.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/cyberdissect.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/cyberdissect.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/cyberdissect.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/cyberdissect.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/sim/time.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/cyberdissect.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/sim/trace.cpp.o.d"
  "/root/repo/src/winsys/disk.cpp" "src/CMakeFiles/cyberdissect.dir/winsys/disk.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/winsys/disk.cpp.o.d"
  "/root/repo/src/winsys/drivers.cpp" "src/CMakeFiles/cyberdissect.dir/winsys/drivers.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/winsys/drivers.cpp.o.d"
  "/root/repo/src/winsys/filesystem.cpp" "src/CMakeFiles/cyberdissect.dir/winsys/filesystem.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/winsys/filesystem.cpp.o.d"
  "/root/repo/src/winsys/host.cpp" "src/CMakeFiles/cyberdissect.dir/winsys/host.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/winsys/host.cpp.o.d"
  "/root/repo/src/winsys/path.cpp" "src/CMakeFiles/cyberdissect.dir/winsys/path.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/winsys/path.cpp.o.d"
  "/root/repo/src/winsys/registry.cpp" "src/CMakeFiles/cyberdissect.dir/winsys/registry.cpp.o" "gcc" "src/CMakeFiles/cyberdissect.dir/winsys/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
