file(REMOVE_RECURSE
  "CMakeFiles/pe_tests.dir/pe/image_test.cpp.o"
  "CMakeFiles/pe_tests.dir/pe/image_test.cpp.o.d"
  "CMakeFiles/pe_tests.dir/pe/robustness_test.cpp.o"
  "CMakeFiles/pe_tests.dir/pe/robustness_test.cpp.o.d"
  "pe_tests"
  "pe_tests.pdb"
  "pe_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
