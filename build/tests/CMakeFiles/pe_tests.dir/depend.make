# Empty dependencies file for pe_tests.
# This may be replaced when dependencies are built.
