# Empty compiler generated dependencies file for cnc_tests.
# This may be replaced when dependencies are built.
