file(REMOVE_RECURSE
  "CMakeFiles/cnc_tests.dir/cnc/crypto_test.cpp.o"
  "CMakeFiles/cnc_tests.dir/cnc/crypto_test.cpp.o.d"
  "CMakeFiles/cnc_tests.dir/cnc/server_test.cpp.o"
  "CMakeFiles/cnc_tests.dir/cnc/server_test.cpp.o.d"
  "cnc_tests"
  "cnc_tests.pdb"
  "cnc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
