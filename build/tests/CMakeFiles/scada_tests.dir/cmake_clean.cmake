file(REMOVE_RECURSE
  "CMakeFiles/scada_tests.dir/scada/centrifuge_test.cpp.o"
  "CMakeFiles/scada_tests.dir/scada/centrifuge_test.cpp.o.d"
  "CMakeFiles/scada_tests.dir/scada/plc_test.cpp.o"
  "CMakeFiles/scada_tests.dir/scada/plc_test.cpp.o.d"
  "CMakeFiles/scada_tests.dir/scada/step7_test.cpp.o"
  "CMakeFiles/scada_tests.dir/scada/step7_test.cpp.o.d"
  "scada_tests"
  "scada_tests.pdb"
  "scada_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scada_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
