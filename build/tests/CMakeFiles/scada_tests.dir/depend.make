# Empty dependencies file for scada_tests.
# This may be replaced when dependencies are built.
