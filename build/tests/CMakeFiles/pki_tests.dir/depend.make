# Empty dependencies file for pki_tests.
# This may be replaced when dependencies are built.
