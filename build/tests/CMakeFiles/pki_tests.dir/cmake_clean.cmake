file(REMOVE_RECURSE
  "CMakeFiles/pki_tests.dir/pki/certificate_test.cpp.o"
  "CMakeFiles/pki_tests.dir/pki/certificate_test.cpp.o.d"
  "CMakeFiles/pki_tests.dir/pki/forgery_test.cpp.o"
  "CMakeFiles/pki_tests.dir/pki/forgery_test.cpp.o.d"
  "CMakeFiles/pki_tests.dir/pki/signing_test.cpp.o"
  "CMakeFiles/pki_tests.dir/pki/signing_test.cpp.o.d"
  "pki_tests"
  "pki_tests.pdb"
  "pki_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pki_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
