# Empty dependencies file for winsys_tests.
# This may be replaced when dependencies are built.
