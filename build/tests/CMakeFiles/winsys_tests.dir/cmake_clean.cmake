file(REMOVE_RECURSE
  "CMakeFiles/winsys_tests.dir/winsys/disk_test.cpp.o"
  "CMakeFiles/winsys_tests.dir/winsys/disk_test.cpp.o.d"
  "CMakeFiles/winsys_tests.dir/winsys/filesystem_test.cpp.o"
  "CMakeFiles/winsys_tests.dir/winsys/filesystem_test.cpp.o.d"
  "CMakeFiles/winsys_tests.dir/winsys/host_test.cpp.o"
  "CMakeFiles/winsys_tests.dir/winsys/host_test.cpp.o.d"
  "CMakeFiles/winsys_tests.dir/winsys/path_test.cpp.o"
  "CMakeFiles/winsys_tests.dir/winsys/path_test.cpp.o.d"
  "CMakeFiles/winsys_tests.dir/winsys/registry_test.cpp.o"
  "CMakeFiles/winsys_tests.dir/winsys/registry_test.cpp.o.d"
  "winsys_tests"
  "winsys_tests.pdb"
  "winsys_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winsys_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
