
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/winsys/disk_test.cpp" "tests/CMakeFiles/winsys_tests.dir/winsys/disk_test.cpp.o" "gcc" "tests/CMakeFiles/winsys_tests.dir/winsys/disk_test.cpp.o.d"
  "/root/repo/tests/winsys/filesystem_test.cpp" "tests/CMakeFiles/winsys_tests.dir/winsys/filesystem_test.cpp.o" "gcc" "tests/CMakeFiles/winsys_tests.dir/winsys/filesystem_test.cpp.o.d"
  "/root/repo/tests/winsys/host_test.cpp" "tests/CMakeFiles/winsys_tests.dir/winsys/host_test.cpp.o" "gcc" "tests/CMakeFiles/winsys_tests.dir/winsys/host_test.cpp.o.d"
  "/root/repo/tests/winsys/path_test.cpp" "tests/CMakeFiles/winsys_tests.dir/winsys/path_test.cpp.o" "gcc" "tests/CMakeFiles/winsys_tests.dir/winsys/path_test.cpp.o.d"
  "/root/repo/tests/winsys/registry_test.cpp" "tests/CMakeFiles/winsys_tests.dir/winsys/registry_test.cpp.o" "gcc" "tests/CMakeFiles/winsys_tests.dir/winsys/registry_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cyberdissect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
