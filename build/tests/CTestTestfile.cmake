# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/pe_tests[1]_include.cmake")
include("/root/repo/build/tests/winsys_tests[1]_include.cmake")
include("/root/repo/build/tests/scada_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/malware_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/exploits_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/cnc_tests[1]_include.cmake")
include("/root/repo/build/tests/pki_tests[1]_include.cmake")
