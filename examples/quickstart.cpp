// Quickstart: the cyberdissect API in ~80 lines.
//
// Builds a five-host office, seeds a Stuxnet-armed USB stick, watches the
// worm spread, then runs the analyst side: YARA sweep + forensics.

#include <cstdio>

#include "analysis/forensics.hpp"
#include "analysis/yara.hpp"
#include "core/scenario.hpp"
#include "core/user_behavior.hpp"
#include "malware/stuxnet/stuxnet.hpp"

using namespace cyd;

int main() {
  // 1) A world: simulation clock + network + registries, all deterministic.
  core::World world(/*seed=*/42);
  world.add_internet_landmarks();

  // 2) Five vulnerable office workstations.
  core::FleetSpec spec;
  spec.count = 5;
  auto fleet = core::make_office_fleet(world, spec);

  // 3) The Stuxnet family object: registers its behaviours, deploys its C2.
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker());

  // 4) Initial access: a crafted stick plugged into workstation 0.
  auto& stick = world.add_usb("conference-giveaway");
  stuxnet.arm_usb(stick);
  fleet[0]->plug_usb(stick);

  // 5) Let two simulated weeks pass (beacons, spooler spreading, ...).
  world.sim().run_for(sim::days(14));

  std::printf("== campaign ==\n");
  std::printf("infected hosts : %zu / %zu\n",
              world.tracker().infected_count("stuxnet"), fleet.size());
  for (const auto& [vector, count] :
       world.tracker().infections_by_vector("stuxnet")) {
    std::printf("  via %-18s %zu\n", vector.c_str(), count);
  }
  std::printf("C2 check-ins   : %zu victims\n",
              stuxnet.c2().victim_count());

  // 6) Blue team: sweep every host with a YARA rule and examine the worst.
  const auto rules = analysis::RuleSet::parse(R"(
rule Stuxnet_Artifacts {
  meta: family = stuxnet
  strings:
    $a = "~wtr4132"
    $b = "mrxcls"
  condition: any of them
})");
  std::size_t total_hits = 0;
  for (auto* host : fleet) total_hits += rules.scan_host(*host).size();
  std::printf("yara hits      : %zu artifacts across the fleet\n",
              total_hits);

  const auto forensics = analysis::examine_host(
      *fleet[0], {"~wtr", "mrxcls", "oem7a", "mypremierfutbol"});
  std::printf("forensics(ws0) : %zu live artifacts, recoverability %.0f%%\n",
              forensics.live_artifacts.size(),
              100.0 * forensics.recoverability());

  std::printf("\ntrace tail:\n%s",
              world.sim().trace().render_tail(6).c_str());
  return 0;
}
