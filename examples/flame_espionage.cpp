// Paper §III: a Flame espionage operation end-to-end — C&C fleet, targeted
// infections, two-phase collection, WPAD/Windows-Update MITM spreading with
// a forged certificate, USB ferry across an air gap, and finally SUICIDE.

#include <cstdio>

#include "cnc/attack_center.hpp"
#include "cnc/domains.hpp"
#include "core/scenario.hpp"
#include "core/user_behavior.hpp"
#include "malware/flame/flame.hpp"
#include "pki/forgery.hpp"

using namespace cyd;

int main() {
  core::World world(/*seed=*/0xf1a);
  world.add_internet_landmarks();

  // --- attacker infrastructure: 20 domains on 4 servers, one center ---
  cnc::AttackCenter center(world.sim(), 0xc0ffee);
  auto fleet_rng = world.rng().fork();
  const auto domains = cnc::DomainFleet::generate(20, 4, fleet_rng);
  std::vector<std::unique_ptr<cnc::CncServer>> servers;
  for (int s = 0; s < 4; ++s) {
    auto server_domains =
        cnc::DomainFleet::domains_of(domains, "cc-" + std::to_string(s));
    servers.push_back(std::make_unique<cnc::CncServer>(
        world.sim(), "cc-" + std::to_string(s), server_domains,
        center.upload_key()));
    servers.back()->deploy(world.network());
    servers.back()->start_purge_task();
    center.manage(*servers.back());
  }
  center.start_collection_task(sim::hours(4));

  // --- the malware, armed with the forged Terminal Services certificate ---
  malware::flame::FlameConfig config;
  for (std::size_t i = 0; i < 5; ++i) config.default_domains.push_back(domains[i].domain);
  for (std::size_t i = 0; i < 10; ++i) config.extended_domains.push_back(domains[i].domain);
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());
  auto activation = world.microsoft().activate_license_server("AnyCorp");
  auto forged = pki::forge_code_signing_cert(activation.license_cert,
                                             "MS", 0xf00d);
  flame.set_forged_signer(forged->certificate, forged->private_key);

  // --- victims: a ministry LAN + an air-gapped research cell ---
  core::FleetSpec ministry;
  ministry.name_prefix = "ministry";
  ministry.subnet = "ministry";
  ministry.count = 12;
  ministry.vulns.push_back(exploits::VulnId::kWpadNetbios);
  auto hosts = core::make_office_fleet(world, ministry);
  for (auto* host : hosts) {
    core::schedule_browsing(world, *host, sim::hours(5));
    core::schedule_wu_checks(world, *host, sim::days(1));
    core::schedule_document_work(world, *host, sim::days(2));
  }
  hosts[3]->registry().set("hklm\\hardware\\audio", "microphone",
                           std::uint32_t{1});
  hosts[3]->bluetooth().present = true;
  hosts[3]->bluetooth().nearby_devices = {"diplomat-phone", "driver-phone"};

  core::FleetSpec cell;
  cell.name_prefix = "research";
  cell.subnet = "research-cell";
  cell.count = 3;
  cell.internet_pct = 0;  // fully air-gapped
  auto cell_hosts = core::make_office_fleet(world, cell);

  // Patient zero plus a direct implant in the cell.
  flame.infect(*hosts[0], "targeted-drop");
  flame.infect(*cell_hosts[0], "contractor-visit");

  // A courier stick moves between the connected ministry and the cell.
  auto& stick = world.add_usb("ministry-courier");
  core::schedule_usb_courier(world, stick, {hosts[0], cell_hosts[0]},
                             sim::hours(12));

  std::printf("%-6s %-9s %-8s %-12s %-10s %-8s\n", "week", "infected",
              "mitm", "exfil-bytes", "ferry-out", "entries");
  for (int week = 1; week <= 10; ++week) {
    world.sim().run_for(7 * sim::kDay);
    std::size_t entries = 0;
    for (const auto& server : servers) entries += server->entries().size();
    auto* cell_inf = malware::flame::Flame::find(*cell_hosts[0]);
    std::printf("%-6d %-9zu %-8zu %-12llu %-10d %-8zu\n", week,
                world.tracker().infected_count("flame"),
                flame.mitm_infections(),
                static_cast<unsigned long long>(center.archived_bytes()),
                cell_inf != nullptr ? cell_inf->usb_ferry_writes : 0,
                entries);
  }

  std::printf("\ndocuments in the coordinator's archive: %zu\n",
              center.archive().size());
  std::printf("victims known to the platform: ");
  std::size_t clients = 0;
  for (const auto& server : servers) clients += server->known_clients().size();
  std::printf("%zu client ids across %zu servers\n", clients, servers.size());

  // --- discovery day: the kill switch ---
  center.order_suicide();
  world.sim().run_for(sim::days(2));
  std::size_t active = 0;
  for (auto* host : world.hosts()) {
    auto* inf = malware::flame::Flame::find(*host);
    if (inf != nullptr && inf->active()) ++active;
  }
  std::printf("after SUICIDE broadcast: %zu active infections remain "
              "(air-gapped implants outlive the kill switch)\n",
              active);
  return 0;
}
