// The whole campaign the paper chronicles, on one clock:
//   2010        Stuxnet tears through Natanz
//   2011-09     Duqu surfaces: targeted espionage, per-victim builds
//   2012-05     Flame is discovered ... and SUICIDEs overnight
//   2012-06     Gauss: banking espionage + the encrypted Godel warhead
//   2012-08-15  Shamoon bricks the oil company
// One World, five families, the tracker as the historian.

#include <cstdio>

#include "cnc/attack_center.hpp"
#include "core/scenario.hpp"
#include "core/user_behavior.hpp"
#include "malware/duqu/duqu.hpp"
#include "malware/flame/flame.hpp"
#include "malware/gauss/gauss.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"

using namespace cyd;

namespace {

void status(core::World& world, const char* note) {
  std::printf("%s  %-44s", sim::format_time(world.sim().now()).substr(0, 10).c_str(),
              note);
  for (const char* family : {"stuxnet", "duqu", "flame", "gauss", "shamoon"}) {
    std::printf(" %s=%-3zu", family, world.tracker().infected_count(family));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::World world(/*seed=*/0x2010);
  world.add_internet_landmarks();

  // --- the region: an enrichment site, ministries, banks, an oil major ---
  auto natanz = core::build_natanz_site(world, {});
  core::FleetSpec ministry_spec;
  ministry_spec.name_prefix = "ministry";
  ministry_spec.subnet = "ministry";
  ministry_spec.count = 12;
  ministry_spec.vulns.push_back(exploits::VulnId::kWpadNetbios);
  auto ministry = core::make_office_fleet(world, ministry_spec);
  core::FleetSpec bank_spec;
  bank_spec.name_prefix = "bank";
  bank_spec.subnet = "bank";
  bank_spec.count = 8;
  auto banks = core::make_office_fleet(world, bank_spec);
  core::FleetSpec oil_spec;
  oil_spec.name_prefix = "oilco";
  oil_spec.subnet = "oilco";
  oil_spec.count = 60;
  auto oilco = core::make_office_fleet(world, oil_spec);

  std::printf("world: %zu hosts across 4 organisations + %zu cascade PLCs\n\n",
              world.host_count(), natanz.cascades.size());

  // =========== 2010: Stuxnet ===========
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker());
  auto& stick = world.add_usb("integrator-stick");
  stuxnet.arm_usb(stick);
  core::schedule_usb_courier(world, stick,
                             {natanz.office[0], natanz.eng_laptop},
                             sim::hours(9));
  const auto project = natanz.step7->create_project("a26");
  core::schedule_engineering_work(world, *natanz.step7, project,
                                  natanz.cascades[0], sim::days(1));
  status(world, "2010-01: Stuxnet stick seeded at Natanz");
  world.sim().run_until(sim::make_date(2010, 12, 1));
  status(world, "centrifuges destroyed so far:");
  std::printf("          -> %zu of %zu rotors dead, safety systems silent\n",
              natanz.destroyed_centrifuges(), natanz.total_centrifuges());

  // =========== 2011-09: Duqu ===========
  malware::duqu::Duqu duqu_family(world.sim(), world.network(),
                                  world.programs(), world.tracker());
  duqu_family.deploy_cnc(world.network());
  world.sim().run_until(sim::make_date(2011, 9, 1));
  for (auto* target : {ministry[2], ministry[5]}) {
    target->make_vulnerable(exploits::VulnId::kMs11_087_Ttf);
    duqu_family.open_document(
        *target, duqu_family.build_spearphish_document("b-" + target->name()));
  }
  status(world, "2011-09: Duqu spear-phish hits two CA suppliers");

  // =========== 2012: Flame (already resident for years) ===========
  cnc::AttackCenter center(world.sim(), 0x2012);
  malware::flame::FlameConfig flame_config;
  flame_config.default_domains = {"traffic-spot.biz", "quick-net.info"};
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(),
                              flame_config);
  flame.set_upload_key(center.upload_key());
  cnc::CncServer cc(world.sim(), "cc-0", flame_config.default_domains,
                    center.upload_key());
  cc.deploy(world.network());
  cc.start_purge_task();
  center.manage(cc);
  center.start_collection_task(sim::hours(6));
  for (auto* host : {ministry[0], ministry[1], ministry[7]}) {
    flame.infect(*host, "targeted-drop");
  }
  world.sim().run_until(sim::make_date(2012, 5, 28));
  status(world, "2012-05: Kaspersky finds Flame while hunting Wiper");
  std::printf("          -> %zu documents in the coordinator archive\n",
              center.archive().size());
  center.order_suicide();
  world.sim().run_until(sim::make_date(2012, 6, 5));
  std::size_t active_flame = 0;
  for (auto* host : world.hosts()) {
    auto* inf = malware::flame::Flame::find(*host);
    if (inf != nullptr && inf->active()) ++active_flame;
  }
  status(world, "2012-06: SUICIDE broadcast; Flame goes dark");
  std::printf("          -> active Flame implants remaining: %zu\n",
              active_flame);

  // =========== 2012-06: Gauss ===========
  malware::gauss::Gauss gauss(world.sim(), world.network(),
                              world.programs(), world.tracker());
  gauss.set_upload_key(center.upload_key());
  gauss.deploy_cnc(world.network());
  for (auto* branch : {banks[0], banks[3]}) {
    branch->fs().write_file("c:\\users\\teller\\blombank-session.dat", "s",
                            world.sim().now());
    gauss.infect(*branch, "drive-by");
  }
  world.sim().run_until(sim::make_date(2012, 8, 1));
  status(world, "2012-06..08: Gauss works the banks");

  // =========== 2012-08-15 08:08: Shamoon ===========
  malware::shamoon::Shamoon shamoon(world.sim(), world.network(),
                                    world.programs(), world.tracker());
  shamoon.deploy_reporter_sink(world.network());
  auto eldos_ca = pki::CertificateAuthority::create_root(
      "Commercial Root", pki::HashAlgorithm::kStrong64, 0, sim::days(20000),
      9);
  auto eldos_key = pki::KeyPair::generate(10);
  auto eldos_cert = eldos_ca.issue("EldoS Corporation",
                                   pki::kUsageCodeSigning,
                                   pki::HashAlgorithm::kStrong64, 0,
                                   sim::days(20000), eldos_key);
  for (auto* host : oilco) {
    host->cert_store().add(eldos_ca.certificate());
    host->trust_store().trust_root(eldos_ca.certificate().serial);
  }
  auto driver = pe::Builder{}
                    .program(malware::shamoon::Shamoon::kDriverProgram)
                    .filename("drdisk.sys")
                    .build();
  pki::sign_image(driver, eldos_cert, eldos_key);
  shamoon.set_disk_driver(driver);
  shamoon.infect(*oilco[0], "spear-phish");
  world.sim().run_until(sim::make_date(2012, 8, 15, 8, 7));
  status(world, "2012-08-15 08:07: one minute before the kill date");
  world.sim().run_until(sim::make_date(2012, 8, 16));
  status(world, "2012-08-16: the morning after");
  std::printf("          -> %zu oilco workstations unbootable, %zu reports "
              "reached the attackers\n",
              world.count_unbootable(), shamoon.reports().size());

  // =========== the historian's ledger ===========
  std::printf("\ncampaign ledger (tracker):\n");
  for (const char* family : {"stuxnet", "duqu", "flame", "gauss", "shamoon"}) {
    std::printf("  %-8s infections=%-4zu exfil-events=%-5zu uninstalls=%-3zu "
                "destruction-events=%zu\n",
                family, world.tracker().infected_count(family),
                world.tracker().count(
                    malware::CampaignEventKind::kExfiltration, family),
                world.tracker().count(malware::CampaignEventKind::kUninstall,
                                      family),
                world.tracker().count(
                    malware::CampaignEventKind::kDestruction, family));
  }
  return 0;
}
