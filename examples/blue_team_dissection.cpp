// The analyst's chair: dissect captured specimens the way the paper's
// sources did — static triage with resource carving, sandbox detonation,
// IOC extraction, rule generation, and signature rollout to a defended
// fleet.

#include <cstdio>

#include "analysis/av.hpp"
#include "analysis/ioc.hpp"
#include "analysis/sandbox.hpp"
#include "analysis/static_analysis.hpp"
#include "core/scenario.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "malware/stuxnet/stuxnet.hpp"

using namespace cyd;

namespace {

void print_static(const analysis::StaticReport& report, int indent) {
  std::printf("%*s%s\n", indent, "", report.summary().c_str());
  for (const auto& res : report.resources) {
    std::printf("%*s  resource %u \"%s\": %zu bytes, entropy %.2f%s", indent,
                "", res.id, res.name.c_str(), res.size, res.entropy,
                res.xor_encrypted ? ", XOR" : "");
    if (res.recovered_xor_key) {
      std::printf(" (key 0x%02X recovered)", *res.recovered_xor_key);
    }
    std::printf("\n");
    if (res.embedded) print_static(*res.embedded, indent + 4);
  }
}

}  // namespace

int main() {
  // --- specimen acquisition (a throwaway world provides the builders) ---
  core::World lab(/*seed=*/0xb1ce);
  malware::shamoon::Shamoon shamoon(lab.sim(), lab.network(),
                                    lab.programs(), lab.tracker());
  shamoon.set_disk_driver(
      pe::Builder{}
          .program(malware::shamoon::Shamoon::kDriverProgram)
          .filename("drdisk.sys")
          .build());
  malware::stuxnet::Stuxnet stuxnet(lab.sim(), lab.network(),
                                    lab.programs(), lab.s7_registry(),
                                    lab.tracker());
  const auto shamoon_bytes = shamoon.build_trksvr().serialize();
  const auto stuxnet_bytes = stuxnet.build_dropper().serialize();

  // --- step 1: static dissection (paper Fig. 6) ---
  std::printf("=== static dissection: TrkSvr.exe (%zu bytes) ===\n",
              shamoon_bytes.size());
  pki::CertStore store;
  pki::TrustStore trust;
  const auto report = analysis::dissect(shamoon_bytes, store, trust,
                                        sim::make_date(2012, 8, 20));
  print_static(report, 0);
  std::printf("strings of interest:\n");
  int shown = 0;
  for (const auto& s : report.strings) {
    if (s.find("mof") != std::string::npos ||
        s.find("logic") != std::string::npos) {
      std::printf("  \"%s\"\n", s.c_str());
      if (++shown >= 4) break;
    }
  }

  // --- step 2: sandbox detonation of the Stuxnet dropper ---
  std::printf("\n=== sandbox detonation: ~wtr4132.tmp ===\n");
  analysis::Sandbox sandbox(
      {}, [](sim::Simulation& simulation, net::Network& network,
             winsys::ProgramRegistry& programs, winsys::Host&) {
        static std::unique_ptr<scada::S7ProxyRegistry> proxies;
        static std::unique_ptr<malware::InfectionTracker> tracker;
        static std::unique_ptr<malware::stuxnet::Stuxnet> family;
        proxies = std::make_unique<scada::S7ProxyRegistry>();
        tracker = std::make_unique<malware::InfectionTracker>();
        family = std::make_unique<malware::stuxnet::Stuxnet>(
            simulation, network, programs, *proxies, *tracker);
      });
  const auto behavior = sandbox.detonate(stuxnet_bytes, 72 * sim::kHour);
  std::printf("verdict: %s\n", behavior.summary().c_str());
  for (const auto& f : behavior.files_written) {
    std::printf("  dropped %s\n", f.c_str());
  }
  for (const auto& d : behavior.domains_contacted) {
    std::printf("  contacted %s\n", d.c_str());
  }

  // --- step 3: IOCs and rules ---
  const auto iocs = analysis::extract_iocs(behavior, "W32.Stuxnet");
  std::printf("\n=== IOC set (%zu indicators) ===\n", iocs.size());
  for (const auto& i : iocs.indicators()) std::printf("  %s\n", i.c_str());

  // --- step 4: roll signatures out to a defended fleet ---
  std::printf("\n=== signature rollout ===\n");
  core::World prod(/*seed=*/0xde7ec7);
  prod.add_internet_landmarks();
  core::FleetSpec spec;
  spec.count = 10;
  auto fleet = core::make_office_fleet(prod, spec);
  analysis::SignatureFeed feed;
  feed.publish_sample("W32.Stuxnet!dropper", stuxnet_bytes, prod.sim().now());
  for (auto* host : fleet) analysis::AvProduct::install(*host, feed);

  malware::stuxnet::Stuxnet prod_stux(prod.sim(), prod.network(),
                                      prod.programs(), prod.s7_registry(),
                                      prod.tracker());
  auto& stick = prod.add_usb("second-wave-stick");
  prod_stux.arm_usb(stick);
  fleet[0]->plug_usb(stick);
  prod.sim().run_for(sim::days(7));

  std::size_t detections = 0;
  for (auto* host : fleet) {
    if (auto* av = analysis::AvProduct::find(*host)) {
      detections += av->detections().size();
    }
  }
  std::printf("infections with signatures deployed: %zu (detections: %zu)\n",
              prod.tracker().infected_count("stuxnet"), detections);
  return 0;
}
