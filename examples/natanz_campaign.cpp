// The full paper §II scenario: Stuxnet against a Natanz-like enrichment
// site. Crosses the air gap on a contractor's stick, strikes the cabled
// cascade PLC, and destroys centrifuges while the HMI and digital safety
// system watch replayed-normal telemetry.

#include <cstdio>

#include "core/scenario.hpp"
#include "core/user_behavior.hpp"
#include "malware/stuxnet/stuxnet.hpp"

using namespace cyd;

int main() {
  core::World world(/*seed=*/0x57);
  world.add_internet_landmarks();

  core::NatanzSpec site_spec;
  site_spec.cascade_count = 6;
  site_spec.centrifuges_per_cascade = 164;  // 984 machines total
  auto site = core::build_natanz_site(world, site_spec);

  malware::stuxnet::StuxnetConfig config;
  config.plc_timing.observe_window = sim::days(13);
  config.plc_timing.cover_duration = sim::days(27);
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);

  // Initial access: the integrator engineer's stick, armed by the attacker,
  // travels between an office PC and the air-gapped engineering laptop.
  auto& stick = world.add_usb("integrator-stick");
  stuxnet.arm_usb(stick);
  core::schedule_usb_courier(world, stick,
                             {site.office[0], site.eng_laptop},
                             sim::hours(8));

  // Engineering routine: each day the engineer cables a cascade, opens the
  // project, and does block maintenance. Rotate across all six cascades.
  for (std::size_t c = 0; c < site.cascades.size(); ++c) {
    const auto project = site.step7->create_project(
        "cascade-a2" + std::to_string(1 + c));
    world.sim().after(sim::hours(static_cast<std::int64_t>(c) * 4), [&world,
                       &site, project, c] {
      core::schedule_engineering_work(world, *site.step7, project,
                                      site.cascades[c], sim::days(3));
    });
  }

  std::printf("%-12s %-10s %-11s %-10s %-9s %-7s\n", "date", "infected",
              "destroyed", "hmi-avg", "actual", "safety");
  for (int month = 0; month < 12; ++month) {
    world.sim().run_for(30 * sim::kDay);
    double hmi = 0, actual = 0;
    for (auto* plc : site.cascades) {
      hmi += plc->reported_frequency();
      actual += plc->actual_frequency();
    }
    hmi /= static_cast<double>(site.cascades.size());
    actual /= static_cast<double>(site.cascades.size());
    std::printf("%-12s %-10zu %4zu/%-6zu %-10.0f %-9.0f %-7s\n",
                sim::format_time(world.sim().now()).substr(0, 10).c_str(),
                world.tracker().infected_count("stuxnet"),
                site.destroyed_centrifuges(), site.total_centrifuges(), hmi,
                actual, site.any_safety_tripped() ? "TRIPPED" : "quiet");
  }

  auto* infection = malware::stuxnet::Stuxnet::find(*site.eng_laptop);
  std::printf("\nengineering laptop infected: %s\n",
              infection != nullptr ? "yes" : "no");
  if (infection != nullptr) {
    std::printf("  vector: %s, plc struck: %s, dll replaced: %s\n",
                infection->vector().c_str(),
                infection->plc_payload_injected ? "yes" : "no",
                infection->step7_dll_replaced ? "yes" : "no");
  }
  std::printf("centrifuges destroyed: %zu of %zu — operators saw: %s\n",
              site.destroyed_centrifuges(), site.total_centrifuges(),
              site.any_safety_tripped() ? "alarms" : "nothing at all");
  return 0;
}
