// Paper §IV: a Shamoon tabletop drill on a 200-host enterprise — lateral
// movement through open admin shares, the 08:08 kill date, the burning-flag
// overwrite, the Eldos driver MBR stage, and what hardening would have
// changed. Compare the "soft" and "hardened" halves of the fleet.

#include <cstdio>

#include "core/scenario.hpp"
#include "malware/shamoon/shamoon.hpp"
#include "pki/signing.hpp"

using namespace cyd;

int main() {
  core::World world(/*seed=*/0xa44a);
  world.add_internet_landmarks();

  // One corp subnet, two postures: the first 100 machines expose writable
  // admin shares (pre-incident reality), the rest are hardened.
  core::FleetSpec spec;
  spec.name_prefix = "hq";
  spec.subnet = "corp";
  spec.count = 200;
  spec.documents_per_host = 5;
  auto fleet = core::make_office_fleet(world, spec);
  for (std::size_t i = 100; i < fleet.size(); ++i) {
    fleet[i]->patch(exploits::VulnId::kOpenNetworkShares);
  }

  malware::shamoon::ShamoonConfig config;
  config.kill_date = sim::make_date(2012, 8, 15, 8, 8);
  config.spread_period = sim::minutes(30);
  malware::shamoon::Shamoon shamoon(world.sim(), world.network(),
                                    world.programs(), world.tracker(),
                                    config);
  shamoon.deploy_reporter_sink(world.network());

  // The Eldos-signed driver: every host trusts the issuing root.
  auto ca = pki::CertificateAuthority::create_root(
      "Commercial Root CA", pki::HashAlgorithm::kStrong64, 0,
      sim::days(20000), 7);
  auto eldos_key = pki::KeyPair::generate(8);
  auto eldos_cert = ca.issue("EldoS Corporation", pki::kUsageCodeSigning,
                             pki::HashAlgorithm::kStrong64, 0,
                             sim::days(20000), eldos_key);
  for (auto* host : fleet) {
    host->cert_store().add(ca.certificate());
    host->trust_store().trust_root(ca.certificate().serial);
  }
  auto driver = pe::Builder{}
                    .program(malware::shamoon::Shamoon::kDriverProgram)
                    .filename("drdisk.sys")
                    .section(".text", "raw disk i/o", true)
                    .build();
  pki::sign_image(driver, eldos_cert, eldos_key, {});
  shamoon.set_disk_driver(driver);

  // Patient zero: a spear-phished workstation, three weeks before 08:08.
  world.sim().run_until(sim::make_date(2012, 7, 25));
  shamoon.infect(*fleet[0], "spear-phish");

  std::printf("%-12s %-10s %-10s %-9s\n", "date", "infected", "bricked",
              "reports");
  const sim::TimePoint checkpoints[] = {
      sim::make_date(2012, 8, 1),  sim::make_date(2012, 8, 14),
      sim::make_date(2012, 8, 15, 9, 0), sim::make_date(2012, 8, 16)};
  for (const auto checkpoint : checkpoints) {
    world.sim().run_until(checkpoint);
    std::printf("%-12s %-10zu %-10zu %-9zu\n",
                sim::format_time(checkpoint).substr(0, 16).c_str(),
                world.tracker().infected_count("shamoon"),
                world.count_unbootable(), shamoon.reports().size());
  }

  std::size_t soft_bricked = 0, hard_bricked = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i]->state() == winsys::HostState::kUnbootable) {
      (i < 100 ? soft_bricked : hard_bricked) += 1;
    }
  }
  std::printf("\nsoft half (open shares) bricked: %zu/100\n", soft_bricked);
  std::printf("hardened half bricked:           %zu/100\n", hard_bricked);

  // What a destroyed workstation looks like afterwards.
  const auto body = fleet[0]->fs().read_file(
      "c:\\users\\staff\\documents\\report-0.docx");
  if (body) {
    std::printf("sample wiped document: %zu bytes, header %s\n", body->size(),
                common::to_hex(body->substr(0, 4)).c_str());
  }
  std::printf("reporter told the attacker about %zu machines before they "
              "died\n", shamoon.reports().size());
  return 0;
}
