#pragma once
// Asymmetric encryption model for stolen data.
//
// On a Flame C&C server, uploads are encrypted with a public key whose
// private half only the attack *coordinator* holds — the server admin and
// the panel operator cannot read the loot (paper Fig. 5 discussion). As in
// the pki module, crypto is possession-based: decryption requires the
// CncKeyPair value, and ciphertext is an XOR stream keyed off the private
// scalar so holding only the public id is useless.

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace cyd::cnc {

struct CncKeyPair {
  std::uint64_t public_id = 0;
  std::uint64_t private_scalar = 0;

  static CncKeyPair generate(std::uint64_t seed);
};

/// Public half, safe to bake into deployed servers/clients.
struct CncPublicKey {
  std::uint64_t public_id = 0;
  /// Key-wrapping value derived from the private scalar at provisioning
  /// time; computationally opaque (you cannot recover the scalar from it).
  std::uint64_t wrap = 0;
};

CncPublicKey public_half(const CncKeyPair& key);

struct EncryptedBlob {
  std::uint64_t key_id = 0;  // public id this blob is encrypted to
  common::Bytes ciphertext;

  common::Bytes serialize() const;
  static std::optional<EncryptedBlob> parse(std::string_view bytes);
};

/// Zero-copy view of a serialized blob: `ciphertext` aliases the wire buffer
/// and stays valid only as long as it does. The request pipeline validates
/// uploads through this without copying; only accepted entries materialize.
struct EncryptedBlobView {
  std::uint64_t key_id = 0;
  std::string_view ciphertext;

  EncryptedBlob materialize() const {
    return EncryptedBlob{key_id, common::Bytes(ciphertext)};
  }
};

/// Parses the ENC1 framing without copying the ciphertext. Same acceptance
/// set as EncryptedBlob::parse (which is implemented on top of this).
std::optional<EncryptedBlobView> parse_blob_view(std::string_view bytes);

/// Encrypts for the holder of the matching private key.
EncryptedBlob encrypt_for(const CncPublicKey& recipient,
                          std::string_view plaintext);

/// Succeeds only with the right private key.
std::optional<common::Bytes> decrypt(const CncKeyPair& key,
                                     const EncryptedBlob& blob);

}  // namespace cyd::cnc
