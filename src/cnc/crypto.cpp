#include "cnc/crypto.hpp"

#include "sim/rng.hpp"

namespace cyd::cnc {
namespace {

/// Deterministic keystream for a blob. Seeded from the *private* scalar so
/// that, at the model level, producing the stream requires key possession;
/// encrypt_for gets the same stream through the wrap value provisioned into
/// the public half.
common::Bytes keystream(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed ^ 0xc0dec0dec0dec0deULL);
  return common::random_bytes(rng, n);
}

std::uint64_t derive_public(std::uint64_t private_scalar) {
  common::Bytes material("cnc-pub");
  common::put_u64(material, private_scalar);
  return common::fnv1a64(material);
}

std::uint64_t derive_wrap(std::uint64_t private_scalar) {
  common::Bytes material("cnc-wrap");
  common::put_u64(material, private_scalar);
  return common::fnv1a64(material);
}

}  // namespace

CncKeyPair CncKeyPair::generate(std::uint64_t seed) {
  CncKeyPair key;
  common::Bytes material("cnc-priv");
  common::put_u64(material, seed);
  key.private_scalar = common::fnv1a64(material);
  key.public_id = derive_public(key.private_scalar);
  return key;
}

CncPublicKey public_half(const CncKeyPair& key) {
  return CncPublicKey{key.public_id, derive_wrap(key.private_scalar)};
}

common::Bytes EncryptedBlob::serialize() const {
  common::Bytes out("ENC1");
  common::put_u64(out, key_id);
  out.append(ciphertext);
  return out;
}

std::optional<EncryptedBlob> EncryptedBlob::parse(std::string_view bytes) {
  const auto view = parse_blob_view(bytes);
  if (!view) return std::nullopt;
  return view->materialize();
}

std::optional<EncryptedBlobView> parse_blob_view(std::string_view bytes) {
  if (bytes.size() < 12 || bytes.substr(0, 4) != "ENC1") return std::nullopt;
  EncryptedBlobView view;
  view.key_id = common::get_u64(bytes, 4);
  view.ciphertext = bytes.substr(12);
  return view;
}

EncryptedBlob encrypt_for(const CncPublicKey& recipient,
                          std::string_view plaintext) {
  EncryptedBlob blob;
  blob.key_id = recipient.public_id;
  blob.ciphertext = common::xor_cipher(
      plaintext, keystream(recipient.wrap, plaintext.size()));
  return blob;
}

std::optional<common::Bytes> decrypt(const CncKeyPair& key,
                                     const EncryptedBlob& blob) {
  if (derive_public(key.private_scalar) != blob.key_id) return std::nullopt;
  return common::xor_cipher(
      blob.ciphertext,
      keystream(derive_wrap(key.private_scalar), blob.ciphertext.size()));
}

}  // namespace cyd::cnc
