#include "cnc/pipeline.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace cyd::cnc {

std::uint64_t checksum_mix_bytes(std::uint64_t h, std::string_view bytes) {
  // Length first so "ab"+"c" and "a"+"bc" digest differently even though the
  // concatenated FNV would not distinguish the splits.
  return checksum_mix(checksum_mix(h, bytes.size()), common::fnv1a64(bytes));
}

std::uint64_t RequestEngine::fold_response(std::uint64_t h,
                                           const net::HttpResponse& response) {
  h = checksum_mix(h, static_cast<std::uint64_t>(response.status));
  return checksum_mix_bytes(h, response.body);
}

void RequestEngine::log_access(sim::TimePoint now, std::string_view verb,
                               std::string_view client, std::string_view key,
                               std::string_view value) {
  if (!logging_enabled_) return;
  if (access_log_.size() >= access_log_cap_ && access_log_cap_ > 0) {
    // Halving retention (Host::log_event pattern): shed the oldest half so a
    // beacon storm cannot grow the log without bound, keep the newest lines
    // a forensic pass actually wants, and count what was lost.
    const std::size_t drop = access_log_.size() / 2 + 1;
    access_log_.erase(access_log_.begin(),
                      access_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    access_log_dropped_ += drop;
  }
  std::string line;
  line.reserve(32 + verb.size() + client.size() + key.size() + value.size());
  sim::format_time_to(line, now);
  line += ' ';
  line += verb;
  line += " client=";
  line += client;
  line += ' ';
  line += key;
  line += '=';
  line += value;
  access_log_.push_back(std::move(line));
}

ClientState& RequestEngine::contact(std::string_view client_id,
                                    std::string_view type,
                                    sim::TimePoint now) {
  const std::uint32_t index = index_.get_or_create(client_id);
  ClientState& s = index_.state(index);
  if (s.contacts == 0) {
    // First actual contact — an earlier push_ad may have created the state,
    // but like the seed's database it gets a row (and a type) only now.
    s.type.assign(type);
    s.first_seen = now;
    contact_order_.push_back(index);
  }
  s.last_seen = now;
  ++s.contacts;
  if (!s.touched) {
    s.touched = true;
    touched_.push_back(index);
  }
  return s;
}

net::HttpResponse RequestEngine::do_get_news(const DecodedRequest& d,
                                             sim::TimePoint now,
                                             Outcome& outcome) {
  ++counters_.get_news;
  log_access(now, "GET_NEWS", d.client, "type", d.type);
  ClientState& s = contact(d.client, d.type, now);

  // Broadcast news the client has not seen yet: news_ is sorted by seq (the
  // seqs are handed out monotonically), so the unseen suffix starts at the
  // first seq > last_news_seq.
  const auto news_begin = std::lower_bound(
      news_.begin(), news_.end(), s.last_news_seq,
      [](const auto& entry, std::uint64_t seen) { return entry.first <= seen; });
  const std::size_t ads_n = s.ads.size();
  const std::size_t news_n =
      static_cast<std::size_t>(news_.end() - news_begin);

  // Serialize straight into the response body — no intermediate `delivery`
  // vector, no payload copies for the ads. Targeted commands first, each
  // delivered exactly once, matching the seed's ordering byte for byte.
  common::Bytes body("PLS1");
  common::put_u32(body, static_cast<std::uint32_t>(ads_n + news_n));
  for (const Payload& p : s.ads) {
    common::put_u32(body, static_cast<std::uint32_t>(p.name.size()));
    body.append(p.name);
    common::put_u32(body, static_cast<std::uint32_t>(p.data.size()));
    body.append(p.data);
  }
  for (auto it = news_begin; it != news_.end(); ++it) {
    const Payload& p = it->second;
    common::put_u32(body, static_cast<std::uint32_t>(p.name.size()));
    body.append(p.name);
    common::put_u32(body, static_cast<std::uint32_t>(p.data.size()));
    body.append(p.data);
  }

  counters_.pending_ads -= ads_n;
  s.ads.clear();
  if (news_n > 0) s.last_news_seq = news_.back().first;

  outcome.client = d.client;
  outcome.delivered = ads_n + news_n;
  return net::HttpResponse{200, std::move(body)};
}

net::HttpResponse RequestEngine::do_add_entry(const DecodedRequest& d,
                                              sim::TimePoint now,
                                              Outcome& outcome) {
  // decode_request already validated the UPL1 body, so reaching here means
  // the upload is accepted — the one place the wire bytes are copied.
  ClientState& s = contact(d.client, d.type, now);
  (void)s;
  Entry entry;
  entry.id = next_entry_id_++;
  entry.client_id.assign(d.client);
  entry.client_type.assign(d.type);
  entry.data_name.assign(d.upload.data_name);
  entry.blob = d.upload.blob.materialize();
  entry.received_at = now;
  counters_.upload_bytes += entry.blob.ciphertext.size();
  ++counters_.uploads;
  entries_.push_back(std::move(entry));

  log_access(now, "ADD_ENTRY", d.client, "name", entries_.back().data_name);
  outcome.client = d.client;
  outcome.data_name = entries_.back().data_name;
  return net::HttpResponse{200, "OK"};
}

net::HttpResponse RequestEngine::handle(const net::HttpRequest& request,
                                        sim::TimePoint now,
                                        Outcome* outcome) {
  Outcome local;
  Outcome& o = outcome != nullptr ? *outcome : local;
  o = Outcome{};
  const DecodedRequest d = decode_request(request);
  o.verb = d.verb;
  net::HttpResponse response;
  switch (d.verb) {
    case RequestVerb::kGetNews:
      response = do_get_news(d, now, o);
      break;
    case RequestVerb::kAddEntry:
      response = do_add_entry(d, now, o);
      break;
    case RequestVerb::kInvalid:
      ++counters_.rejected;
      response = net::HttpResponse{d.error_status, {}};
      break;
  }
  response_chain_ = fold_response(response_chain_, response);
  return response;
}

std::vector<net::HttpResponse> RequestEngine::handle_batch(
    std::span<const net::HttpRequest> requests, sim::TimePoint now) {
  std::vector<net::HttpResponse> responses;
  responses.reserve(requests.size());
  for (const net::HttpRequest& request : requests) {
    responses.push_back(handle(request, now));
  }
  return responses;
}

void RequestEngine::push_ad(std::string_view client_id, Payload payload) {
  const std::uint32_t index = index_.get_or_create(client_id);
  index_.state(index).ads.push_back(std::move(payload));
  ++counters_.pending_ads;
}

void RequestEngine::push_news(Payload payload) {
  news_.emplace_back(next_news_seq_++, std::move(payload));
}

std::vector<Entry> RequestEngine::take_new_entries() {
  // Everything before the watermark was returned by an earlier call; only
  // the new suffix is visited, so pickup cost tracks pending work, not the
  // server's full upload history.
  const std::size_t scanned = entries_.size() - retrieved_mark_;
  scan_stats_.last_pickup_scanned = scanned;
  scan_stats_.total_pickup_scanned += scanned;
  std::vector<Entry> out;
  out.reserve(scanned);
  for (std::size_t i = retrieved_mark_; i < entries_.size(); ++i) {
    entries_[i].retrieved = true;
    out.push_back(entries_[i]);
  }
  retrieved_mark_ = entries_.size();
  return out;
}

std::size_t RequestEngine::purge_retrieved(sim::TimePoint cutoff) {
  // Invariant: entries_[0..retrieved_mark_) are retrieved and received_at is
  // nondecreasing (simulated time is monotonic, and retrieval happens in
  // arrival order). The purgeable set is therefore a prefix — the scan stops
  // at the first young entry and never touches pending uploads.
  std::size_t k = 0;
  while (k < retrieved_mark_ && entries_[k].received_at <= cutoff) ++k;
  const std::size_t scanned = k < retrieved_mark_ ? k + 1 : k;
  scan_stats_.last_purge_scanned = scanned;
  scan_stats_.total_purge_scanned += scanned;
  if (k > 0) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(k));
    retrieved_mark_ -= k;
  }
  return k;
}

std::uint64_t RequestEngine::state_checksum() const {
  std::uint64_t h = kChecksumBasis;
  h = checksum_mix(h, counters_.get_news);
  h = checksum_mix(h, counters_.uploads);
  h = checksum_mix(h, counters_.upload_bytes);
  h = checksum_mix(h, counters_.rejected);
  h = checksum_mix(h, counters_.pending_ads);
  // Client states in first-contact order — the same order the seed's table
  // acquires rows, so the seed path can digest its rows comparably.
  for (const std::uint32_t index : contact_order_) {
    const ClientState& s = index_.state(index);
    h = checksum_mix_bytes(h, index_.id_of(s));
    h = checksum_mix_bytes(h, s.type);
    h = checksum_mix(h, s.contacts);
    h = checksum_mix(h, s.last_news_seq);
  }
  for (const Entry& e : entries_) {
    h = checksum_mix_bytes(h, e.client_id);
    h = checksum_mix_bytes(h, e.data_name);
    h = checksum_mix(h, e.blob.key_id);
    h = checksum_mix_bytes(h, e.blob.ciphertext);
    h = checksum_mix(h, static_cast<std::uint64_t>(e.received_at));
    h = checksum_mix(h, e.retrieved ? 1u : 0u);
    h = checksum_mix(h, e.id);
  }
  h = checksum_mix(h, retrieved_mark_);
  h = checksum_mix(h, news_.size());
  h = checksum_mix(h, next_news_seq_);
  h = checksum_mix(h, next_entry_id_);
  return h;
}

StormMerge merge_storm(std::span<const RequestEngine> shards) {
  StormMerge merge;
  for (const RequestEngine& shard : shards) {
    const RequestEngine::Counters& c = shard.counters();
    merge.totals.get_news += c.get_news;
    merge.totals.uploads += c.uploads;
    merge.totals.upload_bytes += c.upload_bytes;
    merge.totals.rejected += c.rejected;
    merge.totals.pending_ads += c.pending_ads;
    merge.clients += shard.contacted_clients();
    merge.entries += shard.entries().size();
    merge.response_checksum =
        checksum_mix(merge.response_checksum, shard.response_chain());
    merge.state_checksum =
        checksum_mix(merge.state_checksum, shard.state_checksum());
  }
  return merge;
}

}  // namespace cyd::cnc
