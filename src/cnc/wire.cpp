#include "cnc/wire.hpp"

namespace cyd::cnc {

common::Bytes serialize_payloads(const std::vector<Payload>& payloads) {
  common::Bytes out("PLS1");
  common::put_u32(out, static_cast<std::uint32_t>(payloads.size()));
  for (const auto& p : payloads) {
    common::put_u32(out, static_cast<std::uint32_t>(p.name.size()));
    out.append(p.name);
    common::put_u32(out, static_cast<std::uint32_t>(p.data.size()));
    out.append(p.data);
  }
  return out;
}

bool parse_payload_views(std::string_view bytes,
                         std::vector<PayloadView>& out) {
  out.clear();
  if (bytes.size() < 8 || bytes.substr(0, 4) != "PLS1") return false;
  std::size_t off = 4;
  const std::uint32_t count = common::get_u32(bytes, off);
  off += 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    // All bounds checks are explicit subtractions against the remaining
    // length, so a lying length field can neither read past the buffer nor
    // throw on the hot path.
    if (bytes.size() - off < 4) { out.clear(); return false; }
    const std::uint32_t name_len = common::get_u32(bytes, off);
    off += 4;
    if (name_len > bytes.size() - off) { out.clear(); return false; }
    const std::string_view name = bytes.substr(off, name_len);
    off += name_len;
    if (bytes.size() - off < 4) { out.clear(); return false; }
    const std::uint32_t data_len = common::get_u32(bytes, off);
    off += 4;
    if (data_len > bytes.size() - off) { out.clear(); return false; }
    out.push_back(PayloadView{name, bytes.substr(off, data_len)});
    off += data_len;
  }
  return true;
}

std::vector<Payload> parse_payloads(std::string_view bytes) {
  std::vector<PayloadView> views;
  std::vector<Payload> out;
  if (!parse_payload_views(bytes, views)) return out;
  out.reserve(views.size());
  for (const auto& view : views) out.push_back(view.materialize());
  return out;
}

common::Bytes serialize_entry_upload(const std::string& data_name,
                                     const EncryptedBlob& blob) {
  common::Bytes out("UPL1");
  common::put_u32(out, static_cast<std::uint32_t>(data_name.size()));
  out.append(data_name);
  out.append(blob.serialize());
  return out;
}

std::optional<EntryUploadView> parse_entry_upload_view(std::string_view body) {
  if (body.size() < 8 || body.substr(0, 4) != "UPL1") return std::nullopt;
  const std::uint32_t name_len = common::get_u32(body, 4);
  if (name_len > body.size() - 8) return std::nullopt;
  const auto blob = parse_blob_view(body.substr(8 + name_len));
  if (!blob) return std::nullopt;
  return EntryUploadView{body.substr(8, name_len), *blob};
}

DecodedRequest decode_request(const net::HttpRequest& request) {
  DecodedRequest d;
  if (request.path != "/newsforyou") {
    d.error_status = 404;
    return d;
  }
  const auto cmd = request.params.find("cmd");
  if (cmd == request.params.end()) {
    d.error_status = 400;
    return d;
  }
  const bool get_news = cmd->second == "GET_NEWS";
  const bool add_entry = !get_news && cmd->second == "ADD_ENTRY";
  if (!get_news && !add_entry) {
    d.error_status = 400;
    return d;
  }
  const auto client = request.params.find("client");
  if (client == request.params.end()) {
    d.error_status = 400;
    return d;
  }
  d.client = client->second;
  const auto type = request.params.find("type");
  d.type = type == request.params.end() ? std::string_view(kClientTypeFl)
                                        : std::string_view(type->second);
  if (add_entry) {
    const auto upload = parse_entry_upload_view(request.body);
    if (!upload) {
      d.error_status = 400;
      return d;
    }
    d.upload = *upload;
    d.verb = RequestVerb::kAddEntry;
  } else {
    d.verb = RequestVerb::kGetNews;
  }
  return d;
}

}  // namespace cyd::cnc
