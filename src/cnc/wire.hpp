#pragma once
// Wire formats of the newsforyou dead-drop, plus the zero-copy decode layer.
//
// Two framings travel over the C&C HTTP endpoint: PLS1 (a counted list of
// named payloads, the GET_NEWS response) and UPL1 (one named encrypted blob,
// the ADD_ENTRY request body). Both exist in an owned form (Payload — what
// clients and the attack center hold on to) and a view form (PayloadView /
// EntryUploadView — string_view slices over the wire buffer, valid only as
// long as it is). The server's request pipeline validates and dispatches
// entirely on views; bytes are copied exactly once, when an accepted upload
// is stored as an Entry. The view parsers accept exactly the same inputs as
// the owned parsers retained from the malformed-input hardening pass — the
// equivalence is property-tested over that corpus.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cnc/crypto.hpp"
#include "common/bytes.hpp"
#include "net/message.hpp"
#include "sim/time.hpp"

namespace cyd::cnc {

/// Client type tags observed on real Flame infrastructure: Flame itself was
/// only one of four supported client families.
inline constexpr const char* kClientTypeFl = "FL";
inline constexpr const char* kClientTypeSp = "SP";
inline constexpr const char* kClientTypeSpe = "SPE";
inline constexpr const char* kClientTypeIp = "IP";

struct Payload {
  std::string name;
  common::Bytes data;
};

/// Zero-copy slice of one payload inside a PLS1 buffer.
struct PayloadView {
  std::string_view name;
  std::string_view data;

  Payload materialize() const {
    return Payload{std::string(name), common::Bytes(data)};
  }
};

struct Entry {
  std::uint64_t id = 0;
  std::string client_id;
  std::string client_type;
  std::string data_name;
  EncryptedBlob blob;
  sim::TimePoint received_at = 0;
  bool retrieved = false;  // picked up by the attack center
};

// --- PLS1: counted payload list ---
common::Bytes serialize_payloads(const std::vector<Payload>& payloads);
/// Owned parse; empty vector on any malformed input (and for a valid empty
/// list — the callers treat both as "nothing delivered").
std::vector<Payload> parse_payloads(std::string_view bytes);
/// Zero-copy parse into `out` (cleared first). Returns false — with `out`
/// empty — on exactly the inputs parse_payloads rejects.
bool parse_payload_views(std::string_view bytes, std::vector<PayloadView>& out);

// --- UPL1: one named encrypted upload ---
common::Bytes serialize_entry_upload(const std::string& data_name,
                                     const EncryptedBlob& blob);
/// Zero-copy view of an UPL1 body: the name and ciphertext alias the buffer.
struct EntryUploadView {
  std::string_view data_name;
  EncryptedBlobView blob;
};
std::optional<EntryUploadView> parse_entry_upload_view(std::string_view body);

// --- request decode ---
enum class RequestVerb : std::uint8_t {
  kInvalid,   ///< rejected; DecodedRequest::error_status says how
  kGetNews,
  kAddEntry,
};

/// A fully validated request, decoded without copying: `client`, `type` and
/// the upload views alias the HttpRequest they were decoded from. `verb` is
/// kGetNews/kAddEntry only when every check the handler needs has already
/// passed (path, cmd, client param, and — for ADD_ENTRY — the UPL1 body).
struct DecodedRequest {
  RequestVerb verb = RequestVerb::kInvalid;
  int error_status = 0;  ///< 404 or 400 when verb == kInvalid
  std::string_view client;
  std::string_view type;  ///< defaults to kClientTypeFl
  EntryUploadView upload;  ///< ADD_ENTRY only
};

DecodedRequest decode_request(const net::HttpRequest& request);

}  // namespace cyd::cnc
