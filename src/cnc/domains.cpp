#include "cnc/domains.hpp"

#include <set>

namespace cyd::cnc {
namespace {

const char* kWordsA[] = {"traffic", "quick",  "smart",  "flush",  "banner",
                         "dns",     "net",    "web",    "video",  "news",
                         "auto",    "chrome", "update", "sync",   "mega"};
const char* kWordsB[] = {"spot", "mask", "board", "portal", "cloud",
                         "desk", "line", "zone",  "link",   "hub"};
const char* kTlds[] = {".com", ".net", ".org", ".info", ".biz"};
const char* kRegistrars[] = {"GoDaddy",     "eNom",     "Tucows",
                             "NameCheap",   "1&1",      "OVH",
                             "Key-Systems", "Directi"};
const char* kFirstNames[] = {"Adolph", "Karl",   "Ivan",  "Traian",
                             "Georg",  "Stefan", "Peter", "Lukas"};
const char* kLastNames[] = {"Dybevek", "Schmidt", "Weber",  "Lucescu",
                            "Gruber",  "Huber",   "Keller", "Maier"};
// "fake addresses mostly in Germany and Austria": weight those countries.
const char* kCountries[] = {"Germany", "Germany", "Germany", "Austria",
                            "Austria", "Czechia", "Poland",  "Switzerland"};

template <std::size_t N>
const char* pick_from(const char* const (&pool)[N], sim::Rng& rng) {
  return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(N) - 1))];
}

}  // namespace

std::vector<DomainRecord> DomainFleet::generate(std::size_t domain_count,
                                                std::size_t server_count,
                                                sim::Rng& rng) {
  std::vector<DomainRecord> fleet;
  fleet.reserve(domain_count);
  std::set<std::string> used;
  while (fleet.size() < domain_count) {
    DomainRecord record;
    record.domain = std::string(pick_from(kWordsA, rng)) +
                    pick_from(kWordsB, rng) + pick_from(kTlds, rng);
    if (!used.insert(record.domain).second) {
      // Collision: append a counter-like suffix to keep the domain unique.
      record.domain = record.domain.substr(0, record.domain.rfind('.')) +
                      std::to_string(fleet.size()) +
                      record.domain.substr(record.domain.rfind('.'));
      if (!used.insert(record.domain).second) continue;
    }
    record.registrar = pick_from(kRegistrars, rng);
    record.registrant = std::string(pick_from(kFirstNames, rng)) + " " +
                        pick_from(kLastNames, rng);
    record.registrant_country = pick_from(kCountries, rng);
    record.server_id =
        "cc-" + std::to_string(fleet.size() % (server_count == 0 ? 1 : server_count));
    fleet.push_back(std::move(record));
  }
  return fleet;
}

std::vector<std::string> DomainFleet::domains_of(
    const std::vector<DomainRecord>& fleet, const std::string& server_id) {
  std::vector<std::string> out;
  for (const auto& record : fleet) {
    if (record.server_id == server_id) out.push_back(record.domain);
  }
  return out;
}

std::size_t DomainFleet::registrar_count(
    const std::vector<DomainRecord>& fleet) {
  std::set<std::string> distinct;
  for (const auto& record : fleet) distinct.insert(record.registrar);
  return distinct.size();
}

std::size_t DomainFleet::country_count(
    const std::vector<DomainRecord>& fleet) {
  std::set<std::string> distinct;
  for (const auto& record : fleet) distinct.insert(record.registrant_country);
  return distinct.size();
}

}  // namespace cyd::cnc
