#include "cnc/client_index.hpp"

#include "common/bytes.hpp"

namespace cyd::cnc {

namespace {
constexpr std::size_t kInitialSlots = 64;  // power of two
}

ClientIndex::ClientIndex() : slots_(kInitialSlots, kEmptySlot) {
  mask_ = kInitialSlots - 1;
}

std::uint32_t* ClientIndex::probe(std::string_view client_id) {
  std::size_t i = common::fnv1a64(client_id) & mask_;
  while (true) {
    std::uint32_t* slot = &slots_[i];
    if (*slot == kEmptySlot || pool_.view(states_[*slot].id) == client_id) {
      return slot;
    }
    i = (i + 1) & mask_;
  }
}

void ClientIndex::grow() {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmptySlot);
  mask_ = slots_.size() - 1;
  for (const std::uint32_t index : old) {
    if (index == kEmptySlot) continue;
    std::size_t i = common::fnv1a64(pool_.view(states_[index].id)) & mask_;
    while (slots_[i] != kEmptySlot) i = (i + 1) & mask_;
    slots_[i] = index;
  }
}

std::uint32_t ClientIndex::get_or_create(std::string_view client_id) {
  std::uint32_t* slot = probe(client_id);
  if (*slot != kEmptySlot) return *slot;
  // Keep the table under ~70% full so probe chains stay short.
  if ((states_.size() + 1) * 10 >= slots_.size() * 7) {
    grow();
    slot = probe(client_id);
  }
  ClientState state;
  state.id = pool_.intern(client_id);
  const auto index = static_cast<std::uint32_t>(states_.size());
  states_.push_back(std::move(state));
  *slot = index;
  return index;
}

const ClientState* ClientIndex::find(std::string_view client_id) const {
  // probe() only writes through the returned pointer, never here.
  std::uint32_t* slot = const_cast<ClientIndex*>(this)->probe(client_id);
  return *slot == kEmptySlot ? nullptr : &states_[*slot];
}

ClientState* ClientIndex::find(std::string_view client_id) {
  std::uint32_t* slot = probe(client_id);
  return *slot == kEmptySlot ? nullptr : &states_[*slot];
}

}  // namespace cyd::cnc
