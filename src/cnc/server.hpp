#pragma once
// A command-and-control server (paper Fig. 5).
//
// The LAMP-style box: an HTTP endpoint backed by a database and the
// `newsforyou` folder trio —
//   ads/      commands & updates for one specific client
//   news/     commands & updates for every client
//   entries/  stolen data uploaded by clients, awaiting pickup
// Clients speak two verbs: GET_NEWS (fetch ads+news) and ADD_ENTRY (upload
// an encrypted blob). The attack center retrieves entries out-of-band (the
// "military-like" dead-drop: the two sides never talk directly). A purge
// task deletes retrieved entries every 30 minutes, and LogWiper.sh destroys
// the access log and finally itself.
//
// Internally the server is a thin simulation adapter over cnc::RequestEngine
// (the hot request pipeline — zero-copy decode, interned session state,
// bounded logs; see pipeline.hpp). The Database here is the *cold* forensic
// store: client rows are materialized write-behind from the engine's session
// states whenever the database is read, in first-contact order, so table
// dumps are byte-identical to the seed's eager row-per-beacon updates.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cnc/crypto.hpp"
#include "cnc/database.hpp"
#include "cnc/pipeline.hpp"
#include "cnc/wire.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace cyd::cnc {

class CncServer {
 public:
  CncServer(sim::Simulation& simulation, std::string server_id,
            std::vector<std::string> domains, CncPublicKey upload_key);

  const std::string& id() const { return server_id_; }
  const std::vector<std::string>& domains() const { return domains_; }
  const CncPublicKey& upload_key() const { return upload_key_; }
  /// The forensic store. Reading it flushes the write-behind client rows, so
  /// the tables always look as if every beacon had updated them eagerly.
  Database& db() {
    flush_clients();
    return db_;
  }
  const Database& db() const {
    flush_clients();
    return db_;
  }

  /// Registers every domain with the network's internet DNS.
  void deploy(net::Network& network);
  /// Drops off the internet (seizure / takedown).
  void undeploy(net::Network& network);

  // --- protocol entry point (also callable directly in tests) ---
  net::HttpResponse handle(const net::HttpRequest& request);
  /// Batched entry point for beacon storms: all requests handled at the
  /// current simulated time, responses in request order. Equivalent to
  /// calling handle() per request.
  std::vector<net::HttpResponse> handle_batch(
      std::span<const net::HttpRequest> requests);

  // --- attack-center side (out-of-band management channel) ---
  void push_ad(const std::string& client_id, Payload payload);
  void push_news(Payload payload);
  /// New (unretrieved) entries; marks them retrieved. Entry *files* stay on
  /// disk until the purge task runs — deletion follows pickup, not the
  /// other way around. O(new) via the engine's retrieved watermark.
  std::vector<Entry> take_new_entries();
  /// Deletes retrieved entries older than `max_age`; the scheduled cleanup.
  /// O(purged): retrieved entries form a time-ordered prefix.
  std::size_t purge_retrieved(sim::Duration max_age);
  /// Retention configured in the settings table (`purge_minutes`, seeded to
  /// 30); falls back to 30 minutes when the row is missing or unparseable.
  sim::Duration purge_retention() const;
  /// Starts the periodic purge cycle; each tick deletes retrieved entries
  /// older than purge_retention(). Idempotent: calling it again cancels the
  /// running series before arming the new one, so there is never more than
  /// one purge cycle ticking (a restage must not double-delete or skew the
  /// purge stats).
  void start_purge_task(sim::Duration period = 30 * sim::kMinute);
  /// Stops the purge cycle; a no-op when it was never started (or already
  /// stopped).
  void stop_purge_task();

  /// LogWiper.sh: stops logging, shreds the access log, deletes itself.
  void run_log_wiper();
  bool logs_wiped() const { return logs_wiped_; }

  // --- inspection (forensics / benches) ---
  const std::vector<std::string>& access_log() const {
    return engine_.access_log();
  }
  /// Access-log lines shed by the retention cap (newest lines survive).
  std::size_t access_log_dropped() const {
    return engine_.access_log_dropped();
  }
  void set_access_log_cap(std::size_t cap) { engine_.set_access_log_cap(cap); }
  const std::vector<Entry>& entries() const { return engine_.entries(); }
  std::size_t pending_ads() const { return engine_.counters().pending_ads; }
  std::size_t news_count() const { return engine_.news_count(); }
  std::uint64_t total_upload_bytes() const {
    return engine_.counters().upload_bytes;
  }
  std::size_t upload_count() const { return engine_.counters().uploads; }
  std::size_t get_news_count() const { return engine_.counters().get_news; }
  std::vector<std::string> known_clients() const;

  /// The hot request pipeline (bench / storm instrumentation).
  RequestEngine& engine() { return engine_; }
  const RequestEngine& engine() const { return engine_; }

 private:
  void trace_outcome(const RequestEngine::Outcome& outcome);
  /// Write-behind: materialize/update a `clients` row for every session
  /// state touched since the last flush, in first-touch order.
  void flush_clients() const;

  sim::Simulation& sim_;
  std::string server_id_;
  std::vector<std::string> domains_;
  CncPublicKey upload_key_;
  // Both mutable so const forensic reads (db(), known_clients()) can flush
  // the write-behind rows; logically the flush does not change state, it
  // only moves it between the hot and cold representations.
  mutable RequestEngine engine_;
  mutable Database db_;

  bool logs_wiped_ = false;
  sim::EventHandle purge_handle_;
};

}  // namespace cyd::cnc
