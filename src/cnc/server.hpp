#pragma once
// A command-and-control server (paper Fig. 5).
//
// The LAMP-style box: an HTTP endpoint backed by a database and the
// `newsforyou` folder trio —
//   ads/      commands & updates for one specific client
//   news/     commands & updates for every client
//   entries/  stolen data uploaded by clients, awaiting pickup
// Clients speak two verbs: GET_NEWS (fetch ads+news) and ADD_ENTRY (upload
// an encrypted blob). The attack center retrieves entries out-of-band (the
// "military-like" dead-drop: the two sides never talk directly). A purge
// task deletes retrieved entries every 30 minutes, and LogWiper.sh destroys
// the access log and finally itself.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cnc/crypto.hpp"
#include "cnc/database.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace cyd::cnc {

/// Client type tags observed on real Flame infrastructure: Flame itself was
/// only one of four supported client families.
inline constexpr const char* kClientTypeFl = "FL";
inline constexpr const char* kClientTypeSp = "SP";
inline constexpr const char* kClientTypeSpe = "SPE";
inline constexpr const char* kClientTypeIp = "IP";

struct Payload {
  std::string name;
  common::Bytes data;
};

struct Entry {
  std::uint64_t id = 0;
  std::string client_id;
  std::string client_type;
  std::string data_name;
  EncryptedBlob blob;
  sim::TimePoint received_at = 0;
  bool retrieved = false;  // picked up by the attack center
};

/// Wire helpers shared by server and clients.
common::Bytes serialize_payloads(const std::vector<Payload>& payloads);
std::vector<Payload> parse_payloads(std::string_view bytes);
common::Bytes serialize_entry_upload(const std::string& data_name,
                                     const EncryptedBlob& blob);

class CncServer {
 public:
  CncServer(sim::Simulation& simulation, std::string server_id,
            std::vector<std::string> domains, CncPublicKey upload_key);

  const std::string& id() const { return server_id_; }
  const std::vector<std::string>& domains() const { return domains_; }
  const CncPublicKey& upload_key() const { return upload_key_; }
  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Registers every domain with the network's internet DNS.
  void deploy(net::Network& network);
  /// Drops off the internet (seizure / takedown).
  void undeploy(net::Network& network);

  // --- protocol entry point (also callable directly in tests) ---
  net::HttpResponse handle(const net::HttpRequest& request);

  // --- attack-center side (out-of-band management channel) ---
  void push_ad(const std::string& client_id, Payload payload);
  void push_news(Payload payload);
  /// New (unretrieved) entries; marks them retrieved. Entry *files* stay on
  /// disk until the purge task runs — deletion follows pickup, not the
  /// other way around.
  std::vector<Entry> take_new_entries();
  /// Deletes retrieved entries older than `max_age`; the scheduled cleanup.
  std::size_t purge_retrieved(sim::Duration max_age);
  /// Retention configured in the settings table (`purge_minutes`, seeded to
  /// 30); falls back to 30 minutes when the row is missing or unparseable.
  sim::Duration purge_retention() const;
  /// Starts the periodic purge cycle; each tick deletes retrieved entries
  /// older than purge_retention(). Idempotent: calling it again cancels the
  /// running series before arming the new one, so there is never more than
  /// one purge cycle ticking (a restage must not double-delete or skew the
  /// purge stats).
  void start_purge_task(sim::Duration period = 30 * sim::kMinute);
  /// Stops the purge cycle; a no-op when it was never started (or already
  /// stopped).
  void stop_purge_task();

  /// LogWiper.sh: stops logging, shreds the access log, deletes itself.
  void run_log_wiper();
  bool logs_wiped() const { return logs_wiped_; }

  // --- inspection (forensics / benches) ---
  const std::vector<std::string>& access_log() const { return access_log_; }
  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t pending_ads() const;
  std::size_t news_count() const { return news_.size(); }
  std::uint64_t total_upload_bytes() const { return total_upload_bytes_; }
  std::size_t upload_count() const { return upload_count_; }
  std::size_t get_news_count() const { return get_news_count_; }
  std::vector<std::string> known_clients() const;

 private:
  void log_access(const std::string& line);
  net::HttpResponse handle_get_news(const net::HttpRequest& request);
  net::HttpResponse handle_add_entry(const net::HttpRequest& request);
  Row* client_row(const std::string& client_id, const std::string& type);

  sim::Simulation& sim_;
  std::string server_id_;
  std::vector<std::string> domains_;
  CncPublicKey upload_key_;
  Database db_;

  std::map<std::string, std::vector<Payload>> ads_;
  std::vector<std::pair<std::uint64_t, Payload>> news_;
  std::uint64_t next_news_seq_ = 1;
  std::vector<Entry> entries_;
  std::uint64_t next_entry_id_ = 1;

  std::vector<std::string> access_log_;
  bool logs_wiped_ = false;
  bool logging_enabled_ = true;
  std::uint64_t total_upload_bytes_ = 0;
  std::size_t upload_count_ = 0;
  std::size_t get_news_count_ = 0;
  sim::EventHandle purge_handle_;
};

}  // namespace cyd::cnc
