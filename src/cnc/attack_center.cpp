#include "cnc/attack_center.hpp"

namespace cyd::cnc {

AttackCenter::AttackCenter(sim::Simulation& simulation,
                           std::uint64_t key_seed)
    : sim_(simulation), coordinator_key_(CncKeyPair::generate(key_seed)) {}

void AttackCenter::push_command_all(const std::string& name,
                                    common::Bytes data) {
  sim_.log(sim::TraceCategory::kCnc, "attack-center", "ac.push-all", name);
  for (CncServer* server : servers_) {
    server->push_news(Payload{name, data});
  }
}

void AttackCenter::push_command_to(const std::string& client_id,
                                   const std::string& name,
                                   common::Bytes data) {
  sim_.log(sim::TraceCategory::kCnc, "attack-center", "ac.push-to",
           client_id + " " + name);
  for (CncServer* server : servers_) {
    server->push_ad(client_id, Payload{name, data});
  }
}

std::size_t AttackCenter::collect() {
  std::size_t archived = 0;
  for (CncServer* server : servers_) {
    for (Entry& entry : server->take_new_entries()) {
      auto plaintext = decrypt(coordinator_key_, entry.blob);
      if (!plaintext) {
        ++decrypt_failures_;
        continue;
      }
      StolenDocument doc;
      doc.server_id = server->id();
      doc.client_id = entry.client_id;
      doc.client_type = entry.client_type;
      doc.name = entry.data_name;
      doc.plaintext = std::move(*plaintext);
      doc.uploaded_at = entry.received_at;
      doc.collected_at = sim_.now();
      archive_.push_back(std::move(doc));
      ++archived;
    }
  }
  if (archived > 0) {
    sim_.log(sim::TraceCategory::kCnc, "attack-center", "ac.collect",
             std::to_string(archived) + " documents");
  }
  return archived;
}

void AttackCenter::start_collection_task(sim::Duration period) {
  collection_handle_ = sim_.every(period, [this] { collect(); });
}

void AttackCenter::order_suicide() {
  sim_.log(sim::TraceCategory::kCnc, "attack-center", "ac.order-suicide", "");
  push_command_all(kSuicidePayload, "SUICIDE");
  for (CncServer* server : servers_) server->run_log_wiper();
}

std::uint64_t AttackCenter::archived_bytes() const {
  std::uint64_t total = 0;
  for (const auto& doc : archive_) total += doc.plaintext.size();
  return total;
}

}  // namespace cyd::cnc
