#pragma once
// The attack center behind the C&C fleet (paper Fig. 4, top).
//
// One hierarchical operation drives every server: the *admin* provisions
// boxes (LogWiper, purge schedules), the *operator* works the control panel
// (pushing commands, downloading entries), and only the *coordinator* holds
// the private key that opens the stolen data. The separation is faithful:
// AttackCenter exposes operator actions that move ciphertext around, and
// decryption happens strictly through the coordinator's key.

#include <memory>
#include <string>
#include <vector>

#include "cnc/server.hpp"

namespace cyd::cnc {

struct StolenDocument {
  std::string server_id;
  std::string client_id;
  std::string client_type;
  std::string name;
  common::Bytes plaintext;
  sim::TimePoint uploaded_at = 0;
  sim::TimePoint collected_at = 0;
};

class AttackCenter {
 public:
  AttackCenter(sim::Simulation& simulation, std::uint64_t key_seed);

  /// Public key to bake into deployed servers and clients.
  CncPublicKey upload_key() const { return public_half(coordinator_key_); }

  void manage(CncServer& server) { servers_.push_back(&server); }
  const std::vector<CncServer*>& servers() const { return servers_; }

  // --- operator actions ---
  /// Broadcast a command/update to every client via every server.
  void push_command_all(const std::string& name, common::Bytes data);
  /// Targeted command for one client id (posted to every server's ads since
  /// the client may contact any of them).
  void push_command_to(const std::string& client_id, const std::string& name,
                       common::Bytes data);
  /// Pulls new entries from every server and decrypts them with the
  /// coordinator key. Returns how many documents were archived.
  std::size_t collect();
  /// Periodic collection (the operator's work shift).
  void start_collection_task(sim::Duration period = sim::kHour);

  /// The kill switch: broadcast the SUICIDE module and wipe server logs.
  void order_suicide();

  // --- coordinator's archive ---
  const std::vector<StolenDocument>& archive() const { return archive_; }
  std::uint64_t archived_bytes() const;
  std::size_t decrypt_failures() const { return decrypt_failures_; }

  /// Well-known payload name clients interpret as the self-destruct order.
  static constexpr const char* kSuicidePayload = "browse32.ocx";

 private:
  sim::Simulation& sim_;
  CncKeyPair coordinator_key_;
  std::vector<CncServer*> servers_;
  std::vector<StolenDocument> archive_;
  std::size_t decrypt_failures_ = 0;
  sim::EventHandle collection_handle_;
};

}  // namespace cyd::cnc
