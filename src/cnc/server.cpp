#include "cnc/server.hpp"

namespace cyd::cnc {

common::Bytes serialize_payloads(const std::vector<Payload>& payloads) {
  common::Bytes out("PLS1");
  common::put_u32(out, static_cast<std::uint32_t>(payloads.size()));
  for (const auto& p : payloads) {
    common::put_u32(out, static_cast<std::uint32_t>(p.name.size()));
    out.append(p.name);
    common::put_u32(out, static_cast<std::uint32_t>(p.data.size()));
    out.append(p.data);
  }
  return out;
}

std::vector<Payload> parse_payloads(std::string_view bytes) {
  std::vector<Payload> out;
  if (bytes.size() < 8 || bytes.substr(0, 4) != "PLS1") return out;
  try {
    std::size_t off = 4;
    const std::uint32_t count = common::get_u32(bytes, off);
    off += 4;
    for (std::uint32_t i = 0; i < count; ++i) {
      Payload p;
      const std::uint32_t name_len = common::get_u32(bytes, off);
      off += 4;
      if (off + name_len > bytes.size()) return {};
      p.name = std::string(bytes.substr(off, name_len));
      off += name_len;
      const std::uint32_t data_len = common::get_u32(bytes, off);
      off += 4;
      if (off + data_len > bytes.size()) return {};
      p.data = common::Bytes(bytes.substr(off, data_len));
      off += data_len;
      out.push_back(std::move(p));
    }
  } catch (const std::out_of_range&) {
    return {};
  }
  return out;
}

common::Bytes serialize_entry_upload(const std::string& data_name,
                                     const EncryptedBlob& blob) {
  common::Bytes out("UPL1");
  common::put_u32(out, static_cast<std::uint32_t>(data_name.size()));
  out.append(data_name);
  out.append(blob.serialize());
  return out;
}

CncServer::CncServer(sim::Simulation& simulation, std::string server_id,
                     std::vector<std::string> domains,
                     CncPublicKey upload_key)
    : sim_(simulation),
      server_id_(std::move(server_id)),
      domains_(std::move(domains)),
      upload_key_(upload_key) {
  // The panel's auth table and encryption settings exist from day one.
  Row auth;
  auth["user"] = "operator";
  auth["password_hash"] = "5f4dcc3b";
  db_.table("panel_auth").insert(std::move(auth));
  Row settings;
  settings["upload_key_id"] = std::to_string(upload_key_.public_id);
  settings["purge_minutes"] = "30";
  db_.table("settings").insert(std::move(settings));
}

void CncServer::deploy(net::Network& network) {
  for (const auto& domain : domains_) {
    network.register_internet_service(
        domain, [this](const net::HttpRequest& r) { return handle(r); });
  }
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.deploy",
           std::to_string(domains_.size()) + " domains");
}

void CncServer::undeploy(net::Network& network) {
  for (const auto& domain : domains_) network.remove_internet_service(domain);
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.undeploy", "");
}

void CncServer::log_access(const std::string& line) {
  if (logging_enabled_) {
    access_log_.push_back(sim::format_time(sim_.now()) + " " + line);
  }
}

Row* CncServer::client_row(const std::string& client_id,
                           const std::string& type) {
  auto& clients = db_.table("clients");
  auto matches = clients.select_where("client_id", client_id);
  if (!matches.empty()) {
    Row* row = clients.find(matches.front().first);
    (*row)["last_seen"] = sim::format_time(sim_.now());
    (*row)["contacts"] =
        std::to_string(std::stoull((*row)["contacts"]) + 1);
    return row;
  }
  Row row;
  row["client_id"] = client_id;
  row["type"] = type;
  row["first_seen"] = sim::format_time(sim_.now());
  row["last_seen"] = row["first_seen"];
  row["contacts"] = "1";
  row["last_news_seq"] = "0";
  const auto id = clients.insert(std::move(row));
  return clients.find(id);
}

net::HttpResponse CncServer::handle(const net::HttpRequest& request) {
  if (request.path != "/newsforyou") return net::HttpResponse{404, {}};
  auto cmd = request.params.find("cmd");
  if (cmd == request.params.end()) return net::HttpResponse{400, {}};
  if (cmd->second == "GET_NEWS") return handle_get_news(request);
  if (cmd->second == "ADD_ENTRY") return handle_add_entry(request);
  return net::HttpResponse{400, {}};
}

net::HttpResponse CncServer::handle_get_news(const net::HttpRequest& request) {
  auto client_it = request.params.find("client");
  if (client_it == request.params.end()) return net::HttpResponse{400, {}};
  const std::string& client_id = client_it->second;
  auto type_it = request.params.find("type");
  const std::string type =
      type_it == request.params.end() ? kClientTypeFl : type_it->second;

  ++get_news_count_;
  log_access("GET_NEWS client=" + client_id + " type=" + type);
  Row* row = client_row(client_id, type);

  std::vector<Payload> delivery;
  // Targeted commands first (ads), each delivered exactly once.
  if (auto it = ads_.find(client_id); it != ads_.end()) {
    for (auto& payload : it->second) delivery.push_back(std::move(payload));
    ads_.erase(it);
  }
  // Broadcast news the client has not seen yet.
  std::uint64_t last_seen = std::stoull((*row)["last_news_seq"]);
  for (const auto& [seq, payload] : news_) {
    if (seq > last_seen) {
      delivery.push_back(payload);
      last_seen = seq;
    }
  }
  (*row)["last_news_seq"] = std::to_string(last_seen);

  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.get-news",
           client_id + " -> " + std::to_string(delivery.size()) +
               " payloads");
  return net::HttpResponse{200, serialize_payloads(delivery)};
}

net::HttpResponse CncServer::handle_add_entry(
    const net::HttpRequest& request) {
  auto client_it = request.params.find("client");
  if (client_it == request.params.end()) return net::HttpResponse{400, {}};
  const std::string& client_id = client_it->second;
  auto type_it = request.params.find("type");
  const std::string type =
      type_it == request.params.end() ? kClientTypeFl : type_it->second;

  const std::string_view body = request.body;
  if (body.size() < 8 || body.substr(0, 4) != "UPL1") {
    return net::HttpResponse{400, {}};
  }
  std::string data_name;
  EncryptedBlob blob;
  try {
    const std::uint32_t name_len = common::get_u32(body, 4);
    if (8 + name_len > body.size()) return net::HttpResponse{400, {}};
    data_name = std::string(body.substr(8, name_len));
    auto parsed = EncryptedBlob::parse(body.substr(8 + name_len));
    if (!parsed) return net::HttpResponse{400, {}};
    blob = std::move(*parsed);
  } catch (const std::out_of_range&) {
    return net::HttpResponse{400, {}};
  }

  client_row(client_id, type);
  Entry entry;
  entry.id = next_entry_id_++;
  entry.client_id = client_id;
  entry.client_type = type;
  entry.data_name = data_name;
  entry.received_at = sim_.now();
  total_upload_bytes_ += blob.ciphertext.size();
  ++upload_count_;
  entry.blob = std::move(blob);
  entries_.push_back(std::move(entry));

  log_access("ADD_ENTRY client=" + client_id + " name=" + data_name);
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.add-entry",
           client_id + " " + data_name);
  return net::HttpResponse{200, "OK"};
}

void CncServer::push_ad(const std::string& client_id, Payload payload) {
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.push-ad",
           client_id + " " + payload.name);
  ads_[client_id].push_back(std::move(payload));
}

void CncServer::push_news(Payload payload) {
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.push-news",
           payload.name);
  news_.emplace_back(next_news_seq_++, std::move(payload));
}

std::vector<Entry> CncServer::take_new_entries() {
  std::vector<Entry> out;
  for (auto& entry : entries_) {
    if (!entry.retrieved) {
      entry.retrieved = true;
      out.push_back(entry);
    }
  }
  return out;
}

std::size_t CncServer::purge_retrieved(sim::Duration max_age) {
  const sim::TimePoint cutoff = sim_.now() - max_age;
  std::size_t before = entries_.size();
  std::erase_if(entries_, [cutoff](const Entry& e) {
    return e.retrieved && e.received_at <= cutoff;
  });
  const std::size_t purged = before - entries_.size();
  if (purged > 0) {
    sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.purge",
             std::to_string(purged) + " entries");
  }
  return purged;
}

sim::Duration CncServer::purge_retention() const {
  // The panel's own knob: settings.purge_minutes, seeded to 30 at install
  // time. Read on every purge tick so operators can retune a live server.
  if (const Table* settings = db_.find_table("settings")) {
    for (const auto& [id, row] : settings->all()) {
      auto it = row->find("purge_minutes");
      if (it == row->end()) continue;
      try {
        return sim::minutes(std::stoll(it->second));
      } catch (const std::exception&) {
        break;  // unparseable: fall back to the install default
      }
    }
  }
  return 30 * sim::kMinute;
}

void CncServer::start_purge_task(sim::Duration period) {
  // Cancel-then-rearm: a second start (operator re-runs the install script,
  // a seized server is restaged) must not leave two concurrent purge series
  // double-deleting payloads and skewing the purge stats — the old series
  // ends before the new one is armed.
  purge_handle_.cancel();
  purge_handle_ =
      sim_.every(period, [this] { purge_retrieved(purge_retention()); });
}

void CncServer::stop_purge_task() {
  // Safe when the task was never started: a default handle's cancel() is a
  // no-op, and a handle whose series already ended is inert.
  purge_handle_.cancel();
}

void CncServer::run_log_wiper() {
  // chkconfig off, shred the logs, remove old DB rows, rm LogWiper.sh.
  logging_enabled_ = false;
  access_log_.clear();
  logs_wiped_ = true;
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.logwiper", "");
}

std::size_t CncServer::pending_ads() const {
  std::size_t n = 0;
  for (const auto& [client, payloads] : ads_) n += payloads.size();
  return n;
}

std::vector<std::string> CncServer::known_clients() const {
  std::vector<std::string> out;
  const Table* clients = db_.find_table("clients");
  if (clients == nullptr) return out;
  for (const auto& [id, row] : clients->all()) {
    out.push_back(row->at("client_id"));
  }
  return out;
}

}  // namespace cyd::cnc
