#include "cnc/server.hpp"

namespace cyd::cnc {

CncServer::CncServer(sim::Simulation& simulation, std::string server_id,
                     std::vector<std::string> domains,
                     CncPublicKey upload_key)
    : sim_(simulation),
      server_id_(std::move(server_id)),
      domains_(std::move(domains)),
      upload_key_(upload_key) {
  // The panel's auth table and encryption settings exist from day one.
  Row auth;
  auth["user"] = "operator";
  auth["password_hash"] = "5f4dcc3b";
  db_.table("panel_auth").insert(std::move(auth));
  Row settings;
  settings["upload_key_id"] = std::to_string(upload_key_.public_id);
  settings["purge_minutes"] = "30";
  db_.table("settings").insert(std::move(settings));
}

void CncServer::deploy(net::Network& network) {
  for (const auto& domain : domains_) {
    network.register_internet_service(
        domain, [this](const net::HttpRequest& r) { return handle(r); });
  }
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.deploy",
           std::to_string(domains_.size()) + " domains");
}

void CncServer::undeploy(net::Network& network) {
  for (const auto& domain : domains_) network.remove_internet_service(domain);
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.undeploy", "");
}

void CncServer::flush_clients() const {
  engine_.drain_touched([this](ClientState& s, std::string_view client_id) {
    auto& clients = db_.table("clients");
    if (s.row_id == 0) {
      Row row;
      row["client_id"] = std::string(client_id);
      row["type"] = s.type;
      row["first_seen"] = sim::format_time(s.first_seen);
      row["last_seen"] = sim::format_time(s.last_seen);
      row["contacts"] = std::to_string(s.contacts);
      row["last_news_seq"] = std::to_string(s.last_news_seq);
      s.row_id = clients.insert(std::move(row));
    } else {
      Row* row = clients.find(s.row_id);
      (*row)["last_seen"] = sim::format_time(s.last_seen);
      (*row)["contacts"] = std::to_string(s.contacts);
      (*row)["last_news_seq"] = std::to_string(s.last_news_seq);
    }
  });
}

void CncServer::trace_outcome(const RequestEngine::Outcome& outcome) {
  switch (outcome.verb) {
    case RequestVerb::kGetNews:
      sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.get-news",
               std::string(outcome.client) + " -> " +
                   std::to_string(outcome.delivered) + " payloads");
      break;
    case RequestVerb::kAddEntry:
      sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.add-entry",
               std::string(outcome.client) + " " +
                   std::string(outcome.data_name));
      break;
    case RequestVerb::kInvalid:
      break;  // rejected requests leave no trace, as before
  }
}

net::HttpResponse CncServer::handle(const net::HttpRequest& request) {
  RequestEngine::Outcome outcome;
  net::HttpResponse response = engine_.handle(request, sim_.now(), &outcome);
  trace_outcome(outcome);
  return response;
}

std::vector<net::HttpResponse> CncServer::handle_batch(
    std::span<const net::HttpRequest> requests) {
  const sim::TimePoint now = sim_.now();
  std::vector<net::HttpResponse> responses;
  responses.reserve(requests.size());
  for (const net::HttpRequest& request : requests) {
    RequestEngine::Outcome outcome;
    responses.push_back(engine_.handle(request, now, &outcome));
    trace_outcome(outcome);
  }
  return responses;
}

void CncServer::push_ad(const std::string& client_id, Payload payload) {
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.push-ad",
           client_id + " " + payload.name);
  engine_.push_ad(client_id, std::move(payload));
}

void CncServer::push_news(Payload payload) {
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.push-news",
           payload.name);
  engine_.push_news(std::move(payload));
}

std::vector<Entry> CncServer::take_new_entries() {
  return engine_.take_new_entries();
}

std::size_t CncServer::purge_retrieved(sim::Duration max_age) {
  const std::size_t purged = engine_.purge_retrieved(sim_.now() - max_age);
  if (purged > 0) {
    sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.purge",
             std::to_string(purged) + " entries");
  }
  return purged;
}

sim::Duration CncServer::purge_retention() const {
  // The panel's own knob: settings.purge_minutes, seeded to 30 at install
  // time. Read on every purge tick so operators can retune a live server;
  // rows() iteration keeps the tick allocation-free.
  if (const Table* settings = db_.find_table("settings")) {
    for (const auto& [id, row] : settings->rows()) {
      auto it = row.find("purge_minutes");
      if (it == row.end()) continue;
      try {
        return sim::minutes(std::stoll(it->second));
      } catch (const std::exception&) {
        break;  // unparseable: fall back to the install default
      }
    }
  }
  return 30 * sim::kMinute;
}

void CncServer::start_purge_task(sim::Duration period) {
  // Cancel-then-rearm: a second start (operator re-runs the install script,
  // a seized server is restaged) must not leave two concurrent purge series
  // double-deleting payloads and skewing the purge stats — the old series
  // ends before the new one is armed.
  purge_handle_.cancel();
  purge_handle_ =
      sim_.every(period, [this] { purge_retrieved(purge_retention()); });
}

void CncServer::stop_purge_task() {
  // Safe when the task was never started: a default handle's cancel() is a
  // no-op, and a handle whose series already ended is inert.
  purge_handle_.cancel();
}

void CncServer::run_log_wiper() {
  // chkconfig off, shred the logs, remove old DB rows, rm LogWiper.sh.
  engine_.set_logging(false);
  engine_.clear_access_log();
  logs_wiped_ = true;
  sim_.log(sim::TraceCategory::kCnc, server_id_, "cnc.logwiper", "");
}

std::vector<std::string> CncServer::known_clients() const {
  flush_clients();
  std::vector<std::string> out;
  const Table* clients = db_.find_table("clients");
  if (clients == nullptr) return out;
  out.reserve(clients->rows().size());
  for (const auto& [id, row] : clients->rows()) {
    out.push_back(row.at("client_id"));
  }
  return out;
}

}  // namespace cyd::cnc
