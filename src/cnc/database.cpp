#include "cnc/database.hpp"

namespace cyd::cnc {

std::uint64_t Table::insert(Row row) {
  const std::uint64_t id = next_id_++;
  rows_.emplace(id, std::move(row));
  return id;
}

bool Table::erase(std::uint64_t id) { return rows_.erase(id) > 0; }

std::size_t Table::erase_where(const std::string& column,
                               const std::string& value) {
  std::size_t removed = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    auto col = it->second.find(column);
    if (col != it->second.end() && col->second == value) {
      it = rows_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

const Row* Table::find(std::uint64_t id) const {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

Row* Table::find(std::uint64_t id) {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::uint64_t, const Row*>> Table::select_where(
    const std::string& column, const std::string& value) const {
  std::vector<std::pair<std::uint64_t, const Row*>> out;
  for (const auto& [id, row] : rows_) {
    auto col = row.find(column);
    if (col != row.end() && col->second == value) out.emplace_back(id, &row);
  }
  return out;
}

const Row* Table::find_first_where(const std::string& column,
                                   const std::string& value) const {
  for (const auto& [id, row] : rows_) {
    auto col = row.find(column);
    if (col != row.end() && col->second == value) return &row;
  }
  return nullptr;
}

Row* Table::find_first_where(const std::string& column,
                             const std::string& value) {
  const Table* self = this;
  return const_cast<Row*>(self->find_first_where(column, value));
}

std::vector<std::pair<std::uint64_t, const Row*>> Table::all() const {
  std::vector<std::pair<std::uint64_t, const Row*>> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) out.emplace_back(id, &row);
  return out;
}

const Table* Database::find_table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

std::size_t Database::total_rows() const {
  std::size_t n = 0;
  for (const auto& [name, table] : tables_) n += table.size();
  return n;
}

void Database::wipe() {
  tables_.clear();
  wiped_ = true;
}

}  // namespace cyd::cnc
