#pragma once
// The C&C domain fleet (paper Fig. 4).
//
// Flame's infrastructure: ~80 domains registered under fake identities
// (addresses mostly in Germany and Austria) with a variety of registrars,
// resolving to 22 server IPs hosted around the world, all driven by one
// attack center. DomainFleet fabricates that registration layer
// deterministically so the Fig. 4 bench can print the same shape.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace cyd::cnc {

struct DomainRecord {
  std::string domain;
  std::string registrar;
  std::string registrant;      // fake identity
  std::string registrant_country;
  std::string server_id;       // C&C server the domain points at
};

class DomainFleet {
 public:
  /// Fabricates `domain_count` registrations spread over `server_count`
  /// servers, with GoDaddy-style registrar variety and fake identities.
  static std::vector<DomainRecord> generate(std::size_t domain_count,
                                            std::size_t server_count,
                                            sim::Rng& rng);

  /// Domains pointing at one server.
  static std::vector<std::string> domains_of(
      const std::vector<DomainRecord>& fleet, const std::string& server_id);

  /// Distinct registrars used (diversity metric reported by analysts).
  static std::size_t registrar_count(const std::vector<DomainRecord>& fleet);
  static std::size_t country_count(const std::vector<DomainRecord>& fleet);
};

}  // namespace cyd::cnc
