#pragma once
// The C&C server's relational store (the MySQL analogue).
//
// Tracks connecting clients, packages queued per client, encryption
// settings, and panel authentication — the tables Kaspersky's server
// analysis enumerated (paper Fig. 5 "Database" discussion).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cyd::cnc {

using Row = std::map<std::string, std::string>;

class Table {
 public:
  std::uint64_t insert(Row row);  // returns row id
  bool erase(std::uint64_t id);
  std::size_t erase_where(const std::string& column,
                          const std::string& value);
  const Row* find(std::uint64_t id) const;
  Row* find(std::uint64_t id);
  std::vector<std::pair<std::uint64_t, const Row*>> select_where(
      const std::string& column, const std::string& value) const;
  /// First row (in id order) whose `column` equals `value`, or nullptr.
  /// Unlike select_where this stops at the first hit and never allocates —
  /// use it for the common "look up by unique key" pattern.
  const Row* find_first_where(const std::string& column,
                              const std::string& value) const;
  Row* find_first_where(const std::string& column, const std::string& value);
  std::vector<std::pair<std::uint64_t, const Row*>> all() const;
  /// Direct read-only view of the rows in id order; the allocation-free
  /// alternative to all() for iteration.
  const std::map<std::uint64_t, Row>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  void clear() { rows_.clear(); }

 private:
  std::map<std::uint64_t, Row> rows_;
  std::uint64_t next_id_ = 1;
};

class Database {
 public:
  Table& table(const std::string& name) { return tables_[name]; }
  const Table* find_table(const std::string& name) const;
  std::vector<std::string> table_names() const;
  /// Total rows across tables (server-side footprint metric).
  std::size_t total_rows() const;
  /// DROP everything (LogWiper's final act against the evidence).
  void wipe();
  bool wiped() const { return wiped_; }

 private:
  std::map<std::string, Table> tables_;
  bool wiped_ = false;
};

}  // namespace cyd::cnc
