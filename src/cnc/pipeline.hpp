#pragma once
// The C&C request pipeline: zero-copy decode, interned session state, and
// O(pending) dead-drop bookkeeping — the hot path behind cnc::CncServer.
//
// RequestEngine is the part of the server a beacon actually exercises. It is
// deliberately simulation-free: handle() takes the current time as a value,
// touches only memory the engine owns, and never reaches for Simulation,
// TraceLog or the Database. That makes one engine per net::Site the sharding
// unit for a beacon storm — each shard's ShardedScheduler events drive that
// shard's engine under the PR 7 shard-safety contract (shard-disjoint state,
// no locks), and the per-shard results merge deterministically at the round
// barrier in shard index order (the same (origin shard, seq) discipline as
// the keyed event merge). CncServer wraps exactly one engine and layers the
// cold paths back on: trace logging, the purge task, and write-behind
// Database rows so forensic table dumps stay byte-identical to the seed.
//
// Determinism contract: every response the engine produces is folded into a
// per-engine FNV chain (fold_response), and state_checksum() digests the
// session/entry state in first-contact order. merge_storm() folds per-shard
// chains in shard index order, so a sharded storm whose per-shard request
// streams match a serial run's produces bit-identical merged checksums at
// any worker count — bench/cnc_throughput and the sweep_tests storm suite
// assert this against the retained seed handle path.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cnc/client_index.hpp"
#include "cnc/wire.hpp"
#include "net/message.hpp"
#include "sim/time.hpp"

namespace cyd::cnc {

/// FNV-1a folding shared by the engine and the bench's retained seed path —
/// both sides must digest with the same steps for identity to be meaningful.
inline constexpr std::uint64_t kChecksumBasis = 1469598103934665603ull;
inline std::uint64_t checksum_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}
std::uint64_t checksum_mix_bytes(std::uint64_t h, std::string_view bytes);

class RequestEngine {
 public:
  struct Counters {
    std::uint64_t get_news = 0;
    std::uint64_t uploads = 0;
    std::uint64_t upload_bytes = 0;
    std::uint64_t rejected = 0;     ///< 4xx responses
    std::uint64_t pending_ads = 0;  ///< queued, not yet delivered
  };

  /// Observability for the O(pending) guarantees: how many entries the last
  /// pickup/purge actually examined. A regression that reintroduces a full
  /// scan shows up here as cost proportional to history, not to new work.
  struct ScanStats {
    std::uint64_t last_pickup_scanned = 0;
    std::uint64_t last_purge_scanned = 0;
    std::uint64_t total_pickup_scanned = 0;
    std::uint64_t total_purge_scanned = 0;
  };

  /// What a handle() did, for the caller's trace layer. The views alias the
  /// request (client) and the stored entry (data_name); use them before the
  /// next engine call.
  struct Outcome {
    RequestVerb verb = RequestVerb::kInvalid;
    std::string_view client;
    std::size_t delivered = 0;       ///< GET_NEWS payloads in the response
    std::string_view data_name;      ///< ADD_ENTRY stored name
  };

  // --- protocol ---
  net::HttpResponse handle(const net::HttpRequest& request,
                           sim::TimePoint now, Outcome* outcome = nullptr);
  /// Batched entry point: one timestamp, one pass, responses in request
  /// order. Equivalent to calling handle() in a loop.
  std::vector<net::HttpResponse> handle_batch(
      std::span<const net::HttpRequest> requests, sim::TimePoint now);

  // --- dead-drop management (attack-center side) ---
  void push_ad(std::string_view client_id, Payload payload);
  void push_news(Payload payload);
  /// New (unretrieved) entries; marks them retrieved. O(new): everything
  /// before the retrieved watermark has already been picked up.
  std::vector<Entry> take_new_entries();
  /// Deletes retrieved entries with received_at <= cutoff. O(purged +
  /// remaining move): retrieved entries form a time-ordered prefix, so the
  /// purgeable set is a prefix and the scan never visits pending entries.
  std::size_t purge_retrieved(sim::TimePoint cutoff);

  // --- bounded access log ---
  const std::vector<std::string>& access_log() const { return access_log_; }
  /// Lines discarded so far by the cap (halving retention, newest survive).
  std::size_t access_log_dropped() const { return access_log_dropped_; }
  std::size_t access_log_cap() const { return access_log_cap_; }
  void set_access_log_cap(std::size_t cap) { access_log_cap_ = cap; }
  /// Empties the log and zeroes the drop counter (LogWiper: the wipe starts
  /// a fresh forensic window).
  void clear_access_log() {
    access_log_.clear();
    access_log_dropped_ = 0;
  }
  void set_logging(bool enabled) { logging_enabled_ = enabled; }
  bool logging_enabled() const { return logging_enabled_; }

  // --- inspection ---
  const Counters& counters() const { return counters_; }
  const ScanStats& scan_stats() const { return scan_stats_; }
  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t news_count() const { return news_.size(); }
  std::size_t retrieved_watermark() const { return retrieved_mark_; }
  ClientIndex& clients() { return index_; }
  const ClientIndex& clients() const { return index_; }
  /// Clients that have actually contacted the server (ad-only targets that
  /// never phoned home are excluded, as in the seed's database).
  std::size_t contacted_clients() const { return contact_order_.size(); }

  // --- determinism contract ---
  /// Ordered FNV chain over every response produced so far.
  std::uint64_t response_chain() const { return response_chain_; }
  /// Digest of session + entry state: counters, then client states in
  /// first-contact order, then entries in arrival order.
  std::uint64_t state_checksum() const;
  /// One folding step of the response chain; the bench's retained seed path
  /// uses this exact function so the chains are comparable.
  static std::uint64_t fold_response(std::uint64_t h,
                                     const net::HttpResponse& response);

  // --- write-behind (cold forensic store) ---
  /// Drains the states touched since the last call, in first-touch order,
  /// invoking fn(state, client_id). The owner materializes/updates Database
  /// rows from them; row creation order equals first-contact order, so table
  /// dumps match the seed's eager updates byte for byte.
  template <class Fn>
  void drain_touched(Fn&& fn) {
    for (const std::uint32_t index : touched_) {
      ClientState& s = index_.state(index);
      fn(s, index_.id_of(s));
      s.touched = false;
    }
    touched_.clear();
  }

 private:
  net::HttpResponse do_get_news(const DecodedRequest& d, sim::TimePoint now,
                                Outcome& outcome);
  net::HttpResponse do_add_entry(const DecodedRequest& d, sim::TimePoint now,
                                 Outcome& outcome);
  ClientState& contact(std::string_view client_id, std::string_view type,
                       sim::TimePoint now);
  void log_access(sim::TimePoint now, std::string_view verb,
                  std::string_view client, std::string_view key,
                  std::string_view value);

  ClientIndex index_;
  std::vector<std::uint32_t> touched_;        ///< write-behind queue
  std::vector<std::uint32_t> contact_order_;  ///< first-contact order

  std::vector<std::pair<std::uint64_t, Payload>> news_;
  std::uint64_t next_news_seq_ = 1;

  std::vector<Entry> entries_;
  std::size_t retrieved_mark_ = 0;  ///< entries_[0..mark) are retrieved
  std::uint64_t next_entry_id_ = 1;

  std::vector<std::string> access_log_;
  std::size_t access_log_cap_ = 65536;
  std::size_t access_log_dropped_ = 0;
  bool logging_enabled_ = true;

  Counters counters_;
  ScanStats scan_stats_;
  std::uint64_t response_chain_ = kChecksumBasis;
};

/// Deterministic shard merge for a beacon storm: counters summed and the
/// per-shard response/state chains folded in shard index order. Identical
/// for a serial shard-major run and a sharded run at any worker count.
struct StormMerge {
  RequestEngine::Counters totals;
  std::uint64_t clients = 0;  ///< contacted, across shards
  std::uint64_t entries = 0;  ///< still on disk, across shards
  std::uint64_t response_checksum = kChecksumBasis;
  std::uint64_t state_checksum = kChecksumBasis;
};
StormMerge merge_storm(std::span<const RequestEngine> shards);

}  // namespace cyd::cnc
