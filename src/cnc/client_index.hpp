#pragma once
// Interned hot-path client/session state for the C&C server.
//
// The seed server kept everything a GET_NEWS needs (contacts, last_news_seq,
// last_seen) in Database rows of std::map<string,string>, found by an
// O(clients) select_where scan and round-tripped through stoull/to_string on
// every beacon. ClientIndex pulls that session state into a flat vector of
// ClientState keyed by an open-addressing hash over interned client ids
// (StringPool pattern): one probe per lookup, integer fields, no allocation
// on the warm path. The Database stays the cold forensic store — rows are
// created/updated write-behind from the states marked `touched` here, so
// table dumps remain byte-identical to the eager seed path.
//
// A state is created on first sight of a client id, which can be a contact
// (GET_NEWS/ADD_ENTRY — starts the forensic row) or a push_ad for a client
// that has not phoned home yet (no row until it does, exactly like the
// seed's ads_ map). Client identity is the id alone; `type` records what the
// first contact claimed, matching the seed's one-row-per-client semantics.

#include <cstdint>
#include <string_view>
#include <vector>

#include "cnc/wire.hpp"
#include "sim/string_pool.hpp"
#include "sim/time.hpp"

namespace cyd::cnc {

struct ClientState {
  sim::StringId id = sim::kNoString;  ///< into the index's pool
  std::string type;                   ///< recorded at first contact
  sim::TimePoint first_seen = 0;      ///< first contact (not first push_ad)
  sim::TimePoint last_seen = 0;
  std::uint64_t contacts = 0;
  std::uint64_t last_news_seq = 0;
  std::vector<Payload> ads;  ///< queued targeted commands, delivered once
  std::uint64_t row_id = 0;  ///< cold-store row; 0 = not materialized yet
  bool touched = false;      ///< queued for the next write-behind flush
};

class ClientIndex {
 public:
  ClientIndex();

  /// Index of the state for `client_id`, creating it on first sight.
  /// Amortised O(1); allocates only on creation. The returned index is
  /// stable forever; ClientState references are invalidated by the next
  /// creation (the states live in a growing vector).
  std::uint32_t get_or_create(std::string_view client_id);

  /// Existing state or nullptr; never allocates.
  const ClientState* find(std::string_view client_id) const;
  ClientState* find(std::string_view client_id);

  ClientState& state(std::uint32_t index) { return states_[index]; }
  const ClientState& state(std::uint32_t index) const {
    return states_[index];
  }
  std::string_view id_of(const ClientState& s) const {
    return pool_.view(s.id);
  }

  /// All states in creation (first-sight) order.
  const std::vector<ClientState>& states() const { return states_; }
  std::vector<ClientState>& states() { return states_; }
  std::size_t size() const { return states_.size(); }

 private:
  static constexpr std::uint32_t kEmptySlot = 0xffff'ffffu;

  std::uint32_t* probe(std::string_view client_id);
  void grow();

  sim::StringPool pool_;
  std::vector<ClientState> states_;
  std::vector<std::uint32_t> slots_;  ///< open addressing, linear probing
  std::size_t mask_ = 0;              ///< slots_.size() - 1 (power of two)
};

}  // namespace cyd::cnc
