#pragma once
// The simulated Windows host.
//
// Host aggregates everything the malware in this campaign touches: the
// filesystem and registry, the process/service/task machinery, the driver
// store with its signing gate, the physical disk with its protected MBR,
// certificate and trust stores, the vulnerability surface, USB ports and the
// bluetooth adapter. It is the unit of infection, the unit of wiping, and
// the surface the analysis sandbox instruments.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "exploits/vuln.hpp"
#include "pe/image.hpp"
#include "pki/certificate.hpp"
#include "pki/trust.hpp"
#include "sim/simulation.hpp"
#include "winsys/disk.hpp"
#include "winsys/drivers.hpp"
#include "winsys/filesystem.hpp"
#include "winsys/process.hpp"
#include "winsys/program.hpp"
#include "winsys/registry.hpp"

namespace cyd::net {
class Stack;
}

namespace cyd::winsys {

class HostImage;
class UsbDrive;

enum class OsVersion : std::uint8_t {
  kWinXp,
  kWinVista,
  kWin7,
  kWin7x64,
  kWinServer2003,
};
const char* to_string(OsVersion v);

enum class HostState : std::uint8_t {
  kRunning,
  /// MBR or active partition destroyed; the machine no longer boots.
  kUnbootable,
};

struct EventLogEntry {
  sim::TimePoint time = 0;
  std::string source;
  std::string message;
};

/// Extension point: subsystems (AV products, malware infections, Step 7
/// installs) attach state to a host under a string key.
class HostComponent {
 public:
  virtual ~HostComponent() = default;
};

struct ExecResult {
  enum class Status : std::uint8_t {
    kStarted,
    kNoSuchFile,
    kNotExecutable,   // bytes are not a parseable PE
    kUnknownProgram,  // inert: no behaviour registered for the program id
    kBlockedByPolicy, // an exec interceptor (AV) vetoed it
    kHostDown,
  };
  Status status = Status::kNoSuchFile;
  int pid = 0;

  bool started() const { return status == Status::kStarted; }
};
const char* to_string(ExecResult::Status s);

class Host {
 public:
  Host(sim::Simulation& simulation, ProgramRegistry& programs,
       std::string name, OsVersion os);
  /// Image-backed construction: the host's filesystem/registry/PKI stores
  /// layer copy-on-write over the shared template image instead of
  /// materializing a full Windows tree. Behaviorally identical to a
  /// materialized host with the image's content.
  Host(sim::Simulation& simulation, ProgramRegistry& programs,
       std::string name, std::shared_ptr<const HostImage> image);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  // --- identity & substrate access ---
  const std::string& name() const { return name_; }
  OsVersion os() const { return os_; }
  /// Template image this host was stamped from; nullptr for materialized
  /// hosts.
  const HostImage* image() const { return image_.get(); }
  HostState state() const { return state_; }
  sim::Simulation& simulation() { return sim_; }
  ProgramRegistry& programs() { return programs_; }
  FileSystem& fs() { return fs_; }
  const FileSystem& fs() const { return fs_; }
  Registry& registry() { return registry_; }
  Disk& disk() { return disk_; }
  pki::CertStore& cert_store() { return certs_; }
  pki::TrustStore& trust_store() { return trust_; }
  const pki::CertStore& cert_store() const { return certs_; }
  const pki::TrustStore& trust_store() const { return trust_; }

  static Path system_dir() { return Path("c:\\windows\\system32"); }
  static Path windows_dir() { return Path("c:\\windows"); }

  // --- vulnerability surface ---
  void make_vulnerable(exploits::VulnId v) { vulns_.insert(v); }
  void patch(exploits::VulnId v) { vulns_.erase(v); }
  bool vulnerable_to(exploits::VulnId v) const { return vulns_.contains(v); }
  const std::set<exploits::VulnId>& vulnerabilities() const { return vulns_; }

  // --- execution ---
  ExecResult execute_file(const Path& path, const ExecContext& ctx);
  /// Veto hook consulted before any execution; return false to block.
  using ExecInterceptor =
      std::function<bool(const Path&, const pe::Image&, const ExecContext&)>;
  void add_exec_interceptor(ExecInterceptor fn) {
    exec_interceptors_.push_back(std::move(fn));
  }

  bool kill_process(int pid);
  Process* find_process(int pid);
  Process* find_process_by_name(std::string_view name);
  /// Enumerates processes; rootkit-hidden entries are skipped unless asked.
  std::vector<const Process*> list_processes(bool include_hidden = false) const;

  // --- services ---
  bool install_service(Service service);
  bool start_service(const std::string& name);
  bool stop_service(const std::string& name);
  bool delete_service(const std::string& name);
  const Service* find_service(const std::string& name) const;
  std::vector<std::string> service_names() const;

  // --- scheduled tasks ---
  void schedule_task(std::string task_name, const Path& binary,
                     sim::TimePoint at, sim::Duration period = 0);
  std::vector<std::string> task_names() const;
  bool cancel_task(const std::string& task_name);

  // --- drivers & raw disk ---
  void set_driver_policy(DriverPolicy p) { driver_policy_ = p; }
  DriverPolicy driver_policy() const { return driver_policy_; }
  DriverLoadResult load_driver(const Path& image, std::string driver_name,
                               std::uint32_t capabilities);
  bool unload_driver(const std::string& driver_name);
  bool has_capability(DriverCapability cap) const;
  const std::vector<LoadedDriver>& loaded_drivers() const { return drivers_; }

  /// Raw MBR / partition / sector writes: require a loaded driver granting
  /// kCapRawDiskAccess (Shamoon's Eldos trick); return false otherwise.
  bool raw_overwrite_mbr(common::Bytes data, const std::string& actor);
  bool raw_overwrite_active_partition(common::Bytes data,
                                      const std::string& actor);
  bool raw_write_sector(std::uint64_t lba, common::Bytes data,
                        const std::string& actor);

  // --- rootkit file hiding ---
  /// Predicate returning true for paths to hide from directory listings;
  /// effective only while a kCapFileHiding driver is loaded.
  void add_file_hiding_filter(std::function<bool(const Path&)> filter) {
    file_hiding_filters_.push_back(std::move(filter));
  }
  /// What a user/tool actually sees in a directory (rootkit-filtered).
  std::vector<std::string> visible_dir_entries(const Path& dir) const;

  // --- boot / power ---
  void boot();
  void reboot();

  // --- USB ---
  /// Plugs a stick in: mounts the volume, updates the stick's travel
  /// history, notifies observers, then simulates the user opening the drive
  /// in Explorer (autorun + LNK rendering).
  bool plug_usb(UsbDrive& drive);
  bool unplug_usb(UsbDrive& drive);
  std::vector<UsbDrive*> plugged_usb() const { return usb_; }
  void add_usb_observer(std::function<void(UsbDrive&)> fn) {
    usb_observers_.push_back(std::move(fn));
  }

  /// Explorer rendering a folder: triggers the MS10-046 LNK exploit when the
  /// host is unpatched and a crafted shortcut is present.
  void explorer_open(const Path& dir);

  /// Crafted-LNK payload convention: a ".lnk" file whose content is
  /// "LNKEXPLOIT:<absolute-target-path>" executes the target on rendering.
  static constexpr std::string_view kLnkExploitMagic = "LNKEXPLOIT:";

  // --- internet / bluetooth presence (topology facts set by scenario) ---
  void set_internet_access(bool v) { internet_access_ = v; }
  bool internet_access() const { return internet_access_; }

  /// Whether the interactive user runs with admin rights; code launched via
  /// Explorer (autorun, LNK rendering, double-clicks) inherits this. Malware
  /// on non-admin hosts must bring its own EoP exploit.
  void set_user_is_admin(bool v) { user_is_admin_ = v; }
  bool user_is_admin() const { return user_is_admin_; }

  struct Bluetooth {
    bool present = false;
    bool discoverable = false;  // set when a beacon (BEETLEJUICE) is active
    std::vector<std::string> nearby_devices;  // radio environment
  };
  Bluetooth& bluetooth() { return bluetooth_; }
  const Bluetooth& bluetooth() const { return bluetooth_; }

  // --- network stack (attached by net::Network) ---
  void attach_stack(net::Stack* stack) { stack_ = stack; }
  net::Stack* stack() { return stack_; }
  const net::Stack* stack() const { return stack_; }

  // --- components ---
  void attach_component(const std::string& key,
                        std::shared_ptr<HostComponent> component) {
    components_[key] = std::move(component);
  }
  template <typename T>
  T* component(const std::string& key) {
    auto it = components_.find(key);
    return it == components_.end() ? nullptr
                                   : dynamic_cast<T*>(it->second.get());
  }
  bool has_component(const std::string& key) const {
    return components_.contains(key);
  }
  void detach_component(const std::string& key) { components_.erase(key); }

  // --- event log & tracing ---
  /// Appends to the bounded event log. When the cap is reached the older
  /// half is discarded (amortized O(1)); the most recent entries — what
  /// forensics and the AV timeline read — always survive. The default cap
  /// is far above anything a single-host scenario produces; fleet builders
  /// lower it so 10⁶ hosts don't drown in log strings.
  void log_event(const std::string& source, const std::string& message);
  const std::vector<EventLogEntry>& event_log() const { return event_log_; }
  /// Empties the log and zeroes the drop counter: a clear starts a fresh
  /// forensic window, so a stale drop count from before the wipe must not
  /// make post-clear timelines look truncated when they are complete.
  void clear_event_log() {
    event_log_.clear();
    event_log_dropped_ = 0;
  }
  void set_event_log_cap(std::size_t cap) { event_log_cap_ = cap; }
  std::size_t event_log_cap() const { return event_log_cap_; }
  /// Entries discarded so far by the cap.
  std::size_t event_log_dropped() const { return event_log_dropped_; }
  /// Trace helper attributed to this host. Allocation-free: the log interns
  /// the strings, so nothing is copied on the hot path.
  void trace(sim::TraceCategory category, std::string_view action,
             std::string_view detail = {});

 private:
  void run_autoplay(UsbDrive& drive);

  sim::Simulation& sim_;
  ProgramRegistry& programs_;
  std::string name_;
  OsVersion os_;
  HostState state_ = HostState::kRunning;

  FileSystem fs_;
  Registry registry_;
  Disk disk_;
  pki::CertStore certs_;
  pki::TrustStore trust_;
  std::set<exploits::VulnId> vulns_;

  int next_pid_ = 100;
  std::vector<std::unique_ptr<Process>> processes_;
  std::map<std::string, Service> services_;
  std::vector<std::shared_ptr<ScheduledTask>> tasks_;

  DriverPolicy driver_policy_ = DriverPolicy::kAllowUnsigned;
  std::vector<LoadedDriver> drivers_;
  std::vector<std::function<bool(const Path&)>> file_hiding_filters_;
  std::vector<ExecInterceptor> exec_interceptors_;

  std::vector<UsbDrive*> usb_;
  std::vector<std::function<void(UsbDrive&)>> usb_observers_;

  bool internet_access_ = false;
  bool user_is_admin_ = false;
  Bluetooth bluetooth_;
  net::Stack* stack_ = nullptr;

  std::map<std::string, std::shared_ptr<HostComponent>> components_;
  std::vector<EventLogEntry> event_log_;
  std::size_t event_log_cap_ = 4096;
  std::size_t event_log_dropped_ = 0;
  std::shared_ptr<const HostImage> image_;
};

}  // namespace cyd::winsys
