#pragma once
// Windows-style path handling for the simulated filesystem.
//
// Paths are case-insensitive, backslash-separated, and rooted at a drive
// letter ("C:\Windows\system32\s7otbxdx.dll"). Canonical form is lower-case
// with single backslashes and no trailing separator, which is what the
// filesystem keys on.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cyd::winsys {

class Path {
 public:
  Path() = default;
  /// Accepts forward or back slashes and any casing.
  Path(std::string_view raw);            // NOLINT(google-explicit-constructor)
  Path(const char* raw) : Path(std::string_view(raw)) {}  // NOLINT
  Path(const std::string& raw) : Path(std::string_view(raw)) {}  // NOLINT

  /// Canonical lower-case text, e.g. "c:\\windows\\system32".
  const std::string& str() const { return canonical_; }
  bool empty() const { return canonical_.empty(); }

  /// Drive letter ('c'..'z') or '\0' for relative paths.
  char drive() const;
  /// True when the path names a drive root ("c:").
  bool is_root() const;
  /// Parent directory; root's parent is itself.
  Path parent() const;
  /// Final component ("s7otbxdx.dll"); empty for a root.
  std::string filename() const;
  /// Lower-case extension without the dot ("dll"); empty if none.
  std::string extension() const;
  /// Appends a component (or a relative sub-path).
  Path join(std::string_view component) const;
  /// Path components below the drive root.
  std::vector<std::string> components() const;
  /// True when this path is lexically inside `dir` (or equal to it).
  bool is_within(const Path& dir) const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.canonical_ == b.canonical_;
  }
  friend auto operator<=>(const Path& a, const Path& b) {
    return a.canonical_ <=> b.canonical_;
  }

 private:
  std::string canonical_;
};

}  // namespace cyd::winsys
