#pragma once
// Kernel driver store and signing policy.
//
// Loading a driver is the simulated kernel's trust decision: the image's
// Authenticode signature is verified against the host's certificate and
// trust stores, subject to the host policy. A loaded driver grants
// capabilities — raw disk access (Shamoon's Eldos driver), file/process
// hiding and injection (Stuxnet's mrxcls/mrxnet rootkit).

#include <cstdint>
#include <string>
#include <vector>

#include "pki/signing.hpp"
#include "winsys/path.hpp"

namespace cyd::winsys {

enum DriverCapability : std::uint32_t {
  kCapNone = 0,
  kCapRawDiskAccess = 1u << 0,   // user-mode can reach MBR/sectors through it
  kCapFileHiding = 1u << 1,      // rootkit: filter filesystem enumeration
  kCapProcessInjection = 1u << 2,
  kCapProcessHiding = 1u << 3,
};

enum class DriverPolicy : std::uint8_t {
  /// Pre-Vista behaviour: unsigned drivers load (perhaps with a user prompt
  /// the attacker's installer clicks through).
  kAllowUnsigned,
  /// 64-bit enforcement: only validly signed drivers load.
  kRequireValidSignature,
};

const char* to_string(DriverPolicy p);

struct LoadedDriver {
  std::string name;
  Path image_path;
  std::uint32_t capabilities = kCapNone;
  std::string signer_subject;  // empty when unsigned-but-allowed
  pki::SignatureStatus signature_status = pki::SignatureStatus::kUnsigned;
};

enum class DriverLoadResult : std::uint8_t {
  kLoaded,
  kRejectedUnsigned,
  kRejectedBadSignature,
  kFileNotFound,
  kNotADriverImage,
};

const char* to_string(DriverLoadResult r);

}  // namespace cyd::winsys
