#include "winsys/disk.hpp"

namespace cyd::winsys {

namespace {
constexpr std::string_view kBootMagic = "BOOTCODE\x55\xaa";
}

Disk::Disk() : mbr_(valid_boot_code()) {
  partitions_.push_back(Partition{"system", true, valid_boot_code()});
  partitions_.push_back(Partition{"data", false, valid_boot_code()});
}

common::Bytes Disk::valid_boot_code() { return common::Bytes(kBootMagic); }

bool Disk::mbr_intact() const { return mbr_ == valid_boot_code(); }

Partition* Disk::active_partition() {
  for (auto& p : partitions_) {
    if (p.active) return &p;
  }
  return nullptr;
}

bool Disk::active_partition_intact() const {
  for (const auto& p : partitions_) {
    if (p.active) return p.boot_sector == valid_boot_code();
  }
  return false;
}

void Disk::write_sector(std::uint64_t lba, common::Bytes data) {
  sectors_[lba] = std::move(data);
  ++raw_writes_;
}

const common::Bytes* Disk::read_sector(std::uint64_t lba) const {
  auto it = sectors_.find(lba);
  return it == sectors_.end() ? nullptr : &it->second;
}

}  // namespace cyd::winsys
