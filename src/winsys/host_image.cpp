#include "winsys/host_image.hpp"

#include <cstdio>

namespace cyd::winsys {

const char* to_string(HostArchetype a) {
  switch (a) {
    case HostArchetype::kOfficePc: return "office-pc";
    case HostArchetype::kEngineeringStation: return "engineering-station";
    case HostArchetype::kHmi: return "hmi";
    case HostArchetype::kServer: return "server";
    case HostArchetype::kFileServer: return "file-server";
    case HostArchetype::kDomainController: return "domain-controller";
    case HostArchetype::kLaptop: return "laptop";
    case HostArchetype::kKiosk: return "kiosk";
  }
  return "?";
}

OsVersion default_os(HostArchetype a) {
  switch (a) {
    case HostArchetype::kOfficePc: return OsVersion::kWin7;
    case HostArchetype::kEngineeringStation: return OsVersion::kWinXp;
    case HostArchetype::kHmi: return OsVersion::kWinXp;
    case HostArchetype::kServer: return OsVersion::kWinServer2003;
    case HostArchetype::kFileServer: return OsVersion::kWinServer2003;
    case HostArchetype::kDomainController: return OsVersion::kWinServer2003;
    case HostArchetype::kLaptop: return OsVersion::kWin7;
    case HostArchetype::kKiosk: return OsVersion::kWinXp;
  }
  return OsVersion::kWin7;
}

namespace {

/// Writes one stock file at t=0; content derives from the path so every
/// image build produces identical bytes.
void put(FileSystem& fs, const std::string& path) {
  fs.write_file(Path(path), "MZ stock image bytes: " + path, 0);
}

void put_n(FileSystem& fs, const std::string& dir, const char* stem,
           const char* ext, int count) {
  char name[128];
  for (int i = 0; i < count; ++i) {
    std::snprintf(name, sizeof(name), "%s\\%s%03d.%s", dir.c_str(), stem, i,
                  ext);
    put(fs, name);
  }
}

void populate_stock_os(FileSystem& fs, Registry& reg) {
  // Byte-for-byte the legacy materialized Host constructor's skeleton.
  fs.mkdirs(Path("c:\\windows\\system32"));
  fs.mkdirs(Path("c:\\users"));
  fs.write_file(Path("c:\\windows\\win.ini"), "; for 16-bit app support", 0);

  // Stock OS payload every archetype carries.
  static const char* kCoreDlls[] = {
      "ntdll.dll",    "kernel32.dll", "user32.dll",  "gdi32.dll",
      "advapi32.dll", "shell32.dll",  "ole32.dll",   "rpcrt4.dll",
      "ws2_32.dll",   "wininet.dll",  "crypt32.dll", "netapi32.dll",
      "winspool.drv", "lsasrv.dll",   "services.exe", "svchost.exe",
      "explorer.exe", "winlogon.exe", "csrss.exe",   "smss.exe",
  };
  for (const char* dll : kCoreDlls) {
    put(fs, std::string("c:\\windows\\system32\\") + dll);
  }
  put_n(fs, "c:\\windows\\system32", "winsx", "dll", 64);
  put_n(fs, "c:\\windows\\system32\\drivers", "port", "sys", 16);
  put_n(fs, "c:\\windows\\fonts", "font", "ttf", 12);
  fs.mkdirs(Path("c:\\windows\\temp"));
  fs.mkdirs(Path("c:\\program files"));
  fs.mkdirs(Path("c:\\users\\public"));

  reg.set("hklm\\software\\microsoft\\windows nt\\currentversion",
          "SystemRoot", "c:\\windows");
  reg.set("hklm\\system\\currentcontrolset\\control", "WaitToKillServiceTimeout",
          std::uint32_t{20000});
  static const char* kStockServices[] = {"lanmanserver", "spooler", "eventlog",
                                         "dhcp", "w32time"};
  for (const char* svc : kStockServices) {
    reg.set(std::string("hklm\\system\\currentcontrolset\\services\\") + svc,
            "Start", std::uint32_t{2});
  }
}

void populate_software(HostArchetype a, FileSystem& fs, Registry& reg) {
  switch (a) {
    case HostArchetype::kOfficePc:
      put_n(fs, "c:\\program files\\office12", "mso", "dll", 24);
      put(fs, "c:\\program files\\office12\\winword.exe");
      put(fs, "c:\\program files\\office12\\excel.exe");
      put_n(fs, "c:\\users\\public\\documents", "report", "doc", 20);
      reg.set("hklm\\software\\microsoft\\office\\12.0", "InstallRoot",
              "c:\\program files\\office12");
      break;
    case HostArchetype::kEngineeringStation:
      // Step 7 project station — the machines Stuxnet's .s7p hook targets.
      put_n(fs, "c:\\program files\\siemens\\step7\\s7bin", "s7otbx", "dll",
            16);
      put(fs, "c:\\program files\\siemens\\step7\\s7bin\\s7tgtopx.exe");
      put_n(fs, "c:\\projects\\cascade", "cascade_a", "s7p", 6);
      put_n(fs, "c:\\projects\\archive", "line", "s7p", 10);
      reg.set("hklm\\software\\siemens\\step7", "Version", "5.4");
      break;
    case HostArchetype::kHmi:
      put_n(fs, "c:\\program files\\siemens\\wincc\\bin", "cc", "dll", 20);
      put(fs, "c:\\program files\\siemens\\wincc\\bin\\wincc.exe");
      put_n(fs, "c:\\wincc_projects\\hall_a", "screen", "pdl", 12);
      reg.set("hklm\\software\\siemens\\wincc", "Version", "7.0");
      break;
    case HostArchetype::kServer:
      put_n(fs, "c:\\inetpub\\wwwroot", "page", "htm", 16);
      put(fs, "c:\\windows\\system32\\inetsrv\\w3wp.exe");
      reg.set("hklm\\system\\currentcontrolset\\services\\w3svc", "Start",
              std::uint32_t{2});
      break;
    case HostArchetype::kFileServer:
      put_n(fs, "c:\\shares\\public", "archive", "zip", 24);
      put_n(fs, "c:\\shares\\engineering", "drawing", "dwg", 16);
      reg.set("hklm\\system\\currentcontrolset\\services\\lanmanserver"
              "\\shares",
              "public", "c:\\shares\\public");
      break;
    case HostArchetype::kDomainController:
      put(fs, "c:\\windows\\ntds\\ntds.dit");
      put(fs, "c:\\windows\\sysvol\\policies\\default.pol");
      put_n(fs, "c:\\windows\\sysvol\\scripts", "logon", "bat", 8);
      reg.set("hklm\\system\\currentcontrolset\\services\\ntds", "Start",
              std::uint32_t{2});
      break;
    case HostArchetype::kLaptop:
      put_n(fs, "c:\\program files\\office12", "mso", "dll", 24);
      put(fs, "c:\\program files\\office12\\winword.exe");
      put_n(fs, "c:\\users\\public\\documents", "notes", "doc", 8);
      put(fs, "c:\\program files\\vpnclient\\vpnui.exe");
      reg.set("hklm\\software\\vpnclient", "Profile", "corp");
      break;
    case HostArchetype::kKiosk:
      put(fs, "c:\\program files\\kiosk\\shell.exe");
      put_n(fs, "c:\\program files\\kiosk\\content", "slide", "bmp", 10);
      reg.set("hklm\\software\\kiosk", "AutoStart", std::uint32_t{1});
      break;
  }
}

}  // namespace

void populate_archetype(HostArchetype a, FileSystem& fs, Registry& registry) {
  populate_stock_os(fs, registry);
  populate_software(a, fs, registry);
}

HostImage::Builder::Builder(HostArchetype archetype, OsVersion os)
    : archetype_(archetype), os_(os) {
  fs_.add_volume('c');
  populate_archetype(archetype_, fs_, registry_);
}

std::shared_ptr<const HostImage> HostImage::Builder::build() {
  auto image = std::shared_ptr<HostImage>(new HostImage());
  image->archetype_ = archetype_;
  image->os_ = os_;
  // The builder's FileSystem owns the volume; freeze a copy so the image is
  // self-contained and immutable from here on.
  image->volume_ = std::make_shared<const Volume>(*fs_.volume('c'));
  image->registry_ = std::make_shared<const Registry>(std::move(registry_));
  image->certs_ = std::make_shared<const pki::CertStore>(std::move(certs_));
  image->trust_ = std::make_shared<const pki::TrustStore>(std::move(trust_));
  return image;
}

std::shared_ptr<const HostImage> make_archetype_image(HostArchetype a) {
  HostImage::Builder builder(a, default_os(a));
  return builder.build();
}

}  // namespace cyd::winsys
