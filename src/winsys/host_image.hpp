#pragma once
// Golden template images for archetype host fleets.
//
// A HostImage is the immutable baseline state of one machine archetype —
// filesystem tree, registry hive, certificate and trust stores — built once
// and shared by every host stamped from it. Image-backed hosts layer their
// Volume/Registry/CertStore/TrustStore copy-on-write over the image
// (set_base), so a 100k-host fleet costs one image plus 100k small deltas
// instead of 100k full Windows trees. This is what lifts the fig/trend
// worlds from 1:30 scale to the paper's real campaign sizes (Stuxnet's
// ~100k infections, the full 9,000-centrifuge Natanz cascade hall).
//
// The archetype trees are deterministic: populate_archetype writes the same
// bytes every time, and its Windows skeleton is byte-for-byte what the
// legacy materialized Host constructor creates — the epidemic bench's
// identity pass relies on a materialized fleet and an image-backed fleet
// producing identical simulation traces.

#include <cstdint>
#include <memory>
#include <string>

#include "pki/certificate.hpp"
#include "pki/trust.hpp"
#include "winsys/filesystem.hpp"
#include "winsys/host.hpp"
#include "winsys/registry.hpp"

namespace cyd::winsys {

/// Machine archetypes the campaign scenarios draw from. The first four are
/// the paper's cast (victim offices, Step 7 engineering stations, WinCC
/// HMIs, infrastructure servers); the rest round out enterprise fleets.
enum class HostArchetype : std::uint8_t {
  kOfficePc,
  kEngineeringStation,
  kHmi,
  kServer,
  kFileServer,
  kDomainController,
  kLaptop,
  kKiosk,
};

constexpr int kHostArchetypeCount = 8;

const char* to_string(HostArchetype a);

/// Default OS for an archetype (engineering stations and HMIs ran the older
/// 32-bit systems the exploits targeted; servers ran server SKUs).
OsVersion default_os(HostArchetype a);

/// One immutable template image. Construct through HostImage::Builder; the
/// shared_ptr<const ...> members are handed to each stamped host's
/// set_base(), so the image must never change after build().
class HostImage {
 public:
  /// Accumulates image content through the ordinary FileSystem/Registry
  /// APIs (a 'c' volume is pre-mounted), then freezes it with build().
  class Builder {
   public:
    Builder(HostArchetype archetype, OsVersion os);

    FileSystem& fs() { return fs_; }
    Registry& registry() { return registry_; }
    pki::CertStore& cert_store() { return certs_; }
    pki::TrustStore& trust_store() { return trust_; }

    /// Freezes the accumulated state into an immutable image. The builder
    /// is spent afterwards.
    std::shared_ptr<const HostImage> build();

   private:
    HostArchetype archetype_;
    OsVersion os_;
    FileSystem fs_;
    Registry registry_;
    pki::CertStore certs_;
    pki::TrustStore trust_;
  };

  HostArchetype archetype() const { return archetype_; }
  OsVersion os() const { return os_; }
  const std::shared_ptr<const Volume>& system_volume() const {
    return volume_;
  }
  const std::shared_ptr<const Registry>& registry() const {
    return registry_;
  }
  const std::shared_ptr<const pki::CertStore>& cert_store() const {
    return certs_;
  }
  const std::shared_ptr<const pki::TrustStore>& trust_store() const {
    return trust_;
  }
  /// Files in the image tree (for bench reporting).
  std::size_t file_count() const { return volume_->files().size(); }

 private:
  HostImage() = default;

  HostArchetype archetype_ = HostArchetype::kOfficePc;
  OsVersion os_ = OsVersion::kWin7;
  std::shared_ptr<const Volume> volume_;
  std::shared_ptr<const Registry> registry_;
  std::shared_ptr<const pki::CertStore> certs_;
  std::shared_ptr<const pki::TrustStore> trust_;
};

/// Writes the archetype's baseline state into fs/registry: the legacy Host
/// constructor's Windows skeleton (byte-identical), a stock OS payload, and
/// the archetype's software footprint. Deterministic. Shared by the image
/// builder and the epidemic bench's fully-materialized baseline fleet.
void populate_archetype(HostArchetype a, FileSystem& fs, Registry& registry);

/// Builds the standard image for an archetype: populate_archetype content at
/// the archetype's default OS. PKI provisioning is the caller's business
/// (core::World bakes the Microsoft landscape in via the Builder's stores).
std::shared_ptr<const HostImage> make_archetype_image(HostArchetype a);

}  // namespace cyd::winsys
