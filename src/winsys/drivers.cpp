#include "winsys/drivers.hpp"

namespace cyd::winsys {

const char* to_string(DriverPolicy p) {
  switch (p) {
    case DriverPolicy::kAllowUnsigned: return "allow-unsigned";
    case DriverPolicy::kRequireValidSignature: return "require-valid-signature";
  }
  return "?";
}

const char* to_string(DriverLoadResult r) {
  switch (r) {
    case DriverLoadResult::kLoaded: return "loaded";
    case DriverLoadResult::kRejectedUnsigned: return "rejected-unsigned";
    case DriverLoadResult::kRejectedBadSignature: return "rejected-bad-signature";
    case DriverLoadResult::kFileNotFound: return "file-not-found";
    case DriverLoadResult::kNotADriverImage: return "not-a-driver-image";
  }
  return "?";
}

}  // namespace cyd::winsys
