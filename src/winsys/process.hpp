#pragma once
// Processes, services and scheduled tasks (data model).
//
// The lifecycle operations live on Host (which owns the filesystem, program
// registry reference and simulation clock); these are the records it keeps.

#include <memory>
#include <string>

#include "sim/time.hpp"
#include "winsys/path.hpp"
#include "winsys/program.hpp"

namespace cyd::winsys {

struct Process {
  int pid = 0;
  std::string name;
  Path image_path;
  bool elevated = false;
  /// Hidden from enumeration by a rootkit driver.
  bool hidden = false;
  /// Alive while resident; run-to-completion programs are removed after run.
  std::unique_ptr<Program> program;
};

struct Service {
  std::string name;          // e.g. "TrkSvr"
  std::string display_name;  // e.g. "Distributed Link Tracking Server"
  Path binary_path;
  bool autostart = true;
  bool running = false;
  int pid = 0;  // 0 when stopped
};

struct ScheduledTask {
  std::string name;
  Path binary_path;
  sim::TimePoint at = 0;
  /// 0 = one-shot; otherwise the task re-fires every `period`.
  sim::Duration period = 0;
  bool cancelled = false;
};

}  // namespace cyd::winsys
