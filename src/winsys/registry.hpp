#pragma once
// Simulated Windows registry.
//
// Keys are backslash paths under the usual hives ("HKLM\\SYSTEM\\..."),
// values are string or dword. Malware persistence (Stuxnet's service keys,
// Shamoon's TrkSvr service) and configuration (autorun policy) live here,
// and the IOC extractor walks it.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"

namespace cyd::winsys {

using RegValue = std::variant<std::string, std::uint32_t>;

class Registry {
 public:
  /// Sets (creating intermediate keys implicitly) key\value = data.
  void set(std::string_view key, std::string_view value, RegValue data);

  std::optional<RegValue> get(std::string_view key,
                              std::string_view value) const;
  std::optional<std::string> get_string(std::string_view key,
                                        std::string_view value) const;
  std::optional<std::uint32_t> get_dword(std::string_view key,
                                         std::string_view value) const;

  bool remove_value(std::string_view key, std::string_view value);
  /// Deletes a key and every subkey.
  std::size_t remove_key(std::string_view key);

  bool key_exists(std::string_view key) const;
  /// Value names under a key.
  std::vector<std::string> values(std::string_view key) const;
  /// Every (key, value) pair, for IOC sweeps.
  std::vector<std::pair<std::string, std::string>> all_entries() const;

 private:
  static std::string canon(std::string_view s);

  // canonical key -> (canonical value name -> data)
  std::map<std::string, std::map<std::string, RegValue>> keys_;
};

}  // namespace cyd::winsys
