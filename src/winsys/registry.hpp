#pragma once
// Simulated Windows registry.
//
// Keys are backslash paths under the usual hives ("HKLM\\SYSTEM\\..."),
// values are string or dword. Malware persistence (Stuxnet's service keys,
// Shamoon's TrkSvr service) and configuration (autorun policy) live here,
// and the IOC extractor walks it.
//
// Like winsys::Volume, a Registry can be layered copy-on-write over an
// immutable base hive (set_base): reads consult delta -> base per *value*
// (setting one value under a base key does not hide the key's other base
// values), remove_value/remove_key leave whiteouts, and a base-less Registry
// behaves exactly as before the layering existed.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"

namespace cyd::winsys {

using RegValue = std::variant<std::string, std::uint32_t>;

class Registry {
 public:
  /// Layers this registry copy-on-write over an immutable base hive.
  /// Single-level (the base must itself be base-less). nullptr detaches.
  void set_base(std::shared_ptr<const Registry> base);
  const Registry* base() const { return base_.get(); }

  /// Sets (creating intermediate keys implicitly) key\value = data.
  void set(std::string_view key, std::string_view value, RegValue data);

  std::optional<RegValue> get(std::string_view key,
                              std::string_view value) const;
  std::optional<std::string> get_string(std::string_view key,
                                        std::string_view value) const;
  std::optional<std::uint32_t> get_dword(std::string_view key,
                                         std::string_view value) const;

  bool remove_value(std::string_view key, std::string_view value);
  /// Deletes a key and every subkey.
  std::size_t remove_key(std::string_view key);

  bool key_exists(std::string_view key) const;
  /// Value names under a key.
  std::vector<std::string> values(std::string_view key) const;
  /// Every (key, value) pair, for IOC sweeps.
  std::vector<std::pair<std::string, std::string>> all_entries() const;

 private:
  static std::string canon(std::string_view s);

  // canonical key -> (canonical value name -> data)
  std::map<std::string, std::map<std::string, RegValue>> keys_;
  std::shared_ptr<const Registry> base_;  // immutable template hive layer
  std::set<std::string> deleted_keys_;    // whole-key whiteouts over base
  // per-value whiteouts over base, canonical key -> value names
  std::map<std::string, std::set<std::string>> deleted_values_;
};

}  // namespace cyd::winsys
