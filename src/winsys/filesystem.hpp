#pragma once
// The simulated NTFS-like filesystem.
//
// A FileSystem is a set of mounted Volumes keyed by drive letter; removable
// media (winsys/usb.hpp) share their Volume object with whichever host they
// are plugged into, so volume-internal paths are stored *relative to the
// drive root* ("windows\\system32\\x.dll") and acquire a letter only through
// the mount point. Deleted files leave recoverable tombstones unless they
// were shredded (overwritten before deletion) — the hook the forensics
// module uses to measure what SUICIDE/LogWiper/Shamoon leave behind.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "sim/time.hpp"
#include "winsys/path.hpp"

namespace cyd::winsys {

struct FileAttr {
  bool hidden = false;
  bool system = false;
  bool readonly = false;
};

struct FileNode {
  common::Bytes data;
  FileAttr attr;
  sim::TimePoint created = 0;
  sim::TimePoint modified = 0;
  /// Times the live content was overwritten in place (wiper passes).
  int overwrite_count = 0;
};

/// Remnant of a deleted file; recoverable unless shredded. Paths are
/// drive-relative (the volume may be remounted elsewhere).
struct Tombstone {
  std::string rel_path;
  common::Bytes data;
  sim::TimePoint deleted_at = 0;
  bool shredded = false;
};

/// One disk or stick's contents, independent of any mount point. Paths are
/// drive-relative canonical strings; "" denotes the root directory.
class Volume {
 public:
  Volume() { dirs_.insert(""); }

  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  std::map<std::string, FileNode>& files() { return files_; }
  const std::map<std::string, FileNode>& files() const { return files_; }
  std::set<std::string>& dirs() { return dirs_; }
  const std::set<std::string>& dirs() const { return dirs_; }
  std::vector<Tombstone>& tombstones() { return tombstones_; }
  const std::vector<Tombstone>& tombstones() const { return tombstones_; }

  std::size_t used_bytes() const;

 private:
  std::string label_;
  std::map<std::string, FileNode> files_;  // rel path -> node
  std::set<std::string> dirs_;             // rel dir paths ("" = root)
  std::vector<Tombstone> tombstones_;
};

/// Observer invoked on mutating operations; the AV on-access scanner and the
/// sandbox instrumentation register here.
struct FsEvent {
  enum class Kind { kWrite, kDelete, kRename, kRead, kExecute } kind;
  Path path;
  const common::Bytes* data = nullptr;  // valid for kWrite only
};
using FsObserver = std::function<void(const FsEvent&)>;

class FileSystem {
 public:
  /// Creates and mounts a fresh fixed volume.
  Volume& add_volume(char letter);
  /// Mounts an existing (shared) volume, e.g. a USB stick, as removable.
  /// Returns false if the letter is taken.
  bool mount(char letter, std::shared_ptr<Volume> volume);
  /// Unmounts a removable volume; fixed volumes cannot be unmounted.
  bool unmount(char letter);
  /// First free letter from 'd' onward (USB assignment).
  std::optional<char> free_letter() const;

  Volume* volume(char letter);
  const Volume* volume(char letter) const;
  std::vector<char> mounted_letters() const;
  std::vector<char> removable_letters() const;

  // --- file operations (paths must be absolute) ---
  /// Creates the directory chain down to `dir`. All-or-nothing: when a file
  /// blocks any component the volume is left untouched and false returns.
  bool mkdirs(const Path& dir);
  bool exists(const Path& p) const;
  bool is_dir(const Path& p) const;
  bool is_file(const Path& p) const;

  /// Writes (creates or replaces) a file; parent directories are created.
  /// Replacing an existing file counts as an in-place overwrite.
  bool write_file(const Path& p, common::Bytes data, sim::TimePoint now,
                  FileAttr attr = {});
  std::optional<common::Bytes> read_file(const Path& p) const;
  const FileNode* stat(const Path& p) const;
  FileNode* stat_mutable(const Path& p);

  /// Deletes a file. With `shred`, the content is destroyed before deletion
  /// and the tombstone is marked unrecoverable.
  bool delete_file(const Path& p, sim::TimePoint now, bool shred = false);
  /// Deletes a directory tree (files get tombstones per `shred`).
  std::size_t delete_tree(const Path& dir, sim::TimePoint now,
                          bool shred = false);
  bool rename(const Path& from, const Path& to, sim::TimePoint now);

  /// Immediate children (names, not full paths) of a directory.
  std::vector<std::string> list_dir(const Path& dir) const;
  /// All file paths under `dir` (recursive), absolute form.
  std::vector<Path> find_files(const Path& dir) const;
  /// All file paths on every mounted volume, absolute form.
  std::vector<Path> all_files() const;

  void add_observer(FsObserver observer) {
    observers_.push_back(std::move(observer));
  }
  /// Fires an event to observers (Host also calls this on execution).
  void notify(const FsEvent& event) const;

 private:
  Volume* volume_of(const Path& p);
  const Volume* volume_of(const Path& p) const;
  /// Drive-relative part of an absolute path ("" for the root).
  static std::string rel(const Path& p);
  static Path abs(char letter, const std::string& rel_path);

  std::map<char, std::shared_ptr<Volume>> volumes_;
  std::set<char> removable_;
  std::vector<FsObserver> observers_;
};

}  // namespace cyd::winsys
