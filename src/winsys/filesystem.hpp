#pragma once
// The simulated NTFS-like filesystem.
//
// A FileSystem is a set of mounted Volumes keyed by drive letter; removable
// media (winsys/usb.hpp) share their Volume object with whichever host they
// are plugged into, so volume-internal paths are stored *relative to the
// drive root* ("windows\\system32\\x.dll") and acquire a letter only through
// the mount point. Deleted files leave recoverable tombstones unless they
// were shredded (overwritten before deletion) — the hook the forensics
// module uses to measure what SUICIDE/LogWiper/Shamoon leave behind.
//
// A Volume is either self-contained or layered copy-on-write over an
// immutable base (the golden template image of winsys/host_image.hpp): reads
// consult delta -> base, writes and deletes materialize only the touched
// paths into the delta plus whiteout sets. A fleet of ten thousand hosts
// stamped from one image then costs one image plus ten thousand small deltas
// instead of ten thousand full filesystem trees.

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "sim/time.hpp"
#include "winsys/path.hpp"

namespace cyd::winsys {

struct FileAttr {
  bool hidden = false;
  bool system = false;
  bool readonly = false;
};

struct FileNode {
  common::Bytes data;
  FileAttr attr;
  sim::TimePoint created = 0;
  sim::TimePoint modified = 0;
  /// Times the live content was overwritten in place (wiper passes).
  int overwrite_count = 0;
};

/// Remnant of a deleted file; recoverable unless shredded. Paths are
/// drive-relative (the volume may be remounted elsewhere).
struct Tombstone {
  std::string rel_path;
  common::Bytes data;
  sim::TimePoint deleted_at = 0;
  bool shredded = false;
};

/// One disk or stick's contents, independent of any mount point. Paths are
/// drive-relative canonical strings; "" denotes the root directory.
///
/// Optionally layered over an immutable base volume (set_base): the visible
/// state is then delta ∪ (base − whiteouts), with delta entries shadowing
/// base entries of the same path. files()/dirs()/tombstones() expose the
/// *delta layer only* — use the query/traversal API below for the merged
/// view. A base-less volume behaves exactly as before the layering existed.
class Volume {
 public:
  Volume() { dirs_.insert(""); }

  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  /// Layers this volume copy-on-write over an immutable base. Single-level
  /// by construction (the base must itself be base-less) so every query
  /// stays a two-map lookup. Pass nullptr to detach.
  void set_base(std::shared_ptr<const Volume> base) {
    assert(base == nullptr || base->base_ == nullptr);
    base_ = std::move(base);
  }
  const Volume* base() const { return base_.get(); }

  // Delta-layer accessors. Writing through these on a layered volume edits
  // the delta (shadowing, not erasing, base entries); on a base-less volume
  // they are the whole truth, as they always were.
  std::map<std::string, FileNode>& files() { return files_; }
  const std::map<std::string, FileNode>& files() const { return files_; }
  std::set<std::string>& dirs() { return dirs_; }
  const std::set<std::string>& dirs() const { return dirs_; }
  std::vector<Tombstone>& tombstones() { return tombstones_; }
  const std::vector<Tombstone>& tombstones() const { return tombstones_; }
  const std::set<std::string>& deleted_files() const { return deleted_files_; }
  const std::set<std::string>& deleted_dirs() const { return deleted_dirs_; }

  // --- merged (delta -> base) queries; `rel` is a drive-relative path ---
  bool has_file(const std::string& rel) const {
    if (files_.contains(rel)) return true;
    if (deleted_files_.contains(rel)) return false;
    return base_ != nullptr && base_->files_.contains(rel);
  }
  bool has_dir(const std::string& rel) const {
    if (dirs_.contains(rel)) return true;
    if (deleted_dirs_.contains(rel)) return false;
    return base_ != nullptr && base_->dirs_.contains(rel);
  }
  /// Visible node for `rel`, or nullptr. May point into the base image —
  /// callers must not mutate through it (use materialize_file for that).
  const FileNode* find_file(const std::string& rel) const {
    auto it = files_.find(rel);
    if (it != files_.end()) return &it->second;
    if (deleted_files_.contains(rel)) return nullptr;
    if (base_ != nullptr) {
      auto bit = base_->files_.find(rel);
      if (bit != base_->files_.end()) return &bit->second;
    }
    return nullptr;
  }
  /// Mutable node for `rel`, copying it up from the base into the delta on
  /// first touch. nullptr when the path is not visible.
  FileNode* materialize_file(const std::string& rel) {
    auto it = files_.find(rel);
    if (it != files_.end()) return &it->second;
    if (deleted_files_.contains(rel)) return nullptr;
    if (base_ != nullptr) {
      auto bit = base_->files_.find(rel);
      if (bit != base_->files_.end()) {
        return &files_.emplace(rel, bit->second).first->second;
      }
    }
    return nullptr;
  }
  /// Creates or replaces the delta entry (clearing any whiteout).
  void put_file(const std::string& rel, FileNode node) {
    deleted_files_.erase(rel);
    files_.insert_or_assign(rel, std::move(node));
  }
  /// Removes `rel` from view; a base-backed path gets a whiteout. Returns
  /// false when the path was not visible.
  bool erase_file(const std::string& rel) {
    const bool in_delta = files_.erase(rel) > 0;
    if (base_ != nullptr && base_->files_.contains(rel)) {
      deleted_files_.insert(rel);
      return true;
    }
    return in_delta;
  }
  void add_dir(const std::string& rel) {
    deleted_dirs_.erase(rel);
    dirs_.insert(rel);
  }
  bool erase_dir(const std::string& rel) {
    const bool in_delta = dirs_.erase(rel) > 0;
    if (base_ != nullptr && base_->dirs_.contains(rel)) {
      deleted_dirs_.insert(rel);
      return true;
    }
    return in_delta;
  }

  /// Visits every visible file in path order (delta shadows base, whiteouts
  /// skipped). fn(const std::string& rel, const FileNode&).
  template <typename Fn>
  void for_each_file(Fn&& fn) const {
    for_each_file_under(std::string{}, std::forward<Fn>(fn));
  }
  /// Same, restricted to rel paths with the given string prefix (callers
  /// layer their own component-boundary filtering on top).
  template <typename Fn>
  void for_each_file_under(const std::string& prefix, Fn&& fn) const {
    auto di = files_.lower_bound(prefix);
    const auto dend = files_.end();
    auto in_range = [&prefix](const std::string& key) {
      return key.compare(0, prefix.size(), prefix) == 0;
    };
    if (base_ == nullptr) {
      for (; di != dend && in_range(di->first); ++di) {
        fn(di->first, di->second);
      }
      return;
    }
    auto bi = base_->files_.lower_bound(prefix);
    const auto bend = base_->files_.end();
    bool d_ok = di != dend && in_range(di->first);
    bool b_ok = bi != bend && in_range(bi->first);
    while (d_ok || b_ok) {
      if (b_ok && (!d_ok || bi->first < di->first)) {
        if (!deleted_files_.contains(bi->first)) fn(bi->first, bi->second);
        ++bi;
        b_ok = bi != bend && in_range(bi->first);
      } else {
        if (b_ok && bi->first == di->first) {  // delta shadows base
          ++bi;
          b_ok = bi != bend && in_range(bi->first);
        }
        fn(di->first, di->second);
        ++di;
        d_ok = di != dend && in_range(di->first);
      }
    }
  }
  /// Visits every visible directory in path order ("" = root included).
  template <typename Fn>
  void for_each_dir(Fn&& fn) const {
    for_each_dir_under(std::string{}, std::forward<Fn>(fn));
  }
  template <typename Fn>
  void for_each_dir_under(const std::string& prefix, Fn&& fn) const {
    auto di = dirs_.lower_bound(prefix);
    const auto dend = dirs_.end();
    auto in_range = [&prefix](const std::string& key) {
      return key.compare(0, prefix.size(), prefix) == 0;
    };
    if (base_ == nullptr) {
      for (; di != dend && in_range(*di); ++di) fn(*di);
      return;
    }
    auto bi = base_->dirs_.lower_bound(prefix);
    const auto bend = base_->dirs_.end();
    bool d_ok = di != dend && in_range(*di);
    bool b_ok = bi != bend && in_range(*bi);
    while (d_ok || b_ok) {
      if (b_ok && (!d_ok || *bi < *di)) {
        if (!deleted_dirs_.contains(*bi)) fn(*bi);
        ++bi;
        b_ok = bi != bend && in_range(*bi);
      } else {
        if (b_ok && *bi == *di) {
          ++bi;
          b_ok = bi != bend && in_range(*bi);
        }
        fn(*di);
        ++di;
        d_ok = di != dend && in_range(*di);
      }
    }
  }

  std::size_t used_bytes() const;

 private:
  std::string label_;
  std::shared_ptr<const Volume> base_;     // immutable template image layer
  std::map<std::string, FileNode> files_;  // rel path -> node (delta)
  std::set<std::string> dirs_;             // rel dir paths ("" = root)
  std::vector<Tombstone> tombstones_;
  std::set<std::string> deleted_files_;  // whiteouts over base files
  std::set<std::string> deleted_dirs_;   // whiteouts over base dirs
};

/// Observer invoked on mutating operations; the AV on-access scanner and the
/// sandbox instrumentation register here.
struct FsEvent {
  enum class Kind { kWrite, kDelete, kRename, kRead, kExecute } kind;
  Path path;
  const common::Bytes* data = nullptr;  // valid for kWrite only
};
using FsObserver = std::function<void(const FsEvent&)>;

class FileSystem {
 public:
  /// Creates and mounts a fresh fixed volume.
  Volume& add_volume(char letter);
  /// Mounts an existing (shared) volume, e.g. a USB stick, as removable.
  /// Returns false if the letter is taken.
  bool mount(char letter, std::shared_ptr<Volume> volume);
  /// Unmounts a removable volume; fixed volumes cannot be unmounted.
  bool unmount(char letter);
  /// First free letter from 'd' onward (USB assignment).
  std::optional<char> free_letter() const;

  Volume* volume(char letter);
  const Volume* volume(char letter) const;
  std::vector<char> mounted_letters() const;
  std::vector<char> removable_letters() const;

  // --- file operations (paths must be absolute) ---
  /// Creates the directory chain down to `dir`. All-or-nothing: when a file
  /// blocks any component the volume is left untouched and false returns.
  bool mkdirs(const Path& dir);
  bool exists(const Path& p) const;
  bool is_dir(const Path& p) const;
  bool is_file(const Path& p) const;

  /// Writes (creates or replaces) a file; parent directories are created.
  /// Replacing an existing file counts as an in-place overwrite.
  bool write_file(const Path& p, common::Bytes data, sim::TimePoint now,
                  FileAttr attr = {});
  std::optional<common::Bytes> read_file(const Path& p) const;
  const FileNode* stat(const Path& p) const;
  FileNode* stat_mutable(const Path& p);

  /// Deletes a file. With `shred`, the content is destroyed before deletion
  /// and the tombstone is marked unrecoverable.
  bool delete_file(const Path& p, sim::TimePoint now, bool shred = false);
  /// Deletes a directory tree (files get tombstones per `shred`).
  std::size_t delete_tree(const Path& dir, sim::TimePoint now,
                          bool shred = false);
  bool rename(const Path& from, const Path& to, sim::TimePoint now);

  /// Immediate children (names, not full paths) of a directory.
  std::vector<std::string> list_dir(const Path& dir) const;
  /// All file paths under `dir` (recursive), absolute form.
  std::vector<Path> find_files(const Path& dir) const;
  /// All file paths on every mounted volume, absolute form.
  std::vector<Path> all_files() const;

  void add_observer(FsObserver observer) {
    observers_.push_back(std::move(observer));
  }
  /// Fires an event to observers (Host also calls this on execution).
  void notify(const FsEvent& event) const;

 private:
  Volume* volume_of(const Path& p);
  const Volume* volume_of(const Path& p) const;
  /// Drive-relative part of an absolute path ("" for the root).
  static std::string rel(const Path& p);
  static Path abs(char letter, const std::string& rel_path);

  std::map<char, std::shared_ptr<Volume>> volumes_;
  std::set<char> removable_;
  std::vector<FsObserver> observers_;
};

}  // namespace cyd::winsys
