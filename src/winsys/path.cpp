#include "winsys/path.hpp"

#include <cctype>

namespace cyd::winsys {
namespace {

std::string canonicalize(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  bool last_was_sep = false;
  for (char raw_c : raw) {
    char c = raw_c == '/' ? '\\' : raw_c;
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (c == '\\') {
      if (last_was_sep || out.empty()) continue;  // collapse; no leading sep
      last_was_sep = true;
      out.push_back(c);
    } else {
      last_was_sep = false;
      out.push_back(c);
    }
  }
  while (!out.empty() && out.back() == '\\') out.pop_back();
  return out;
}

}  // namespace

Path::Path(std::string_view raw) : canonical_(canonicalize(raw)) {}

char Path::drive() const {
  if (canonical_.size() >= 2 && canonical_[1] == ':' &&
      canonical_[0] >= 'a' && canonical_[0] <= 'z') {
    return canonical_[0];
  }
  return '\0';
}

bool Path::is_root() const {
  return canonical_.size() == 2 && drive() != '\0';
}

Path Path::parent() const {
  const auto pos = canonical_.rfind('\\');
  if (pos == std::string::npos) return *this;
  Path p;
  p.canonical_ = canonical_.substr(0, pos);
  return p;
}

std::string Path::filename() const {
  if (is_root()) return {};
  const auto pos = canonical_.rfind('\\');
  return pos == std::string::npos ? canonical_ : canonical_.substr(pos + 1);
}

std::string Path::extension() const {
  const std::string name = filename();
  const auto pos = name.rfind('.');
  if (pos == std::string::npos || pos + 1 == name.size()) return {};
  return name.substr(pos + 1);
}

Path Path::join(std::string_view component) const {
  const std::string sub = canonicalize(component);
  if (sub.empty()) return *this;
  if (canonical_.empty()) {
    Path p;
    p.canonical_ = sub;
    return p;
  }
  Path p;
  p.canonical_ = canonical_ + "\\" + sub;
  return p;
}

std::vector<std::string> Path::components() const {
  std::vector<std::string> out;
  std::size_t start = 0;
  if (drive() != '\0') start = 3;  // skip "c:\"
  if (start >= canonical_.size()) return out;
  std::size_t pos = start;
  while (pos <= canonical_.size()) {
    const auto next = canonical_.find('\\', pos);
    if (next == std::string::npos) {
      out.push_back(canonical_.substr(pos));
      break;
    }
    out.push_back(canonical_.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

bool Path::is_within(const Path& dir) const {
  if (canonical_ == dir.canonical_) return true;
  if (dir.canonical_.empty()) return false;
  return canonical_.size() > dir.canonical_.size() &&
         canonical_.compare(0, dir.canonical_.size(), dir.canonical_) == 0 &&
         canonical_[dir.canonical_.size()] == '\\';
}

}  // namespace cyd::winsys
