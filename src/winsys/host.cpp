#include "winsys/host.hpp"

#include <algorithm>

#include "winsys/host_image.hpp"
#include "winsys/usb.hpp"

namespace cyd::winsys {

const char* to_string(OsVersion v) {
  switch (v) {
    case OsVersion::kWinXp: return "WinXP";
    case OsVersion::kWinVista: return "Vista";
    case OsVersion::kWin7: return "Win7";
    case OsVersion::kWin7x64: return "Win7-x64";
    case OsVersion::kWinServer2003: return "Server2003";
  }
  return "?";
}

const char* to_string(ExecResult::Status s) {
  switch (s) {
    case ExecResult::Status::kStarted: return "started";
    case ExecResult::Status::kNoSuchFile: return "no-such-file";
    case ExecResult::Status::kNotExecutable: return "not-executable";
    case ExecResult::Status::kUnknownProgram: return "unknown-program";
    case ExecResult::Status::kBlockedByPolicy: return "blocked-by-policy";
    case ExecResult::Status::kHostDown: return "host-down";
  }
  return "?";
}

Host::Host(sim::Simulation& simulation, ProgramRegistry& programs,
           std::string name, OsVersion os)
    : sim_(simulation), programs_(programs), name_(std::move(name)), os_(os) {
  fs_.add_volume('c');
  fs_.mkdirs(system_dir());
  fs_.mkdirs(Path("c:\\users"));
  // A few stock files tools and malware probe for (remote access checks,
  // masquerade targets).
  fs_.write_file(Path("c:\\windows\\win.ini"), "; for 16-bit app support", 0);
  // 64-bit Windows enforces driver signing; earlier systems do not.
  driver_policy_ = os_ == OsVersion::kWin7x64
                       ? DriverPolicy::kRequireValidSignature
                       : DriverPolicy::kAllowUnsigned;
}

Host::Host(sim::Simulation& simulation, ProgramRegistry& programs,
           std::string name, std::shared_ptr<const HostImage> image)
    : sim_(simulation),
      programs_(programs),
      name_(std::move(name)),
      os_(image->os()),
      image_(std::move(image)) {
  // The image already holds the Windows skeleton the materialized
  // constructor would write; this host only layers empty deltas over it.
  fs_.add_volume('c').set_base(image_->system_volume());
  registry_.set_base(image_->registry());
  certs_.set_base(image_->cert_store());
  trust_.set_base(image_->trust_store());
  driver_policy_ = os_ == OsVersion::kWin7x64
                       ? DriverPolicy::kRequireValidSignature
                       : DriverPolicy::kAllowUnsigned;
}

void Host::trace(sim::TraceCategory category, std::string_view action,
                 std::string_view detail) {
  sim_.log(category, name_, action, detail);
}

void Host::log_event(const std::string& source, const std::string& message) {
  if (event_log_.size() >= event_log_cap_ && event_log_cap_ > 0) {
    // Discard the older half in one move so appends stay amortized O(1)
    // while the newest entries (what forensics reads) survive.
    const std::size_t drop = event_log_.size() / 2 + 1;
    event_log_.erase(event_log_.begin(),
                     event_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    event_log_dropped_ += drop;
  }
  event_log_.push_back(EventLogEntry{sim_.now(), source, message});
}

ExecResult Host::execute_file(const Path& path, const ExecContext& ctx) {
  if (state_ != HostState::kRunning) {
    return {ExecResult::Status::kHostDown, 0};
  }
  const auto bytes = fs_.read_file(path);
  if (!bytes) return {ExecResult::Status::kNoSuchFile, 0};

  pe::Image image;
  try {
    image = pe::Image::parse(*bytes);
  } catch (const pe::ParseError&) {
    return {ExecResult::Status::kNotExecutable, 0};
  }

  ExecContext effective = ctx;
  effective.image_path = path;

  for (const auto& interceptor : exec_interceptors_) {
    if (!interceptor(path, image, effective)) {
      trace(sim::TraceCategory::kSecurity, "exec.blocked", path.str());
      return {ExecResult::Status::kBlockedByPolicy, 0};
    }
  }

  auto program = programs_.create(image.program_id);
  if (program == nullptr) return {ExecResult::Status::kUnknownProgram, 0};

  auto proc = std::make_unique<Process>();
  proc->pid = next_pid_++;
  proc->name = program->process_name();
  proc->image_path = path;
  proc->elevated = effective.elevated;
  Program* prog_raw = program.get();
  proc->program = std::move(program);
  const int pid = proc->pid;
  processes_.push_back(std::move(proc));

  fs_.notify(FsEvent{FsEvent::Kind::kExecute, path, nullptr});
  trace(sim::TraceCategory::kProcess, "process.start",
        path.str() + " pid=" + std::to_string(pid) + " by=" +
            effective.launched_by);

  const bool resident = prog_raw->run(*this, effective);
  if (!resident) kill_process(pid);
  return {ExecResult::Status::kStarted, pid};
}

bool Host::kill_process(int pid) {
  auto it = std::find_if(
      processes_.begin(), processes_.end(),
      [pid](const std::unique_ptr<Process>& p) { return p->pid == pid; });
  if (it == processes_.end()) return false;
  // Release any service claiming this pid.
  for (auto& [name, service] : services_) {
    if (service.pid == pid) {
      service.pid = 0;
      service.running = false;
    }
  }
  processes_.erase(it);
  return true;
}

Process* Host::find_process(int pid) {
  for (auto& p : processes_) {
    if (p->pid == pid) return p.get();
  }
  return nullptr;
}

Process* Host::find_process_by_name(std::string_view name) {
  for (auto& p : processes_) {
    if (common::iequals(p->name, name)) return p.get();
  }
  return nullptr;
}

std::vector<const Process*> Host::list_processes(bool include_hidden) const {
  std::vector<const Process*> out;
  const bool rootkit_active =
      include_hidden ? false : has_capability(kCapProcessHiding);
  for (const auto& p : processes_) {
    if (!include_hidden && rootkit_active && p->hidden) continue;
    out.push_back(p.get());
  }
  return out;
}

bool Host::install_service(Service service) {
  if (services_.contains(service.name)) return false;
  registry_.set("hklm\\system\\currentcontrolset\\services\\" + service.name,
                "ImagePath", service.binary_path.str());
  trace(sim::TraceCategory::kProcess, "service.install",
        service.name + " -> " + service.binary_path.str());
  services_.emplace(service.name, std::move(service));
  return true;
}

bool Host::start_service(const std::string& name) {
  auto it = services_.find(name);
  if (it == services_.end() || it->second.running) return false;
  ExecContext ctx;
  ctx.launched_by = "services";
  ctx.elevated = true;  // services run as SYSTEM
  const auto result = execute_file(it->second.binary_path, ctx);
  if (!result.started()) {
    trace(sim::TraceCategory::kProcess, "service.start-failed",
          name + " (" + to_string(result.status) + ")");
    return false;
  }
  // The process may have run to completion already; the service still counts
  // as started (matching how droppers masquerade as short-lived services).
  it->second.running = find_process(result.pid) != nullptr;
  it->second.pid = it->second.running ? result.pid : 0;
  return true;
}

bool Host::stop_service(const std::string& name) {
  auto it = services_.find(name);
  if (it == services_.end()) return false;
  if (it->second.pid != 0) kill_process(it->second.pid);
  it->second.running = false;
  it->second.pid = 0;
  return true;
}

bool Host::delete_service(const std::string& name) {
  auto it = services_.find(name);
  if (it == services_.end()) return false;
  stop_service(name);
  registry_.remove_key("hklm\\system\\currentcontrolset\\services\\" + name);
  services_.erase(it);
  return true;
}

const Service* Host::find_service(const std::string& name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<std::string> Host::service_names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, service] : services_) out.push_back(name);
  return out;
}

void Host::schedule_task(std::string task_name, const Path& binary,
                         sim::TimePoint at, sim::Duration period) {
  auto task = std::make_shared<ScheduledTask>();
  task->name = std::move(task_name);
  task->binary_path = binary;
  task->at = at;
  task->period = period;
  tasks_.push_back(task);
  trace(sim::TraceCategory::kProcess, "task.schedule",
        task->name + " at=" + sim::format_time(at));

  // Self-reference through a weak_ptr: the pending simulation event is the
  // only strong owner, so a never-cancelled periodic task dies with the
  // queue instead of leaking through a shared_ptr cycle.
  auto fire = std::make_shared<std::function<void(sim::TimePoint)>>();
  std::weak_ptr<std::function<void(sim::TimePoint)>> weak_fire = fire;
  *fire = [this, task, weak_fire](sim::TimePoint when) {
    auto self = weak_fire.lock();
    if (!self) return;
    sim_.at(when, [this, task, self, when] {
      if (task->cancelled || state_ != HostState::kRunning) return;
      ExecContext ctx;
      ctx.launched_by = "task-scheduler";
      ctx.elevated = true;
      execute_file(task->binary_path, ctx);
      if (task->period > 0 && !task->cancelled) (*self)(when + task->period);
    });
  };
  (*fire)(at);
}

std::vector<std::string> Host::task_names() const {
  std::vector<std::string> out;
  for (const auto& t : tasks_) {
    if (!t->cancelled) out.push_back(t->name);
  }
  return out;
}

bool Host::cancel_task(const std::string& task_name) {
  for (auto& t : tasks_) {
    if (t->name == task_name && !t->cancelled) {
      t->cancelled = true;
      return true;
    }
  }
  return false;
}

DriverLoadResult Host::load_driver(const Path& image_path,
                                   std::string driver_name,
                                   std::uint32_t capabilities) {
  const auto bytes = fs_.read_file(image_path);
  if (!bytes) return DriverLoadResult::kFileNotFound;
  pe::Image image;
  try {
    image = pe::Image::parse(*bytes);
  } catch (const pe::ParseError&) {
    return DriverLoadResult::kNotADriverImage;
  }

  const auto verdict = pki::verify_image(image, certs_, trust_, sim_.now());
  if (driver_policy_ == DriverPolicy::kRequireValidSignature &&
      !verdict.valid()) {
    trace(sim::TraceCategory::kDriver, "driver.rejected",
          driver_name + " (" + verdict.describe() + ")");
    log_event("kernel", "driver load rejected: " + driver_name);
    return verdict.status == pki::SignatureStatus::kUnsigned
               ? DriverLoadResult::kRejectedUnsigned
               : DriverLoadResult::kRejectedBadSignature;
  }

  LoadedDriver driver;
  driver.name = std::move(driver_name);
  driver.image_path = image_path;
  driver.capabilities = capabilities;
  driver.signer_subject = verdict.signer_subject;
  driver.signature_status = verdict.status;
  trace(sim::TraceCategory::kDriver, "driver.load",
        driver.name + " signer=\"" + driver.signer_subject + "\" status=" +
            pki::to_string(driver.signature_status));
  drivers_.push_back(std::move(driver));
  return DriverLoadResult::kLoaded;
}

bool Host::unload_driver(const std::string& driver_name) {
  auto it = std::find_if(
      drivers_.begin(), drivers_.end(),
      [&](const LoadedDriver& d) { return d.name == driver_name; });
  if (it == drivers_.end()) return false;
  drivers_.erase(it);
  return true;
}

bool Host::has_capability(DriverCapability cap) const {
  for (const auto& d : drivers_) {
    if ((d.capabilities & cap) != 0) return true;
  }
  return false;
}

bool Host::raw_overwrite_mbr(common::Bytes data, const std::string& actor) {
  if (!has_capability(kCapRawDiskAccess)) {
    trace(sim::TraceCategory::kDriver, "rawdisk.denied",
          actor + " attempted MBR write without a raw-disk driver");
    return false;
  }
  disk_.overwrite_mbr(std::move(data));
  trace(sim::TraceCategory::kDriver, "rawdisk.mbr-overwrite", actor);
  log_event("disk", "MBR overwritten by " + actor);
  return true;
}

bool Host::raw_overwrite_active_partition(common::Bytes data,
                                          const std::string& actor) {
  if (!has_capability(kCapRawDiskAccess)) return false;
  Partition* p = disk_.active_partition();
  if (p == nullptr) return false;
  p->boot_sector = std::move(data);
  trace(sim::TraceCategory::kDriver, "rawdisk.partition-overwrite", actor);
  return true;
}

bool Host::raw_write_sector(std::uint64_t lba, common::Bytes data,
                            const std::string& actor) {
  if (!has_capability(kCapRawDiskAccess)) return false;
  disk_.write_sector(lba, std::move(data));
  trace(sim::TraceCategory::kDriver, "rawdisk.sector-write",
        actor + " lba=" + std::to_string(lba));
  return true;
}

std::vector<std::string> Host::visible_dir_entries(const Path& dir) const {
  auto entries = fs_.list_dir(dir);
  if (!has_capability(kCapFileHiding) || file_hiding_filters_.empty()) {
    return entries;
  }
  std::erase_if(entries, [&](const std::string& entry) {
    const Path full = dir.join(entry);
    for (const auto& filter : file_hiding_filters_) {
      if (filter(full)) return true;
    }
    return false;
  });
  return entries;
}

void Host::boot() {
  if (!disk_.mbr_intact() || !disk_.active_partition_intact()) {
    state_ = HostState::kUnbootable;
    trace(sim::TraceCategory::kProcess, "host.boot-failed",
          "MBR/boot sector destroyed");
    return;
  }
  state_ = HostState::kRunning;
  // Start autostart services (ordered by name for determinism).
  for (auto& [name, service] : services_) {
    if (service.autostart && !service.running) start_service(name);
  }
}

void Host::reboot() {
  trace(sim::TraceCategory::kProcess, "host.reboot", "");
  while (!processes_.empty()) kill_process(processes_.front()->pid);
  for (auto& [name, service] : services_) {
    service.running = false;
    service.pid = 0;
  }
  boot();
}

bool Host::plug_usb(UsbDrive& drive) {
  if (state_ != HostState::kRunning) return false;
  if (drive.host_ != nullptr) return false;  // already plugged somewhere
  const auto letter = fs_.free_letter();
  if (!letter) return false;
  if (!fs_.mount(*letter, drive.volume())) return false;
  drive.host_ = this;
  drive.letter_ = *letter;
  drive.visited_.insert(name_);
  if (internet_access_) drive.seen_internet_ = true;
  usb_.push_back(&drive);
  trace(sim::TraceCategory::kUsb, "usb.plug",
        drive.id() + " as " + std::string{*letter, ':'});
  for (const auto& observer : usb_observers_) observer(drive);
  run_autoplay(drive);
  return true;
}

bool Host::unplug_usb(UsbDrive& drive) {
  if (drive.host_ != this) return false;
  fs_.unmount(drive.letter_);
  std::erase(usb_, &drive);
  trace(sim::TraceCategory::kUsb, "usb.unplug", drive.id());
  drive.host_ = nullptr;
  drive.letter_ = '\0';
  return true;
}

void Host::run_autoplay(UsbDrive& drive) {
  const Path root(std::string{drive.letter_, ':'});
  // 1) autorun.inf, honoured only while the autorun vulnerability is open.
  if (vulnerable_to(exploits::VulnId::kAutorunEnabled)) {
    const auto autorun = fs_.read_file(root.join("autorun.inf"));
    if (autorun) {
      const auto pos = autorun->find("open=");
      if (pos != std::string::npos) {
        auto target = autorun->substr(pos + 5);
        if (const auto eol = target.find('\n'); eol != std::string::npos) {
          target = target.substr(0, eol);
        }
        trace(sim::TraceCategory::kUsb, "usb.autorun", target);
        ExecContext ctx;
        ctx.launched_by = "autorun";
        ctx.from_autoplay = true;
        ctx.elevated = user_is_admin_;
        execute_file(root.join(target), ctx);
      }
    }
  }
  // 2) The user opens the drive in Explorer, rendering shortcut icons.
  explorer_open(root);
}

void Host::explorer_open(const Path& dir) {
  if (state_ != HostState::kRunning) return;
  for (const auto& entry : fs_.list_dir(dir)) {
    const Path full = dir.join(entry);
    if (full.extension() != "lnk") continue;
    const auto content = fs_.read_file(full);
    if (!content || content->rfind(kLnkExploitMagic, 0) != 0) continue;
    if (!vulnerable_to(exploits::VulnId::kMs10_046_Lnk)) {
      trace(sim::TraceCategory::kUsb, "lnk.render-benign", full.str());
      continue;
    }
    Path target(content->substr(kLnkExploitMagic.size()));
    // Relative targets resolve against the shortcut's own folder, so a stick
    // works no matter which drive letter the victim assigns it.
    if (target.drive() == '\0') target = dir.join(target.str());
    trace(sim::TraceCategory::kUsb, "lnk.exploit-trigger",
          full.str() + " -> " + target.str());
    ExecContext ctx;
    ctx.launched_by = "explorer-lnk";
    ctx.from_autoplay = true;
    ctx.elevated = user_is_admin_;
    execute_file(target, ctx);
  }
}

}  // namespace cyd::winsys
