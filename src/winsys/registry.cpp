#include "winsys/registry.hpp"

#include <cctype>

namespace cyd::winsys {

std::string Registry::canon(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_sep = false;
  for (char raw : s) {
    char c = raw == '/' ? '\\' : raw;
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (c == '\\') {
      if (last_sep || out.empty()) continue;
      last_sep = true;
    } else {
      last_sep = false;
    }
    out.push_back(c);
  }
  while (!out.empty() && out.back() == '\\') out.pop_back();
  return out;
}

void Registry::set(std::string_view key, std::string_view value,
                   RegValue data) {
  keys_[canon(key)][canon(value)] = std::move(data);
}

std::optional<RegValue> Registry::get(std::string_view key,
                                      std::string_view value) const {
  auto kit = keys_.find(canon(key));
  if (kit == keys_.end()) return std::nullopt;
  auto vit = kit->second.find(canon(value));
  if (vit == kit->second.end()) return std::nullopt;
  return vit->second;
}

std::optional<std::string> Registry::get_string(std::string_view key,
                                                std::string_view value) const {
  auto v = get(key, value);
  if (!v || !std::holds_alternative<std::string>(*v)) return std::nullopt;
  return std::get<std::string>(*v);
}

std::optional<std::uint32_t> Registry::get_dword(std::string_view key,
                                                 std::string_view value) const {
  auto v = get(key, value);
  if (!v || !std::holds_alternative<std::uint32_t>(*v)) return std::nullopt;
  return std::get<std::uint32_t>(*v);
}

bool Registry::remove_value(std::string_view key, std::string_view value) {
  auto kit = keys_.find(canon(key));
  if (kit == keys_.end()) return false;
  return kit->second.erase(canon(value)) > 0;
}

std::size_t Registry::remove_key(std::string_view key) {
  const std::string k = canon(key);
  const std::string prefix = k + "\\";
  std::size_t removed = 0;
  for (auto it = keys_.begin(); it != keys_.end();) {
    if (it->first == k ||
        it->first.compare(0, prefix.size(), prefix) == 0) {
      it = keys_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool Registry::key_exists(std::string_view key) const {
  return keys_.contains(canon(key));
}

std::vector<std::string> Registry::values(std::string_view key) const {
  std::vector<std::string> out;
  auto kit = keys_.find(canon(key));
  if (kit == keys_.end()) return out;
  out.reserve(kit->second.size());
  for (const auto& [name, data] : kit->second) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, std::string>> Registry::all_entries()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, vals] : keys_) {
    for (const auto& [name, data] : vals) out.emplace_back(key, name);
  }
  return out;
}

}  // namespace cyd::winsys
