#include "winsys/registry.hpp"

#include <cassert>
#include <cctype>

namespace cyd::winsys {

namespace {

using ValueMap = std::map<std::string, RegValue>;

const ValueMap kNoValues;

/// Visits the merged value names of one key in sorted order: delta shadows
/// base, whiteouted base names are skipped.
template <typename Fn>
void merge_value_names(const ValueMap& delta, const ValueMap& base,
                       const std::set<std::string>* whiteouts, Fn&& fn) {
  auto di = delta.begin();
  auto bi = base.begin();
  while (di != delta.end() || bi != base.end()) {
    if (bi == base.end() || (di != delta.end() && di->first <= bi->first)) {
      if (bi != base.end() && bi->first == di->first) ++bi;
      fn(di->first);
      ++di;
    } else {
      if (whiteouts == nullptr || !whiteouts->contains(bi->first)) {
        fn(bi->first);
      }
      ++bi;
    }
  }
}

}  // namespace

void Registry::set_base(std::shared_ptr<const Registry> base) {
  assert(base == nullptr || base->base_ == nullptr);
  base_ = std::move(base);
}

std::string Registry::canon(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_sep = false;
  for (char raw : s) {
    char c = raw == '/' ? '\\' : raw;
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (c == '\\') {
      if (last_sep || out.empty()) continue;
      last_sep = true;
    } else {
      last_sep = false;
    }
    out.push_back(c);
  }
  while (!out.empty() && out.back() == '\\') out.pop_back();
  return out;
}

void Registry::set(std::string_view key, std::string_view value,
                   RegValue data) {
  const std::string k = canon(key);
  const std::string v = canon(value);
  if (auto dit = deleted_values_.find(k); dit != deleted_values_.end()) {
    dit->second.erase(v);
  }
  keys_[k][v] = std::move(data);
}

std::optional<RegValue> Registry::get(std::string_view key,
                                      std::string_view value) const {
  const std::string k = canon(key);
  const std::string v = canon(value);
  if (auto kit = keys_.find(k); kit != keys_.end()) {
    if (auto vit = kit->second.find(v); vit != kit->second.end()) {
      return vit->second;
    }
  }
  if (base_ == nullptr || deleted_keys_.contains(k)) return std::nullopt;
  if (auto dit = deleted_values_.find(k);
      dit != deleted_values_.end() && dit->second.contains(v)) {
    return std::nullopt;
  }
  auto bit = base_->keys_.find(k);
  if (bit == base_->keys_.end()) return std::nullopt;
  auto vit = bit->second.find(v);
  if (vit == bit->second.end()) return std::nullopt;
  return vit->second;
}

std::optional<std::string> Registry::get_string(std::string_view key,
                                                std::string_view value) const {
  auto v = get(key, value);
  if (!v || !std::holds_alternative<std::string>(*v)) return std::nullopt;
  return std::get<std::string>(*v);
}

std::optional<std::uint32_t> Registry::get_dword(std::string_view key,
                                                 std::string_view value) const {
  auto v = get(key, value);
  if (!v || !std::holds_alternative<std::uint32_t>(*v)) return std::nullopt;
  return std::get<std::uint32_t>(*v);
}

bool Registry::remove_value(std::string_view key, std::string_view value) {
  const std::string k = canon(key);
  const std::string v = canon(value);
  bool removed = false;
  if (auto kit = keys_.find(k); kit != keys_.end()) {
    removed = kit->second.erase(v) > 0;
  }
  if (base_ != nullptr && !deleted_keys_.contains(k)) {
    auto bit = base_->keys_.find(k);
    if (bit != base_->keys_.end() && bit->second.contains(v)) {
      if (deleted_values_[k].insert(v).second) removed = true;
    }
  }
  return removed;
}

std::size_t Registry::remove_key(std::string_view key) {
  const std::string k = canon(key);
  const std::string prefix = k + "\\";
  auto in_subtree = [&](const std::string& s) {
    return s == k || s.compare(0, prefix.size(), prefix) == 0;
  };
  std::size_t removed = 0;
  std::set<std::string> dropped;  // delta keys erased, to avoid double count
  for (auto it = keys_.lower_bound(k);
       it != keys_.end() && it->first.compare(0, k.size(), k) == 0;) {
    if (in_subtree(it->first)) {
      dropped.insert(it->first);
      it = keys_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (base_ != nullptr) {
    for (auto it = base_->keys_.lower_bound(k);
         it != base_->keys_.end() && it->first.compare(0, k.size(), k) == 0;
         ++it) {
      if (!in_subtree(it->first)) continue;
      deleted_values_.erase(it->first);  // key whiteout covers them
      if (deleted_keys_.insert(it->first).second &&
          !dropped.contains(it->first)) {
        ++removed;
      }
    }
  }
  return removed;
}

bool Registry::key_exists(std::string_view key) const {
  const std::string k = canon(key);
  if (keys_.contains(k)) return true;
  if (deleted_keys_.contains(k)) return false;
  return base_ != nullptr && base_->keys_.contains(k);
}

std::vector<std::string> Registry::values(std::string_view key) const {
  const std::string k = canon(key);
  std::vector<std::string> out;
  auto kit = keys_.find(k);
  const ValueMap* delta = kit == keys_.end() ? nullptr : &kit->second;
  const ValueMap* base = nullptr;
  if (base_ != nullptr && !deleted_keys_.contains(k)) {
    auto bit = base_->keys_.find(k);
    if (bit != base_->keys_.end()) base = &bit->second;
  }
  if (delta == nullptr && base == nullptr) return out;
  const std::set<std::string>* whiteouts = nullptr;
  if (auto dit = deleted_values_.find(k); dit != deleted_values_.end()) {
    whiteouts = &dit->second;
  }
  merge_value_names(delta != nullptr ? *delta : kNoValues,
                    base != nullptr ? *base : kNoValues, whiteouts,
                    [&out](const std::string& name) { out.push_back(name); });
  return out;
}

std::vector<std::pair<std::string, std::string>> Registry::all_entries()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  auto emit_key = [&](const std::string& key, const ValueMap* delta,
                      const ValueMap* base) {
    const std::set<std::string>* whiteouts = nullptr;
    if (auto dit = deleted_values_.find(key); dit != deleted_values_.end()) {
      whiteouts = &dit->second;
    }
    merge_value_names(
        delta != nullptr ? *delta : kNoValues,
        base != nullptr ? *base : kNoValues, whiteouts,
        [&](const std::string& name) { out.emplace_back(key, name); });
  };
  auto di = keys_.begin();
  auto bi = base_ != nullptr ? base_->keys_.begin()
                             : decltype(keys_.begin()){};
  const auto bend = base_ != nullptr ? base_->keys_.end()
                                     : decltype(keys_.begin()){};
  while (di != keys_.end() || bi != bend) {
    if (bi == bend || (di != keys_.end() && di->first <= bi->first)) {
      const ValueMap* base = nullptr;
      if (bi != bend && bi->first == di->first) {
        if (!deleted_keys_.contains(di->first)) base = &bi->second;
        ++bi;
      }
      emit_key(di->first, &di->second, base);
      ++di;
    } else {
      if (!deleted_keys_.contains(bi->first)) {
        emit_key(bi->first, nullptr, &bi->second);
      }
      ++bi;
    }
  }
  return out;
}

}  // namespace cyd::winsys
