#pragma once
// Removable USB media.
//
// USB drives are the campaign's signature infection vector (paper §V-E):
// Stuxnet's LNK-laced sticks seeded Natanz, and Flame used a hidden on-stick
// database to ferry stolen documents out of air-gapped networks. A UsbDrive
// owns a Volume that is mounted into whichever host it is currently plugged
// into; the drive also remembers where it has been, which is what Flame's
// air-gap exfiltration logic keys on.

#include <memory>
#include <set>
#include <string>

#include "winsys/filesystem.hpp"

namespace cyd::winsys {

class Host;

class UsbDrive {
 public:
  explicit UsbDrive(std::string id)
      : id_(std::move(id)), volume_(std::make_shared<Volume>()) {}

  const std::string& id() const { return id_; }
  const std::shared_ptr<Volume>& volume() const { return volume_; }

  /// Host currently holding the stick (nullptr while in a pocket).
  Host* plugged_into() const { return host_; }
  /// Mount letter on the current host ('\0' when unplugged).
  char mount_letter() const { return letter_; }

  /// Names of hosts this stick has ever been plugged into.
  const std::set<std::string>& visited_hosts() const { return visited_; }
  /// True once the stick has been in any internet-connected host — the
  /// condition Flame checks before staging stolen files onto it.
  bool has_seen_internet_host() const { return seen_internet_; }

 private:
  friend class Host;  // plug/unplug bookkeeping

  std::string id_;
  std::shared_ptr<Volume> volume_;
  Host* host_ = nullptr;
  char letter_ = '\0';
  std::set<std::string> visited_;
  bool seen_internet_ = false;
};

}  // namespace cyd::winsys
