#pragma once
// Executable behaviour binding.
//
// A simulated PE carries a `program_id`; when a host executes the file, the
// scenario-wide ProgramRegistry maps that id to a factory producing the
// in-sim behaviour object. Copying the file bytes to another host and
// executing them there reproduces the behaviour — exactly how droppers
// propagate. Benign software (Step 7, IE, services) and malware components
// are all Programs.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "winsys/path.hpp"

namespace cyd::winsys {

class Host;

/// How and by whom the execution was initiated; used for trace attribution
/// and by exploits that care about the launch channel.
struct ExecContext {
  Path image_path;
  std::string launched_by;   // "explorer", "services", "task-scheduler"...
  bool elevated = false;     // SYSTEM-level (service/exploited) execution
  bool from_autoplay = false;
};

class Program {
 public:
  virtual ~Program() = default;

  /// Runs the program on `host`. Returns true to stay resident (the process
  /// remains in the process list until killed); false for run-to-completion.
  virtual bool run(Host& host, const ExecContext& ctx) = 0;

  /// Process-list name, e.g. "trksvr.exe".
  virtual std::string process_name() const = 0;
};

using ProgramFactory = std::function<std::unique_ptr<Program>()>;

class ProgramRegistry {
 public:
  /// Registers (or replaces) the behaviour behind a program id.
  void register_program(std::string id, ProgramFactory factory) {
    factories_[std::move(id)] = std::move(factory);
  }

  bool known(const std::string& id) const { return factories_.contains(id); }

  /// Instantiates the behaviour; nullptr for unknown ids (the file is then
  /// inert data, like an executable for a missing runtime).
  std::unique_ptr<Program> create(const std::string& id) const {
    auto it = factories_.find(id);
    return it == factories_.end() ? nullptr : it->second();
  }

 private:
  std::map<std::string, ProgramFactory> factories_;
};

}  // namespace cyd::winsys
