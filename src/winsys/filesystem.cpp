#include "winsys/filesystem.hpp"

#include <algorithm>

namespace cyd::winsys {

std::size_t Volume::used_bytes() const {
  std::size_t total = 0;
  for_each_file(
      [&total](const std::string&, const FileNode& node) {
        total += node.data.size();
      });
  return total;
}

std::string FileSystem::rel(const Path& p) {
  const std::string& s = p.str();
  return s.size() > 3 ? s.substr(3) : std::string{};
}

Path FileSystem::abs(char letter, const std::string& rel_path) {
  Path root(std::string{letter, ':'});
  return rel_path.empty() ? root : root.join(rel_path);
}

Volume& FileSystem::add_volume(char letter) {
  auto it = volumes_.emplace(letter, std::make_shared<Volume>()).first;
  return *it->second;
}

bool FileSystem::mount(char letter, std::shared_ptr<Volume> volume) {
  if (volumes_.contains(letter) || volume == nullptr) return false;
  volumes_.emplace(letter, std::move(volume));
  removable_.insert(letter);
  return true;
}

bool FileSystem::unmount(char letter) {
  if (!removable_.contains(letter)) return false;
  removable_.erase(letter);
  volumes_.erase(letter);
  return true;
}

std::optional<char> FileSystem::free_letter() const {
  for (char c = 'd'; c <= 'z'; ++c) {
    if (!volumes_.contains(c)) return c;
  }
  return std::nullopt;
}

Volume* FileSystem::volume(char letter) {
  auto it = volumes_.find(letter);
  return it == volumes_.end() ? nullptr : it->second.get();
}

const Volume* FileSystem::volume(char letter) const {
  auto it = volumes_.find(letter);
  return it == volumes_.end() ? nullptr : it->second.get();
}

std::vector<char> FileSystem::mounted_letters() const {
  std::vector<char> out;
  out.reserve(volumes_.size());
  for (const auto& [letter, vol] : volumes_) out.push_back(letter);
  return out;
}

std::vector<char> FileSystem::removable_letters() const {
  return {removable_.begin(), removable_.end()};
}

Volume* FileSystem::volume_of(const Path& p) {
  const char d = p.drive();
  return d == '\0' ? nullptr : volume(d);
}

const Volume* FileSystem::volume_of(const Path& p) const {
  const char d = p.drive();
  return d == '\0' ? nullptr : volume(d);
}

bool FileSystem::mkdirs(const Path& dir) {
  Volume* vol = volume_of(dir);
  if (vol == nullptr) return false;
  // Validate the whole component chain before touching the volume: a file
  // blocking a deeper component must not leave freshly inserted ancestors
  // behind (callers like write_file/rename treat a false return as "nothing
  // happened").
  std::vector<std::string> chain;
  std::string current;
  for (const auto& comp : dir.components()) {
    current = current.empty() ? comp : current + "\\" + comp;
    if (vol->has_file(current)) return false;  // file in the way
    chain.push_back(current);
  }
  for (auto& c : chain) vol->add_dir(std::move(c));
  return true;
}

bool FileSystem::exists(const Path& p) const {
  return is_dir(p) || is_file(p);
}

bool FileSystem::is_dir(const Path& p) const {
  const Volume* vol = volume_of(p);
  return vol != nullptr && vol->has_dir(rel(p));
}

bool FileSystem::is_file(const Path& p) const {
  const Volume* vol = volume_of(p);
  return vol != nullptr && vol->has_file(rel(p));
}

bool FileSystem::write_file(const Path& p, common::Bytes data,
                            sim::TimePoint now, FileAttr attr) {
  Volume* vol = volume_of(p);
  if (vol == nullptr || p.is_root()) return false;
  const std::string r = rel(p);
  if (vol->has_dir(r)) return false;  // directory in the way
  if (!mkdirs(p.parent())) return false;

  if (const FileNode* existing = vol->find_file(r); existing == nullptr) {
    FileNode node;
    node.data = data;
    node.attr = attr;
    node.created = now;
    node.modified = now;
    vol->put_file(r, std::move(node));
  } else {
    if (existing->attr.readonly) return false;
    FileNode* node = vol->materialize_file(r);
    ++node->overwrite_count;
    node->data = data;
    node->modified = now;
  }
  notify(FsEvent{FsEvent::Kind::kWrite, p, &data});
  return true;
}

std::optional<common::Bytes> FileSystem::read_file(const Path& p) const {
  const Volume* vol = volume_of(p);
  if (vol == nullptr) return std::nullopt;
  const FileNode* node = vol->find_file(rel(p));
  if (node == nullptr) return std::nullopt;
  notify(FsEvent{FsEvent::Kind::kRead, p, nullptr});
  return node->data;
}

const FileNode* FileSystem::stat(const Path& p) const {
  const Volume* vol = volume_of(p);
  return vol == nullptr ? nullptr : vol->find_file(rel(p));
}

FileNode* FileSystem::stat_mutable(const Path& p) {
  Volume* vol = volume_of(p);
  return vol == nullptr ? nullptr : vol->materialize_file(rel(p));
}

bool FileSystem::delete_file(const Path& p, sim::TimePoint now, bool shred) {
  Volume* vol = volume_of(p);
  if (vol == nullptr) return false;
  const std::string r = rel(p);
  const FileNode* node = vol->find_file(r);
  if (node == nullptr) return false;
  Tombstone stone;
  stone.rel_path = r;
  stone.deleted_at = now;
  stone.shredded = shred;
  // Shredded remnants keep nothing; plain deletion leaves the last content
  // recoverable (which is why wipers overwrite *before* deleting).
  stone.data = shred ? common::Bytes() : node->data;
  vol->tombstones().push_back(std::move(stone));
  vol->erase_file(r);
  notify(FsEvent{FsEvent::Kind::kDelete, p, nullptr});
  return true;
}

std::size_t FileSystem::delete_tree(const Path& dir, sim::TimePoint now,
                                    bool shred) {
  Volume* vol = volume_of(dir);
  if (vol == nullptr) return 0;
  std::size_t removed = 0;
  for (const Path& file : find_files(dir)) {
    if (delete_file(file, now, shred)) ++removed;
  }
  // Drop the directory entries at and below dir, except the root itself.
  const std::string r = rel(dir);
  std::vector<std::string> doomed;
  vol->for_each_dir_under(r, [&](const std::string& d) {
    const bool below =
        !r.empty()
            ? (d == r || (d.size() > r.size() && d.compare(0, r.size(), r) == 0 &&
                          d[r.size()] == '\\'))
            : !d.empty();
    if (below) doomed.push_back(d);
  });
  for (const auto& d : doomed) vol->erase_dir(d);
  return removed;
}

bool FileSystem::rename(const Path& from, const Path& to, sim::TimePoint now) {
  Volume* src = volume_of(from);
  Volume* dst = volume_of(to);
  if (src == nullptr || dst == nullptr) return false;
  const std::string from_rel = rel(from);
  const FileNode* src_node = src->find_file(from_rel);
  if (src_node == nullptr) return false;
  const std::string to_rel = rel(to);
  if (dst->has_file(to_rel) || dst->has_dir(to_rel)) {
    return false;
  }
  if (!mkdirs(to.parent())) return false;
  FileNode node = *src_node;
  node.modified = now;
  src->erase_file(from_rel);
  dst->put_file(to_rel, std::move(node));
  notify(FsEvent{FsEvent::Kind::kRename, to, nullptr});
  return true;
}

std::vector<std::string> FileSystem::list_dir(const Path& dir) const {
  std::vector<std::string> out;
  const Volume* vol = volume_of(dir);
  if (vol == nullptr || !vol->has_dir(rel(dir))) return out;
  const std::string r = rel(dir);
  const std::string prefix = r.empty() ? "" : r + "\\";
  auto collect = [&](const std::string& entry) {
    if (entry.empty() || entry.size() <= prefix.size()) return;
    if (!prefix.empty() && entry.compare(0, prefix.size(), prefix) != 0) {
      return;
    }
    const std::string rest = entry.substr(prefix.size());
    if (!rest.empty() && rest.find('\\') == std::string::npos) {
      out.push_back(rest);
    }
  };
  vol->for_each_dir_under(prefix, collect);
  vol->for_each_file_under(
      prefix, [&](const std::string& path, const FileNode&) { collect(path); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Path> FileSystem::find_files(const Path& dir) const {
  std::vector<Path> out;
  const Volume* vol = volume_of(dir);
  if (vol == nullptr) return out;
  const std::string r = rel(dir);
  vol->for_each_file_under(r, [&](const std::string& path, const FileNode&) {
    const bool within =
        r.empty() || path == r ||
        (path.size() > r.size() && path.compare(0, r.size(), r) == 0 &&
         path[r.size()] == '\\');
    if (within) out.push_back(abs(dir.drive(), path));
  });
  return out;
}

std::vector<Path> FileSystem::all_files() const {
  std::vector<Path> out;
  for (const auto& [letter, vol] : volumes_) {
    vol->for_each_file([&](const std::string& path, const FileNode&) {
      out.push_back(abs(letter, path));
    });
  }
  return out;
}

void FileSystem::notify(const FsEvent& event) const {
  for (const auto& observer : observers_) observer(event);
}

}  // namespace cyd::winsys
