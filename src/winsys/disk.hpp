#pragma once
// Physical disk model: MBR, partition table, raw sector access.
//
// User-mode code cannot touch the MBR; Shamoon's whole reason for shipping
// the Eldos-signed raw-disk driver is to open this gate. Host::raw_disk_*
// enforce the driver-capability check; this class is the storage itself.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace cyd::winsys {

struct Partition {
  std::string name;       // "system", "data"
  bool active = false;    // boot partition flag
  common::Bytes boot_sector;
};

class Disk {
 public:
  Disk();

  const common::Bytes& mbr() const { return mbr_; }
  void overwrite_mbr(common::Bytes data) { mbr_ = std::move(data); }
  /// True while the MBR still carries valid boot code.
  bool mbr_intact() const;

  std::vector<Partition>& partitions() { return partitions_; }
  const std::vector<Partition>& partitions() const { return partitions_; }
  Partition* active_partition();
  /// True while the active partition's boot sector is valid.
  bool active_partition_intact() const;

  /// Raw sector store for arbitrary low-level writes (forensic carving reads
  /// it back). Sector numbers are sparse keys.
  void write_sector(std::uint64_t lba, common::Bytes data);
  const common::Bytes* read_sector(std::uint64_t lba) const;
  std::size_t raw_write_count() const { return raw_writes_; }

  /// The well-known valid boot signature the model uses.
  static common::Bytes valid_boot_code();

 private:
  common::Bytes mbr_;
  std::vector<Partition> partitions_;
  std::map<std::uint64_t, common::Bytes> sectors_;
  std::size_t raw_writes_ = 0;
};

}  // namespace cyd::winsys
