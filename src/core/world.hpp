#pragma once
// World: the top-level container a scenario lives in.
//
// Owns the simulation, the program/proxy registries, the network, the PKI
// landscape, every host, stick and PLC, plus the campaign tracker. Examples
// and benches build a World, wire malware families and defenders into it,
// and run the clock.

#include <memory>
#include <string>
#include <vector>

#include "malware/tracker.hpp"
#include "net/network.hpp"
#include "net/stack.hpp"
#include "pki/licensing.hpp"
#include "scada/plc.hpp"
#include "scada/step7.hpp"
#include "sim/simulation.hpp"
#include "winsys/host.hpp"
#include "winsys/usb.hpp"

namespace cyd::core {

class World {
 public:
  explicit World(std::uint64_t seed = 0x77071d);

  sim::Simulation& sim() { return sim_; }
  winsys::ProgramRegistry& programs() { return programs_; }
  net::Network& network() { return network_; }
  scada::S7ProxyRegistry& s7_registry() { return s7_registry_; }
  malware::InfectionTracker& tracker() { return tracker_; }
  pki::MicrosoftPki& microsoft() { return *microsoft_; }
  sim::Rng& rng() { return rng_; }

  /// Creates a host and joins it to `subnet` with an auto-assigned address.
  winsys::Host& add_host(const std::string& name, winsys::OsVersion os,
                         const std::string& subnet);
  winsys::Host* find_host(const std::string& name);
  std::vector<winsys::Host*> hosts();
  std::size_t host_count() const { return hosts_.size(); }

  winsys::UsbDrive& add_usb(const std::string& id);
  scada::Plc& add_plc(const std::string& name);
  const std::vector<std::unique_ptr<scada::Plc>>& plcs() const {
    return plcs_;
  }

  /// Registers the benign internet: connectivity landmarks plus a genuine
  /// update.microsoft.com serving properly signed (empty-change) updates.
  void add_internet_landmarks();

  /// Gives a host the stock Microsoft certificate landscape.
  void provision_standard_pki(winsys::Host& host);

  // --- fleet-wide helpers ---
  std::size_t count_unbootable() const;
  std::size_t count_infected(const std::string& family) const;

 private:
  sim::Simulation sim_;
  sim::Rng rng_;
  winsys::ProgramRegistry programs_;
  net::Network network_;
  scada::S7ProxyRegistry s7_registry_;
  malware::InfectionTracker tracker_;
  std::unique_ptr<pki::MicrosoftPki> microsoft_;
  std::vector<std::unique_ptr<winsys::Host>> hosts_;
  std::vector<std::unique_ptr<winsys::UsbDrive>> usb_drives_;
  std::vector<std::unique_ptr<scada::Plc>> plcs_;
  std::map<std::string, int> subnet_counters_;
  int subnet_index_ = 0;
};

}  // namespace cyd::core
