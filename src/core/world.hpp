#pragma once
// World: the top-level container a scenario lives in.
//
// Owns the simulation, the program/proxy registries, the network, the PKI
// landscape, every host, stick and PLC, plus the campaign tracker. Examples
// and benches build a World, wire malware families and defenders into it,
// and run the clock.

#include <memory>
#include <string>
#include <vector>

#include "malware/tracker.hpp"
#include "net/network.hpp"
#include "net/stack.hpp"
#include "pki/licensing.hpp"
#include "scada/plc.hpp"
#include "scada/step7.hpp"
#include "sim/sharded_scheduler.hpp"
#include "sim/simulation.hpp"
#include "winsys/host.hpp"
#include "winsys/host_image.hpp"
#include "winsys/usb.hpp"

namespace cyd::core {

/// Knobs for add_fleet. Defaults suit epidemic-scale sweeps: hosts carry a
/// small bounded event log and split across LANs of 256.
struct FleetOptions {
  /// Hosts per LAN subnet within the site.
  std::size_t lan_size = 256;
  /// Event-log cap applied to every fleet host (see Host::log_event).
  std::size_t event_log_cap = 64;
  /// Percentage of the fleet with direct internet access; host i gets it
  /// when i*100/count < internet_pct (the make_office_fleet formula).
  int internet_pct = 0;
  /// Interactive users run as admin (matching the 2010-era office default).
  bool user_is_admin = true;
  /// Vulnerability surface applied to every fleet host.
  std::vector<exploits::VulnId> vulns;
};

/// A contiguous run of fleet hosts inside World::hosts().
struct FleetHandle {
  std::size_t first = 0;
  std::size_t count = 0;
};

class World {
 public:
  explicit World(std::uint64_t seed = 0x77071d);

  sim::Simulation& sim() { return sim_; }
  winsys::ProgramRegistry& programs() { return programs_; }
  net::Network& network() { return network_; }
  scada::S7ProxyRegistry& s7_registry() { return s7_registry_; }
  malware::InfectionTracker& tracker() { return tracker_; }
  pki::MicrosoftPki& microsoft() { return *microsoft_; }
  sim::Rng& rng() { return rng_; }

  /// Creates a host and joins it to `subnet` with an auto-assigned address.
  winsys::Host& add_host(const std::string& name, winsys::OsVersion os,
                         const std::string& subnet);
  /// Stamps `count` image-backed hosts of one archetype into `site`,
  /// splitting them across LANs of options.lan_size ("<site>-lan<k>"
  /// subnets registered with the network's site layer). Hosts share the
  /// world's per-archetype template image — standard PKI included — so the
  /// marginal cost per host is one empty delta, which is what makes
  /// 10⁵–10⁶-host worlds affordable.
  FleetHandle add_fleet(winsys::HostArchetype archetype, std::size_t count,
                        const std::string& site,
                        const FleetOptions& options = {});
  /// The world's shared template image for an archetype (built lazily, with
  /// the Microsoft certificate landscape baked in).
  const std::shared_ptr<const winsys::HostImage>& archetype_image(
      winsys::HostArchetype archetype);
  winsys::Host* find_host(const std::string& name);
  /// Stable view of every host in creation order. The vector is cached —
  /// fleet-wide helpers and sweep loops can call this per query without
  /// re-materializing it.
  const std::vector<winsys::Host*>& hosts();
  std::size_t host_count() const { return hosts_.size(); }

  winsys::UsbDrive& add_usb(const std::string& id);
  scada::Plc& add_plc(const std::string& name);
  const std::vector<std::unique_ptr<scada::Plc>>& plcs() const {
    return plcs_;
  }

  /// Registers the benign internet: connectivity landmarks plus a genuine
  /// update.microsoft.com serving properly signed (empty-change) updates.
  void add_internet_landmarks();

  /// Gives a host the stock Microsoft certificate landscape by layering its
  /// cert/trust stores over one shared base store (built on first use) —
  /// trust-check results are identical to the old per-host deep copy, at
  /// zero marginal memory per host. Image-backed hosts already carry the
  /// landscape through their image and are left untouched.
  void provision_standard_pki(winsys::Host& host);

  // --- fleet-wide helpers ---
  std::size_t count_unbootable() const;
  std::size_t count_infected(const std::string& family) const;

  /// Shard topology for sim::ShardedScheduler, derived from the network's
  /// site layer: one shard per site in name order (the map's iteration
  /// order, so the labels — and with them the shard indices and the trace
  /// checksum — are stable run to run), one channel per directed WAN edge
  /// carrying the link latency. Air-gapped sites simply have no channels;
  /// model their USB couriers as extra ShardChannels on the returned plan
  /// before constructing the scheduler.
  sim::ShardPlan shard_plan() const;

 private:
  sim::Simulation sim_;
  sim::Rng rng_;
  winsys::ProgramRegistry programs_;
  net::Network network_;
  scada::S7ProxyRegistry s7_registry_;
  malware::InfectionTracker tracker_;
  std::unique_ptr<pki::MicrosoftPki> microsoft_;
  std::vector<std::unique_ptr<winsys::Host>> hosts_;
  std::vector<std::unique_ptr<winsys::UsbDrive>> usb_drives_;
  std::vector<std::unique_ptr<scada::Plc>> plcs_;
  std::map<std::string, int> subnet_counters_;
  int subnet_index_ = 0;

  winsys::Host& register_host(std::unique_ptr<winsys::Host> host,
                              const std::string& subnet);

  std::vector<winsys::Host*> host_ptrs_;               // mirrors hosts_
  std::map<std::string, winsys::Host*> host_index_;    // first name wins
  std::map<winsys::HostArchetype, std::shared_ptr<const winsys::HostImage>>
      images_;
  std::shared_ptr<pki::CertStore> standard_certs_;     // shared PKI base
  std::shared_ptr<pki::TrustStore> standard_trust_;
};

}  // namespace cyd::core
