#include "core/world.hpp"

#include "pki/signing.hpp"

namespace cyd::core {

World::World(std::uint64_t seed) : sim_(seed), rng_(seed ^ 0xab1e), network_(sim_) {
  microsoft_ = std::make_unique<pki::MicrosoftPki>(sim_.now(), seed ^ 0x777);
}

winsys::Host& World::add_host(const std::string& name, winsys::OsVersion os,
                              const std::string& subnet) {
  hosts_.push_back(
      std::make_unique<winsys::Host>(sim_, programs_, name, os));
  winsys::Host& host = *hosts_.back();
  if (!subnet_counters_.contains(subnet)) {
    subnet_counters_[subnet] = 0;
    ++subnet_index_;
  }
  const int device = ++subnet_counters_[subnet];
  network_.attach(host, subnet,
                  "10." + std::to_string(subnet_index_) + ".0." +
                      std::to_string(device));
  return host;
}

winsys::Host* World::find_host(const std::string& name) {
  for (auto& host : hosts_) {
    if (host->name() == name) return host.get();
  }
  return nullptr;
}

std::vector<winsys::Host*> World::hosts() {
  std::vector<winsys::Host*> out;
  out.reserve(hosts_.size());
  for (auto& host : hosts_) out.push_back(host.get());
  return out;
}

winsys::UsbDrive& World::add_usb(const std::string& id) {
  usb_drives_.push_back(std::make_unique<winsys::UsbDrive>(id));
  return *usb_drives_.back();
}

scada::Plc& World::add_plc(const std::string& name) {
  plcs_.push_back(std::make_unique<scada::Plc>(sim_, name));
  return *plcs_.back();
}

void World::add_internet_landmarks() {
  for (const char* domain : {"www.windowsupdate.com", "www.msn.com",
                             "www.bbc.co.uk"}) {
    network_.register_internet_service(domain, [](const net::HttpRequest&) {
      return net::HttpResponse{200, "landmark"};
    });
  }
  // A genuine Windows Update server. It usually has nothing new; scenario
  // code can flip `serving` to model Patch Tuesday.
  network_.register_internet_service(
      "update.microsoft.com",
      [](const net::HttpRequest&) { return net::HttpResponse{204, {}}; });
}

void World::provision_standard_pki(winsys::Host& host) {
  microsoft_->install_into(host.cert_store());
  microsoft_->anchor_root(host.trust_store());
}

std::size_t World::count_unbootable() const {
  std::size_t n = 0;
  for (const auto& host : hosts_) {
    if (host->state() == winsys::HostState::kUnbootable) ++n;
  }
  return n;
}

std::size_t World::count_infected(const std::string& family) const {
  std::size_t n = 0;
  for (const auto& host : hosts_) {
    if (host->has_component(family)) ++n;
  }
  return n;
}

}  // namespace cyd::core
