#include "core/world.hpp"

#include <cstdio>

#include "pki/signing.hpp"

namespace cyd::core {

World::World(std::uint64_t seed) : sim_(seed), rng_(seed ^ 0xab1e), network_(sim_) {
  microsoft_ = std::make_unique<pki::MicrosoftPki>(sim_.now(), seed ^ 0x777);
}

winsys::Host& World::register_host(std::unique_ptr<winsys::Host> host,
                                   const std::string& subnet) {
  hosts_.push_back(std::move(host));
  winsys::Host& h = *hosts_.back();
  if (!subnet_counters_.contains(subnet)) {
    subnet_counters_[subnet] = 0;
    ++subnet_index_;
  }
  const int device = ++subnet_counters_[subnet];
  network_.attach(h, subnet,
                  "10." + std::to_string(subnet_index_) + ".0." +
                      std::to_string(device));
  host_ptrs_.push_back(&h);
  host_index_.emplace(h.name(), &h);  // first name wins, like the old scan
  return h;
}

winsys::Host& World::add_host(const std::string& name, winsys::OsVersion os,
                              const std::string& subnet) {
  return register_host(
      std::make_unique<winsys::Host>(sim_, programs_, name, os), subnet);
}

namespace {

const char* archetype_stem(winsys::HostArchetype a) {
  switch (a) {
    case winsys::HostArchetype::kOfficePc: return "pc";
    case winsys::HostArchetype::kEngineeringStation: return "eng";
    case winsys::HostArchetype::kHmi: return "hmi";
    case winsys::HostArchetype::kServer: return "srv";
    case winsys::HostArchetype::kFileServer: return "fsr";
    case winsys::HostArchetype::kDomainController: return "dc";
    case winsys::HostArchetype::kLaptop: return "lap";
    case winsys::HostArchetype::kKiosk: return "kio";
  }
  return "host";
}

}  // namespace

const std::shared_ptr<const winsys::HostImage>& World::archetype_image(
    winsys::HostArchetype archetype) {
  auto& slot = images_[archetype];
  if (slot == nullptr) {
    winsys::HostImage::Builder builder(archetype,
                                       winsys::default_os(archetype));
    microsoft_->install_into(builder.cert_store());
    microsoft_->anchor_root(builder.trust_store());
    slot = builder.build();
  }
  return slot;
}

FleetHandle World::add_fleet(winsys::HostArchetype archetype,
                             std::size_t count, const std::string& site,
                             const FleetOptions& options) {
  const auto image = archetype_image(archetype);
  network_.add_site(site);
  const std::size_t lan_size = options.lan_size > 0 ? options.lan_size : 1;
  const FleetHandle handle{hosts_.size(), count};
  const char* stem = archetype_stem(archetype);
  std::string subnet;
  char name[96];
  for (std::size_t i = 0; i < count; ++i) {
    if (i % lan_size == 0) {
      subnet = site + "-lan" + std::to_string(i / lan_size);
      network_.add_lan(site, subnet);
    }
    std::snprintf(name, sizeof(name), "%s-%s%05zu", site.c_str(), stem, i);
    winsys::Host& host = register_host(
        std::make_unique<winsys::Host>(sim_, programs_, name, image),
        subnet);
    host.set_event_log_cap(options.event_log_cap);
    host.set_user_is_admin(options.user_is_admin);
    if (options.internet_pct > 0 &&
        i * 100 / count < static_cast<std::size_t>(options.internet_pct)) {
      host.set_internet_access(true);
    }
    for (exploits::VulnId v : options.vulns) host.make_vulnerable(v);
  }
  return handle;
}

winsys::Host* World::find_host(const std::string& name) {
  auto it = host_index_.find(name);
  return it == host_index_.end() ? nullptr : it->second;
}

const std::vector<winsys::Host*>& World::hosts() { return host_ptrs_; }

winsys::UsbDrive& World::add_usb(const std::string& id) {
  usb_drives_.push_back(std::make_unique<winsys::UsbDrive>(id));
  return *usb_drives_.back();
}

scada::Plc& World::add_plc(const std::string& name) {
  plcs_.push_back(std::make_unique<scada::Plc>(sim_, name));
  return *plcs_.back();
}

void World::add_internet_landmarks() {
  for (const char* domain : {"www.windowsupdate.com", "www.msn.com",
                             "www.bbc.co.uk"}) {
    network_.register_internet_service(domain, [](const net::HttpRequest&) {
      return net::HttpResponse{200, "landmark"};
    });
  }
  // A genuine Windows Update server. It usually has nothing new; scenario
  // code can flip `serving` to model Patch Tuesday.
  network_.register_internet_service(
      "update.microsoft.com",
      [](const net::HttpRequest&) { return net::HttpResponse{204, {}}; });
}

void World::provision_standard_pki(winsys::Host& host) {
  // Image-backed hosts already carry the landscape through their image base.
  if (host.cert_store().base() != nullptr) return;
  if (standard_certs_ == nullptr) {
    auto certs = std::make_shared<pki::CertStore>();
    auto trust = std::make_shared<pki::TrustStore>();
    microsoft_->install_into(*certs);
    microsoft_->anchor_root(*trust);
    standard_certs_ = std::move(certs);
    standard_trust_ = std::move(trust);
  }
  host.cert_store().set_base(standard_certs_);
  host.trust_store().set_base(standard_trust_);
}

std::size_t World::count_unbootable() const {
  std::size_t n = 0;
  for (const auto& host : hosts_) {
    if (host->state() == winsys::HostState::kUnbootable) ++n;
  }
  return n;
}

std::size_t World::count_infected(const std::string& family) const {
  std::size_t n = 0;
  for (const auto& host : hosts_) {
    if (host->has_component(family)) ++n;
  }
  return n;
}

sim::ShardPlan World::shard_plan() const {
  sim::ShardPlan plan;
  plan.labels = network_.site_names();  // name order: stable shard indices
  std::map<std::string, std::uint32_t> index;
  for (std::size_t i = 0; i < plan.labels.size(); ++i) {
    index.emplace(plan.labels[i], static_cast<std::uint32_t>(i));
  }
  for (const auto& edge : network_.site_edges()) {
    plan.channels.push_back(
        sim::ShardChannel{index.at(edge.from), index.at(edge.to), edge.latency});
  }
  return plan;
}

}  // namespace cyd::core
