#pragma once
// Simulated human activity.
//
// Campaigns only move because people do things: carry sticks between
// machines, launch Internet Explorer (triggering WPAD discovery), let
// Windows Update run, author documents, and open Step 7 projects. These
// helpers schedule that background life on the world clock.

#include <vector>

#include "core/world.hpp"

namespace cyd::core {

/// A courier stick travelling a fixed route: plugged into each host in turn
/// for `dwell`, then moved to the next, forever. This is the conference
/// giveaway / contractor stick of the Stuxnet lore and the Flame ferry.
void schedule_usb_courier(World& world, winsys::UsbDrive& drive,
                          std::vector<winsys::Host*> route,
                          sim::Duration dwell);

/// Periodic Windows Update checks (the surface Flame's GADGET rides).
void schedule_wu_checks(World& world, winsys::Host& host,
                        sim::Duration period);

/// Periodic IE sessions: WPAD proxy discovery, then fetching a landmark.
void schedule_browsing(World& world, winsys::Host& host,
                       sim::Duration period);

/// The user keeps producing documents (fresh JIMMY/wiper material).
void schedule_document_work(World& world, winsys::Host& host,
                            sim::Duration period);

/// An engineer periodically opens a Step 7 project (the infection hook) and
/// reconnects the PLC cable.
void schedule_engineering_work(World& world, scada::Step7App& step7,
                               const winsys::Path& project_dir,
                               scada::Plc* plc, sim::Duration period);

}  // namespace cyd::core
