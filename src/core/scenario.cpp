#include "core/scenario.hpp"

namespace cyd::core {

std::vector<winsys::Host*> make_office_fleet(World& world,
                                             const FleetSpec& spec) {
  std::vector<winsys::Host*> fleet;
  fleet.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-%03u",
                  static_cast<unsigned>(i));
    winsys::Host& host =
        world.add_host(spec.name_prefix + suffix, spec.os, spec.subnet);
    for (auto vuln : spec.vulns) host.make_vulnerable(vuln);
    host.set_internet_access(
        static_cast<int>(i * 100 / (spec.count == 0 ? 1 : spec.count)) <
        spec.internet_pct);
    if (spec.admin_shares) {
      host.stack()->add_share("c$", winsys::Path("c:"));
    }
    if (spec.standard_pki) world.provision_standard_pki(host);
    for (int d = 0; d < spec.documents_per_host; ++d) {
      const std::string doc =
          "c:\\users\\staff\\documents\\report-" + std::to_string(d) +
          ".docx";
      host.fs().write_file(doc,
                           "confidential memo " + host.name() + " #" +
                               std::to_string(d),
                           world.sim().now());
    }
    host.fs().write_file("c:\\users\\staff\\desktop\\shortcuts.txt", "links",
                         world.sim().now());
    fleet.push_back(&host);
  }
  return fleet;
}

std::size_t NatanzSite::total_centrifuges() const {
  std::size_t n = 0;
  for (const auto* plc : cascades) n += plc->bus().total_centrifuges();
  return n;
}

std::size_t NatanzSite::destroyed_centrifuges() const {
  std::size_t n = 0;
  for (const auto* plc : cascades) n += plc->bus().destroyed_centrifuges();
  return n;
}

bool NatanzSite::any_safety_tripped() const {
  for (const auto& safety : safeties) {
    if (safety->tripped()) return true;
  }
  return false;
}

NatanzSite build_natanz_site(World& world, const NatanzSpec& spec) {
  NatanzSite site;

  FleetSpec office;
  office.name_prefix = "natanz-office";
  office.subnet = "natanz-office";
  office.count = spec.office_hosts;
  office.os = winsys::OsVersion::kWinXp;
  office.internet_pct = 100;
  site.office = make_office_fleet(world, office);

  // The engineering laptop lives on the air-gapped cell subnet.
  winsys::Host& laptop = world.add_host("natanz-eng-laptop",
                                        winsys::OsVersion::kWinXp,
                                        "natanz-cell");
  laptop.make_vulnerable(exploits::VulnId::kMs10_046_Lnk);
  laptop.make_vulnerable(exploits::VulnId::kMs10_073_Eop);
  laptop.set_internet_access(false);
  world.provision_standard_pki(laptop);
  site.eng_laptop = &laptop;
  site.step7 = &scada::Step7App::install(laptop, world.s7_registry());

  for (std::size_t c = 0; c < spec.cascade_count; ++c) {
    scada::Plc& plc = world.add_plc("cascade-a" + std::to_string(21 + c));
    const std::size_t rotors_per_drive =
        spec.centrifuges_per_cascade /
        (spec.drives_per_cascade == 0 ? 1 : spec.drives_per_cascade);
    for (std::size_t d = 0; d < spec.drives_per_cascade; ++d) {
      // Alternate the two vendors — the Natanz fingerprint needs both.
      auto& drive = plc.bus().add_drive(
          "vfd-" + std::to_string(c) + "-" + std::to_string(d),
          d % 2 == 0 ? scada::DriveVendor::kFararoPaya
                     : scada::DriveVendor::kVacon);
      const std::size_t rotors =
          d + 1 == spec.drives_per_cascade
              ? spec.centrifuges_per_cascade -
                    rotors_per_drive * (spec.drives_per_cascade - 1)
              : rotors_per_drive;
      for (std::size_t r = 0; r < rotors; ++r) {
        drive.add_centrifuge("ir1-" + std::to_string(c) + "-" +
                             std::to_string(d) + "-" + std::to_string(r));
      }
    }
    plc.set_operator_setpoint(spec.operating_setpoint_hz);

    auto safety = std::make_unique<scada::DigitalSafetySystem>(
        spec.safety_lo_hz, spec.safety_hi_hz);
    safety->attach(plc);
    auto hmi = std::make_unique<scada::OperatorHmi>();
    hmi->attach(plc);
    plc.start(spec.plc_scan_period);

    site.cascades.push_back(&plc);
    site.safeties.push_back(std::move(safety));
    site.hmis.push_back(std::move(hmi));
  }
  return site;
}

}  // namespace cyd::core
