#pragma once
// Scenario builders: canned topologies matching the paper's settings.
//
//  * make_office_fleet — an enterprise subnet of Windows workstations with
//    configurable patch level, shares and internet reach (the Flame/Shamoon
//    victim population).
//  * build_natanz_site — the Stuxnet target: an internet-facing office
//    subnet, an air-gapped engineering cell, a Step 7 laptop cabled to
//    cascade PLCs driving IR-1 centrifuges with the Fararo-Paya/Vacon
//    fingerprint, HMIs and digital safety systems.

#include <vector>

#include "core/world.hpp"
#include "scada/safety.hpp"

namespace cyd::core {

struct FleetSpec {
  std::string name_prefix = "ws";
  std::string subnet = "office";
  std::size_t count = 20;
  winsys::OsVersion os = winsys::OsVersion::kWin7;
  /// Percentage of hosts with direct internet access.
  int internet_pct = 100;
  /// Vulnerabilities present on every host.
  std::vector<exploits::VulnId> vulns{
      exploits::VulnId::kMs10_046_Lnk,
      exploits::VulnId::kMs10_061_Spooler,
      exploits::VulnId::kMs10_073_Eop,
      exploits::VulnId::kOpenNetworkShares,
  };
  bool admin_shares = true;  // expose C$ (lateral-movement surface)
  bool standard_pki = true;  // Microsoft roots installed and anchored
  /// Seed a few office documents per host (exfil / wipe targets).
  int documents_per_host = 3;
};

std::vector<winsys::Host*> make_office_fleet(World& world,
                                             const FleetSpec& spec);

struct NatanzSite {
  /// Office machines (internet-connected, where the campaign lands first).
  std::vector<winsys::Host*> office;
  /// The contractor's engineering laptop: Step 7 installed, no internet,
  /// moves between the office subnet and the air-gapped cell via USB.
  winsys::Host* eng_laptop = nullptr;
  scada::Step7App* step7 = nullptr;
  /// One PLC per cascade, each driving its centrifuges.
  std::vector<scada::Plc*> cascades;
  /// Safety instrumentation per cascade (paper footnote 4).
  std::vector<std::unique_ptr<scada::DigitalSafetySystem>> safeties;
  std::vector<std::unique_ptr<scada::OperatorHmi>> hmis;

  std::size_t total_centrifuges() const;
  std::size_t destroyed_centrifuges() const;
  bool any_safety_tripped() const;
};

struct NatanzSpec {
  std::size_t office_hosts = 8;
  std::size_t cascade_count = 6;
  /// IR-1 cascades hold 164 machines; drives are shared per segment.
  std::size_t centrifuges_per_cascade = 164;
  std::size_t drives_per_cascade = 4;
  sim::Duration plc_scan_period = 5 * sim::kMinute;
  double operating_setpoint_hz = 1064.0;
  /// Safety band the plant's instrumentation enforces.
  double safety_lo_hz = 800.0;
  double safety_hi_hz = 1250.0;
};

NatanzSite build_natanz_site(World& world, const NatanzSpec& spec = {});

}  // namespace cyd::core
