#include "core/user_behavior.hpp"

namespace cyd::core {

void schedule_usb_courier(World& world, winsys::UsbDrive& drive,
                          std::vector<winsys::Host*> route,
                          sim::Duration dwell) {
  if (route.empty() || dwell <= 0) return;
  // Weak self-reference: each pending leg event is the only strong owner of
  // the recursive closure, so the route dies with the queue (no shared_ptr
  // cycle) when the simulation ends mid-journey.
  auto leg = std::make_shared<std::function<void(std::size_t)>>();
  std::weak_ptr<std::function<void(std::size_t)>> weak_leg = leg;
  winsys::UsbDrive* stick = &drive;
  *leg = [&world, stick, route = std::move(route), dwell,
          weak_leg](std::size_t index) {
    auto self = weak_leg.lock();
    if (!self) return;
    winsys::Host* host = route[index % route.size()];
    if (host->state() == winsys::HostState::kRunning) {
      host->plug_usb(*stick);
    }
    world.sim().after(dwell, [stick, self, index] {
      if (winsys::Host* holder = stick->plugged_into()) {
        holder->unplug_usb(*stick);
      }
      (*self)(index + 1);
    });
  };
  (*leg)(0);
}

void schedule_wu_checks(World& world, winsys::Host& host,
                        sim::Duration period) {
  world.sim().every(period, [&host] {
    if (host.state() != winsys::HostState::kRunning) return;
    if (net::Stack* stack = host.stack()) stack->check_windows_update();
  });
}

void schedule_browsing(World& world, winsys::Host& host,
                       sim::Duration period) {
  world.sim().every(period, [&host] {
    if (host.state() != winsys::HostState::kRunning) return;
    net::Stack* stack = host.stack();
    if (stack == nullptr) return;
    // IE start: proxy auto-discovery, then a page load.
    stack->wpad_discover();
    stack->http_get("www.bbc.co.uk", "/news");
  });
}

void schedule_document_work(World& world, winsys::Host& host,
                            sim::Duration period) {
  auto counter = std::make_shared<int>(0);
  world.sim().every(period, [&world, &host, counter] {
    if (host.state() != winsys::HostState::kRunning) return;
    const std::string path = "c:\\users\\staff\\documents\\draft-" +
                             std::to_string(++*counter) + ".docx";
    host.fs().write_file(path,
                         "working draft " + std::to_string(*counter) +
                             " on " + host.name(),
                         world.sim().now());
  });
}

void schedule_engineering_work(World& world, scada::Step7App& step7,
                               const winsys::Path& project_dir,
                               scada::Plc* plc, sim::Duration period) {
  world.sim().every(period, [&step7, project_dir, plc] {
    if (step7.host().state() != winsys::HostState::kRunning) return;
    step7.connect(plc);
    step7.open_project(project_dir);
    // Routine block maintenance: read the main program, write it back.
    if (auto ob1 = step7.read_block("OB1")) {
      step7.write_block("OB1", *ob1);
    }
  });
}

}  // namespace cyd::core
