#include "common/bytes.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace cyd::common {

std::string to_hex(std::string_view data) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("from_hex: non-hex character");
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>(nibble(hex[i]) * 16 + nibble(hex[i + 1])));
  }
  return out;
}

Bytes xor_cipher(std::string_view data, std::uint8_t key) {
  Bytes out(data);
  for (auto& c : out) c = static_cast<char>(static_cast<unsigned char>(c) ^ key);
  return out;
}

Bytes xor_cipher(std::string_view data, std::string_view key) {
  if (key.empty()) return Bytes(data);
  Bytes out(data);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<char>(static_cast<unsigned char>(out[i]) ^
                               static_cast<unsigned char>(key[i % key.size()]));
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint32_t weak_digest32(std::string_view data) {
  // Deliberately weak: 32 bits of FNV — the PKI model treats digests of this
  // width as collidable by a resourced attacker (the Flame MD5 analogue).
  return static_cast<std::uint32_t>(fnv1a64(data) & 0xffffffffULL);
}

double shannon_entropy(std::string_view data) {
  if (data.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (unsigned char c : data) ++counts[c];
  double entropy = 0.0;
  const double n = static_cast<double>(data.size());
  for (std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

Bytes random_bytes(sim::Rng& rng, std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = rng.next_u64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<char>(v & 0xff));
      v >>= 8;
    }
  }
  return out;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(std::string_view data, std::size_t offset) {
  if (offset + 4 > data.size()) {
    throw std::out_of_range("get_u32: truncated buffer");
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(data[offset + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view data, std::size_t offset) {
  if (offset + 8 > data.size()) {
    throw std::out_of_range("get_u64: truncated buffer");
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(data[offset + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace cyd::common
