#pragma once
// Byte-buffer helpers shared across modules.
//
// Simulated file contents, PE sections, packets and stolen data are all plain
// byte strings; these helpers provide the encoding, hashing and statistics
// the dissection toolkit needs (hex dumps, XOR ciphers, entropy scoring).

#include <cstdint>
#include <string>
#include <string_view>

namespace cyd::sim {
class Rng;
}

namespace cyd::common {

/// Raw bytes. std::string is used so file contents, packet payloads and PE
/// images share one representation with cheap copies on small buffers.
using Bytes = std::string;

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(std::string_view data);

/// Inverse of to_hex. Throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Single-byte XOR cipher — the "simple Xor cipher" Shamoon uses to encrypt
/// its PE resources. Involution: applying twice restores the input.
Bytes xor_cipher(std::string_view data, std::uint8_t key);

/// Multi-byte repeating-key XOR.
Bytes xor_cipher(std::string_view data, std::string_view key);

/// FNV-1a 64-bit hash; the simulation's stand-in for a strong digest.
std::uint64_t fnv1a64(std::string_view data);

/// Truncated FNV used as the *weak* digest in the PKI model (collidable).
std::uint32_t weak_digest32(std::string_view data);

/// Shannon entropy in bits/byte, in [0, 8]. Packed/encrypted payloads score
/// high; the analysis heuristics use this exactly like real PE triage does.
double shannon_entropy(std::string_view data);

/// Deterministic pseudo-random buffer from the given stream.
Bytes random_bytes(sim::Rng& rng, std::size_t n);

/// True if `needle` occurs in `haystack`.
bool contains(std::string_view haystack, std::string_view needle);

/// Case-insensitive ASCII comparison helpers.
bool iequals(std::string_view a, std::string_view b);
std::string to_lower(std::string_view s);

/// Little-endian fixed-width integer append/read used by the PE serializer.
void put_u32(Bytes& out, std::uint32_t v);
void put_u64(Bytes& out, std::uint64_t v);
std::uint32_t get_u32(std::string_view data, std::size_t offset);
std::uint64_t get_u64(std::string_view data, std::size_t offset);

}  // namespace cyd::common
