#pragma once
// Structured trace log.
//
// Every observable action in the simulation — a file write, a packet, a
// driver load, a PLC block update — is appended to the world's TraceLog.
// The analysis toolkit (sandbox, forensics, AV heuristics) is built on top of
// querying this log, mirroring how real dissection work reads API traces.
//
// The log is the hottest data structure in the repo: every simulated action
// funnels through record(). Events therefore store interned 32-bit string
// ids (see StringPool) instead of owning strings, free-form detail bytes go
// into one shared arena, and per-category / per-action / per-actor posting
// lists are maintained incrementally so the analysis queries never scan.
// The by_* methods that *copy* matching events into fresh vectors are kept
// for compatibility but deprecated — new code should use the count_* /
// for_each_* / *_index APIs, which do not allocate.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/string_pool.hpp"
#include "sim/time.hpp"

namespace cyd::sim {

/// Category of a trace event; categories mirror the instrumentation points a
/// real sandbox hooks.
enum class TraceCategory : std::uint8_t {
  kFile,       // filesystem mutation (create/write/delete/rename)
  kRegistry,   // registry mutation
  kProcess,    // process / service / task lifecycle
  kDriver,     // kernel driver load/unload
  kNetwork,    // packets, DNS lookups, HTTP exchanges
  kUsb,        // removable-media plug/unplug and autoplay
  kBluetooth,  // discovery / beacon / transfer
  kScada,      // Step7 <-> PLC traffic, PLC block ops, physics
  kMalware,    // module-level malware actions (install, exfil, wipe...)
  kCnc,        // command-and-control platform activity
  kSecurity,   // AV detections, signature verdicts, cert decisions
  kSim,        // scenario bookkeeping
};

inline constexpr std::size_t kTraceCategoryCount = 12;

const char* to_string(TraceCategory c);

/// Compact event record: 32 bytes, no owned strings. `actor` and `action`
/// are ids into the owning log's StringPool; `detail` is a slice of the
/// log's detail arena. Resolve them through TraceLog::actor/action/detail
/// (or a TraceEventRef).
struct TraceEvent {
  TimePoint time = 0;
  TraceCategory category = TraceCategory::kSim;
  StringId actor = kNoString;
  StringId action = kNoString;
  std::uint32_t detail_offset = 0;
  std::uint32_t detail_size = 0;
};

class TraceLog;

/// Lightweight accessor pairing an event with its owning log so the interned
/// fields read back as strings. Views are valid while the log is alive and
/// not cleared; record() calls may invalidate detail() views (arena growth),
/// so don't hold one across a mutation.
class TraceEventRef {
 public:
  TraceEventRef(const TraceLog& log, const TraceEvent& event)
      : log_(&log), event_(&event) {}

  TimePoint time() const { return event_->time; }
  TraceCategory category() const { return event_->category; }
  std::string_view actor() const;
  std::string_view action() const;
  std::string_view detail() const;
  const TraceEvent& raw() const { return *event_; }

 private:
  const TraceLog* log_;
  const TraceEvent* event_;
};

/// A fully materialised event with owning strings. Only produced by the
/// deprecated copying queries; hot paths should stay on TraceEvent ids.
struct TraceRecord {
  TimePoint time = 0;
  TraceCategory category = TraceCategory::kSim;
  std::string actor;
  std::string action;
  std::string detail;
};

class TraceLog {
 public:
  void record(TimePoint time, TraceCategory category, std::string_view actor,
              std::string_view action, std::string_view detail = {});

  /// Pre-sizes the event vector (and optionally the detail arena) so long
  /// campaigns don't pay reallocation on the record hot path.
  void reserve(std::size_t events, std::size_t detail_bytes = 0);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear();

  // --- string resolution ---
  const StringPool& pool() const { return pool_; }
  std::string_view actor(const TraceEvent& e) const {
    return pool_.view(e.actor);
  }
  std::string_view action(const TraceEvent& e) const {
    return pool_.view(e.action);
  }
  std::string_view detail(const TraceEvent& e) const {
    return {details_.data() + e.detail_offset, e.detail_size};
  }
  TraceEventRef ref(std::size_t index) const {
    return TraceEventRef(*this, events_[index]);
  }

  // --- indexed queries: O(1) lookups on incrementally built posting lists ---
  std::size_t count_category(TraceCategory c) const {
    return category_index(c).size();
  }
  std::size_t count_action(std::string_view action) const;
  std::size_t count_actor(std::string_view actor) const;

  /// Event indices (into events()) of one category, in record order.
  const std::vector<std::uint32_t>& category_index(TraceCategory c) const {
    return by_category_index_[static_cast<std::size_t>(c)];
  }
  /// Posting list for an action/actor string; nullptr when the string was
  /// never recorded in that role.
  const std::vector<std::uint32_t>* action_index(std::string_view action) const;
  const std::vector<std::uint32_t>* actor_index(std::string_view actor) const;

  // --- allocation-free visitors ---
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& e : events_) fn(TraceEventRef(*this, e));
  }
  template <class Fn>
  void for_each_category(TraceCategory c, Fn&& fn) const {
    for (const auto i : category_index(c)) fn(TraceEventRef(*this, events_[i]));
  }
  template <class Fn>
  void for_each_action(std::string_view action, Fn&& fn) const {
    if (const auto* index = action_index(action)) {
      for (const auto i : *index) fn(TraceEventRef(*this, events_[i]));
    }
  }
  template <class Fn>
  void for_each_actor(std::string_view actor, Fn&& fn) const {
    if (const auto* index = actor_index(actor)) {
      for (const auto i : *index) fn(TraceEventRef(*this, events_[i]));
    }
  }

  // --- deprecated copying queries ---
  // Each call materialises owning TraceRecords for every match. Kept for
  // compatibility with pre-interning callers; prefer for_each_* / count_*.
  // The only sanctioned remaining users are LegacyTraceLog in
  // bench/sweep_scaling.cpp (where the copying design *is* the measured
  // baseline) and the shim tests in tests/sim/trace_test.cpp, both under
  // local -Wdeprecated-declarations suppression.
  [[deprecated("scans and copies every match; use query-free count_* / "
               "for_each_* / *_index")]]
  std::vector<TraceRecord> query(
      const std::function<bool(const TraceEventRef&)>& pred) const;
  [[deprecated("copies every match; use count_category / for_each_category / "
               "category_index")]]
  std::vector<TraceRecord> by_category(TraceCategory c) const;
  [[deprecated("copies every match; use count_action / for_each_action / "
               "action_index")]]
  std::vector<TraceRecord> by_action(std::string_view action) const;
  [[deprecated("copies every match; use count_actor / for_each_actor / "
               "actor_index")]]
  std::vector<TraceRecord> by_actor(std::string_view actor) const;

  /// Order-sensitive FNV-1a hash over every field of every event. Two runs
  /// of the same seeded scenario produce equal fingerprints iff their logs
  /// are identical; the determinism tests and sweep benches aggregate this.
  std::uint64_t fingerprint() const;

  /// Deep semantic equality (times, categories, resolved strings).
  bool operator==(const TraceLog& other) const;

  /// Renders the trailing `max_lines` events into one output buffer; used by
  /// examples and debugging.
  std::string render_tail(std::size_t max_lines = 50) const;

 private:
  const std::vector<std::uint32_t>* postings(
      const std::vector<std::vector<std::uint32_t>>& table, StringId id) const;
  static void append_posting(std::vector<std::vector<std::uint32_t>>& table,
                             StringId id, std::uint32_t event_index);

  std::vector<TraceEvent> events_;
  StringPool pool_;      // actor + action strings, shared
  std::string details_;  // free-form detail bytes, one arena, no dedup
  std::array<std::vector<std::uint32_t>, kTraceCategoryCount>
      by_category_index_;
  std::vector<std::vector<std::uint32_t>> by_action_index_;  // StringId ->
  std::vector<std::vector<std::uint32_t>> by_actor_index_;   // event indices
};

inline std::string_view TraceEventRef::actor() const {
  return log_->actor(*event_);
}
inline std::string_view TraceEventRef::action() const {
  return log_->action(*event_);
}
inline std::string_view TraceEventRef::detail() const {
  return log_->detail(*event_);
}

}  // namespace cyd::sim
