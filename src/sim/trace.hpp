#pragma once
// Structured trace log.
//
// Every observable action in the simulation — a file write, a packet, a
// driver load, a PLC block update — is appended to the world's TraceLog.
// The analysis toolkit (sandbox, forensics, AV heuristics) is built on top of
// querying this log, mirroring how real dissection work reads API traces.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace cyd::sim {

/// Category of a trace event; categories mirror the instrumentation points a
/// real sandbox hooks.
enum class TraceCategory : std::uint8_t {
  kFile,       // filesystem mutation (create/write/delete/rename)
  kRegistry,   // registry mutation
  kProcess,    // process / service / task lifecycle
  kDriver,     // kernel driver load/unload
  kNetwork,    // packets, DNS lookups, HTTP exchanges
  kUsb,        // removable-media plug/unplug and autoplay
  kBluetooth,  // discovery / beacon / transfer
  kScada,      // Step7 <-> PLC traffic, PLC block ops, physics
  kMalware,    // module-level malware actions (install, exfil, wipe...)
  kCnc,        // command-and-control platform activity
  kSecurity,   // AV detections, signature verdicts, cert decisions
  kSim,        // scenario bookkeeping
};

const char* to_string(TraceCategory c);

struct TraceEvent {
  TimePoint time = 0;
  TraceCategory category = TraceCategory::kSim;
  std::string actor;    // host/process/module that performed the action
  std::string action;   // verb, e.g. "file.write", "driver.load"
  std::string detail;   // free-form parameters
};

class TraceLog {
 public:
  void record(TimePoint time, TraceCategory category, std::string actor,
              std::string action, std::string detail = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Events matching a predicate.
  std::vector<TraceEvent> query(
      const std::function<bool(const TraceEvent&)>& pred) const;

  /// Events of one category.
  std::vector<TraceEvent> by_category(TraceCategory c) const;

  /// Events whose action string equals `action`.
  std::vector<TraceEvent> by_action(const std::string& action) const;

  /// Events attributed to one actor.
  std::vector<TraceEvent> by_actor(const std::string& actor) const;

  std::size_t count_action(const std::string& action) const;

  /// Renders the trailing `max_lines` events; used by examples and debugging.
  std::string render_tail(std::size_t max_lines = 50) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace cyd::sim
