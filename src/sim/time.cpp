#include "sim/time.hpp"

#include <array>
#include <cstdio>

namespace cyd::sim {
namespace {

constexpr int kEpochYear = 2010;

constexpr bool is_leap(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) {
  constexpr std::array<int, 12> table{31, 28, 31, 30, 31, 30,
                                      31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return table[static_cast<std::size_t>(m - 1)];
}

}  // namespace

TimePoint make_date(int year, int month, int day, int hour, int minute) {
  std::int64_t total_days = 0;
  for (int y = kEpochYear; y < year; ++y) total_days += is_leap(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) total_days += days_in_month(year, m);
  total_days += day - 1;
  return total_days * kDay + hour * kHour + minute * kMinute;
}

std::string format_time(TimePoint t) {
  std::string out;
  format_time_to(out, t);
  return out;
}

void format_time_to(std::string& out, TimePoint t) {
  bool negative = t < 0;
  std::int64_t ms = negative ? -t : t;
  std::int64_t total_days = ms / kDay;
  std::int64_t rem = ms % kDay;

  int year = kEpochYear;
  if (!negative) {
    while (total_days >= (is_leap(year) ? 366 : 365)) {
      total_days -= is_leap(year) ? 366 : 365;
      ++year;
    }
  }
  int month = 1;
  while (!negative && total_days >= days_in_month(year, month)) {
    total_days -= days_in_month(year, month);
    ++month;
  }
  int day = static_cast<int>(total_days) + 1;
  int hour = static_cast<int>(rem / kHour);
  int minute = static_cast<int>((rem % kHour) / kMinute);
  int second = static_cast<int>((rem % kMinute) / kSecond);
  int milli = static_cast<int>(rem % kSecond);

  char buf[64];
  if (negative) {
    std::snprintf(buf, sizeof(buf), "T-%lldms", static_cast<long long>(ms));
  } else {
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d", year,
                  month, day, hour, minute, second, milli);
  }
  out += buf;
}

std::string format_duration(Duration d) {
  bool negative = d < 0;
  std::int64_t ms = negative ? -d : d;
  std::int64_t dd = ms / kDay;
  int hh = static_cast<int>((ms % kDay) / kHour);
  int mm = static_cast<int>((ms % kHour) / kMinute);
  int ss = static_cast<int>((ms % kMinute) / kSecond);
  char buf[48];
  if (dd > 0) {
    std::snprintf(buf, sizeof(buf), "%s%lldd %02d:%02d:%02d",
                  negative ? "-" : "", static_cast<long long>(dd), hh, mm, ss);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%02d:%02d:%02d", negative ? "-" : "", hh,
                  mm, ss);
  }
  return buf;
}

}  // namespace cyd::sim
