#include "sim/string_pool.hpp"

namespace cyd::sim {

StringId StringPool::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const auto id = static_cast<StringId>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(strings_.back(), id);
  return id;
}

StringId StringPool::find(std::string_view s) const {
  const auto it = ids_.find(s);
  return it == ids_.end() ? kNoString : it->second;
}

void StringPool::clear() {
  strings_.clear();
  ids_.clear();
}

}  // namespace cyd::sim
