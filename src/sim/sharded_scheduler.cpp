#include "sim/sharded_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/sweep.hpp"

namespace cyd::sim {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint32_t kSeqBits = 28;  // per-shard origin sequence width

// The shard a worker thread is currently executing events for, kNoShard
// outside a round. Thread-local rather than per-scheduler because the check
// it feeds (schedule affinity) is about *this thread's* execution context;
// a worker never interleaves two schedulers' rounds.
thread_local std::uint32_t tls_current_shard = 0xffffffffu;

std::uint64_t channel_key(std::size_t from, std::size_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint32_t>(to);
}

}  // namespace

Duration ShardPlan::lookahead() const {
  Duration min_latency = kUnbounded;
  for (const ShardChannel& c : channels) {
    min_latency = std::min(min_latency, std::max<Duration>(c.latency, 1));
  }
  return min_latency;
}

ShardedScheduler::ShardedScheduler(ShardPlan plan)
    : ShardedScheduler(std::move(plan), Options{}) {}

ShardedScheduler::ShardedScheduler(ShardPlan plan, Options options)
    : plan_(std::move(plan)), options_(options) {
  const std::size_t n = plan_.shard_count();
  if (n == 0) {
    throw std::invalid_argument("ShardedScheduler: plan has no shards");
  }
  if (n > kMaxShards) {
    throw std::invalid_argument(
        "ShardedScheduler: shard count exceeds the 12-bit key budget (" +
        std::to_string(kMaxShards) + ")");
  }
  for (const ShardChannel& c : plan_.channels) {
    if (c.from >= n || c.to >= n) {
      throw std::invalid_argument(
          "ShardedScheduler: channel endpoint names no shard");
    }
    if (c.from == c.to) {
      throw std::invalid_argument(
          "ShardedScheduler: self-channel on shard '" + plan_.labels[c.from] +
          "' — intra-shard work uses schedule(), not send()");
    }
    auto [it, inserted] =
        channel_latency_.emplace(channel_key(c.from, c.to), c.latency);
    if (!inserted) it->second = std::min(it->second, c.latency);
  }
  lookahead_ = plan_.lookahead();
  states_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    states_.push_back(std::make_unique<ShardState>());
    if (options_.backend != EventQueue::Backend::kHeap) {
      states_[i]->queue.set_backend(options_.backend, options_.calendar);
    }
  }
  if (options_.mode == Mode::kSingleQueue) {
    // All shards share queue 0; the observer recovers the executing shard
    // from the event's tag and routes the trace into that shard's
    // accumulators, so the checksum layout matches the sharded run's.
    states_[0]->queue.set_execute_observer(&ShardedScheduler::serial_observer,
                                           this);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      states_[i]->queue.set_execute_observer(
          &ShardedScheduler::sharded_observer, states_[i].get());
    }
    runner_ = std::make_unique<SweepRunner>(SweepOptions{options_.workers});
  }
}

ShardedScheduler::~ShardedScheduler() = default;

unsigned ShardedScheduler::workers() const {
  return runner_ ? runner_->workers() : 1u;
}

EventQueue& ShardedScheduler::queue_for(std::size_t shard) {
  return options_.mode == Mode::kSingleQueue ? states_[0]->queue
                                             : states_[shard]->queue;
}

void ShardedScheduler::set_shard_backend(std::size_t shard,
                                         EventQueue::Backend backend,
                                         EventQueue::CalendarConfig config) {
  if (shard >= states_.size()) {
    throw std::out_of_range("ShardedScheduler::set_shard_backend: no such shard");
  }
  queue_for(shard).set_backend(backend, config);
}

void ShardedScheduler::reserve(std::size_t shard, std::size_t events) {
  if (shard >= states_.size()) {
    throw std::out_of_range("ShardedScheduler::reserve: no such shard");
  }
  queue_for(shard).reserve(events);
}

TimePoint ShardedScheduler::now(std::size_t shard) const {
  if (shard >= states_.size()) {
    throw std::out_of_range("ShardedScheduler::now: no such shard");
  }
  return options_.mode == Mode::kSingleQueue ? states_[0]->queue.now()
                                             : states_[shard]->queue.now();
}

std::uint32_t ShardedScheduler::current_shard() const {
  return options_.mode == Mode::kSharded ? tls_current_shard : serial_current_;
}

void ShardedScheduler::check_affinity(std::size_t shard, const char* what) const {
  const std::uint32_t current = current_shard();
  if (current == kNoShard) return;  // setup code outside any event
  if (current != shard) {
    throw std::logic_error(
        std::string("ShardedScheduler::") + what + ": shard '" +
        plan_.labels[current] + "' touched shard '" + plan_.labels[shard] +
        "' directly — cross-shard work must go through send()");
  }
}

std::uint64_t ShardedScheduler::make_key(std::size_t origin) {
  ShardState& s = *states_[origin];
  if (s.next_seq >= kMaxEventsPerShard) {
    throw std::length_error(
        "ShardedScheduler: shard '" + plan_.labels[origin] +
        "' exhausted its 2^28 origin-sequence space");
  }
  return (static_cast<std::uint64_t>(origin) << kSeqBits) | s.next_seq++;
}

void ShardedScheduler::schedule(std::size_t shard, TimePoint t, EventFn fn) {
  if (shard >= states_.size()) {
    throw std::out_of_range("ShardedScheduler::schedule: no such shard");
  }
  check_affinity(shard, "schedule");
  // Origin == target: from inside an event the affinity check pins the
  // caller to its own shard, and setup code charges the seeded shard — so
  // the per-shard origin counters advance identically in both modes.
  const std::uint64_t key = make_key(shard);
  queue_for(shard).schedule_keyed(t, key, static_cast<std::uint32_t>(shard),
                                  std::move(fn));
}

bool ShardedScheduler::has_channel(std::size_t from, std::size_t to) const {
  return channel_latency_.count(channel_key(from, to)) != 0;
}

Duration ShardedScheduler::channel_latency(std::size_t from,
                                           std::size_t to) const {
  const auto it = channel_latency_.find(channel_key(from, to));
  if (it == channel_latency_.end()) {
    throw std::invalid_argument("ShardedScheduler: no channel " +
                                plan_.labels.at(from) + " -> " +
                                plan_.labels.at(to));
  }
  return it->second;
}

void ShardedScheduler::send(std::size_t from, std::size_t to, Duration extra,
                            EventFn fn) {
  if (from >= states_.size() || to >= states_.size()) {
    throw std::out_of_range("ShardedScheduler::send: no such shard");
  }
  check_affinity(from, "send");
  const Duration latency = channel_latency(from, to);  // throws when absent
  const TimePoint arrival =
      now(from) + std::max<Duration>(latency, 1) + std::max<Duration>(extra, 0);
  const std::uint64_t key = make_key(from);
  ShardState& origin = *states_[from];
  ++origin.sent;
  if (options_.mode == Mode::kSharded && running_) {
    // Mid-round: the target queue belongs to another worker. Park the
    // message in the origin's outbox (origin-thread-private) and let the
    // barrier flush it. Conservative window choice guarantees arrival is
    // beyond the current window, so deferring delivery changes nothing.
    origin.outbox.push_back(
        PendingSend{static_cast<std::uint32_t>(to), arrival, key, std::move(fn)});
  } else {
    queue_for(to).schedule_keyed(arrival, key, static_cast<std::uint32_t>(to),
                                 std::move(fn));
  }
}

void ShardedScheduler::flush_outboxes() {
  for (auto& state : states_) {
    for (PendingSend& p : state->outbox) {
      states_[p.to]->queue.schedule_keyed(p.at, p.key, p.to, std::move(p.fn));
    }
    state->outbox.clear();
  }
}

void ShardedScheduler::accumulate(ShardState& state, TimePoint t,
                                  std::uint64_t key, std::uint32_t tag) {
  const std::uint64_t h =
      derive_seed(derive_seed(static_cast<std::uint64_t>(t), key), tag);
  state.chain = (state.chain ^ h) * kFnvPrime;
  state.unordered += h;
  ++state.executed;
}

void ShardedScheduler::sharded_observer(void* ctx, TimePoint t,
                                        std::uint64_t key, std::uint32_t tag) {
  accumulate(*static_cast<ShardState*>(ctx), t, key, tag);
}

void ShardedScheduler::serial_observer(void* ctx, TimePoint t,
                                       std::uint64_t key, std::uint32_t tag) {
  auto* self = static_cast<ShardedScheduler*>(ctx);
  self->serial_current_ = tag;  // the executing shard, for affinity checks
  accumulate(*self->states_[tag], t, key, tag);
}

ShardedScheduler::Report ShardedScheduler::run_until(TimePoint deadline) {
  if (options_.mode == Mode::kSingleQueue) {
    ++rounds_;
    try {
      states_[0]->queue.run_until(deadline);
    } catch (...) {
      serial_current_ = kNoShard;
      throw;
    }
    serial_current_ = kNoShard;
  } else {
    const std::size_t n = states_.size();
    for (;;) {
      TimePoint t_min = EventQueue::kNoEventTime;
      for (auto& state : states_) {
        t_min = std::min(t_min, state->queue.next_time());
      }
      if (t_min > deadline) break;
      // Conservative window: every event at time t in [t_min, window] can
      // only reach another shard at t + lookahead > window, so the shards
      // are independent inside it.
      TimePoint window = deadline;
      if (lookahead_ != ShardPlan::kUnbounded &&
          t_min <= EventQueue::kNoEventTime - lookahead_) {
        window = std::min(deadline, t_min + lookahead_ - 1);
      }
      ++rounds_;
      running_ = true;
      try {
        runner_->run_indexed(n, [this, window](std::size_t i) {
          tls_current_shard = static_cast<std::uint32_t>(i);
          states_[i]->queue.run_until(window);
          tls_current_shard = kNoShard;
        });
      } catch (...) {
        running_ = false;
        tls_current_shard = kNoShard;  // caller participates as a worker
        throw;
      }
      running_ = false;
      flush_outboxes();  // the barrier: deliver cross-shard messages
    }
    // No runnable event at or before the deadline remains; tile every
    // shard clock forward so back-to-back run_until calls compose.
    for (auto& state : states_) {
      state->queue.run_until(deadline);
    }
  }
  Report report;
  report.rounds = rounds_;
  report.executed = executed();
  for (const auto& state : states_) {
    report.cross_shard_messages += static_cast<std::size_t>(state->sent);
  }
  report.trace_checksum = trace_checksum();
  return report;
}

std::uint64_t ShardedScheduler::trace_checksum() const {
  std::uint64_t acc = kFnvBasis;
  for (const auto& state : states_) {
    acc = (acc ^ state->chain) * kFnvPrime;
    acc = (acc ^ state->unordered) * kFnvPrime;
    acc = (acc ^ state->executed) * kFnvPrime;
  }
  return acc;
}

std::size_t ShardedScheduler::executed() const {
  std::size_t total = 0;
  for (const auto& state : states_) {
    total += static_cast<std::size_t>(state->executed);
  }
  return total;
}

}  // namespace cyd::sim
