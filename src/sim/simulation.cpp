#include "sim/simulation.hpp"

namespace cyd::sim {

std::size_t Simulation::run_all(std::size_t max_events) {
  const auto result = queue_.run_all(max_events);
  if (result.truncated) {
    log(TraceCategory::kSim, "sim", "queue.truncated",
        "run_all stopped after " + std::to_string(result.executed) +
            " events with runnable work still pending");
  }
  return result.executed;
}

}  // namespace cyd::sim
