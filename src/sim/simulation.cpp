#include "sim/simulation.hpp"

namespace cyd::sim {

std::size_t Simulation::run_all(std::size_t max_events) {
  const auto result = queue_.run_all(max_events);
  if (result.truncated) {
    log(TraceCategory::kSim, "sim", "queue.truncated",
        "run_all stopped after " + std::to_string(result.executed) +
            " events with runnable work still pending");
  }
  return result.executed;
}

EventHandle Simulation::every(Duration period, EventFn fn,
                              Duration initial_delay) {
  if (period <= 0) period = 1;
  EventHandle series;
  // The recursive lambda owns the user closure; each firing checks the shared
  // cancellation flag before running and before re-arming. It refers to
  // itself through a weak_ptr — the pending queue entry is the only strong
  // owner, so an abandoned series is freed with the queue instead of keeping
  // itself alive through a shared_ptr cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_tick = tick;
  *tick = [this, period, fn = std::move(fn), series, weak_tick]() {
    if (series.cancelled()) return;
    fn();
    if (series.cancelled()) return;
    if (auto self = weak_tick.lock()) {
      queue_.schedule_at(now() + period, [self] { (*self)(); });
    }
  };
  queue_.schedule_at(now() + (initial_delay > 0 ? initial_delay : period),
                     [tick] { (*tick)(); });
  return series;
}

}  // namespace cyd::sim
