#include "sim/simulation.hpp"

namespace cyd::sim {

EventHandle Simulation::every(Duration period, EventFn fn,
                              Duration initial_delay) {
  if (period <= 0) period = 1;
  EventHandle series;
  // The recursive lambda owns the user closure; each firing checks the shared
  // cancellation flag before running and before re-arming.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, fn = std::move(fn), series, tick]() {
    if (series.cancelled()) return;
    fn();
    if (series.cancelled()) return;
    queue_.schedule_at(now() + period, [tick] { (*tick)(); });
  };
  queue_.schedule_at(now() + (initial_delay > 0 ? initial_delay : period),
                     [tick] { (*tick)(); });
  return series;
}

}  // namespace cyd::sim
