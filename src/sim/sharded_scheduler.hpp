#pragma once
// Site-sharded parallel discrete-event execution with a deterministic
// cross-shard merge.
//
// One shard = one net::Site = one sim::EventQueue. Intra-site event traffic
// (the dense part of every epidemic scenario: LAN spreading, check-ins,
// rotor ticks) stays inside its shard's queue; cross-site traffic (the
// sparse part: WAN links, USB couriers) goes through declared channels whose
// minimum latency is the conservative lookahead. Shards execute rounds on
// the SweepRunner work-stealing pool: each round, every shard may safely
// advance to `min(next event time over all shards) + lookahead - 1`,
// because nothing any shard does inside the window can reach another shard
// earlier than that. Between rounds the per-shard outboxes are flushed into
// the target queues — a barrier, so there is no locking inside a round and
// the schedule is reproducible at any worker count.
//
// Determinism is not "same aggregate numbers" but a provable merge rule:
// every event carries a 40-bit key (origin shard, origin sequence) assigned
// at schedule time, and each shard's EventQueue orders same-time events by
// that key (EventQueue::schedule_keyed) instead of by insertion order. The
// key is a property of the event — the origin shard's handlers emit the
// same schedule/send calls in the same order whichever mode runs them — so
// a shard executes exactly the subsequence of the single-queue (time, key)
// merge order that targets it, and the sharded run is a permutation of the
// single-queue run with per-shard order preserved. The run_until() report
// carries a trace checksum (per-executing-shard ordered FNV chains plus an
// order-independent sum over mixed (time, key, shard) triples) that is
// bit-identical between Mode::kSingleQueue and Mode::kSharded at every
// worker count; bench/sharded_des_scaling fatally asserts it at 102,400
// hosts and tests/sim/sharded_scheduler_test.cpp across thread counts.
//
// Shard-safety contract (see DESIGN.md §9): inside an event, a closure may
// touch state owned by its own shard (per-site structs, the winsys::Hosts
// of that site), call schedule() on its own shard and send() over declared
// channels — nothing else. World/Simulation/TraceLog/InfectionTracker stay
// main-thread-only; cross-shard scheduling through anything but send() is a
// logic error and throws.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace cyd::sim {

class SweepRunner;

/// One directed cross-shard edge. `latency` is the minimum transit time of
/// anything sent over it (a WAN link's latency, a USB courier's leg time);
/// the smallest latency over all channels is the conservative lookahead.
struct ShardChannel {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  Duration latency = 0;
};

/// The static shard topology: one label per shard (site names, for reports)
/// and the declared channels. Built by hand in tests or from a World's site
/// topology via core::World::shard_plan().
struct ShardPlan {
  std::vector<std::string> labels;
  std::vector<ShardChannel> channels;

  std::size_t shard_count() const { return labels.size(); }

  /// Conservative lookahead: the smallest declared channel latency, clamped
  /// to >= 1 ms (a zero-latency channel would collapse the safe window to
  /// nothing). kUnbounded when there are no channels — isolated shards can
  /// run to the deadline in one round.
  static constexpr Duration kUnbounded = std::numeric_limits<Duration>::max();
  Duration lookahead() const;
};

class ShardedScheduler {
 public:
  enum class Mode {
    kSingleQueue,  ///< reference: every shard's events in one queue, merged
    kSharded,      ///< one queue per shard, conservative parallel rounds
  };

  struct Options {
    Mode mode = Mode::kSharded;
    /// Worker threads for sharded rounds, caller included; 0 = hardware.
    /// Ignored in kSingleQueue mode.
    unsigned workers = 0;
    /// Pending-set backend for every queue (the merged queue in
    /// kSingleQueue mode, each shard's queue in kSharded mode). Pop order —
    /// and therefore the trace checksum — is backend-independent, so heap
    /// and calendar runs are interchangeable references for each other.
    EventQueue::Backend backend = EventQueue::Backend::kHeap;
    /// Wheel shape when backend == kCalendar.
    EventQueue::CalendarConfig calendar = {};
  };

  /// Ceilings implied by the 40-bit key layout: 12 bits of origin shard,
  /// 28 bits of per-shard origin sequence. Enforced, not wrapped.
  static constexpr std::size_t kMaxShards = std::size_t{1} << 12;
  static constexpr std::uint64_t kMaxEventsPerShard = std::uint64_t{1} << 28;
  static constexpr std::uint32_t kNoShard = 0xffffffffu;

  explicit ShardedScheduler(ShardPlan plan);
  ShardedScheduler(ShardPlan plan, Options options);
  ~ShardedScheduler();

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  Mode mode() const { return options_.mode; }
  std::size_t shard_count() const { return states_.size(); }

  /// Per-shard backend override, for heterogeneous worlds where only some
  /// sites run dense periodic workloads. Must be called before any event is
  /// scheduled on the shard (EventQueue::set_backend throws otherwise). In
  /// kSingleQueue mode every shard maps to the one merged queue.
  void set_shard_backend(std::size_t shard, EventQueue::Backend backend,
                         EventQueue::CalendarConfig config = {});

  /// Pre-sizes a shard's queue for `events` concurrently pending events
  /// (EventQueue::reserve), so storm setup allocates nothing per event.
  void reserve(std::size_t shard, std::size_t events);
  const ShardPlan& plan() const { return plan_; }
  Duration lookahead() const { return lookahead_; }
  /// Workers the sharded rounds will actually use (1 in kSingleQueue mode).
  unsigned workers() const;

  /// The shard's clock. Inside an event this is the event's time in both
  /// modes; between rounds a sharded clock sits at the last window end,
  /// which may be ahead of where a single queue's clock would pause.
  TimePoint now(std::size_t shard) const;

  /// Schedules `fn` on `shard` at absolute time `t` (clamped to the shard's
  /// clock). From inside an event, only the executing shard may schedule
  /// onto itself — cross-shard work must go through send(). Setup code may
  /// schedule onto any shard before run_until().
  void schedule(std::size_t shard, TimePoint t, EventFn fn);

  /// Cross-shard send over the declared (from, to) channel: `fn` executes
  /// on `to` at now(from) + channel latency + max(extra, 0). Throws
  /// std::logic_error when no channel was declared — the shard boundary is
  /// the site topology, not an any-to-any mesh.
  void send(std::size_t from, std::size_t to, Duration extra, EventFn fn);

  bool has_channel(std::size_t from, std::size_t to) const;
  /// Minimum declared latency on (from, to); throws when absent.
  Duration channel_latency(std::size_t from, std::size_t to) const;

  struct Report {
    std::size_t executed = 0;             ///< events run across all shards
    std::size_t rounds = 0;               ///< synchronization windows
    std::size_t cross_shard_messages = 0; ///< send() calls so far
    std::uint64_t trace_checksum = 0;     ///< see trace_checksum()
  };

  /// Runs every shard's events with time <= deadline and advances all shard
  /// clocks to the deadline. kSingleQueue: one merged drain. kSharded:
  /// conservative rounds on the worker pool. Callable repeatedly to tile a
  /// timeline.
  Report run_until(TimePoint deadline);

  /// Checksum over every event executed so far: per-executing-shard ordered
  /// FNV chains over mixed (time, key, shard) triples, folded in shard
  /// order, plus an order-independent sum. Identical across modes and
  /// worker counts for the same workload — the determinism contract.
  std::uint64_t trace_checksum() const;

  /// Total events executed so far.
  std::size_t executed() const;

 private:
  struct PendingSend {
    std::uint32_t to = 0;
    TimePoint at = 0;
    std::uint64_t key = 0;
    EventFn fn;
  };

  struct ShardState {
    EventQueue queue;
    std::uint64_t next_seq = 0;   // origin-side schedule counter
    std::uint64_t sent = 0;       // cross-shard messages originated here
    // Trace accumulators for events *executing* on this shard.
    std::uint64_t chain = 1469598103934665603ull;  // FNV-1a offset basis
    std::uint64_t unordered = 0;
    std::uint64_t executed = 0;
    std::vector<PendingSend> outbox;
  };

  static void sharded_observer(void* ctx, TimePoint t, std::uint64_t key,
                               std::uint32_t tag);
  static void serial_observer(void* ctx, TimePoint t, std::uint64_t key,
                              std::uint32_t tag);
  static void accumulate(ShardState& state, TimePoint t, std::uint64_t key,
                         std::uint32_t tag);

  std::uint64_t make_key(std::size_t origin);
  EventQueue& queue_for(std::size_t shard);
  std::uint32_t current_shard() const;
  void check_affinity(std::size_t shard, const char* what) const;
  void flush_outboxes();

  ShardPlan plan_;
  Options options_;
  Duration lookahead_ = ShardPlan::kUnbounded;
  std::map<std::uint64_t, Duration> channel_latency_;  // (from<<32|to) -> min
  std::vector<std::unique_ptr<ShardState>> states_;
  std::unique_ptr<SweepRunner> runner_;  // built on first sharded run
  bool running_ = false;
  std::uint32_t serial_current_ = kNoShard;  // kSingleQueue: executing shard
  std::size_t rounds_ = 0;
};

}  // namespace cyd::sim
