#pragma once
// Small-buffer-optimized move-only callable — the event queue's closure type.
//
// std::function was the wrong tool for the scheduler hot path: it requires
// copyability (so captures get copied even when they never need to be) and
// heap-allocates any capture list past its tiny internal buffer, which on
// this codebase meant one allocation per scheduled event. EventFn keeps
// kInlineSize bytes of aligned storage in-object; every capture list up to
// that size (a `this` pointer plus a handful of references/ints — all the
// schedulers in src/ qualify) is stored inline and scheduling it costs zero
// allocations. Larger or potentially-throwing-on-move callables fall back to
// a single heap cell so nothing breaks, it just stops being free.
//
// Move-only on purpose: an event fires once (or is owned by exactly one
// periodic slot), so copyability buys nothing and would force every capture
// to be copyable. Moves are noexcept — required so slab/vector growth can
// relocate slots — which is also why only nothrow-move types qualify for
// inline storage.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cyd::sim {

class EventFn {
 public:
  /// Inline capture budget. 48 bytes holds six pointer-sized captures (or a
  /// whole std::function, so legacy call sites that pass one still avoid a
  /// second indirection layer).
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (stored_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &Impl<D, /*Inline=*/true>::invoke;
      ops_ = &kOps<D, /*Inline=*/true>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &Impl<D, /*Inline=*/false>::invoke;
      ops_ = &kOps<D, /*Inline=*/false>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // The invoke pointer is stored directly (not behind Ops) so the scheduler's
  // per-event dispatch is one dependent load, not two.
  void operator()() { invoke_(storage_); }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
      invoke_ = nullptr;
    }
  }

  /// True when a callable of type D lives in the inline buffer (exposed so
  /// the allocation tests can assert their closures actually qualify).
  template <typename D>
  static constexpr bool stored_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

 private:
  struct Ops {
    // Move-construct dst's payload from src and leave src empty; noexcept so
    // EventFn's own moves are (vector relocation depends on it).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D, bool Inline>
  struct Impl {
    static D* get(void* s) noexcept {
      if constexpr (Inline) {
        return std::launder(reinterpret_cast<D*>(s));
      } else {
        return *std::launder(reinterpret_cast<D**>(s));
      }
    }
    static void invoke(void* s) { (*get(s))(); }
    static void relocate(void* src, void* dst) noexcept {
      if constexpr (Inline) {
        D* p = get(src);
        ::new (dst) D(std::move(*p));
        p->~D();
      } else {
        ::new (dst) D*(get(src));  // steal the heap cell, nothing to destroy
      }
    }
    static void destroy(void* s) noexcept {
      if constexpr (Inline) {
        get(s)->~D();
      } else {
        delete get(s);
      }
    }
  };

  template <typename D, bool Inline>
  static constexpr Ops kOps{&Impl<D, Inline>::relocate,
                            &Impl<D, Inline>::destroy};

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    invoke_ = other.invoke_;
    if (ops_) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
      other.invoke_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  void (*invoke_)(void*) = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace cyd::sim
