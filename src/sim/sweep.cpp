#include "sim/sweep.hpp"

#include <algorithm>

namespace cyd::sim {

double SweepStats::total_run_ms() const {
  double total = 0.0;
  for (const auto& run : runs) total += run.wall_ms;
  return total;
}

double SweepStats::max_run_ms() const {
  double longest = 0.0;
  for (const auto& run : runs) longest = std::max(longest, run.wall_ms);
  return longest;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SweepRunner::SweepRunner(SweepOptions options) {
  unsigned workers = options.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  shards_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  threads_.reserve(workers - 1);
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

SweepRunner::~SweepRunner() {
  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

bool SweepRunner::take(std::size_t shard, std::size_t& out) {
  auto& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.next >= s.end) return false;
  out = s.next++;
  return true;
}

bool SweepRunner::steal(std::size_t thief, std::size_t& out) {
  const std::size_t n = shards_.size();
  for (std::size_t k = 1; k < n; ++k) {
    auto& victim = *shards_[(thief + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.next >= victim.end) continue;
    out = --victim.end;  // thieves take from the back, owners from the front
    return true;
  }
  return false;
}

void SweepRunner::drain(std::size_t self,
                        const std::function<void(std::size_t)>& task) {
  std::size_t index = 0;
  while (take(self, index) || steal(self, index)) {
    try {
      task(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(job_mutex_);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void SweepRunner::worker_loop(std::size_t self) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(job_mutex_);
      job_cv_.wait(lock, [&] {
        return stopping_ || job_generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = job_generation_;
      task = job_task_;
      if (task == nullptr) continue;  // woke after the job already finished
      ++draining_;
    }
    drain(self, *task);
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      if (--draining_ == 0) done_cv_.notify_all();
    }
  }
}

void SweepRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& task) {
  if (count == 0) return;

  // Balanced contiguous partition of [0, count) across the shards.
  const std::size_t n = shards_.size();
  const std::size_t base = count / n;
  const std::size_t extra = count % n;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    shards_[s]->next = begin;
    shards_[s]->end = begin + len;
    begin += len;
  }

  {
    std::lock_guard<std::mutex> lock(job_mutex_);
    first_error_ = nullptr;
    remaining_ = count;
    job_task_ = &task;
    ++job_generation_;
  }
  job_cv_.notify_all();

  drain(0, task);  // the caller works its own shard and then steals

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(job_mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0 && draining_ == 0; });
    job_task_ = nullptr;  // late-waking workers must see "no job"
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

SweepRunner& default_sweep_runner() {
  static SweepRunner runner;
  return runner;
}

}  // namespace cyd::sim
