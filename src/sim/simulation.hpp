#pragma once
// Simulation: clock + event queue + deterministic RNG + trace log.
//
// Every other subsystem (winsys hosts, the network, the C&C platform, the
// SCADA cell) holds a reference to one Simulation, giving the whole scenario
// a single timeline and a single audit trail.
//
// Thread-safety: Simulation is main-thread-only, including under the
// site-sharded scheduler (sharded_scheduler.hpp). Its queue, RNG stream and
// TraceLog are shared singletons with no internal locking — events running
// on shard workers must not call after()/at()/every(), draw from rng(), or
// log() here. Shard-confined work goes through ShardedScheduler::schedule/
// send and touches only its own shard's state; anything that needs these
// singletons belongs in main-thread code between run_until() windows. See
// DESIGN.md §9 for the full shard-safe vs main-thread-only API split.

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace cyd::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 0x5eed) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  TimePoint now() const { return queue_.now(); }
  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }
  TraceLog& trace() { return trace_; }
  const TraceLog& trace() const { return trace_; }

  /// Schedules `fn` after `delay` (clamped to now for negative delays).
  EventHandle after(Duration delay, EventFn fn) {
    return queue_.schedule_at(now() + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Schedules `fn` at absolute time `t`.
  EventHandle at(TimePoint t, EventFn fn) {
    return queue_.schedule_at(t, std::move(fn));
  }

  /// Schedules `fn` every `period` (clamped to 1ms). The first firing
  /// happens after `initial_delay` when positive, otherwise after one full
  /// period. Cancelling the returned handle ends the series. Thin wrapper
  /// over EventQueue::schedule_every: the series keeps one queue slot and
  /// one closure for its whole lifetime instead of re-allocating a fresh
  /// capture every period.
  EventHandle every(Duration period, EventFn fn, Duration initial_delay = 0) {
    return queue_.schedule_every(
        period, std::move(fn),
        now() + (initial_delay > 0 ? initial_delay
                                   : (period > 0 ? period : 1)));
  }

  /// Convenience trace append stamped with the current virtual time.
  /// Allocation-free for already-interned actor/action strings.
  void log(TraceCategory category, std::string_view actor,
           std::string_view action, std::string_view detail = {}) {
    trace_.record(now(), category, actor, action, detail);
  }

  std::size_t run_until(TimePoint deadline) { return queue_.run_until(deadline); }
  std::size_t run_for(Duration d) { return queue_.run_until(now() + d); }

  /// Drains the queue. If `max_events` cuts the scenario off mid-flight, a
  /// "queue.truncated" warning event is recorded so the stop is auditable
  /// instead of silent.
  std::size_t run_all(std::size_t max_events = 50'000'000);

 private:
  EventQueue queue_;
  Rng rng_;
  TraceLog trace_;
};

}  // namespace cyd::sim
