#pragma once
// Parallel Monte-Carlo sweep runner.
//
// Every quantitative result in the reproduction (the §V trend curves, the
// ablations) is a sweep of independent seeded Simulation runs. SweepRunner
// fans those runs across a work-stealing thread pool while keeping the
// aggregation deterministic: results land in a vector slot chosen by run
// index, and reduce() folds in index order, so a parallel sweep is
// bit-identical to the serial loop it replaced regardless of which worker
// finishes first. Each run builds its own Simulation (and everything
// hanging off it) inside the worker; no simulation state crosses threads.
//
// Work distribution: indices [0, runs) are pre-partitioned into one
// contiguous shard per worker; a worker drains its own shard from the
// front and, when empty, steals single runs from the *back* of another
// shard. Runs are coarse (whole campaigns, typically milliseconds to
// seconds each), so per-steal locking is noise.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace cyd::sim {

/// Identity of one run inside a sweep: its slot in the result vector and
/// the seed derived for it.
struct SweepRun {
  std::size_t index = 0;
  std::uint64_t seed = 0;
};

/// Per-run measurement, collected by run index.
struct RunStats {
  std::uint64_t seed = 0;
  double wall_ms = 0.0;
};

struct SweepStats {
  std::vector<RunStats> runs;  // indexed by run number
  double wall_ms = 0.0;        // whole sweep, caller's clock
  unsigned workers = 0;

  /// Sum of per-run wall times — the serial-equivalent cost.
  double total_run_ms() const;
  /// Longest single run — the lower bound on parallel wall time.
  double max_run_ms() const;
};

struct SweepOptions {
  unsigned workers = 0;  // 0 -> hardware_concurrency()
};

/// SplitMix64 over (base_seed, index): deterministic, well-spread per-run
/// seeds. Serial baselines must use the same derivation to stay
/// bit-identical with SweepRunner::map.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Worker count including the calling thread, which participates.
  unsigned workers() const {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Invokes task(i) exactly once for every i in [0, count), distributed
  /// across the pool. Blocks until all invocations complete; the first
  /// exception thrown by a task is rethrown here after the sweep settles.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task);

  /// Runs fn(SweepRun) for `runs` independent runs and returns the results
  /// ordered by run index. R must be default-constructible.
  template <class Fn>
  auto map(std::size_t runs, std::uint64_t base_seed, Fn&& fn) {
    using R = std::invoke_result_t<Fn&, const SweepRun&>;
    static_assert(std::is_default_constructible_v<R>,
                  "SweepRunner::map result type must be default-constructible");
    std::vector<R> results(runs);
    stats_ = SweepStats{};
    stats_.runs.resize(runs);
    stats_.workers = workers();
    const auto sweep_start = std::chrono::steady_clock::now();
    run_indexed(runs, [&](std::size_t i) {
      const SweepRun run{i, derive_seed(base_seed, i)};
      const auto run_start = std::chrono::steady_clock::now();
      results[i] = fn(run);  // distinct slots; no synchronisation needed
      stats_.runs[i] = RunStats{run.seed, elapsed_ms(run_start)};
    });
    stats_.wall_ms = elapsed_ms(sweep_start);
    return results;
  }

  /// map() followed by a fold in run-index order — deterministic no matter
  /// how the runs were scheduled.
  template <class Fn, class T, class Combine>
  T reduce(std::size_t runs, std::uint64_t base_seed, Fn&& fn, T init,
           Combine&& combine) {
    auto results = map(runs, base_seed, std::forward<Fn>(fn));
    for (auto& result : results) {
      init = combine(std::move(init), std::move(result));
    }
    return init;
  }

  /// Stats for the most recent map()/reduce() call.
  const SweepStats& last_stats() const { return stats_; }

 private:
  struct Shard {
    std::mutex mutex;
    std::size_t next = 0;
    std::size_t end = 0;
  };

  static double elapsed_ms(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  void worker_loop(std::size_t self);
  void drain(std::size_t self, const std::function<void(std::size_t)>& task);
  bool take(std::size_t shard, std::size_t& out);
  bool steal(std::size_t thief, std::size_t& out);

  std::vector<std::unique_ptr<Shard>> shards_;  // one per worker; [0]=caller
  std::vector<std::thread> threads_;

  // Job control. All completion bookkeeping is under job_mutex_: runs are
  // coarse, so the lock is uncontended and the protocol stays trivially
  // race-free (TSan-clean by construction).
  std::mutex job_mutex_;
  std::condition_variable job_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;  // caller waits for completion
  std::uint64_t job_generation_ = 0;
  const std::function<void(std::size_t)>* job_task_ = nullptr;
  std::size_t remaining_ = 0;  // tasks not yet finished
  std::size_t draining_ = 0;   // pool workers currently inside drain()
  bool stopping_ = false;
  std::exception_ptr first_error_;

  SweepStats stats_;
};

/// Process-wide runner sized to the hardware, built on first use. Benches
/// and tools that just want "run this sweep on all cores" go through the
/// Sweep:: helpers below.
SweepRunner& default_sweep_runner();

struct Sweep {
  /// Sweep::map(runs, base_seed, fn) on the default runner.
  template <class Fn>
  static auto map(std::size_t runs, std::uint64_t base_seed, Fn&& fn) {
    return default_sweep_runner().map(runs, base_seed, std::forward<Fn>(fn));
  }

  /// Maps fn over an explicit parameter list (one run per item), returning
  /// results in item order. The per-run seed is derived from the item index
  /// so runs stay reproducible.
  template <class P, class Fn>
  static auto map_items(const std::vector<P>& items, Fn&& fn) {
    return default_sweep_runner().map(
        items.size(), 0,
        [&](const SweepRun& run) { return fn(items[run.index]); });
  }

  template <class Fn, class T, class Combine>
  static T reduce(std::size_t runs, std::uint64_t base_seed, Fn&& fn, T init,
                  Combine&& combine) {
    return default_sweep_runner().reduce(runs, base_seed,
                                         std::forward<Fn>(fn), std::move(init),
                                         std::forward<Combine>(combine));
  }

  /// Stats for the most recent sweep on the default runner.
  static const SweepStats& last_stats() {
    return default_sweep_runner().last_stats();
  }
};

}  // namespace cyd::sim
