#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

namespace cyd::sim {

void EventQueue::set_backend(Backend backend, CalendarConfig config) {
  if (!heap_.empty() || cal_count_ != 0) {
    throw std::logic_error(
        "EventQueue::set_backend: backend can only change while no key is "
        "stored");
  }
  if (backend == Backend::kCalendar) {
    // Validate before mutating anything, so a throw leaves the queue usable.
    if (config.bucket_bits < 6 || config.bucket_bits > 22) {
      throw std::invalid_argument(
          "EventQueue: calendar bucket_bits outside [6, 22]");
    }
    if (config.width_shift > 40) {
      throw std::invalid_argument(
          "EventQueue: calendar width_shift outside [0, 40]");
    }
  }
  backend_ = backend;
  cal_front_valid_ = false;
  if (backend == Backend::kCalendar) {
    cal_width_shift_ = config.width_shift;
    cal_bucket_mask_ = (std::uint64_t{1} << config.bucket_bits) - 1;
    cal_buckets_.assign(cal_bucket_mask_ + 1, {});
    cal_occupancy_.assign((cal_bucket_mask_ + 1) >> 6, 0);
    cal_day_ = static_cast<std::uint64_t>(now_) >> cal_width_shift_;
  } else {
    cal_buckets_.clear();
    cal_buckets_.shrink_to_fit();
    cal_occupancy_.clear();
    cal_occupancy_.shrink_to_fit();
    cal_bucket_mask_ = 0;
    cal_width_shift_ = 0;
    cal_day_ = 0;
  }
  cal_sorted_bucket_ = kNullIndex;
}

void EventQueue::reserve(std::size_t events) {
  const std::size_t slots =
      std::min<std::size_t>(events, std::size_t{kSlotMask} + 1);
  const std::size_t chunks = (slots + kChunkSize - 1) >> kChunkShift;
  chunks_.reserve(chunks);
  while (chunks_.size() < chunks) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  // The heap may hold every key (kHeap) or only the overflow (kCalendar);
  // reserving for the worst case keeps the zero-allocation pin unconditional.
  // `slots`, not `events`: concurrently stored keys cannot exceed the 2^24
  // slot ceiling, so the unclamped count would just over-allocate.
  heap_.reserve(slots);
  if (backend_ == Backend::kCalendar && slots > cal_bucket_mask_) {
    // Pre-size each bucket for its uniform share. Two deliberate limits:
    // when events < bucket count the per-bucket share rounds up from zero
    // and the loop would pay O(bucket_count) one-element reservations (up
    // to ~4.2M at bucket_bits=22) for a storm the slab absorbs anyway, so
    // it is skipped; and a storm skewed into few buckets can still grow
    // those vectors past their uniform share — the zero-allocation
    // guarantee assumes a roughly even spread across the wheel.
    const std::size_t per_bucket =
        (slots + cal_bucket_mask_) / (cal_bucket_mask_ + 1);
    for (auto& bucket : cal_buckets_) {
      if (bucket.capacity() < per_bucket) bucket.reserve(per_bucket);
    }
  }
}

std::uint32_t EventQueue::allocate_slot() {
  if (free_head_ != kNullIndex) {
    const std::uint32_t index = free_head_;
    Slot& s = slot(index);
    free_head_ = s.next_free;
    s.next_free = kNullIndex;
    return index;
  }
  if (slot_count_ > kSlotMask) {
    throw std::length_error(
        "EventQueue: more than 2^24 concurrently pending events");
  }
  // reserve() may have pre-built chunks past the live slot count.
  if ((slot_count_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void EventQueue::release_slot(Slot& s, std::uint32_t index) {
  s.period = 0;
  s.tag = 0;
  s.cancelled = false;
  s.heap_index = kNullIndex;
  s.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::free_slot(std::uint32_t index) {
  Slot& s = slot(index);
  s.fn.reset();
  ++s.generation;  // invalidates every outstanding handle to this slot
  release_slot(s, index);
}

void EventQueue::push_key(TimePoint time, std::uint32_t slot) {
  if (next_seq_ >> 40u) {
    throw std::length_error("EventQueue: event sequence space exhausted");
  }
  push_order(time, (next_seq_++ << kSlotBits) | slot);
}

void EventQueue::push_order(TimePoint time, std::uint64_t order) {
  if (backend_ == Backend::kHeap) {
    heap_.emplace_back();  // opens a hole at the tail for sift_up to fill
    sift_up(heap_.size() - 1, HeapKey{time, order});
  } else {
    cal_insert(time, order);
  }
  ++live_;
  ++stats_.scheduled;
  if (live_ > stats_.peak_pending) stats_.peak_pending = live_;
}

void EventQueue::sift_up(std::size_t index, HeapKey key) {
  HeapKey* const heap = heap_.data();
  while (index > 0) {
    const std::size_t parent = (index - 1) / 4;
    const HeapKey moved = heap[parent];
    if (!earlier(key, moved)) break;
    heap[index] = moved;
    slot(static_cast<std::uint32_t>(moved.order & kSlotMask)).heap_index =
        static_cast<std::uint32_t>(index);
    index = parent;
  }
  heap[index] = key;
  slot(static_cast<std::uint32_t>(key.order & kSlotMask)).heap_index =
      static_cast<std::uint32_t>(index);
}

void EventQueue::sift_down(std::size_t index, HeapKey key) {
  HeapKey* const heap = heap_.data();
  const std::size_t n = heap_.size();
  // Floyd's descend: every caller re-seats a near-maximal key (the heap tail
  // after a pop, or a periodic re-arm at now + period), so instead of
  // comparing `key` against the min child at every level, walk the min-child
  // chain straight to a leaf and sift the key up from there — which almost
  // always places it immediately. Extraction order only depends on the heap
  // property (keys are unique), so the different internal layout this
  // produces cannot change event order.
  for (;;) {
    const std::size_t first_child = 4 * index + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    HeapKey best_key = heap[first_child];
    // Branchless child scan: event times are data-dependent, so a naive
    // `if (earlier(...))` mispredicts roughly every other node and dominates
    // the sift cost. Selects compile to cmovs.
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      const HeapKey k = heap[c];
      const bool lt = (k.time < best_key.time) |
                      ((k.time == best_key.time) & (k.order < best_key.order));
      best = lt ? c : best;
      best_key.time = lt ? k.time : best_key.time;
      best_key.order = lt ? k.order : best_key.order;
    }
    heap[index] = best_key;
    slot(static_cast<std::uint32_t>(best_key.order & kSlotMask)).heap_index =
        static_cast<std::uint32_t>(index);
    index = best;
  }
  sift_up(index, key);
}

std::uint32_t EventQueue::pop_front() {
  const auto index = static_cast<std::uint32_t>(heap_.front().order & kSlotMask);
  slot(index).heap_index = kNullIndex;
  const HeapKey last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, last);
  return index;
}

void EventQueue::remove_heap_index(std::size_t index) {
  const HeapKey last = heap_.back();
  heap_.pop_back();
  if (index == heap_.size()) return;  // the removed key was the tail
  // Re-seat the tail key at the vacated position; it may move either way.
  if (index > 0 && earlier(last, heap_[(index - 1) / 4])) {
    sift_up(index, last);
  } else {
    sift_down(index, last);
  }
}

void EventQueue::cal_insert(TimePoint time, std::uint64_t order) {
  // Callers clamp `time` to now_, but the cursor can sit *past* now_'s day:
  // next_time() pruning a tombstone advances cal_day_ to the tombstone's day
  // without moving the clock. A key due before the cursor then has
  // day < cal_day_, and the unsigned subtraction wraps to a huge distance —
  // which routes it to the overflow heap, exactly where it belongs: it pops
  // from there via the exact min comparison in cal_scan_front, and the
  // monotone cursor (cal_remove_front) never rewinds for it.
  const std::uint64_t day = static_cast<std::uint64_t>(time) >> cal_width_shift_;
  if (day - cal_day_ > cal_bucket_mask_) {
    // Beyond the wheel window: park in the overflow heap. The key pops from
    // there directly once it becomes the global minimum — by then the cursor
    // has advanced past every earlier wheel key, so the min comparison in
    // cal_scan_front is exact and no migration is needed.
    heap_.emplace_back();
    sift_up(heap_.size() - 1, HeapKey{time, order});
  } else {
    const auto b = static_cast<std::uint32_t>(day & cal_bucket_mask_);
    cal_buckets_[b].push_back(HeapKey{time, order});
    cal_occupancy_[b >> 6] |= std::uint64_t{1} << (b & 63);
    if (b == cal_sorted_bucket_) cal_sorted_bucket_ = kNullIndex;
    slot(static_cast<std::uint32_t>(order & kSlotMask)).heap_index =
        kWheelTag | b;
    ++cal_count_;
  }
  if (cal_front_valid_ && earlier(HeapKey{time, order}, cal_front_key_)) {
    cal_front_valid_ = false;
  }
}

bool EventQueue::cal_scan_front(HeapKey& out) {
  bool have = false;
  HeapKey best{};
  std::uint32_t best_bucket = kNullIndex;
  std::uint32_t best_pos = 0;
  if (!heap_.empty()) {
    best = heap_.front();
    have = true;
  }
  if (cal_count_ > 0) {
    // Circular first-set-bit scan from the cursor's bucket: the first
    // occupied bucket holds the wheel minimum's time-day (bucket order is
    // time order within the window), and the earliest key inside it — an
    // unsorted O(occupancy) scan — is the wheel minimum.
    const auto start = static_cast<std::uint32_t>(cal_day_ & cal_bucket_mask_);
    const auto words = static_cast<std::uint32_t>((cal_bucket_mask_ + 1) >> 6);
    std::uint32_t w = start >> 6;
    std::uint64_t bits = cal_occupancy_[w] & (~std::uint64_t{0} << (start & 63));
    while (bits == 0) {  // cal_count_ > 0 guarantees a set bit exists
      w = (w + 1 == words) ? 0 : w + 1;
      bits = cal_occupancy_[w];
    }
    const std::uint32_t b =
        (w << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
    auto& bucket = cal_buckets_[b];
    HeapKey wheel_min;
    std::uint32_t pos;
    if (b == cal_sorted_bucket_) {
      // Already latest-first from a previous scan: the minimum is the back.
      wheel_min = bucket.back();
      pos = static_cast<std::uint32_t>(bucket.size() - 1);
      ++stats_.front_scan_keys;
    } else if (bucket.size() > kSortCutoff) {
      // Sort the cursor's bucket latest-first exactly once: the wheel
      // minimum is then bucket.back(), and every subsequent pop from this
      // bucket is a pop_back() instead of an O(occupancy) rescan. All keys
      // in the bucket share one day (the window invariant), so sorting by
      // (time, order) is the pop order within it.
      std::sort(bucket.begin(), bucket.end(),
                [](const HeapKey& a, const HeapKey& c) { return earlier(c, a); });
      cal_sorted_bucket_ = b;
      wheel_min = bucket.back();
      pos = static_cast<std::uint32_t>(bucket.size() - 1);
      stats_.front_scan_keys += bucket.size();
    } else {
      // Tiny bucket: a linear min-scan is cheaper than sorting it.
      pos = 0;
      wheel_min = bucket[0];
      for (std::uint32_t i = 1; i < bucket.size(); ++i) {
        if (earlier(bucket[i], wheel_min)) {
          wheel_min = bucket[i];
          pos = i;
        }
      }
      stats_.front_scan_keys += bucket.size();
    }
    if (!have || earlier(wheel_min, best)) {
      best = wheel_min;
      best_bucket = b;
      best_pos = pos;
    }
    have = true;
  }
  if (!have) return false;
  cal_front_valid_ = true;
  cal_front_key_ = best;
  cal_front_bucket_ = best_bucket;
  cal_front_pos_ = best_pos;
  out = best;
  return true;
}

void EventQueue::cal_remove_front() {
  // front_key() ran just before, so the cache names the global minimum.
  const HeapKey front = cal_front_key_;
  if (cal_front_bucket_ == kNullIndex) {
    pop_front();  // overflow root won the min comparison
  } else {
    auto& bucket = cal_buckets_[cal_front_bucket_];
    slot(static_cast<std::uint32_t>(front.order & kSlotMask)).heap_index =
        kNullIndex;
    // Sorted (latest-first) buckets pop from the back; unsorted tiny
    // buckets swap-remove the scanned position.
    if (cal_front_bucket_ != cal_sorted_bucket_) {
      bucket[cal_front_pos_] = bucket.back();
    }
    bucket.pop_back();
    if (bucket.empty()) {
      cal_occupancy_[cal_front_bucket_ >> 6] &=
          ~(std::uint64_t{1} << (cal_front_bucket_ & 63));
      cal_sorted_bucket_ = kNullIndex;
    }
    --cal_count_;
  }
  // Advance the cursor to the popped minimum's day: every remaining key is
  // >= it, so the wheel invariant (stored days in [cal_day_, cal_day_ + B))
  // is preserved and freed buckets become addressable a full window ahead.
  // Monotone max, never an assignment: a tombstone pruned via next_time()
  // can advance the cursor past now_, after which an event scheduled near
  // now_ parks in the overflow heap with a day *below* cal_day_. Rewinding
  // the cursor when that key pops would strand previously-inserted wheel
  // keys beyond the window, wrapping their ring offsets so the circular
  // scan visits a later day before an earlier one — time running backwards.
  cal_day_ = std::max(
      cal_day_, static_cast<std::uint64_t>(front.time) >> cal_width_shift_);
  cal_front_valid_ = false;
}

void EventQueue::cal_remove_slot(std::uint32_t index,
                                 std::uint32_t bucket_index) {
  auto& bucket = cal_buckets_[bucket_index];
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (static_cast<std::uint32_t>(bucket[i].order & kSlotMask) != index) {
      continue;
    }
    bucket[i] = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) {
      cal_occupancy_[bucket_index >> 6] &=
          ~(std::uint64_t{1} << (bucket_index & 63));
    }
    // The swap-remove broke any latest-first order in this bucket.
    if (bucket_index == cal_sorted_bucket_) cal_sorted_bucket_ = kNullIndex;
    --cal_count_;
    return;
  }
}

bool EventQueue::front_key(HeapKey& out) {
  if (backend_ == Backend::kHeap) {
    if (heap_.empty()) return false;
    out = heap_.front();
    return true;
  }
  if (cal_front_valid_) {
    out = cal_front_key_;
    return true;
  }
  return cal_scan_front(out);
}

void EventQueue::remove_front() {
  if (backend_ == Backend::kHeap) {
    pop_front();
  } else {
    cal_remove_front();
  }
}

EventHandle EventQueue::schedule_at(TimePoint t, EventFn fn) {
  const std::uint32_t index = allocate_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  push_key(std::max(t, now_), index);
  return EventHandle(this, index, s.generation);
}

EventHandle EventQueue::schedule_keyed(TimePoint t, std::uint64_t key,
                                       std::uint32_t tag, EventFn fn) {
  if (key >> 40u) {
    throw std::length_error("EventQueue: keyed order past the 2^40 ceiling");
  }
  const std::uint32_t index = allocate_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.tag = tag;
  push_order(std::max(t, now_), (key << kSlotBits) | index);
  return EventHandle(this, index, s.generation);
}

EventHandle EventQueue::schedule_every(Duration period, EventFn fn,
                                       TimePoint first) {
  if (period <= 0) period = 1;
  const std::uint32_t index = allocate_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.period = period;
  push_key(std::max(first, now_), index);
  return EventHandle(this, index, s.generation);
}

void EventQueue::handle_cancel(const EventHandle& h) {
  if (!handle_live(h)) return;
  Slot& s = slot(h.slot_);
  if (s.cancelled) return;
  s.cancelled = true;
  ++stats_.cancelled;
  // A slot mid-firing (periodic callback running right now) has already left
  // the live count; the step loop frees it instead of re-arming.
  if (s.heap_index != kNullIndex) --live_;
}

void EventQueue::cancel_now(EventHandle handle) {
  if (!handle_live(handle)) return;
  Slot& s = slot(handle.slot_);
  if (s.heap_index == kNullIndex) {
    // Mid-firing periodic series: no stored key to remove; mark it and let
    // the step loop skip the re-arm.
    if (!s.cancelled) {
      s.cancelled = true;
      ++stats_.cancelled;
    }
    return;
  }
  if (!s.cancelled) {
    ++stats_.cancelled;
    --live_;
  }
  if (s.heap_index >= kWheelTag) {
    cal_remove_slot(handle.slot_, s.heap_index & ~kWheelTag);
  } else {
    remove_heap_index(s.heap_index);
  }
  // The removed key may have been the cached calendar front (or may have
  // re-seated the overflow root under it); rescan lazily.
  cal_front_valid_ = false;
  free_slot(handle.slot_);
}

std::size_t EventQueue::step_front() {
  HeapKey front;
  front_key(front);  // callers guarantee a stored key
  const auto index = static_cast<std::uint32_t>(front.order & kSlotMask);
  Slot& s = slot(index);
  if (s.cancelled) {
    // Tombstone left by a lazy cancel; its live_ decrement already happened.
    ++stats_.pruned;
    remove_front();
    free_slot(index);
    return 0;
  }
  now_ = front.time;
  --live_;
  ++stats_.executed;
  if (observer_ != nullptr) {
    // Before the closure, so an observer that tracks "which shard is
    // executing" has set its context by the time user code runs.
    observer_(observer_ctx_, front.time, front.order >> kSlotBits, s.tag);
  }
  if (s.period > 0) {
    if (backend_ == Backend::kHeap) {
      // Chunk storage is pointer-stable, so the closure fires in place even
      // if the callback grows the slab — no per-firing relocation. The spent
      // key stays parked at the root while the callback runs: nothing can
      // sift above it (new events are clamped to now_ with a later seq, so
      // the root stays the global minimum), and heap_index == kNullIndex
      // marks the slot mid-firing so cancel() from inside the callback skips
      // the re-arm. The payoff is one sift_down per firing instead of a
      // pop + push pair.
      s.heap_index = kNullIndex;
      s.fn();
      if (s.cancelled) {
        const HeapKey tail = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0, tail);
        s.fn.reset();
        ++s.generation;
        release_slot(s, index);
      } else {
        if (next_seq_ >> 40u) {
          throw std::length_error("EventQueue: event sequence space exhausted");
        }
        const std::uint64_t order = (next_seq_++ << kSlotBits) | index;
        sift_down(0, HeapKey{now_ + s.period, order});
        ++live_;
        ++stats_.scheduled;
        if (live_ > stats_.peak_pending) stats_.peak_pending = live_;
      }
    } else {
      // Calendar path: no parked-root trick (bucket inserts are O(1), so a
      // remove + insert pair is already cheap). The re-arm sequence number
      // is drawn *after* the callback, exactly as in the heap path, so the
      // two backends assign identical seqs to identical firing histories.
      cal_remove_front();
      s.fn();
      if (s.cancelled) {
        s.fn.reset();
        ++s.generation;
        release_slot(s, index);
      } else {
        if (next_seq_ >> 40u) {
          throw std::length_error("EventQueue: event sequence space exhausted");
        }
        const std::uint64_t order = (next_seq_++ << kSlotBits) | index;
        cal_insert(now_ + s.period, order);
        ++live_;
        ++stats_.scheduled;
        if (live_ > stats_.peak_pending) stats_.peak_pending = live_;
      }
    }
  } else {
    remove_front();
    // Bump the generation before firing: the callback's own handle (and any
    // copy) goes inert, so self-cancellation is a no-op. The slot joins the
    // free list only after the closure returns — a callback that schedules
    // new events can never recycle the storage it is executing from.
    ++s.generation;
    s.fn();
    s.fn.reset();
    release_slot(s, index);
  }
  return 1;
}

bool EventQueue::step() {
  HeapKey front;
  while (front_key(front)) {
    if (step_front() != 0) return true;
  }
  return false;
}

bool EventQueue::prune_cancelled() {
  HeapKey front;
  while (front_key(front)) {
    const auto index = static_cast<std::uint32_t>(front.order & kSlotMask);
    if (!slot(index).cancelled) return true;
    ++stats_.pruned;
    remove_front();
    free_slot(index);
  }
  return false;
}

TimePoint EventQueue::next_time() {
  if (!prune_cancelled()) return kNoEventTime;
  HeapKey front;
  front_key(front);  // cached under kCalendar, O(1) under kHeap
  return front.time;
}

std::size_t EventQueue::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  HeapKey front;
  while (front_key(front) && front.time <= deadline) {
    executed += step_front();
  }
  now_ = std::max(now_, deadline);
  return executed;
}

EventQueue::DrainResult EventQueue::run_all(std::size_t max_events) {
  DrainResult result;
  while (result.executed < max_events && step()) ++result.executed;
  result.truncated = result.executed >= max_events && prune_cancelled();
  return result;
}

}  // namespace cyd::sim
