#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace cyd::sim {

EventHandle EventQueue::schedule_at(TimePoint t, EventFn fn) {
  EventHandle handle;
  queue_.push(Entry{std::max(t, now_), next_seq_++, std::move(fn), handle});
  return handle;
}

bool EventQueue::step() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; we need to move the closure out.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (entry.handle.cancelled()) continue;
    now_ = entry.time;
    entry.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    if (step()) ++executed;
  }
  now_ = std::max(now_, deadline);
  return executed;
}

bool EventQueue::prune_cancelled() {
  while (!queue_.empty() && queue_.top().handle.cancelled()) queue_.pop();
  return !queue_.empty();
}

EventQueue::DrainResult EventQueue::run_all(std::size_t max_events) {
  DrainResult result;
  while (result.executed < max_events && step()) ++result.executed;
  result.truncated = result.executed >= max_events && prune_cancelled();
  return result;
}

}  // namespace cyd::sim
