#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cyd::sim {

std::uint32_t EventQueue::allocate_slot() {
  if (free_head_ != kNullIndex) {
    const std::uint32_t index = free_head_;
    Slot& s = slot(index);
    free_head_ = s.next_free;
    s.next_free = kNullIndex;
    return index;
  }
  if (slot_count_ > kSlotMask) {
    throw std::length_error(
        "EventQueue: more than 2^24 concurrently pending events");
  }
  if ((slot_count_ & (kChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return slot_count_++;
}

void EventQueue::release_slot(Slot& s, std::uint32_t index) {
  s.period = 0;
  s.tag = 0;
  s.cancelled = false;
  s.heap_index = kNullIndex;
  s.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::free_slot(std::uint32_t index) {
  Slot& s = slot(index);
  s.fn.reset();
  ++s.generation;  // invalidates every outstanding handle to this slot
  release_slot(s, index);
}

void EventQueue::push_key(TimePoint time, std::uint32_t slot) {
  if (next_seq_ >> 40u) {
    throw std::length_error("EventQueue: event sequence space exhausted");
  }
  push_order(time, (next_seq_++ << kSlotBits) | slot);
}

void EventQueue::push_order(TimePoint time, std::uint64_t order) {
  heap_.emplace_back();  // opens a hole at the tail for sift_up to fill
  sift_up(heap_.size() - 1, HeapKey{time, order});
  ++live_;
  ++stats_.scheduled;
  if (live_ > stats_.peak_pending) stats_.peak_pending = live_;
}

void EventQueue::sift_up(std::size_t index, HeapKey key) {
  HeapKey* const heap = heap_.data();
  while (index > 0) {
    const std::size_t parent = (index - 1) / 4;
    const HeapKey moved = heap[parent];
    if (!earlier(key, moved)) break;
    heap[index] = moved;
    slot(static_cast<std::uint32_t>(moved.order & kSlotMask)).heap_index =
        static_cast<std::uint32_t>(index);
    index = parent;
  }
  heap[index] = key;
  slot(static_cast<std::uint32_t>(key.order & kSlotMask)).heap_index =
      static_cast<std::uint32_t>(index);
}

void EventQueue::sift_down(std::size_t index, HeapKey key) {
  HeapKey* const heap = heap_.data();
  const std::size_t n = heap_.size();
  // Floyd's descend: every caller re-seats a near-maximal key (the heap tail
  // after a pop, or a periodic re-arm at now + period), so instead of
  // comparing `key` against the min child at every level, walk the min-child
  // chain straight to a leaf and sift the key up from there — which almost
  // always places it immediately. Extraction order only depends on the heap
  // property (keys are unique), so the different internal layout this
  // produces cannot change event order.
  for (;;) {
    const std::size_t first_child = 4 * index + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    HeapKey best_key = heap[first_child];
    // Branchless child scan: event times are data-dependent, so a naive
    // `if (earlier(...))` mispredicts roughly every other node and dominates
    // the sift cost. Selects compile to cmovs.
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      const HeapKey k = heap[c];
      const bool lt = (k.time < best_key.time) |
                      ((k.time == best_key.time) & (k.order < best_key.order));
      best = lt ? c : best;
      best_key.time = lt ? k.time : best_key.time;
      best_key.order = lt ? k.order : best_key.order;
    }
    heap[index] = best_key;
    slot(static_cast<std::uint32_t>(best_key.order & kSlotMask)).heap_index =
        static_cast<std::uint32_t>(index);
    index = best;
  }
  sift_up(index, key);
}

std::uint32_t EventQueue::pop_front() {
  const auto index = static_cast<std::uint32_t>(heap_.front().order & kSlotMask);
  slot(index).heap_index = kNullIndex;
  const HeapKey last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, last);
  return index;
}

void EventQueue::remove_heap_index(std::size_t index) {
  const HeapKey last = heap_.back();
  heap_.pop_back();
  if (index == heap_.size()) return;  // the removed key was the tail
  // Re-seat the tail key at the vacated position; it may move either way.
  if (index > 0 && earlier(last, heap_[(index - 1) / 4])) {
    sift_up(index, last);
  } else {
    sift_down(index, last);
  }
}

EventHandle EventQueue::schedule_at(TimePoint t, EventFn fn) {
  const std::uint32_t index = allocate_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  push_key(std::max(t, now_), index);
  return EventHandle(this, index, s.generation);
}

EventHandle EventQueue::schedule_keyed(TimePoint t, std::uint64_t key,
                                       std::uint32_t tag, EventFn fn) {
  if (key >> 40u) {
    throw std::length_error("EventQueue: keyed order past the 2^40 ceiling");
  }
  const std::uint32_t index = allocate_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.tag = tag;
  push_order(std::max(t, now_), (key << kSlotBits) | index);
  return EventHandle(this, index, s.generation);
}

EventHandle EventQueue::schedule_every(Duration period, EventFn fn,
                                       TimePoint first) {
  if (period <= 0) period = 1;
  const std::uint32_t index = allocate_slot();
  Slot& s = slot(index);
  s.fn = std::move(fn);
  s.period = period;
  push_key(std::max(first, now_), index);
  return EventHandle(this, index, s.generation);
}

void EventQueue::handle_cancel(const EventHandle& h) {
  if (!handle_live(h)) return;
  Slot& s = slot(h.slot_);
  if (s.cancelled) return;
  s.cancelled = true;
  ++stats_.cancelled;
  // A slot mid-firing (periodic callback running right now) has already left
  // the live count; the step loop frees it instead of re-arming.
  if (s.heap_index != kNullIndex) --live_;
}

void EventQueue::cancel_now(EventHandle handle) {
  if (!handle_live(handle)) return;
  Slot& s = slot(handle.slot_);
  if (s.heap_index == kNullIndex) {
    // Mid-firing periodic series: no heap entry to remove; mark it and let
    // the step loop skip the re-arm.
    if (!s.cancelled) {
      s.cancelled = true;
      ++stats_.cancelled;
    }
    return;
  }
  if (!s.cancelled) {
    ++stats_.cancelled;
    --live_;
  }
  remove_heap_index(s.heap_index);
  free_slot(handle.slot_);
}

std::size_t EventQueue::step_front() {
  const HeapKey front = heap_.front();
  const auto index = static_cast<std::uint32_t>(front.order & kSlotMask);
  Slot& s = slot(index);
  if (s.cancelled) {
    // Tombstone left by a lazy cancel; its live_ decrement already happened.
    pop_front();
    free_slot(index);
    return 0;
  }
  now_ = front.time;
  --live_;
  ++stats_.executed;
  if (observer_ != nullptr) {
    // Before the closure, so an observer that tracks "which shard is
    // executing" has set its context by the time user code runs.
    observer_(observer_ctx_, front.time, front.order >> kSlotBits, s.tag);
  }
  if (s.period > 0) {
    // Chunk storage is pointer-stable, so the closure fires in place even if
    // the callback grows the slab — no per-firing relocation. The spent key
    // stays parked at the root while the callback runs: nothing can sift
    // above it (new events are clamped to now_ with a later seq, so the root
    // stays the global minimum), and heap_index == kNullIndex marks the slot
    // mid-firing so cancel() from inside the callback skips the re-arm. The
    // payoff is one sift_down per firing instead of a pop + push pair.
    s.heap_index = kNullIndex;
    s.fn();
    if (s.cancelled) {
      const HeapKey tail = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) sift_down(0, tail);
      s.fn.reset();
      ++s.generation;
      release_slot(s, index);
    } else {
      if (next_seq_ >> 40u) {
        throw std::length_error("EventQueue: event sequence space exhausted");
      }
      const std::uint64_t order = (next_seq_++ << kSlotBits) | index;
      sift_down(0, HeapKey{now_ + s.period, order});
      ++live_;
      ++stats_.scheduled;
      if (live_ > stats_.peak_pending) stats_.peak_pending = live_;
    }
  } else {
    s.heap_index = kNullIndex;
    const HeapKey tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, tail);
    // Bump the generation before firing: the callback's own handle (and any
    // copy) goes inert, so self-cancellation is a no-op. The slot joins the
    // free list only after the closure returns — a callback that schedules
    // new events can never recycle the storage it is executing from.
    ++s.generation;
    s.fn();
    s.fn.reset();
    release_slot(s, index);
  }
  return 1;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    if (step_front() != 0) return true;
  }
  return false;
}

bool EventQueue::prune_cancelled() {
  while (!heap_.empty()) {
    const auto index =
        static_cast<std::uint32_t>(heap_.front().order & kSlotMask);
    if (!slot(index).cancelled) return true;
    pop_front();
    free_slot(index);
  }
  return false;
}

TimePoint EventQueue::next_time() {
  return prune_cancelled() ? heap_.front().time : kNoEventTime;
}

std::size_t EventQueue::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().time <= deadline) {
    executed += step_front();
  }
  now_ = std::max(now_, deadline);
  return executed;
}

EventQueue::DrainResult EventQueue::run_all(std::size_t max_events) {
  DrainResult result;
  while (result.executed < max_events && step()) ++result.executed;
  result.truncated = result.executed >= max_events && prune_cancelled();
  return result;
}

}  // namespace cyd::sim
