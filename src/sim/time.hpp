#pragma once
// Virtual time for the discrete-event simulation.
//
// All simulated clocks count milliseconds from an arbitrary epoch. Scenario
// configs that care about wall-clock semantics (e.g. Shamoon's hardcoded kill
// date of 2012-08-15 08:08 UTC) map calendar dates onto this axis with
// make_date().

#include <cstdint>
#include <string>

namespace cyd::sim {

/// Milliseconds since the simulation epoch.
using TimePoint = std::int64_t;

/// A span of simulated milliseconds.
using Duration = std::int64_t;

inline constexpr Duration kMillisecond = 1;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }
constexpr Duration minutes(std::int64_t n) { return n * kMinute; }
constexpr Duration hours(std::int64_t n) { return n * kHour; }
constexpr Duration days(std::int64_t n) { return n * kDay; }

/// Builds a calendar timestamp on the virtual axis. The simulation epoch is
/// defined as 2010-01-01 00:00:00 (the year Stuxnet was discovered); only the
/// ordering and spacing of dates matter to the models.
TimePoint make_date(int year, int month, int day, int hour = 0, int minute = 0);

/// Renders a TimePoint as "YYYY-MM-DD hh:mm:ss.mmm" for traces and reports.
std::string format_time(TimePoint t);

/// Appends format_time(t) to `out` without creating a temporary string;
/// used by TraceLog::render_tail's single-buffer rendering.
void format_time_to(std::string& out, TimePoint t);

/// Renders a Duration as a compact human-readable span, e.g. "2d 03:15:00".
std::string format_duration(Duration d);

}  // namespace cyd::sim
