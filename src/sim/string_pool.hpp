#pragma once
// Deduplicating append-only string storage.
//
// The trace log interns every actor/action string once and stores 32-bit
// ids in its events, so the record hot path stops allocating and equality
// tests compress to integer compares. Ids are assigned in first-seen order,
// which keeps interning deterministic: two logs fed the same record
// sequence produce the same ids (and therefore byte-identical event
// vectors — the determinism tests rely on this).

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace cyd::sim {

/// Index into a StringPool. 32 bits keep TraceEvent compact.
using StringId = std::uint32_t;

/// Sentinel for "not interned"; returned by StringPool::find on a miss.
/// Never assigned to a real string, so comparing an event field against it
/// is always false.
inline constexpr StringId kNoString = 0xffff'ffffu;

class StringPool {
 public:
  /// Returns the id for `s`, interning it on first sight. Amortised O(1);
  /// allocates only the first time a distinct string appears.
  StringId intern(std::string_view s);

  /// Id of an already-interned string; kNoString when absent. Never
  /// allocates (heterogeneous lookup).
  StringId find(std::string_view s) const;

  /// The string behind an id. Views stay valid until clear(): entries live
  /// in a deque, so later interning never moves them.
  std::string_view view(StringId id) const { return strings_[id]; }

  std::size_t size() const { return strings_.size(); }
  bool empty() const { return strings_.empty(); }
  void clear();

  bool operator==(const StringPool& other) const {
    return strings_ == other.strings_;
  }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::deque<std::string> strings_;  // id -> string, stable addresses
  std::unordered_map<std::string, StringId, Hash, std::equal_to<>> ids_;
};

}  // namespace cyd::sim
