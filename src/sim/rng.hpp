#pragma once
// Deterministic random number generation for simulations.
//
// Every stochastic decision in the framework flows through a sim::Rng seeded
// from the scenario config, so whole campaigns replay bit-identically. The
// engine is xoshiro256** (public domain, Blackman & Vigna) seeded via
// SplitMix64.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace cyd::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed);

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child stream; used to give each subsystem its own
  /// stream so adding randomness in one module does not perturb another.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace cyd::sim
