#include "sim/trace.hpp"

namespace cyd::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kFile: return "file";
    case TraceCategory::kRegistry: return "registry";
    case TraceCategory::kProcess: return "process";
    case TraceCategory::kDriver: return "driver";
    case TraceCategory::kNetwork: return "network";
    case TraceCategory::kUsb: return "usb";
    case TraceCategory::kBluetooth: return "bluetooth";
    case TraceCategory::kScada: return "scada";
    case TraceCategory::kMalware: return "malware";
    case TraceCategory::kCnc: return "cnc";
    case TraceCategory::kSecurity: return "security";
    case TraceCategory::kSim: return "sim";
  }
  return "?";
}

void TraceLog::record(TimePoint time, TraceCategory category,
                      std::string_view actor, std::string_view action,
                      std::string_view detail) {
  const StringId actor_id = pool_.intern(actor);
  const StringId action_id = pool_.intern(action);
  const auto event_index = static_cast<std::uint32_t>(events_.size());
  const auto detail_offset = static_cast<std::uint32_t>(details_.size());
  details_.append(detail);
  events_.push_back(TraceEvent{time, category, actor_id, action_id,
                               detail_offset,
                               static_cast<std::uint32_t>(detail.size())});
  by_category_index_[static_cast<std::size_t>(category)].push_back(
      event_index);
  append_posting(by_action_index_, action_id, event_index);
  append_posting(by_actor_index_, actor_id, event_index);
}

void TraceLog::append_posting(
    std::vector<std::vector<std::uint32_t>>& table, StringId id,
    std::uint32_t event_index) {
  if (id >= table.size()) table.resize(id + 1);
  table[id].push_back(event_index);
}

void TraceLog::reserve(std::size_t events, std::size_t detail_bytes) {
  events_.reserve(events);
  if (detail_bytes > 0) details_.reserve(detail_bytes);
}

void TraceLog::clear() {
  events_.clear();
  pool_.clear();
  details_.clear();
  for (auto& index : by_category_index_) index.clear();
  by_action_index_.clear();
  by_actor_index_.clear();
}

const std::vector<std::uint32_t>* TraceLog::postings(
    const std::vector<std::vector<std::uint32_t>>& table, StringId id) const {
  if (id == kNoString || id >= table.size() || table[id].empty()) {
    return nullptr;
  }
  return &table[id];
}

const std::vector<std::uint32_t>* TraceLog::action_index(
    std::string_view action) const {
  return postings(by_action_index_, pool_.find(action));
}

const std::vector<std::uint32_t>* TraceLog::actor_index(
    std::string_view actor) const {
  return postings(by_actor_index_, pool_.find(actor));
}

std::size_t TraceLog::count_action(std::string_view action) const {
  const auto* index = action_index(action);
  return index == nullptr ? 0 : index->size();
}

std::size_t TraceLog::count_actor(std::string_view actor) const {
  const auto* index = actor_index(actor);
  return index == nullptr ? 0 : index->size();
}

std::vector<TraceRecord> TraceLog::query(
    const std::function<bool(const TraceEventRef&)>& pred) const {
  std::vector<TraceRecord> out;
  for (const auto& e : events_) {
    const TraceEventRef ref(*this, e);
    if (pred(ref)) {
      out.push_back(TraceRecord{e.time, e.category, std::string(ref.actor()),
                                std::string(ref.action()),
                                std::string(ref.detail())});
    }
  }
  return out;
}

std::vector<TraceRecord> TraceLog::by_category(TraceCategory c) const {
  std::vector<TraceRecord> out;
  const auto& index = category_index(c);
  out.reserve(index.size());
  for (const auto i : index) {
    const auto& e = events_[i];
    out.push_back(TraceRecord{e.time, e.category, std::string(actor(e)),
                              std::string(action(e)), std::string(detail(e))});
  }
  return out;
}

std::vector<TraceRecord> TraceLog::by_action(std::string_view action_str) const {
  std::vector<TraceRecord> out;
  if (const auto* index = action_index(action_str)) {
    out.reserve(index->size());
    for (const auto i : *index) {
      const auto& e = events_[i];
      out.push_back(TraceRecord{e.time, e.category, std::string(actor(e)),
                                std::string(action(e)),
                                std::string(detail(e))});
    }
  }
  return out;
}

std::vector<TraceRecord> TraceLog::by_actor(std::string_view actor_str) const {
  std::vector<TraceRecord> out;
  if (const auto* index = actor_index(actor_str)) {
    out.reserve(index->size());
    for (const auto i : *index) {
      const auto& e = events_[i];
      out.push_back(TraceRecord{e.time, e.category, std::string(actor(e)),
                                std::string(action(e)),
                                std::string(detail(e))});
    }
  }
  return out;
}

std::uint64_t TraceLog::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& e : events_) {
    fnv_mix(h, static_cast<std::uint64_t>(e.time));
    fnv_mix(h, static_cast<std::uint64_t>(e.category));
    fnv_mix(h, actor(e));
    fnv_mix(h, action(e));
    fnv_mix(h, detail(e));
  }
  return h;
}

bool TraceLog::operator==(const TraceLog& other) const {
  if (events_.size() != other.events_.size()) return false;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto& a = events_[i];
    const auto& b = other.events_[i];
    if (a.time != b.time || a.category != b.category ||
        actor(a) != other.actor(b) || action(a) != other.action(b) ||
        detail(a) != other.detail(b)) {
      return false;
    }
  }
  return true;
}

std::string TraceLog::render_tail(std::size_t max_lines) const {
  const std::size_t start =
      events_.size() > max_lines ? events_.size() - max_lines : 0;
  std::string out;
  std::size_t bytes = 0;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const auto& e = events_[i];
    bytes += 40 + actor(e).size() + action(e).size() + e.detail_size;
  }
  out.reserve(bytes);
  for (std::size_t i = start; i < events_.size(); ++i) {
    const auto& e = events_[i];
    format_time_to(out, e.time);
    out += " [";
    out += to_string(e.category);
    out += "] ";
    out += actor(e);
    out += ' ';
    out += action(e);
    if (e.detail_size > 0) {
      out += ' ';
      out += detail(e);
    }
    out += '\n';
  }
  return out;
}

}  // namespace cyd::sim
