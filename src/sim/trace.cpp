#include "sim/trace.hpp"

#include <sstream>

namespace cyd::sim {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kFile: return "file";
    case TraceCategory::kRegistry: return "registry";
    case TraceCategory::kProcess: return "process";
    case TraceCategory::kDriver: return "driver";
    case TraceCategory::kNetwork: return "network";
    case TraceCategory::kUsb: return "usb";
    case TraceCategory::kBluetooth: return "bluetooth";
    case TraceCategory::kScada: return "scada";
    case TraceCategory::kMalware: return "malware";
    case TraceCategory::kCnc: return "cnc";
    case TraceCategory::kSecurity: return "security";
    case TraceCategory::kSim: return "sim";
  }
  return "?";
}

void TraceLog::record(TimePoint time, TraceCategory category,
                      std::string actor, std::string action,
                      std::string detail) {
  events_.push_back(TraceEvent{time, category, std::move(actor),
                               std::move(action), std::move(detail)});
}

std::vector<TraceEvent> TraceLog::query(
    const std::function<bool(const TraceEvent&)>& pred) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (pred(e)) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::by_category(TraceCategory c) const {
  return query([c](const TraceEvent& e) { return e.category == c; });
}

std::vector<TraceEvent> TraceLog::by_action(const std::string& action) const {
  return query([&](const TraceEvent& e) { return e.action == action; });
}

std::vector<TraceEvent> TraceLog::by_actor(const std::string& actor) const {
  return query([&](const TraceEvent& e) { return e.actor == actor; });
}

std::size_t TraceLog::count_action(const std::string& action) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.action == action) ++n;
  }
  return n;
}

std::string TraceLog::render_tail(std::size_t max_lines) const {
  std::ostringstream out;
  const std::size_t start =
      events_.size() > max_lines ? events_.size() - max_lines : 0;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const auto& e = events_[i];
    out << format_time(e.time) << " [" << to_string(e.category) << "] "
        << e.actor << " " << e.action;
    if (!e.detail.empty()) out << " " << e.detail;
    out << "\n";
  }
  return out.str();
}

}  // namespace cyd::sim
