#pragma once
// The discrete-event scheduler at the heart of every scenario.
//
// Events are (time, sequence, closure) triples; ties on time break by
// insertion order so simulations stay deterministic. Recurring events are
// expressed by re-scheduling from inside the closure or via
// schedule_periodic(), which returns a handle that can cancel the series
// (e.g. Flame's C&C purge task stops when the server is seized).

#include <cstdint>
#include <functional>
#include <queue>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace cyd::sim {

using EventFn = std::function<void()>;

/// Cancellation handle for scheduled events. Copyable; cancelling any copy
/// cancels the event (or the whole periodic series).
class EventHandle {
 public:
  EventHandle() : cancelled_(std::make_shared<bool>(false)) {}
  void cancel() { *cancelled_ = true; }
  bool cancelled() const { return *cancelled_; }

 private:
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  /// Absolute-time scheduling. Events scheduled in the past run at the
  /// current front of the queue (time does not go backwards).
  EventHandle schedule_at(TimePoint t, EventFn fn);

  TimePoint now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `deadline` passes; the clock is left at
  /// min(deadline, time of last event). Returns number of events executed.
  std::size_t run_until(TimePoint deadline);

  /// Outcome of run_all(): how many events ran, and whether the drain was
  /// cut off by `max_events` with runnable work still pending. Converts to
  /// the executed count so arithmetic callers keep working.
  struct DrainResult {
    std::size_t executed = 0;
    bool truncated = false;
    operator std::size_t() const { return executed; }
  };

  /// Drains the queue completely (use with care: periodic events never end).
  /// When `max_events` is hit mid-scenario the result reports truncated —
  /// callers must not mistake a cut-off run for a drained queue.
  DrainResult run_all(std::size_t max_events = 50'000'000);

 private:
  /// Pops cancelled entries off the front; true when a runnable event
  /// remains. Used to avoid reporting truncation over dead entries.
  bool prune_cancelled();

  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    EventFn fn;
    EventHandle handle;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace cyd::sim
