#pragma once
// The discrete-event scheduler at the heart of every scenario.
//
// Events are (time, sequence, closure) triples; ties on time break by
// insertion order so simulations stay deterministic. Recurring events go
// through schedule_every(), which keeps the whole series in one slot — one
// closure, re-armed in place each firing — and returns a handle that cancels
// the series (e.g. Flame's C&C purge task stops when the server is seized).
//
// The implementation is built for allocation-free steady state, because the
// Monte-Carlo sweeps push millions of events per run through this queue:
//
//  - closures are sim::EventFn (event_fn.hpp): small capture lists live in
//    48 bytes of in-object storage, no heap closure per event;
//  - event payloads live in a chunked slab of generation-counted slots
//    recycled through a free list; chunks never move, so closures fire in
//    place — no per-event relocation — and EventHandle is a
//    trivially-copyable {queue, slot, generation} triple, not a
//    shared_ptr<bool> control block;
//  - the pending set is a 4-ary min-heap over compact 16-byte
//    {time, seq|slot} keys — sift operations move 16 bytes, payloads never
//    move — with the slot's heap index maintained so cancel_now() can do an
//    eager O(log n) removal next to the default lazy cancellation;
//  - for the dense periodic regime (C&C check-in cadences, rotor-physics
//    ticks) a calendar-queue backend replaces the heap's O(log n) sifts with
//    O(1) bucket inserts on a time wheel, falling back to the same 4-ary
//    heap only for events parked beyond the wheel's window. Pop order is
//    bit-identical to the heap backend (see DESIGN §11).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace cyd::sim {

class EventQueue;

/// Shape of the calendar wheel: 2^bucket_bits buckets, each spanning
/// 2^width_shift milliseconds, for a total window of
/// 2^(bucket_bits + width_shift) ms ahead of the cursor. Defaults give
/// 4096 buckets x ~8.2s ≈ 9.3h — wide enough that hour-scale WAN hops
/// stay on the wheel while minute-scale beacon cadences spread across
/// many buckets. Choose width_shift so the typical inter-event gap spans
/// a few buckets (bucket occupancy stays O(1)); see DESIGN §11.
/// (Namespace-scope rather than nested so `= {}` default arguments can use
/// the member initializers before EventQueue is complete.)
struct CalendarConfig {
  std::uint32_t bucket_bits = 12;  // 4096 buckets (6..22 accepted)
  std::uint32_t width_shift = 13;  // 8192 ms per bucket (0..40 accepted)
};

/// Cancellation handle for scheduled events. Trivially copyable; cancelling
/// any copy cancels the event (or the whole periodic series). A handle is
/// pinned to one (slot, generation) pair, so a handle whose event already
/// fired is inert — cancel() is a no-op and cancelled() reports false —
/// even after the slot is recycled for a new event. Handles must not outlive
/// their EventQueue.
class EventHandle {
 public:
  EventHandle() noexcept = default;

  void cancel();
  bool cancelled() const;
  /// True while the event (or the next firing of the series) is still
  /// scheduled; false once it ran, was cancelled, or for a default handle.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot,
              std::uint32_t generation) noexcept
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};
static_assert(std::is_trivially_copyable_v<EventHandle>);

class EventQueue {
 public:
  /// Pending-set backend. Both produce the exact same pop order — the
  /// (time, seq|key) contract is backend-independent — so the choice is
  /// purely a performance knob:
  ///  - kHeap: 4-ary min-heap, O(log n) insert/pop, best for sparse or
  ///    irregular schedules;
  ///  - kCalendar: bucket wheel over time, O(1) insert and amortised O(1)
  ///    pop while events land inside the wheel's window, best for the dense
  ///    periodic regime where most events recur on short cadences. Events
  ///    beyond the window park in the heap and pop from there directly —
  ///    no migration pass ever runs.
  enum class Backend : std::uint8_t { kHeap, kCalendar };
  using CalendarConfig = cyd::sim::CalendarConfig;

  EventQueue() = default;
  explicit EventQueue(Backend backend, CalendarConfig config = {}) {
    set_backend(backend, config);
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Switches the pending-set backend. Only legal while no key is stored
  /// (empty queue, or everything cancelled *and* pruned); throws
  /// std::logic_error otherwise. Typically called once, right after
  /// construction, before any scheduling.
  void set_backend(Backend backend, CalendarConfig config = {});
  Backend backend() const { return backend_; }

  /// Pre-sizes internal storage for `events` concurrently pending events:
  /// slab chunks are allocated up front and the heap / wheel buckets
  /// reserve capacity, so a storm of schedule calls performs zero heap
  /// allocations. Counts above the 2^24 concurrent-slot ceiling clamp.
  /// Wheel-bucket pre-sizing assumes the storm spreads roughly uniformly
  /// across buckets (each gets its events/buckets share); a storm skewed
  /// into few buckets can still grow those vectors. When events < bucket
  /// count the per-bucket pass is skipped entirely — reserving one element
  /// in millions of buckets costs far more than the handful of lazy
  /// push_back growths it would avoid.
  void reserve(std::size_t events);

  /// Absolute-time scheduling. Events scheduled in the past run at the
  /// current front of the queue (time does not go backwards).
  EventHandle schedule_at(TimePoint t, EventFn fn);

  /// Externally-keyed scheduling, for callers that own the tie-breaking rule
  /// instead of delegating it to insertion order. Same-time events fire in
  /// ascending `key` order regardless of the order they were inserted, which
  /// is what lets sim::ShardedScheduler prove that a sharded run executes
  /// each shard's events in exactly the single-queue merge order: the key —
  /// (origin shard, origin sequence) packed into 40 bits — is a property of
  /// the event, not of the queue it happens to sit in. `tag` is an opaque
  /// word stored with the event and handed back to the execute observer
  /// (the sharded scheduler stores the executing shard there). Keys must be
  /// unique among pending same-time events; a duplicate falls back to slot
  /// order, which tracks allocation history rather than the caller's merge
  /// rule. Keys are capped at 2^40 like the internal sequence space.
  EventHandle schedule_keyed(TimePoint t, std::uint64_t key, std::uint32_t tag,
                             EventFn fn);

  /// Periodic scheduling: `fn` first runs at `first` (clamped to now), then
  /// every `period` (clamped to 1ms) until the handle is cancelled. The
  /// whole series reuses one slot and one closure — a steady-state firing of
  /// an inline-sized closure performs zero heap allocations.
  EventHandle schedule_every(Duration period, EventFn fn, TimePoint first);

  /// Eagerly removes a pending event from the heap, O(log n), freeing its
  /// slot immediately. Equivalent to handle.cancel() (which marks the entry
  /// and lets the pop path discard it) but reclaims slab+heap space now —
  /// use it when cancelling large batches long before their due time.
  void cancel_now(EventHandle handle);

  TimePoint now() const { return now_; }
  bool empty() const { return live_ == 0; }
  /// Number of live (non-cancelled) scheduled events.
  std::size_t pending() const { return live_; }

  /// Sentinel returned by next_time() when no runnable event remains.
  static constexpr TimePoint kNoEventTime = std::numeric_limits<TimePoint>::max();

  /// Due time of the next runnable event, or kNoEventTime for an empty (or
  /// all-cancelled) queue. Non-const because it prunes cancelled tombstones
  /// off the front — the conservative shard synchronizer calls this once per
  /// round per shard to compute the global horizon, and a dead front entry
  /// must not drag the horizon backwards.
  TimePoint next_time();

  /// Per-executed-event hook, called immediately *before* each closure runs
  /// with (ctx, event time, order key, tag). For keyed events the key is the
  /// caller's 40-bit key; for internally-sequenced events it is the internal
  /// sequence number. A raw function pointer, not std::function: this sits
  /// on the hot path and only the sharded scheduler's trace-checksum
  /// accumulators use it. Pass nullptr to detach.
  using ExecuteObserver = void (*)(void* ctx, TimePoint t, std::uint64_t key,
                                   std::uint32_t tag);
  void set_execute_observer(ExecuteObserver observer, void* ctx) {
    observer_ = observer;
    observer_ctx_ = ctx;
  }

  /// Runs the next event; returns false when no runnable event remains.
  bool step();

  /// Runs events with time <= `deadline` until none remain, then advances
  /// the clock to `deadline` — even when the queue drained early or was
  /// empty to begin with, so back-to-back run_until calls tile a timeline.
  /// Returns number of events executed.
  std::size_t run_until(TimePoint deadline);

  /// Outcome of run_all(): how many events ran, and whether the drain was
  /// cut off by `max_events` with runnable work still pending. Converts to
  /// the executed count so arithmetic callers keep working.
  struct DrainResult {
    std::size_t executed = 0;
    bool truncated = false;
    operator std::size_t() const { return executed; }
  };

  /// Drains the queue completely (use with care: periodic events never end).
  /// When `max_events` is hit mid-scenario the result reports truncated —
  /// callers must not mistake a cut-off run for a drained queue.
  DrainResult run_all(std::size_t max_events = 50'000'000);

  /// Lifetime scheduler counters, for observability and the scaling bench.
  /// `scheduled` counts schedule_at/schedule_every calls plus periodic
  /// re-arms; `executed` counts closures actually run; `cancelled` counts
  /// effective cancellations (one per event or series, not per cancel()
  /// call); `peak_pending` is the high-water mark of live events;
  /// `pruned` counts lazy-cancel tombstones discarded off the front (each
  /// one is front-scan work that cancel_now would have avoided);
  /// `front_scan_keys` counts keys examined by calendar front scans — the
  /// wheel's analogue of sift work, pinned by tests so a workload that
  /// degrades bucket occupancy regresses loudly. Zero under kHeap.
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t pruned = 0;
    std::uint64_t front_scan_keys = 0;
    std::size_t peak_pending = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class EventHandle;

  // Heap keys pack the tie-breaking sequence number (high 40 bits) with the
  // slab slot (low 24 bits) into one word: comparing `order` compares seq,
  // since sequence numbers are unique. 2^40 events and 2^24 concurrently
  // pending slots are enforced ceilings, not silent wraparounds.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kNullIndex = 0xffffffffu;

  // Slot::heap_index encodes where the slot's key lives: plain values are
  // 4-ary heap positions (the heap can hold at most 2^24 keys, far below the
  // tag bit), kWheelTag | bucket marks a calendar bucket, and kNullIndex
  // marks a slot that is free or mid-firing. cancel_now() dispatches on the
  // tag to find the key without a search.
  static constexpr std::uint32_t kWheelTag = 0x80000000u;

  struct HeapKey {
    TimePoint time;
    std::uint64_t order;
  };
  // Bitwise, not short-circuit: event times are data-dependent, so feeding
  // the sift loops an unpredictable extra branch costs more than the flat
  // comparison (order fields are unique, making the result total).
  static bool earlier(const HeapKey& a, const HeapKey& b) {
    return (a.time < b.time) | ((a.time == b.time) & (a.order < b.order));
  }

  // Hot metadata first so the pop/cancel path reads one cache line; the
  // 48-byte closure buffer sits behind it and is only touched when firing.
  struct Slot {
    Duration period = 0;  // >0 marks a periodic series
    std::uint32_t generation = 0;
    std::uint32_t heap_index = kNullIndex;  // kNullIndex while firing / free
    std::uint32_t next_free = kNullIndex;
    std::uint32_t tag = 0;  // opaque caller word, echoed to the observer
    bool cancelled = false;
    EventFn fn;
  };

  // Slots live in fixed-size chunks that never move, so a closure can fire
  // in place even when its callback grows the slab, and no EventFn is ever
  // relocated after scheduling. Chunk allocations amortise to zero in
  // steady state (the free list recycles slots).
  static constexpr std::uint32_t kChunkShift = 8;  // 256 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Slot& slot(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& slot(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t allocate_slot();
  void release_slot(Slot& s, std::uint32_t index);  // no generation bump
  void free_slot(std::uint32_t index);
  void push_key(TimePoint time, std::uint32_t slot);
  void push_order(TimePoint time, std::uint64_t order);

  void sift_up(std::size_t index, HeapKey key);
  void sift_down(std::size_t index, HeapKey key);
  void remove_heap_index(std::size_t index);
  std::uint32_t pop_front();

  /// Backend dispatch: the minimum pending key (false when none is stored),
  /// and removal of exactly that key. Calendar scans are cached, so the
  /// front_key → step_front → remove_front sequence costs one scan.
  bool front_key(HeapKey& out);
  void remove_front();

  // Calendar backend internals. The wheel is a ring of 2^bucket_bits
  // unsorted buckets, each spanning 2^width_shift ms; the cursor `cal_day_`
  // (a bucket-width-granular timestamp) only advances, and every stored
  // wheel key falls in [cal_day_, cal_day_ + buckets), which makes
  // bucket index <-> due "day" bijective — a circular scan from the cursor
  // visits buckets in nondecreasing time order. Keys due beyond the window
  // go to heap_ (the overflow) and pop from there when they win the min
  // comparison; the cursor's advance past their park time is what makes
  // that comparison correct, so no migration pass is ever needed.
  void cal_insert(TimePoint time, std::uint64_t order);
  bool cal_scan_front(HeapKey& out);
  void cal_remove_front();
  void cal_remove_slot(std::uint32_t index, std::uint32_t bucket_index);

  /// Pops the front key and runs or discards it: returns 1 when the event
  /// executed, 0 when the front was a cancelled tombstone (slot recycled,
  /// nothing run). The single per-event hot path.
  std::size_t step_front();

  /// Pops cancelled entries off the front (recycling their slots); true when
  /// a runnable event remains. Used to avoid reporting truncation over dead
  /// entries.
  bool prune_cancelled();

  bool handle_live(const EventHandle& h) const {
    return h.queue_ != nullptr && h.slot_ < slot_count_ &&
           slot(h.slot_).generation == h.generation_;
  }
  void handle_cancel(const EventHandle& h);
  bool handle_cancelled(const EventHandle& h) const {
    return handle_live(h) && slot(h.slot_).cancelled;
  }
  bool handle_pending(const EventHandle& h) const {
    return handle_live(h) && !slot(h.slot_).cancelled;
  }

  ExecuteObserver observer_ = nullptr;
  void* observer_ctx_ = nullptr;

  // Under kHeap this is the whole pending set; under kCalendar it holds only
  // the overflow keys parked beyond the wheel window.
  std::vector<HeapKey> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNullIndex;
  std::size_t live_ = 0;
  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;

  Backend backend_ = Backend::kHeap;
  std::vector<std::vector<HeapKey>> cal_buckets_;
  std::vector<std::uint64_t> cal_occupancy_;  // one bit per bucket
  std::uint64_t cal_bucket_mask_ = 0;
  std::uint32_t cal_width_shift_ = 0;
  std::uint64_t cal_day_ = 0;      // wheel cursor, in bucket-width units
  std::size_t cal_count_ = 0;      // keys on the wheel (excludes overflow)
  // Cached result of the last cal_scan_front, so the per-round
  // next_time() + run_until() + step_front() sequence in the sharded
  // scheduler pays for one scan. bucket == kNullIndex means the cached
  // front is the overflow heap root.
  bool cal_front_valid_ = false;
  HeapKey cal_front_key_{};
  std::uint32_t cal_front_bucket_ = kNullIndex;
  std::uint32_t cal_front_pos_ = 0;
  // The bucket the cursor is draining, lazily sorted latest-first by the
  // front scan so successive pops are pop_back() instead of O(occupancy)
  // rescans. Inserts into or eager cancels from this bucket reset it to
  // kNullIndex (the next scan re-sorts). Buckets at or below kSortCutoff
  // keys stay unsorted — a linear min-scan beats sorting there.
  static constexpr std::size_t kSortCutoff = 8;
  std::uint32_t cal_sorted_bucket_ = kNullIndex;
};

inline void EventHandle::cancel() {
  if (queue_) queue_->handle_cancel(*this);
}
inline bool EventHandle::cancelled() const {
  return queue_ != nullptr && queue_->handle_cancelled(*this);
}
inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->handle_pending(*this);
}

}  // namespace cyd::sim
