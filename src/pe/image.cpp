#include "pe/image.hpp"

#include <utility>

namespace cyd::pe {
namespace {

using common::Bytes;
using common::get_u32;
using common::get_u64;
using common::put_u32;
using common::put_u64;

constexpr std::string_view kMagic = "SPE1";

void put_string(Bytes& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::string get_string(std::string_view data, std::size_t& offset) {
  const std::uint32_t len = get_u32(data, offset);
  offset += 4;
  if (offset + len > data.size()) {
    throw ParseError("SPE: truncated string field");
  }
  std::string s(data.substr(offset, len));
  offset += len;
  return s;
}

}  // namespace

const char* to_string(Machine m) {
  return m == Machine::kX64 ? "x64" : "x86";
}

common::Bytes Resource::plaintext() const {
  return xor_encrypted ? common::xor_cipher(data, xor_key) : data;
}

common::Bytes Image::signed_region() const {
  Bytes out;
  out.append(kMagic);
  out.push_back(static_cast<char>(machine));
  put_u64(out, static_cast<std::uint64_t>(build_timestamp));
  put_string(out, program_id);
  put_string(out, original_filename);
  put_string(out, version_info);

  put_u32(out, static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    put_string(out, s.name);
    put_string(out, s.data);
    out.push_back(static_cast<char>((s.executable ? 1 : 0) |
                                    (s.writable ? 2 : 0)));
  }

  put_u32(out, static_cast<std::uint32_t>(resources.size()));
  for (const auto& r : resources) {
    put_u32(out, r.id);
    put_string(out, r.name);
    put_string(out, r.data);
    out.push_back(static_cast<char>(r.xor_encrypted ? 1 : 0));
    out.push_back(static_cast<char>(r.xor_key));
  }

  put_u32(out, static_cast<std::uint32_t>(imports.size()));
  for (const auto& imp : imports) {
    put_string(out, imp.dll);
    put_u32(out, static_cast<std::uint32_t>(imp.functions.size()));
    for (const auto& f : imp.functions) put_string(out, f);
  }
  return out;
}

common::Bytes Image::serialize() const {
  Bytes out = signed_region();
  put_string(out, signature);
  return out;
}

bool Image::looks_like_pe(std::string_view bytes) {
  return bytes.size() >= kMagic.size() &&
         bytes.substr(0, kMagic.size()) == kMagic;
}

Image Image::parse(std::string_view data) {
  try {
    return parse_impl(data);
  } catch (const std::out_of_range&) {
    // get_u32/get_u64 signal truncation with out_of_range; normalize.
    throw ParseError("SPE: truncated image");
  }
}

Image Image::parse_impl(std::string_view data) {
  if (!looks_like_pe(data)) throw ParseError("SPE: bad magic");
  std::size_t off = kMagic.size();

  auto need = [&](std::size_t n) {
    if (off + n > data.size()) throw ParseError("SPE: truncated image");
  };

  Image img;
  need(1);
  const auto machine_byte = static_cast<unsigned char>(data[off++]);
  if (machine_byte > 1) throw ParseError("SPE: unknown machine type");
  img.machine = static_cast<Machine>(machine_byte);
  need(8);
  img.build_timestamp = static_cast<std::int64_t>(get_u64(data, off));
  off += 8;
  img.program_id = get_string(data, off);
  img.original_filename = get_string(data, off);
  img.version_info = get_string(data, off);

  need(4);
  const std::uint32_t n_sections = get_u32(data, off);
  off += 4;
  if (n_sections > 10'000) throw ParseError("SPE: implausible section count");
  img.sections.reserve(n_sections);
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    Section s;
    s.name = get_string(data, off);
    s.data = get_string(data, off);
    need(1);
    const auto flags = static_cast<unsigned char>(data[off++]);
    s.executable = (flags & 1) != 0;
    s.writable = (flags & 2) != 0;
    img.sections.push_back(std::move(s));
  }

  need(4);
  const std::uint32_t n_resources = get_u32(data, off);
  off += 4;
  if (n_resources > 10'000) throw ParseError("SPE: implausible resource count");
  img.resources.reserve(n_resources);
  for (std::uint32_t i = 0; i < n_resources; ++i) {
    Resource r;
    need(4);
    r.id = get_u32(data, off);
    off += 4;
    r.name = get_string(data, off);
    r.data = get_string(data, off);
    need(2);
    r.xor_encrypted = data[off++] != 0;
    r.xor_key = static_cast<std::uint8_t>(data[off++]);
    img.resources.push_back(std::move(r));
  }

  need(4);
  const std::uint32_t n_imports = get_u32(data, off);
  off += 4;
  if (n_imports > 10'000) throw ParseError("SPE: implausible import count");
  img.imports.reserve(n_imports);
  for (std::uint32_t i = 0; i < n_imports; ++i) {
    Import imp;
    imp.dll = get_string(data, off);
    need(4);
    const std::uint32_t n_funcs = get_u32(data, off);
    off += 4;
    if (n_funcs > 100'000) throw ParseError("SPE: implausible import count");
    imp.functions.reserve(n_funcs);
    for (std::uint32_t j = 0; j < n_funcs; ++j) {
      imp.functions.push_back(get_string(data, off));
    }
    img.imports.push_back(std::move(imp));
  }

  img.signature = get_string(data, off);
  if (off != data.size()) throw ParseError("SPE: trailing bytes");
  return img;
}

const Section* Image::find_section(std::string_view name) const {
  for (const auto& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Resource* Image::find_resource(std::uint32_t id) const {
  for (const auto& r : resources) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const Resource* Image::find_resource(std::string_view name) const {
  for (const auto& r : resources) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

bool Image::imports_function(std::string_view dll,
                             std::string_view function) const {
  for (const auto& imp : imports) {
    if (!common::iequals(imp.dll, dll)) continue;
    for (const auto& f : imp.functions) {
      if (f == function) return true;
    }
  }
  return false;
}

std::size_t Image::payload_size() const {
  std::size_t total = 0;
  for (const auto& s : sections) total += s.data.size();
  for (const auto& r : resources) total += r.data.size();
  return total;
}

Builder& Builder::machine(Machine m) {
  image_.machine = m;
  return *this;
}
Builder& Builder::timestamp(std::int64_t t) {
  image_.build_timestamp = t;
  return *this;
}
Builder& Builder::program(std::string id) {
  image_.program_id = std::move(id);
  return *this;
}
Builder& Builder::filename(std::string name) {
  image_.original_filename = std::move(name);
  return *this;
}
Builder& Builder::version(std::string info) {
  image_.version_info = std::move(info);
  return *this;
}
Builder& Builder::section(std::string name, common::Bytes data,
                          bool executable, bool writable) {
  image_.sections.push_back(
      Section{std::move(name), std::move(data), executable, writable});
  return *this;
}
Builder& Builder::resource(std::uint32_t id, std::string name,
                           common::Bytes data) {
  image_.resources.push_back(
      Resource{id, std::move(name), std::move(data), false, 0});
  return *this;
}
Builder& Builder::encrypted_resource(std::uint32_t id, std::string name,
                                     common::Bytes plaintext,
                                     std::uint8_t key) {
  image_.resources.push_back(Resource{
      id, std::move(name), common::xor_cipher(plaintext, key), true, key});
  return *this;
}
Builder& Builder::import(std::string dll, std::vector<std::string> functions) {
  image_.imports.push_back(Import{std::move(dll), std::move(functions)});
  return *this;
}
Image Builder::build() const { return image_; }

}  // namespace cyd::pe
