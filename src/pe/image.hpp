#pragma once
// Simulated Portable Executable ("SPE") container.
//
// Shamoon's main file (TrkSvr.exe) is a 900KB PE carrying its dropper, wiper,
// reporter and a 64-bit variant as XOR-encrypted resources; Stuxnet drops
// signed kernel drivers; Flame ships ~20MB of modules. To dissect specimens
// the way the paper's sources did, the framework defines its own on-disk
// executable format with sections, an import table, a resource directory
// (with optional single-byte XOR encryption, as in Shamoon), an embedded
// program id (the behaviour hook used when a simulated host "executes" the
// file), and an opaque Authenticode-style signature blob filled in by the
// pki module.
//
// Images serialize to deterministic byte strings, so copying a file across
// hosts, hashing it for AV signatures, or carving it out of a disk image all
// behave like they do for real binaries.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace cyd::pe {

enum class Machine : std::uint8_t { kX86 = 0, kX64 = 1 };

const char* to_string(Machine m);

/// A loadable section (.text, .data, .rsrc ...).
struct Section {
  std::string name;
  common::Bytes data;
  bool executable = false;
  bool writable = false;
};

/// A resource directory entry. When `xor_encrypted` is set the stored bytes
/// are ciphertext under the single-byte `xor_key` (Shamoon-style).
struct Resource {
  std::uint32_t id = 0;
  std::string name;
  common::Bytes data;
  bool xor_encrypted = false;
  std::uint8_t xor_key = 0;

  /// Decrypted payload (identity when not encrypted).
  common::Bytes plaintext() const;
};

/// An import-table entry: one DLL and the functions referenced from it.
struct Import {
  std::string dll;
  std::vector<std::string> functions;
};

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Image {
 public:
  Machine machine = Machine::kX86;
  std::int64_t build_timestamp = 0;
  /// Behaviour hook: when a simulated host executes this file, the program
  /// registry maps this id to a factory for the in-sim program object.
  std::string program_id;
  std::string original_filename;
  std::string version_info;  // free-form "CompanyName/ProductName" style blob
  std::vector<Section> sections;
  std::vector<Resource> resources;
  std::vector<Import> imports;
  /// Opaque signature produced by pki::sign_image (empty when unsigned).
  common::Bytes signature;

  /// Deterministic byte encoding of the whole image (including signature).
  common::Bytes serialize() const;

  /// Byte encoding of everything *except* the signature blob — the region a
  /// code-signing digest covers.
  common::Bytes signed_region() const;

  /// Parses bytes produced by serialize(). Throws ParseError on malformed or
  /// truncated input (the dissection tools rely on this to reject carved
  /// garbage).
  static Image parse(std::string_view bytes);

  /// True if `bytes` starts with the SPE magic.
  static bool looks_like_pe(std::string_view bytes);

  const Section* find_section(std::string_view name) const;
  const Resource* find_resource(std::uint32_t id) const;
  const Resource* find_resource(std::string_view name) const;
  bool imports_function(std::string_view dll, std::string_view function) const;

  /// Total payload size across sections and (stored) resources.
  std::size_t payload_size() const;

 private:
  static Image parse_impl(std::string_view bytes);
};

/// Fluent builder so specimen factories read like a linker script.
class Builder {
 public:
  Builder& machine(Machine m);
  Builder& timestamp(std::int64_t t);
  Builder& program(std::string id);
  Builder& filename(std::string name);
  Builder& version(std::string info);
  Builder& section(std::string name, common::Bytes data, bool executable,
                   bool writable = false);
  Builder& resource(std::uint32_t id, std::string name, common::Bytes data);
  /// Stores the resource XOR-encrypted under `key`.
  Builder& encrypted_resource(std::uint32_t id, std::string name,
                              common::Bytes plaintext, std::uint8_t key);
  Builder& import(std::string dll, std::vector<std::string> functions);
  Image build() const;

 private:
  Image image_;
};

}  // namespace cyd::pe
