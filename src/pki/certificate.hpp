#pragma once
// Certificates, keys and certificate authorities.
//
// The campaign the paper dissects abused the PKI three different ways
// (Section V-C): Stuxnet signed rootkit drivers with keys *stolen* from
// JMicron and Realtek; Flame *forged* a code-signing certificate off a
// Terminal Services licensing cert whose chain still used a weak hash; and
// Shamoon reused a *legitimately signed* raw-disk driver (Eldos). This module
// models exactly the trust decisions those abuses exploit.
//
// Crypto is structural, not numeric: a signature is valid iff the recorded
// digest of the to-be-signed bytes matches under the declared hash algorithm
// and the signing key id equals the issuer's key id. Private-key possession
// is modelled by holding the KeyPair value; "stealing a certificate" means
// exfiltrating that value. The *weak* hash algorithm is a genuine (simulated)
// weakness: it is an additive checksum, so collisions are computable — see
// pki/forgery.hpp.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "sim/time.hpp"

namespace cyd::pki {

/// Digest algorithms available to issuers. kWeakSum is the MD5 analogue:
/// still accepted by legacy verification paths, collidable by a resourced
/// attacker.
enum class HashAlgorithm : std::uint8_t { kWeakSum = 0, kStrong64 = 1 };

const char* to_string(HashAlgorithm a);

/// Computes a digest of `data` under `alg` (widened to 64 bits).
std::uint64_t digest(HashAlgorithm alg, std::string_view data);

/// Certificate key-usage bits.
enum KeyUsage : std::uint32_t {
  kUsageNone = 0,
  kUsageCodeSigning = 1u << 0,
  kUsageLicenseVerification = 1u << 1,
  kUsageCertSign = 1u << 2,   // may act as an issuing CA
  kUsageServerAuth = 1u << 3,
};

std::string usage_to_string(std::uint32_t usage);

/// An asymmetric key pair. Possession of the struct = possession of the
/// private key; public identity is `key_id`.
struct KeyPair {
  std::uint64_t key_id = 0;

  static KeyPair generate(std::uint64_t seed_material);
};

/// Issuer signature over a certificate's to-be-signed (TBS) bytes.
struct IssuerSignature {
  std::uint64_t tbs_digest = 0;     // digest of the subject cert's TBS bytes
  HashAlgorithm alg = HashAlgorithm::kStrong64;
  std::uint64_t issuer_key_id = 0;  // key that produced the signature
};

struct Certificate {
  std::uint64_t serial = 0;
  std::string subject;
  std::string issuer_subject;
  std::uint64_t issuer_serial = 0;   // 0 for self-signed roots
  std::uint64_t public_key_id = 0;
  std::uint32_t usage = kUsageNone;
  HashAlgorithm hash_alg = HashAlgorithm::kStrong64;
  sim::TimePoint not_before = 0;
  sim::TimePoint not_after = 0;
  /// Opaque padding an attacker may add to steer the weak TBS digest; honest
  /// issuers leave it empty. Included in tbs_bytes().
  common::Bytes collision_padding;
  IssuerSignature issuer_sig;

  /// Deterministic serialization of all fields the issuer signs.
  common::Bytes tbs_bytes() const;

  /// Full wire encoding (TBS fields + issuer signature); used to embed
  /// certificate chains inside code signatures, Authenticode-style.
  common::Bytes serialize() const;
  static std::optional<Certificate> parse(std::string_view bytes);

  bool self_signed() const { return issuer_serial == 0; }
  bool valid_at(sim::TimePoint t) const {
    return t >= not_before && t <= not_after;
  }
  bool has_usage(std::uint32_t bit) const { return (usage & bit) != 0; }
};

/// A bundle of certificates indexed by serial; chain validation resolves
/// issuers against one of these (hosts carry their own store).
///
/// Optionally layered over an immutable shared base (the template image's
/// certificate landscape): find() consults delta -> base, add() writes the
/// delta only, and a serial present in both resolves to the delta copy —
/// the same last-wins rule a materialized store's add() applies.
class CertStore {
 public:
  /// Single-level copy-on-write layering; nullptr detaches.
  void set_base(std::shared_ptr<const CertStore> base);
  const CertStore* base() const { return base_.get(); }

  void add(const Certificate& cert);
  const Certificate* find(std::uint64_t serial) const;
  /// Distinct visible serials across delta and base.
  std::size_t size() const;
  /// Visible certificates in serial order (delta shadows base).
  std::vector<const Certificate*> all() const;

 private:
  std::map<std::uint64_t, Certificate> certs_;
  std::shared_ptr<const CertStore> base_;
};

/// An issuing authority: owns a certificate and the matching private key.
class CertificateAuthority {
 public:
  /// Creates a self-signed root CA.
  static CertificateAuthority create_root(std::string subject,
                                          HashAlgorithm alg,
                                          sim::TimePoint not_before,
                                          sim::TimePoint not_after,
                                          std::uint64_t seed);

  /// Issues a subject certificate signed by this CA.
  Certificate issue(std::string subject, std::uint32_t usage,
                    HashAlgorithm alg, sim::TimePoint not_before,
                    sim::TimePoint not_after, const KeyPair& subject_key);

  /// Issues a subordinate CA (usage includes kUsageCertSign).
  CertificateAuthority issue_sub_ca(std::string subject, HashAlgorithm alg,
                                    sim::TimePoint not_before,
                                    sim::TimePoint not_after,
                                    std::uint64_t seed);

  const Certificate& certificate() const { return cert_; }
  const KeyPair& key() const { return key_; }

 private:
  CertificateAuthority() = default;

  Certificate cert_;
  KeyPair key_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace cyd::pki
