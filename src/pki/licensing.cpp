#include "pki/licensing.hpp"

namespace cyd::pki {

namespace {
constexpr sim::Duration kTenYears = 10 * 365 * sim::kDay;
}

MicrosoftPki::MicrosoftPki(sim::TimePoint now, std::uint64_t seed)
    : seed_(seed) {
  root_ = std::make_unique<CertificateAuthority>(
      CertificateAuthority::create_root("Microsoft Root Authority",
                                        HashAlgorithm::kStrong64,
                                        now - 365 * sim::kDay, now + kTenYears,
                                        seed ^ 0x0001));
  // The flawed link: the licensing intermediate still signs with the weak
  // hash algorithm, years after it was deprecated elsewhere.
  licensing_ = std::make_unique<CertificateAuthority>(root_->issue_sub_ca(
      "Microsoft Enforced Licensing Intermediate PCA",
      HashAlgorithm::kWeakSum, now - 365 * sim::kDay, now + kTenYears,
      seed ^ 0x0002));

  update_key_ = KeyPair::generate(seed ^ 0x0003);
  update_cert_ = root_->issue("Microsoft Windows Update Publisher",
                              kUsageCodeSigning, HashAlgorithm::kStrong64,
                              now - 365 * sim::kDay, now + kTenYears,
                              update_key_);
}

MicrosoftPki::TslsActivation MicrosoftPki::activate_license_server(
    const std::string& organization) {
  TslsActivation activation;
  activation.license_key =
      KeyPair::generate(seed_ ^ 0x1000 ^ ++activation_counter_);
  activation.license_cert = licensing_->issue(
      organization + " Terminal Services LS", kUsageLicenseVerification,
      HashAlgorithm::kWeakSum, licensing_->certificate().not_before,
      licensing_->certificate().not_after, activation.license_key);
  issued_license_serials_.push_back(activation.license_cert.serial);
  return activation;
}

void MicrosoftPki::install_into(CertStore& store) const {
  store.add(root_->certificate());
  store.add(licensing_->certificate());
  store.add(update_cert_);
}

void MicrosoftPki::anchor_root(TrustStore& trust) const {
  trust.trust_root(root_->certificate().serial);
}

void MicrosoftPki::apply_advisory_2718704(TrustStore& trust) const {
  trust.mark_untrusted(licensing_->certificate().serial);
  for (auto serial : issued_license_serials_) trust.mark_untrusted(serial);
}

}  // namespace cyd::pki
