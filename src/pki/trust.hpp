#pragma once
// Trust stores and certificate-chain validation.
//
// Each simulated Windows host carries a TrustStore; Microsoft's advisory
// 2718704 response ("move the three licensing certificates to the Untrusted
// Certificate Store") is modelled by mark_untrusted(), and the post-Flame
// hardening of rejecting weak-hash signatures by `reject_weak_hash`.

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "pki/certificate.hpp"

namespace cyd::pki {

enum class ChainStatus : std::uint8_t {
  kOk,
  kUntrustedRoot,
  kIncompleteChain,
  kExpired,
  kRevoked,          // serial present in the untrusted store
  kBadSignature,     // issuer signature does not verify over TBS bytes
  kInvalidIssuer,    // issuer certificate lacks cert-sign usage
  kWeakHashRejected, // policy rejects weak-digest signatures in the chain
  kChainTooLong,
};

const char* to_string(ChainStatus s);

struct ChainResult {
  ChainStatus status = ChainStatus::kIncompleteChain;
  std::string detail;
  int chain_length = 0;

  bool ok() const { return status == ChainStatus::kOk; }
};

/// Optionally layered over an immutable shared base (the template image's
/// trust policy): queries see delta ∪ base. There is no un-trust /
/// re-trust API, so no whiteouts are needed — per-host changes only ever
/// add serials or override the weak-hash policy.
class TrustStore {
 public:
  /// Single-level copy-on-write layering; nullptr detaches.
  void set_base(std::shared_ptr<const TrustStore> base) {
    assert(base == nullptr || base->base_ == nullptr);
    base_ = std::move(base);
  }
  const TrustStore* base() const { return base_.get(); }

  void trust_root(std::uint64_t serial) { trusted_roots_.insert(serial); }
  /// Moves a certificate into the Untrusted store (revocation analogue).
  void mark_untrusted(std::uint64_t serial) { untrusted_.insert(serial); }

  bool is_trusted_root(std::uint64_t serial) const {
    return trusted_roots_.contains(serial) ||
           (base_ != nullptr && base_->trusted_roots_.contains(serial));
  }
  bool is_untrusted(std::uint64_t serial) const {
    return untrusted_.contains(serial) ||
           (base_ != nullptr && base_->untrusted_.contains(serial));
  }

  /// When set, any weak-hash issuer signature anywhere in a chain fails
  /// validation (modern policy; off by default, matching the 2010-2012 era).
  /// On a layered store the per-host setting overrides the base's.
  void set_reject_weak_hash(bool v) { reject_weak_hash_ = v; }
  bool reject_weak_hash() const {
    if (reject_weak_hash_.has_value()) return *reject_weak_hash_;
    return base_ != nullptr && base_->reject_weak_hash();
  }

  std::size_t untrusted_count() const {
    std::size_t total = untrusted_.size();
    if (base_ != nullptr) {
      for (std::uint64_t serial : base_->untrusted_) {
        if (!untrusted_.contains(serial)) ++total;
      }
    }
    return total;
  }

 private:
  std::shared_ptr<const TrustStore> base_;
  std::set<std::uint64_t> trusted_roots_;
  std::set<std::uint64_t> untrusted_;
  std::optional<bool> reject_weak_hash_;
};

/// Validates `cert` up to a trusted root, resolving issuers in `store`.
ChainResult verify_chain(const Certificate& cert, const CertStore& store,
                         const TrustStore& trust, sim::TimePoint now);

}  // namespace cyd::pki
