#pragma once
// Trust stores and certificate-chain validation.
//
// Each simulated Windows host carries a TrustStore; Microsoft's advisory
// 2718704 response ("move the three licensing certificates to the Untrusted
// Certificate Store") is modelled by mark_untrusted(), and the post-Flame
// hardening of rejecting weak-hash signatures by `reject_weak_hash`.

#include <cstdint>
#include <set>
#include <string>

#include "pki/certificate.hpp"

namespace cyd::pki {

enum class ChainStatus : std::uint8_t {
  kOk,
  kUntrustedRoot,
  kIncompleteChain,
  kExpired,
  kRevoked,          // serial present in the untrusted store
  kBadSignature,     // issuer signature does not verify over TBS bytes
  kInvalidIssuer,    // issuer certificate lacks cert-sign usage
  kWeakHashRejected, // policy rejects weak-digest signatures in the chain
  kChainTooLong,
};

const char* to_string(ChainStatus s);

struct ChainResult {
  ChainStatus status = ChainStatus::kIncompleteChain;
  std::string detail;
  int chain_length = 0;

  bool ok() const { return status == ChainStatus::kOk; }
};

class TrustStore {
 public:
  void trust_root(std::uint64_t serial) { trusted_roots_.insert(serial); }
  /// Moves a certificate into the Untrusted store (revocation analogue).
  void mark_untrusted(std::uint64_t serial) { untrusted_.insert(serial); }

  bool is_trusted_root(std::uint64_t serial) const {
    return trusted_roots_.contains(serial);
  }
  bool is_untrusted(std::uint64_t serial) const {
    return untrusted_.contains(serial);
  }

  /// When set, any weak-hash issuer signature anywhere in a chain fails
  /// validation (modern policy; off by default, matching the 2010-2012 era).
  void set_reject_weak_hash(bool v) { reject_weak_hash_ = v; }
  bool reject_weak_hash() const { return reject_weak_hash_; }

  std::size_t untrusted_count() const { return untrusted_.size(); }

 private:
  std::set<std::uint64_t> trusted_roots_;
  std::set<std::uint64_t> untrusted_;
  bool reject_weak_hash_ = false;
};

/// Validates `cert` up to a trusted root, resolving issuers in `store`.
ChainResult verify_chain(const Certificate& cert, const CertStore& store,
                         const TrustStore& trust, sim::TimePoint now);

}  // namespace cyd::pki
