#include "pki/signing.hpp"

#include <stdexcept>

namespace cyd::pki {

common::Bytes CodeSignature::serialize() const {
  common::Bytes out("SIG1");
  common::put_u64(out, image_digest);
  out.push_back(static_cast<char>(alg));
  common::put_u64(out, signer_serial);
  common::put_u64(out, signer_key_id);
  common::put_u32(out, static_cast<std::uint32_t>(chain.size()));
  for (const auto& cert : chain) {
    const auto encoded = cert.serialize();
    common::put_u32(out, static_cast<std::uint32_t>(encoded.size()));
    out.append(encoded);
  }
  return out;
}

std::optional<CodeSignature> CodeSignature::parse(std::string_view bytes) {
  constexpr std::size_t kFixed = 4 + 8 + 1 + 8 + 8 + 4;
  if (bytes.size() < kFixed || bytes.substr(0, 4) != "SIG1") {
    return std::nullopt;
  }
  try {
    CodeSignature sig;
    std::size_t off = 4;
    sig.image_digest = common::get_u64(bytes, off);
    off += 8;
    const auto alg_byte = static_cast<unsigned char>(bytes[off++]);
    if (alg_byte > 1) return std::nullopt;
    sig.alg = static_cast<HashAlgorithm>(alg_byte);
    sig.signer_serial = common::get_u64(bytes, off);
    off += 8;
    sig.signer_key_id = common::get_u64(bytes, off);
    off += 8;
    const std::uint32_t n_certs = common::get_u32(bytes, off);
    off += 4;
    if (n_certs > 64) return std::nullopt;
    for (std::uint32_t i = 0; i < n_certs; ++i) {
      const std::uint32_t len = common::get_u32(bytes, off);
      off += 4;
      if (off + len > bytes.size()) return std::nullopt;
      auto cert = Certificate::parse(bytes.substr(off, len));
      if (!cert) return std::nullopt;
      sig.chain.push_back(std::move(*cert));
      off += len;
    }
    if (off != bytes.size()) return std::nullopt;
    return sig;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

const char* to_string(SignatureStatus s) {
  switch (s) {
    case SignatureStatus::kUnsigned: return "unsigned";
    case SignatureStatus::kMalformed: return "malformed";
    case SignatureStatus::kDigestMismatch: return "digest-mismatch";
    case SignatureStatus::kSignerUnknown: return "signer-unknown";
    case SignatureStatus::kKeyMismatch: return "key-mismatch";
    case SignatureStatus::kWrongUsage: return "wrong-usage";
    case SignatureStatus::kChainInvalid: return "chain-invalid";
    case SignatureStatus::kValid: return "valid";
  }
  return "?";
}

std::string SignatureVerdict::describe() const {
  std::string out = to_string(status);
  if (!signer_subject.empty()) out += " signer=\"" + signer_subject + "\"";
  if (status == SignatureStatus::kChainInvalid) {
    out += std::string(" chain=") + to_string(chain.status);
  }
  return out;
}

void sign_image(pe::Image& image, const Certificate& signer,
                const KeyPair& key,
                const std::vector<Certificate>& intermediates) {
  if (key.key_id != signer.public_key_id) {
    throw std::invalid_argument(
        "sign_image: private key does not match the signer certificate");
  }
  CodeSignature sig;
  sig.alg = signer.hash_alg;
  sig.image_digest = digest(sig.alg, image.signed_region());
  sig.signer_serial = signer.serial;
  sig.signer_key_id = key.key_id;
  sig.chain.push_back(signer);
  for (const auto& cert : intermediates) sig.chain.push_back(cert);
  image.signature = sig.serialize();
}

SignatureVerdict verify_image(const pe::Image& image, const CertStore& store,
                              const TrustStore& trust, sim::TimePoint now) {
  SignatureVerdict verdict;
  if (image.signature.empty()) {
    verdict.status = SignatureStatus::kUnsigned;
    return verdict;
  }
  const auto sig = CodeSignature::parse(image.signature);
  if (!sig) {
    verdict.status = SignatureStatus::kMalformed;
    return verdict;
  }
  if (digest(sig->alg, image.signed_region()) != sig->image_digest) {
    verdict.status = SignatureStatus::kDigestMismatch;
    return verdict;
  }
  // Resolve against the host store merged with the presented chain. Presented
  // certificates carry no trust by themselves: anchoring still happens only
  // through the TrustStore.
  CertStore merged = store;
  for (const auto& cert : sig->chain) merged.add(cert);

  const Certificate* signer = merged.find(sig->signer_serial);
  if (signer == nullptr) {
    verdict.status = SignatureStatus::kSignerUnknown;
    return verdict;
  }
  verdict.signer_subject = signer->subject;
  if (signer->public_key_id != sig->signer_key_id) {
    verdict.status = SignatureStatus::kKeyMismatch;
    return verdict;
  }
  if (!signer->has_usage(kUsageCodeSigning)) {
    verdict.status = SignatureStatus::kWrongUsage;
    return verdict;
  }
  verdict.chain = verify_chain(*signer, merged, trust, now);
  verdict.status = verdict.chain.ok() ? SignatureStatus::kValid
                                      : SignatureStatus::kChainInvalid;
  return verdict;
}

}  // namespace cyd::pki
