#include "pki/forgery.hpp"

namespace cyd::pki {

std::optional<common::Bytes> collision_suffix(HashAlgorithm alg,
                                              std::string_view prefix,
                                              std::uint64_t target_digest) {
  if (alg != HashAlgorithm::kWeakSum) return std::nullopt;
  const std::uint64_t current = digest(alg, prefix);
  // Additive checksum mod 2^16: append bytes whose values sum to the gap.
  std::uint64_t gap = (target_digest - current) & 0xffffULL;
  common::Bytes suffix;
  while (gap >= 0xff) {
    suffix.push_back(static_cast<char>(0xff));
    gap -= 0xff;
  }
  if (gap > 0) suffix.push_back(static_cast<char>(gap));
  return suffix;
}

std::optional<ForgeryResult> forge_code_signing_cert(
    const Certificate& victim, std::string forged_subject,
    std::uint64_t attacker_key_seed) {
  if (victim.issuer_sig.alg != HashAlgorithm::kWeakSum) {
    // Strong digests offer no computable collision; the attack dies here —
    // which is exactly why the licensing chain's weak hash mattered.
    return std::nullopt;
  }

  ForgeryResult result;
  result.private_key = KeyPair::generate(attacker_key_seed);

  Certificate& forged = result.certificate;
  forged.serial = victim.serial ^ 0xf1a3e0000000000dULL;  // fresh serial
  forged.subject = std::move(forged_subject);
  forged.issuer_subject = victim.issuer_subject;
  forged.issuer_serial = victim.issuer_serial;
  forged.public_key_id = result.private_key.key_id;
  forged.usage = kUsageCodeSigning;  // the escalation: license -> code signing
  forged.hash_alg = HashAlgorithm::kWeakSum;
  forged.not_before = victim.not_before;
  forged.not_after = victim.not_after;
  // Reuse the victim's issuer signature verbatim...
  forged.issuer_sig = victim.issuer_sig;
  // ...and steer the forged TBS digest onto it with a collision trailer.
  auto suffix = collision_suffix(HashAlgorithm::kWeakSum, forged.tbs_bytes(),
                                 victim.issuer_sig.tbs_digest);
  if (!suffix) return std::nullopt;
  forged.collision_padding = std::move(*suffix);
  return result;
}

}  // namespace cyd::pki
