#pragma once
// Weak-hash collision forgery — the Flame certificate attack (paper Fig. 3).
//
// Flame's designers took a Terminal Services licensing certificate (weak-hash
// signature, chaining to a Microsoft root) and, via an MD5 chosen-prefix
// collision, minted a *code-signing* certificate carrying the same issuer
// signature. Our weak digest is an additive checksum, so the collision is a
// small exact computation rather than a cluster-scale search — the trust
// failure it demonstrates is identical: two different TBS encodings, one
// issuer signature, and a verifier that cannot tell them apart.

#include <optional>

#include "pki/certificate.hpp"

namespace cyd::pki {

/// Returns suffix bytes B such that digest(kWeakSum, prefix + B) ==
/// target_digest, or nullopt when alg is not the weak algorithm.
std::optional<common::Bytes> collision_suffix(HashAlgorithm alg,
                                              std::string_view prefix,
                                              std::uint64_t target_digest);

struct ForgeryResult {
  Certificate certificate;   // chains exactly like `victim` did
  KeyPair private_key;       // attacker-held key matching the forged cert
};

/// Forges a code-signing certificate that reuses `victim`'s issuer signature.
/// Succeeds only when the victim's issuer signature uses the weak hash;
/// strong-hash chains return nullopt (no collision available).
///
/// `attacker_key_seed` derives the key pair embedded in the forged cert;
/// `forged_subject` is the name that will appear in signature verdicts.
std::optional<ForgeryResult> forge_code_signing_cert(
    const Certificate& victim, std::string forged_subject,
    std::uint64_t attacker_key_seed);

}  // namespace cyd::pki
