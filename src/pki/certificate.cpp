#include "pki/certificate.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace cyd::pki {

const char* to_string(HashAlgorithm a) {
  return a == HashAlgorithm::kWeakSum ? "weak-sum32" : "strong-fnv64";
}

std::uint64_t digest(HashAlgorithm alg, std::string_view data) {
  if (alg == HashAlgorithm::kStrong64) return common::fnv1a64(data);
  // Weak algorithm: additive byte sum mod 2^16. Deliberately linear and
  // narrow so that chosen-suffix collisions are computable with a short
  // trailer (forgery.hpp) — the simulation's stand-in for the MD5
  // chosen-prefix attack used against the Terminal Services licensing chain.
  std::uint64_t sum = 0;
  for (unsigned char c : data) sum += c;
  return sum & 0xffffULL;
}

std::string usage_to_string(std::uint32_t usage) {
  std::string out;
  auto add = [&](const char* name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (usage & kUsageCodeSigning) add("code-signing");
  if (usage & kUsageLicenseVerification) add("license-verification");
  if (usage & kUsageCertSign) add("cert-sign");
  if (usage & kUsageServerAuth) add("server-auth");
  if (out.empty()) out = "none";
  return out;
}

KeyPair KeyPair::generate(std::uint64_t seed_material) {
  common::Bytes seed_bytes("keygen");
  common::put_u64(seed_bytes, seed_material);
  return KeyPair{common::fnv1a64(seed_bytes)};
}

common::Bytes Certificate::tbs_bytes() const {
  common::Bytes out("TBS1");
  common::put_u64(out, serial);
  out.append(subject);
  out.push_back('\0');
  out.append(issuer_subject);
  out.push_back('\0');
  common::put_u64(out, issuer_serial);
  common::put_u64(out, public_key_id);
  common::put_u32(out, usage);
  out.push_back(static_cast<char>(hash_alg));
  common::put_u64(out, static_cast<std::uint64_t>(not_before));
  common::put_u64(out, static_cast<std::uint64_t>(not_after));
  // Attacker-controllable trailer, appended raw: its bytes shift the weak
  // additive digest without affecting any authenticated field above. It is
  // never parsed, only digested, mirroring the unauthenticated fields abused
  // in the real chosen-prefix collision.
  out.append(collision_padding);
  return out;
}

common::Bytes Certificate::serialize() const {
  common::Bytes out("CRT1");
  auto put_str = [&](std::string_view s) {
    common::put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
  };
  common::put_u64(out, serial);
  put_str(subject);
  put_str(issuer_subject);
  common::put_u64(out, issuer_serial);
  common::put_u64(out, public_key_id);
  common::put_u32(out, usage);
  out.push_back(static_cast<char>(hash_alg));
  common::put_u64(out, static_cast<std::uint64_t>(not_before));
  common::put_u64(out, static_cast<std::uint64_t>(not_after));
  put_str(collision_padding);
  common::put_u64(out, issuer_sig.tbs_digest);
  out.push_back(static_cast<char>(issuer_sig.alg));
  common::put_u64(out, issuer_sig.issuer_key_id);
  return out;
}

std::optional<Certificate> Certificate::parse(std::string_view bytes) {
  if (bytes.size() < 4 || bytes.substr(0, 4) != "CRT1") return std::nullopt;
  std::size_t off = 4;
  try {
    Certificate c;
    auto get_str = [&]() -> std::string {
      const std::uint32_t len = common::get_u32(bytes, off);
      off += 4;
      if (off + len > bytes.size()) throw std::out_of_range("cert string");
      std::string s(bytes.substr(off, len));
      off += len;
      return s;
    };
    auto get_byte = [&]() -> unsigned char {
      if (off >= bytes.size()) throw std::out_of_range("cert byte");
      return static_cast<unsigned char>(bytes[off++]);
    };
    c.serial = common::get_u64(bytes, off); off += 8;
    c.subject = get_str();
    c.issuer_subject = get_str();
    c.issuer_serial = common::get_u64(bytes, off); off += 8;
    c.public_key_id = common::get_u64(bytes, off); off += 8;
    c.usage = common::get_u32(bytes, off); off += 4;
    const auto alg1 = get_byte();
    if (alg1 > 1) return std::nullopt;
    c.hash_alg = static_cast<HashAlgorithm>(alg1);
    c.not_before = static_cast<sim::TimePoint>(common::get_u64(bytes, off)); off += 8;
    c.not_after = static_cast<sim::TimePoint>(common::get_u64(bytes, off)); off += 8;
    c.collision_padding = get_str();
    c.issuer_sig.tbs_digest = common::get_u64(bytes, off); off += 8;
    const auto alg2 = get_byte();
    if (alg2 > 1) return std::nullopt;
    c.issuer_sig.alg = static_cast<HashAlgorithm>(alg2);
    c.issuer_sig.issuer_key_id = common::get_u64(bytes, off); off += 8;
    if (off != bytes.size()) return std::nullopt;
    return c;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

void CertStore::set_base(std::shared_ptr<const CertStore> base) {
  assert(base == nullptr || base->base_ == nullptr);
  base_ = std::move(base);
}

void CertStore::add(const Certificate& cert) { certs_[cert.serial] = cert; }

const Certificate* CertStore::find(std::uint64_t serial) const {
  auto it = certs_.find(serial);
  if (it != certs_.end()) return &it->second;
  if (base_ != nullptr) {
    auto bit = base_->certs_.find(serial);
    if (bit != base_->certs_.end()) return &bit->second;
  }
  return nullptr;
}

std::size_t CertStore::size() const {
  std::size_t total = certs_.size();
  if (base_ != nullptr) {
    for (const auto& [serial, cert] : base_->certs_) {
      if (!certs_.contains(serial)) ++total;
    }
  }
  return total;
}

std::vector<const Certificate*> CertStore::all() const {
  std::vector<const Certificate*> out;
  out.reserve(certs_.size());
  if (base_ == nullptr) {
    for (const auto& [serial, cert] : certs_) out.push_back(&cert);
    return out;
  }
  auto di = certs_.begin();
  auto bi = base_->certs_.begin();
  while (di != certs_.end() || bi != base_->certs_.end()) {
    if (bi == base_->certs_.end() ||
        (di != certs_.end() && di->first <= bi->first)) {
      if (bi != base_->certs_.end() && bi->first == di->first) ++bi;
      out.push_back(&di->second);
      ++di;
    } else {
      out.push_back(&bi->second);
      ++bi;
    }
  }
  return out;
}

CertificateAuthority CertificateAuthority::create_root(
    std::string subject, HashAlgorithm alg, sim::TimePoint not_before,
    sim::TimePoint not_after, std::uint64_t seed) {
  CertificateAuthority ca;
  ca.key_ = KeyPair::generate(seed);
  Certificate& c = ca.cert_;
  c.serial = common::fnv1a64(subject) ^ seed;
  c.subject = subject;
  c.issuer_subject = subject;
  c.issuer_serial = 0;  // self-signed
  c.public_key_id = ca.key_.key_id;
  c.usage = kUsageCertSign;
  c.hash_alg = alg;
  c.not_before = not_before;
  c.not_after = not_after;
  c.issuer_sig = IssuerSignature{digest(alg, c.tbs_bytes()), alg,
                                 ca.key_.key_id};
  return ca;
}

Certificate CertificateAuthority::issue(std::string subject,
                                        std::uint32_t usage,
                                        HashAlgorithm alg,
                                        sim::TimePoint not_before,
                                        sim::TimePoint not_after,
                                        const KeyPair& subject_key) {
  Certificate c;
  common::Bytes serial_material;
  common::put_u64(serial_material, key_.key_id);
  common::put_u64(serial_material, next_serial_++);
  serial_material.append(subject);
  c.serial = common::fnv1a64(serial_material);
  c.subject = std::move(subject);
  c.issuer_subject = cert_.subject;
  c.issuer_serial = cert_.serial;
  c.public_key_id = subject_key.key_id;
  c.usage = usage;
  c.hash_alg = alg;
  c.not_before = not_before;
  c.not_after = not_after;
  c.issuer_sig = IssuerSignature{digest(alg, c.tbs_bytes()), alg, key_.key_id};
  return c;
}

CertificateAuthority CertificateAuthority::issue_sub_ca(
    std::string subject, HashAlgorithm alg, sim::TimePoint not_before,
    sim::TimePoint not_after, std::uint64_t seed) {
  CertificateAuthority sub;
  sub.key_ = KeyPair::generate(seed);
  sub.cert_ = issue(std::move(subject), kUsageCertSign, alg, not_before,
                    not_after, sub.key_);
  return sub;
}

}  // namespace cyd::pki
