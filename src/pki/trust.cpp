#include "pki/trust.hpp"

namespace cyd::pki {

const char* to_string(ChainStatus s) {
  switch (s) {
    case ChainStatus::kOk: return "ok";
    case ChainStatus::kUntrustedRoot: return "untrusted-root";
    case ChainStatus::kIncompleteChain: return "incomplete-chain";
    case ChainStatus::kExpired: return "expired";
    case ChainStatus::kRevoked: return "revoked";
    case ChainStatus::kBadSignature: return "bad-signature";
    case ChainStatus::kInvalidIssuer: return "invalid-issuer";
    case ChainStatus::kWeakHashRejected: return "weak-hash-rejected";
    case ChainStatus::kChainTooLong: return "chain-too-long";
  }
  return "?";
}

ChainResult verify_chain(const Certificate& cert, const CertStore& store,
                         const TrustStore& trust, sim::TimePoint now) {
  constexpr int kMaxDepth = 16;
  const Certificate* current = &cert;

  for (int depth = 0; depth < kMaxDepth; ++depth) {
    if (trust.is_untrusted(current->serial)) {
      return {ChainStatus::kRevoked, current->subject, depth};
    }
    if (!current->valid_at(now)) {
      return {ChainStatus::kExpired, current->subject, depth};
    }
    if (trust.reject_weak_hash() &&
        current->issuer_sig.alg == HashAlgorithm::kWeakSum) {
      return {ChainStatus::kWeakHashRejected, current->subject, depth};
    }

    if (current->self_signed()) {
      // Self-signature must verify and the root must be anchored.
      if (digest(current->issuer_sig.alg, current->tbs_bytes()) !=
              current->issuer_sig.tbs_digest ||
          current->issuer_sig.issuer_key_id != current->public_key_id) {
        return {ChainStatus::kBadSignature, current->subject, depth};
      }
      if (!trust.is_trusted_root(current->serial)) {
        return {ChainStatus::kUntrustedRoot, current->subject, depth};
      }
      return {ChainStatus::kOk, current->subject, depth + 1};
    }

    const Certificate* issuer = store.find(current->issuer_serial);
    if (issuer == nullptr) {
      return {ChainStatus::kIncompleteChain, current->issuer_subject, depth};
    }
    if (!issuer->has_usage(kUsageCertSign)) {
      return {ChainStatus::kInvalidIssuer, issuer->subject, depth};
    }
    // The issuer signature is valid iff the recorded digest matches the TBS
    // bytes under the declared algorithm and was produced with the issuer's
    // key. A weak-sum collision makes two different TBS encodings share a
    // digest — which is precisely the forgery this check cannot detect.
    if (digest(current->issuer_sig.alg, current->tbs_bytes()) !=
            current->issuer_sig.tbs_digest ||
        current->issuer_sig.issuer_key_id != issuer->public_key_id) {
      return {ChainStatus::kBadSignature, current->subject, depth};
    }
    current = issuer;
  }
  return {ChainStatus::kChainTooLong, cert.subject, kMaxDepth};
}

}  // namespace cyd::pki
