#pragma once
// Authenticode-style code signing over simulated PE images.
//
// Driver loading (winsys), Windows Update acceptance (Flame's GADGET attack)
// and AV reputation all hinge on the verdict of verify_image(). A signature
// records the image digest, the algorithm, and the signer certificate's
// serial; verification recomputes the digest and validates the signer chain
// against the host's stores.

#include <cstdint>
#include <optional>
#include <string>

#include "pe/image.hpp"
#include "pki/certificate.hpp"
#include "pki/trust.hpp"

namespace cyd::pki {

struct CodeSignature {
  std::uint64_t image_digest = 0;
  HashAlgorithm alg = HashAlgorithm::kStrong64;
  std::uint64_t signer_serial = 0;
  std::uint64_t signer_key_id = 0;
  /// Authenticode-style embedded chain: the signer certificate plus any
  /// intermediates, so verifiers need only their trust anchors.
  std::vector<Certificate> chain;

  common::Bytes serialize() const;
  static std::optional<CodeSignature> parse(std::string_view bytes);
};

enum class SignatureStatus : std::uint8_t {
  kUnsigned,
  kMalformed,
  kDigestMismatch,   // image was modified after signing
  kSignerUnknown,    // signer certificate not present in the cert store
  kKeyMismatch,      // signature key does not match the signer certificate
  kWrongUsage,       // signer certificate lacks code-signing usage
  kChainInvalid,     // see chain field for the specific failure
  kValid,
};

const char* to_string(SignatureStatus s);

struct SignatureVerdict {
  SignatureStatus status = SignatureStatus::kUnsigned;
  ChainResult chain;          // populated when the chain was evaluated
  std::string signer_subject; // populated when the signer cert was found

  bool valid() const { return status == SignatureStatus::kValid; }
  std::string describe() const;
};

/// Signs `image` in place, embedding `signer` plus `intermediates` in the
/// signature blob. Throws std::invalid_argument if `key` does not match
/// `signer.public_key_id` — you cannot sign with a certificate whose private
/// key you do not hold (hence the value of *stolen* keys).
void sign_image(pe::Image& image, const Certificate& signer,
                const KeyPair& key,
                const std::vector<Certificate>& intermediates = {});

/// Verifies `image`'s signature against a certificate bundle and trust store.
SignatureVerdict verify_image(const pe::Image& image, const CertStore& store,
                              const TrustStore& trust, sim::TimePoint now);

}  // namespace cyd::pki
