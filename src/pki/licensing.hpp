#pragma once
// Terminal Services licensing PKI (paper Fig. 3, left half).
//
// Models the Microsoft hierarchy Flame abused: a Microsoft root, the
// "Microsoft Enforced Licensing Intermediate PCA" sub-CA which — the flaw —
// still signed with the weak hash, and per-enterprise license-server
// certificates issued on TSLS activation. A forged code-signing certificate
// built from one of those license certs chains to the Microsoft root and is
// accepted by any Windows Update client whose trust store predates advisory
// 2718704.

#include <string>

#include "pki/certificate.hpp"
#include "pki/trust.hpp"

namespace cyd::pki {

class MicrosoftPki {
 public:
  /// Builds the hierarchy. `now` anchors validity windows; `seed` keeps key
  /// generation deterministic per scenario.
  MicrosoftPki(sim::TimePoint now, std::uint64_t seed);

  /// The root every simulated Windows host anchors.
  const Certificate& root_cert() const { return root_->certificate(); }
  /// The weak-hash licensing intermediate (the flawed link).
  const Certificate& licensing_intermediate_cert() const {
    return licensing_->certificate();
  }
  /// The production code-signing intermediate + the key Microsoft itself
  /// uses for genuine Windows Update binaries.
  const Certificate& update_signing_cert() const { return update_cert_; }
  const KeyPair& update_signing_key() const { return update_key_; }

  struct TslsActivation {
    Certificate license_cert;  // usage = license verification, weak hash
    KeyPair license_key;
  };

  /// What an enterprise gets when it activates a Terminal Services Licensing
  /// Server with Microsoft: a limited-use certificate. Its issuer signature
  /// uses the weak hash — the raw material of the Flame forgery.
  TslsActivation activate_license_server(const std::string& organization);

  /// Installs every certificate a stock Windows host knows about.
  void install_into(CertStore& store) const;

  /// Anchors the Microsoft root in a host trust store.
  void anchor_root(TrustStore& trust) const;

  /// Microsoft Security Advisory 2718704: moves the licensing intermediate
  /// (and any activation certs already issued) into the Untrusted store.
  void apply_advisory_2718704(TrustStore& trust) const;

 private:
  // unique_ptr because CertificateAuthority is move-only by construction
  // order (built inside the constructor body).
  std::unique_ptr<CertificateAuthority> root_;
  std::unique_ptr<CertificateAuthority> licensing_;
  Certificate update_cert_;
  KeyPair update_key_;
  std::uint64_t seed_;
  std::uint64_t activation_counter_ = 0;
  mutable std::vector<std::uint64_t> issued_license_serials_;
};

}  // namespace cyd::pki
