#include "analysis/sandbox.hpp"

#include <algorithm>

namespace cyd::analysis {
namespace {

std::string domain_of(const std::string& url) {
  const auto slash = url.find('/');
  return slash == std::string::npos ? url : url.substr(0, slash);
}

}  // namespace

double BehaviorReport::suspicion_score() const {
  if (!executed) return 0.0;
  double score = 0.0;
  auto count = [&](const char* action) -> double {
    auto it = action_counts.find(action);
    return it == action_counts.end() ? 0.0 : static_cast<double>(it->second);
  };
  // Persistence and kernel access weigh most; noisy-but-benign actions less.
  score += 8.0 * static_cast<double>(drivers_loaded.size());
  score += 6.0 * static_cast<double>(drivers_rejected.size());
  score += 6.0 * static_cast<double>(services_installed.size());
  score += 50.0 * (touched_mbr ? 1.0 : 0.0);
  score += 12.0 * (armed_bait_usb ? 1.0 : 0.0);
  score += 10.0 * count("lnk.exploit-trigger");
  score += 4.0 * count("task.schedule");
  score += 2.0 * static_cast<double>(domains_contacted.size());
  // Drops into %system% read as installation behaviour.
  double system_drops = 0;
  for (const auto& path : files_written) {
    if (path.find("windows\\system32") != std::string::npos ||
        path.find("windows\\inf") != std::string::npos) {
      system_drops += 1;
    }
  }
  score += std::min(20.0, 2.5 * system_drops);
  return std::min(100.0, score);
}

std::string BehaviorReport::summary() const {
  std::string out = executed ? "executed" : "inert";
  out += " score=" + std::to_string(static_cast<int>(suspicion_score()));
  out += " writes=" + std::to_string(files_written.size());
  out += " services=" + std::to_string(services_installed.size());
  out += " drivers=" + std::to_string(drivers_loaded.size());
  out += " domains=" + std::to_string(domains_contacted.size());
  if (touched_mbr) out += " MBR-WIPE";
  if (armed_bait_usb) out += " USB-ARMING";
  return out;
}

Sandbox::Sandbox(SandboxOptions options, EnvironmentSetup setup)
    : options_(options), sim_(options.seed), network_(sim_) {
  host_ = std::make_unique<winsys::Host>(sim_, programs_, "sandbox-vm",
                                         options_.os);
  for (auto vuln : options_.vulnerabilities) host_->make_vulnerable(vuln);
  host_->set_internet_access(options_.internet_access);
  network_.attach(*host_, "sandbox-net", "192.168.56.10");
  host_->stack()->add_share("c$", winsys::Path("c:"));

  // A believable internet: the landmarks connectivity checks probe.
  for (const char* domain : {"www.windowsupdate.com", "www.msn.com"}) {
    network_.register_internet_service(domain, [](const net::HttpRequest&) {
      return net::HttpResponse{200, "ok"};
    });
  }

  if (options_.bait_documents) {
    host_->fs().write_file("c:\\users\\analyst\\documents\\budget.docx",
                           "bait document alpha", 0);
    host_->fs().write_file("c:\\users\\analyst\\documents\\plant.dwg",
                           "bait drawing bravo", 0);
    host_->fs().write_file("c:\\users\\analyst\\desktop\\notes.txt",
                           "bait note charlie", 0);
  }
  host_->registry().set("hklm\\hardware\\audio", "microphone",
                        std::uint32_t{1});
  host_->bluetooth().present = true;
  host_->bluetooth().nearby_devices = {"analyst-phone"};

  if (setup != nullptr) setup(sim_, network_, programs_, *host_);
}

BehaviorReport Sandbox::detonate(const common::Bytes& specimen,
                                 sim::Duration observation) {
  BehaviorReport report;
  const std::size_t trace_start = sim_.trace().size();
  const auto files_before = host_->fs().all_files();

  const winsys::Path sample_path =
      winsys::Path("c:\\samples")
          .join("sample" + std::to_string(++run_counter_) + ".exe");
  host_->fs().write_file(sample_path, specimen, sim_.now());

  winsys::ExecContext ctx;
  ctx.launched_by = "sandbox-operator";
  ctx.elevated = true;
  const auto result = host_->execute_file(sample_path, ctx);
  report.exec_status = result.status;
  report.executed = result.started();

  // Operator pokes: insert a bait stick after an hour of quiet.
  bait_stick_ = std::make_unique<winsys::UsbDrive>(
      "bait-" + std::to_string(run_counter_));
  winsys::UsbDrive* stick = bait_stick_.get();
  sim_.after(sim::kHour, [this, stick] { host_->plug_usb(*stick); });

  sim_.run_for(observation);

  // --- distil the trace ---
  const auto& events = sim_.trace().events();
  for (std::size_t i = trace_start; i < events.size(); ++i) {
    const auto& event = events[i];
    if (event.actor != host_->name()) continue;
    ++report.action_counts[event.action];
    if (event.action == "service.install") {
      report.services_installed.push_back(event.detail);
    } else if (event.action == "driver.load") {
      report.drivers_loaded.push_back(event.detail);
    } else if (event.action == "driver.rejected") {
      report.drivers_rejected.push_back(event.detail);
    } else if (event.action == "rawdisk.mbr-overwrite" ||
               event.action == "rawdisk.partition-overwrite") {
      report.touched_mbr = true;
    } else if (event.action == "http.internet" ||
               event.action == "http.no-route") {
      report.domains_contacted.insert(domain_of(event.detail));
    }
  }

  // Filesystem delta.
  std::set<std::string> before;
  for (const auto& p : files_before) before.insert(p.str());
  for (const auto& p : host_->fs().all_files()) {
    if (!before.contains(p.str()) && p != sample_path) {
      report.files_written.push_back(p.str());
    }
  }
  std::set<std::string> after;
  for (const auto& p : host_->fs().all_files()) after.insert(p.str());
  for (const auto& p : files_before) {
    if (!after.contains(p.str())) report.files_deleted.push_back(p.str());
  }

  // Did the sample arm the bait stick?
  if (stick->plugged_into() == host_.get()) {
    const winsys::Path root(std::string{stick->mount_letter(), ':'});
    for (const auto& entry : host_->fs().list_dir(root)) {
      report.usb_payloads.push_back(entry);
    }
    report.armed_bait_usb = !report.usb_payloads.empty();
  }

  std::sort(report.files_written.begin(), report.files_written.end());
  return report;
}

}  // namespace cyd::analysis
