#include "analysis/sandbox.hpp"

#include <algorithm>

namespace cyd::analysis {
namespace {

std::string domain_of(std::string_view url) {
  const auto slash = url.find('/');
  return std::string(
      url.substr(0, slash == std::string_view::npos ? url.size() : slash));
}

}  // namespace

double BehaviorReport::suspicion_score() const {
  if (!executed) return 0.0;
  double score = 0.0;
  auto count = [&](const char* action) -> double {
    auto it = action_counts.find(action);
    return it == action_counts.end() ? 0.0 : static_cast<double>(it->second);
  };
  // Persistence and kernel access weigh most; noisy-but-benign actions less.
  score += 8.0 * static_cast<double>(drivers_loaded.size());
  score += 6.0 * static_cast<double>(drivers_rejected.size());
  score += 6.0 * static_cast<double>(services_installed.size());
  score += 50.0 * (touched_mbr ? 1.0 : 0.0);
  score += 12.0 * (armed_bait_usb ? 1.0 : 0.0);
  score += 10.0 * count("lnk.exploit-trigger");
  score += 4.0 * count("task.schedule");
  score += 2.0 * static_cast<double>(domains_contacted.size());
  // Drops into %system% read as installation behaviour.
  double system_drops = 0;
  for (const auto& path : files_written) {
    if (path.find("windows\\system32") != std::string::npos ||
        path.find("windows\\inf") != std::string::npos) {
      system_drops += 1;
    }
  }
  score += std::min(20.0, 2.5 * system_drops);
  return std::min(100.0, score);
}

std::string BehaviorReport::summary() const {
  std::string out = executed ? "executed" : "inert";
  out += " score=" + std::to_string(static_cast<int>(suspicion_score()));
  out += " writes=" + std::to_string(files_written.size());
  out += " services=" + std::to_string(services_installed.size());
  out += " drivers=" + std::to_string(drivers_loaded.size());
  out += " domains=" + std::to_string(domains_contacted.size());
  if (touched_mbr) out += " MBR-WIPE";
  if (armed_bait_usb) out += " USB-ARMING";
  return out;
}

Sandbox::Sandbox(SandboxOptions options, EnvironmentSetup setup)
    : options_(options), sim_(options.seed), network_(sim_) {
  host_ = std::make_unique<winsys::Host>(sim_, programs_, "sandbox-vm",
                                         options_.os);
  for (auto vuln : options_.vulnerabilities) host_->make_vulnerable(vuln);
  host_->set_internet_access(options_.internet_access);
  network_.attach(*host_, "sandbox-net", "192.168.56.10");
  host_->stack()->add_share("c$", winsys::Path("c:"));

  // A believable internet: the landmarks connectivity checks probe.
  for (const char* domain : {"www.windowsupdate.com", "www.msn.com"}) {
    network_.register_internet_service(domain, [](const net::HttpRequest&) {
      return net::HttpResponse{200, "ok"};
    });
  }

  if (options_.bait_documents) {
    host_->fs().write_file("c:\\users\\analyst\\documents\\budget.docx",
                           "bait document alpha", 0);
    host_->fs().write_file("c:\\users\\analyst\\documents\\plant.dwg",
                           "bait drawing bravo", 0);
    host_->fs().write_file("c:\\users\\analyst\\desktop\\notes.txt",
                           "bait note charlie", 0);
  }
  host_->registry().set("hklm\\hardware\\audio", "microphone",
                        std::uint32_t{1});
  host_->bluetooth().present = true;
  host_->bluetooth().nearby_devices = {"analyst-phone"};

  if (setup != nullptr) setup(sim_, network_, programs_, *host_);
}

BehaviorReport Sandbox::detonate(const common::Bytes& specimen,
                                 sim::Duration observation) {
  BehaviorReport report;
  const std::size_t trace_start = sim_.trace().size();
  const auto files_before = host_->fs().all_files();

  const winsys::Path sample_path =
      winsys::Path("c:\\samples")
          .join("sample" + std::to_string(++run_counter_) + ".exe");
  host_->fs().write_file(sample_path, specimen, sim_.now());

  winsys::ExecContext ctx;
  ctx.launched_by = "sandbox-operator";
  ctx.elevated = true;
  const auto result = host_->execute_file(sample_path, ctx);
  report.exec_status = result.status;
  report.executed = result.started();

  // Operator pokes: insert a bait stick after an hour of quiet.
  bait_stick_ = std::make_unique<winsys::UsbDrive>(
      "bait-" + std::to_string(run_counter_));
  winsys::UsbDrive* stick = bait_stick_.get();
  sim_.after(sim::kHour, [this, stick] { host_->plug_usb(*stick); });

  sim_.run_for(observation);

  // --- distil the trace ---
  // The detonation window is scanned once on interned ids: the host filter
  // and every action test are integer compares, and strings materialise
  // only for the handful of matching events.
  const auto& trace = sim_.trace();
  const auto& events = trace.events();
  const auto& pool = trace.pool();
  const sim::StringId host_id = pool.find(host_->name());
  const sim::StringId service_install = pool.find("service.install");
  const sim::StringId driver_load = pool.find("driver.load");
  const sim::StringId driver_rejected = pool.find("driver.rejected");
  const sim::StringId mbr_overwrite = pool.find("rawdisk.mbr-overwrite");
  const sim::StringId partition_overwrite =
      pool.find("rawdisk.partition-overwrite");
  const sim::StringId http_internet = pool.find("http.internet");
  const sim::StringId http_no_route = pool.find("http.no-route");
  std::map<sim::StringId, std::size_t> action_ids_seen;
  for (std::size_t i = trace_start; i < events.size(); ++i) {
    const auto& event = events[i];
    if (event.actor != host_id) continue;
    ++action_ids_seen[event.action];
    if (event.action == service_install) {
      report.services_installed.emplace_back(trace.detail(event));
    } else if (event.action == driver_load) {
      report.drivers_loaded.emplace_back(trace.detail(event));
    } else if (event.action == driver_rejected) {
      report.drivers_rejected.emplace_back(trace.detail(event));
    } else if (event.action == mbr_overwrite ||
               event.action == partition_overwrite) {
      report.touched_mbr = true;
    } else if (event.action == http_internet ||
               event.action == http_no_route) {
      report.domains_contacted.insert(domain_of(trace.detail(event)));
    }
  }
  for (const auto& [action_id, hits] : action_ids_seen) {
    report.action_counts[std::string(pool.view(action_id))] = hits;
  }

  // Filesystem delta.
  std::set<std::string> before;
  for (const auto& p : files_before) before.insert(p.str());
  for (const auto& p : host_->fs().all_files()) {
    if (!before.contains(p.str()) && p != sample_path) {
      report.files_written.push_back(p.str());
    }
  }
  std::set<std::string> after;
  for (const auto& p : host_->fs().all_files()) after.insert(p.str());
  for (const auto& p : files_before) {
    if (!after.contains(p.str())) report.files_deleted.push_back(p.str());
  }

  // Did the sample arm the bait stick?
  if (stick->plugged_into() == host_.get()) {
    const winsys::Path root(std::string{stick->mount_letter(), ':'});
    for (const auto& entry : host_->fs().list_dir(root)) {
      report.usb_payloads.push_back(entry);
    }
    report.armed_bait_usb = !report.usb_payloads.empty();
  }

  std::sort(report.files_written.begin(), report.files_written.end());
  return report;
}

}  // namespace cyd::analysis
