#include "analysis/similarity.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/static_analysis.hpp"
#include "analysis/union_find.hpp"
#include "pe/image.hpp"
#include "sim/sweep.hpp"

namespace cyd::analysis {
namespace {

constexpr std::size_t kMinStringLength = 6;

/// Rough distinct-feature count per specimen, used to pre-size the shared
/// FeatureDict before the serial intern stage of a pile. Only a rehash
/// hint — real piles dedup heavily across specimens, so this overshoots,
/// which is the cheap direction.
constexpr std::size_t kFeaturesPerSpecimenHint = 48;

/// Pairs scored per sweep task. Coarse enough that the per-task dispatch
/// (one std::function call, two clock reads) is noise; fine enough that
/// the triangle load-balances across workers.
constexpr std::uint64_t kPairBlock = 4096;

/// Number of strict-upper-triangle pairs of an n x n matrix.
std::uint64_t triangle_size(std::size_t n) {
  return n < 2 ? 0
               : static_cast<std::uint64_t>(n) * (n - 1) / 2;
}

/// Scores pairs [begin, end) of the triangle into out[begin - base..),
/// decoding (i,j) arithmetically once and stepping it per pair.
void score_pair_range(const std::vector<SpecimenFeatures>& features,
                      std::uint64_t begin, std::uint64_t end,
                      std::uint64_t base, double* out) {
  const std::size_t n = features.size();
  auto [i, j] = triangle_pair(begin, n);
  for (std::uint64_t k = begin; k < end; ++k) {
    out[k - base] = similarity(features[i], features[j]);
    if (++j == n) {
      ++i;
      j = i + 1;
    }
  }
}

/// Sweeps pair scores for triangle indices [begin, begin + count) into
/// out[0..count), in kPairBlock tasks. Each task owns a distinct slice of
/// `out`, so the fan-out needs no synchronisation and the result is
/// byte-identical to the serial loop regardless of worker count.
void sweep_pair_scores(const std::vector<SpecimenFeatures>& features,
                       std::uint64_t begin, std::uint64_t count,
                       double* out) {
  const std::uint64_t blocks = (count + kPairBlock - 1) / kPairBlock;
  sim::default_sweep_runner().run_indexed(
      static_cast<std::size_t>(blocks), [&](std::size_t b) {
        const std::uint64_t lo = begin + b * kPairBlock;
        const std::uint64_t hi = std::min(lo + kPairBlock, begin + count);
        score_pair_range(features, lo, hi, begin, out);
      });
}

void collect_features(const pe::Image& image, FeatureDict& dict,
                      SpecimenFeatures& out, int max_depth) {
  for (const auto& section : image.sections) {
    out.section_names.push_back(dict.intern(section.name));
    for_each_string(section.data, kMinStringLength, [&](std::string_view s) {
      out.strings.push_back(dict.intern(s));
    });
  }
  for (const auto& import : image.imports) {
    for (const auto& fn : import.functions) {
      out.imports.push_back(dict.intern_import(import.dll, fn));
    }
  }
  for_each_string(image.version_info, kMinStringLength,
                  [&](std::string_view s) {
                    out.strings.push_back(dict.intern(s));
                  });
  if (max_depth <= 0) return;
  for (const auto& resource : image.resources) {
    common::Bytes payload = resource.data;
    if (auto key = brute_xor_key(resource.data)) {
      payload = common::xor_cipher(resource.data, *key);
    }
    if (pe::Image::looks_like_pe(payload)) {
      try {
        collect_features(pe::Image::parse(payload), dict, out, max_depth - 1);
        continue;
      } catch (const pe::ParseError&) {
      }
    }
    for_each_string(payload, kMinStringLength, [&](std::string_view s) {
      out.strings.push_back(dict.intern(s));
    });
  }
}

void sort_unique(std::vector<FeatureId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

/// Jaccard over two sorted, deduplicated id spans: one branch-light linear
/// merge counts the intersection (the seed walked a std::set per element).
/// Counts equal the seed's set counts — interning is a bijection — so the
/// resulting double is bit-identical.
double jaccard(const std::vector<FeatureId>& a,
               const std::vector<FeatureId>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t intersection = 0;
  while (i < a.size() && j < b.size()) {
    const FeatureId x = a[i];
    const FeatureId y = b[j];
    intersection += static_cast<std::size_t>(x == y);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(y <= x);
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

}  // namespace

FeatureId FeatureDict::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const FeatureId id = features_.size();
  features_.emplace_back(s);
  ids_.emplace(features_.back(), id);
  return id;
}

FeatureId FeatureDict::intern_import(std::string_view dll,
                                     std::string_view fn) {
  scratch_.assign(dll);
  scratch_.push_back('!');
  scratch_.append(fn);
  return intern(scratch_);
}

std::vector<SpecimenFeatures> extract_pile(
    const std::vector<LabelledSpecimen>& specimens, FeatureDict& dict) {
  dict.reserve(specimens.size() * kFeaturesPerSpecimenHint);
  std::vector<SpecimenFeatures> features;
  features.reserve(specimens.size());
  for (const auto& specimen : specimens) {
    features.push_back(extract_features(specimen.bytes, dict));
  }
  return features;
}

SpecimenFeatures extract_features(std::string_view bytes, FeatureDict& dict,
                                  int max_depth) {
  SpecimenFeatures out;
  try {
    collect_features(pe::Image::parse(bytes), dict, out, max_depth);
  } catch (const pe::ParseError&) {
    for_each_string(bytes, kMinStringLength, [&](std::string_view s) {
      out.strings.push_back(dict.intern(s));
    });
  }
  sort_unique(out.strings);
  sort_unique(out.imports);
  sort_unique(out.section_names);
  return out;
}

double similarity(const SpecimenFeatures& a, const SpecimenFeatures& b) {
  // Engineering artifacts (imports, section layout) weigh more than
  // free-floating strings. A feature class empty on *both* sides carries no
  // evidence either way, so the weights are renormalized over the classes
  // present in at least one operand — otherwise a specimen with, say, no
  // extracted strings could never reach 1.0 against itself and every
  // off-diagonal involving it would be silently deflated.
  struct Class {
    double weight;
    const std::vector<FeatureId>& lhs;
    const std::vector<FeatureId>& rhs;
  };
  const Class classes[] = {
      {0.4, a.strings, b.strings},
      {0.35, a.imports, b.imports},
      {0.25, a.section_names, b.section_names},
  };
  double score = 0.0;
  double active_weight = 0.0;
  for (const auto& c : classes) {
    if (c.lhs.empty() && c.rhs.empty()) continue;
    score += c.weight * jaccard(c.lhs, c.rhs);
    active_weight += c.weight;
  }
  // Every class empty on both sides: the feature sets are (vacuously)
  // identical, so two featureless specimens compare as equal.
  if (active_weight == 0.0) return 1.0;
  return score / active_weight;
}

double specimen_similarity(std::string_view a, std::string_view b) {
  FeatureDict dict;
  const auto fa = extract_features(a, dict);
  const auto fb = extract_features(b, dict);
  return similarity(fa, fb);
}

TrianglePair triangle_pair(std::uint64_t k, std::size_t n) {
  // Pairs before row i: S(i) = i*n - i*(i+1)/2. Inverting S(i) <= k gives
  // i = n - 1/2 - sqrt((n - 1/2)² - 2k); the double approximation can be
  // off by one near row boundaries, so fix up exactly in integers.
  const double nd = static_cast<double>(n) - 0.5;
  const double disc = nd * nd - 2.0 * static_cast<double>(k);
  double approx = nd - std::sqrt(disc > 0.0 ? disc : 0.0);
  if (approx < 0.0) approx = 0.0;
  std::size_t i = static_cast<std::size_t>(approx);
  if (i > n - 2) i = n - 2;
  const auto row_start = [n](std::size_t r) {
    return static_cast<std::uint64_t>(r) * (2 * n - r - 1) / 2;
  };
  while (row_start(i) > k) --i;
  while (i + 1 <= n - 2 && row_start(i + 1) <= k) ++i;
  return {i, i + 1 + static_cast<std::size_t>(k - row_start(i))};
}

std::vector<double> similarity_triangle(
    const std::vector<SpecimenFeatures>& features) {
  std::vector<double> scores(triangle_size(features.size()));
  sweep_pair_scores(features, 0, scores.size(), scores.data());
  return scores;
}

std::vector<double> similarity_matrix(
    const std::vector<LabelledSpecimen>& specimens) {
  const std::size_t n = specimens.size();
  // Extraction feeds the shared dict, so it stays on the caller thread;
  // the pure pairwise scores sweep. Each block of triangle indices is
  // decoded arithmetically and scatters its own symmetric cells — every
  // matrix cell has exactly one writer, so no pair list and no score
  // staging vector are ever materialized.
  FeatureDict dict;
  const auto features = extract_pile(specimens, dict);
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) matrix[i * n + i] = 1.0;
  const std::uint64_t total = triangle_size(n);
  const std::uint64_t blocks = (total + kPairBlock - 1) / kPairBlock;
  sim::default_sweep_runner().run_indexed(
      static_cast<std::size_t>(blocks), [&](std::size_t b) {
        const std::uint64_t lo = b * kPairBlock;
        const std::uint64_t hi = std::min(lo + kPairBlock, total);
        auto [i, j] = triangle_pair(lo, n);
        for (std::uint64_t k = lo; k < hi; ++k) {
          const double score = similarity(features[i], features[j]);
          matrix[i * n + j] = score;
          matrix[j * n + i] = score;
          if (++j == n) {
            ++i;
            j = i + 1;
          }
        }
      });
  return matrix;
}

std::vector<std::vector<std::size_t>> cluster_feature_indices(
    const std::vector<SpecimenFeatures>& features, double threshold) {
  const std::size_t n = features.size();
  UnionFind components(n);
  // Stream the triangle in chunks: score a chunk on the pool, fold its
  // above-threshold edges serially, reuse the buffer. Edge order within
  // the fold is lexicographic, and smallest-root unions are order-
  // invariant anyway, so chunking does not affect the clustering.
  constexpr std::uint64_t kStreamChunk = std::uint64_t{1} << 22;
  const std::uint64_t total = triangle_size(n);
  std::vector<double> chunk(
      static_cast<std::size_t>(std::min(total, kStreamChunk)));
  for (std::uint64_t begin = 0; begin < total; begin += kStreamChunk) {
    const std::uint64_t count = std::min(kStreamChunk, total - begin);
    sweep_pair_scores(features, begin, count, chunk.data());
    auto [i, j] = triangle_pair(begin, n);
    for (std::uint64_t k = 0; k < count; ++k) {
      if (chunk[static_cast<std::size_t>(k)] >= threshold) {
        components.unite(i, j);
      }
      if (++j == n) {
        ++i;
        j = i + 1;
      }
    }
  }
  return components.groups();
}

std::vector<std::vector<std::string>> cluster_specimens(
    const std::vector<LabelledSpecimen>& specimens, double threshold) {
  // Exact path: extract once, stream the scored upper triangle into the
  // smallest-root union-find — same scores and same canonical grouping as
  // the old build-the-matrix-then-scan-it version, at half the peak memory
  // (no n x n matrix, only the O(chunk) score buffer).
  FeatureDict dict;
  const auto features = extract_pile(specimens, dict);
  std::vector<std::vector<std::string>> out;
  for (const auto& group : cluster_feature_indices(features, threshold)) {
    auto& labels = out.emplace_back();
    labels.reserve(group.size());
    for (const std::size_t idx : group) labels.push_back(specimens[idx].label);
  }
  return out;
}

}  // namespace cyd::analysis
