#include "analysis/similarity.hpp"

#include <functional>

#include "analysis/static_analysis.hpp"
#include "pe/image.hpp"

namespace cyd::analysis {
namespace {

void collect_features(const pe::Image& image, SpecimenFeatures& out,
                      int max_depth) {
  for (const auto& section : image.sections) {
    out.section_names.insert(section.name);
    for (auto& s : extract_strings(section.data)) {
      out.strings.insert(std::move(s));
    }
  }
  for (const auto& import : image.imports) {
    for (const auto& fn : import.functions) {
      out.imports.insert(import.dll + "!" + fn);
    }
  }
  for (auto& s : extract_strings(image.version_info)) {
    out.strings.insert(std::move(s));
  }
  if (max_depth <= 0) return;
  for (const auto& resource : image.resources) {
    common::Bytes payload = resource.data;
    if (auto key = brute_xor_key(resource.data)) {
      payload = common::xor_cipher(resource.data, *key);
    }
    if (pe::Image::looks_like_pe(payload)) {
      try {
        collect_features(pe::Image::parse(payload), out, max_depth - 1);
        continue;
      } catch (const pe::ParseError&) {
      }
    }
    for (auto& s : extract_strings(payload)) out.strings.insert(std::move(s));
  }
}

double jaccard(const std::set<std::string>& a,
               const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t intersection = 0;
  for (const auto& item : a) {
    if (b.contains(item)) ++intersection;
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

}  // namespace

SpecimenFeatures extract_features(std::string_view bytes, int max_depth) {
  SpecimenFeatures out;
  try {
    collect_features(pe::Image::parse(bytes), out, max_depth);
  } catch (const pe::ParseError&) {
    for (auto& s : extract_strings(bytes)) out.strings.insert(std::move(s));
  }
  return out;
}

double similarity(const SpecimenFeatures& a, const SpecimenFeatures& b) {
  // Engineering artifacts (imports, section layout) weigh more than
  // free-floating strings. A feature class empty on *both* sides carries no
  // evidence either way, so the weights are renormalized over the classes
  // present in at least one operand — otherwise a specimen with, say, no
  // extracted strings could never reach 1.0 against itself and every
  // off-diagonal involving it would be silently deflated.
  struct Class {
    double weight;
    const std::set<std::string>& lhs;
    const std::set<std::string>& rhs;
  };
  const Class classes[] = {
      {0.4, a.strings, b.strings},
      {0.35, a.imports, b.imports},
      {0.25, a.section_names, b.section_names},
  };
  double score = 0.0;
  double active_weight = 0.0;
  for (const auto& c : classes) {
    if (c.lhs.empty() && c.rhs.empty()) continue;
    score += c.weight * jaccard(c.lhs, c.rhs);
    active_weight += c.weight;
  }
  // Every class empty on both sides: the feature sets are (vacuously)
  // identical, so two featureless specimens compare as equal.
  if (active_weight == 0.0) return 1.0;
  return score / active_weight;
}

double specimen_similarity(std::string_view a, std::string_view b) {
  return similarity(extract_features(a), extract_features(b));
}

std::vector<double> similarity_matrix(
    const std::vector<LabelledSpecimen>& specimens) {
  const std::size_t n = specimens.size();
  std::vector<SpecimenFeatures> features;
  features.reserve(n);
  for (const auto& specimen : specimens) {
    features.push_back(extract_features(specimen.bytes));
  }
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    matrix[i * n + i] = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double score = similarity(features[i], features[j]);
      matrix[i * n + j] = score;
      matrix[j * n + i] = score;
    }
  }
  return matrix;
}

std::vector<std::vector<std::string>> cluster_specimens(
    const std::vector<LabelledSpecimen>& specimens, double threshold) {
  const std::size_t n = specimens.size();
  const auto matrix = similarity_matrix(specimens);
  // Union-find over above-threshold edges (single linkage).
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (matrix[i * n + j] >= threshold) parent[find(i)] = find(j);
    }
  }
  std::map<std::size_t, std::vector<std::string>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    groups[find(i)].push_back(specimens[i].label);
  }
  std::vector<std::vector<std::string>> out;
  out.reserve(groups.size());
  for (auto& [root, members] : groups) out.push_back(std::move(members));
  return out;
}

}  // namespace cyd::analysis
