#include "analysis/similarity.hpp"

#include <algorithm>

#include "analysis/static_analysis.hpp"
#include "pe/image.hpp"
#include "sim/sweep.hpp"

namespace cyd::analysis {
namespace {

constexpr std::size_t kMinStringLength = 6;

void collect_features(const pe::Image& image, FeatureDict& dict,
                      SpecimenFeatures& out, int max_depth) {
  for (const auto& section : image.sections) {
    out.section_names.push_back(dict.intern(section.name));
    for_each_string(section.data, kMinStringLength, [&](std::string_view s) {
      out.strings.push_back(dict.intern(s));
    });
  }
  for (const auto& import : image.imports) {
    for (const auto& fn : import.functions) {
      out.imports.push_back(dict.intern_import(import.dll, fn));
    }
  }
  for_each_string(image.version_info, kMinStringLength,
                  [&](std::string_view s) {
                    out.strings.push_back(dict.intern(s));
                  });
  if (max_depth <= 0) return;
  for (const auto& resource : image.resources) {
    common::Bytes payload = resource.data;
    if (auto key = brute_xor_key(resource.data)) {
      payload = common::xor_cipher(resource.data, *key);
    }
    if (pe::Image::looks_like_pe(payload)) {
      try {
        collect_features(pe::Image::parse(payload), dict, out, max_depth - 1);
        continue;
      } catch (const pe::ParseError&) {
      }
    }
    for_each_string(payload, kMinStringLength, [&](std::string_view s) {
      out.strings.push_back(dict.intern(s));
    });
  }
}

void sort_unique(std::vector<FeatureId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

/// Jaccard over two sorted, deduplicated id spans: one branch-light linear
/// merge counts the intersection (the seed walked a std::set per element).
/// Counts equal the seed's set counts — interning is a bijection — so the
/// resulting double is bit-identical.
double jaccard(const std::vector<FeatureId>& a,
               const std::vector<FeatureId>& b) {
  if (a.empty() && b.empty()) return 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t intersection = 0;
  while (i < a.size() && j < b.size()) {
    const FeatureId x = a[i];
    const FeatureId y = b[j];
    intersection += static_cast<std::size_t>(x == y);
    i += static_cast<std::size_t>(x <= y);
    j += static_cast<std::size_t>(y <= x);
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

}  // namespace

FeatureId FeatureDict::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const FeatureId id = features_.size();
  features_.emplace_back(s);
  ids_.emplace(features_.back(), id);
  return id;
}

FeatureId FeatureDict::intern_import(std::string_view dll,
                                     std::string_view fn) {
  scratch_.assign(dll);
  scratch_.push_back('!');
  scratch_.append(fn);
  return intern(scratch_);
}

SpecimenFeatures extract_features(std::string_view bytes, FeatureDict& dict,
                                  int max_depth) {
  SpecimenFeatures out;
  try {
    collect_features(pe::Image::parse(bytes), dict, out, max_depth);
  } catch (const pe::ParseError&) {
    for_each_string(bytes, kMinStringLength, [&](std::string_view s) {
      out.strings.push_back(dict.intern(s));
    });
  }
  sort_unique(out.strings);
  sort_unique(out.imports);
  sort_unique(out.section_names);
  return out;
}

double similarity(const SpecimenFeatures& a, const SpecimenFeatures& b) {
  // Engineering artifacts (imports, section layout) weigh more than
  // free-floating strings. A feature class empty on *both* sides carries no
  // evidence either way, so the weights are renormalized over the classes
  // present in at least one operand — otherwise a specimen with, say, no
  // extracted strings could never reach 1.0 against itself and every
  // off-diagonal involving it would be silently deflated.
  struct Class {
    double weight;
    const std::vector<FeatureId>& lhs;
    const std::vector<FeatureId>& rhs;
  };
  const Class classes[] = {
      {0.4, a.strings, b.strings},
      {0.35, a.imports, b.imports},
      {0.25, a.section_names, b.section_names},
  };
  double score = 0.0;
  double active_weight = 0.0;
  for (const auto& c : classes) {
    if (c.lhs.empty() && c.rhs.empty()) continue;
    score += c.weight * jaccard(c.lhs, c.rhs);
    active_weight += c.weight;
  }
  // Every class empty on both sides: the feature sets are (vacuously)
  // identical, so two featureless specimens compare as equal.
  if (active_weight == 0.0) return 1.0;
  return score / active_weight;
}

double specimen_similarity(std::string_view a, std::string_view b) {
  FeatureDict dict;
  const auto fa = extract_features(a, dict);
  const auto fb = extract_features(b, dict);
  return similarity(fa, fb);
}

std::vector<double> similarity_matrix(
    const std::vector<LabelledSpecimen>& specimens) {
  const std::size_t n = specimens.size();
  // Extraction feeds the shared dict, so it stays on the caller thread;
  // the pure pairwise scores sweep.
  FeatureDict dict;
  std::vector<SpecimenFeatures> features;
  features.reserve(n);
  for (const auto& specimen : specimens) {
    features.push_back(extract_features(specimen.bytes, dict));
  }
  struct Pair {
    std::size_t i = 0;
    std::size_t j = 0;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) pairs.push_back({i, j});
  }
  const auto scores = sim::Sweep::map_items(pairs, [&](const Pair& p) {
    return similarity(features[p.i], features[p.j]);
  });
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) matrix[i * n + i] = 1.0;
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    matrix[pairs[k].i * n + pairs[k].j] = scores[k];
    matrix[pairs[k].j * n + pairs[k].i] = scores[k];
  }
  return matrix;
}

std::vector<std::vector<std::string>> cluster_specimens(
    const std::vector<LabelledSpecimen>& specimens, double threshold) {
  const std::size_t n = specimens.size();
  const auto matrix = similarity_matrix(specimens);
  // Union-find over above-threshold edges (single linkage). Union by
  // smallest root index: a component's representative is always its
  // earliest member, so the grouping below comes out in a canonical order
  // instead of depending on which edge happened to merge last.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (matrix[i * n + j] < threshold) continue;
      const std::size_t ri = find(i);
      const std::size_t rj = find(j);
      if (ri == rj) continue;
      parent[std::max(ri, rj)] = std::min(ri, rj);
    }
  }
  // Roots are minimal member indices, so iterating specimens in order
  // yields clusters ordered by earliest member, members in input order.
  std::vector<std::vector<std::string>> out;
  std::vector<std::size_t> group_of(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    if (group_of[root] == static_cast<std::size_t>(-1)) {
      group_of[root] = out.size();
      out.emplace_back();
    }
    out[group_of[root]].push_back(specimens[i].label);
  }
  return out;
}

}  // namespace cyd::analysis
