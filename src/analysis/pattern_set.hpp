#pragma once
// Multi-pattern byte scanning (Aho–Corasick).
//
// YaraLite rules and AV pattern signatures both reduce to the same
// question: which of N byte patterns occur somewhere in this buffer? The
// seed implementations answered it with one substring search per pattern —
// O(patterns × bytes) passes over every scanned file. PatternSet compiles
// all patterns into one Aho–Corasick automaton (converted to a dense DFA
// over the full byte alphabet) and answers presence for every pattern in a
// single left-to-right pass, independent of the pattern count.
//
// The automaton spends 1KB of goto table per trie node (node count is the
// summed pattern length plus one), which is the right trade for signature
// feeds: tens-to-thousands of short patterns, scanned against every file a
// simulated host writes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cyd::analysis {

class PatternSet {
 public:
  /// Registers a pattern and returns its index (indices are dense, in add
  /// order; duplicates get distinct indices). Throws std::invalid_argument
  /// on an empty pattern — "every buffer matches" is never what a
  /// signature means.
  std::size_t add(std::string_view pattern);

  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }
  const std::string& pattern(std::size_t index) const {
    return patterns_[index];
  }

  /// Builds the automaton. Idempotent; add() after compile() marks the set
  /// dirty and the next compile()/scan rebuilds. Scans self-compile, so
  /// calling this explicitly is only needed to front-load the cost (or to
  /// keep later scans const-thread-safe: compiled sets may be scanned from
  /// many threads, a dirty set may not).
  void compile();

  /// One pass over `data`: sets hits[i] = 1 for every pattern i that occurs
  /// in `data` (hits is assigned to size() zeros first). Presence only —
  /// exactly the data.find(pattern) != npos predicate the per-pattern loops
  /// computed, for all patterns at once.
  void match_presence(std::string_view data,
                      std::vector<std::uint8_t>& hits) const;

  /// Convenience: lowest pattern index present in `data`, or npos. "Lowest
  /// index" mirrors first-hit-wins of the per-pattern loop it replaces.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first_match(std::string_view data) const;

 private:
  void ensure_compiled() const;

  std::vector<std::string> patterns_;

  // Compiled form. `next_` is the dense DFA transition table (node * 256 +
  // byte -> node), `out_` the pattern indices ending at each node, and
  // `out_link_` the nearest suffix node with output (-1 when none) so a
  // visit enumerates all patterns ending at the current position without
  // merged output lists.
  mutable std::vector<std::int32_t> next_;
  mutable std::vector<std::vector<std::uint32_t>> out_;
  mutable std::vector<std::int32_t> out_link_;
  mutable bool compiled_ = false;
};

}  // namespace cyd::analysis
