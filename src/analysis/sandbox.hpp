#pragma once
// Dynamic analysis sandbox.
//
// Builds an isolated, fully instrumented world — one victim host, its own
// clock, its own (fake) internet — detonates a specimen, lets simulated
// time pass, pokes the environment the way a sandbox operator does (bait
// USB stick, bait documents), and distils the trace into a BehaviorReport.
// The environment-setup hook installs whatever program behaviours the world
// should know about (a fresh malware family object bound to the sandbox's
// simulation), mirroring how a real sandbox supplies a full OS image.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/stack.hpp"
#include "winsys/host.hpp"
#include "winsys/usb.hpp"

namespace cyd::analysis {

struct SandboxOptions {
  winsys::OsVersion os = winsys::OsVersion::kWinXp;
  /// The sandbox image is left deliberately soft so samples show themselves.
  std::vector<exploits::VulnId> vulnerabilities{
      exploits::VulnId::kMs10_046_Lnk, exploits::VulnId::kMs10_061_Spooler,
      exploits::VulnId::kMs10_073_Eop, exploits::VulnId::kMs10_092_TaskSched,
      exploits::VulnId::kAutorunEnabled, exploits::VulnId::kWpadNetbios,
      exploits::VulnId::kOpenNetworkShares};
  bool internet_access = true;
  /// Plug a bait stick one virtual hour in (catches USB-arming behaviour).
  bool bait_usb = true;
  /// Seed bait documents (catches scanners/leakers).
  bool bait_documents = true;
  std::uint64_t seed = 0x5a17d;
};

struct BehaviorReport {
  bool executed = false;
  winsys::ExecResult::Status exec_status =
      winsys::ExecResult::Status::kNoSuchFile;

  std::vector<std::string> files_written;
  std::vector<std::string> files_deleted;
  std::vector<std::string> services_installed;
  std::vector<std::string> drivers_loaded;
  std::vector<std::string> drivers_rejected;
  std::set<std::string> domains_contacted;
  std::vector<std::string> usb_payloads;  // files the sample put on the bait
  std::map<std::string, std::size_t> action_counts;
  bool touched_mbr = false;
  bool armed_bait_usb = false;

  /// 0..100 heuristic verdict from generic behaviours only (no family
  /// knowledge): system-dir drops, persistence, kernel drivers, raw disk,
  /// exploit-shaped artifacts, C2 traffic.
  double suspicion_score() const;
  std::string summary() const;
};

class Sandbox {
 public:
  using EnvironmentSetup = std::function<void(
      sim::Simulation&, net::Network&, winsys::ProgramRegistry&,
      winsys::Host&)>;

  explicit Sandbox(SandboxOptions options = {},
                   EnvironmentSetup setup = nullptr);

  winsys::Host& host() { return *host_; }
  sim::Simulation& simulation() { return sim_; }
  winsys::ProgramRegistry& programs() { return programs_; }
  net::Network& network() { return network_; }

  /// Detonates specimen bytes and observes for `observation` virtual time.
  /// Can be called repeatedly; each run appends to the same world (use a
  /// fresh Sandbox for independent detonations).
  BehaviorReport detonate(const common::Bytes& specimen,
                          sim::Duration observation = 48 * sim::kHour);

 private:
  SandboxOptions options_;
  sim::Simulation sim_;
  winsys::ProgramRegistry programs_;
  net::Network network_;
  std::unique_ptr<winsys::Host> host_;
  std::unique_ptr<winsys::UsbDrive> bait_stick_;
  int run_counter_ = 0;
};

}  // namespace cyd::analysis
