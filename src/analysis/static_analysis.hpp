#pragma once
// Static dissection of simulated PE specimens.
//
// Reproduces the workflow behind the paper's Fig. 6: parse the container,
// walk sections and resources (entropy-scoring each), brute the single-byte
// XOR key of encrypted resources, recursively carve nested executables
// (Shamoon's wiper-inside-TrkSvr, driver-inside-wiper), extract printable
// strings, and judge the Authenticode signature against a trust store.

#include <cctype>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pe/image.hpp"
#include "pki/signing.hpp"

namespace cyd::analysis {

struct SectionInfo {
  std::string name;
  std::size_t size = 0;
  double entropy = 0.0;
  bool executable = false;
};

struct ResourceInfo {
  std::uint32_t id = 0;
  std::string name;
  std::size_t size = 0;
  double entropy = 0.0;
  bool xor_encrypted = false;
  /// Key recovered by brute force (independent of the header metadata).
  std::optional<std::uint8_t> recovered_xor_key;
  /// Set when the decrypted payload is itself a PE; holds its dissection.
  std::unique_ptr<struct StaticReport> embedded;
};

struct StaticReport {
  bool parse_ok = false;
  std::string parse_error;

  pe::Machine machine = pe::Machine::kX86;
  std::string original_filename;
  std::string program_id;
  std::string version_info;
  std::int64_t build_timestamp = 0;
  std::size_t total_size = 0;

  std::vector<SectionInfo> sections;
  std::vector<ResourceInfo> resources;
  std::vector<std::string> imports;  // "dll!function"
  std::vector<std::string> strings;  // printable runs

  pki::SignatureVerdict signature;
  /// Heuristic: any section/resource with entropy above the packer line.
  bool looks_packed = false;

  /// Depth-first count of embedded executables (self excluded).
  std::size_t embedded_pe_count() const;
  /// One-line triage summary.
  std::string summary() const;
};

/// Visits every printable ASCII run of at least `min_length` in `data`
/// without allocating: `cb` receives a std::string_view aliasing `data`
/// (valid only for the duration of the call). This is the hot-path form —
/// feature extraction interns the views directly. Keep `extract_strings`
/// for callers that need owned copies.
template <class Cb>
void for_each_string(std::string_view data, std::size_t min_length, Cb&& cb) {
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(data[i]);
    if (std::isprint(c) && c != '\t') {
      if (run_len == 0) run_start = i;
      ++run_len;
    } else {
      if (run_len >= min_length) cb(data.substr(run_start, run_len));
      run_len = 0;
    }
  }
  if (run_len >= min_length) cb(data.substr(run_start, run_len));
}

/// Printable ASCII runs of at least `min_length`, copied out. Compatibility
/// shim over for_each_string for callers that keep the strings around
/// (dissect reports, tests); new scanning code should visit in place.
std::vector<std::string> extract_strings(std::string_view data,
                                         std::size_t min_length = 6);

/// Brute-forces a single-byte XOR key by looking for a known plaintext
/// marker (default: the SPE magic) in the decryption of `data`.
std::optional<std::uint8_t> brute_xor_key(
    std::string_view data, std::string_view marker = "SPE1");

/// Full static dissection. `store`/`trust` supply the verifier's view of
/// the PKI (an analyst workstation); `max_depth` bounds recursive carving.
StaticReport dissect(std::string_view bytes, const pki::CertStore& store,
                     const pki::TrustStore& trust, sim::TimePoint now,
                     int max_depth = 4);

}  // namespace cyd::analysis
