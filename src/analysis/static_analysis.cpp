#include "analysis/static_analysis.hpp"

#include <cctype>

namespace cyd::analysis {
namespace {

constexpr double kPackerEntropyLine = 7.2;

}  // namespace

std::vector<std::string> extract_strings(std::string_view data,
                                         std::size_t min_length) {
  std::vector<std::string> out;
  for_each_string(data, min_length,
                  [&](std::string_view s) { out.emplace_back(s); });
  return out;
}

std::optional<std::uint8_t> brute_xor_key(std::string_view data,
                                          std::string_view marker) {
  if (data.size() < marker.size() || marker.empty()) return std::nullopt;
  for (int key = 0; key < 256; ++key) {
    // Decrypt just enough of the head to test for the marker (plus slack in
    // case the marker is not at offset zero).
    const std::size_t probe_len =
        std::min(data.size(), marker.size() + 64);
    const auto probe = common::xor_cipher(data.substr(0, probe_len),
                                          static_cast<std::uint8_t>(key));
    if (probe.find(marker) != std::string::npos) {
      return static_cast<std::uint8_t>(key);
    }
  }
  return std::nullopt;
}

std::size_t StaticReport::embedded_pe_count() const {
  std::size_t count = 0;
  for (const auto& res : resources) {
    if (res.embedded) count += 1 + res.embedded->embedded_pe_count();
  }
  return count;
}

std::string StaticReport::summary() const {
  if (!parse_ok) return "unparseable: " + parse_error;
  std::string out = original_filename.empty() ? "<unnamed>" : original_filename;
  out += " [" + std::string(pe::to_string(machine)) + "]";
  out += " sections=" + std::to_string(sections.size());
  out += " resources=" + std::to_string(resources.size());
  out += " embedded-PEs=" + std::to_string(embedded_pe_count());
  out += " signature=" + std::string(pki::to_string(signature.status));
  if (looks_packed) out += " PACKED";
  return out;
}

StaticReport dissect(std::string_view bytes, const pki::CertStore& store,
                     const pki::TrustStore& trust, sim::TimePoint now,
                     int max_depth) {
  StaticReport report;
  report.total_size = bytes.size();

  pe::Image image;
  try {
    image = pe::Image::parse(bytes);
  } catch (const pe::ParseError& e) {
    report.parse_error = e.what();
    return report;
  }
  report.parse_ok = true;
  report.machine = image.machine;
  report.original_filename = image.original_filename;
  report.program_id = image.program_id;
  report.version_info = image.version_info;
  report.build_timestamp = image.build_timestamp;

  for (const auto& section : image.sections) {
    SectionInfo info;
    info.name = section.name;
    info.size = section.data.size();
    info.entropy = common::shannon_entropy(section.data);
    info.executable = section.executable;
    if (info.entropy > kPackerEntropyLine && info.size > 256) {
      report.looks_packed = true;
    }
    report.sections.push_back(info);
    for (auto& s : extract_strings(section.data)) {
      report.strings.push_back(std::move(s));
    }
  }

  for (const auto& resource : image.resources) {
    ResourceInfo info;
    info.id = resource.id;
    info.name = resource.name;
    info.size = resource.data.size();
    info.entropy = common::shannon_entropy(resource.data);
    info.xor_encrypted = resource.xor_encrypted;

    // The analyst does not trust header metadata: recover the key by brute
    // force, falling back to the stored plaintext for unencrypted entries.
    common::Bytes payload = resource.data;
    if (auto key = brute_xor_key(resource.data)) {
      info.recovered_xor_key = key;
      payload = common::xor_cipher(resource.data, *key);
    }
    if (max_depth > 0 && pe::Image::looks_like_pe(payload)) {
      info.embedded = std::make_unique<StaticReport>(
          dissect(payload, store, trust, now, max_depth - 1));
    } else {
      for (auto& s : extract_strings(payload)) {
        report.strings.push_back(std::move(s));
      }
    }
    report.resources.push_back(std::move(info));
  }

  for (const auto& import : image.imports) {
    for (const auto& fn : import.functions) {
      report.imports.push_back(import.dll + "!" + fn);
    }
  }

  report.signature = pki::verify_image(image, store, trust, now);
  return report;
}

}  // namespace cyd::analysis
