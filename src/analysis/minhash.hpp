#pragma once
// MinHash sketches + LSH banding: sublinear candidate generation for
// pile-scale attribution.
//
// The exact similarity kernel is O(n²) in the pile size — a million-
// specimen pile is 5·10¹¹ pairs, unreachable no matter how fast one pair
// scores. This module adds the standard two-stage answer in front of it:
//
//   1. sketch   — per specimen, a MinHash signature over its interned
//                 feature ids (class-tagged, so a string and a section
//                 name that intern to the same id never alias), under a
//                 fixed seed schedule: bit-identical run-to-run and
//                 thread-count-independent by construction;
//   2. band     — the signature splits into `bands` bands of `rows` hash
//                 rows; two specimens become a *candidate pair* iff some
//                 band matches exactly. P[candidate] = 1-(1-s^rows)^bands
//                 for true Jaccard s: an S-curve that passes near-all
//                 genuinely similar pairs and near-no background pairs;
//   3. confirm  — candidates (and only candidates) are scored by the
//                 exact merge-intersection similarity(); edges at or above
//                 the clustering threshold stream straight into the
//                 smallest-root union-find, so clustering never holds a
//                 pair list proportional to n², let alone the n×n matrix.
//
// The candidate stage is recall-bounded, not bit-identical: a pair whose
// every band misses is never scored, so an LSH clustering can differ from
// the exact one with probability bounded by the banding curve (see
// DESIGN.md §7). Everything *after* candidate generation is the exact
// kernel — no approximate scores ever enter the union-find — and the
// candidate set itself is deterministic for a given pile and params.
// bench/attribution_scaling drives both paths on synthetic kit->variant
// piles and gates recall >= 0.98 against the exact edge set.

#include <cstdint>
#include <vector>

#include "analysis/similarity.hpp"

namespace cyd::analysis {

/// Banding geometry + seed schedule. The defaults (32 bands x 4 rows =
/// 128 hashes) put the S-curve knee near Jaccard 0.4: a pair at s = 0.6
/// survives with p ~ 0.99, at s = 0.2 with p ~ 0.05. Sketch cost and
/// candidate volume both scale with hashes(), so shrink bands for speed
/// or grow rows to sharpen the knee rightward.
struct MinHashParams {
  std::size_t bands = 32;
  std::size_t rows = 4;
  /// Base of the fixed per-row seed schedule (row k hashes with
  /// sim::derive_seed(seed, k)). Changing it permutes every sketch
  /// coherently; sketches from different seeds are not comparable.
  std::uint64_t seed = 0x5ca7'c4ed'5eedull;

  std::size_t hashes() const { return bands * rows; }
};

/// Signature slot of a specimen with no features at all: every featureless
/// specimen sketches to all-kEmptySlot, so they band together and the
/// exact confirm stage scores them 1.0 (vacuously identical feature
/// sets) — the same verdict the exact path gives.
inline constexpr std::uint64_t kEmptySketchSlot = ~std::uint64_t{0};

/// One specimen's MinHash signature: hashes() slots, row-major by band.
struct MinHashSketch {
  std::vector<std::uint64_t> sig;
};

/// Sketches one specimen's feature classes. Pure function of (features,
/// params) — no RNG state, no globals — which is what lets the pile stage
/// fan out over the sweep pool bit-identically at any worker count.
MinHashSketch minhash_sketch(const SpecimenFeatures& features,
                             const MinHashParams& params = {});

/// Candidate pair of pile indices, i < j.
struct CandidatePair {
  std::uint32_t i = 0;
  std::uint32_t j = 0;

  friend bool operator==(const CandidatePair&, const CandidatePair&) = default;
  friend bool operator<(const CandidatePair& a, const CandidatePair& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  }
};

/// All pairs of specimens whose sketches collide in at least one band,
/// deduplicated and sorted lexicographically. Band probing fans out over
/// the sweep pool (one task per band); the merged result is sorted, so it
/// is identical at any worker count. Requires sketches.size() < 2³².
std::vector<CandidatePair> lsh_candidate_pairs(
    const std::vector<MinHashSketch>& sketches,
    const MinHashParams& params = {});

/// Telemetry of one two-stage clustering run.
struct LshStats {
  std::uint64_t total_pairs = 0;      // n(n-1)/2 — what the exact path scores
  std::uint64_t candidate_pairs = 0;  // pairs that reached the exact kernel
  std::uint64_t confirmed_edges = 0;  // candidates at/above the threshold

  /// How many exact-kernel invocations banding saved: total/candidates.
  double reduction() const {
    return candidate_pairs == 0
               ? static_cast<double>(total_pairs)
               : static_cast<double>(total_pairs) /
                     static_cast<double>(candidate_pairs);
  }
};

/// Two-stage single-linkage clustering over pre-extracted features:
/// sketch -> band -> exact-confirm candidates -> stream confirmed edges
/// into the union-find. Returns canonical index groups (same contract as
/// cluster_feature_indices); fills `stats` when non-null.
std::vector<std::vector<std::size_t>> cluster_features_lsh(
    const std::vector<SpecimenFeatures>& features, double threshold,
    const MinHashParams& params = {}, LshStats* stats = nullptr);

/// Label-level entry point mirroring cluster_specimens: serial extraction
/// into one shared dict, then the two-stage pipeline above.
std::vector<std::vector<std::string>> cluster_specimens_lsh(
    const std::vector<LabelledSpecimen>& specimens, double threshold,
    const MinHashParams& params = {}, LshStats* stats = nullptr);

}  // namespace cyd::analysis
