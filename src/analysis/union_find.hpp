#pragma once
// Smallest-root union-find shared by the clustering entry points.
//
// Single-linkage family clustering is connectivity over above-threshold
// similarity edges. Union by *smallest root index* makes the structure
// canonical: a component's representative is always its earliest member,
// so emitting groups by scanning elements in index order yields clusters
// ordered by first member with members in input order — no matter which
// edge happened to merge last, and no matter what order edges stream in.
// That is the invariant the exact path has always had; the LSH candidate
// path reuses it so both pipelines report identically-shaped clusterings.

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

namespace cyd::analysis {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t size() const { return parent_.size(); }

  /// Root of x's component, with path halving. Roots are always the
  /// smallest member index of their component.
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of a and b; the smaller root wins.
  void unite(std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) return;
    parent_[std::max(ra, rb)] = std::min(ra, rb);
  }

  /// Components in canonical order: groups ordered by their earliest
  /// member, members in index order.
  std::vector<std::vector<std::size_t>> groups() {
    std::vector<std::vector<std::size_t>> out;
    std::vector<std::size_t> group_of(parent_.size(),
                                      static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < parent_.size(); ++i) {
      const std::size_t root = find(i);
      if (group_of[root] == static_cast<std::size_t>(-1)) {
        group_of[root] = out.size();
        out.emplace_back();
      }
      out[group_of[root]].push_back(i);
    }
    return out;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace cyd::analysis
