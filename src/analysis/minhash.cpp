#include "analysis/minhash.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/union_find.hpp"
#include "sim/sweep.hpp"

namespace cyd::analysis {
namespace {

/// SplitMix64 finalizer: the row hash is mix64(key ^ row_seed). Strong
/// enough avalanche that the min over a feature set behaves like an
/// independent uniform permutation per row, cheap enough that a sketch is
/// features x hashes() of these and nothing else.
std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebull;
  return x ^ (x >> 31);
}

/// Class tags keep the three feature classes disjoint in hash space: the
/// dict interns one id per distinct *string*, so without the tag a
/// section named ".text" and a printable string ".text" would collide
/// into one sketch element even though the exact kernel scores them in
/// separate classes.
constexpr std::uint64_t kStringTag = 0;
constexpr std::uint64_t kImportTag = 1;
constexpr std::uint64_t kSectionTag = 2;

void fold_class(const std::vector<FeatureId>& ids, std::uint64_t tag,
                const std::vector<std::uint64_t>& seeds,
                std::vector<std::uint64_t>& sig) {
  for (const FeatureId id : ids) {
    const std::uint64_t key = (id << 2) | tag;
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      sig[k] = std::min(sig[k], mix64(key ^ seeds[k]));
    }
  }
}

/// The fixed per-row seed schedule for `params`.
std::vector<std::uint64_t> row_seeds(const MinHashParams& params) {
  std::vector<std::uint64_t> seeds(params.hashes());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    seeds[k] = sim::derive_seed(params.seed, k);
  }
  return seeds;
}

/// FNV-1a over one band's rows plus the band index, so identical row
/// values in different bands land in different buckets.
std::uint64_t band_hash(const std::uint64_t* rows, std::size_t count,
                        std::size_t band) {
  std::uint64_t h = 14695981039346656037ull ^ band;
  for (std::size_t r = 0; r < count; ++r) {
    h = (h ^ rows[r]) * 1099511628211ull;
  }
  return h;
}

}  // namespace

MinHashSketch minhash_sketch(const SpecimenFeatures& features,
                             const MinHashParams& params) {
  const auto seeds = row_seeds(params);
  MinHashSketch sketch;
  sketch.sig.assign(params.hashes(), kEmptySketchSlot);
  fold_class(features.strings, kStringTag, seeds, sketch.sig);
  fold_class(features.imports, kImportTag, seeds, sketch.sig);
  fold_class(features.section_names, kSectionTag, seeds, sketch.sig);
  return sketch;
}

std::vector<CandidatePair> lsh_candidate_pairs(
    const std::vector<MinHashSketch>& sketches,
    const MinHashParams& params) {
  const std::size_t n = sketches.size();
  if (n < 2) return {};
  // One probe task per band: bucket every specimen by its band hash, emit
  // all intra-bucket pairs. Each band owns its output vector, so the
  // fan-out is synchronisation-free; the merged result is sorted and
  // deduplicated below, which erases both the band order and the bucket
  // iteration order from the final answer.
  std::vector<std::size_t> bands(params.bands);
  for (std::size_t b = 0; b < bands.size(); ++b) bands[b] = b;
  const auto per_band = sim::Sweep::map_items(bands, [&](std::size_t band) {
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    buckets.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint64_t h = band_hash(
          sketches[s].sig.data() + band * params.rows, params.rows, band);
      buckets[h].push_back(static_cast<std::uint32_t>(s));
    }
    std::vector<CandidatePair> pairs;
    for (const auto& [hash, members] : buckets) {
      if (members.size() < 2) continue;
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          pairs.push_back({members[a], members[b]});
        }
      }
    }
    return pairs;
  });

  std::size_t total = 0;
  for (const auto& pairs : per_band) total += pairs.size();
  std::vector<CandidatePair> merged;
  merged.reserve(total);
  for (const auto& pairs : per_band) {
    merged.insert(merged.end(), pairs.begin(), pairs.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

std::vector<std::vector<std::size_t>> cluster_features_lsh(
    const std::vector<SpecimenFeatures>& features, double threshold,
    const MinHashParams& params, LshStats* stats) {
  const std::size_t n = features.size();
  // Stage 1: sketches, one sweep task per specimen.
  const auto sketches = sim::Sweep::map_items(
      features,
      [&](const SpecimenFeatures& f) { return minhash_sketch(f, params); });
  // Stage 2: banding.
  const auto candidates = lsh_candidate_pairs(sketches, params);
  // Stage 3: exact confirmation of candidates only, swept in blocks, then
  // a serial fold of confirmed edges into the union-find. Scores are the
  // exact kernel's doubles — the candidate stage decides *which* pairs get
  // scored, never what a score is.
  std::vector<double> scores(candidates.size());
  constexpr std::size_t kConfirmBlock = 2048;
  const std::size_t blocks =
      (candidates.size() + kConfirmBlock - 1) / kConfirmBlock;
  sim::default_sweep_runner().run_indexed(blocks, [&](std::size_t b) {
    const std::size_t lo = b * kConfirmBlock;
    const std::size_t hi = std::min(lo + kConfirmBlock, candidates.size());
    for (std::size_t k = lo; k < hi; ++k) {
      scores[k] = similarity(features[candidates[k].i], features[candidates[k].j]);
    }
  });
  UnionFind components(n);
  std::uint64_t confirmed = 0;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    if (scores[k] < threshold) continue;
    ++confirmed;
    components.unite(candidates[k].i, candidates[k].j);
  }
  if (stats != nullptr) {
    stats->total_pairs =
        n < 2 ? 0 : static_cast<std::uint64_t>(n) * (n - 1) / 2;
    stats->candidate_pairs = candidates.size();
    stats->confirmed_edges = confirmed;
  }
  return components.groups();
}

std::vector<std::vector<std::string>> cluster_specimens_lsh(
    const std::vector<LabelledSpecimen>& specimens, double threshold,
    const MinHashParams& params, LshStats* stats) {
  FeatureDict dict;
  const auto features = extract_pile(specimens, dict);
  std::vector<std::vector<std::string>> out;
  for (const auto& group : cluster_features_lsh(features, threshold, params, stats)) {
    auto& labels = out.emplace_back();
    labels.reserve(group.size());
    for (const std::size_t idx : group) labels.push_back(specimens[idx].label);
  }
  return out;
}

}  // namespace cyd::analysis
