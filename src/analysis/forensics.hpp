#pragma once
// Post-incident forensics (trend §V-F: suiciding malware).
//
// Measures what an investigator can still recover after an infection ended:
// live artifacts matching indicators, deleted-but-recoverable tombstones,
// and shredded remnants (existence provable, content gone). The C&C-side
// variant inspects a seized server for logs, database rows and undelivered
// entries — the material LogWiper.sh and the 30-minute purge are built to
// destroy.

#include <string>
#include <vector>

#include "cnc/server.hpp"
#include "winsys/host.hpp"

namespace cyd::analysis {

struct HostForensics {
  std::vector<std::string> live_artifacts;       // paths still on disk
  std::vector<std::string> recovered_files;      // carved from tombstones
  std::size_t shredded_remnants = 0;             // unrecoverable traces
  std::size_t event_log_mentions = 0;            // AV/system log entries

  std::size_t total_evidence() const {
    return live_artifacts.size() + recovered_files.size() +
           event_log_mentions;
  }
  /// Fraction of once-present indicator files whose *content* survives.
  double recoverability() const;
};

/// Sweeps disk, tombstones and event log for the indicator substrings
/// (matched case-insensitively against paths and log text).
HostForensics examine_host(const winsys::Host& host,
                           const std::vector<std::string>& indicators);

struct ServerForensics {
  bool logs_wiped = false;
  std::size_t access_log_lines = 0;
  std::size_t database_rows = 0;
  std::size_t entries_on_disk = 0;     // stolen-data files still present
  std::size_t client_identities = 0;   // rows naming victims

  std::size_t total_evidence() const {
    return access_log_lines + database_rows + entries_on_disk;
  }
};

/// What seizing a C&C box yields.
ServerForensics examine_server(const cnc::CncServer& server);

}  // namespace cyd::analysis
