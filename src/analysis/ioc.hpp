#pragma once
// Indicator-of-compromise extraction and rule generation.
//
// Turns a sandbox BehaviorReport into the shareable indicators real CERT
// advisories carry — dropped file names, contacted domains, created
// services — and compiles them into a YaraLite ruleset plus host-sweep
// indicators, closing the loop from dissection to detection.

#include <set>
#include <string>
#include <vector>

#include "analysis/sandbox.hpp"
#include "analysis/yara.hpp"

namespace cyd::analysis {

struct IocSet {
  std::string label;  // e.g. "W32.Disttrack"
  std::set<std::string> file_names;   // basenames of dropped artifacts
  std::set<std::string> domains;
  std::set<std::string> service_names;

  std::size_t size() const {
    return file_names.size() + domains.size() + service_names.size();
  }
  /// Flat indicator list for forensics sweeps.
  std::vector<std::string> indicators() const;
};

/// Distils indicators from dynamic-analysis output. Stock Windows paths and
/// sandbox landmarks are filtered out so the set stays actionable.
IocSet extract_iocs(const BehaviorReport& report, std::string label);

/// Compiles filename indicators into a one-rule RuleSet that flags any byte
/// stream referencing them (droppers embed their artifact names).
RuleSet compile_rules(const IocSet& iocs);

}  // namespace cyd::analysis
