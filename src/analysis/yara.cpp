#include "analysis/yara.hpp"

#include <sstream>
#include <stdexcept>

namespace cyd::analysis {
namespace {

std::string trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  std::size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("yara:" + std::to_string(line) + ": " +
                              message);
}

/// Parses `{ ff d8 ff e0 }` into raw bytes.
common::Bytes parse_hex_pattern(const std::string& body, int line) {
  std::string hex;
  for (char c : body) {
    if (c == ' ' || c == '\t') continue;
    hex.push_back(c);
  }
  try {
    return common::from_hex(hex);
  } catch (const std::invalid_argument&) {
    fail(line, "bad hex pattern: " + body);
  }
}

}  // namespace

namespace {

bool condition_met(const YaraRule& rule, int hits) {
  switch (rule.condition) {
    case YaraCondition::kAny: return hits >= 1;
    case YaraCondition::kAll:
      return hits == static_cast<int>(rule.strings.size());
    case YaraCondition::kAtLeast: return hits >= rule.at_least;
  }
  return false;
}

}  // namespace

bool YaraRule::matches(std::string_view data) const {
  if (strings.empty()) return false;
  int hits = 0;
  for (const auto& s : strings) {
    if (data.find(s.pattern) != std::string_view::npos) ++hits;
  }
  return condition_met(*this, hits);
}

void RuleSet::add(YaraRule rule) {
  first_pattern_.push_back(patterns_.size());
  for (const auto& s : rule.strings) {
    patterns_.add(s.pattern);
  }
  rules_.push_back(std::move(rule));
}

RuleSet RuleSet::parse(const std::string& text) {
  RuleSet set;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;

  enum class Section { kNone, kMeta, kStrings, kCondition };
  std::optional<YaraRule> current;
  Section section = Section::kNone;

  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(raw);
    if (line.empty() || line.rfind("//", 0) == 0) continue;

    if (line.rfind("rule ", 0) == 0) {
      if (current) fail(line_no, "nested rule");
      std::string name = trim(line.substr(5));
      if (!name.empty() && name.back() == '{') name = trim(name.substr(0, name.size() - 1));
      if (name.empty()) fail(line_no, "rule without a name");
      current = YaraRule{};
      current->name = name;
      section = Section::kNone;
      continue;
    }
    if (line == "}") {
      if (!current) fail(line_no, "unmatched }");
      if (current->strings.empty()) fail(line_no, "rule has no strings");
      set.add(std::move(*current));
      current.reset();
      continue;
    }
    if (!current) fail(line_no, "statement outside rule: " + line);

    if (line.rfind("meta:", 0) == 0) {
      section = Section::kMeta;
      line = trim(line.substr(5));
      if (line.empty()) continue;
    } else if (line.rfind("strings:", 0) == 0) {
      section = Section::kStrings;
      continue;
    } else if (line.rfind("condition:", 0) == 0) {
      section = Section::kCondition;
      line = trim(line.substr(10));
      if (line.empty()) fail(line_no, "empty condition");
    }

    switch (section) {
      case Section::kMeta: {
        const auto eq = line.find('=');
        if (eq == std::string::npos) fail(line_no, "meta needs key = value");
        current->meta[trim(line.substr(0, eq))] = trim(line.substr(eq + 1));
        break;
      }
      case Section::kStrings: {
        // $id = "literal"   or   $id = { hex }
        if (line.empty() || line[0] != '$') {
          fail(line_no, "string id must start with $");
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos) fail(line_no, "string needs = pattern");
        YaraString entry;
        entry.id = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
          entry.pattern = value.substr(1, value.size() - 2);
        } else if (value.size() >= 2 && value.front() == '{' &&
                   value.back() == '}') {
          entry.pattern =
              parse_hex_pattern(value.substr(1, value.size() - 2), line_no);
        } else {
          fail(line_no, "pattern must be \"text\" or { hex }");
        }
        if (entry.pattern.empty()) fail(line_no, "empty pattern");
        current->strings.push_back(std::move(entry));
        break;
      }
      case Section::kCondition: {
        if (line == "any of them") {
          current->condition = YaraCondition::kAny;
        } else if (line == "all of them") {
          current->condition = YaraCondition::kAll;
        } else {
          // "N of them"
          std::istringstream cond(line);
          int n = 0;
          std::string of, them;
          if (cond >> n >> of >> them && of == "of" && them == "them" &&
              n >= 1) {
            current->condition = YaraCondition::kAtLeast;
            current->at_least = n;
          } else {
            fail(line_no, "unsupported condition: " + line);
          }
        }
        break;
      }
      case Section::kNone:
        fail(line_no, "statement before any section: " + line);
    }
  }
  if (current) fail(line_no, "unterminated rule " + current->name);
  return set;
}

std::vector<YaraMatch> RuleSet::scan(std::string_view data) const {
  std::vector<YaraMatch> out;
  // One automaton pass answers presence for every pattern of every rule;
  // per-rule evaluation then just counts bits over its own span.
  std::vector<std::uint8_t> present;
  patterns_.match_presence(data, present);
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const auto& rule = rules_[r];
    if (rule.strings.empty()) continue;
    int hits = 0;
    const std::size_t first = first_pattern_[r];
    for (std::size_t k = 0; k < rule.strings.size(); ++k) {
      hits += present[first + k];
    }
    if (condition_met(rule, hits)) {
      YaraMatch match;
      match.rule = rule.name;
      if (auto it = rule.meta.find("family"); it != rule.meta.end()) {
        match.family = it->second;
      }
      out.push_back(std::move(match));
    }
  }
  return out;
}

std::vector<HostScanHit> RuleSet::scan_host(const winsys::Host& host) const {
  std::vector<HostScanHit> out;
  for (const auto& path : host.fs().all_files()) {
    const auto content = host.fs().read_file(path);
    if (!content) continue;
    for (const auto& match : scan(*content)) {
      out.push_back(HostScanHit{path, match.rule, match.family});
    }
  }
  return out;
}

}  // namespace cyd::analysis
