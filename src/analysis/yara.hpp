#pragma once
// YaraLite: signature rules over byte content.
//
// The analyst-side counterpart of the malware modules: rules carry named
// string/hex patterns and a condition (any / all / at-least-N), and can be
// written in a compact textual DSL so rule feeds can travel as data:
//
//   rule Stuxnet_Dropper {
//     meta: family = stuxnet
//     strings:
//       $mz   = "SPE1"
//       $name = "~wtr4132"
//       $hex  = { ff d8 ff e0 }
//     condition: 2 of them
//   }
//
// scan() evaluates rules over raw bytes; scan_host() sweeps a simulated
// host's filesystem the way an on-demand AV scan would.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "winsys/host.hpp"

namespace cyd::analysis {

struct YaraString {
  std::string id;        // "$name"
  common::Bytes pattern; // raw bytes to find
};

enum class YaraCondition : std::uint8_t { kAny, kAll, kAtLeast };

struct YaraRule {
  std::string name;
  std::map<std::string, std::string> meta;  // family, severity, ...
  std::vector<YaraString> strings;
  YaraCondition condition = YaraCondition::kAny;
  int at_least = 1;  // used when condition == kAtLeast

  /// True when the rule fires on `data`.
  bool matches(std::string_view data) const;
};

struct YaraMatch {
  std::string rule;
  std::string family;  // meta "family" if present
};

struct HostScanHit {
  winsys::Path path;
  std::string rule;
  std::string family;
};

class RuleSet {
 public:
  void add(YaraRule rule);
  const std::vector<YaraRule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }

  /// Parses the DSL; throws std::invalid_argument with a line-tagged message
  /// on malformed input.
  static RuleSet parse(const std::string& text);

  std::vector<YaraMatch> scan(std::string_view data) const;
  /// Scans every file on every mounted volume of `host`.
  std::vector<HostScanHit> scan_host(const winsys::Host& host) const;

 private:
  std::vector<YaraRule> rules_;
};

}  // namespace cyd::analysis
