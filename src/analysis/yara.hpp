#pragma once
// YaraLite: signature rules over byte content.
//
// The analyst-side counterpart of the malware modules: rules carry named
// string/hex patterns and a condition (any / all / at-least-N), and can be
// written in a compact textual DSL so rule feeds can travel as data:
//
//   rule Stuxnet_Dropper {
//     meta: family = stuxnet
//     strings:
//       $mz   = "SPE1"
//       $name = "~wtr4132"
//       $hex  = { ff d8 ff e0 }
//     condition: 2 of them
//   }
//
// scan() evaluates rules over raw bytes; scan_host() sweeps a simulated
// host's filesystem the way an on-demand AV scan would.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pattern_set.hpp"
#include "common/bytes.hpp"
#include "winsys/host.hpp"

namespace cyd::analysis {

struct YaraString {
  std::string id;        // "$name"
  common::Bytes pattern; // raw bytes to find
};

enum class YaraCondition : std::uint8_t { kAny, kAll, kAtLeast };

struct YaraRule {
  std::string name;
  std::map<std::string, std::string> meta;  // family, severity, ...
  std::vector<YaraString> strings;
  YaraCondition condition = YaraCondition::kAny;
  int at_least = 1;  // used when condition == kAtLeast

  /// True when the rule fires on `data`. One-off path (a substring search
  /// per pattern); RuleSet::scan runs all rules through one shared
  /// Aho–Corasick pass instead.
  bool matches(std::string_view data) const;
};

struct YaraMatch {
  std::string rule;
  std::string family;  // meta "family" if present
};

struct HostScanHit {
  winsys::Path path;
  std::string rule;
  std::string family;
};

class RuleSet {
 public:
  void add(YaraRule rule);
  const std::vector<YaraRule>& rules() const { return rules_; }
  std::size_t size() const { return rules_.size(); }

  /// Parses the DSL; throws std::invalid_argument with a line-tagged message
  /// on malformed input.
  static RuleSet parse(const std::string& text);

  /// Evaluates every rule over `data` in one pass: all patterns of all
  /// rules live in one shared Aho–Corasick automaton, so the cost is
  /// O(bytes + matches), not O(rules × patterns × bytes). Results are
  /// identical to matching each rule separately, in rule order.
  std::vector<YaraMatch> scan(std::string_view data) const;
  /// Scans every file on every mounted volume of `host`.
  std::vector<HostScanHit> scan_host(const winsys::Host& host) const;

 private:
  std::vector<YaraRule> rules_;
  // One pattern index per (rule, string), in rule order; spans_[r] is the
  // offset of rule r's first pattern inside patterns_ (string counts give
  // the extent). Rebuilt incrementally by add().
  PatternSet patterns_;
  std::vector<std::size_t> first_pattern_;  // rule -> first pattern index
};

}  // namespace cyd::analysis
