#include "analysis/forensics.hpp"

#include "common/bytes.hpp"

namespace cyd::analysis {
namespace {

bool matches_any(const std::string& text,
                 const std::vector<std::string>& indicators) {
  const std::string lower = common::to_lower(text);
  for (const auto& indicator : indicators) {
    if (lower.find(common::to_lower(indicator)) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

double HostForensics::recoverability() const {
  const double with_content = static_cast<double>(live_artifacts.size() +
                                                  recovered_files.size());
  const double total = with_content + static_cast<double>(shredded_remnants);
  return total == 0.0 ? 0.0 : with_content / total;
}

HostForensics examine_host(const winsys::Host& host,
                           const std::vector<std::string>& indicators) {
  HostForensics report;
  // Live files (note: forensics reads the raw filesystem, not the
  // rootkit-filtered view — the investigator pulled the disk).
  for (const auto& path : host.fs().all_files()) {
    if (matches_any(path.str(), indicators)) {
      report.live_artifacts.push_back(path.str());
    }
  }
  // Deleted remnants, volume by volume.
  for (char letter : host.fs().mounted_letters()) {
    const winsys::Volume* volume = host.fs().volume(letter);
    if (volume == nullptr) continue;
    for (const auto& stone : volume->tombstones()) {
      if (!matches_any(stone.rel_path, indicators)) continue;
      if (stone.shredded) {
        ++report.shredded_remnants;
      } else {
        report.recovered_files.push_back(stone.rel_path);
      }
    }
  }
  // Event-log mentions survive unless the log itself was cleared.
  for (const auto& entry : host.event_log()) {
    if (matches_any(entry.message, indicators)) {
      ++report.event_log_mentions;
    }
  }
  return report;
}

ServerForensics examine_server(const cnc::CncServer& server) {
  ServerForensics report;
  report.logs_wiped = server.logs_wiped();
  report.access_log_lines = server.access_log().size();
  report.database_rows = server.db().total_rows();
  report.entries_on_disk = server.entries().size();
  report.client_identities = server.known_clients().size();
  return report;
}

}  // namespace cyd::analysis
