#pragma once
// Specimen similarity and family clustering.
//
// The paper leans on code-sharing evidence for attribution: "Duqu shares a
// lot of code with Stuxnet", "Flame and Gauss exhibit striking similarities
// and ... come from the same factories" (§I). This module reproduces that
// analyst workflow: extract comparable features from two specimens
// (printable strings, import sets, section names — recursively through
// carved resources) and score their overlap, then cluster a specimen pile
// into families-of-origin by the same measure.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace cyd::analysis {

/// Comparable feature set of one specimen.
struct SpecimenFeatures {
  std::set<std::string> strings;     // printable runs (len >= 6)
  std::set<std::string> imports;    // "dll!function"
  std::set<std::string> section_names;

  std::size_t size() const {
    return strings.size() + imports.size() + section_names.size();
  }
};

/// Extracts features from raw bytes, descending into carvable resources.
SpecimenFeatures extract_features(std::string_view bytes, int max_depth = 4);

/// Jaccard-style similarity in [0,1]; imports and section names are
/// weighted above incidental strings (shared engineering beats shared
/// vocabulary). Weights are renormalized over the feature classes that are
/// non-empty in at least one operand, so similarity(x, x) == 1.0 even for
/// specimens missing whole classes; two entirely featureless specimens
/// compare as 1.0 (vacuously identical feature sets).
double similarity(const SpecimenFeatures& a, const SpecimenFeatures& b);
double specimen_similarity(std::string_view a, std::string_view b);

struct LabelledSpecimen {
  std::string label;
  common::Bytes bytes;
};

/// Single-linkage clustering at `threshold`; returns groups of labels.
/// Two specimens land in one cluster iff a chain of pairwise similarities
/// above the threshold connects them — how analysts grew the
/// Stuxnet/Duqu ("Tilded") and Flame/Gauss platform families.
std::vector<std::vector<std::string>> cluster_specimens(
    const std::vector<LabelledSpecimen>& specimens, double threshold);

/// Full pairwise matrix (row-major, n x n) for reporting.
std::vector<double> similarity_matrix(
    const std::vector<LabelledSpecimen>& specimens);

}  // namespace cyd::analysis
