#pragma once
// Specimen similarity and family clustering.
//
// The paper leans on code-sharing evidence for attribution: "Duqu shares a
// lot of code with Stuxnet", "Flame and Gauss exhibit striking similarities
// and ... come from the same factories" (§I). This module reproduces that
// analyst workflow: extract comparable features from two specimens
// (printable strings, import sets, section names — recursively through
// carved resources) and score their overlap, then cluster a specimen pile
// into families-of-origin by the same measure.
//
// Features are interned: a FeatureDict maps each distinct feature string to
// a dense 64-bit id (the sim::StringPool pattern), and a SpecimenFeatures
// holds three sorted id vectors instead of three std::set<std::string>.
// Scoring then reduces to linear merge-intersections over sorted integer
// spans — no per-element tree walks, no string compares — and the pairwise
// stage of similarity_matrix fans out across the sweep pool. Scores are
// bit-identical to the seed set-based kernel (interning is a bijection, so
// every intersection/union count is unchanged); bench/similarity_scaling
// keeps that kernel and asserts the identity.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"

namespace cyd::analysis {

/// Dense id of one interned feature string. Ids are assigned in first-seen
/// order, so extraction order determines them deterministically; similarity
/// only ever compares ids for equality, so scores do not depend on the
/// assignment at all.
using FeatureId = std::uint64_t;

/// Deduplicating feature intern table shared by every specimen in one
/// analysis (ids from different dicts are not comparable). Not thread-safe;
/// extraction is the serial stage, scoring over the resulting id vectors is
/// what parallelizes.
class FeatureDict {
 public:
  /// Id for `s`, interning on first sight. Amortised O(1); allocates only
  /// the first time a distinct feature appears.
  FeatureId intern(std::string_view s);

  /// Id for the import feature "dll!fn" without materializing a fresh
  /// std::string per call (one scratch buffer, capacity reused).
  FeatureId intern_import(std::string_view dll, std::string_view fn);

  /// Pre-sizes the id table for `expected` distinct features so the serial
  /// intern stage of a large pile does not pay rehash churn. A hint, not a
  /// cap: interning past it just grows as usual.
  void reserve(std::size_t expected) { ids_.reserve(expected); }

  /// The string behind an id. Views stay valid for the dict's lifetime
  /// (entries live in a deque, later interning never moves them).
  std::string_view view(FeatureId id) const {
    return features_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const { return features_.size(); }
  bool empty() const { return features_.empty(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::deque<std::string> features_;  // id -> string, stable addresses
  std::unordered_map<std::string, FeatureId, Hash, std::equal_to<>> ids_;
  std::string scratch_;  // reused by intern_import
};

/// Comparable feature set of one specimen: three sorted, deduplicated
/// vectors of ids from one shared FeatureDict.
struct SpecimenFeatures {
  std::vector<FeatureId> strings;        // printable runs (len >= 6)
  std::vector<FeatureId> imports;        // "dll!function"
  std::vector<FeatureId> section_names;

  std::size_t size() const {
    return strings.size() + imports.size() + section_names.size();
  }
};

/// Extracts features from raw bytes into `dict`, descending into carvable
/// resources. Specimens meant to be compared must share the dict.
SpecimenFeatures extract_features(std::string_view bytes, FeatureDict& dict,
                                  int max_depth = 4);

/// Jaccard-style similarity in [0,1]; imports and section names are
/// weighted above incidental strings (shared engineering beats shared
/// vocabulary). Weights are renormalized over the feature classes that are
/// non-empty in at least one operand, so similarity(x, x) == 1.0 even for
/// specimens missing whole classes; two entirely featureless specimens
/// compare as 1.0 (vacuously identical feature sets). Both operands must
/// come from the same FeatureDict.
double similarity(const SpecimenFeatures& a, const SpecimenFeatures& b);
double specimen_similarity(std::string_view a, std::string_view b);

struct LabelledSpecimen {
  std::string label;
  common::Bytes bytes;
};

/// Extracts a whole pile into one shared dict (pre-sized via
/// FeatureDict::reserve so large piles skip rehash churn). The serial
/// stage of every pile pipeline; the returned vector parallels
/// `specimens`.
std::vector<SpecimenFeatures> extract_pile(
    const std::vector<LabelledSpecimen>& specimens, FeatureDict& dict);

/// Single-linkage clustering at `threshold`; returns groups of labels.
/// Two specimens land in one cluster iff a chain of pairwise similarities
/// above the threshold connects them — how analysts grew the
/// Stuxnet/Duqu ("Tilded") and Flame/Gauss platform families. Output order
/// is canonical: each cluster is represented by its earliest member, so
/// clusters appear ordered by first specimen index and members in input
/// order (union by smallest root; membership itself is order-invariant).
std::vector<std::vector<std::string>> cluster_specimens(
    const std::vector<LabelledSpecimen>& specimens, double threshold);

/// Full pairwise matrix (row-major, n x n) for reporting. Extraction is
/// serial (one shared dict); the O(n²) pairwise stage sweeps the upper
/// triangle across the sweep pool in fixed blocks of pair indices with the
/// usual bit-identical-to-serial aggregation. The triangle is decoded
/// arithmetically (k -> (i,j) via triangle_pair) inside the sweep lambda —
/// no materialized index-pair vector, which at 10⁵ specimens would be 80 GB.
std::vector<double> similarity_matrix(
    const std::vector<LabelledSpecimen>& specimens);

/// Row/column of the k-th pair of the strict upper triangle of an n x n
/// matrix in lexicographic order: k in [0, n(n-1)/2) maps to (i, j) with
/// i < j, (0,1) first, (n-2, n-1) last. Constant-time arithmetic decode
/// (one sqrt plus an integer fix-up), exact for any n the pair count of
/// which fits a double's 53-bit mantissa (n <= ~10⁸).
struct TrianglePair {
  std::size_t i = 0;
  std::size_t j = 0;
};
TrianglePair triangle_pair(std::uint64_t k, std::size_t n);

/// Pairwise scores of the strict upper triangle in lexicographic (i<j)
/// order — n(n-1)/2 doubles instead of the n x n matrix. This is the exact
/// kernel the clustering paths and the scaling benches consume; values are
/// the same doubles similarity_matrix scatters.
std::vector<double> similarity_triangle(
    const std::vector<SpecimenFeatures>& features);

/// Exact single-linkage clustering over pre-extracted features, returned as
/// canonical index groups (see cluster_specimens for the order contract).
/// Streams the upper triangle in fixed-size chunks — score a chunk on the
/// sweep pool, fold its above-threshold edges into the union-find, reuse
/// the buffer — so peak memory is O(n + chunk), never the n x n matrix.
std::vector<std::vector<std::size_t>> cluster_feature_indices(
    const std::vector<SpecimenFeatures>& features, double threshold);

}  // namespace cyd::analysis
