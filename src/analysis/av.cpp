#include "analysis/av.hpp"

namespace cyd::analysis {

void SignatureFeed::publish(std::string name, std::uint64_t content_hash,
                            sim::TimePoint when) {
  signatures_.push_back(AvSignature{std::move(name), content_hash, when});
}

void SignatureFeed::publish_sample(std::string name, std::string_view bytes,
                                   sim::TimePoint when) {
  publish(std::move(name), common::fnv1a64(bytes), when);
}

void SignatureFeed::publish_pattern(std::string name, common::Bytes pattern,
                                    sim::TimePoint when) {
  pattern_signatures_.push_back(
      AvPatternSignature{std::move(name), std::move(pattern), when});
}

std::vector<AvSignature> SignatureFeed::available_at(
    sim::TimePoint now) const {
  std::vector<AvSignature> out;
  for (const auto& sig : signatures_) {
    if (sig.published_at <= now) out.push_back(sig);
  }
  return out;
}

std::vector<AvPatternSignature> SignatureFeed::patterns_available_at(
    sim::TimePoint now) const {
  std::vector<AvPatternSignature> out;
  for (const auto& sig : pattern_signatures_) {
    if (sig.published_at <= now) out.push_back(sig);
  }
  return out;
}

AvProduct& AvProduct::install(winsys::Host& host, SignatureFeed& feed,
                              AvOptions options) {
  auto product = std::make_shared<AvProduct>(host, feed, options);
  AvProduct* raw = product.get();
  host.attach_component(kComponentKey, std::move(product));
  raw->wire_hooks();
  raw->update_signatures();
  return *raw;
}

AvProduct* AvProduct::find(winsys::Host& host) {
  return host.component<AvProduct>(kComponentKey);
}

void AvProduct::wire_hooks() {
  // On-access: scan every write.
  host_.fs().add_observer([this](const winsys::FsEvent& event) {
    if (scanning_) return;
    if (event.kind != winsys::FsEvent::Kind::kWrite || event.data == nullptr) {
      return;
    }
    if (auto signature = match(*event.data)) {
      scanning_ = true;
      if (options_.quarantine) {
        host_.fs().delete_file(event.path, host_.simulation().now());
      }
      report(event.path.str(), *signature, "quarantined");
      scanning_ = false;
    }
  });
  // Execution gate: exact signatures first, then (optionally) heuristics.
  host_.add_exec_interceptor([this](const winsys::Path& path,
                                    const pe::Image& image,
                                    const winsys::ExecContext&) {
    const auto bytes = host_.fs().read_file(path);
    if (!bytes) return true;
    if (auto signature = match(*bytes)) {
      report(path.str(), *signature, "blocked-exec");
      return false;
    }
    if (options_.heuristics &&
        heuristic_score(image) >= options_.heuristic_threshold) {
      report(path.str(), "Heur.Suspicious", "blocked-heuristic");
      return false;
    }
    return true;
  });
  // Update + periodic full scan cadences.
  host_.simulation().every(options_.update_interval,
                           [this] { update_signatures(); });
  host_.simulation().every(options_.full_scan_interval,
                           [this] { full_scan(); });
}

int AvProduct::heuristic_score(const pe::Image& image) {
  int score = 0;
  if (image.signature.empty()) ++score;
  for (const auto& section : image.sections) {
    if (common::shannon_entropy(section.data) > 7.2 &&
        section.data.size() > 256) {
      ++score;  // packed/encrypted body
      break;
    }
  }
  bool has_encrypted_resource = false;
  for (const auto& resource : image.resources) {
    if (resource.xor_encrypted) has_encrypted_resource = true;
  }
  if (has_encrypted_resource) ++score;
  if (image.imports_function("ntoskrnl.exe", "IoCreateDevice") ||
      image.imports_function("advapi32.dll", "CreateServiceW")) {
    ++score;  // kernel / service installation surface
  }
  if (image.original_filename.rfind("~", 0) == 0) ++score;  // temp masquerade
  return score;
}

void AvProduct::update_signatures() {
  for (const auto& sig : feed_.available_at(host_.simulation().now())) {
    local_[sig.content_hash] = sig.name;
  }
  const auto patterns =
      feed_.patterns_available_at(host_.simulation().now());
  if (patterns.size() > local_pattern_names_.size()) {
    // The visible set only ever grows (publication times are fixed), so a
    // size change is the rebuild trigger. Compile eagerly: scans stay
    // read-only on the automaton.
    local_patterns_ = PatternSet{};
    local_pattern_names_.clear();
    for (const auto& sig : patterns) {
      local_patterns_.add(sig.pattern);
      local_pattern_names_.push_back(sig.name);
    }
    local_patterns_.compile();
  }
}

std::optional<std::string> AvProduct::match(std::string_view bytes) const {
  auto it = local_.find(common::fnv1a64(bytes));
  if (it != local_.end()) return it->second;
  if (!local_patterns_.empty()) {
    // One pass over the buffer covers every pattern signature. Lowest
    // index = first visible signature in feed order, mirroring what a
    // signature-by-signature loop would have reported first.
    const auto hit = local_patterns_.first_match(bytes);
    if (hit != PatternSet::npos) return local_pattern_names_[hit];
  }
  return std::nullopt;
}

std::size_t AvProduct::full_scan() {
  if (host_.state() != winsys::HostState::kRunning) return 0;
  std::size_t hits = 0;
  scanning_ = true;
  for (const auto& path : host_.fs().all_files()) {
    const auto bytes = host_.fs().read_file(path);
    if (!bytes) continue;
    if (auto signature = match(*bytes)) {
      ++hits;
      if (options_.quarantine) {
        host_.fs().delete_file(path, host_.simulation().now());
      }
      report(path.str(), *signature, "scan-hit");
    }
  }
  scanning_ = false;
  return hits;
}

void AvProduct::report(const std::string& path, const std::string& signature,
                       const std::string& response) {
  Detection detection;
  detection.time = host_.simulation().now();
  detection.path = path;
  detection.signature = signature;
  detection.response = response;
  host_.log_event("av", "detection: " + signature + " at " + path + " (" +
                            response + ")");
  host_.trace(sim::TraceCategory::kSecurity, "av.detect",
              signature + " " + path);
  if (on_detect_) on_detect_(detection);
  detections_.push_back(std::move(detection));
}

}  // namespace cyd::analysis
