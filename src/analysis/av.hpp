#pragma once
// Anti-virus product model and vendor signature feed.
//
// Detection in this framework is honest: signatures are content hashes of
// specific specimen bytes, published to a feed at some time (analyst
// turnaround), and pulled by installed products on their update cadence.
// On-access scanning hooks file writes, an exec interceptor blocks known
// binaries, and a periodic full scan catches files dropped before their
// signature existed. The trends benches build on exactly the gaps the paper
// highlights: a *targeted*, *self-updating* malware keeps changing its
// bytes, so hash signatures perpetually trail it (§V-B, §V-D).

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/pattern_set.hpp"
#include "winsys/host.hpp"

namespace cyd::analysis {

struct AvSignature {
  std::string name;           // "W32.Stuxnet!dropper"
  std::uint64_t content_hash; // fnv1a64 of the exact file bytes
  sim::TimePoint published_at = 0;
};

/// Byte-pattern signature: fires on any file *containing* the pattern, the
/// classic AV answer to per-victim rebuilds that defeat exact hashes.
/// Products scan all of their pattern signatures in one Aho–Corasick pass
/// per buffer (analysis::PatternSet), not one substring search each.
struct AvPatternSignature {
  std::string name;       // "W32.Duqu.gen"
  common::Bytes pattern;  // raw bytes to find
  sim::TimePoint published_at = 0;
};

/// The vendor cloud all deployed products pull from.
class SignatureFeed {
 public:
  void publish(std::string name, std::uint64_t content_hash,
               sim::TimePoint when);
  /// Convenience: hash the bytes for the caller.
  void publish_sample(std::string name, std::string_view bytes,
                      sim::TimePoint when);
  /// Generic byte-pattern signature (substring match, not exact hash).
  void publish_pattern(std::string name, common::Bytes pattern,
                       sim::TimePoint when);
  /// Signatures visible to a product updating at time `now`.
  std::vector<AvSignature> available_at(sim::TimePoint now) const;
  std::vector<AvPatternSignature> patterns_available_at(
      sim::TimePoint now) const;
  std::size_t size() const {
    return signatures_.size() + pattern_signatures_.size();
  }

 private:
  std::vector<AvSignature> signatures_;
  std::vector<AvPatternSignature> pattern_signatures_;
};

struct Detection {
  sim::TimePoint time = 0;
  std::string path;
  std::string signature;
  std::string response;  // "quarantined" | "blocked-exec" | "scan-hit"
};

struct AvOptions {
  sim::Duration update_interval = sim::kDay;
  sim::Duration full_scan_interval = 7 * sim::kDay;
  bool quarantine = true;  // delete on detection (vs. log-only)
  /// Signature-less exec gate: statically triage every binary before it
  /// runs and block those whose traits cross `heuristic_threshold`
  /// (unsigned + packed + kernel-ish imports score highest). Off by default
  /// — era-accurate products were signature-first, and heuristics carry a
  /// false-positive cost the benches can now measure.
  bool heuristics = false;
  int heuristic_threshold = 3;
};

class AvProduct : public winsys::HostComponent {
 public:
  static constexpr const char* kComponentKey = "av";

  /// Installs the product on a host and wires its hooks.
  static AvProduct& install(winsys::Host& host, SignatureFeed& feed,
                            AvOptions options = {});
  static AvProduct* find(winsys::Host& host);

  AvProduct(winsys::Host& host, SignatureFeed& feed, AvOptions options)
      : host_(host), feed_(feed), options_(options) {}

  /// Pulls the feed immediately (otherwise happens on the update cadence).
  void update_signatures();
  /// On-demand sweep of the whole filesystem.
  std::size_t full_scan();

  const std::vector<Detection>& detections() const { return detections_; }
  std::size_t signature_count() const {
    return local_.size() + local_pattern_names_.size();
  }
  /// Called on every detection (scenario code bridges to the tracker).
  void set_on_detect(std::function<void(const Detection&)> fn) {
    on_detect_ = std::move(fn);
  }

  /// Trait score used by the heuristic gate; exposed for tests/benches.
  static int heuristic_score(const pe::Image& image);

 private:
  friend class AvInstaller;
  void wire_hooks();
  std::optional<std::string> match(std::string_view bytes) const;
  void report(const std::string& path, const std::string& signature,
              const std::string& response);

  winsys::Host& host_;
  SignatureFeed& feed_;
  AvOptions options_;
  std::map<std::uint64_t, std::string> local_;  // hash -> signature name
  // Pattern signatures, compiled into one automaton so every on-access /
  // full-scan buffer costs a single pass regardless of signature count.
  PatternSet local_patterns_;
  std::vector<std::string> local_pattern_names_;  // parallel to the set
  std::vector<Detection> detections_;
  std::function<void(const Detection&)> on_detect_;
  bool scanning_ = false;  // guards re-entrant fs events during quarantine
};

}  // namespace cyd::analysis
