#include "analysis/ioc.hpp"

#include "winsys/path.hpp"

namespace cyd::analysis {
namespace {

bool is_noise_domain(const std::string& domain) {
  return domain == "www.windowsupdate.com" || domain == "www.msn.com" ||
         domain == "update.microsoft.com";
}

}  // namespace

std::vector<std::string> IocSet::indicators() const {
  std::vector<std::string> out;
  out.insert(out.end(), file_names.begin(), file_names.end());
  out.insert(out.end(), domains.begin(), domains.end());
  out.insert(out.end(), service_names.begin(), service_names.end());
  return out;
}

IocSet extract_iocs(const BehaviorReport& report, std::string label) {
  IocSet iocs;
  iocs.label = std::move(label);
  for (const auto& path : report.files_written) {
    iocs.file_names.insert(winsys::Path(path).filename());
  }
  for (const auto& entry : report.usb_payloads) {
    iocs.file_names.insert(winsys::Path(entry).filename());
  }
  for (const auto& domain : report.domains_contacted) {
    if (!is_noise_domain(domain)) iocs.domains.insert(domain);
  }
  for (const auto& detail : report.services_installed) {
    // Trace detail looks like "Name -> c:\path"; keep the name token.
    const auto arrow = detail.find(" -> ");
    iocs.service_names.insert(
        arrow == std::string::npos ? detail : detail.substr(0, arrow));
  }
  return iocs;
}

RuleSet compile_rules(const IocSet& iocs) {
  RuleSet set;
  YaraRule rule;
  rule.name = iocs.label.empty() ? "Generated_IOC_Rule" : iocs.label;
  rule.meta["family"] = iocs.label;
  rule.meta["source"] = "sandbox-ioc";
  int counter = 0;
  for (const auto& name : iocs.file_names) {
    if (name.size() < 5) continue;  // too generic to be a signature
    rule.strings.push_back(
        YaraString{"$f" + std::to_string(counter++), name});
  }
  for (const auto& domain : iocs.domains) {
    rule.strings.push_back(
        YaraString{"$d" + std::to_string(counter++), domain});
  }
  rule.condition = YaraCondition::kAny;
  if (!rule.strings.empty()) set.add(std::move(rule));
  return set;
}

}  // namespace cyd::analysis
