#include "analysis/pattern_set.hpp"

#include <deque>
#include <stdexcept>

namespace cyd::analysis {

std::size_t PatternSet::add(std::string_view pattern) {
  if (pattern.empty()) {
    throw std::invalid_argument("PatternSet: empty pattern");
  }
  patterns_.emplace_back(pattern);
  compiled_ = false;
  return patterns_.size() - 1;
}

void PatternSet::compile() {
  constexpr int kAlphabet = 256;
  next_.clear();
  out_.clear();
  out_link_.clear();

  auto new_node = [&]() -> std::int32_t {
    const auto id = static_cast<std::int32_t>(out_.size());
    next_.resize(next_.size() + kAlphabet, -1);
    out_.emplace_back();
    out_link_.push_back(-1);
    return id;
  };
  new_node();  // root = 0

  // Trie of all patterns. new_node() resizes next_, so index fresh on
  // every access instead of holding a reference across the call.
  for (std::size_t p = 0; p < patterns_.size(); ++p) {
    std::int32_t node = 0;
    for (unsigned char c : patterns_[p]) {
      if (next_[node * kAlphabet + c] < 0) {
        const std::int32_t child = new_node();
        next_[node * kAlphabet + c] = child;
      }
      node = next_[node * kAlphabet + c];
    }
    out_[node].push_back(static_cast<std::uint32_t>(p));
  }

  // BFS: fail links, output links, and in-place DFA conversion (missing
  // edges rewritten to the fail target's edge, so scanning never walks a
  // fail chain).
  std::vector<std::int32_t> fail(out_.size(), 0);
  std::deque<std::int32_t> queue;
  for (int c = 0; c < kAlphabet; ++c) {
    std::int32_t& slot = next_[c];
    if (slot < 0) {
      slot = 0;
    } else {
      fail[slot] = 0;
      queue.push_back(slot);
    }
  }
  while (!queue.empty()) {
    const std::int32_t node = queue.front();
    queue.pop_front();
    const std::int32_t f = fail[node];
    out_link_[node] = out_[f].empty() ? out_link_[f] : f;
    for (int c = 0; c < kAlphabet; ++c) {
      std::int32_t& slot = next_[node * kAlphabet + c];
      const std::int32_t via_fail = next_[f * kAlphabet + c];
      if (slot < 0) {
        slot = via_fail;
      } else {
        fail[slot] = via_fail;
        queue.push_back(slot);
      }
    }
  }
  compiled_ = true;
}

void PatternSet::ensure_compiled() const {
  if (!compiled_) const_cast<PatternSet*>(this)->compile();
}

void PatternSet::match_presence(std::string_view data,
                                std::vector<std::uint8_t>& hits) const {
  hits.assign(patterns_.size(), 0);
  if (patterns_.empty() || data.empty()) return;
  ensure_compiled();
  std::size_t unmarked = patterns_.size();
  std::int32_t node = 0;
  for (unsigned char c : data) {
    node = next_[node * 256 + c];
    for (std::int32_t v = out_[node].empty() ? out_link_[node] : node; v >= 0;
         v = out_link_[v]) {
      for (const std::uint32_t p : out_[v]) {
        if (!hits[p]) {
          hits[p] = 1;
          if (--unmarked == 0) return;  // every pattern already seen
        }
      }
    }
  }
}

std::size_t PatternSet::first_match(std::string_view data) const {
  std::vector<std::uint8_t> hits;
  match_presence(data, hits);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (hits[i]) return i;
  }
  return npos;
}

}  // namespace cyd::analysis
