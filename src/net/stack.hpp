#pragma once
// Per-host network stack: HTTP (direct or proxied), WPAD discovery, SMB
// shares, the print-spooler service, and the Windows Update client.
//
// Every vector the paper describes at network level terminates here:
//  - Stuxnet MS10-061: remote_print() drops files into %system% and runs the
//    MOF-registered dropper on vulnerable targets.
//  - Stuxnet/Shamoon lateral movement: SMB copy + psexec-style remote exec
//    against hosts with open shares.
//  - Flame SNACK: wpad_discover() broadcasts; a malicious responder on the
//    subnet answers and becomes the victim's proxy.
//  - Flame MUNCH/GADGET: a proxy interceptor sees every proxied request and
//    may substitute the response (the fake Windows Update).

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "winsys/path.hpp"

namespace cyd::winsys {
class Host;
}

namespace cyd::net {

class Network;

/// Result of a Windows Update round-trip.
struct UpdateCheckResult {
  enum class Status : std::uint8_t {
    kNoUpdate,          // server had nothing / unreachable
    kInstalled,         // update verified and executed
    kSignatureRejected, // binary arrived but failed Authenticode validation
  };
  Status status = Status::kNoUpdate;
  std::string signer;  // subject that signed the installed update
};
const char* to_string(UpdateCheckResult::Status s);

class Stack {
 public:
  Stack(Network& network, winsys::Host& host, std::string subnet,
        std::string ip);

  winsys::Host& host() { return host_; }
  const std::string& host_name() const;
  const std::string& subnet() const { return subnet_; }
  const std::string& ip() const { return ip_; }
  Network& network() { return network_; }

  // --- HTTP client ---
  /// Issues a request. Routing: explicit proxy first (Flame MITM path), then
  /// LAN peers by host name, then the internet (requires internet access).
  std::optional<HttpResponse> http(HttpRequest request);
  std::optional<HttpResponse> http_get(const std::string& host,
                                       const std::string& path,
                                       HttpParams params = {});

  // --- HTTP server (LAN) ---
  void serve(const std::string& path, HttpHandler handler);
  bool has_endpoint(const std::string& path) const;

  // --- proxy / WPAD ---
  /// IE-style proxy auto-discovery: broadcasts a WPAD query on the subnet.
  /// Requires the client to still use NetBIOS fallback (kWpadNetbios vuln);
  /// the first responder in attach order wins. Returns the proxy host name.
  std::optional<std::string> wpad_discover();
  /// Registers this stack as a WPAD responder (what SNACK does).
  void set_wpad_responder(bool enabled) { wpad_responder_ = enabled; }
  bool wpad_responder() const { return wpad_responder_; }
  void set_proxy(std::optional<std::string> proxy_host);
  const std::optional<std::string>& proxy() const { return proxy_; }

  /// Interceptor run for every request this stack proxies for others; return
  /// a response to substitute it, nullopt to forward untouched (MUNCH).
  using ProxyInterceptor =
      std::function<std::optional<HttpResponse>(const HttpRequest&)>;
  void set_proxy_interceptor(ProxyInterceptor interceptor) {
    proxy_interceptor_ = std::move(interceptor);
  }

  // --- Windows Update client ---
  /// Contacts update.microsoft.com (through the proxy if configured),
  /// validates the returned binary against the host's trust stores, and
  /// executes it when genuine. This is the complete GADGET attack surface.
  UpdateCheckResult check_windows_update();

  // --- SMB shares ---
  void add_share(const std::string& share_name, const winsys::Path& dir);
  const std::map<std::string, winsys::Path>& shares() const { return shares_; }
  /// Copies bytes into `share\rel_path` on a LAN target. Succeeds only when
  /// the target exposes the share and has weak share ACLs
  /// (kOpenNetworkShares) — Shamoon's and Stuxnet's lateral-movement check.
  bool smb_copy(const std::string& target_host, const std::string& share,
                const std::string& rel_path, common::Bytes data);
  std::optional<common::Bytes> smb_read(const std::string& target_host,
                                        const std::string& share,
                                        const std::string& rel_path);
  /// psexec-style remote execution of a file already on the target.
  bool remote_execute(const std::string& target_host,
                      const winsys::Path& path);

  // --- print spooler (MS10-061) ---
  void set_print_sharing(bool enabled) { print_sharing_ = enabled; }
  bool print_sharing() const { return print_sharing_; }
  /// Sends a crafted two-document print job. On a vulnerable target with
  /// file-and-print sharing on, the "documents" land in %system% and the MOF
  /// registration executes the dropped payload.
  bool spooler_exploit_print(const std::string& target_host,
                             common::Bytes mof_file,
                             const std::string& dropper_name,
                             common::Bytes dropper_payload);

  /// Names of other hosts visible on this subnet (network scan).
  std::vector<std::string> scan_subnet() const;

 private:
  std::optional<HttpResponse> route_direct(const HttpRequest& request);

  Network& network_;
  winsys::Host& host_;
  std::string subnet_;
  std::string ip_;
  std::map<std::string, HttpHandler> endpoints_;
  std::map<std::string, winsys::Path> shares_;
  std::optional<std::string> proxy_;
  bool wpad_responder_ = false;
  bool print_sharing_ = true;
  ProxyInterceptor proxy_interceptor_;
};

}  // namespace cyd::net
