#include "net/network.hpp"

#include <set>
#include <stdexcept>
#include <utility>

#include "net/stack.hpp"
#include "winsys/host.hpp"

namespace cyd::net {

Network::Network(sim::Simulation& simulation) : sim_(simulation) {}

Network::~Network() = default;

Stack& Network::attach(winsys::Host& host, const std::string& subnet,
                       std::string ip) {
  if (stacks_.contains(host.name())) {
    throw std::invalid_argument("Network::attach: host already attached: " +
                                host.name());
  }
  auto stack = std::make_unique<Stack>(*this, host, subnet, std::move(ip));
  Stack* raw = stack.get();
  stacks_.emplace(host.name(), std::move(stack));
  subnets_[subnet].push_back(raw);
  host.attach_stack(raw);
  sim_.log(sim::TraceCategory::kNetwork, host.name(), "net.attach",
           "subnet=" + subnet + " ip=" + raw->ip());
  return *raw;
}

const std::vector<Stack*>& Network::subnet_members(
    const std::string& subnet) const {
  auto it = subnets_.find(subnet);
  return it == subnets_.end() ? empty_ : it->second;
}

Stack* Network::find_stack(const std::string& host_name) const {
  auto it = stacks_.find(host_name);
  return it == stacks_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Network::subnets() const {
  std::vector<std::string> out;
  out.reserve(subnets_.size());
  for (const auto& [name, members] : subnets_) out.push_back(name);
  return out;
}

Site& Network::ensure_site(const std::string& name) {
  auto [it, inserted] = sites_.try_emplace(name);
  if (inserted) {
    it->second.name = name;
    route_cache_.clear();
  }
  return it->second;
}

const Site& Network::add_site(const std::string& name) {
  return ensure_site(name);
}

const Site* Network::find_site(const std::string& name) const {
  auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : &it->second;
}

std::vector<std::string> Network::site_names() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) out.push_back(name);
  return out;
}

void Network::add_lan(const std::string& site, const std::string& subnet) {
  auto [it, inserted] = subnet_sites_.try_emplace(subnet, site);
  if (!inserted) {
    if (it->second != site) {
      throw std::invalid_argument("Network::add_lan: subnet " + subnet +
                                  " already belongs to site " + it->second);
    }
    return;
  }
  ensure_site(site).lans.push_back(subnet);
}

const Site* Network::site_of_subnet(const std::string& subnet) const {
  auto it = subnet_sites_.find(subnet);
  return it == subnet_sites_.end() ? nullptr : find_site(it->second);
}

void Network::link_sites(const std::string& a, const std::string& b,
                         sim::Duration latency) {
  if (a == b) return;
  ensure_site(a).links.push_back(SiteLink{b, latency});
  ensure_site(b).links.push_back(SiteLink{a, latency});
  // ensure_site only clears the memo for *new* sites; linking two existing
  // sites must drop it too, or routes computed before this link keep being
  // served after it (the stale-cache path under regression test).
  route_cache_.clear();
}

std::vector<Network::SiteEdge> Network::site_edges() const {
  std::vector<SiteEdge> edges;
  for (const auto& [name, site] : sites_) {
    for (const SiteLink& link : site.links) {
      edges.push_back(SiteEdge{name, link.to, link.latency});
    }
  }
  return edges;
}

Route Network::route_between(const std::string& from_site,
                             const std::string& to_site) const {
  if (!sites_.contains(from_site) || !sites_.contains(to_site)) return {};
  if (from_site == to_site) return Route{0, 0, true};
  auto cached = route_cache_.find(from_site);
  if (cached == route_cache_.end()) {
    // Dijkstra over the WAN graph. The frontier is an ordered set keyed
    // (latency, name), so equal-latency ties always resolve by site name and
    // the routes are identical run to run.
    std::map<std::string, Route> routes;
    routes[from_site] = Route{0, 0, true};
    std::set<std::pair<sim::Duration, std::string>> frontier;
    frontier.emplace(0, from_site);
    while (!frontier.empty()) {
      const auto [dist, name] = *frontier.begin();
      frontier.erase(frontier.begin());
      const Route here = routes[name];
      if (dist > here.latency) continue;  // stale frontier entry
      for (const SiteLink& link : sites_.at(name).links) {
        const sim::Duration next = dist + link.latency;
        auto rit = routes.find(link.to);
        if (rit != routes.end() && rit->second.latency <= next) continue;
        routes[link.to] = Route{next, here.wan_hops + 1, true};
        frontier.emplace(next, link.to);
      }
    }
    cached = route_cache_.emplace(from_site, std::move(routes)).first;
  }
  auto it = cached->second.find(to_site);
  return it == cached->second.end() ? Route{} : it->second;
}

void Network::register_internet_service(const std::string& domain,
                                        HttpHandler handler) {
  internet_[domain] = std::move(handler);
}

bool Network::internet_domain_exists(const std::string& domain) const {
  return internet_.contains(domain);
}

void Network::remove_internet_service(const std::string& domain) {
  internet_.erase(domain);
}

std::optional<HttpResponse> Network::internet_request(
    const HttpRequest& request) {
  auto it = internet_.find(request.host);
  if (it == internet_.end()) return std::nullopt;
  ++domain_hits_[request.host];
  return it->second(request);
}

}  // namespace cyd::net
