#include "net/network.hpp"

#include <stdexcept>

#include "net/stack.hpp"
#include "winsys/host.hpp"

namespace cyd::net {

Network::Network(sim::Simulation& simulation) : sim_(simulation) {}

Network::~Network() = default;

Stack& Network::attach(winsys::Host& host, const std::string& subnet,
                       std::string ip) {
  if (stacks_.contains(host.name())) {
    throw std::invalid_argument("Network::attach: host already attached: " +
                                host.name());
  }
  auto stack = std::make_unique<Stack>(*this, host, subnet, std::move(ip));
  Stack* raw = stack.get();
  stacks_.emplace(host.name(), std::move(stack));
  subnets_[subnet].push_back(raw);
  host.attach_stack(raw);
  sim_.log(sim::TraceCategory::kNetwork, host.name(), "net.attach",
           "subnet=" + subnet + " ip=" + raw->ip());
  return *raw;
}

const std::vector<Stack*>& Network::subnet_members(
    const std::string& subnet) const {
  auto it = subnets_.find(subnet);
  return it == subnets_.end() ? empty_ : it->second;
}

Stack* Network::find_stack(const std::string& host_name) const {
  auto it = stacks_.find(host_name);
  return it == stacks_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Network::subnets() const {
  std::vector<std::string> out;
  out.reserve(subnets_.size());
  for (const auto& [name, members] : subnets_) out.push_back(name);
  return out;
}

void Network::register_internet_service(const std::string& domain,
                                        HttpHandler handler) {
  internet_[domain] = std::move(handler);
}

bool Network::internet_domain_exists(const std::string& domain) const {
  return internet_.contains(domain);
}

void Network::remove_internet_service(const std::string& domain) {
  internet_.erase(domain);
}

std::optional<HttpResponse> Network::internet_request(
    const HttpRequest& request) {
  auto it = internet_.find(request.host);
  if (it == internet_.end()) return std::nullopt;
  ++domain_hits_[request.host];
  return it->second(request);
}

}  // namespace cyd::net
