#pragma once
// The simulated network world: subnets, the internet, DNS.
//
// Hosts join a named subnet (broadcast domain) via attach(), which gives them
// a Stack. Internet endpoints (C&C servers, update.microsoft.com, sinkholes)
// are HttpHandlers registered under one or more domains — modelling the 80
// Flame domains resolving to 22 servers is just many registrations sharing a
// handler. Whether a LAN host can reach the internet at all is the host's
// internet_access() flag (air-gapped cells simply never set it).
//
// Above the subnets sits an optional hierarchical layer for campaign-scale
// worlds: a Site groups several LANs (an organization, a plant, a ministry),
// and sites join each other through WAN links with per-link latency.
// route_between answers "how far apart are these two organizations" with a
// deterministic shortest-path search, which the epidemic scenarios use to
// pace cross-site propagation.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/simulation.hpp"

namespace cyd::winsys {
class Host;
}

namespace cyd::net {

class Stack;

/// One directed WAN edge (links are registered in both directions).
struct SiteLink {
  std::string to;
  sim::Duration latency = 0;
};

/// A multi-LAN site: one organization's network, joined to the rest of the
/// world through WAN links.
struct Site {
  std::string name;
  std::vector<std::string> lans;  // subnet names, in registration order
  std::vector<SiteLink> links;    // outgoing WAN edges
};

/// Shortest WAN path between two sites.
struct Route {
  sim::Duration latency = 0;
  int wan_hops = 0;
  bool reachable = false;
};

class Network {
 public:
  // Constructor and destructor are out-of-line: Stack is incomplete here and
  // both would otherwise instantiate the owning map's destructor.
  explicit Network(sim::Simulation& simulation);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Joins `host` to `subnet` with the given address, creating its Stack and
  /// wiring host.stack(). A host attaches at most once.
  Stack& attach(winsys::Host& host, const std::string& subnet,
                std::string ip);

  /// Stacks in a subnet, in attach order (deterministic broadcast order).
  const std::vector<Stack*>& subnet_members(const std::string& subnet) const;
  Stack* find_stack(const std::string& host_name) const;
  std::vector<std::string> subnets() const;

  // --- hierarchical topology (sites over LANs) ---
  /// Get-or-create a site by name. Returns a const view: all topology
  /// mutation goes through add_lan()/link_sites(), which invalidate the
  /// route memo — a mutable Site& would let callers grow `links` behind the
  /// cache's back and serve stale routes forever.
  const Site& add_site(const std::string& name);
  const Site* find_site(const std::string& name) const;
  std::vector<std::string> site_names() const;
  /// Registers `subnet` as one of `site`'s LANs (creating the site as
  /// needed). A subnet belongs to at most one site.
  void add_lan(const std::string& site, const std::string& subnet);
  /// Site owning a subnet, or nullptr for unassigned subnets.
  const Site* site_of_subnet(const std::string& subnet) const;
  /// Joins two sites with a bidirectional WAN link of the given latency.
  void link_sites(const std::string& a, const std::string& b,
                  sim::Duration latency);
  /// Deterministic shortest-latency WAN route (ties broken by site name).
  /// Memoized per source site; every topology mutation (new site, new LAN,
  /// new WAN link) resets the cache, so routes computed before the mutation
  /// are never served after it.
  Route route_between(const std::string& from_site,
                      const std::string& to_site) const;

  /// Every directed WAN edge in site-name order (each bidirectional
  /// link_sites() call contributes both directions). This is the shard
  /// topology: core::World::shard_plan() turns these into cross-shard
  /// channels whose minimum latency is the conservative lookahead.
  struct SiteEdge {
    std::string from;
    std::string to;
    sim::Duration latency = 0;
  };
  std::vector<SiteEdge> site_edges() const;

  // --- internet ---
  /// Registers an internet service under `domain`. Re-registering replaces
  /// the handler (how a sinkhole takes over a C&C domain).
  void register_internet_service(const std::string& domain,
                                 HttpHandler handler);
  bool internet_domain_exists(const std::string& domain) const;
  void remove_internet_service(const std::string& domain);

  /// Delivers a request to an internet service. Returns 404-style nullopt
  /// when the domain does not resolve.
  std::optional<HttpResponse> internet_request(const HttpRequest& request);

  /// Count of requests each domain has served (C&C traffic accounting).
  const std::map<std::string, std::size_t>& domain_hits() const {
    return domain_hits_;
  }

  sim::Simulation& simulation() { return sim_; }

 private:
  sim::Simulation& sim_;
  std::map<std::string, std::vector<Stack*>> subnets_;
  std::map<std::string, std::unique_ptr<Stack>> stacks_;  // by host name
  std::map<std::string, HttpHandler> internet_;
  std::map<std::string, std::size_t> domain_hits_;
  std::vector<Stack*> empty_;

  /// Mutable get-or-create used by the topology mutators; clears the route
  /// memo on insert so pre-existing "unreachable" answers are recomputed.
  Site& ensure_site(const std::string& name);

  std::map<std::string, Site> sites_;
  std::map<std::string, std::string> subnet_sites_;  // subnet -> site name
  // from-site -> (to-site -> route), filled one source at a time
  mutable std::map<std::string, std::map<std::string, Route>> route_cache_;
};

}  // namespace cyd::net
