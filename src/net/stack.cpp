#include "net/stack.hpp"

#include "net/network.hpp"
#include "pe/image.hpp"
#include "pki/signing.hpp"
#include "winsys/host.hpp"

namespace cyd::net {

const char* to_string(UpdateCheckResult::Status s) {
  switch (s) {
    case UpdateCheckResult::Status::kNoUpdate: return "no-update";
    case UpdateCheckResult::Status::kInstalled: return "installed";
    case UpdateCheckResult::Status::kSignatureRejected:
      return "signature-rejected";
  }
  return "?";
}

Stack::Stack(Network& network, winsys::Host& host, std::string subnet,
             std::string ip)
    : network_(network),
      host_(host),
      subnet_(std::move(subnet)),
      ip_(std::move(ip)) {}

const std::string& Stack::host_name() const { return host_.name(); }

std::optional<HttpResponse> Stack::http(HttpRequest request) {
  if (host_.state() != winsys::HostState::kRunning) return std::nullopt;
  request.client = host_.name();

  if (proxy_ && *proxy_ != host_.name()) {
    Stack* proxy_stack = network_.find_stack(*proxy_);
    if (proxy_stack == nullptr ||
        proxy_stack->host().state() != winsys::HostState::kRunning) {
      // Dead proxy: IE would fall back to direct in time; so do we.
      return route_direct(request);
    }
    host_.trace(sim::TraceCategory::kNetwork, "http.via-proxy",
                *proxy_ + " <- " + request.url());
    if (proxy_stack->proxy_interceptor_) {
      if (auto substituted = proxy_stack->proxy_interceptor_(request)) {
        proxy_stack->host().trace(sim::TraceCategory::kNetwork,
                                  "proxy.intercepted", request.url());
        return substituted;
      }
    }
    return proxy_stack->route_direct(request);
  }
  return route_direct(request);
}

std::optional<HttpResponse> Stack::http_get(
    const std::string& host, const std::string& path, HttpParams params) {
  HttpRequest request;
  request.method = "GET";
  request.host = host;
  request.path = path;
  request.params = std::move(params);
  return http(std::move(request));
}

std::optional<HttpResponse> Stack::route_direct(const HttpRequest& request) {
  // LAN peer by host name?
  if (Stack* peer = network_.find_stack(request.host)) {
    if (peer->host().state() != winsys::HostState::kRunning) {
      return std::nullopt;
    }
    auto it = peer->endpoints_.find(request.path);
    if (it == peer->endpoints_.end()) return HttpResponse{404, {}};
    host_.trace(sim::TraceCategory::kNetwork, "http.lan",
                request.host + request.path);
    return it->second(request);
  }
  // Internet.
  if (!host_.internet_access()) {
    host_.trace(sim::TraceCategory::kNetwork, "http.no-route", request.url());
    return std::nullopt;
  }
  host_.trace(sim::TraceCategory::kNetwork, "http.internet", request.url());
  return network_.internet_request(request);
}

void Stack::serve(const std::string& path, HttpHandler handler) {
  endpoints_[path] = std::move(handler);
}

bool Stack::has_endpoint(const std::string& path) const {
  return endpoints_.contains(path);
}

std::optional<std::string> Stack::wpad_discover() {
  // Without the NetBIOS fallback weakness there is no broadcast to answer:
  // name resolution stops at the (absent) DNS record.
  if (!host_.vulnerable_to(exploits::VulnId::kWpadNetbios)) {
    return std::nullopt;
  }
  host_.trace(sim::TraceCategory::kNetwork, "wpad.broadcast", subnet_);
  for (Stack* member : network_.subnet_members(subnet_)) {
    if (member == this) continue;
    if (!member->wpad_responder_) continue;
    if (member->host().state() != winsys::HostState::kRunning) continue;
    set_proxy(member->host_name());
    host_.trace(sim::TraceCategory::kNetwork, "wpad.answered",
                "proxy=" + member->host_name());
    return member->host_name();
  }
  return std::nullopt;
}

void Stack::set_proxy(std::optional<std::string> proxy_host) {
  proxy_ = std::move(proxy_host);
}

UpdateCheckResult Stack::check_windows_update() {
  UpdateCheckResult result;
  auto response = http_get("update.microsoft.com", "/check",
                           {{"os", to_string(host_.os())}});
  if (!response || !response->ok() || response->body.empty()) return result;

  pe::Image update;
  try {
    update = pe::Image::parse(response->body);
  } catch (const pe::ParseError&) {
    host_.trace(sim::TraceCategory::kSecurity, "wu.malformed-binary", "");
    return result;
  }

  const auto verdict =
      pki::verify_image(update, host_.cert_store(), host_.trust_store(),
                        network_.simulation().now());
  if (!verdict.valid()) {
    host_.trace(sim::TraceCategory::kSecurity, "wu.signature-rejected",
                verdict.describe());
    host_.log_event("windows-update",
                    "update rejected: " + verdict.describe());
    result.status = UpdateCheckResult::Status::kSignatureRejected;
    return result;
  }

  const winsys::Path staged =
      winsys::Path("c:\\windows\\softwaredistribution\\download")
          .join(update.original_filename.empty() ? "update.exe"
                                                 : update.original_filename);
  host_.fs().write_file(staged, response->body,
                        network_.simulation().now());
  host_.trace(sim::TraceCategory::kNetwork, "wu.install",
              staged.str() + " signer=\"" + verdict.signer_subject + "\"");
  winsys::ExecContext ctx;
  ctx.launched_by = "windows-update";
  ctx.elevated = true;
  host_.execute_file(staged, ctx);
  result.status = UpdateCheckResult::Status::kInstalled;
  result.signer = verdict.signer_subject;
  return result;
}

void Stack::add_share(const std::string& share_name, const winsys::Path& dir) {
  shares_[share_name] = dir;
  host_.fs().mkdirs(dir);
}

bool Stack::smb_copy(const std::string& target_host, const std::string& share,
                     const std::string& rel_path, common::Bytes data) {
  Stack* target = network_.find_stack(target_host);
  if (target == nullptr || target->subnet_ != subnet_) return false;
  if (target->host().state() != winsys::HostState::kRunning) return false;
  auto it = target->shares_.find(share);
  if (it == target->shares_.end()) return false;
  // Writing needs weak ACLs; a hardened host rejects the anonymous write.
  if (!target->host().vulnerable_to(exploits::VulnId::kOpenNetworkShares)) {
    host_.trace(sim::TraceCategory::kNetwork, "smb.denied",
                target_host + "\\" + share);
    return false;
  }
  const winsys::Path dest = it->second.join(rel_path);
  target->host().fs().write_file(dest, std::move(data),
                                 network_.simulation().now());
  host_.trace(sim::TraceCategory::kNetwork, "smb.copy",
              target_host + "\\" + share + "\\" + rel_path);
  return true;
}

std::optional<common::Bytes> Stack::smb_read(const std::string& target_host,
                                             const std::string& share,
                                             const std::string& rel_path) {
  Stack* target = network_.find_stack(target_host);
  if (target == nullptr || target->subnet_ != subnet_) return std::nullopt;
  if (target->host().state() != winsys::HostState::kRunning) {
    return std::nullopt;
  }
  auto it = target->shares_.find(share);
  if (it == target->shares_.end()) return std::nullopt;
  return target->host().fs().read_file(it->second.join(rel_path));
}

bool Stack::remote_execute(const std::string& target_host,
                           const winsys::Path& path) {
  Stack* target = network_.find_stack(target_host);
  if (target == nullptr || target->subnet_ != subnet_) return false;
  if (target->host().state() != winsys::HostState::kRunning) return false;
  if (!target->host().vulnerable_to(exploits::VulnId::kOpenNetworkShares)) {
    return false;
  }
  host_.trace(sim::TraceCategory::kNetwork, "smb.psexec",
              target_host + " " + path.str());
  winsys::ExecContext ctx;
  ctx.launched_by = "psexec:" + host_.name();
  ctx.elevated = true;
  return target->host().execute_file(path, ctx).started();
}

bool Stack::spooler_exploit_print(const std::string& target_host,
                                  common::Bytes mof_file,
                                  const std::string& dropper_name,
                                  common::Bytes dropper_payload) {
  Stack* target = network_.find_stack(target_host);
  if (target == nullptr || target->subnet_ != subnet_) return false;
  winsys::Host& victim = target->host();
  if (victim.state() != winsys::HostState::kRunning) return false;
  if (!target->print_sharing_ ||
      !victim.vulnerable_to(exploits::VulnId::kMs10_061_Spooler)) {
    host_.trace(sim::TraceCategory::kNetwork, "spooler.rejected", target_host);
    return false;
  }
  // The spooler flaw: "print to file" lands the two documents in %system%.
  const auto now = network_.simulation().now();
  const winsys::Path mof_path =
      winsys::Host::system_dir().join("wbem\\mof\\sysnullevnt.mof");
  const winsys::Path dropper_path =
      winsys::Host::system_dir().join(dropper_name);
  victim.fs().write_file(mof_path, std::move(mof_file), now);
  victim.fs().write_file(dropper_path, std::move(dropper_payload), now);
  host_.trace(sim::TraceCategory::kNetwork, "spooler.exploit",
              target_host + " dropped " + dropper_path.str());
  // The MOF event consumer registers and launches the second file.
  winsys::ExecContext ctx;
  ctx.launched_by = "mof-event-consumer";
  ctx.elevated = true;
  victim.execute_file(dropper_path, ctx);
  return true;
}

std::vector<std::string> Stack::scan_subnet() const {
  std::vector<std::string> out;
  for (Stack* member : network_.subnet_members(subnet_)) {
    if (member != this) out.push_back(member->host_name());
  }
  return out;
}

}  // namespace cyd::net
