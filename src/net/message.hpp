#pragma once
// Wire-level message types for the simulated network.

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace cyd::net {

// Transparent comparator: handlers on the hot path (the C&C decode layer)
// look params up by string_view without materializing a key string.
using HttpParams = std::map<std::string, std::string, std::less<>>;

struct HttpRequest {
  std::string method = "GET";
  std::string host;  // domain or LAN host name
  std::string path = "/";
  HttpParams params;
  common::Bytes body;
  std::string client;  // originating host name (filled in by the stack)

  std::string url() const { return host + path; }
};

struct HttpResponse {
  int status = 200;
  common::Bytes body;

  bool ok() const { return status >= 200 && status < 300; }
};

/// Handler for an HTTP endpoint (internet service or LAN server).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

}  // namespace cyd::net
