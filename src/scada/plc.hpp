#pragma once
// The Programmable Logic Controller.
//
// A Plc owns its Profibus, a set of S7-style code blocks (the artifact
// Stuxnet infects), and a PlcLogic strategy executed every scan cycle. The
// logic commands the drives and publishes the *reported* frequency — the
// value the operator HMI and the digital safety system read. Stuxnet's PLC
// payload swaps the logic for an attack sequence that replays recorded
// normal values on that reporting channel while the drives are being abused.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "scada/profibus.hpp"
#include "sim/simulation.hpp"

namespace cyd::scada {

class Plc;

/// Control strategy run once per scan cycle.
class PlcLogic {
 public:
  virtual ~PlcLogic() = default;
  virtual void scan(Plc& plc, sim::Duration dt) = 0;
  virtual std::string name() const = 0;
};

/// Factory-default logic: track the operator setpoint, report the truth.
class NormalControlLogic : public PlcLogic {
 public:
  void scan(Plc& plc, sim::Duration dt) override;
  std::string name() const override { return "normal-control"; }
};

class Plc {
 public:
  Plc(sim::Simulation& simulation, std::string name,
      std::string cp_model = Profibus::kTargetCpModel);

  const std::string& name() const { return name_; }
  sim::Simulation& simulation() { return sim_; }
  Profibus& bus() { return bus_; }
  const Profibus& bus() const { return bus_; }

  // --- code blocks (what Step 7 reads/writes over the cable) ---
  void write_block(const std::string& block, common::Bytes data);
  std::optional<common::Bytes> read_block(const std::string& block) const;
  bool has_block(const std::string& block) const;
  std::vector<std::string> block_names() const;
  bool delete_block(const std::string& block);

  // --- control ---
  void set_logic(std::unique_ptr<PlcLogic> logic);
  PlcLogic& logic() { return *logic_; }
  void set_operator_setpoint(double hz) { operator_setpoint_ = hz; }
  double operator_setpoint() const { return operator_setpoint_; }

  /// The value published on the monitoring channel; honest logic mirrors the
  /// real drive frequency, attack logic replays recorded history.
  void report_frequency(double hz) { reported_hz_ = hz; }
  double reported_frequency() const { return reported_hz_; }
  /// Ground truth straight off the bus (invisible to operators in-universe;
  /// benches use it to show the deception gap).
  double actual_frequency() const { return bus_.mean_frequency(); }

  /// Observers run after the logic each scan (HMI sampling, safety checks).
  void add_scan_observer(std::function<void(Plc&, sim::Duration)> fn) {
    observers_.push_back(std::move(fn));
  }

  /// Starts the periodic scan cycle on the simulation clock.
  void start(sim::Duration scan_period);
  void stop();
  bool running() const { return running_; }
  sim::Duration scan_period() const { return scan_period_; }

  /// One scan cycle: logic, observers, physics. Exposed for unit tests.
  void scan_once(sim::Duration dt);

 private:
  sim::Simulation& sim_;
  std::string name_;
  Profibus bus_;
  std::map<std::string, common::Bytes> blocks_;
  std::unique_ptr<PlcLogic> logic_;
  double operator_setpoint_ = 0.0;
  double reported_hz_ = 0.0;
  std::vector<std::function<void(Plc&, sim::Duration)>> observers_;
  sim::EventHandle scan_handle_;
  sim::Duration scan_period_ = 0;
  bool running_ = false;
};

}  // namespace cyd::scada
