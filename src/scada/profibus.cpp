#include "scada/profibus.hpp"

namespace cyd::scada {

const char* to_string(DriveVendor v) {
  switch (v) {
    case DriveVendor::kFararoPaya: return "Fararo-Paya";
    case DriveVendor::kVacon: return "Vacon";
    case DriveVendor::kOther: return "other";
  }
  return "?";
}

Centrifuge& FrequencyConverter::add_centrifuge(std::string rotor_id) {
  rotors_.emplace_back(std::move(rotor_id));
  return rotors_.back();
}

std::size_t FrequencyConverter::destroyed_count() const {
  std::size_t n = 0;
  for (const auto& r : rotors_) {
    if (r.destroyed()) ++n;
  }
  return n;
}

void FrequencyConverter::step(sim::Duration dt) {
  for (auto& rotor : rotors_) rotor.step(commanded_hz_, dt);
}

FrequencyConverter& Profibus::add_drive(std::string id, DriveVendor vendor) {
  drives_.push_back(
      std::make_unique<FrequencyConverter>(std::move(id), vendor));
  return *drives_.back();
}

bool Profibus::has_vendor(DriveVendor v) const {
  for (const auto& d : drives_) {
    if (d->vendor() == v) return true;
  }
  return false;
}

std::size_t Profibus::total_centrifuges() const {
  std::size_t n = 0;
  for (const auto& d : drives_) n += d->centrifuges().size();
  return n;
}

std::size_t Profibus::destroyed_centrifuges() const {
  std::size_t n = 0;
  for (const auto& d : drives_) n += d->destroyed_count();
  return n;
}

double Profibus::mean_frequency() const {
  if (drives_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& d : drives_) sum += d->frequency();
  return sum / static_cast<double>(drives_.size());
}

void Profibus::step(sim::Duration dt) {
  for (auto& d : drives_) d->step(dt);
}

}  // namespace cyd::scada
