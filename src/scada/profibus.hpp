#pragma once
// Profibus field bus: frequency-converter drives and their rotor strings.
//
// Profibus is the industrial network linking the PLC to physical devices;
// Stuxnet's trigger condition keys on the presence of a Profibus
// communications processor and on the *vendor* of the attached frequency
// converter drives (one Iranian, one Finnish manufacturer — the Natanz
// fingerprint).

#include <memory>
#include <string>
#include <vector>

#include "scada/centrifuge.hpp"
#include "sim/time.hpp"

namespace cyd::scada {

enum class DriveVendor : std::uint8_t {
  kFararoPaya,  // Iranian manufacturer
  kVacon,       // Finnish manufacturer
  kOther,
};
const char* to_string(DriveVendor v);

/// A variable-frequency drive powering a string of centrifuges.
class FrequencyConverter {
 public:
  FrequencyConverter(std::string id, DriveVendor vendor)
      : id_(std::move(id)), vendor_(vendor) {}

  const std::string& id() const { return id_; }
  DriveVendor vendor() const { return vendor_; }

  void set_frequency(double hz) { commanded_hz_ = hz; }
  double frequency() const { return commanded_hz_; }

  Centrifuge& add_centrifuge(std::string rotor_id);
  std::vector<Centrifuge>& centrifuges() { return rotors_; }
  const std::vector<Centrifuge>& centrifuges() const { return rotors_; }
  std::size_t destroyed_count() const;

  /// Advances every attached rotor by dt at the commanded frequency.
  void step(sim::Duration dt);

 private:
  std::string id_;
  DriveVendor vendor_;
  double commanded_hz_ = 0.0;
  std::vector<Centrifuge> rotors_;
};

/// The bus itself: a communications processor plus drives.
class Profibus {
 public:
  /// Stuxnet only arms itself when the PLC talks through this CP model.
  static constexpr const char* kTargetCpModel = "CP-342-5";

  explicit Profibus(std::string cp_model = kTargetCpModel)
      : cp_model_(std::move(cp_model)) {}

  const std::string& cp_model() const { return cp_model_; }

  FrequencyConverter& add_drive(std::string id, DriveVendor vendor);
  std::vector<std::unique_ptr<FrequencyConverter>>& drives() {
    return drives_;
  }
  const std::vector<std::unique_ptr<FrequencyConverter>>& drives() const {
    return drives_;
  }

  bool has_vendor(DriveVendor v) const;
  std::size_t total_centrifuges() const;
  std::size_t destroyed_centrifuges() const;
  /// Mean commanded frequency across drives (what telemetry reports).
  double mean_frequency() const;

  void step(sim::Duration dt);

 private:
  std::string cp_model_;
  std::vector<std::unique_ptr<FrequencyConverter>> drives_;
};

}  // namespace cyd::scada
