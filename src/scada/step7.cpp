#include "scada/step7.hpp"

#include "pe/image.hpp"

namespace cyd::scada {

S7ProxyRegistry::S7ProxyRegistry() {
  register_proxy(kOriginalDllProgram,
                 [] { return std::make_unique<DirectS7Proxy>(); });
}

void S7ProxyRegistry::register_proxy(
    std::string program_id,
    std::function<std::unique_ptr<S7CommProxy>()> factory) {
  factories_[std::move(program_id)] = std::move(factory);
}

std::unique_ptr<S7CommProxy> S7ProxyRegistry::create(
    const std::string& program_id) const {
  auto it = factories_.find(program_id);
  return it == factories_.end() ? nullptr : it->second();
}

bool S7ProxyRegistry::known(const std::string& program_id) const {
  return factories_.contains(program_id);
}

winsys::Path Step7App::dll_path() {
  return winsys::Host::system_dir().join("s7otbxdx.dll");
}

Step7App& Step7App::install(winsys::Host& host, S7ProxyRegistry& registry) {
  auto app = std::make_shared<Step7App>(host, registry);
  Step7App* raw = app.get();
  // Ship the genuine communication library.
  const auto dll = pe::Builder{}
                       .program(S7ProxyRegistry::kOriginalDllProgram)
                       .filename("s7otbxdx.dll")
                       .version("Siemens AG / SIMATIC S7")
                       .section(".text", "s7 block exchange routines", true)
                       .build();
  host.fs().write_file(dll_path(), dll.serialize(), host.simulation().now());
  host.fs().mkdirs(winsys::Path("c:\\projects"));
  host.attach_component(kComponentKey, std::move(app));
  host.trace(sim::TraceCategory::kScada, "step7.install", dll_path().str());
  return *raw;
}

Step7App* Step7App::find(winsys::Host& host) {
  return host.component<Step7App>(kComponentKey);
}

winsys::Path Step7App::create_project(const std::string& project_name) {
  const winsys::Path dir =
      winsys::Path("c:\\projects").join(project_name);
  host_.fs().mkdirs(dir);
  host_.fs().write_file(dir.join(project_name + ".s7p"),
                        "SIMATIC project: " + project_name,
                        host_.simulation().now());
  return dir;
}

bool Step7App::open_project(const winsys::Path& project_dir) {
  if (!host_.fs().is_dir(project_dir)) return false;
  host_.trace(sim::TraceCategory::kScada, "step7.open-project",
              project_dir.str());
  opened_projects_.push_back(project_dir);

  // Read the project descriptor through the filesystem API — the observable
  // event Stuxnet's hooked "open project" APIs key on to infect the folder.
  for (const auto& entry : host_.fs().list_dir(project_dir)) {
    const winsys::Path full = project_dir.join(entry);
    if (full.extension() == "s7p") host_.fs().read_file(full);
  }

  // Plugin loading — the infection trigger. Step 7 loads DLLs present in the
  // project folder; a dropped malicious DLL executes with the app's rights.
  for (const auto& entry : host_.fs().list_dir(project_dir)) {
    const winsys::Path full = project_dir.join(entry);
    if (full.extension() != "dll" && full.extension() != "tmp") continue;
    const auto bytes = host_.fs().read_file(full);
    if (!bytes) continue;
    try {
      const auto image = pe::Image::parse(*bytes);
      if (!host_.programs().known(image.program_id)) continue;
      winsys::ExecContext ctx;
      ctx.launched_by = "step7-plugin-load";
      host_.execute_file(full, ctx);
    } catch (const pe::ParseError&) {
      continue;  // not a loadable plugin
    }
  }
  return true;
}

void Step7App::connect(Plc* plc) {
  plc_ = plc;
  if (plc != nullptr) {
    host_.trace(sim::TraceCategory::kScada, "step7.connect", plc->name());
  }
}

std::unique_ptr<S7CommProxy> Step7App::resolve_comm() const {
  const auto bytes = host_.fs().read_file(dll_path());
  if (!bytes) return nullptr;
  try {
    const auto image = pe::Image::parse(*bytes);
    return registry_.create(image.program_id);
  } catch (const pe::ParseError&) {
    return nullptr;
  }
}

std::vector<std::string> Step7App::list_blocks() {
  auto comm = resolve_comm();
  if (comm == nullptr || plc_ == nullptr) return {};
  return comm->list_blocks(*plc_);
}

std::optional<common::Bytes> Step7App::read_block(const std::string& name) {
  auto comm = resolve_comm();
  if (comm == nullptr || plc_ == nullptr) return std::nullopt;
  return comm->read_block(*plc_, name);
}

bool Step7App::write_block(const std::string& name, common::Bytes data) {
  auto comm = resolve_comm();
  if (comm == nullptr || plc_ == nullptr) return false;
  return comm->write_block(*plc_, name, std::move(data));
}

std::optional<double> Step7App::read_frequency() {
  auto comm = resolve_comm();
  if (comm == nullptr || plc_ == nullptr) return std::nullopt;
  return comm->read_frequency(*plc_);
}

}  // namespace cyd::scada
