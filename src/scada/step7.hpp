#pragma once
// Step 7 engineering software and the s7otbxdx.dll communication layer.
//
// Step 7 is the application an engineer uses to program the PLC over a data
// cable; every block read/write flows through the s7otbxdx.dll library.
// Stuxnet (paper §II-B) renames the original DLL to s7otbxsx.dll and drops
// its own version, putting itself man-in-the-middle between the engineer and
// the PLC — the basis of the PLC rootkit. We reproduce that mechanism
// exactly: Step7App resolves the DLL *file* from %system% on every call,
// parses its program id, and instantiates the matching S7CommProxy from the
// proxy registry. Replace the file, replace the behaviour.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scada/plc.hpp"
#include "winsys/host.hpp"

namespace cyd::scada {

/// Behaviour of the s7otbxdx.dll communication layer.
class S7CommProxy {
 public:
  virtual ~S7CommProxy() = default;
  virtual std::vector<std::string> list_blocks(Plc& plc) = 0;
  virtual std::optional<common::Bytes> read_block(Plc& plc,
                                                  const std::string& name) = 0;
  virtual bool write_block(Plc& plc, const std::string& name,
                           common::Bytes data) = 0;
  virtual double read_frequency(Plc& plc) { return plc.reported_frequency(); }
  virtual std::string name() const = 0;
};

/// The genuine library: straight pass-through.
class DirectS7Proxy : public S7CommProxy {
 public:
  std::vector<std::string> list_blocks(Plc& plc) override {
    return plc.block_names();
  }
  std::optional<common::Bytes> read_block(Plc& plc,
                                          const std::string& name) override {
    return plc.read_block(name);
  }
  bool write_block(Plc& plc, const std::string& name,
                   common::Bytes data) override {
    plc.write_block(name, std::move(data));
    return true;
  }
  std::string name() const override { return "s7otbxdx-original"; }
};

/// Maps a DLL file's program id to the comm behaviour it implements.
class S7ProxyRegistry {
 public:
  /// Program id carried by the genuine library file.
  static constexpr const char* kOriginalDllProgram = "step7.s7otbxdx";

  S7ProxyRegistry();

  void register_proxy(std::string program_id,
                      std::function<std::unique_ptr<S7CommProxy>()> factory);
  std::unique_ptr<S7CommProxy> create(const std::string& program_id) const;
  bool known(const std::string& program_id) const;

 private:
  std::map<std::string, std::function<std::unique_ptr<S7CommProxy>()>>
      factories_;
};

/// The engineering application installed on a Windows host.
class Step7App : public winsys::HostComponent {
 public:
  static constexpr const char* kComponentKey = "step7";
  /// Where the communication DLL lives.
  static winsys::Path dll_path();

  /// Installs Step 7 on `host`: writes the genuine s7otbxdx.dll into
  /// %system% and attaches the app as a host component.
  static Step7App& install(winsys::Host& host, S7ProxyRegistry& registry);
  static Step7App* find(winsys::Host& host);

  Step7App(winsys::Host& host, S7ProxyRegistry& registry)
      : host_(host), registry_(registry) {}

  winsys::Host& host() { return host_; }

  // --- projects ---
  /// Creates a project folder with its .s7p descriptor; returns the dir.
  winsys::Path create_project(const std::string& project_name);
  /// Opens a project. Faithful to the paper's infection trigger: any
  /// executable DLL dropped into the project folder is loaded (executed)
  /// as a Step 7 plugin — "loading any Step 7 project in an infected folder
  /// causes Stuxnet to execute".
  bool open_project(const winsys::Path& project_dir);
  const std::vector<winsys::Path>& opened_projects() const {
    return opened_projects_;
  }

  // --- PLC cable connection ---
  void connect(Plc* plc);
  void disconnect() { plc_ = nullptr; }
  Plc* connected_plc() { return plc_; }

  // --- operations through the DLL ---
  /// Resolves the comm layer from the DLL file currently on disk. Nullptr if
  /// the DLL is missing/corrupt (Step 7 cannot talk to the PLC at all).
  std::unique_ptr<S7CommProxy> resolve_comm() const;
  std::vector<std::string> list_blocks();
  std::optional<common::Bytes> read_block(const std::string& name);
  bool write_block(const std::string& name, common::Bytes data);
  /// The frequency the engineer sees in the online view.
  std::optional<double> read_frequency();

 private:
  winsys::Host& host_;
  S7ProxyRegistry& registry_;
  Plc* plc_ = nullptr;
  std::vector<winsys::Path> opened_projects_;
};

}  // namespace cyd::scada
