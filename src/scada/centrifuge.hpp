#pragma once
// Gas-centrifuge rotor physics (the IR-1 analogue).
//
// Stuxnet's payload works by commanding the frequency converters to 1410 Hz,
// then 2 Hz, then 1064 Hz: over-speed stresses the aluminium rotor tube, and
// crawling through low speeds crosses the rotor's critical (resonant)
// frequencies. The model integrates stress as a function of drive frequency;
// past the yield threshold the rotor is destroyed, matching the paper's
// "excessive contact leading to the destruction of the machine".

#include <string>

#include "sim/time.hpp"

namespace cyd::scada {

class Centrifuge {
 public:
  /// Nominal enrichment speed for the modelled rotor.
  static constexpr double kNominalHz = 1064.0;
  /// Above this the tube stress grows quickly (over-speed).
  static constexpr double kOverSpeedHz = 1300.0;
  /// Below this (while spinning) the rotor transits resonance bands.
  static constexpr double kResonanceHz = 300.0;
  /// Mean accumulated stress at which a rotor fails; individual rotors
  /// scatter ±20% around it (manufacturing variance, derived from the id),
  /// which is what makes cascade die-off gradual rather than simultaneous.
  static constexpr double kYieldStress = 1.0;

  explicit Centrifuge(std::string id);

  const std::string& id() const { return id_; }
  double stress() const { return stress_; }
  /// This rotor's individual failure threshold.
  double yield_stress() const { return yield_; }
  bool destroyed() const { return destroyed_; }
  /// Frequency currently commanded by the drive.
  double frequency() const { return frequency_; }

  /// Advances the rotor by `dt` at drive frequency `hz`.
  void step(double hz, sim::Duration dt);

  /// Stress accumulation rate (per hour) at a given drive frequency; exposed
  /// so tests and the physics bench can probe the curve directly.
  static double damage_rate_per_hour(double hz);

 private:
  std::string id_;
  double yield_ = kYieldStress;
  double frequency_ = 0.0;
  double stress_ = 0.0;
  bool destroyed_ = false;
};

}  // namespace cyd::scada
