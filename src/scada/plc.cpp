#include "scada/plc.hpp"

namespace cyd::scada {

void NormalControlLogic::scan(Plc& plc, sim::Duration) {
  for (auto& drive : plc.bus().drives()) {
    drive->set_frequency(plc.operator_setpoint());
  }
  plc.report_frequency(plc.actual_frequency());
}

Plc::Plc(sim::Simulation& simulation, std::string name, std::string cp_model)
    : sim_(simulation),
      name_(std::move(name)),
      bus_(std::move(cp_model)),
      logic_(std::make_unique<NormalControlLogic>()) {
  // Factory image: the organisation's real control program blocks.
  blocks_["OB1"] = "main cyclic program";
  blocks_["OB35"] = "100ms watchdog routine";
  blocks_["DB8061"] = "drive configuration data";
}

void Plc::write_block(const std::string& block, common::Bytes data) {
  sim_.log(sim::TraceCategory::kScada, name_, "plc.block-write", block);
  blocks_[block] = std::move(data);
}

std::optional<common::Bytes> Plc::read_block(const std::string& block) const {
  auto it = blocks_.find(block);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;
}

bool Plc::has_block(const std::string& block) const {
  return blocks_.contains(block);
}

std::vector<std::string> Plc::block_names() const {
  std::vector<std::string> out;
  out.reserve(blocks_.size());
  for (const auto& [name, data] : blocks_) out.push_back(name);
  return out;
}

bool Plc::delete_block(const std::string& block) {
  return blocks_.erase(block) > 0;
}

void Plc::set_logic(std::unique_ptr<PlcLogic> logic) {
  if (logic == nullptr) return;
  sim_.log(sim::TraceCategory::kScada, name_, "plc.logic-swap",
           logic->name());
  logic_ = std::move(logic);
}

void Plc::start(sim::Duration scan_period) {
  if (running_) stop();
  running_ = true;
  scan_period_ = scan_period;
  scan_handle_ = sim_.every(
      scan_period, [this, scan_period] { scan_once(scan_period); });
}

void Plc::stop() {
  scan_handle_.cancel();
  running_ = false;
}

void Plc::scan_once(sim::Duration dt) {
  logic_->scan(*this, dt);
  for (auto& observer : observers_) observer(*this, dt);
  bus_.step(dt);
}

}  // namespace cyd::scada
