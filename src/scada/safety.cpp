#include "scada/safety.hpp"

#include <algorithm>
#include <cmath>

namespace cyd::scada {

void DigitalSafetySystem::attach(Plc& plc) {
  plc.add_scan_observer(
      [this](Plc& p, sim::Duration dt) { observe(p, dt); });
}

void DigitalSafetySystem::observe(Plc& plc, sim::Duration) {
  const double hz = plc.reported_frequency();
  const bool spinning = hz > 0.5 || plc.operator_setpoint() > 0.5;
  if (spinning && (hz < min_hz_ || hz > max_hz_)) {
    ++consecutive_;
    ++total_violations_;
  } else {
    consecutive_ = 0;
  }
  if (!tripped_ && consecutive_ >= trip_after_) {
    tripped_ = true;
    tripped_at_ = plc.simulation().now();
    plc.simulation().log(sim::TraceCategory::kScada, plc.name(),
                         "safety.trip",
                         "reported=" + std::to_string(hz) + "Hz");
  }
  if (tripped_) {
    // Emergency shutdown: drives to zero regardless of the control logic.
    for (auto& drive : plc.bus().drives()) drive->set_frequency(0.0);
  }
}

void OperatorHmi::attach(Plc& plc) {
  plc.add_scan_observer([this](Plc& p, sim::Duration) {
    history_.push_back(Sample{p.simulation().now(), p.reported_frequency(),
                              p.actual_frequency()});
  });
}

double OperatorHmi::max_deception() const {
  double worst = 0.0;
  for (const auto& s : history_) {
    worst = std::max(worst, std::abs(s.reported_hz - s.actual_hz));
  }
  return worst;
}

bool OperatorHmi::operator_saw_anomaly(double lo, double hi) const {
  for (const auto& s : history_) {
    if (s.reported_hz > 0.5 && (s.reported_hz < lo || s.reported_hz > hi)) {
      return true;
    }
  }
  return false;
}

}  // namespace cyd::scada
