#pragma once
// Digital safety system and operator HMI.
//
// Both consume the PLC's *reported* frequency — which is exactly why
// Stuxnet's replay of recorded normal values blinds them (paper §II-C,
// footnote 4: "digital safety systems are needed when a human operator
// cannot act quick enough").

#include <string>
#include <vector>

#include "scada/plc.hpp"
#include "sim/time.hpp"

namespace cyd::scada {

/// Trips the cascade when the reported frequency leaves the safe band for
/// several consecutive scans; while tripped it forces every drive to zero.
class DigitalSafetySystem {
 public:
  DigitalSafetySystem(double min_hz, double max_hz, int trip_after_scans = 3)
      : min_hz_(min_hz), max_hz_(max_hz), trip_after_(trip_after_scans) {}

  /// Registers the safety check as a scan observer on `plc`.
  void attach(Plc& plc);

  bool tripped() const { return tripped_; }
  sim::TimePoint tripped_at() const { return tripped_at_; }
  int violations_seen() const { return total_violations_; }
  /// Manual reset after inspection.
  void reset() { tripped_ = false; consecutive_ = 0; }

 private:
  void observe(Plc& plc, sim::Duration dt);

  double min_hz_;
  double max_hz_;
  int trip_after_;
  int consecutive_ = 0;
  int total_violations_ = 0;
  bool tripped_ = false;
  sim::TimePoint tripped_at_ = 0;
};

/// Operator display: samples the reported frequency every scan so benches
/// can plot "what the operator saw" against ground truth.
class OperatorHmi {
 public:
  struct Sample {
    sim::TimePoint time;
    double reported_hz;
    double actual_hz;
  };

  void attach(Plc& plc);

  const std::vector<Sample>& history() const { return history_; }
  /// Largest |reported - actual| observed: the deception magnitude.
  double max_deception() const;
  /// True if any sample's reported value left [lo, hi] — i.e. whether the
  /// operator had any chance of noticing.
  bool operator_saw_anomaly(double lo, double hi) const;

 private:
  std::vector<Sample> history_;
};

}  // namespace cyd::scada
