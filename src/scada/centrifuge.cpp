#include "scada/centrifuge.hpp"

#include "common/bytes.hpp"

namespace cyd::scada {

Centrifuge::Centrifuge(std::string id) : id_(std::move(id)) {
  // Deterministic ±20% manufacturing scatter keyed off the rotor id.
  const double unit =
      static_cast<double>(common::fnv1a64(id_) % 1000) / 999.0;
  yield_ = kYieldStress * (0.8 + 0.4 * unit);
}

double Centrifuge::damage_rate_per_hour(double hz) {
  if (hz <= 0.5) return 0.0;  // parked rotor takes no harm
  if (hz > kOverSpeedHz) {
    // Centripetal stress grows with the square of the over-speed excess.
    // Calibration: one Stuxnet cycle (15 min @ 1410 Hz + 50 min @ 2 Hz)
    // deposits ~0.2 stress, so rotors with ±20% yield scatter die across
    // the 4th..6th attack — months of covert sabotage, not one blow.
    const double excess = (hz - kOverSpeedHz) / 110.0;
    return 0.13 * excess * excess + 0.07 * excess;
  }
  if (hz < kResonanceHz) {
    // Dwelling in the resonance bands shakes the rotor; worst near-stall.
    return 0.18 * (kResonanceHz - hz) / kResonanceHz;
  }
  return 0.0;
}

void Centrifuge::step(double hz, sim::Duration dt) {
  if (destroyed_) return;  // wreckage does not spin back up
  frequency_ = hz;
  const double hours = static_cast<double>(dt) / sim::kHour;
  stress_ += damage_rate_per_hour(hz) * hours;
  if (stress_ >= yield_) {
    destroyed_ = true;
    frequency_ = 0.0;
  }
}

}  // namespace cyd::scada
