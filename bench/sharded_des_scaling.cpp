// SHARDED-DES-SCALING — parallel event execution without losing the run.
//
// PR 6 made 10⁵–10⁶-host worlds affordable to *build*; this bench measures
// executing them. The workload is trend-b's shape at 1:1 scale: a mass worm
// spreading through 128 sites × 800 office PCs (102,400 image-backed
// hosts), dense inside each site's LANs, crossing sites only over the WAN
// hub mesh — exactly the site-partitioned traffic sim::ShardedScheduler is
// built for.
//
// Two claims, both fatally asserted:
//  (1) Identity: the sharded run is indistinguishable from the single-queue
//      run — the (time, key) trace checksum and the full world state
//      (per-site infection counts, strain hashes, on-host file markers)
//      match bit for bit at every worker count. Conservative windows plus
//      the keyed merge rule make the parallel schedule a permutation of the
//      serial one with per-shard order preserved, so this is an equality
//      check, not a tolerance band.
//  (2) Speedup: ≥2x wall-clock over the single-queue baseline on 4+ core
//      hardware (checked only when the cores exist; identity holds on any).
//
// bench_smoke exports `sharded_trace_match` (always) and
// `sharded_speedup_4core` (on 4+-core machines) for tools/bench_diff's hard
// floors.

#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/world.hpp"
#include "sim/sharded_scheduler.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

double time_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// The workload: a deterministic mass-worm epidemic over the site topology.
//
// Every decision — fan-out targets, delays, when to hop the WAN — is a pure
// function of per-site counters via sim::derive_seed, so the same events
// fire with the same keys whichever mode executes them. Events touch only
// their own site's state and hosts (the shard-safety contract); cross-site
// hops go through ShardedScheduler::send over the WAN channels.

struct EpidemicConfig {
  std::size_t sites = 128;
  std::size_t hosts_per_site = 800;
  sim::TimePoint deadline = 28 * sim::kDay;
  /// Deterministic per-attempt payload mixing rounds. The default stands in
  /// for real per-victim worm work; the mega pass dials it down so a
  /// million-host run measures event execution, not hashing.
  int payload_iters = 2048;
  /// Sites seeded with patient zero at staggered times. One seed reproduces
  /// the classic single-origin epidemic; the mega pass seeds many sites so
  /// activity spans the whole 1,024-shard world inside a short horizon.
  std::size_t seed_sites = 1;

  std::size_t total_hosts() const { return sites * hosts_per_site; }
};

struct SiteState {
  std::size_t first_host = 0;             // index into World::hosts()
  std::uint64_t infected = 0;
  std::uint64_t attempts = 0;             // infection events executed here
  std::uint64_t strain = 0x9e3779b97f4a7c15ull;  // rolling infection hash
  std::vector<std::uint8_t> hit;          // per-host infected bit
  std::vector<std::uint32_t> neighbors;   // shards reachable via send()
};

struct Epidemic {
  const EpidemicConfig& cfg;
  // Materialized before the first round: World::hosts() caches on first
  // call, which must happen on the main thread, not inside a shard event.
  const std::vector<winsys::Host*>& hosts;
  sim::ShardedScheduler& sched;
  std::vector<SiteState>& sites;

  void infect(std::size_t site, std::size_t offset);
};

/// One infection attempt landing on `offset` within `site`. Runs on the
/// site's shard; everything it touches belongs to that shard.
void Epidemic::infect(std::size_t site, std::size_t offset) {
  SiteState& s = sites[site];
  ++s.attempts;
  // Strain evolution: a few µs of deterministic mixing per attempt, standing
  // in for the payload work (decrypt, mutate, re-pack) a real worm does per
  // victim. This is the compute the shards parallelize; without it the
  // benchmark would measure queue bookkeeping instead of event execution.
  std::uint64_t evolved = s.strain ^ sim::derive_seed(site, offset);
  for (int i = 0; i < cfg.payload_iters; ++i) {
    evolved = sim::derive_seed(evolved, i);
  }
  s.strain ^= evolved >> 8u;
  const bool fresh = s.hit[offset] == 0;
  if (fresh) {
    s.hit[offset] = 1;
    ++s.infected;
    s.strain ^= sim::derive_seed(site, offset) + 0x9e37u * s.infected;
    // Real host mutation, not just counters: drop the worm body into the
    // victim's COW delta (image-backed hosts share the template, so this
    // materializes exactly one path). Proves Host/FileSystem writes are
    // shard-safe when hosts are shard-disjoint.
    winsys::Host& victim = *hosts[s.first_host + offset];
    victim.fs().write_file(winsys::Path("c:\\windows\\temp\\~wrm.tmp"),
                           "worm body", sched.now(site));
  }
  // LAN fan-out: two follow-ups while the site still has uninfected hosts
  // and the attempt budget holds (keeps the tail from ringing forever).
  if (s.infected < cfg.hosts_per_site && s.attempts < 4 * cfg.hosts_per_site) {
    const int fanout = fresh ? 2 : 1;
    for (int k = 0; k < fanout; ++k) {
      const std::uint64_t draw = sim::derive_seed(s.strain + s.attempts, k);
      const auto next = static_cast<std::size_t>(draw % cfg.hosts_per_site);
      const auto delay =
          sim::minutes(20) + static_cast<sim::Duration>(draw >> 40u) % sim::hours(8);
      sched.schedule(site, sched.now(site) + delay,
                     [this, site, next] { infect(site, next); });
    }
  }
  // WAN hop: every 48th infection beacons a copy to one reachable site —
  // this is the cross-shard traffic the conservative windows synchronize.
  if (fresh && s.infected % 48 == 1 && !s.neighbors.empty()) {
    const std::uint64_t draw = sim::derive_seed(s.strain, 0x5eed);
    const std::uint32_t to = s.neighbors[draw % s.neighbors.size()];
    const auto offset_there =
        static_cast<std::size_t>((draw >> 32u) % cfg.hosts_per_site);
    const auto jitter = static_cast<sim::Duration>(draw % sim::hours(2));
    sched.send(site, to, jitter, [this, to, offset_there] {
      infect(to, offset_there);
    });
  }
}

struct ModeResult {
  std::uint64_t trace_checksum = 0;
  std::uint64_t state_checksum = 0;
  std::size_t executed = 0;
  std::size_t rounds = 0;
  std::size_t cross = 0;
  std::size_t infected = 0;
  std::size_t markers = 0;  // on-host worm files actually materialized
  double build_ms = 0.0;
  double run_ms = 0.0;
};

/// Runs one mode/backend over an already-built world. Identity across runs
/// on the *same* world is sound because the workload is deterministic: two
/// identical runs infect the same host set and write the same marker files
/// (same path, content, timestamps), so even the COW deltas a previous run
/// left behind are invisible to the comparison.
ModeResult run_epidemic_in(core::World& world,
                           const std::vector<core::FleetHandle>& fleets,
                           const EpidemicConfig& cfg,
                           sim::ShardedScheduler::Mode mode, unsigned workers,
                           sim::EventQueue::Backend backend) {
  ModeResult result;
  const sim::ShardPlan plan = world.shard_plan();
  sim::ShardedScheduler sched(
      plan, sim::ShardedScheduler::Options{mode, workers, backend});

  std::vector<SiteState> sites(cfg.sites);
  for (std::size_t s = 0; s < cfg.sites; ++s) {
    sites[s].first_host = fleets[s].first;
    sites[s].hit.assign(cfg.hosts_per_site, 0);
  }
  for (const sim::ShardChannel& c : plan.channels) {
    sites[c.from].neighbors.push_back(c.to);
  }

  Epidemic epidemic{cfg, world.hosts(), sched, sites};
  const std::size_t stride =
      std::max<std::size_t>(1, cfg.sites / std::max<std::size_t>(
                                               1, cfg.seed_sites));
  for (std::size_t k = 0; k < cfg.seed_sites; ++k) {
    const std::size_t site = (k * stride) % cfg.sites;
    sched.schedule(site, sim::kHour + sim::minutes(7 * k),
                   [&epidemic, site] { epidemic.infect(site, 0); });
  }

  result.run_ms = time_ms([&] {
    const auto report = sched.run_until(cfg.deadline);
    result.trace_checksum = report.trace_checksum;
    result.executed = report.executed;
    result.rounds = report.rounds;
    result.cross = report.cross_shard_messages;
  });

  std::uint64_t state = 0xcbf29ce484222325ull;
  const winsys::Path marker("c:\\windows\\temp\\~wrm.tmp");
  for (std::size_t s = 0; s < cfg.sites; ++s) {
    const SiteState& site = sites[s];
    state = (state ^ site.infected) * 1099511628211ull;
    state = (state ^ site.attempts) * 1099511628211ull;
    state = (state ^ site.strain) * 1099511628211ull;
    result.infected += static_cast<std::size_t>(site.infected);
    for (std::size_t h = 0; h < cfg.hosts_per_site; ++h) {
      if (world.hosts()[site.first_host + h]->fs().exists(marker)) {
        ++result.markers;
      }
    }
  }
  result.state_checksum = state;
  return result;
}

ModeResult run_epidemic(const EpidemicConfig& cfg,
                        sim::ShardedScheduler::Mode mode, unsigned workers,
                        sim::EventQueue::Backend backend =
                            sim::EventQueue::Backend::kHeap) {
  core::World world(0x5eed);
  std::vector<core::FleetHandle> fleets;
  // The trend-b hub-spoke shape, shared with epidemic_scaling via the
  // bench_util fleet builder: site-name order == shard order.
  const double build_ms = time_ms([&] {
    fleets = benchutil::build_hub_spoke_fleet(world, cfg.sites,
                                              cfg.hosts_per_site)
                 .fleets;
  });
  ModeResult result =
      run_epidemic_in(world, fleets, cfg, mode, workers, backend);
  result.build_ms = build_ms;
  return result;
}

[[noreturn]] void fatal(const char* what) {
  std::printf("\nFATAL: %s\n", what);
  std::exit(1);
}

void check_identity(const ModeResult& reference, const ModeResult& candidate) {
  if (candidate.trace_checksum != reference.trace_checksum) {
    fatal("sharded (time,key) trace checksum diverged from single-queue");
  }
  if (candidate.state_checksum != reference.state_checksum ||
      candidate.executed != reference.executed ||
      candidate.cross != reference.cross ||
      candidate.infected != reference.infected ||
      candidate.markers != reference.markers) {
    fatal("sharded world state diverged from single-queue");
  }
  if (candidate.markers != candidate.infected) {
    fatal("infection count and on-host worm markers disagree");
  }
}

// ---------------------------------------------------------------------------
// Reproduction pass: full-scale identity + speedup table

void reproduce_sharded_epidemic() {
  benchutil::section("site-sharded DES vs single queue (trend-b shape, 1:1)");

  const EpidemicConfig cfg;
  std::printf("%zu sites x %zu hosts = %zu image-backed hosts, 8 WAN hubs; "
              "lookahead = min link latency = 6h\n",
              cfg.sites, cfg.hosts_per_site, cfg.total_hosts());

  const auto reference =
      run_epidemic(cfg, sim::ShardedScheduler::Mode::kSingleQueue, 1);
  std::printf("\nsingle-queue reference: %zu events, %zu cross-site hops, "
              "%zu infected, checksum %016llx (build %.0f ms, run %.0f ms)\n",
              reference.executed, reference.cross, reference.infected,
              static_cast<unsigned long long>(reference.trace_checksum),
              reference.build_ms, reference.run_ms);
  if (reference.infected < cfg.total_hosts() / 4) {
    fatal("epidemic fizzled — workload no longer exercises the scheduler");
  }
  if (reference.cross == 0) {
    fatal("no cross-site traffic — shard synchronization untested");
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> worker_counts{1, 2};
  if (hw > 2) worker_counts.push_back(hw);

  std::printf("\n%-10s %-10s %-10s %-12s %-10s %-16s\n", "backend", "workers",
              "rounds", "wall-ms", "speedup", "checksum-match");
  double best_speedup = 0.0;
  for (const auto backend : {sim::EventQueue::Backend::kHeap,
                             sim::EventQueue::Backend::kCalendar}) {
    const char* name =
        backend == sim::EventQueue::Backend::kHeap ? "heap" : "calendar";
    for (const unsigned workers : worker_counts) {
      const auto sharded = run_epidemic(
          cfg, sim::ShardedScheduler::Mode::kSharded, workers, backend);
      check_identity(reference, sharded);
      const double speedup = reference.run_ms / sharded.run_ms;
      best_speedup = std::max(best_speedup, speedup);
      std::printf("%-10s %-10u %-10zu %-12.0f %-10.2f %-16s\n", name, workers,
                  sharded.rounds, sharded.run_ms, speedup,
                  "yes (bit-identical)");
    }
  }

  std::printf("\nevery sharded schedule — heap and calendar backends alike — "
              "reproduced the single-queue trace and world state "
              "bit-for-bit.\n");
  if (hw >= 4) {
    std::printf("best speedup %.2fx on %u cores (target: >=2x)\n",
                best_speedup, hw);
    if (best_speedup < 2.0) {
      fatal("sharded speedup below the 2x floor on 4+ cores");
    }
  } else {
    std::printf("note: only %u hardware thread(s) here — the >=2x speedup "
                "target needs a 4+-core machine; identity holds on any.\n",
                hw);
  }
}

// ---------------------------------------------------------------------------
// Mega pass: the 10⁶-host world add_fleet can build, executed end to end.
//
// 1,024 sites × 1,024 office PCs = 1,048,576 image-backed hosts — at the
// 4,096-shard ceiling's quarter mark and an order of magnitude past the
// headline 102,400-host pass. Payload mixing is dialed down and patient
// zeros are staggered across 32 sites so three simulated days light up the
// whole shard map without saturating a 1-core CI runner; the identity gate
// is exactly the full-scale one. The world is built once and shared across
// runs (see run_epidemic_in for why that is sound) — at ~2.7 KB marginal
// heap per host the world itself is the dominant allocation, not the queues.

EpidemicConfig mega_config() {
  EpidemicConfig cfg;
  cfg.sites = 1024;
  cfg.hosts_per_site = 1024;
  cfg.deadline = 3 * sim::kDay;
  cfg.payload_iters = 32;
  cfg.seed_sites = 32;
  return cfg;
}

struct MegaWorld {
  core::World world{0x5eed};
  std::vector<core::FleetHandle> fleets;
  double build_ms = 0.0;
};

MegaWorld& mega_world() {
  static MegaWorld mega;  // World is pinned in place (not movable)
  static bool built = false;
  if (!built) {
    built = true;
    const EpidemicConfig cfg = mega_config();
    mega.build_ms = time_ms([&] {
      mega.fleets = benchutil::build_hub_spoke_fleet(mega.world, cfg.sites,
                                                     cfg.hosts_per_site)
                        .fleets;
    });
  }
  return mega;
}

void reproduce_mega_epidemic() {
  benchutil::section("mega: 1,048,576 hosts / 1,024 shards, heap vs calendar");
  const EpidemicConfig cfg = mega_config();
  MegaWorld& mega = mega_world();
  std::printf("%zu sites x %zu hosts = %zu image-backed hosts "
              "(built in %.0f ms), %zu seeded sites, %.0f-day horizon\n",
              cfg.sites, cfg.hosts_per_site, cfg.total_hosts(), mega.build_ms,
              cfg.seed_sites, static_cast<double>(cfg.deadline) / sim::kDay);

  const auto reference =
      run_epidemic_in(mega.world, mega.fleets, cfg,
                      sim::ShardedScheduler::Mode::kSingleQueue, 1,
                      sim::EventQueue::Backend::kHeap);
  std::printf("\nsingle-queue heap reference: %zu events, %zu cross-site "
              "hops, %zu infected, checksum %016llx (run %.0f ms)\n",
              reference.executed, reference.cross, reference.infected,
              static_cast<unsigned long long>(reference.trace_checksum),
              reference.run_ms);
  if (reference.infected < cfg.sites * 4) {
    fatal("mega epidemic fizzled — the 10^6-host run no longer exercises "
          "the shard map");
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> worker_counts{1, 2};
  if (hw > 2) worker_counts.push_back(hw);

  std::printf("\n%-10s %-10s %-10s %-12s %-16s\n", "backend", "workers",
              "rounds", "wall-ms", "checksum-match");
  for (const auto backend : {sim::EventQueue::Backend::kHeap,
                             sim::EventQueue::Backend::kCalendar}) {
    const char* name =
        backend == sim::EventQueue::Backend::kHeap ? "heap" : "calendar";
    for (const unsigned workers : worker_counts) {
      const auto sharded = run_epidemic_in(
          mega.world, mega.fleets, cfg, sim::ShardedScheduler::Mode::kSharded,
          workers, backend);
      check_identity(reference, sharded);
      std::printf("%-10s %-10u %-10zu %-12.0f %-16s\n", name, workers,
                  sharded.rounds, sharded.run_ms, "yes (bit-identical)");
    }
  }
  std::printf("\nthe million-host sharded run reproduces the single-queue "
              "trace bit-for-bit under both backends.\n");
}

// ---------------------------------------------------------------------------
// google-benchmark cases for regression tracking (BENCH_*.json baselines)

EpidemicConfig smoke_config() {
  EpidemicConfig cfg;
  cfg.sites = 24;
  cfg.hosts_per_site = 96;
  cfg.deadline = 28 * sim::kDay;
  return cfg;
}

void BM_ShardedIdentity(benchmark::State& state) {
  const EpidemicConfig cfg = smoke_config();
  for (auto _ : state) {
    const auto reference =
        run_epidemic(cfg, sim::ShardedScheduler::Mode::kSingleQueue, 1);
    const auto sharded =
        run_epidemic(cfg, sim::ShardedScheduler::Mode::kSharded, 2);
    check_identity(reference, sharded);  // exits on divergence
    const auto calendar =
        run_epidemic(cfg, sim::ShardedScheduler::Mode::kSharded, 2,
                     sim::EventQueue::Backend::kCalendar);
    check_identity(reference, calendar);  // backend knob is trace-invisible
    benchmark::DoNotOptimize(sharded.trace_checksum);
  }
  // A hard bench_diff floor: 1.0 means every checksum matched (the process
  // died before reporting otherwise).
  state.counters["sharded_trace_match"] = 1.0;
}
BENCHMARK(BM_ShardedIdentity)->Unit(benchmark::kMillisecond);

void BM_MegaShardedIdentity(benchmark::State& state) {
  // The 10⁶-host identity gate: single-queue heap reference vs. the
  // sharded calendar run — crossing mode AND backend in one comparison —
  // over the shared mega world. Pinned to one iteration: a single pass is
  // already a million-host end-to-end run, and the counter (not the wall
  // time) is what CI gates.
  const EpidemicConfig cfg = mega_config();
  MegaWorld& mega = mega_world();
  for (auto _ : state) {
    const auto reference =
        run_epidemic_in(mega.world, mega.fleets, cfg,
                        sim::ShardedScheduler::Mode::kSingleQueue, 1,
                        sim::EventQueue::Backend::kHeap);
    const auto sharded = run_epidemic_in(
        mega.world, mega.fleets, cfg, sim::ShardedScheduler::Mode::kSharded,
        2, sim::EventQueue::Backend::kCalendar);
    check_identity(reference, sharded);  // exits on divergence
    benchmark::DoNotOptimize(sharded.trace_checksum);
  }
  state.counters["mega_trace_match"] = 1.0;
  state.counters["mega_hosts"] = static_cast<double>(cfg.total_hosts());
}
BENCHMARK(BM_MegaShardedIdentity)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_SingleQueueEpidemic(benchmark::State& state) {
  const EpidemicConfig cfg = smoke_config();
  for (auto _ : state) {
    const auto r =
        run_epidemic(cfg, sim::ShardedScheduler::Mode::kSingleQueue, 1);
    benchmark::DoNotOptimize(r.trace_checksum);
  }
}
BENCHMARK(BM_SingleQueueEpidemic)->Unit(benchmark::kMillisecond);

void BM_ShardedEpidemic(benchmark::State& state) {
  const EpidemicConfig cfg = smoke_config();
  for (auto _ : state) {
    const auto r = run_epidemic(cfg, sim::ShardedScheduler::Mode::kSharded, 0);
    benchmark::DoNotOptimize(r.trace_checksum);
  }
}
BENCHMARK(BM_ShardedEpidemic)->Unit(benchmark::kMillisecond);

void BM_ShardedSpeedup(benchmark::State& state) {
  // Medium scale so the measurement is dominated by event execution, not
  // world construction; one serial + one sharded run per iteration.
  EpidemicConfig cfg;
  cfg.sites = 64;
  cfg.hosts_per_site = 256;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double serial_ms = 0.0;
  double sharded_ms = 0.0;
  for (auto _ : state) {
    const auto reference =
        run_epidemic(cfg, sim::ShardedScheduler::Mode::kSingleQueue, 1);
    const auto sharded =
        run_epidemic(cfg, sim::ShardedScheduler::Mode::kSharded, 0);
    check_identity(reference, sharded);
    serial_ms += reference.run_ms;
    sharded_ms += sharded.run_ms;
    benchmark::DoNotOptimize(sharded.trace_checksum);
  }
  // Gated at >=2.0 by tools/bench_diff on CI's 4-core runners; machines
  // without the cores measure nothing meaningful and export no counter (a
  // counter the baseline lacks is legal; dropping one it has is not).
  if (hw >= 4 && sharded_ms > 0.0) {
    state.counters["sharded_speedup_4core"] = serial_ms / sharded_ms;
  }
}
BENCHMARK(BM_ShardedSpeedup)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header(
      "SHARDED-DES-SCALING: site-sharded parallel event execution",
      "framework performance for trend-b at 1:1 scale (102,400 hosts)");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) {
    reproduce_sharded_epidemic();
    if (benchutil::has_flag(argc, argv, "--mega")) {
      reproduce_mega_epidemic();
    }
  }
  return benchutil::run_benchmarks(argc, argv);
}
