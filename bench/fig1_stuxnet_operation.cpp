// FIG-1 — "Overview of Stuxnet Malware Operation" (paper Fig. 1).
//
// The figure shows the three-level attack: (1) compromise Windows,
// (2) compromise the Step 7 application, (3) compromise the PLC. This bench
// runs the full Natanz campaign and prints the level-by-level ledger plus
// the monthly sabotage series: destroyed centrifuges climb while the
// operator-visible telemetry never leaves the normal band.

#include "bench_util.hpp"
#include "core/user_behavior.hpp"
#include "malware/stuxnet/stuxnet.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

struct CampaignResult {
  std::size_t windows_infections = 0;
  std::size_t project_infections = 0;
  std::size_t dll_replacements = 0;
  std::size_t plc_strikes = 0;
  std::size_t destroyed = 0;
  std::size_t total = 0;
  bool safety_tripped = false;
  bool operator_saw = false;
};

// Runs the full Natanz campaign; with a Report the level-by-level ledger and
// monthly series are rendered into it (the sweep item), without one only the
// simulation runs (the google-benchmark path).
void run_campaign(benchutil::Report* report) {
  core::World world(0x57);
  world.add_internet_landmarks();
  core::NatanzSpec spec;
  auto site = core::build_natanz_site(world, spec);

  malware::stuxnet::StuxnetConfig config;
  config.plc_timing.observe_window = sim::days(13);
  config.plc_timing.cover_duration = sim::days(27);
  malware::stuxnet::Stuxnet stuxnet(world.sim(), world.network(),
                                    world.programs(), world.s7_registry(),
                                    world.tracker(), config);

  auto& stick = world.add_usb("integrator-stick");
  stuxnet.arm_usb(stick);
  core::schedule_usb_courier(world, stick,
                             {site.office[0], site.office[3], site.eng_laptop},
                             sim::hours(8));
  for (std::size_t c = 0; c < site.cascades.size(); ++c) {
    const auto project =
        site.step7->create_project("a2" + std::to_string(1 + c));
    core::schedule_engineering_work(world, *site.step7, project,
                                    site.cascades[c],
                                    sim::days(1) + sim::hours(2 * c));
  }

  if (report != nullptr) {
    report->section("monthly series (who wins: the worm, silently)");
    report->printf("%-10s %-9s %-10s %-10s %-9s %-8s %-s\n", "month",
                   "infected", "strikes", "destroyed", "hmi-Hz", "true-Hz",
                   "safety");
  }
  for (int month = 1; month <= 12; ++month) {
    world.sim().run_for(30 * sim::kDay);
    if (report == nullptr) continue;
    double hmi = 0, actual = 0;
    for (auto* plc : site.cascades) {
      hmi += plc->reported_frequency();
      actual += plc->actual_frequency();
    }
    hmi /= static_cast<double>(site.cascades.size());
    actual /= static_cast<double>(site.cascades.size());
    report->printf("%-10d %-9zu %-10zu %4zu/%-5zu %-9.0f %-8.0f %-s\n", month,
                   world.tracker().infected_count("stuxnet"),
                   stuxnet.plc_strikes(), site.destroyed_centrifuges(),
                   site.total_centrifuges(), hmi, actual,
                   site.any_safety_tripped() ? "TRIPPED" : "quiet");
  }

  if (report != nullptr) {
    CampaignResult result;
    result.windows_infections = world.tracker().infected_count("stuxnet");
    result.plc_strikes = stuxnet.plc_strikes();
    result.destroyed = site.destroyed_centrifuges();
    result.total = site.total_centrifuges();
    result.safety_tripped = site.any_safety_tripped();
    auto* inf = malware::stuxnet::Stuxnet::find(*site.eng_laptop);
    result.dll_replacements =
        inf != nullptr && inf->step7_dll_replaced ? 1 : 0;
    result.project_infections =
        world.sim().trace().count_action("stuxnet.project-infected");
    for (const auto& hmi : site.hmis) {
      if (hmi->operator_saw_anomaly(800.0, 1250.0)) result.operator_saw = true;
    }

    report->section("the three levels of Fig. 1");
    report->printf("level 1  compromising Windows      : %zu hosts infected "
                   "(vectors: usb-lnk + spooler + shares)\n",
                   result.windows_infections);
    report->printf("level 2  compromising Step 7       : s7otbxdx.dll "
                   "replaced=%zu, projects contaminated=%zu\n",
                   result.dll_replacements, result.project_infections);
    report->printf("level 3  compromising the PLC      : %zu cascade PLCs "
                   "injected, %zu/%zu centrifuges destroyed\n",
                   result.plc_strikes, result.destroyed, result.total);
    report->section("stealth verdict");
    report->printf("digital safety system tripped      : %s\n",
                   result.safety_tripped ? "YES (deception failed)" : "no");
    report->printf("operator saw an out-of-band value  : %s\n",
                   result.operator_saw ? "YES" : "no");
    report->printf("C&C check-ins from the site        : %zu\n",
                   stuxnet.c2().victim_count());
  }
}

void reproduce() {
  // One campaign in the grid, but routed through the same sweep machinery as
  // the multi-cell figures so every figure bench shares one code shape.
  auto reports = sim::Sweep::map_items(
      std::vector<int>{0}, [](int) {
        benchutil::Report report;
        run_campaign(&report);
        return report;
      });
  reports[0].dump();
}

void BM_NatanzCampaignYear(benchmark::State& state) {
  for (auto _ : state) run_campaign(nullptr);
}
BENCHMARK(BM_NatanzCampaignYear)->Unit(benchmark::kMillisecond);

void BM_PlcScanCycle(benchmark::State& state) {
  sim::Simulation simulation;
  scada::Plc plc(simulation, "bench-plc");
  auto& drive = plc.bus().add_drive("d", scada::DriveVendor::kVacon);
  for (int i = 0; i < 164; ++i) drive.add_centrifuge(std::to_string(i));
  plc.set_operator_setpoint(1064.0);
  for (auto _ : state) plc.scan_once(sim::kMinute);
}
BENCHMARK(BM_PlcScanCycle);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("FIG-1: Stuxnet operation overview (Natanz campaign)",
                    "Figure 1 — three-level attack: Windows -> Step 7 -> PLC");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
