#pragma once
// Shared helpers for the reproduction benches.
//
// Every bench binary follows the same shape: print the reproduced
// table/series for its figure or trend (deterministic, seed-fixed), then
// hand over to google-benchmark for the performance measurements. Keeping
// the reproduction in plain stdout keeps `for b in build/bench/*; do $b;
// done` self-contained.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/scenario.hpp"
#include "pki/signing.hpp"

namespace cyd::benchutil {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// A commercial code-signing ecosystem: one trusted root plus a leaf issued
/// to `subject`. Installs the root into the given host-independent stores.
struct SigningIdentity {
  pki::CertificateAuthority ca;
  pki::KeyPair key;
  pki::Certificate cert;

  static SigningIdentity make(const std::string& subject,
                              std::uint64_t seed) {
    auto ca = pki::CertificateAuthority::create_root(
        "Commercial Root CA", pki::HashAlgorithm::kStrong64, 0,
        sim::days(20000), seed);
    auto key = pki::KeyPair::generate(seed ^ 0x99);
    auto cert = ca.issue(subject, pki::kUsageCodeSigning,
                         pki::HashAlgorithm::kStrong64, 0, sim::days(20000),
                         key);
    return SigningIdentity{std::move(ca), key, std::move(cert)};
  }

  void trust_on(winsys::Host& host) const {
    host.cert_store().add(ca.certificate());
    host.trust_store().trust_root(ca.certificate().serial);
  }
};

/// Runs the registered google-benchmark cases with default settings.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cyd::benchutil
