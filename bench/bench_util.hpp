#pragma once
// Shared helpers for the reproduction benches.
//
// Every bench binary follows the same shape: print the reproduced
// table/series for its figure or trend (deterministic, seed-fixed), then
// hand over to google-benchmark for the performance measurements. Keeping
// the reproduction in plain stdout keeps `for b in build/bench/*; do $b;
// done` self-contained.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "core/world.hpp"
#include "pki/signing.hpp"
#include "sim/sharded_scheduler.hpp"

namespace cyd::benchutil {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// printf-compatible sink that buffers instead of writing to stdout. The
/// figure benches run their scenario grids through sim::Sweep::map_items;
/// each run renders its part of the report into a Report and the caller
/// dumps them in item order, so the parallel fan-out stays byte-identical
/// to the serial loop it replaced.
class Report {
 public:
  [[gnu::format(printf, 2, 3)]] void printf(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::va_list measure;
    va_copy(measure, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, measure);
    va_end(measure);
    if (n > 0) {
      const std::size_t old = text_.size();
      text_.resize(old + static_cast<std::size_t>(n) + 1);
      std::vsnprintf(text_.data() + old, static_cast<std::size_t>(n) + 1, fmt,
                     args);
      text_.resize(old + static_cast<std::size_t>(n));  // drop the NUL
    }
    va_end(args);
  }

  void section(const std::string& name) { printf("\n-- %s --\n", name.c_str()); }

  const std::string& text() const { return text_; }
  bool empty() const { return text_.empty(); }

  /// Writes the buffered report to stdout.
  void dump() const { std::fwrite(text_.data(), 1, text_.size(), stdout); }

 private:
  std::string text_;
};

/// True when `flag` appears verbatim in argv. The benches use `--no-repro`
/// to skip the deterministic reproduction pass (the bench_smoke target only
/// wants the timed cases); google-benchmark leaves argv entries it does not
/// recognize alone, so the extra flag is safe to pass through.
inline bool has_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// A commercial code-signing ecosystem: one trusted root plus a leaf issued
/// to `subject`. Installs the root into the given host-independent stores.
struct SigningIdentity {
  pki::CertificateAuthority ca;
  pki::KeyPair key;
  pki::Certificate cert;

  static SigningIdentity make(const std::string& subject,
                              std::uint64_t seed) {
    auto ca = pki::CertificateAuthority::create_root(
        "Commercial Root CA", pki::HashAlgorithm::kStrong64, 0,
        sim::days(20000), seed);
    auto key = pki::KeyPair::generate(seed ^ 0x99);
    auto cert = ca.issue(subject, pki::kUsageCodeSigning,
                         pki::HashAlgorithm::kStrong64, 0, sim::days(20000),
                         key);
    return SigningIdentity{std::move(ca), key, std::move(cert)};
  }

  void trust_on(winsys::Host& host) const {
    host.cert_store().add(ca.certificate());
    host.trust_store().trust_root(ca.certificate().serial);
  }
};

/// The trend-b world shape shared by the scaling benches (and the first
/// concrete step toward the ROADMAP scenario compiler): `sites` office
/// fleets named org0000, org0001, … — zero-padded so site-name order (the
/// shard order World::shard_plan derives) equals build order — with the
/// first min(8, sites) sites doubling as fully-meshed regional WAN hubs at
/// hours(12) and every other site hanging off its region at hours(6).
struct HubSpokeFleet {
  std::vector<std::string> site_names;
  std::vector<core::FleetHandle> fleets;
};

inline HubSpokeFleet build_hub_spoke_fleet(
    core::World& world, std::size_t sites, std::size_t hosts_per_site,
    winsys::HostArchetype archetype = winsys::HostArchetype::kOfficePc) {
  if (sites > 9999) {
    // "org%04zu" zero-padding is what makes site-name order equal build
    // order (the shard_plan invariant); "org10000" would sort before
    // "org2000" and silently desynchronize shard order from fleet index.
    throw std::invalid_argument(
        "build_hub_spoke_fleet: sites > 9999 breaks the zero-padded "
        "name-order == build-order invariant; widen the padding first");
  }
  HubSpokeFleet out;
  out.site_names.resize(sites);
  out.fleets.resize(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    char name[24];  // org + zero-padded index, sized for %04zu's worst case
    std::snprintf(name, sizeof(name), "org%04zu", s);
    out.site_names[s] = name;
    out.fleets[s] =
        world.add_fleet(archetype, hosts_per_site, out.site_names[s]);
  }
  const std::size_t hubs = std::min<std::size_t>(8, sites);
  for (std::size_t s = hubs; s < sites; ++s) {
    world.network().link_sites(out.site_names[s], out.site_names[s % hubs],
                               sim::hours(6));
  }
  for (std::size_t a = 0; a < hubs; ++a) {
    for (std::size_t b = a + 1; b < hubs; ++b) {
      world.network().link_sites(out.site_names[a], out.site_names[b],
                                 sim::hours(12));
    }
  }
  return out;
}

/// A hand-built ring shard plan ("site-0" … "site-N-1", bidirectional links)
/// for storms whose shards never actually talk: the channels exist to give
/// the conservative windows a realistic lookahead instead of the unbounded
/// isolated-shard fast path.
inline sim::ShardPlan ring_plan(std::size_t shards,
                                sim::Duration latency = 6 * sim::kHour) {
  sim::ShardPlan plan;
  for (std::size_t k = 0; k < shards; ++k) {
    plan.labels.push_back("site-" + std::to_string(k));
  }
  for (std::size_t k = 0; k < shards; ++k) {
    const auto a = static_cast<std::uint32_t>(k);
    const auto b = static_cast<std::uint32_t>((k + 1) % shards);
    plan.channels.push_back({a, b, latency});
    plan.channels.push_back({b, a, latency});
  }
  return plan;
}

/// Runs the registered google-benchmark cases with default settings.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace cyd::benchutil
