// FIG-4 — "The Command and Control Platform behind Flame" (paper Fig. 4).
//
// The platform layer: ~80 domains registered under fake identities (mostly
// German/Austrian addresses) across many registrars, resolving to 22 C&C
// servers, all run from a single attack center; clients boot with 5 domains
// and extend to ~10 after first contact. The bench fabricates that exact
// fleet, runs a 60-victim campaign, and prints the platform statistics
// analysts reported.

#include <map>

#include "bench_util.hpp"
#include "cnc/attack_center.hpp"
#include "cnc/domains.hpp"
#include "malware/flame/flame.hpp"
#include "sim/sweep.hpp"

using namespace cyd;

namespace {

// Fabricates the fleet, runs the week-long campaign, and renders the
// platform statistics into `report` (the sweep item for this figure).
void run_platform(benchutil::Report& report) {
  core::World world(0xf14);
  world.add_internet_landmarks();

  auto rng = world.rng().fork();
  const auto fleet = cnc::DomainFleet::generate(80, 22, rng);

  report.section("registration layer (80 domains -> 22 servers)");
  std::map<std::string, int> by_registrar, by_country;
  for (const auto& record : fleet) {
    ++by_registrar[record.registrar];
    ++by_country[record.registrant_country];
  }
  report.printf("registrars used: %zu\n",
                cnc::DomainFleet::registrar_count(fleet));
  for (const auto& [registrar, count] : by_registrar) {
    report.printf("  %-14s %d domains\n", registrar.c_str(), count);
  }
  report.printf("fake registrant countries: %zu\n",
                cnc::DomainFleet::country_count(fleet));
  for (const auto& [country, count] : by_country) {
    report.printf("  %-14s %d identities\n", country.c_str(), count);
  }
  report.printf("sample records:\n");
  for (int i = 0; i < 3; ++i) {
    report.printf("  %-22s reg=%-10s ident=\"%s\" (%s) -> %s\n",
                  fleet[i].domain.c_str(), fleet[i].registrar.c_str(),
                  fleet[i].registrant.c_str(),
                  fleet[i].registrant_country.c_str(),
                  fleet[i].server_id.c_str());
  }

  // --- deploy servers + attack center ---
  cnc::AttackCenter center(world.sim(), 0xc01d);
  std::vector<std::unique_ptr<cnc::CncServer>> servers;
  for (int s = 0; s < 22; ++s) {
    const std::string id = "cc-" + std::to_string(s);
    servers.push_back(std::make_unique<cnc::CncServer>(
        world.sim(), id, cnc::DomainFleet::domains_of(fleet, id),
        center.upload_key()));
    servers.back()->deploy(world.network());
    servers.back()->start_purge_task();
    center.manage(*servers.back());
  }
  center.start_collection_task(sim::hours(6));

  // --- 60 victims, each booting with 5 domains, extending to 10 ---
  malware::flame::FlameConfig config;
  for (int i = 0; i < 5; ++i) config.default_domains.push_back(fleet[i].domain);
  for (int i = 0; i < 10; ++i) {
    config.extended_domains.push_back(fleet[i * 7 % 80].domain);
  }
  malware::flame::Flame flame(world.sim(), world.network(),
                              world.programs(), world.tracker(), config);
  flame.set_upload_key(center.upload_key());

  core::FleetSpec victims;
  victims.count = 60;
  victims.subnet = "victims";
  auto hosts = core::make_office_fleet(world, victims);
  for (auto* host : hosts) flame.infect(*host, "targeted-drop");

  world.sim().run_for(sim::days(7));

  report.section("client-side domain config (5 -> ~10 after contact)");
  auto* first = malware::flame::Flame::find(*hosts[0]);
  report.printf("default config: %zu domains; after first contact: %zu\n",
                config.default_domains.size(), first->domains.size());

  report.section("one week of platform traffic");
  std::size_t contacted_servers = 0, total_entries = 0, total_clients = 0;
  std::uint64_t total_bytes = 0;
  for (const auto& server : servers) {
    if (server->get_news_count() > 0 || server->upload_count() > 0) {
      ++contacted_servers;
    }
    total_entries += server->upload_count();
    total_bytes += server->total_upload_bytes();
    total_clients += server->known_clients().size();
  }
  report.printf("servers contacted      : %zu / 22\n", contacted_servers);
  report.printf("client registrations   : %zu rows across the fleet\n",
                total_clients);
  report.printf("entries uploaded       : %zu (%llu bytes ciphertext)\n",
                total_entries, static_cast<unsigned long long>(total_bytes));
  report.printf("coordinator archive    : %zu documents, %llu bytes plaintext\n",
                center.archive().size(),
                static_cast<unsigned long long>(center.archived_bytes()));
  report.printf("domain hit distribution (top 5):\n");
  std::vector<std::pair<std::string, std::size_t>> hits(
      world.network().domain_hits().begin(),
      world.network().domain_hits().end());
  std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  for (std::size_t i = 0; i < std::min<std::size_t>(5, hits.size()); ++i) {
    report.printf("  %-22s %zu requests\n", hits[i].first.c_str(),
                  hits[i].second);
  }
}

void reproduce() {
  auto reports = sim::Sweep::map_items(std::vector<int>{0}, [](int) {
    benchutil::Report report;
    run_platform(report);
    return report;
  });
  reports[0].dump();
}

void BM_PlatformWeek(benchmark::State& state) {
  for (auto _ : state) {
    core::World world(0xbee);
    cnc::AttackCenter center(world.sim(), 1);
    cnc::CncServer server(world.sim(), "cc-0", {"d.example"},
                          center.upload_key());
    server.deploy(world.network());
    center.manage(server);
    malware::flame::FlameConfig config;
    config.default_domains = {"d.example"};
    malware::flame::Flame flame(world.sim(), world.network(),
                                world.programs(), world.tracker(), config);
    flame.set_upload_key(center.upload_key());
    core::FleetSpec spec;
    spec.count = static_cast<std::size_t>(state.range(0));
    auto hosts = core::make_office_fleet(world, spec);
    for (auto* host : hosts) flame.infect(*host, "drop");
    world.sim().run_for(sim::days(7));
    benchmark::DoNotOptimize(server.upload_count());
  }
}
BENCHMARK(BM_PlatformWeek)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchutil::header("FIG-4: the C&C platform behind Flame",
                    "Figure 4 — 80 domains, 22 servers, one attack center");
  if (!benchutil::has_flag(argc, argv, "--no-repro")) reproduce();
  return benchutil::run_benchmarks(argc, argv);
}
